// Generation latency study: Switch-Large-128 language modeling (the paper's
// XSum workload class) under every serving strategy.
//
// Runs autoregressive generation and reports per-step latency plus the MoE
// share of each step -- the decoder-side picture behind Figure 6's decoder
// bars (small activated-expert counts, PMove-dominated baseline).
//
//   ./examples/generation_latency
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/engine.hpp"

int main() {
  using namespace monde;

  const core::SystemConfig sys = core::SystemConfig::dac24();
  const moe::MoeModelConfig model = moe::MoeModelConfig::switch_large_128();
  const moe::SkewProfile skew = moe::SkewProfile::switch_like();
  const std::int64_t batch = 4;
  const std::int64_t steps = 24;

  std::printf("generating %lld tokens x %lld sequences with %s\n\n",
              static_cast<long long>(steps), static_cast<long long>(batch),
              model.name.c_str());

  auto sim = std::make_shared<ndp::NdpCoreSim>(sys.ndp, sys.monde_mem);
  Table t{{"strategy", "total", "ms/step", "MoE share", "tok/s", "experts GPU/NDP/CPU"}};
  for (const auto kind : {core::StrategyKind::kIdealGpu, core::StrategyKind::kGpuPmove,
                          core::StrategyKind::kMondeAmove,
                          core::StrategyKind::kMondeLoadBalanced,
                          core::StrategyKind::kCpuAmove}) {
    core::InferenceEngine eng{sys, model, skew, kind, 42, sim};
    const auto r = eng.run_decoder(batch, steps);
    std::int64_t on_gpu = 0, on_ndp = 0, on_cpu = 0;
    for (const auto& l : r.layers) {
      on_gpu += l.experts_gpu;
      on_ndp += l.experts_ndp;
      on_cpu += l.experts_cpu;
    }
    t.add_row({r.strategy, r.total.str(),
               Table::num(r.total.ms() / static_cast<double>(steps), 2),
               Table::pct(r.moe / r.total, 1),
               Table::num(r.throughput_tokens_per_s(), 1),
               std::to_string(on_gpu) + "/" + std::to_string(on_ndp) + "/" +
                   std::to_string(on_cpu)});
  }
  t.print(std::cout);

  std::printf("\nwith top-1 routing and %lld tokens per step, each MoE layer activates at\n"
              "most %lld experts -- the PMove baseline still pays a full expert transfer\n"
              "per activation, while AMove ships a few KB of activations.\n",
              static_cast<long long>(batch), static_cast<long long>(batch));
  return 0;
}
