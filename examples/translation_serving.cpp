// Translation serving: the paper's NLLB-MoE machine-translation scenario.
//
// Simulates a small online serving window: translation requests arrive with
// varying batch sizes, each needing one encoder pass over the source
// sentence plus autoregressive decoding of the target. Compares serving the
// expert layers with GPU+PM (DeepSpeed-style parameter offloading) against
// MoNDE (MD+LB), and reports per-request latency and aggregate throughput.
//
//   ./examples/translation_serving
#include <cstdio>
#include <vector>

#include "core/engine.hpp"

namespace {

struct Request {
  std::int64_t batch;     ///< sentences batched together
  std::int64_t src_len;   ///< source tokens per sentence
  std::int64_t out_len;   ///< generated target tokens
};

}  // namespace

int main() {
  using namespace monde;

  const core::SystemConfig sys = core::SystemConfig::dac24();
  const moe::MoeModelConfig model = moe::MoeModelConfig::nllb_moe_128();
  const moe::SkewProfile skew = moe::SkewProfile::nllb_like();

  // A short request trace: mixed single-sentence and batched translations.
  const std::vector<Request> trace = {
      {1, 512, 16}, {4, 512, 16}, {1, 512, 24}, {2, 512, 16}, {4, 512, 8},
  };

  std::printf("serving %zu translation requests with %s (%.1f GB of experts)\n\n",
              trace.size(), model.name.c_str(), model.total_expert_bytes().as_gb());

  // One shared cycle-level simulator: expert latencies memoize across both
  // serving configurations.
  auto sim = std::make_shared<ndp::NdpCoreSim>(sys.ndp, sys.monde_mem);

  for (const auto kind : {core::StrategyKind::kGpuPmove,
                          core::StrategyKind::kMondeLoadBalanced}) {
    core::InferenceEngine engine{sys, model, skew, kind, 42, sim};
    std::printf("--- strategy: %s ---\n", engine.strategy().name().c_str());
    Duration busy = Duration::zero();
    std::uint64_t tokens_out = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const Request& rq = trace[i];
      const auto enc = engine.run_encoder(rq.batch, rq.src_len);
      const auto dec = engine.run_decoder(rq.batch, rq.out_len, rq.src_len);
      const Duration latency = enc.total + dec.total;
      busy += latency;
      tokens_out += dec.tokens;
      std::printf("  request %zu (B=%lld, %lld->%lld tok): encode %s + decode %s = %s\n", i,
                  static_cast<long long>(rq.batch), static_cast<long long>(rq.src_len),
                  static_cast<long long>(rq.out_len), enc.total.str().c_str(),
                  dec.total.str().c_str(), latency.str().c_str());
    }
    std::printf("  window total: %s, generated %llu tokens -> %.1f tok/s\n\n",
                busy.str().c_str(), static_cast<unsigned long long>(tokens_out),
                static_cast<double>(tokens_out) / busy.sec());
  }

  std::printf("MoNDE replaces per-expert parameter transfers (67.1 MB each over PCIe)\n"
              "with activation transfers of a few hundred KB, which is where the\n"
              "end-to-end win comes from (paper Sections 3.2 and 4.2).\n");
  return 0;
}
