// Elastic, failure-aware cluster walk-through: autoscaling against a bursty
// trace while a replica fail-stops mid-run.
//
// Starts a two-replica MD+LB fleet with a queue-pressure autoscaler (min 1,
// max 5, modelled cold start) behind least-outstanding-tokens dispatch, and
// injects a fail-stop into replica 1 partway through the trace. The run
// demonstrates the full failure path: the dispatcher keeps feeding the dead
// replica until its heartbeat goes stale, the stranded requests are
// harvested and retried on healthy replicas, and the autoscaler replaces
// the lost capacity. Prints the scaling/failure event timeline, per-replica
// lifecycles, and fleet metrics. See docs/ARCHITECTURE.md for the model.
//
//   ./examples/elastic_cluster
#include <cstdio>

#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"

int main() {
  using namespace monde;

  const core::SystemConfig sys = core::SystemConfig::dac24();
  moe::MoeModelConfig model = moe::MoeModelConfig::switch_variant(768, 64);
  model.encoder_blocks = 8;
  model.decoder_blocks = 8;
  model.moe_every = 2;

  serve::SchedulerConfig sched;
  sched.token_budget = 256;

  // Two boot replicas; replica 1 will fail-stop 60 ms in.
  std::vector<serve::ReplicaSpec> specs;
  specs.push_back({core::StrategyKind::kMondeLoadBalanced, sched, /*seed=*/1, {}});
  serve::FaultSpec fault;
  fault.fail_at = Duration::millis(60);
  specs.push_back({core::StrategyKind::kMondeLoadBalanced, sched, /*seed=*/2, fault});

  serve::ClusterConfig cfg;
  cfg.health.heartbeat_interval = Duration::millis(2);
  cfg.health.heartbeat_timeout = Duration::millis(6);
  cfg.retry_timeout = Duration::millis(2);
  cfg.warmup = Duration::millis(15);  // expert placement on the new node
  cfg.autoscale_period = Duration::millis(5);
  serve::ClusterSim cluster{sys, model, moe::SkewProfile::nllb_like(), specs, cfg};

  serve::RequestShape shape;
  shape.prompt_min = 64;
  shape.prompt_max = 192;
  shape.new_tokens_min = 8;
  shape.new_tokens_max = 24;
  const auto trace = serve::bursty_trace(48, /*burst_size=*/12, Duration::millis(35), shape,
                                         /*seed=*/5);

  serve::AutoscaleConfig as;
  as.min_replicas = 1;
  as.max_replicas = 5;
  as.high_tokens_per_replica = 384;
  as.low_tokens_per_replica = 48;
  as.high_queue_delay_ms = 20.0;
  const auto autoscaler = serve::make_queue_pressure_autoscaler(as);
  const auto dispatcher =
      serve::make_dispatcher(serve::DispatchPolicy::kLeastOutstandingTokens);

  const serve::ClusterReport rep = cluster.run(trace, *dispatcher, autoscaler.get());

  std::printf("served %zu requests under %s dispatch + %s autoscaling\n\n",
              rep.requests.size(), rep.policy.c_str(), rep.autoscaler.c_str());

  std::printf("event timeline:\n");
  for (const serve::ClusterEvent& ev : rep.events) {
    std::printf("  %10s  %-16s %s\n", ev.time.str().c_str(),
                serve::to_string(ev.kind).c_str(), ev.detail.c_str());
  }

  std::printf("\n  %-26s %9s %10s %10s %12s  %s\n", "replica", "requests", "spawned",
              "alive", "utilization", "fate");
  for (const serve::ReplicaReport& rr : rep.replicas) {
    const char* fate = rr.failed ? "failed" : rr.retired ? "retired" : "healthy";
    std::printf("  %-26s %9zu %10s %10s %11.1f%%  %s\n", rr.name.c_str(), rr.dispatched,
                rr.spawned_at.str().c_str(), (rr.alive_until - rr.spawned_at).str().c_str(),
                100.0 * rr.utilization, fate);
  }

  std::printf("\nfleet: %llu tokens in %s -> %.1f tok/s\n",
              static_cast<unsigned long long>(rep.generated_tokens),
              rep.makespan.str().c_str(), rep.tokens_per_s);
  std::printf("peak replicas %zu, %.3f replica-seconds provisioned, fleet util %.1f%%, "
              "%zu retries\n",
              rep.peak_replicas, rep.replica_seconds, 100.0 * rep.fleet_utilization,
              rep.retries);
  std::printf("TTFT ms p50/p95/p99: %.2f / %.2f / %.2f\n", rep.ttft_ms.p50, rep.ttft_ms.p95,
              rep.ttft_ms.p99);
  std::printf("E2E  ms p50/p95/p99: %.2f / %.2f / %.2f\n", rep.e2e_ms.p50, rep.e2e_ms.p95,
              rep.e2e_ms.p99);
  std::printf("\nEvery request completed even though a replica died mid-run: requests\n"
              "stranded on the dead node were detected via stale heartbeats, re-\n"
              "dispatched after the retry timeout, and served by the survivors while\n"
              "the autoscaler grew the fleet against the burst backlog -- the retry\n"
              "and cold-start costs land in the tail percentiles above.\n");
  return 0;
}
