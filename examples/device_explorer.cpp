// Device explorer: the low-level MoNDE device APIs, bottom to top.
//
// Walks through what the host driver actually does for one expert offload:
// allocate device memory in the bank-partitioned layout, compile the
// gemm+relu / gemm kernels into 64-byte CXL NDP instructions, and run the
// cycle-level NDP + DRAM simulation, printing the memory-system statistics
// the paper's Ramulator-based methodology produces.
//
//   ./examples/device_explorer
#include <cstdio>

#include "core/monde_device.hpp"
#include "dram/dram_system.hpp"
#include "interconnect/instruction.hpp"

int main() {
  using namespace monde;

  const auto mem = dram::Spec::monde_lpddr5x_8533();
  const auto ndp_spec = ndp::NdpSpec::monde_dac24();
  const auto model = moe::MoeModelConfig::nllb_moe_128();

  std::printf("device memory: %s over %d channels (%s/channel), %d banks/rank, "
              "%s rows\n",
              mem.org.total_capacity().str().c_str(), mem.org.channels,
              mem.channel_peak_bandwidth().str().c_str(), mem.org.banks_per_rank(),
              mem.org.row_bytes().str().c_str());
  std::printf("NDP core: %d units of %dx%d MACs @ %.1f GHz = %.2f TFLOPS peak\n\n",
              ndp_spec.num_units, ndp_spec.pe_rows, ndp_spec.pe_cols, ndp_spec.clock_ghz,
              ndp_spec.peak_flops().as_tflops());

  // 1. Place one MoE layer's experts (bump-pointer, even banks).
  auto sim = std::make_shared<ndp::NdpCoreSim>(ndp_spec, mem);
  core::MondeDevice device{0, sim};
  for (int e = 0; e < model.num_experts; ++e) {
    device.place_expert({0, e}, model.expert_bytes());
  }
  std::printf("placed %lld experts (%s) in the weight partition\n",
              static_cast<long long>(model.num_experts),
              device.weights_used().str().c_str());

  // 2. Compile an expert op for 3 routed tokens into NDP instructions.
  const auto instrs = device.compile_expert_op({0, 17}, 3, model);
  std::printf("\ncompiled expert (layer 0, expert 17, 3 tokens) into %zu instructions:\n",
              instrs.size());
  for (const auto& inst : instrs) {
    const auto wire = interconnect::encode(inst);
    std::printf("  op=%d wgt=0x%012llx (%llu B) act_in=0x%012llx act_out=0x%012llx "
                "tokens=%u seq=%u\n",
                static_cast<int>(inst.opcode),
                static_cast<unsigned long long>(inst.weight.addr),
                static_cast<unsigned long long>(inst.weight.size),
                static_cast<unsigned long long>(inst.act_in.addr),
                static_cast<unsigned long long>(inst.act_out.addr), inst.token_count,
                inst.kernel_seq);
    std::printf("    wire[0..15]: ");
    for (int i = 0; i < 16; ++i) std::printf("%02x ", wire[static_cast<std::size_t>(i)]);
    std::printf("...\n");
  }

  // 3. Bank partitioning in action: decompose the operand addresses.
  const dram::AddressMapper mapper{mem};
  const auto w = mapper.decompose(instrs[0].weight.addr);
  const auto a = mapper.decompose(instrs[0].act_in.addr);
  std::printf("\nweight addr  -> ch%d ra%d bg%d ba%d row%d (flat bank %d: even)\n",
              w.channel, w.rank, w.bankgroup, w.bank, w.row, w.flat_bank(mem.org));
  std::printf("act-in addr  -> ch%d ra%d bg%d ba%d row%d (flat bank %d: odd)\n", a.channel,
              a.rank, a.bankgroup, a.bank, a.row, a.flat_bank(mem.org));

  // 4. Cycle-level execution across token counts (the Ramulator role).
  std::printf("\ncycle-level expert latencies (dmodel=%lld, dff=%lld):\n",
              static_cast<long long>(model.dmodel), static_cast<long long>(model.dff));
  for (const std::int64_t tokens : {std::int64_t{1}, std::int64_t{4}, std::int64_t{16},
                                    std::int64_t{64}}) {
    const auto r = device.expert_latency({tokens, model.dmodel, model.dff}, model.dtype);
    std::printf("  %3lld tokens: %10s  (%.1f GB/s achieved, row-hit %.1f%%, %s)\n",
                static_cast<long long>(tokens), r.latency.str().c_str(),
                r.achieved_bandwidth.as_gbps(), 100.0 * r.row_hit_rate,
                r.cycle_accurate ? "cycle-accurate" : "compute-bound fast path");
  }

  std::printf("\nthe 1-token expert is bandwidth-bound (the whole 64 MiB of weights\n"
              "stream through the arrays for 4 rows of output) -- the regime that\n"
              "makes near-data processing win for cold experts.\n");
  return 0;
}
