// Serving simulator walk-through: continuous batching on MoNDE (MD+LB).
//
// Generates a Poisson arrival trace, serves it with continuous batching
// under the paper's load-balanced MoNDE strategy, and prints per-request
// latencies plus the aggregate serving metrics (TTFT / TPOT / E2E
// percentiles, tokens/s). See README "Serving simulation" for the metric
// definitions.
//
//   ./examples/serving_simulator
#include <cstdio>

#include "serve/arrivals.hpp"
#include "serve/server.hpp"

int main() {
  using namespace monde;

  const core::SystemConfig sys = core::SystemConfig::dac24();
  moe::MoeModelConfig model = moe::MoeModelConfig::switch_variant(768, 64);
  model.encoder_blocks = 8;
  model.decoder_blocks = 8;
  model.moe_every = 2;

  serve::RequestShape shape;
  shape.prompt_min = 64;
  shape.prompt_max = 192;
  shape.new_tokens_min = 8;
  shape.new_tokens_max = 24;
  const auto trace = serve::poisson_trace(12, /*rate_per_s=*/10.0, shape, /*seed=*/3);

  serve::SchedulerConfig cfg;
  cfg.mode = serve::BatchingMode::kContinuous;
  cfg.token_budget = 384;

  core::InferenceEngine engine{sys, model, moe::SkewProfile::switch_like(),
                               core::StrategyKind::kMondeLoadBalanced, /*seed=*/42};
  serve::ServerSim sim{engine, cfg};
  const serve::ServeReport rep = sim.run(trace);

  std::printf("served %zu requests with %s, %s batching (budget %lld tokens/step)\n\n",
              rep.requests.size(), rep.strategy.c_str(), rep.mode.c_str(),
              static_cast<long long>(cfg.token_budget));
  std::printf("  %4s %8s %8s %6s %10s %10s %10s\n", "id", "arrive", "admit", "tokens",
              "TTFT", "TPOT", "E2E");
  for (const auto& m : rep.requests) {
    std::printf("  %4llu %8s %8s %6lld %10s %10s %10s\n",
                static_cast<unsigned long long>(m.id), m.arrival.str().c_str(),
                m.admitted.str().c_str(), static_cast<long long>(m.generated),
                m.ttft().str().c_str(), m.tpot().str().c_str(), m.e2e().str().c_str());
  }
  std::printf("\naggregate: %llu tokens in %s -> %.1f tok/s\n",
              static_cast<unsigned long long>(rep.generated_tokens),
              rep.makespan.str().c_str(), rep.tokens_per_s);
  std::printf("TTFT ms p50/p95/p99: %.2f / %.2f / %.2f\n", rep.ttft_ms.p50, rep.ttft_ms.p95,
              rep.ttft_ms.p99);
  std::printf("TPOT ms p50/p95/p99: %.2f / %.2f / %.2f\n", rep.tpot_ms.p50, rep.tpot_ms.p95,
              rep.tpot_ms.p99);
  std::printf("E2E  ms p50/p95/p99: %.2f / %.2f / %.2f\n", rep.e2e_ms.p50, rep.e2e_ms.p95,
              rep.e2e_ms.p99);
  std::printf("\nEvery decode step merges the per-request expert routing of the whole\n"
              "active batch into one shared MoE layer invocation, so MoNDE's hot/cold\n"
              "expert split keeps working while requests join and leave mid-flight.\n");
  return 0;
}
