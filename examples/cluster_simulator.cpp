// Cluster serving walk-through: a heterogeneous MoNDE fleet behind a
// load-aware dispatcher.
//
// Builds a four-replica cluster -- three MD+LB (MoNDE load-balanced)
// servers plus one GPU+PM (on-demand PCIe fetch) server, as a fleet mixing
// hardware generations might -- serves a bursty trace under
// least-outstanding-tokens dispatch, and prints per-replica and fleet-wide
// serving metrics. See README "Cluster serving" for the policy catalogue.
//
//   ./examples/cluster_simulator
#include <cstdio>

#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"

int main() {
  using namespace monde;

  const core::SystemConfig sys = core::SystemConfig::dac24();
  moe::MoeModelConfig model = moe::MoeModelConfig::switch_variant(768, 64);
  model.encoder_blocks = 8;
  model.decoder_blocks = 8;
  model.moe_every = 2;

  serve::SchedulerConfig cfg;
  cfg.token_budget = 384;
  // The GPU+PM replica models an older, smaller-memory node: on-demand
  // expert fetch over PCIe and a quarter of the per-step token budget.
  serve::SchedulerConfig weak = cfg;
  weak.token_budget = 96;

  // Heterogeneous fleet: replicas differ in expert-execution strategy,
  // scheduler capacity, and routing seed; the platform and model are shared.
  std::vector<serve::ReplicaSpec> specs;
  specs.push_back({core::StrategyKind::kMondeLoadBalanced, cfg, /*seed=*/1, {}});
  specs.push_back({core::StrategyKind::kMondeLoadBalanced, cfg, /*seed=*/2, {}});
  specs.push_back({core::StrategyKind::kMondeLoadBalanced, cfg, /*seed=*/3, {}});
  specs.push_back({core::StrategyKind::kGpuPmove, weak, /*seed=*/4, {}});
  serve::ClusterSim cluster{sys, model, moe::SkewProfile::nllb_like(), specs};

  serve::RequestShape shape;
  shape.prompt_min = 64;
  shape.prompt_max = 192;
  shape.new_tokens_min = 8;
  shape.new_tokens_max = 24;
  const auto trace = serve::bursty_trace(32, /*burst_size=*/8, Duration::millis(40), shape,
                                         /*seed=*/5);

  const auto dispatcher = serve::make_dispatcher(serve::DispatchPolicy::kLeastOutstandingTokens);
  const serve::ClusterReport rep = cluster.run(trace, *dispatcher);

  std::printf("served %zu requests on %zu replicas under %s dispatch\n\n",
              rep.requests.size(), rep.replicas.size(), rep.policy.c_str());
  std::printf("  %-26s %9s %8s %10s %12s\n", "replica", "requests", "tok/s", "busy",
              "utilization");
  for (const serve::ReplicaReport& rr : rep.replicas) {
    std::printf("  %-26s %9zu %8.1f %10s %11.1f%%\n", rr.name.c_str(), rr.dispatched,
                rr.serve.tokens_per_s, rr.serve.busy.str().c_str(), 100.0 * rr.utilization);
  }
  std::printf("\nfleet: %llu tokens in %s -> %.1f tok/s (imbalance %.2fx)\n",
              static_cast<unsigned long long>(rep.generated_tokens),
              rep.makespan.str().c_str(), rep.tokens_per_s, rep.imbalance);
  std::printf("TTFT ms p50/p95/p99: %.2f / %.2f / %.2f\n", rep.ttft_ms.p50, rep.ttft_ms.p95,
              rep.ttft_ms.p99);
  std::printf("E2E  ms p50/p95/p99: %.2f / %.2f / %.2f\n", rep.e2e_ms.p50, rep.e2e_ms.p95,
              rep.e2e_ms.p99);
  std::printf("\nThe dispatcher sees each replica's live queue at every arrival instant,\n"
              "so the slower GPU+PM replica naturally receives fewer requests than the\n"
              "MD+LB replicas -- the fleet analogue of the paper's per-node argument\n"
              "that near-data expert execution frees serving capacity.\n");
  return 0;
}
