// Capacity planner: which MoE configurations need expert offloading, and
// what serving them costs under each placement.
//
// For a sweep of backbone sizes and expert counts, reports the parameter
// footprint (Figure 2(a) analytics), whether the model fits in one GPU, and
// the simulated encoder throughput of GPU+PM vs MD+LB when it does not --
// i.e., the decision table a deployment engineer would want.
//
//   ./examples/capacity_planner
#include <cstdio>
#include <iostream>

#include "analysis/footprint.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

int main() {
  using namespace monde;

  const core::SystemConfig sys = core::SystemConfig::dac24();
  const double gpu_gb = sys.gpu.memory_capacity.as_gb();
  std::printf("planning for 1x %s (%.0f GB) + MoNDE device (%s)\n\n", sys.gpu.name.c_str(),
              gpu_gb, sys.monde_mem.org.total_capacity().str().c_str());

  Table t{{"model", "params (GB)", "fits GPU?", "GPU+PM enc tok/s", "MD+LB enc tok/s",
           "MoNDE speedup"}};

  for (const std::int64_t dmodel : {std::int64_t{768}, std::int64_t{1024},
                                    std::int64_t{2048}}) {
    for (const std::int64_t experts : {std::int64_t{32}, std::int64_t{128}}) {
      moe::MoeModelConfig model = moe::MoeModelConfig::switch_variant(dmodel, experts);
      const auto fp = analysis::footprint(model);
      const double total_gb = fp.total().as_gb();
      const bool fits = total_gb <= gpu_gb * 0.9;  // leave headroom for activations

      std::string pm_cell = "-", lb_cell = "-", speedup = "(resident)";
      if (!fits) {
        const auto prof = moe::SkewProfile::switch_like();
        auto sim = std::make_shared<ndp::NdpCoreSim>(sys.ndp, sys.monde_mem);
        core::InferenceEngine pm{sys, model, prof, core::StrategyKind::kGpuPmove, 42, sim};
        core::InferenceEngine lb{sys, model, prof, core::StrategyKind::kMondeLoadBalanced,
                                 42, sim};
        const double t_pm = pm.run_encoder(4, 512).throughput_tokens_per_s();
        const double t_lb = lb.run_encoder(4, 512).throughput_tokens_per_s();
        pm_cell = Table::num(t_pm, 0);
        lb_cell = Table::num(t_lb, 0);
        speedup = Table::num(t_lb / t_pm, 1) + "x";
      }
      t.add_row({model.name, Table::num(total_gb, 1), fits ? "yes" : "no", pm_cell, lb_cell,
                 speedup});
    }
  }
  t.print(std::cout);
  std::printf("\nmodels that spill out of GPU memory are exactly where near-data expert\n"
              "offloading pays: the bigger the spill, the bigger the MoNDE speedup.\n");
  return 0;
}
