// Quickstart: simulate one MoE encoder batch under MoNDE load balancing.
//
// Builds the paper's evaluation platform (A100 + PCIe Gen4 x16 + one MoNDE
// CXL-NDP device), loads NLLB-MoE's experts into device memory, routes a
// batch with realistic expert skew, and prints the latency report plus the
// hardware-stream timeline.
//
//   ./examples/quickstart
#include <cstdio>
#include <iostream>

#include "core/engine.hpp"

int main() {
  using namespace monde;

  // 1. Platform: everything from Table 2 of the paper.
  const core::SystemConfig sys = core::SystemConfig::dac24();

  // 2. Model + workload skew: NLLB-MoE (128 experts, top-2) with the
  //    FLORES-200-like routing skew of Figure 3.
  const moe::MoeModelConfig model = moe::MoeModelConfig::nllb_moe_128();
  const moe::SkewProfile skew = moe::SkewProfile::nllb_like();

  std::printf("model: %s  (experts: %.1f GB offloaded to MoNDE, dense: %.1f GB on GPU)\n",
              model.name.c_str(), model.total_expert_bytes().as_gb(),
              model.non_expert_bytes().as_gb());
  std::printf("MoNDE device: %s capacity, %s peak bandwidth, %d x %dx%d MAC arrays @ %.1f GHz\n\n",
              sys.monde_mem.org.total_capacity().str().c_str(),
              sys.monde_mem.total_peak_bandwidth().str().c_str(), sys.ndp.num_units,
              sys.ndp.pe_rows, sys.ndp.pe_cols, sys.ndp.clock_ghz);

  // 3. Run one encoder pass (batch 4 x 512 tokens) under GPU-MoNDE load
  //    balancing: hot experts fetched to the GPU, cold experts computed
  //    near-data.
  core::InferenceEngine engine{sys, model, skew, core::StrategyKind::kMondeLoadBalanced};
  const core::RunReport report = engine.run_encoder(/*batch=*/4, /*seq_len=*/512);

  std::printf("encoder pass: %s total  (%s in MoE layers, %s elsewhere)\n",
              report.total.str().c_str(), report.moe.str().c_str(),
              report.non_moe.str().c_str());
  std::printf("throughput:   %.0f tokens/s\n\n", report.throughput_tokens_per_s());

  std::printf("per-MoE-layer decisions (H = hot experts sent to the GPU):\n");
  for (std::size_t i = 0; i < report.layers.size(); ++i) {
    const auto& l = report.layers[i];
    std::printf("  layer %zu: H=%d -> %lld experts on GPU (PMove %s), %lld on MoNDE "
                "(AMove %s), latency %s\n",
                i, l.h_value, static_cast<long long>(l.experts_gpu),
                l.pmove_bytes.str().c_str(), static_cast<long long>(l.experts_ndp),
                l.amove_bytes.str().c_str(), l.latency().str().c_str());
  }

  std::printf("\nhardware-stream timeline (full pass):\n%s",
              report.timeline.to_ascii_gantt(report.stream_names, 100).c_str());
  return 0;
}
