#include "moe/model_config.hpp"

#include "common/error.hpp"

namespace monde::moe {

Bytes MoeModelConfig::non_expert_bytes() const {
  const auto elem = static_cast<std::uint64_t>(compute::bytes_per_element(dtype));
  const auto d = static_cast<std::uint64_t>(dmodel);
  const auto f = static_cast<std::uint64_t>(dff);
  // Tied input/output embedding: vocab x dmodel.
  std::uint64_t params = static_cast<std::uint64_t>(vocab_size) * d;
  // Attention: 4 * d^2 per attention module (Q, K, V, O). Encoder blocks
  // have one module; decoder blocks have self + cross attention.
  const auto attn = 4 * d * d;
  params += static_cast<std::uint64_t>(encoder_blocks) * attn;
  params += static_cast<std::uint64_t>(decoder_blocks) * 2 * attn;
  // Dense FFNs in non-MoE blocks: 2 * d * dff each.
  const int dense_blocks =
      encoder_blocks + decoder_blocks - total_moe_layers();
  params += static_cast<std::uint64_t>(dense_blocks) * 2 * d * f;
  // Layer norms and biases (~2 vectors per sublayer) are < 0.1% -- include
  // a small term for completeness.
  params += static_cast<std::uint64_t>(encoder_blocks + decoder_blocks) * 6 * d;
  return Bytes{params * elem};
}

void MoeModelConfig::validate() const {
  MONDE_REQUIRE(dmodel > 0 && dff > 0, "model dims must be positive");
  MONDE_REQUIRE(encoder_blocks >= 0 && decoder_blocks >= 0, "block counts must be >= 0");
  MONDE_REQUIRE(moe_every >= 0, "moe_every must be >= 0");
  if (moe_every > 0) {
    MONDE_REQUIRE(num_experts > 0, "MoE model needs experts");
    MONDE_REQUIRE(top_k > 0 && top_k <= num_experts, "top_k must be in [1, E]");
  }
  MONDE_REQUIRE(vocab_size > 0, "vocab must be positive");
}

MoeModelConfig MoeModelConfig::switch_large_128() {
  MoeModelConfig c;
  c.name = "Switch-Large-128";
  c.dmodel = 1024;
  c.dff = 4096;
  c.encoder_blocks = 24;
  c.decoder_blocks = 24;
  c.moe_every = 2;  // 12 + 12 MoE layers -> 51.5 GB of experts (Table 2)
  c.num_experts = 128;
  c.top_k = 1;
  c.vocab_size = 32128;
  return c;
}

MoeModelConfig MoeModelConfig::nllb_moe_128() {
  MoeModelConfig c;
  c.name = "NLLB-MoE";
  c.dmodel = 2048;
  c.dff = 8192;
  c.encoder_blocks = 24;
  c.decoder_blocks = 24;
  c.moe_every = 4;  // 6 + 6 MoE layers -> 103.1 GB of experts (Table 2)
  c.num_experts = 128;
  c.top_k = 2;
  c.vocab_size = 256206;
  return c;
}

MoeModelConfig MoeModelConfig::t5_large_dense() {
  MoeModelConfig c = switch_large_128();
  c.name = "T5-Large";
  c.moe_every = 0;
  c.num_experts = 0;
  return c;
}

MoeModelConfig MoeModelConfig::nllb_dense_3_3b() {
  MoeModelConfig c = nllb_moe_128();
  c.name = "NLLB-3.3B";
  c.moe_every = 0;
  c.num_experts = 0;
  return c;
}

MoeModelConfig MoeModelConfig::switch_variant(std::int64_t dmodel_, std::int64_t experts) {
  MoeModelConfig c = switch_large_128();
  // Built with append rather than operator+ to sidestep a GCC 12 -Wrestrict
  // false positive on rvalue-string concatenation at -O3.
  c.name = "d";
  c.name += std::to_string(dmodel_);
  c.name += "-E";
  c.name += std::to_string(experts);
  c.dmodel = dmodel_;
  c.dff = 4 * dmodel_;
  c.num_experts = experts;
  return c;
}

MoeModelConfig MoeModelConfig::with_experts(std::int64_t experts) const {
  MoeModelConfig c = *this;
  c.num_experts = experts;
  if (experts > 0 && moe_every == 0) c.moe_every = 2;
  c.name = name + "-E" + std::to_string(experts);
  return c;
}

}  // namespace monde::moe
