// Per-request expert profiles for gating-aware serving.
//
// The paper's core observation (§2.2, Figure 3) is that expert routing
// popularity is heavily skewed and STABLE: the experts a request activates
// on its first decode steps are overwhelmingly the experts it keeps
// activating. A compact per-request summary of those experts -- the top
// activated experts per decoder MoE layer -- is therefore a usable routing
// key at the fleet level: a dispatcher can send the request to the replica
// whose resident hot set overlaps it best (serve/dispatch.hpp).
//
// This header deliberately depends on nothing but the standard library:
// moe/ sits below core/ in the layering (core/monde_device.hpp includes
// moe/model_config.hpp), so the profile type the serving stack threads
// through Request, ReplicaSnapshot, and ExpertCache must live here.
#pragma once

#include <cstdint>
#include <vector>

namespace monde::moe {

/// Maps an (layer, expert) pair onto one of 64 signature bits. The scramble
/// (a multiply-xorshift of the packed pair) spreads consecutive expert ids
/// across the word so small models do not collide in the low bits. Shared by
/// the profile below and core::ExpertCache's residency signature so overlap
/// popcounts compare like with like.
[[nodiscard]] inline int expert_signature_bit(int layer, int expert) {
  std::uint64_t x = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(layer)) << 32) |
                    static_cast<std::uint32_t>(expert);
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 29;
  return static_cast<int>(x & 63);
}

/// The top activated experts of one request, derived from its own routing
/// stream (WorkloadGenerator::expert_profile_for) so it is deterministic in
/// (seed, request_id). Entries are layer-major and, within a layer, in
/// descending activation order -- so truncating to the first k entries per
/// layer (the pruned-expert degraded mode) keeps the heaviest experts.
/// `signature` is the OR of each entry's signature bit: a 64-bit Bloom-style
/// summary a dispatcher can intersect with a replica's residency signature
/// in one AND + popcount.
struct ExpertProfile {
  struct Entry {
    int layer = 0;
    int expert = 0;
  };

  std::vector<Entry> experts;   ///< layer-major, descending activation within a layer
  std::uint64_t signature = 0;  ///< OR of expert_signature_bit over `experts`

  [[nodiscard]] bool empty() const { return experts.empty(); }

  /// Recompute `signature` from `experts` (after truncation/pruning).
  void rebuild_signature() {
    signature = 0;
    for (const Entry& e : experts) {
      signature |= std::uint64_t{1} << expert_signature_bit(e.layer, e.expert);
    }
  }
};

}  // namespace monde::moe
