// Routed-workload trace persistence.
//
// The synthetic GatingModel reproduces the paper's published skew, but users
// with access to a real model can capture tokens-per-expert traces from the
// actual router and replay them here. The format is plain CSV, one MoE
// layer per row:
//
//   layer_id,total_tokens,top_k,count_e0,count_e1,...,count_e{E-1}
//
// All rows of a trace must agree on the expert count. Loading validates
// structure (not routing conservation -- real traces may drop tokens).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "moe/gating.hpp"

namespace monde::moe {

/// Serialize layers as CSV (see format above).
void save_trace(std::ostream& os, const std::vector<MoeLayerWork>& layers);
void save_trace_file(const std::string& path, const std::vector<MoeLayerWork>& layers);

/// Parse a CSV trace. Throws monde::Error on malformed rows or inconsistent
/// expert counts.
[[nodiscard]] std::vector<MoeLayerWork> load_trace(std::istream& is);
[[nodiscard]] std::vector<MoeLayerWork> load_trace_file(const std::string& path);

}  // namespace monde::moe
