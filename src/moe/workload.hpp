// Deterministic workload generation for encoder passes and autoregressive
// decoder runs.
//
// Substitutes the paper's XSum (language modeling) and FLORES-200 (machine
// translation) datasets: what the system consumes from a dataset is only the
// sequence of tokens-per-expert vectors per MoE layer, which the calibrated
// GatingModel produces (see gating.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "moe/expert_profile.hpp"
#include "moe/gating.hpp"
#include "moe/model_config.hpp"

namespace monde::moe {

/// A full encoder pass: one MoeLayerWork per encoder MoE layer.
struct EncoderPass {
  std::int64_t batch = 0;
  std::int64_t seq_len = 0;
  std::vector<MoeLayerWork> moe_layers;
};

/// One autoregressive decoder step: one MoeLayerWork per decoder MoE layer.
struct DecoderStep {
  std::int64_t step_index = 0;
  std::int64_t batch = 0;  ///< new tokens this step
  std::vector<MoeLayerWork> moe_layers;
};

/// Generates routed workloads for a model configuration. One GatingModel is
/// instantiated per MoE layer (different hot experts per layer); drawing is
/// deterministic given the seed.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const MoeModelConfig& model, const SkewProfile& profile,
                    std::uint64_t seed = 42);

  /// Route a full encoder batch (batch x seq_len tokens through every
  /// encoder MoE layer).
  [[nodiscard]] EncoderPass encoder_pass(std::int64_t batch, std::int64_t seq_len);

  /// Route `steps` autoregressive decoder steps of `batch` tokens each.
  [[nodiscard]] std::vector<DecoderStep> decoder_steps(std::int64_t batch, std::int64_t steps);

  /// Per-request, step-indexed decoder routing: the MoE work of request
  /// `request_id`'s decode step `step` (`tokens` new tokens, usually 1), one
  /// MoeLayerWork per decoder MoE layer. Deterministic in
  /// (seed, request_id, step) and independent of call order, so a
  /// continuous-batching scheduler can draw active requests in any admission
  /// order and still produce reproducible merged steps.
  [[nodiscard]] std::vector<MoeLayerWork> decoder_step_for(std::uint64_t request_id,
                                                           std::int64_t step,
                                                           std::int64_t tokens = 1) const;

  /// The request's expert profile: its `width` most-activated experts per
  /// decoder MoE layer, estimated by routing `tokens` probe tokens through
  /// each layer's gating model on a dedicated per-request stream (distinct
  /// from the decoder_step_for streams, so profiling never perturbs the
  /// routed workload). Deterministic in (seed, request_id); entries are
  /// layer-major, descending activation within a layer, with layer ids
  /// offset past the encoder stack exactly like decoder_step_for.
  [[nodiscard]] ExpertProfile expert_profile_for(std::uint64_t request_id, int width,
                                                 std::int64_t tokens = 64) const;

  /// Element-wise sum of per-request draws into the shared per-layer work one
  /// decode step executes. Every entry must cover the same layers in the same
  /// order (as produced by decoder_step_for).
  [[nodiscard]] static std::vector<MoeLayerWork> merge_layer_works(
      const std::vector<std::vector<MoeLayerWork>>& per_request);

  [[nodiscard]] const MoeModelConfig& model() const { return model_; }

  /// The gating model of encoder MoE layer `i` (for characterization).
  [[nodiscard]] const GatingModel& encoder_gating(std::size_t i) const;

 private:
  MoeModelConfig model_;
  std::vector<GatingModel> encoder_gatings_;
  std::vector<GatingModel> decoder_gatings_;
  Rng rng_;
  std::uint64_t seed_;  ///< base seed for the per-request routing streams
};

}  // namespace monde::moe
