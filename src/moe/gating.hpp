// Skewed gating / routing model.
//
// The paper's key observation (Section 2.2, Figure 3) is that routed-token
// counts are highly skewed: a couple of hot experts absorb most tokens while
// the majority of experts receive 0-7 tokens. Since the system's behaviour
// depends only on the tokens-per-expert histogram (not on token contents),
// we model gating as a two-tier popularity distribution:
//
//   * `num_heavy` hot experts share `heavy_mass` of the routing probability;
//   * the remaining mass follows a Zipf(s) tail over the other experts,
//     shuffled per layer so different layers have different hot experts.
//
// Tokens pick top_k *distinct* experts each (dropless, padding-less routing
// as in the paper's implementation). The NLLB-like profile is calibrated so
// that encoder layer 0 with batch 4 x 512 tokens reproduces the Figure 3
// bucket counts; tests assert this.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace monde::moe {

/// Parameters of the three-tier popularity model: a couple of *hot* experts
/// absorb most mass, a few *warm* experts take tens of tokens, and a flat-
/// ish Zipf tail yields the 0-7-token cold majority.
struct SkewProfile {
  int num_heavy = 2;        ///< hot experts per layer
  double heavy_mass = 0.9;  ///< probability mass shared by hot experts
  int num_warm = 3;         ///< mid-tier experts
  double warm_mass = 0.055; ///< probability mass shared by warm experts
  double zipf_s = 0.35;     ///< tail skew exponent
  /// Fraction of tail experts that are effectively dead (language-pair /
  /// domain specialists the current input never routes to; these produce
  /// the large zero-token bucket of Figure 3).
  double dead_fraction = 0.0;
  /// Weight multiplier applied to dead experts.
  double dead_scale = 0.05;
  /// Uniform noise applied multiplicatively to tail weights, in [1-j, 1+j].
  double jitter = 0.25;

  /// Calibrated to Figure 3 (NLLB-MoE encoder layer 0, FLORES-200).
  [[nodiscard]] static SkewProfile nllb_like();
  /// Switch Transformers top-1 routing: milder skew, more mid-weight experts.
  [[nodiscard]] static SkewProfile switch_like();
  /// Uniform routing (ablation baseline).
  [[nodiscard]] static SkewProfile uniform();
};

/// Per-layer expert popularity + routing sampler.
class GatingModel {
 public:
  /// One GatingModel per MoE layer; `seed` should differ per layer so hot
  /// experts differ across layers.
  GatingModel(std::int64_t num_experts, int top_k, const SkewProfile& profile,
              std::uint64_t seed);

  /// Route `tokens` tokens; returns tokens-routed-per-expert (size E, sums
  /// to tokens * top_k). Each token selects top_k distinct experts.
  [[nodiscard]] std::vector<std::uint64_t> route(std::int64_t tokens, Rng& rng) const;

  [[nodiscard]] const std::vector<double>& popularity() const { return popularity_; }
  [[nodiscard]] std::int64_t num_experts() const { return static_cast<std::int64_t>(popularity_.size()); }
  [[nodiscard]] int top_k() const { return top_k_; }

 private:
  int top_k_;
  std::vector<double> popularity_;  ///< normalized, shuffled
  std::vector<double> cdf_;
};

/// Summary of one routed MoE layer: the unit of work every strategy consumes.
struct MoeLayerWork {
  int layer_id = 0;
  std::int64_t total_tokens = 0;  ///< tokens entering the layer (B*S or B)
  int top_k = 1;
  std::vector<std::uint64_t> tokens_per_expert;  ///< size E

  /// Experts with at least one routed token (Equation 5's E_activ).
  [[nodiscard]] std::int64_t activated_experts() const;
  /// Total routed token-slots: sum(tokens_per_expert) == total_tokens * top_k.
  [[nodiscard]] std::uint64_t routed_tokens() const;
  /// Expert indices sorted by descending token count (compute intensity).
  [[nodiscard]] std::vector<std::size_t> experts_by_load() const;
};

}  // namespace monde::moe
