#include "moe/gating.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace monde::moe {

SkewProfile SkewProfile::nllb_like() {
  SkewProfile p;
  p.num_heavy = 2;
  p.heavy_mass = 0.930;
  p.num_warm = 3;
  p.warm_mass = 0.030;
  p.zipf_s = 0.30;
  p.dead_fraction = 0.08;
  p.jitter = 0.25;
  return p;
}

SkewProfile SkewProfile::switch_like() {
  SkewProfile p;
  p.num_heavy = 4;
  p.heavy_mass = 0.55;
  p.num_warm = 6;
  p.warm_mass = 0.18;
  p.zipf_s = 0.45;
  p.jitter = 0.25;
  return p;
}

SkewProfile SkewProfile::uniform() {
  SkewProfile p;
  p.num_heavy = 0;
  p.heavy_mass = 0.0;
  p.num_warm = 0;
  p.warm_mass = 0.0;
  p.zipf_s = 0.0;
  p.jitter = 0.0;
  return p;
}

GatingModel::GatingModel(std::int64_t num_experts, int top_k, const SkewProfile& profile,
                         std::uint64_t seed)
    : top_k_{top_k} {
  MONDE_REQUIRE(num_experts > 0, "gating needs experts");
  MONDE_REQUIRE(top_k > 0 && top_k <= num_experts, "top_k must be in [1, E]");
  MONDE_REQUIRE(profile.num_heavy >= 0 && profile.num_warm >= 0 &&
                    profile.num_heavy + profile.num_warm <= static_cast<int>(num_experts),
                "heavy+warm expert count out of range");
  MONDE_REQUIRE(profile.heavy_mass >= 0.0 && profile.warm_mass >= 0.0 &&
                    profile.heavy_mass + profile.warm_mass < 1.0,
                "heavy_mass + warm_mass must be in [0, 1)");

  Rng rng{seed};
  const auto e = static_cast<std::size_t>(num_experts);
  popularity_.assign(e, 0.0);

  const int heavy = profile.num_heavy;
  const int warm = profile.num_warm;
  const double heavy_mass = heavy > 0 ? profile.heavy_mass : 0.0;
  const double warm_mass = warm > 0 ? profile.warm_mass : 0.0;
  const double tail_mass = 1.0 - heavy_mass - warm_mass;
  const std::size_t tail_n = e - static_cast<std::size_t>(heavy + warm);

  std::vector<double> weights;
  weights.reserve(e);

  // Splits a tier's mass across its members with uneven (jittered) shares.
  auto emit_tier = [&](int count, double mass) {
    if (count <= 0 || mass <= 0.0) return;
    std::vector<double> w(static_cast<std::size_t>(count));
    double total = 0.0;
    for (auto& v : w) {
      v = rng.uniform(0.6, 1.4);
      total += v;
    }
    for (double v : w) weights.push_back(v * mass / total);
  };
  emit_tier(heavy, heavy_mass);
  emit_tier(warm, warm_mass);

  // Tail: flat-ish Zipf over the cold experts with multiplicative jitter.
  // The lowest-ranked `dead_fraction` of the tail is scaled to near zero
  // (experts the current input distribution never exercises).
  std::vector<double> tail =
      tail_n > 0 ? zipf_weights(tail_n, profile.zipf_s) : std::vector<double>{};
  const std::size_t dead_n =
      static_cast<std::size_t>(profile.dead_fraction * static_cast<double>(tail_n));
  double tail_total = 0.0;
  for (std::size_t i = 0; i < tail.size(); ++i) {
    if (profile.jitter > 0.0) {
      tail[i] *= rng.uniform(1.0 - profile.jitter, 1.0 + profile.jitter);
    }
    if (i + dead_n >= tail.size()) tail[i] *= profile.dead_scale;
    tail_total += tail[i];
  }
  for (auto& w : tail) weights.push_back(w * tail_mass / tail_total);

  // Shuffle so hot experts land at random indices (layer-dependent).
  for (std::size_t i = e; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(weights[i - 1], weights[j]);
  }
  popularity_ = std::move(weights);

  cdf_.resize(e);
  double acc = 0.0;
  for (std::size_t i = 0; i < e; ++i) {
    acc += popularity_[i];
    cdf_[i] = acc;
  }
  MONDE_ASSERT(acc > 0.999 && acc < 1.001, "popularity must normalize to 1");
}

std::vector<std::uint64_t> GatingModel::route(std::int64_t tokens, Rng& rng) const {
  MONDE_REQUIRE(tokens >= 0, "token count must be >= 0");
  const std::size_t e = popularity_.size();
  std::vector<std::uint64_t> counts(e, 0);
  const double total = cdf_.back();

  auto draw = [&]() {
    const double r = rng.next_double() * total;
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
    return std::min(static_cast<std::size_t>(it - cdf_.begin()), e - 1);
  };

  for (std::int64_t t = 0; t < tokens; ++t) {
    // top_k distinct experts per token (dropless top-k routing).
    std::size_t first = draw();
    counts[first]++;
    std::size_t prev = first;
    for (int k = 1; k < top_k_; ++k) {
      std::size_t next = draw();
      // Resample on collision; with E >> k this terminates fast. Guard with
      // a linear fallback for pathological popularity vectors.
      int attempts = 0;
      while (next == prev && attempts++ < 64) next = draw();
      if (next == prev) next = (prev + 1) % e;
      counts[next]++;
      prev = next;
    }
  }
  return counts;
}

std::int64_t MoeLayerWork::activated_experts() const {
  return std::count_if(tokens_per_expert.begin(), tokens_per_expert.end(),
                       [](std::uint64_t c) { return c > 0; });
}

std::uint64_t MoeLayerWork::routed_tokens() const {
  return std::accumulate(tokens_per_expert.begin(), tokens_per_expert.end(), std::uint64_t{0});
}

std::vector<std::size_t> MoeLayerWork::experts_by_load() const {
  std::vector<std::size_t> idx(tokens_per_expert.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return tokens_per_expert[a] > tokens_per_expert[b];
  });
  return idx;
}

}  // namespace monde::moe
