// MoE transformer model configurations (paper Table 2 and Figure 7(a)).
#pragma once

#include <cstdint>
#include <string>

#include "compute/gemm.hpp"

namespace monde::moe {

/// Architecture of an encoder-decoder MoE transformer.
struct MoeModelConfig {
  std::string name;
  std::int64_t dmodel = 0;
  std::int64_t dff = 0;
  int encoder_blocks = 0;
  int decoder_blocks = 0;
  /// Every `moe_every`-th block replaces its dense FFN with an MoE FFN
  /// (Switch: every 2nd block; NLLB-MoE: every 4th). 0 = fully dense model.
  int moe_every = 0;
  std::int64_t num_experts = 0;  ///< E, experts per MoE layer
  int top_k = 1;
  std::int64_t vocab_size = 32128;
  compute::DataType dtype = compute::DataType::kBf16;

  [[nodiscard]] int encoder_moe_layers() const {
    return moe_every > 0 ? encoder_blocks / moe_every : 0;
  }
  [[nodiscard]] int decoder_moe_layers() const {
    return moe_every > 0 ? decoder_blocks / moe_every : 0;
  }
  [[nodiscard]] int total_moe_layers() const {
    return encoder_moe_layers() + decoder_moe_layers();
  }
  /// True if block `index` (0-based) within a stack carries an MoE FFN.
  /// MoE layers sit at the *end* of each `moe_every` group, matching the
  /// Switch/NLLB placement (blocks 1, 3, 5, ... for moe_every = 2).
  [[nodiscard]] bool is_moe_block(int index) const {
    return moe_every > 0 && (index % moe_every) == (moe_every - 1);
  }

  /// Parameter bytes of a single expert FFN (two linears).
  [[nodiscard]] Bytes expert_bytes() const {
    return compute::ExpertShape{1, dmodel, dff}.weight_bytes(dtype);
  }
  /// All expert parameters across every MoE layer (the offloaded working set).
  [[nodiscard]] Bytes total_expert_bytes() const {
    return Bytes{expert_bytes().count() * static_cast<std::uint64_t>(num_experts) *
                 static_cast<std::uint64_t>(total_moe_layers())};
  }
  /// Dense (always-resident) parameters: embeddings, attention projections,
  /// the dense FFNs of non-MoE blocks, and layer norms.
  [[nodiscard]] Bytes non_expert_bytes() const;

  /// Per-MoE-layer expert parameter bytes (E experts).
  [[nodiscard]] Bytes layer_expert_bytes() const {
    return Bytes{expert_bytes().count() * static_cast<std::uint64_t>(num_experts)};
  }

  void validate() const;

  // --- Presets (paper Table 2 and Section 4) -------------------------------

  /// Switch-Large-128: T5-Large backbone, 128 experts, top-1, dmodel 1024.
  [[nodiscard]] static MoeModelConfig switch_large_128();
  /// NLLB-MoE: 128 experts, top-2, dmodel 2048 (54B-parameter translation model).
  [[nodiscard]] static MoeModelConfig nllb_moe_128();
  /// T5-Large dense baseline (Figure 2(a)).
  [[nodiscard]] static MoeModelConfig t5_large_dense();
  /// NLLB-3.3B dense baseline (Figure 2(a)).
  [[nodiscard]] static MoeModelConfig nllb_dense_3_3b();
  /// Switch-Base-style variants for the Figure 7(a) sensitivity study:
  /// d768-E64, d768-E128, d1024-E128.
  [[nodiscard]] static MoeModelConfig switch_variant(std::int64_t dmodel_, std::int64_t experts);
  /// Generic scaling helper: same topology, overridden E (Figure 2(a) sweep).
  [[nodiscard]] MoeModelConfig with_experts(std::int64_t experts) const;
};

}  // namespace monde::moe
