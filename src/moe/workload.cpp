#include "moe/workload.hpp"

#include "common/error.hpp"

namespace monde::moe {

WorkloadGenerator::WorkloadGenerator(const MoeModelConfig& model, const SkewProfile& profile,
                                     std::uint64_t seed)
    : model_{model}, rng_{seed}, seed_{seed} {
  model_.validate();
  MONDE_REQUIRE(model_.moe_every > 0, "workload generation needs an MoE model");
  for (int i = 0; i < model_.encoder_moe_layers(); ++i) {
    encoder_gatings_.emplace_back(model_.num_experts, model_.top_k, profile,
                                  seed * std::uint64_t{1000003} + static_cast<std::uint64_t>(i));
  }
  for (int i = 0; i < model_.decoder_moe_layers(); ++i) {
    decoder_gatings_.emplace_back(model_.num_experts, model_.top_k, profile,
                                  seed * std::uint64_t{2000003} + static_cast<std::uint64_t>(i));
  }
}

EncoderPass WorkloadGenerator::encoder_pass(std::int64_t batch, std::int64_t seq_len) {
  MONDE_REQUIRE(batch > 0 && seq_len > 0, "encoder pass needs tokens");
  EncoderPass pass;
  pass.batch = batch;
  pass.seq_len = seq_len;
  const std::int64_t tokens = batch * seq_len;
  for (std::size_t i = 0; i < encoder_gatings_.size(); ++i) {
    MoeLayerWork work;
    work.layer_id = static_cast<int>(i);
    work.total_tokens = tokens;
    work.top_k = model_.top_k;
    work.tokens_per_expert = encoder_gatings_[i].route(tokens, rng_);
    pass.moe_layers.push_back(std::move(work));
  }
  return pass;
}

std::vector<DecoderStep> WorkloadGenerator::decoder_steps(std::int64_t batch,
                                                          std::int64_t steps) {
  MONDE_REQUIRE(batch > 0, "decoder run needs batch > 0, got " << batch);
  MONDE_REQUIRE(steps > 0, "decoder run needs steps > 0, got " << steps);
  std::vector<DecoderStep> out;
  out.reserve(static_cast<std::size_t>(steps));
  for (std::int64_t s = 0; s < steps; ++s) {
    DecoderStep step;
    step.step_index = s;
    step.batch = batch;
    for (std::size_t i = 0; i < decoder_gatings_.size(); ++i) {
      MoeLayerWork work;
      // Layer ids are unique across the encoder and decoder stacks so that
      // per-expert state (e.g. the GPU expert cache) never aliases.
      work.layer_id = model_.encoder_moe_layers() + static_cast<int>(i);
      work.total_tokens = batch;
      work.top_k = model_.top_k;
      work.tokens_per_expert = decoder_gatings_[i].route(batch, rng_);
      step.moe_layers.push_back(std::move(work));
    }
    out.push_back(std::move(step));
  }
  return out;
}

namespace {

/// 64-bit finalizer (murmur3 fmix64): decorrelates the per-request routing
/// streams derived from (seed, request_id, step, layer).
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::vector<MoeLayerWork> WorkloadGenerator::decoder_step_for(std::uint64_t request_id,
                                                              std::int64_t step,
                                                              std::int64_t tokens) const {
  MONDE_REQUIRE(step >= 0, "decoder step index must be >= 0, got " << step);
  MONDE_REQUIRE(tokens > 0, "decoder step needs tokens > 0, got " << tokens);
  std::vector<MoeLayerWork> out;
  out.reserve(decoder_gatings_.size());
  for (std::size_t i = 0; i < decoder_gatings_.size(); ++i) {
    Rng rng{mix64(mix64(mix64(seed_ ^ 0x5e17ed5e17ed5e17ULL) + request_id) +
                  static_cast<std::uint64_t>(step)) +
            static_cast<std::uint64_t>(i)};
    MoeLayerWork work;
    work.layer_id = model_.encoder_moe_layers() + static_cast<int>(i);
    work.total_tokens = tokens;
    work.top_k = model_.top_k;
    work.tokens_per_expert = decoder_gatings_[i].route(tokens, rng);
    out.push_back(std::move(work));
  }
  return out;
}

ExpertProfile WorkloadGenerator::expert_profile_for(std::uint64_t request_id, int width,
                                                    std::int64_t tokens) const {
  MONDE_REQUIRE(width > 0, "expert profile needs width > 0, got " << width);
  MONDE_REQUIRE(tokens > 0, "expert profile needs probe tokens > 0, got " << tokens);
  ExpertProfile profile;
  profile.experts.reserve(decoder_gatings_.size() * static_cast<std::size_t>(width));
  for (std::size_t i = 0; i < decoder_gatings_.size(); ++i) {
    // A salt distinct from decoder_step_for's keeps the profiling probe on
    // its own stream: deriving a profile must not change the routed work.
    Rng rng{mix64(mix64(seed_ ^ 0x70f11e70f11e70f1ULL) + request_id) +
            static_cast<std::uint64_t>(i)};
    MoeLayerWork work;
    work.layer_id = model_.encoder_moe_layers() + static_cast<int>(i);
    work.total_tokens = tokens;
    work.top_k = model_.top_k;
    work.tokens_per_expert = decoder_gatings_[i].route(tokens, rng);
    const auto by_load = work.experts_by_load();
    const auto keep = std::min<std::size_t>(by_load.size(), static_cast<std::size_t>(width));
    for (std::size_t r = 0; r < keep; ++r) {
      profile.experts.push_back({work.layer_id, static_cast<int>(by_load[r])});
    }
  }
  profile.rebuild_signature();
  return profile;
}

std::vector<MoeLayerWork> WorkloadGenerator::merge_layer_works(
    const std::vector<std::vector<MoeLayerWork>>& per_request) {
  MONDE_REQUIRE(!per_request.empty(), "cannot merge zero routing draws");
  std::vector<MoeLayerWork> merged = per_request.front();
  for (std::size_t r = 1; r < per_request.size(); ++r) {
    const auto& draws = per_request[r];
    MONDE_REQUIRE(draws.size() == merged.size(),
                  "routing draws cover different layer counts: " << draws.size() << " vs "
                                                                 << merged.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
      MoeLayerWork& acc = merged[i];
      const MoeLayerWork& w = draws[i];
      MONDE_REQUIRE(w.layer_id == acc.layer_id &&
                        w.tokens_per_expert.size() == acc.tokens_per_expert.size(),
                    "routing draws disagree on layer shape");
      acc.total_tokens += w.total_tokens;
      for (std::size_t e = 0; e < acc.tokens_per_expert.size(); ++e) {
        acc.tokens_per_expert[e] += w.tokens_per_expert[e];
      }
    }
  }
  return merged;
}

const GatingModel& WorkloadGenerator::encoder_gating(std::size_t i) const {
  MONDE_REQUIRE(i < encoder_gatings_.size(), "encoder gating index out of range");
  return encoder_gatings_[i];
}

}  // namespace monde::moe
