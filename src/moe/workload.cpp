#include "moe/workload.hpp"

#include "common/error.hpp"

namespace monde::moe {

WorkloadGenerator::WorkloadGenerator(const MoeModelConfig& model, const SkewProfile& profile,
                                     std::uint64_t seed)
    : model_{model}, rng_{seed} {
  model_.validate();
  MONDE_REQUIRE(model_.moe_every > 0, "workload generation needs an MoE model");
  for (int i = 0; i < model_.encoder_moe_layers(); ++i) {
    encoder_gatings_.emplace_back(model_.num_experts, model_.top_k, profile,
                                  seed * std::uint64_t{1000003} + static_cast<std::uint64_t>(i));
  }
  for (int i = 0; i < model_.decoder_moe_layers(); ++i) {
    decoder_gatings_.emplace_back(model_.num_experts, model_.top_k, profile,
                                  seed * std::uint64_t{2000003} + static_cast<std::uint64_t>(i));
  }
}

EncoderPass WorkloadGenerator::encoder_pass(std::int64_t batch, std::int64_t seq_len) {
  MONDE_REQUIRE(batch > 0 && seq_len > 0, "encoder pass needs tokens");
  EncoderPass pass;
  pass.batch = batch;
  pass.seq_len = seq_len;
  const std::int64_t tokens = batch * seq_len;
  for (std::size_t i = 0; i < encoder_gatings_.size(); ++i) {
    MoeLayerWork work;
    work.layer_id = static_cast<int>(i);
    work.total_tokens = tokens;
    work.top_k = model_.top_k;
    work.tokens_per_expert = encoder_gatings_[i].route(tokens, rng_);
    pass.moe_layers.push_back(std::move(work));
  }
  return pass;
}

std::vector<DecoderStep> WorkloadGenerator::decoder_steps(std::int64_t batch,
                                                          std::int64_t steps) {
  MONDE_REQUIRE(batch > 0 && steps > 0, "decoder run needs tokens");
  std::vector<DecoderStep> out;
  out.reserve(static_cast<std::size_t>(steps));
  for (std::int64_t s = 0; s < steps; ++s) {
    DecoderStep step;
    step.step_index = s;
    step.batch = batch;
    for (std::size_t i = 0; i < decoder_gatings_.size(); ++i) {
      MoeLayerWork work;
      // Layer ids are unique across the encoder and decoder stacks so that
      // per-expert state (e.g. the GPU expert cache) never aliases.
      work.layer_id = model_.encoder_moe_layers() + static_cast<int>(i);
      work.total_tokens = batch;
      work.top_k = model_.top_k;
      work.tokens_per_expert = decoder_gatings_[i].route(batch, rng_);
      step.moe_layers.push_back(std::move(work));
    }
    out.push_back(std::move(step));
  }
  return out;
}

const GatingModel& WorkloadGenerator::encoder_gating(std::size_t i) const {
  MONDE_REQUIRE(i < encoder_gatings_.size(), "encoder gating index out of range");
  return encoder_gatings_[i];
}

}  // namespace monde::moe
