#include "moe/trace.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace monde::moe {

void save_trace(std::ostream& os, const std::vector<MoeLayerWork>& layers) {
  for (const auto& w : layers) {
    os << w.layer_id << ',' << w.total_tokens << ',' << w.top_k;
    for (const auto c : w.tokens_per_expert) os << ',' << c;
    os << '\n';
  }
}

void save_trace_file(const std::string& path, const std::vector<MoeLayerWork>& layers) {
  std::ofstream os{path};
  MONDE_REQUIRE(os.good(), "cannot open trace file '" << path << "' for writing");
  save_trace(os, layers);
  MONDE_REQUIRE(os.good(), "failed writing trace file '" << path << "'");
}

std::vector<MoeLayerWork> load_trace(std::istream& is) {
  std::vector<MoeLayerWork> layers;
  std::string line;
  std::size_t expert_count = 0;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row{line};
    MoeLayerWork w;
    char sep = ',';
    row >> w.layer_id >> sep >> w.total_tokens >> sep >> w.top_k;
    MONDE_REQUIRE(row.good(), "trace line " << line_no << ": malformed header fields");
    MONDE_REQUIRE(w.total_tokens >= 0 && w.top_k >= 1,
                  "trace line " << line_no << ": invalid token/top_k values");
    std::uint64_t count = 0;
    while (row >> sep >> count) w.tokens_per_expert.push_back(count);
    MONDE_REQUIRE(!w.tokens_per_expert.empty(),
                  "trace line " << line_no << ": no expert counts");
    if (expert_count == 0) expert_count = w.tokens_per_expert.size();
    MONDE_REQUIRE(w.tokens_per_expert.size() == expert_count,
                  "trace line " << line_no << ": expert count "
                                << w.tokens_per_expert.size() << " != " << expert_count);
    layers.push_back(std::move(w));
  }
  return layers;
}

std::vector<MoeLayerWork> load_trace_file(const std::string& path) {
  std::ifstream is{path};
  MONDE_REQUIRE(is.good(), "cannot open trace file '" << path << "'");
  return load_trace(is);
}

}  // namespace monde::moe
