#include "ndp/ndp_core.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/error.hpp"

namespace monde::ndp {

namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) { return (a + b - 1) / b; }

/// splitmix64 finalizer: a cheap, well-mixed integer hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

NdpCoreSim::MemoTable::~MemoTable() {
  for (std::atomic<Node*>& head : heads_) {
    Node* n = head.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }
}

std::size_t NdpCoreSim::MemoTable::bucket_of(const Key& key) {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(std::get<0>(key)));
  h = mix64(h ^ static_cast<std::uint64_t>(std::get<1>(key)));
  h = mix64(h ^ static_cast<std::uint64_t>(std::get<2>(key)));
  h = mix64(h ^ static_cast<std::uint64_t>(std::get<3>(key)));
  return static_cast<std::size_t>(h) % kBuckets;
}

const NdpKernelResult* NdpCoreSim::MemoTable::find(const Key& key) const {
  // The acquire pairs with insert()'s release store: a published node's key,
  // value, and next pointer are fully visible and never mutated afterwards.
  for (const Node* n = heads_[bucket_of(key)].load(std::memory_order_acquire); n != nullptr;
       n = n->next) {
    if (n->key == key) return &n->value;
  }
  return nullptr;
}

const NdpKernelResult& NdpCoreSim::MemoTable::insert(const Key& key,
                                                     const NdpKernelResult& value) {
  std::lock_guard<std::mutex> lock{insert_mu_};
  // A racing computer of the same shape may have published first; its value
  // is identical (the simulation is deterministic in the shape), so the
  // first insert is canonical and the duplicate is simply dropped.
  std::atomic<Node*>& head = heads_[bucket_of(key)];
  for (Node* n = head.load(std::memory_order_relaxed); n != nullptr; n = n->next) {
    if (n->key == key) return n->value;
  }
  Node* node = new Node{key, value, head.load(std::memory_order_relaxed)};
  head.store(node, std::memory_order_release);
  return node->value;
}

NdpCoreSim::NdpCoreSim(NdpSpec ndp, dram::Spec mem) : ndp_{ndp}, mem_{std::move(mem)} {
  mem_.validate();
  MONDE_REQUIRE(ndp_.num_units > 0 && ndp_.pe_rows > 0 && ndp_.pe_cols > 0,
                "NDP array dimensions must be positive");
  MONDE_REQUIRE(ndp_.clock_ghz > 0.0, "NDP clock must be positive");
  MONDE_REQUIRE(ndp_.stream_chunk_rows > 0, "stream chunk must be positive");
}

std::uint64_t NdpCoreSim::compute_cycles_for(const compute::GemmShape& shape) const {
  if (shape.m <= 0 || shape.n <= 0 || shape.k <= 0) return 0;
  // Output-stationary: each 4x256 C-tile pass streams the full K dimension
  // (one K element per cycle per PE) plus skew fill/drain.
  const auto row_panels = ceil_div(static_cast<std::uint64_t>(shape.m),
                                   static_cast<std::uint64_t>(ndp_.tile_rows()));
  const auto col_panels = ceil_div(static_cast<std::uint64_t>(shape.n),
                                   static_cast<std::uint64_t>(ndp_.tile_cols()));
  const auto per_pass =
      static_cast<std::uint64_t>(shape.k) + static_cast<std::uint64_t>(ndp_.pipeline_fill);
  return row_panels * col_panels * per_pass;
}

std::vector<NdpCoreSim::Chunk> NdpCoreSim::build_chunks(const compute::GemmShape& shape,
                                                        compute::DataType dt) const {
  MONDE_REQUIRE(shape.m > 0 && shape.n > 0 && shape.k > 0, "GEMM dims must be positive");
  const int elem = compute::bytes_per_element(dt);
  const auto access = static_cast<std::uint64_t>(mem_.org.access_bytes);
  auto blocks_of = [&](std::uint64_t bytes) { return ceil_div(bytes, access); };

  const auto tile_rows = static_cast<std::uint64_t>(ndp_.tile_rows());
  const auto tile_cols = static_cast<std::uint64_t>(ndp_.tile_cols());
  const auto chunk_k = static_cast<std::uint64_t>(ndp_.stream_chunk_rows);
  const auto m = static_cast<std::uint64_t>(shape.m);
  const auto n = static_cast<std::uint64_t>(shape.n);
  const auto k = static_cast<std::uint64_t>(shape.k);

  std::vector<Chunk> chunks;
  chunks.reserve(ceil_div(m, tile_rows) * ceil_div(n, tile_cols) * ceil_div(k, chunk_k) + 4);

  for (std::uint64_t r0 = 0; r0 < m; r0 += tile_rows) {
    const std::uint64_t rows = std::min(tile_rows, m - r0);
    // A-tile load for this row panel: rows x K activations, reused across
    // all column panels of the panel (held in the operand buffer).
    Chunk a_load;
    a_load.load_act_blocks = blocks_of(rows * k * static_cast<std::uint64_t>(elem));
    chunks.push_back(a_load);

    for (std::uint64_t c0 = 0; c0 < n; c0 += tile_cols) {
      const std::uint64_t cols = std::min(tile_cols, n - c0);
      for (std::uint64_t k0 = 0; k0 < k; k0 += chunk_k) {
        const std::uint64_t krows = std::min(chunk_k, k - k0);
        Chunk ch;
        ch.load_blocks = blocks_of(krows * cols * static_cast<std::uint64_t>(elem));
        ch.compute_cycles =
            krows + (k0 == 0 ? static_cast<std::uint64_t>(ndp_.pipeline_fill) : 0);
        if (k0 + chunk_k >= k) {
          // Last chunk of the pass: write the finished C tile back.
          ch.store_blocks = blocks_of(rows * cols * static_cast<std::uint64_t>(elem));
        }
        chunks.push_back(ch);
      }
    }
  }
  return chunks;
}

NdpKernelResult NdpCoreSim::run_pipeline(const std::vector<std::vector<Chunk>>& kernels) const {
  dram::DramSystem dramsys{mem_};
  dramsys.set_exhaustive_tick(exhaustive_tick);
  constexpr std::uint64_t kNoLimit = ~std::uint64_t{0};
  const Duration period = mem_.clock_period();
  // Smallest cycle k with k * period >= t: the first cycle at which the
  // per-cycle reference loop would observe `now >= t`. The float estimate is
  // corrected with the exact Duration comparison so fast-forwarding wakes at
  // precisely the cycle the exhaustive loop would act on.
  auto cycle_for_time = [&](Duration t) -> std::uint64_t {
    if (t >= Duration::infinite()) return kNoLimit;
    if (t <= Duration::zero()) return 0;
    auto k = static_cast<std::uint64_t>(std::max(0.0, std::floor(t.ns() / period.ns())));
    while (period * static_cast<double>(k) < t) ++k;
    while (k > 0 && period * static_cast<double>(k - 1) >= t) --k;
    return k;
  };
  const PartitionLayout weights{mem_, dramsys.mapper(), Partition::kWeights};
  // With partitioning disabled (ablation), activations share the weight
  // banks and contend for the same row buffers.
  const PartitionLayout acts{mem_, dramsys.mapper(),
                             bank_partitioning ? Partition::kActivations
                                               : Partition::kWeights};

  NdpKernelResult result;
  Duration kernel_chain_end = Duration::zero();

  // Sequential block cursors: weights stream contiguously; activations place
  // A tiles first and C tiles behind them (distinct rows, same parity).
  std::uint64_t w_cursor = 0;
  std::uint64_t a_cursor = 0;
  std::uint64_t c_cursor = acts.block_count() / 2;

  for (const auto& chunks : kernels) {
    if (chunks.empty()) continue;
    const std::size_t total = chunks.size();
    // Kernel may start only after the previous kernel in the chain is done
    // (linear2 consumes linear1's output) plus instruction decode.
    const Duration t0 = kernel_chain_end + ndp_.kernel_decode;

    std::vector<Duration> load_done(total, Duration::zero());
    std::vector<std::uint64_t> loads_remaining(total, 0);
    std::vector<Duration> compute_start(total, Duration::zero());
    std::vector<Duration> compute_end(total, Duration::zero());
    Duration last_store_done = t0;

    // Pending DRAM work, generated lazily per chunk.
    struct PendingReq {
      std::uint64_t addr;
      bool is_write;
      std::size_t chunk;
    };
    std::deque<PendingReq> inject;
    std::deque<PendingReq> deferred_stores;  // released when their pass computes
    std::vector<Duration> store_release(total, Duration::infinite());

    auto gen_chunk_requests = [&](std::size_t idx) {
      const Chunk& ch = chunks[idx];
      loads_remaining[idx] = ch.load_blocks + ch.load_act_blocks;
      for (std::uint64_t b = 0; b < ch.load_blocks; ++b) {
        inject.push_back({weights.block_address(w_cursor % weights.block_count()), false, idx});
        ++w_cursor;
      }
      for (std::uint64_t b = 0; b < ch.load_act_blocks; ++b) {
        inject.push_back({acts.block_address(a_cursor % (acts.block_count() / 2)), false, idx});
        ++a_cursor;
      }
      for (std::uint64_t b = 0; b < ch.store_blocks; ++b) {
        deferred_stores.push_back(
            {acts.block_address(acts.block_count() / 2 +
                                c_cursor % (acts.block_count() / 2)),
             true, idx});
        ++c_cursor;
      }
      result.read_blocks += ch.load_blocks + ch.load_act_blocks;
      result.write_blocks += ch.store_blocks;
      result.compute_cycles += ch.compute_cycles;
    };

    std::size_t generated = 0;  // chunks whose requests exist
    std::size_t computed = 0;   // chunks whose compute has been scheduled
    std::size_t consumed_ptr = 0;  // chunks whose compute has finished by now()

    Duration compute_free = t0;
    bool chunk_completed = false;  // some chunk's last load retired

    auto all_loads_done = [&](std::size_t idx) { return loads_remaining[idx] == 0; };

    // Inject queued loads, oldest first, until channel admission blocks.
    auto pump_loads = [&] {
      while (!inject.empty() && dramsys.can_accept(inject.front().addr)) {
        const PendingReq& pr = inject.front();
        dram::Request req;
        req.addr = pr.addr;
        req.type = dram::Request::Type::kRead;
        const std::size_t chunk_idx = pr.chunk;
        req.on_complete = [&, chunk_idx](const dram::Request&, Duration t) {
          MONDE_ASSERT(loads_remaining[chunk_idx] > 0, "duplicate load completion");
          if (--loads_remaining[chunk_idx] == 0) {
            load_done[chunk_idx] = max(t, t0);
            chunk_completed = true;
          }
        };
        dramsys.enqueue(std::move(req));
        inject.pop_front();
      }
    };

    while (computed < total || !dramsys.idle() || !deferred_stores.empty() || !inject.empty()) {
      const Duration now = max(dramsys.now(), t0);

      // Buffer management: the chunk draining into the arrays plus up to
      // three prefetch slots are live (the skew unit consumes weights
      // through an elastic FIFO, so a buffer frees progressively as its
      // chunk drains; the extra slot is what hides the fixed DRAM access
      // latency at high clock rates). Chunk i may be fetched once chunk
      // i-3 has started compute.
      while (consumed_ptr < computed && compute_start[consumed_ptr] <= now) ++consumed_ptr;
      while (generated < total && generated < consumed_ptr + 3) {
        gen_chunk_requests(generated);
        ++generated;
      }

      // Inject loads subject to channel admission.
      pump_loads();

      // Inject stores whose pass has computed.
      while (!deferred_stores.empty()) {
        const PendingReq& pr = deferred_stores.front();
        if (store_release[pr.chunk] > now) break;
        if (!dramsys.can_accept(pr.addr)) break;
        dram::Request req;
        req.addr = pr.addr;
        req.type = dram::Request::Type::kWrite;
        req.on_complete = [&](const dram::Request&, Duration t) {
          last_store_done = max(last_store_done, t);
        };
        dramsys.enqueue(std::move(req));
        deferred_stores.pop_front();
      }

      // Schedule compute for ready chunks (bookkeeping only; the MAC arrays
      // are not ticked -- their timing is deterministic given start times).
      while (computed < total && computed < generated && all_loads_done(computed) &&
             load_done[computed] <= now) {
        const Duration start = max(compute_free, load_done[computed]);
        const Duration len =
            ndp_.cycle_time() * static_cast<double>(chunks[computed].compute_cycles);
        compute_start[computed] = start;
        compute_end[computed] = start + len;
        compute_free = compute_end[computed];
        store_release[computed] = compute_end[computed];
        ++computed;
      }

      if (computed >= total && dramsys.idle() && deferred_stores.empty() && inject.empty()) {
        break;
      }

      // External gates: cycles at which this loop's *time-based* conditions
      // (writeback release, prefetch-window opening) first change. DRAM-state
      // conditions (admission, load completion) change only at controller
      // events, which advance_until never skips. A gate that is already due
      // -- e.g. the compute scheduling above just assigned a start time in
      // the past -- re-runs this bookkeeping at the very next cycle, exactly
      // when the per-cycle reference loop would act on it.
      std::uint64_t limit = kNoLimit;
      if (!deferred_stores.empty()) {
        const Duration release = store_release[deferred_stores.front().chunk];
        limit = std::min(limit, std::max(dramsys.cycle() + 1, cycle_for_time(release)));
      }
      if (consumed_ptr < computed) {
        limit = std::min(limit, std::max(dramsys.cycle() + 1,
                                         cycle_for_time(compute_start[consumed_ptr])));
      }
      dramsys.advance_until(limit);

      // Steady-state batch drain: while every remaining interaction is load
      // injection and in-flight completion -- no writeback is releasable
      // before `limit` and the prefetch window cannot move until a chunk's
      // loads finish -- the per-chunk bookkeeping above is provably inert.
      // Drain the homogeneous batch here in a tight loop instead of paying
      // it per event, returning the moment a chunk completes or a gate hits.
      const bool stores_gated =
          deferred_stores.empty() || store_release[deferred_stores.front().chunk] > now;
      if (stores_gated && !exhaustive_tick) {
        while (!chunk_completed && dramsys.cycle() < limit) {
          pump_loads();
          if (dramsys.idle() && inject.empty()) break;
          dramsys.advance_until(limit);
        }
      }
      chunk_completed = false;
    }

    const Duration kernel_done = max(compute_free, last_store_done);
    kernel_chain_end = kernel_done;
  }

  result.latency = kernel_chain_end;
  const dram::Stats stats = dramsys.stats();
  result.row_hit_rate = stats.row_hit_rate();
  if (result.latency > Duration::zero()) {
    const double bytes = static_cast<double>((result.read_blocks + result.write_blocks) *
                                             static_cast<std::uint64_t>(mem_.org.access_bytes));
    result.achieved_bandwidth = Bandwidth::bytes_per_sec(bytes / result.latency.sec());
  }
  result.cycle_accurate = true;
  return result;
}

NdpKernelResult NdpCoreSim::simulate_gemm(const compute::GemmShape& shape,
                                          compute::DataType dt) {
  // The memo key folds in the ablation / simulation-mode flags.
  const Key key{shape.m, shape.n, shape.k, memo_flags(dt)};
  if (const NdpKernelResult* hit = gemm_memo_.find(key)) {
    memo_hits_.fetch_add(1, std::memory_order_relaxed);
    return *hit;
  }
  memo_misses_.fetch_add(1, std::memory_order_relaxed);
  // Computed outside any lock: racing threads may simulate the same shape
  // concurrently, but the result is shape-deterministic and insert() keeps
  // one canonical copy.
  const NdpKernelResult r = run_pipeline({build_chunks(shape, dt)});
  return gemm_memo_.insert(key, r);
}

NdpKernelResult NdpCoreSim::compute_bound_estimate(const compute::ExpertShape& expert,
                                                   compute::DataType dt) const {
  // Hot experts: arithmetic intensity is high enough that weight streaming
  // fully hides behind compute; latency = compute cycles + memory ramp.
  NdpKernelResult r;
  const std::uint64_t cycles =
      compute_cycles_for(expert.linear1()) + compute_cycles_for(expert.linear2());
  r.compute_cycles = cycles;
  const auto access = static_cast<std::uint64_t>(mem_.org.access_bytes);
  r.read_blocks = (expert.weight_bytes(dt).count() +
                   expert.activation_bytes(dt).count() / 2 + access - 1) /
                  access;
  r.write_blocks = (expert.activation_bytes(dt).count() / 2 + access - 1) / access;
  const Duration compute = ndp_.cycle_time() * static_cast<double>(cycles);
  // First-chunk latency: the pipeline cannot start before the first stream
  // chunk arrives (~one chunk at peak bandwidth + a DRAM access latency).
  const Bytes first_chunk{static_cast<std::uint64_t>(ndp_.stream_chunk_rows) *
                          static_cast<std::uint64_t>(ndp_.tile_cols()) *
                          static_cast<std::uint64_t>(compute::bytes_per_element(dt))};
  const Duration ramp =
      transfer_time(first_chunk, mem_.total_peak_bandwidth()) + Duration::nanos(100.0);
  r.latency = 2.0 * ndp_.kernel_decode + compute + 2.0 * ramp;
  if (r.latency > Duration::zero()) {
    const double bytes =
        static_cast<double>((r.read_blocks + r.write_blocks) * access);
    r.achieved_bandwidth = Bandwidth::bytes_per_sec(bytes / r.latency.sec());
  }
  r.row_hit_rate = 1.0;
  r.cycle_accurate = false;
  return r;
}

NdpKernelResult NdpCoreSim::simulate_expert(const compute::ExpertShape& expert,
                                            compute::DataType dt) {
  MONDE_REQUIRE(expert.tokens > 0, "expert simulation needs at least one token");
  const Key key{expert.tokens, expert.dmodel, expert.dff, memo_flags(dt)};
  if (const NdpKernelResult* hit = expert_memo_.find(key)) {
    memo_hits_.fetch_add(1, std::memory_order_relaxed);
    return *hit;
  }
  memo_misses_.fetch_add(1, std::memory_order_relaxed);
  NdpKernelResult r;
  if (expert.tokens > cycle_sim_token_limit) {
    r = compute_bound_estimate(expert, dt);
  } else {
    r = run_pipeline({build_chunks(expert.linear1(), dt), build_chunks(expert.linear2(), dt)});
    // Two kernels were decoded (gemm+relu, gemm).
    r.latency += 2.0 * ndp_.kernel_decode;
  }
  return expert_memo_.insert(key, r);
}

Duration NdpCoreSim::analytic_expert_lower_bound(const compute::ExpertShape& expert,
                                                 compute::DataType dt) const {
  if (expert.tokens <= 0) return Duration::zero();
  const std::uint64_t cycles =
      compute_cycles_for(expert.linear1()) + compute_cycles_for(expert.linear2());
  const Duration compute = ndp_.cycle_time() * static_cast<double>(cycles);
  const Duration stream = transfer_time(expert.weight_bytes(dt), mem_.total_peak_bandwidth());
  return max(compute, stream);
}

}  // namespace monde::ndp
