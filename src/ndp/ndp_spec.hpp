// MoNDE NDP core configuration (paper Section 3.1 and Table 2).
//
// The NDP core is 64 SIMD-controlled 4x4 MAC systolic arrays clocked at
// 1 GHz, fed by 264 KB of scratchpad/operand buffers. One "pass" computes a
// 4x256 output-stationary C tile (4 rows x 64 units * 4 columns), streaming
// the K dimension through the arrays in double-buffered chunks.
#pragma once

#include "common/units.hpp"

namespace monde::ndp {

/// Static NDP-core parameters.
struct NdpSpec {
  int num_units = 64;   ///< SIMD-controlled systolic arrays
  int pe_rows = 4;      ///< MAC rows per array (output tile height)
  int pe_cols = 4;      ///< MAC columns per array
  double clock_ghz = 1.0;

  Bytes scratchpad = Bytes::kib(136.0);       ///< weight stream buffers
  Bytes operand_buffers = Bytes::kib(128.0);  ///< activation / output buffers

  /// Systolic skew-unit fill/drain cycles added to the first chunk of a pass.
  int pipeline_fill = 16;
  /// K-rows of the weight matrix streamed per double-buffered chunk.
  int stream_chunk_rows = 128;
  /// Host-visible overhead per kernel: instruction decode + NDP dispatch.
  Duration kernel_decode = Duration::nanos(100.0);

  /// Output tile width of one pass: num_units * pe_cols columns.
  [[nodiscard]] int tile_cols() const { return num_units * pe_cols; }
  /// Output tile height of one pass.
  [[nodiscard]] int tile_rows() const { return pe_rows; }
  /// MACs retired per cycle across all arrays.
  [[nodiscard]] double macs_per_cycle() const {
    return static_cast<double>(num_units) * pe_rows * pe_cols;
  }
  /// Peak compute throughput (1 MAC = 2 FLOPs).
  [[nodiscard]] Flops peak_flops() const {
    return Flops::gflops(2.0 * macs_per_cycle() * clock_ghz);
  }
  [[nodiscard]] Duration cycle_time() const { return Duration::nanos(1.0 / clock_ghz); }

  /// The DAC'24 configuration: 64 units of 4x4 arrays @ 1 GHz, 264 KB buffers.
  [[nodiscard]] static NdpSpec monde_dac24() { return NdpSpec{}; }

  /// Compute scaled to match a memory-bandwidth scaling factor (the paper's
  /// Figure 7(b) uses "rate-matching NDP compute" for 0.5x/2.0x memory).
  [[nodiscard]] NdpSpec rate_matched(double factor) const {
    NdpSpec s = *this;
    s.clock_ghz = clock_ghz * factor;
    return s;
  }
};

}  // namespace monde::ndp
