// Cycle-level MoNDE NDP core simulator.
//
// This is the component the paper realizes with "a cycle-level expert
// computation simulator [using] Ramulator to model our MoNDE memory"
// (Section 4.1). The simulated machine (Section 3.1):
//
//   * 64 SIMD-controlled 4x4 MAC systolic arrays @ 1 GHz, output-stationary;
//   * one pass computes a 4x256 C tile, streaming K through the arrays in
//     double-buffered chunks via the skew unit;
//   * weights stream from even-indexed banks, activations/outputs use
//     odd-indexed banks (Section 3.4 memory mapping);
//   * the tailing activation (gemm+relu / gemm+gelu) is fused in the VecUnit
//     and adds no extra passes.
//
// The execution pipeline is simulated against the cycle-level DRAM system:
// chunk loads are injected with a two-deep double-buffering window, compute
// of a chunk starts when its loads complete and the arrays are free, and
// output tiles are written back when their pass finishes. Kernel latency is
// "instruction decode -> done register raised" (all outputs committed).
//
// The simulation is event-driven: the DRAM system fast-forwards its clock to
// the next cycle at which any controller state can change, and while all
// banks are in steady-state streaming the pipeline drains whole homogeneous
// chunk batches in one pass -- injecting loads and advancing between events
// without re-running the per-chunk bookkeeping -- returning to it only when
// a chunk's loads complete or an externally timed gate (writeback release,
// prefetch-window opening) arrives. Both shortcuts are cycle-exact: skipped
// cycles are provably no-op ticks, and the batch drain runs only while the
// skipped bookkeeping is provably inert. The per-cycle reference mode
// remains available via MONDE_EXHAUSTIVE_TICK (or `exhaustive_tick`); a
// differential test in tests/test_fastpath_diff.cpp pins the equivalence.
//
// Hot experts with many routed tokens are compute-bound (arithmetic
// intensity grows with the token count); above `cycle_sim_token_limit`
// tokens the simulator switches to a closed-form compute-bound model, which
// the cycle simulator itself validates at the crossover (see tests).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <tuple>
#include <vector>

#include "compute/gemm.hpp"
#include "dram/dram_system.hpp"
#include "ndp/layout.hpp"
#include "ndp/ndp_spec.hpp"

namespace monde::ndp {

/// Result of one simulated NDP kernel (or expert = two chained kernels).
struct NdpKernelResult {
  Duration latency = Duration::zero();  ///< decode -> done register
  std::uint64_t compute_cycles = 0;     ///< MAC-array busy cycles
  std::uint64_t read_blocks = 0;        ///< DRAM column reads issued
  std::uint64_t write_blocks = 0;       ///< DRAM column writes issued
  double row_hit_rate = 0.0;
  Bandwidth achieved_bandwidth;         ///< read+write over kernel latency
  bool cycle_accurate = true;  ///< false when the compute-bound fast path ran
};

/// The NDP core + device-memory simulator. One instance per MoNDE device
/// configuration; results are memoized by GEMM shape (deterministic).
///
/// Concurrency: simulate_gemm() / simulate_expert() may be called from many
/// threads at once (a parallel ClusterSim shares one NdpCoreSim across every
/// replica). The shape memo is a read-mostly concurrent table: lookups are
/// lock-free (the steady state once the shape space is warm), and a miss
/// computes the result outside any lock, then inserts under a mutex --
/// concurrent computers of one shape each derive the identical deterministic
/// value and converge on a single canonical entry, so memoized latencies are
/// bit-identical regardless of thread count or interleaving. Only the
/// hit/miss COUNTERS may differ run to run under concurrency (racing misses
/// on one shape each count once); they are diagnostics, never simulation
/// inputs. The public knobs (cycle_sim_token_limit, bank_partitioning,
/// exhaustive_tick) must be set before concurrent use begins.
class NdpCoreSim {
 public:
  NdpCoreSim(NdpSpec ndp, dram::Spec mem);

  /// Simulate a single gemm / gemm+relu kernel.
  NdpKernelResult simulate_gemm(const compute::GemmShape& shape, compute::DataType dt);

  /// Simulate one expert FFN: linear1 (gemm+relu) then linear2 (gemm), with
  /// linear2's weight streaming starting only after linear1 completes (its
  /// input is linear1's output).
  NdpKernelResult simulate_expert(const compute::ExpertShape& expert, compute::DataType dt);

  /// Closed-form lower bound: max(compute cycles, weight streaming at peak
  /// bandwidth). Used by the load-balancing planner (Equation 4's t_MD
  /// approximation) and as a test oracle.
  [[nodiscard]] Duration analytic_expert_lower_bound(const compute::ExpertShape& expert,
                                                     compute::DataType dt) const;

  /// Total MAC-array cycles for a GEMM (exact tile arithmetic, no memory).
  [[nodiscard]] std::uint64_t compute_cycles_for(const compute::GemmShape& shape) const;

  [[nodiscard]] const NdpSpec& ndp_spec() const { return ndp_; }
  [[nodiscard]] const dram::Spec& mem_spec() const { return mem_; }

  /// Above this token count per expert, use the compute-bound fast path.
  /// The compute/memory crossover for the DAC'24 configuration sits near
  /// 4 tokens; by 16 tokens experts are >4x compute-bound, so the fast
  /// path's error is small (validated against the cycle sim in tests).
  int cycle_sim_token_limit = 16;

  /// Section 3.4 design choice: map parameters to even banks and
  /// activations to odd banks. Setting this false places activations in the
  /// same (even) banks as the weights -- the ablation knob for
  /// bench/ablation_bank_partition.
  bool bank_partitioning = true;

  /// Opt-in per-cycle reference mode for the DRAM model (see
  /// DramSystem::set_exhaustive_tick). Folded into the memo key so fast and
  /// exhaustive results never alias in differential tests.
  bool exhaustive_tick = dram::DramSystem::exhaustive_tick_env_default();

  [[nodiscard]] std::uint64_t memo_hits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t memo_misses() const {
    return memo_misses_.load(std::memory_order_relaxed);
  }

 private:
  /// A double-buffered unit of pipeline work.
  struct Chunk {
    std::uint64_t load_blocks = 0;     ///< weight-partition reads
    std::uint64_t load_act_blocks = 0; ///< activation-partition reads (A tiles)
    std::uint64_t compute_cycles = 0;
    std::uint64_t store_blocks = 0;    ///< activation-partition writes (C tiles)
  };

  [[nodiscard]] std::vector<Chunk> build_chunks(const compute::GemmShape& shape,
                                                compute::DataType dt) const;

  /// Run chunk sequences through a fresh DRAM system. Each inner vector is a
  /// dependent kernel (kernel i+1 starts after kernel i completes).
  NdpKernelResult run_pipeline(const std::vector<std::vector<Chunk>>& kernels) const;

  NdpKernelResult compute_bound_estimate(const compute::ExpertShape& expert,
                                         compute::DataType dt) const;

  using Key = std::tuple<std::int64_t, std::int64_t, std::int64_t, int>;

  /// Memo-key flag word: datatype plus the knobs that change results.
  [[nodiscard]] int memo_flags(compute::DataType dt) const {
    return static_cast<int>(dt) * 4 + (bank_partitioning ? 2 : 0) + (exhaustive_tick ? 1 : 0);
  }

  /// Read-mostly concurrent memo table: fixed bucket array of immutable,
  /// prepend-only chains. find() is lock-free (acquire-load the bucket head,
  /// walk nodes that are never mutated after publication); insert() takes
  /// one mutex, re-checks, and publishes with a release store. Entries are
  /// never removed, so lookups need no reader registration and returned
  /// references stay valid for the table's lifetime.
  class MemoTable {
   public:
    MemoTable() = default;
    ~MemoTable();
    MemoTable(const MemoTable&) = delete;
    MemoTable& operator=(const MemoTable&) = delete;

    /// Lock-free lookup; nullptr on miss. The pointee is immutable.
    [[nodiscard]] const NdpKernelResult* find(const Key& key) const;

    /// Insert under the table mutex; returns the canonical entry (an earlier
    /// racer's identical value wins, the duplicate is discarded).
    const NdpKernelResult& insert(const Key& key, const NdpKernelResult& value);

   private:
    struct Node {
      Key key;
      NdpKernelResult value;
      Node* next = nullptr;
    };
    static constexpr std::size_t kBuckets = 512;
    [[nodiscard]] static std::size_t bucket_of(const Key& key);

    std::array<std::atomic<Node*>, kBuckets> heads_{};
    std::mutex insert_mu_;
  };

  NdpSpec ndp_;
  dram::Spec mem_;
  MemoTable gemm_memo_;
  MemoTable expert_memo_;
  std::atomic<std::uint64_t> memo_hits_{0};
  std::atomic<std::uint64_t> memo_misses_{0};
};

}  // namespace monde::ndp
