// Bank-partitioned device-memory layouts.
//
// Paper Section 3.4: "the parameters and activations are each mapped to the
// even and odd-indexed banks" to avoid contention between weight streaming
// and activation traffic, and data is laid out in ro-ba-bg-ra-co-ch order to
// maximize bandwidth for contiguous accesses.
//
// A PartitionLayout enumerates the column-access blocks of one bank-parity
// half of the device in bandwidth-friendly order (channel fastest, then
// column, rank, bank group, bank-within-parity, row slowest) and converts
// logical block indices to physical byte addresses.
#pragma once

#include <cstdint>

#include "dram/address.hpp"
#include "dram/spec.hpp"

namespace monde::ndp {

/// Which bank-parity half of the device a buffer lives in.
enum class Partition : std::uint8_t {
  kWeights = 0,      ///< even-indexed banks
  kActivations = 1,  ///< odd-indexed banks
};

/// Logical-block -> physical-address mapping within one bank-parity half.
class PartitionLayout {
 public:
  PartitionLayout(const dram::Spec& spec, const dram::AddressMapper& mapper, Partition part);

  /// Number of column-access blocks in this partition.
  [[nodiscard]] std::uint64_t block_count() const { return block_count_; }
  /// Bytes covered by this partition (half the device).
  [[nodiscard]] Bytes capacity() const;

  /// Physical byte address of logical block `index` (< block_count()).
  [[nodiscard]] std::uint64_t block_address(std::uint64_t index) const;

  /// Number of blocks needed to hold `bytes`.
  [[nodiscard]] std::uint64_t blocks_for(Bytes bytes) const;

  [[nodiscard]] int access_bytes() const { return spec_->org.access_bytes; }
  [[nodiscard]] Partition partition() const { return part_; }

 private:
  const dram::Spec* spec_;
  const dram::AddressMapper* mapper_;
  Partition part_;
  std::uint64_t block_count_;
};

}  // namespace monde::ndp
