#include "ndp/layout.hpp"

#include "common/error.hpp"

namespace monde::ndp {

PartitionLayout::PartitionLayout(const dram::Spec& spec, const dram::AddressMapper& mapper,
                                 Partition part)
    : spec_{&spec}, mapper_{&mapper}, part_{part} {
  MONDE_REQUIRE(spec.org.banks_per_group % 2 == 0,
                "bank partitioning needs an even number of banks per group");
  const auto& org = spec.org;
  block_count_ = static_cast<std::uint64_t>(org.channels) *
                 static_cast<std::uint64_t>(org.columns) *
                 static_cast<std::uint64_t>(org.ranks) *
                 static_cast<std::uint64_t>(org.bankgroups) *
                 static_cast<std::uint64_t>(org.banks_per_group / 2) *
                 static_cast<std::uint64_t>(org.rows);
}

Bytes PartitionLayout::capacity() const {
  return Bytes{block_count_ * static_cast<std::uint64_t>(spec_->org.access_bytes)};
}

std::uint64_t PartitionLayout::block_address(std::uint64_t index) const {
  MONDE_REQUIRE(index < block_count_, "partition block index out of range");
  const auto& org = spec_->org;
  // Enumerate channel fastest -> column -> rank -> bank group -> bank pair ->
  // row slowest. This mirrors the ro-ba-bg-ra-co-ch physical order with the
  // bank LSB pinned to the partition parity, so contiguous logical blocks
  // stripe across all channels and open rows stay hot for whole sweeps.
  std::uint64_t v = index;
  auto take = [&v](int n) {
    const auto f = static_cast<int>(v % static_cast<std::uint64_t>(n));
    v /= static_cast<std::uint64_t>(n);
    return f;
  };
  dram::Address a;
  a.channel = take(org.channels);
  a.column = take(org.columns);
  a.rank = take(org.ranks);
  a.bankgroup = take(org.bankgroups);
  const int bank_pair = take(org.banks_per_group / 2);
  a.bank = bank_pair * 2 + (part_ == Partition::kActivations ? 1 : 0);
  a.row = take(org.rows);
  MONDE_ASSERT(v == 0, "block index decomposition overflow");
  return mapper_->compose(a);
}

std::uint64_t PartitionLayout::blocks_for(Bytes bytes) const {
  const auto gran = static_cast<std::uint64_t>(spec_->org.access_bytes);
  return (bytes.count() + gran - 1) / gran;
}

}  // namespace monde::ndp
