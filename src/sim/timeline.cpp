#include "sim/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace monde::sim {

void Timeline::record(Interval iv) {
  MONDE_REQUIRE(iv.end >= iv.start, "interval must not end before it starts");
  intervals_.push_back(std::move(iv));
}

Duration Timeline::end_time() const {
  Duration end = Duration::zero();
  for (const auto& iv : intervals_) end = max(end, iv.end);
  return end;
}

Duration Timeline::busy_time(StreamId stream) const {
  Duration busy = Duration::zero();
  for (const auto& iv : intervals_) {
    if (iv.stream == stream) busy += iv.end - iv.start;
  }
  return busy;
}

std::string Timeline::validate() const {
  // Sort per stream by start; any start earlier than the previous end on the
  // same stream is an overlap (zero-length markers are exempt).
  std::map<std::size_t, std::vector<const Interval*>> per_stream;
  for (const auto& iv : intervals_) per_stream[iv.stream.index].push_back(&iv);
  for (auto& [sid, ivs] : per_stream) {
    std::sort(ivs.begin(), ivs.end(), [](const Interval* a, const Interval* b) {
      if (a->start != b->start) return a->start < b->start;
      return a->end < b->end;
    });
    for (std::size_t i = 1; i < ivs.size(); ++i) {
      const Interval* prev = ivs[i - 1];
      const Interval* cur = ivs[i];
      // Allow equality (back-to-back) and zero-length markers.
      if (cur->start < prev->end && cur->start != cur->end && prev->start != prev->end) {
        std::ostringstream os;
        os << "stream " << sid << ": '" << cur->label << "' (start " << cur->start.str()
           << ") overlaps '" << prev->label << "' (end " << prev->end.str() << ")";
        return os.str();
      }
    }
  }
  return {};
}

std::string Timeline::to_chrome_trace(const std::vector<std::string>& stream_names) const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < stream_names.size(); ++i) {
    if (!first) os << ',';
    first = false;
    os << R"({"name":"thread_name","ph":"M","pid":0,"tid":)" << i
       << R"(,"args":{"name":")" << stream_names[i] << "\"}}";
  }
  for (const auto& iv : intervals_) {
    if (!first) os << ',';
    first = false;
    os << R"({"name":")" << iv.label << R"(","cat":")" << iv.category
       << R"(","ph":"X","pid":0,"tid":)" << iv.stream.index << ",\"ts\":" << iv.start.us()
       << ",\"dur\":" << (iv.end - iv.start).us() << "}";
  }
  os << "]}";
  return os.str();
}

std::string Timeline::to_ascii_gantt(const std::vector<std::string>& stream_names,
                                     std::size_t width) const {
  MONDE_REQUIRE(width >= 10, "gantt width too small");
  const Duration total = end_time();
  std::ostringstream os;
  if (total <= Duration::zero()) {
    os << "(empty timeline)\n";
    return os.str();
  }
  std::size_t name_w = 0;
  for (const auto& n : stream_names) name_w = std::max(name_w, n.size());

  // Category -> glyph, assigned in order of first appearance.
  std::map<std::string, char> glyphs;
  const std::string palette = "#*=+o%@$&x";
  for (const auto& iv : intervals_) {
    if (!glyphs.count(iv.category)) {
      glyphs[iv.category] = palette[glyphs.size() % palette.size()];
    }
  }

  for (std::size_t s = 0; s < stream_names.size(); ++s) {
    std::string row(width, '.');
    for (const auto& iv : intervals_) {
      if (iv.stream.index != s) continue;
      auto col = [&](Duration t) {
        const double frac = t / total;
        return std::min(width - 1, static_cast<std::size_t>(frac * static_cast<double>(width)));
      };
      const std::size_t a = col(iv.start);
      const std::size_t b = std::max(a, col(iv.end));
      for (std::size_t c = a; c <= b && c < width; ++c) row[c] = glyphs[iv.category];
    }
    os << stream_names[s] << std::string(name_w - stream_names[s].size(), ' ') << " |" << row
       << "|\n";
  }
  os << "legend:";
  for (const auto& [cat, g] : glyphs) os << "  " << g << "=" << cat;
  os << "  total=" << total.str() << '\n';
  return os.str();
}

void Timeline::merge(const Timeline& other) {
  intervals_.insert(intervals_.end(), other.intervals_.begin(), other.intervals_.end());
}

StreamId StreamSchedule::add_stream(std::string name) {
  names_.push_back(std::move(name));
  free_.push_back(Duration::zero());
  return StreamId{names_.size() - 1};
}

Duration StreamSchedule::free_at(StreamId stream) const {
  MONDE_REQUIRE(stream.index < free_.size(), "unknown stream");
  return free_[stream.index];
}

Interval StreamSchedule::place(StreamId stream, Duration earliest, Duration length,
                               std::string label, std::string category) {
  MONDE_REQUIRE(stream.index < free_.size(), "unknown stream");
  MONDE_REQUIRE(length >= Duration::zero(), "task length must be non-negative");
  const Duration start = max(earliest, free_[stream.index]);
  const Duration end = start + length;
  free_[stream.index] = end;
  Interval iv{stream, start, end, std::move(label), std::move(category)};
  timeline_.record(iv);
  return iv;
}

void StreamSchedule::block_until(StreamId stream, Duration when) {
  MONDE_REQUIRE(stream.index < free_.size(), "unknown stream");
  free_[stream.index] = max(free_[stream.index], when);
}

Duration StreamSchedule::makespan() const { return timeline_.end_time(); }

}  // namespace monde::sim
