// Discrete-event simulation kernel.
//
// A minimal, deterministic DES engine: events are (time, sequence) ordered,
// so simultaneous events fire in scheduling order. The DRAM subsystem keeps
// its own event-driven clock (DramSystem::advance_until fast-forwards
// between controller events) and uses this engine only when coupled with
// other event-driven models; see sim::Timeline for the recording side.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace monde::sim {

/// Event-driven simulator clock and dispatcher.
class Engine {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] Duration now() const { return now_; }

  /// Schedule `fn` to run `delay` after the current time. Delay must be >= 0.
  void schedule(Duration delay, Callback fn);

  /// Schedule `fn` at an absolute time >= now().
  void schedule_at(Duration when, Callback fn);

  /// Run until the event queue is empty.
  void run();

  /// Run until the queue is empty or simulated time would exceed `deadline`.
  /// Events at exactly `deadline` are executed.
  void run_until(Duration deadline);

  /// True if no events are pending.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Number of events executed so far (for tests / stats).
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Duration when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Duration now_ = Duration::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace monde::sim
