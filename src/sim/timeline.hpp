// Execution timelines over named hardware streams.
//
// The MoE workflow model (Figure 5 of the paper) schedules tasks onto
// parallel hardware streams: the GPU compute stream, the two PCIe directions,
// each MoNDE device, and the host. `StreamSchedule` performs deterministic
// list scheduling -- a task starts at max(stream free time, dependency ready
// times) -- and `Timeline` records the placed intervals for validation,
// queries, and Chrome-trace export.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace monde::sim {

/// Identifies a hardware stream within a StreamSchedule.
struct StreamId {
  std::size_t index = 0;
  constexpr auto operator<=>(const StreamId&) const = default;
};

/// A scheduled busy interval on one stream.
struct Interval {
  StreamId stream;
  Duration start;
  Duration end;
  std::string label;     ///< e.g. "PMove expert 17"
  std::string category;  ///< e.g. "pmove", "amove", "gemm", "gating"
};

/// A recorded set of intervals (append-only).
class Timeline {
 public:
  void record(Interval iv);

  [[nodiscard]] const std::vector<Interval>& intervals() const { return intervals_; }

  /// Latest end time over all intervals (zero when empty).
  [[nodiscard]] Duration end_time() const;

  /// Sum of interval lengths on one stream.
  [[nodiscard]] Duration busy_time(StreamId stream) const;

  /// Verifies no two intervals on the same stream overlap. Returns an empty
  /// string when valid, else a description of the first violation.
  [[nodiscard]] std::string validate() const;

  /// Chrome-trace ("chrome://tracing" / Perfetto) JSON. `stream_names[i]`
  /// labels stream i as a thread.
  [[nodiscard]] std::string to_chrome_trace(const std::vector<std::string>& stream_names) const;

  /// Render an ASCII Gantt chart (one row per stream), `width` columns wide.
  [[nodiscard]] std::string to_ascii_gantt(const std::vector<std::string>& stream_names,
                                           std::size_t width = 100) const;

  /// Merge another timeline's intervals into this one.
  void merge(const Timeline& other);

 private:
  std::vector<Interval> intervals_;
};

/// A collection of named streams with deterministic earliest-fit placement.
class StreamSchedule {
 public:
  /// Register a stream; returns its id. Names are for traces only.
  StreamId add_stream(std::string name);

  [[nodiscard]] std::size_t stream_count() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& stream_names() const { return names_; }

  /// Time at which the stream becomes free.
  [[nodiscard]] Duration free_at(StreamId stream) const;

  /// Place a task: start = max(earliest, stream free), end = start+length.
  /// Records the interval in the timeline and returns it. Zero-length tasks
  /// advance nothing but are still recorded (useful for markers).
  Interval place(StreamId stream, Duration earliest, Duration length, std::string label,
                 std::string category);

  /// Advance a stream's free time without recording (e.g. blocking waits).
  void block_until(StreamId stream, Duration when);

  [[nodiscard]] const Timeline& timeline() const { return timeline_; }
  [[nodiscard]] Timeline& timeline() { return timeline_; }

  /// Completion time of the whole schedule so far.
  [[nodiscard]] Duration makespan() const;

 private:
  std::vector<std::string> names_;
  std::vector<Duration> free_;
  Timeline timeline_;
};

}  // namespace monde::sim
