#include "sim/engine.hpp"

#include "common/error.hpp"

namespace monde::sim {

void Engine::schedule(Duration delay, Callback fn) {
  MONDE_REQUIRE(delay >= Duration::zero(), "cannot schedule into the past");
  schedule_at(now_ + delay, std::move(fn));
}

void Engine::schedule_at(Duration when, Callback fn) {
  MONDE_REQUIRE(when >= now_, "cannot schedule before current time");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Engine::run() { run_until(Duration::infinite()); }

void Engine::run_until(Duration deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    // Copy out before pop: the callback may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++executed_;
    ev.fn();
  }
  if (queue_.empty() && now_ < deadline && deadline < Duration::infinite()) now_ = deadline;
}

}  // namespace monde::sim
