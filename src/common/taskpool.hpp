// A small fixed-size worker-thread pool for deterministic fan-out.
//
// TaskPool::run(n, fn) executes fn(i) for every index i in [0, n) across a
// fixed set of worker threads (the calling thread participates too) and
// blocks until every index has run. It is built for the cluster simulator's
// parallel advancement phase (serve/cluster.cpp), whose requirements shape
// the contract:
//
//   * Index-addressed work, not futures. Tasks are independent by
//     construction (each index touches its own replica); the pool never
//     orders them, and the CALLER commits results in index order afterwards
//     -- that commit discipline, not the pool, is what makes parallel runs
//     bit-identical to sequential ones.
//   * Chunked hand-out. Indices are claimed in contiguous chunks via one
//     atomic counter, so a million tiny tasks cost a few hundred
//     fetch_adds, and neighbouring indices (neighbouring replicas) stay on
//     one thread for locality.
//   * Deterministic exception propagation. If any invocation throws, run()
//     finishes the remaining indices (tasks are independent), then rethrows
//     the exception raised by the LOWEST index -- the same exception a
//     sequential loop would have surfaced first.
//   * Reusable. One pool serves any number of run() calls; workers idle on
//     a condition variable between them. run() itself must not be called
//     concurrently or reentrantly (one fan-out at a time).
//
// A pool of size 1 spawns no threads at all: run() degenerates to the plain
// sequential loop, so `threads = 1` configurations carry zero threading
// overhead (and zero behavior risk).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace monde::common {

/// Fixed worker-thread pool; see the file comment for the contract.
class TaskPool {
 public:
  /// `threads` is the TOTAL parallelism of a run() call: the calling thread
  /// plus threads - 1 spawned workers. Must be >= 1; 1 means fully
  /// sequential (no threads are spawned).
  explicit TaskPool(std::size_t threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total parallelism (spawned workers + the caller).
  [[nodiscard]] std::size_t threads() const { return workers_.size() + 1; }

  /// Execute fn(i) for every i in [0, n); blocks until all ran. Every index
  /// executes exactly once even when some throw; the lowest-index exception
  /// is rethrown. Not reentrant; one run() at a time.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  /// One fan-out in flight. Lives on run()'s stack; workers borrow it
  /// through job_ under mu_.
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t chunk = 1;
    std::atomic<std::size_t> next{0};    ///< first unclaimed index
    std::atomic<std::size_t> done{0};    ///< indices finished (success or throw)
    std::atomic<std::size_t> active{0};  ///< workers currently inside the job
    std::mutex err_mu;
    std::size_t err_index = 0;  ///< lowest throwing index so far
    std::exception_ptr err;     ///< its exception (null = no failure)
  };

  /// Claim and execute chunks until the job is exhausted.
  void work_on(Job& job);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;       ///< wakes workers: new job or shutdown
  std::condition_variable done_cv_;  ///< wakes run(): all indices finished
  Job* job_ = nullptr;               ///< current fan-out (null = idle)
  std::uint64_t generation_ = 0;     ///< bumped per run(); workers join each job once
  bool stop_ = false;
};

}  // namespace monde::common
