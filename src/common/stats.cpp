#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace monde {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_{std::move(upper_bounds)} {
  MONDE_REQUIRE(!bounds_.empty(), "histogram needs at least one bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    MONDE_REQUIRE(bounds_[i] > bounds_[i - 1], "histogram bounds must be strictly increasing");
  }
  counts_.assign(bounds_.size() + 1, 0.0);  // +1 overflow bucket
}

void Histogram::add(double value, double weight) {
  // Half-open buckets: the first bound strictly greater than `value` names
  // the bucket, so bucket i covers [bounds[i-1], bounds[i]).
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bucket(std::size_t i) const {
  MONDE_REQUIRE(i < counts_.size(), "histogram bucket out of range");
  return counts_[i];
}

std::string Histogram::bucket_label(std::size_t i) const {
  MONDE_REQUIRE(i < counts_.size(), "histogram bucket out of range");
  char buf[64];
  if (i == counts_.size() - 1) {
    std::snprintf(buf, sizeof(buf), "%g+", bounds_.back());
    return buf;
  }
  const double lo = (i == 0) ? 0.0 : bounds_[i - 1];
  const double hi = bounds_[i];
  // Integral bounds describe count data; [lo, hi) over the integers is the
  // inclusive range lo..hi-1, the paper's Figure-3 style. Fractional bounds
  // print as the half-open interval itself.
  const bool integral = std::floor(lo) == lo && std::floor(hi) == hi;
  if (integral && hi - 1.0 >= lo) {
    if (hi - 1.0 == lo) {
      std::snprintf(buf, sizeof(buf), "%g", lo);
    } else {
      std::snprintf(buf, sizeof(buf), "%g-%g", lo, hi - 1.0);
    }
  } else {
    std::snprintf(buf, sizeof(buf), "[%g, %g)", lo, hi);
  }
  return buf;
}

void Histogram::scale(double k) {
  for (auto& c : counts_) c *= k;
  total_ *= k;
}

Histogram make_token_histogram() {
  return Histogram{{1.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}};
}

namespace {

/// Percentile of an already-sorted sample (linear interpolation, R-7).
double sorted_percentile(const std::vector<double>& sorted, double q) {
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

double percentile(std::vector<double> values, double q) {
  MONDE_REQUIRE(!values.empty(), "percentile of empty set");
  MONDE_REQUIRE(q >= 0.0 && q <= 100.0, "percentile q must be in [0, 100], got " << q);
  std::sort(values.begin(), values.end());
  return sorted_percentile(values, q);
}

Percentiles compute_percentiles(std::vector<double> values) {
  MONDE_REQUIRE(!values.empty(), "percentiles of empty set");
  std::sort(values.begin(), values.end());
  return {sorted_percentile(values, 50.0), sorted_percentile(values, 95.0),
          sorted_percentile(values, 99.0)};
}

double mean(const std::vector<double>& values) {
  MONDE_REQUIRE(!values.empty(), "mean of empty set");
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double imbalance_factor(const std::vector<double>& values) {
  MONDE_REQUIRE(!values.empty(), "imbalance of empty set");
  double mx = 0.0;
  for (const double v : values) {
    MONDE_REQUIRE(v >= 0.0, "imbalance requires non-negative values, got " << v);
    mx = std::max(mx, v);
  }
  const double m = mean(values);
  return m == 0.0 ? 0.0 : mx / m;
}

double geomean(const std::vector<double>& values) {
  MONDE_REQUIRE(!values.empty(), "geomean of empty set");
  double log_sum = 0.0;
  for (double v : values) {
    MONDE_REQUIRE(v > 0.0, "geomean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace monde
