// Streaming statistics and histograms used by the simulator's bookkeeping
// (DRAM row-hit rates, per-expert token distributions, latency summaries).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace monde {

/// Welford streaming mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram over explicit, strictly-increasing bucket upper bounds, with
/// half-open buckets: bucket `i` covers [bounds[i-1], bounds[i]) (the first
/// bucket is unbounded below; values are normally non-negative), and values
/// at or above the last bound land in the overflow bucket. This supports
/// both the paper's integer token-count buckets (Figure 3: 0, 1-3, 4-7,
/// ..., 128+) and fractional bounds such as latency-ms buckets.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void add(double value, double weight = 1.0);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  /// Weighted count in bucket `i` (last bucket is overflow).
  [[nodiscard]] double bucket(std::size_t i) const;
  /// Human-readable bucket interval. Integral bounds render in the paper's
  /// inclusive style ("0", "1-3", "128+"); fractional bounds render as the
  /// half-open interval itself ("[0.5, 2.5)", "2.5+").
  [[nodiscard]] std::string bucket_label(std::size_t i) const;
  [[nodiscard]] double total() const { return total_; }

  /// Divide all buckets by `k` (e.g., to average over batches).
  void scale(double k);

 private:
  std::vector<double> bounds_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Convenience: the Figure-3 token-count histogram buckets
/// 0, 1-3, 4-7, 8-15, 16-31, 32-63, 64-127, 128+.
[[nodiscard]] Histogram make_token_histogram();

/// Geometric mean of a set of strictly positive values.
[[nodiscard]] double geomean(const std::vector<double>& values);

/// Arithmetic mean of a non-empty sample.
[[nodiscard]] double mean(const std::vector<double>& values);

/// Fleet-load imbalance: max over mean of a non-empty, non-negative sample
/// (per-replica busy times, dispatched counts, ...). 1.0 means perfectly
/// balanced; N means one of N replicas did all the work. Zero for an
/// all-zero sample (an idle fleet).
[[nodiscard]] double imbalance_factor(const std::vector<double>& values);

/// The q-th percentile (q in [0, 100]) of a non-empty sample, using linear
/// interpolation between closest ranks (the common "R-7" / NumPy default).
/// Takes the sample by value: callers keep their ordering.
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// The latency summary trio every serving report carries.
struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// p50/p95/p99 of a non-empty sample (one sort, three lookups).
[[nodiscard]] Percentiles compute_percentiles(std::vector<double> values);

}  // namespace monde
