// Strong unit types used throughout the MoNDE simulator.
//
// All timing models in this repository exchange time as `Duration`
// (nanosecond-resolution double), data volumes as `Bytes`, and transfer
// rates as `Bandwidth` (bytes per second). Keeping these as distinct
// vocabulary types (instead of bare doubles) makes interface contracts
// explicit and prevents the classic GB-vs-GiB / ns-vs-us unit bugs.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

namespace monde {

/// A span of simulated time. Internally stored in nanoseconds.
///
/// `Duration` is an arithmetic value type: durations add/subtract, scale by
/// dimensionless factors, and divide to yield dimensionless ratios.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanos(double ns) { return Duration{ns}; }
  [[nodiscard]] static constexpr Duration micros(double us) { return Duration{us * 1e3}; }
  [[nodiscard]] static constexpr Duration millis(double ms) { return Duration{ms * 1e6}; }
  [[nodiscard]] static constexpr Duration seconds(double s) { return Duration{s * 1e9}; }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0.0}; }
  /// A value larger than any reachable simulation time.
  [[nodiscard]] static constexpr Duration infinite() { return Duration{1e300}; }

  [[nodiscard]] constexpr double ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return ns_ * 1e-3; }
  [[nodiscard]] constexpr double ms() const { return ns_ * 1e-6; }
  [[nodiscard]] constexpr double sec() const { return ns_ * 1e-9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration& operator+=(Duration other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    ns_ -= other.ns_;
    return *this;
  }
  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, double k) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator*(double k, Duration a) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator/(Duration a, double k) { return Duration{a.ns_ / k}; }
  /// Ratio of two durations (dimensionless).
  friend constexpr double operator/(Duration a, Duration b) { return a.ns_ / b.ns_; }

  /// Human-readable rendering with an auto-selected scale, e.g. "12.34 us".
  [[nodiscard]] std::string str() const;

 private:
  constexpr explicit Duration(double ns) : ns_{ns} {}
  double ns_ = 0.0;
};

[[nodiscard]] constexpr Duration max(Duration a, Duration b) { return a > b ? a : b; }
[[nodiscard]] constexpr Duration min(Duration a, Duration b) { return a < b ? a : b; }

/// A data volume in bytes. Stored as unsigned 64-bit; arithmetic asserts are
/// left to callers (volumes in this simulator never exceed a few TB).
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t b) : b_{b} {}

  [[nodiscard]] static constexpr Bytes kib(double k) { return Bytes{static_cast<std::uint64_t>(k * 1024.0)}; }
  [[nodiscard]] static constexpr Bytes mib(double m) { return Bytes{static_cast<std::uint64_t>(m * 1024.0 * 1024.0)}; }
  [[nodiscard]] static constexpr Bytes gib(double g) {
    return Bytes{static_cast<std::uint64_t>(g * 1024.0 * 1024.0 * 1024.0)};
  }

  [[nodiscard]] constexpr std::uint64_t count() const { return b_; }
  [[nodiscard]] constexpr double as_kib() const { return static_cast<double>(b_) / 1024.0; }
  [[nodiscard]] constexpr double as_mib() const { return static_cast<double>(b_) / (1024.0 * 1024.0); }
  [[nodiscard]] constexpr double as_gib() const { return static_cast<double>(b_) / (1024.0 * 1024.0 * 1024.0); }
  /// Decimal gigabytes (1e9), the unit used for link bandwidth comparisons.
  [[nodiscard]] constexpr double as_gb() const { return static_cast<double>(b_) * 1e-9; }

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes& operator+=(Bytes other) {
    b_ += other.b_;
    return *this;
  }
  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes{a.b_ + b.b_}; }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes{a.b_ - b.b_}; }
  friend constexpr Bytes operator*(Bytes a, std::uint64_t k) { return Bytes{a.b_ * k}; }
  friend constexpr Bytes operator*(std::uint64_t k, Bytes a) { return Bytes{a.b_ * k}; }

  [[nodiscard]] std::string str() const;

 private:
  std::uint64_t b_ = 0;
};

/// A transfer or processing rate in bytes per second.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  [[nodiscard]] static constexpr Bandwidth bytes_per_sec(double bps) { return Bandwidth{bps}; }
  /// Decimal GB/s, the convention used for PCIe/DRAM datasheet numbers.
  [[nodiscard]] static constexpr Bandwidth gbps(double gb) { return Bandwidth{gb * 1e9}; }

  [[nodiscard]] constexpr double as_bytes_per_sec() const { return bps_; }
  [[nodiscard]] constexpr double as_gbps() const { return bps_ * 1e-9; }

  constexpr auto operator<=>(const Bandwidth&) const = default;

  friend constexpr Bandwidth operator*(Bandwidth a, double k) { return Bandwidth{a.bps_ * k}; }
  friend constexpr Bandwidth operator*(double k, Bandwidth a) { return Bandwidth{a.bps_ * k}; }
  friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) { return Bandwidth{a.bps_ + b.bps_}; }
  friend constexpr double operator/(Bandwidth a, Bandwidth b) { return a.bps_ / b.bps_; }

  [[nodiscard]] std::string str() const;

 private:
  constexpr explicit Bandwidth(double bps) : bps_{bps} {}
  double bps_ = 0.0;
};

/// Ideal (overhead-free) time to move `volume` at rate `rate`.
[[nodiscard]] constexpr Duration transfer_time(Bytes volume, Bandwidth rate) {
  return Duration::seconds(static_cast<double>(volume.count()) / rate.as_bytes_per_sec());
}

/// Compute throughput in floating-point operations per second.
class Flops {
 public:
  constexpr Flops() = default;
  [[nodiscard]] static constexpr Flops tflops(double t) { return Flops{t * 1e12}; }
  [[nodiscard]] static constexpr Flops gflops(double g) { return Flops{g * 1e9}; }
  [[nodiscard]] constexpr double as_flops_per_sec() const { return fps_; }
  [[nodiscard]] constexpr double as_tflops() const { return fps_ * 1e-12; }
  constexpr auto operator<=>(const Flops&) const = default;
  friend constexpr Flops operator*(Flops a, double k) { return Flops{a.fps_ * k}; }

 private:
  constexpr explicit Flops(double fps) : fps_{fps} {}
  double fps_ = 0.0;
};

/// Ideal time to execute `flop` floating-point operations at rate `rate`.
[[nodiscard]] constexpr Duration compute_time(double flop, Flops rate) {
  return Duration::seconds(flop / rate.as_flops_per_sec());
}

}  // namespace monde
