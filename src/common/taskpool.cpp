#include "common/taskpool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace monde::common {

TaskPool::TaskPool(std::size_t threads) {
  MONDE_REQUIRE(threads >= 1, "TaskPool needs at least one thread (the caller)");
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock{mu_};
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void TaskPool::work_on(Job& job) {
  for (;;) {
    const std::size_t begin = job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.n) return;
    const std::size_t end = std::min(begin + job.chunk, job.n);
    for (std::size_t i = begin; i < end; ++i) {
      try {
        (*job.fn)(i);
      } catch (...) {
        // Keep the lowest-index exception: the one a sequential loop would
        // have thrown first, so failure behavior is thread-count-invariant.
        std::lock_guard<std::mutex> lock{job.err_mu};
        if (!job.err || i < job.err_index) {
          job.err = std::current_exception();
          job.err_index = i;
        }
      }
    }
    job.done.fetch_add(end - begin, std::memory_order_acq_rel);
  }
}

void TaskPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock{mu_};
      cv_.wait(lock, [&] { return stop_ || (job_ != nullptr && generation_ != seen); });
      if (stop_) return;
      job = job_;
      seen = generation_;
      // Counted while still under mu_: run() clears job_ under the same
      // lock only after active_ drains, so a worker can never touch a Job
      // whose run() call already returned (the Job lives on run()'s stack).
      job->active.fetch_add(1, std::memory_order_relaxed);
    }
    work_on(*job);
    {
      std::lock_guard<std::mutex> lock{mu_};
      job->active.fetch_sub(1, std::memory_order_acq_rel);
      done_cv_.notify_all();
    }
  }
}

void TaskPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Sequential degenerate case: plain loop, plain first-throw propagation.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Job job;
  job.fn = &fn;
  job.n = n;
  // Several chunks per thread so an uneven task (one replica with much more
  // work than its neighbours) doesn't serialize the tail, while a huge n
  // still costs only ~8 * threads atomic claims.
  job.chunk = std::max<std::size_t>(1, n / (threads() * 8));
  {
    std::lock_guard<std::mutex> lock{mu_};
    MONDE_ASSERT(job_ == nullptr, "TaskPool::run is not reentrant");
    job_ = &job;
    ++generation_;
  }
  cv_.notify_all();
  work_on(job);
  {
    std::unique_lock<std::mutex> lock{mu_};
    done_cv_.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) == job.n &&
             job.active.load(std::memory_order_acquire) == 0;
    });
    job_ = nullptr;  // stragglers that never joined see null and go back to sleep
  }
  if (job.err) std::rethrow_exception(job.err);
}

}  // namespace monde::common
