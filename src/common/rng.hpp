// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component in the simulator (gating skew, router sampling,
// workload generators) draws from an explicitly seeded `Rng`. Experiments are
// bit-reproducible across runs given the same seed.
#pragma once

#include <cstdint>
#include <vector>

namespace monde {

/// xoshiro256** PRNG. Small, fast, and good enough statistical quality for
/// workload sampling; fully deterministic across platforms (unlike
/// std::uniform_int_distribution, whose output is implementation-defined).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal variate (Box-Muller).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Gamma(shape, 1) variate via Marsaglia-Tsang; used for Dirichlet sampling.
  double gamma(double shape);

  /// Sample an index from an (unnormalized) non-negative weight vector.
  std::size_t categorical(const std::vector<double>& weights);

  /// Derive an independent child stream (for per-layer / per-batch RNGs).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

/// Zipf-like popularity vector: weight[i] proportional to 1 / (i+1)^s,
/// normalized to sum to 1. Rank 0 is the most popular item.
[[nodiscard]] std::vector<double> zipf_weights(std::size_t n, double s);

/// Dirichlet sample with concentration `alpha` (symmetric), normalized.
[[nodiscard]] std::vector<double> dirichlet(Rng& rng, std::size_t n, double alpha);

/// Multinomial draw: distribute `trials` items over `probs` (must sum to ~1).
[[nodiscard]] std::vector<std::uint64_t> multinomial(Rng& rng, std::uint64_t trials,
                                                     const std::vector<double>& probs);

}  // namespace monde
