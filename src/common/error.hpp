// Error handling primitives.
//
// The simulator distinguishes two failure classes:
//  * contract violations (programming errors) -> MONDE_ASSERT, aborts in
//    debug and throws in release so tests can exercise them;
//  * invalid user input / configuration -> MONDE_REQUIRE, always throws
//    monde::Error with a formatted message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace monde {

/// Exception thrown for invalid configurations and violated preconditions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise(const char* kind, const char* expr, const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace monde

/// Validate a user-facing precondition; throws monde::Error when violated.
#define MONDE_REQUIRE(cond, msg)                                                       \
  do {                                                                                 \
    if (!(cond)) {                                                                     \
      std::ostringstream monde_require_os;                                             \
      monde_require_os << msg; /* NOLINT */                                            \
      ::monde::detail::raise("requirement", #cond, __FILE__, __LINE__,                 \
                             monde_require_os.str());                                  \
    }                                                                                  \
  } while (false)

/// Internal invariant check; same throwing behaviour so unit tests can probe it.
#define MONDE_ASSERT(cond, msg) MONDE_REQUIRE(cond, msg)
