#include "common/units.hpp"

#include <cstdio>

namespace monde {
namespace {

std::string format(double value, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f %s", value, unit);
  return buf;
}

}  // namespace

std::string Duration::str() const {
  const double v = ns_;
  if (v >= 1e9) return format(v * 1e-9, "s");
  if (v >= 1e6) return format(v * 1e-6, "ms");
  if (v >= 1e3) return format(v * 1e-3, "us");
  return format(v, "ns");
}

std::string Bytes::str() const {
  const auto v = static_cast<double>(b_);
  if (v >= 1024.0 * 1024.0 * 1024.0) return format(as_gib(), "GiB");
  if (v >= 1024.0 * 1024.0) return format(as_mib(), "MiB");
  if (v >= 1024.0) return format(as_kib(), "KiB");
  return format(v, "B");
}

std::string Bandwidth::str() const { return format(as_gbps(), "GB/s"); }

}  // namespace monde
