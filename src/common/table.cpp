#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace monde {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {
  MONDE_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  MONDE_REQUIRE(cells.size() == headers_.size(),
                "row arity " << cells.size() << " != header arity " << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < width.size(); ++c) rule += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << str(); }

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace monde
