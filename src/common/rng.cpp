#include "common/rng.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace monde {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed all four lanes from splitmix64 as recommended by the xoshiro authors.
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  MONDE_REQUIRE(n > 0, "next_below requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::normal(double mean, double stddev) {
  // Box-Muller; one variate per call keeps the generator stateless w.r.t. pairs.
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 1e-300;
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::gamma(double shape) {
  MONDE_REQUIRE(shape > 0.0, "gamma shape must be positive");
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang section 6).
    const double g = gamma(shape + 1.0);
    const double u = next_double();
    return g * std::pow(u <= 0.0 ? 1e-300 : u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = next_double();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  MONDE_REQUIRE(!weights.empty(), "categorical requires non-empty weights");
  double total = 0.0;
  for (double w : weights) {
    MONDE_REQUIRE(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  MONDE_REQUIRE(total > 0.0, "categorical weights must not all be zero");
  double r = next_double() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng{next_u64()}; }

std::vector<double> zipf_weights(std::size_t n, double s) {
  MONDE_REQUIRE(n > 0, "zipf_weights requires n > 0");
  std::vector<double> w(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    total += w[i];
  }
  for (auto& v : w) v /= total;
  return w;
}

std::vector<double> dirichlet(Rng& rng, std::size_t n, double alpha) {
  MONDE_REQUIRE(n > 0, "dirichlet requires n > 0");
  MONDE_REQUIRE(alpha > 0.0, "dirichlet requires alpha > 0");
  std::vector<double> w(n);
  double total = 0.0;
  for (auto& v : w) {
    v = rng.gamma(alpha);
    total += v;
  }
  if (total <= 0.0) total = 1.0;
  for (auto& v : w) v /= total;
  return w;
}

std::vector<std::uint64_t> multinomial(Rng& rng, std::uint64_t trials,
                                       const std::vector<double>& probs) {
  MONDE_REQUIRE(!probs.empty(), "multinomial requires non-empty probs");
  std::vector<std::uint64_t> counts(probs.size(), 0);
  // Inverse-CDF per trial; trial counts here are small (thousands), so the
  // O(trials * log n) binary-search approach is unnecessary complexity.
  std::vector<double> cdf(probs.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    MONDE_REQUIRE(probs[i] >= 0.0, "multinomial probs must be non-negative");
    acc += probs[i];
    cdf[i] = acc;
  }
  MONDE_REQUIRE(acc > 0.0, "multinomial probs must not all be zero");
  for (std::uint64_t t = 0; t < trials; ++t) {
    const double r = rng.next_double() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    const auto idx = static_cast<std::size_t>(it - cdf.begin());
    counts[idx < counts.size() ? idx : counts.size() - 1]++;
  }
  return counts;
}

}  // namespace monde
