// Plain-text result tables and CSV emission.
//
// Every bench binary prints its figure/table as an aligned ASCII table (the
// "rows/series the paper reports") and can optionally mirror it to CSV for
// plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace monde {

/// Column-aligned ASCII table builder.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Number formatting helpers for cells.
  static std::string num(double v, int precision = 2);
  static std::string pct(double v, int precision = 1);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render with a header rule and 2-space column gaps.
  [[nodiscard]] std::string str() const;
  void print(std::ostream& os) const;

  /// Comma-separated rendering (headers first).
  [[nodiscard]] std::string csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace monde
