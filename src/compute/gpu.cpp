#include "compute/gpu.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace monde::compute {

GpuSpec GpuSpec::a100_pcie_40gb() {
  GpuSpec s;
  s.name = "A100-PCIe-40GB";
  s.peak_flops = Flops::tflops(312.0);
  s.hbm_bandwidth = Bandwidth::gbps(1555.0);
  s.memory_capacity = Bytes::gib(40.0);
  return s;
}

GpuModel::GpuModel(GpuSpec spec) : spec_{std::move(spec)} {
  MONDE_REQUIRE(spec_.peak_flops.as_flops_per_sec() > 0.0, "GPU peak FLOPs must be positive");
  MONDE_REQUIRE(spec_.hbm_bandwidth.as_gbps() > 0.0, "GPU HBM bandwidth must be positive");
  MONDE_REQUIRE(spec_.max_compute_utilization > 0.0 && spec_.max_compute_utilization <= 1.0,
                "utilization must be in (0, 1]");
}

Flops GpuModel::effective_flops(const GemmShape& shape) const {
  // Tile quantization: tensor cores want >= rows_for_full_utilization rows;
  // below that, whole warps of the MMA tile are idle. Clamp to a floor so a
  // 1-token GEMM still makes progress.
  const double row_frac =
      std::min(1.0, static_cast<double>(std::max<std::int64_t>(shape.m, 4)) /
                        static_cast<double>(spec_.rows_for_full_utilization));
  const double util = std::max(0.02, spec_.max_compute_utilization * row_frac);
  return spec_.peak_flops * util;
}

Duration GpuModel::gemm_time(const GemmShape& shape, DataType dt) const {
  if (shape.m <= 0 || shape.n <= 0 || shape.k <= 0) return Duration::zero();
  const Duration compute = compute_time(shape.flops(), effective_flops(shape));
  const Duration memory =
      transfer_time(shape.total_bytes(dt), spec_.hbm_bandwidth * spec_.hbm_efficiency);
  return spec_.kernel_launch + max(compute, memory);
}

Duration GpuModel::expert_time(const ExpertShape& expert, DataType dt) const {
  if (expert.tokens <= 0) return Duration::zero();
  // The activation between the linears is fused into linear1's epilogue
  // (the paper's gemm+relu kernel), so no separate elementwise pass.
  return gemm_time(expert.linear1(), dt) + gemm_time(expert.linear2(), dt);
}

Duration GpuModel::elementwise_time(Bytes bytes) const {
  return spec_.kernel_launch +
         transfer_time(bytes, spec_.hbm_bandwidth * spec_.hbm_efficiency);
}

}  // namespace monde::compute
