// CPU timing model for the CPU+AM baseline (paper Figure 8).
//
// The paper runs expert FFNs on a Xeon Silver 4310 through PyTorch's CPU
// backend with bf16 tensors. Two effects dominate and are modeled here:
//  * bf16 CPU GEMM runs far below the AVX-512 fp32 peak (PyTorch upconverts
//    and is poorly threaded at small token counts) -> low effective FLOPs;
//  * streaming bandwidth is derated by NUMA-remote accesses and imperfect
//    prefetch (the paper calls this out explicitly in Section 4.2).
#pragma once

#include <string>

#include "compute/gemm.hpp"

namespace monde::compute {

/// Static description of the host CPU.
struct CpuSpec {
  std::string name;
  Bandwidth mem_bandwidth;          ///< datasheet aggregate (paper: 187 GB/s)
  double stream_efficiency = 0.55;  ///< achieved fraction for streaming GEMV
  Flops effective_gemm_flops = Flops::gflops(150.0);  ///< PyTorch bf16 path
  Duration op_overhead = Duration::micros(25.0);  ///< dispatch + OMP fork/join

  /// Intel Xeon Silver 4310 (paper Table 2): 187 GB/s memory bandwidth.
  [[nodiscard]] static CpuSpec xeon_silver_4310();
};

/// Roofline CPU kernel timing with fixed per-op overhead.
class CpuModel {
 public:
  explicit CpuModel(CpuSpec spec);

  [[nodiscard]] const CpuSpec& spec() const { return spec_; }

  [[nodiscard]] Bandwidth effective_bandwidth() const {
    return spec_.mem_bandwidth * spec_.stream_efficiency;
  }

  [[nodiscard]] Duration gemm_time(const GemmShape& shape, DataType dt) const;

  /// Latency of one expert FFN on the CPU.
  [[nodiscard]] Duration expert_time(const ExpertShape& expert, DataType dt) const;

 private:
  CpuSpec spec_;
};

}  // namespace monde::compute
