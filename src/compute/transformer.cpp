#include "compute/transformer.hpp"

#include "common/error.hpp"

namespace monde::compute {

TransformerCostModel::TransformerCostModel(const GpuModel& gpu, DataType dtype)
    : gpu_{gpu}, dtype_{dtype} {}

Duration TransformerCostModel::attention_time(std::int64_t rows, std::int64_t kv_len,
                                              std::int64_t dmodel) const {
  MONDE_REQUIRE(rows > 0 && kv_len > 0 && dmodel > 0, "attention dims must be positive");
  Duration t = Duration::zero();
  // Fused QKV projection: rows x 3*dmodel x dmodel.
  t += gpu_.gemm_time({rows, 3 * dmodel, dmodel}, dtype_);
  // Scores (rows x kv_len over dmodel) and context (rows x dmodel over kv_len);
  // head count cancels out of the FLOP total.
  t += gpu_.gemm_time({rows, kv_len, dmodel}, dtype_);
  t += gpu_.gemm_time({rows, dmodel, kv_len}, dtype_);
  // Output projection.
  t += gpu_.gemm_time({rows, dmodel, dmodel}, dtype_);
  return t;
}

BlockCostBreakdown TransformerCostModel::encoder_block(std::int64_t batch, std::int64_t seq_len,
                                                       std::int64_t dmodel, std::int64_t dff,
                                                       bool dense_ffn) const {
  MONDE_REQUIRE(batch > 0 && seq_len > 0, "encoder block needs tokens");
  const std::int64_t rows = batch * seq_len;
  BlockCostBreakdown cost;
  // Each sequence attends within itself; FLOP-wise this equals `rows` query
  // rows against `seq_len` keys.
  cost.attention = attention_time(rows, seq_len, dmodel);
  if (dense_ffn) {
    cost.dense_ffn = gpu_.expert_time({rows, dmodel, dff}, dtype_);
  }
  // 2x LayerNorm + 2x residual + softmax traffic: ~8 passes over rows*dmodel.
  const Bytes elem{static_cast<std::uint64_t>(8 * rows * dmodel * bytes_per_element(dtype_))};
  cost.elementwise = gpu_.elementwise_time(elem);
  return cost;
}

BlockCostBreakdown TransformerCostModel::decoder_block(std::int64_t batch, std::int64_t past_len,
                                                       std::int64_t cross_len,
                                                       std::int64_t dmodel, std::int64_t dff,
                                                       bool dense_ffn) const {
  MONDE_REQUIRE(batch > 0, "decoder block needs tokens");
  MONDE_REQUIRE(past_len >= 1, "decoder past length must include the current token");
  BlockCostBreakdown cost;
  cost.attention = attention_time(batch, past_len, dmodel);
  if (cross_len > 0) cost.attention += attention_time(batch, cross_len, dmodel);
  if (dense_ffn) {
    cost.dense_ffn = gpu_.expert_time({batch, dmodel, dff}, dtype_);
  }
  const std::int64_t norm_count = cross_len > 0 ? 12 : 8;
  const Bytes elem{
      static_cast<std::uint64_t>(norm_count * batch * dmodel * bytes_per_element(dtype_))};
  cost.elementwise = gpu_.elementwise_time(elem);
  return cost;
}

Duration TransformerCostModel::gating_time(std::int64_t tokens, std::int64_t num_experts,
                                           std::int64_t dmodel) const {
  MONDE_REQUIRE(tokens > 0 && num_experts > 0, "gating needs tokens and experts");
  Duration t = gpu_.gemm_time({tokens, num_experts, dmodel}, dtype_);
  // Softmax + top-k + scatter of token rows to expert-ordered buffers.
  const Bytes traffic{
      static_cast<std::uint64_t>(2 * tokens * dmodel * bytes_per_element(dtype_))};
  t += gpu_.elementwise_time(traffic);
  return t;
}

Duration TransformerCostModel::combine_time(std::int64_t tokens, std::int64_t dmodel) const {
  MONDE_REQUIRE(tokens > 0, "combine needs tokens");
  const Bytes traffic{
      static_cast<std::uint64_t>(2 * tokens * dmodel * bytes_per_element(dtype_))};
  return gpu_.elementwise_time(traffic);
}

}  // namespace monde::compute
