// GEMM workload descriptors shared by all compute-timing models.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace monde::compute {

/// Element datatype. The paper evaluates with bfloat16.
enum class DataType : std::uint8_t { kBf16, kFp16, kFp32 };

[[nodiscard]] constexpr int bytes_per_element(DataType dt) {
  switch (dt) {
    case DataType::kBf16:
    case DataType::kFp16:
      return 2;
    case DataType::kFp32:
      return 4;
  }
  return 2;
}

/// C[m x n] = A[m x k] * B[k x n].
struct GemmShape {
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;

  [[nodiscard]] constexpr double flops() const {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k);
  }
  [[nodiscard]] constexpr Bytes a_bytes(DataType dt) const {
    return Bytes{static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(k) *
                 static_cast<std::uint64_t>(bytes_per_element(dt))};
  }
  [[nodiscard]] constexpr Bytes b_bytes(DataType dt) const {
    return Bytes{static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(n) *
                 static_cast<std::uint64_t>(bytes_per_element(dt))};
  }
  [[nodiscard]] constexpr Bytes c_bytes(DataType dt) const {
    return Bytes{static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
                 static_cast<std::uint64_t>(bytes_per_element(dt))};
  }
  /// Minimum DRAM traffic assuming each operand is touched once.
  [[nodiscard]] constexpr Bytes total_bytes(DataType dt) const {
    return a_bytes(dt) + b_bytes(dt) + c_bytes(dt);
  }
  /// FLOPs per byte of minimum traffic.
  [[nodiscard]] constexpr double arithmetic_intensity(DataType dt) const {
    return flops() / static_cast<double>(total_bytes(dt).count());
  }

  bool operator==(const GemmShape&) const = default;
};

/// An expert FFN: two back-to-back GEMMs with an activation in between
/// (paper Section 2.1). `tokens` rows through [dmodel x dff] then
/// [dff x dmodel].
struct ExpertShape {
  std::int64_t tokens = 0;
  std::int64_t dmodel = 0;
  std::int64_t dff = 0;

  [[nodiscard]] constexpr GemmShape linear1() const { return {tokens, dff, dmodel}; }
  [[nodiscard]] constexpr GemmShape linear2() const { return {tokens, dmodel, dff}; }
  [[nodiscard]] constexpr double flops() const { return linear1().flops() + linear2().flops(); }
  /// Parameter bytes of one expert: 2 * dmodel * dff elements (Equation 1's
  /// per-expert term).
  [[nodiscard]] constexpr Bytes weight_bytes(DataType dt) const {
    return Bytes{std::uint64_t{2} * static_cast<std::uint64_t>(dmodel) *
                 static_cast<std::uint64_t>(dff) *
                 static_cast<std::uint64_t>(bytes_per_element(dt))};
  }
  /// Input+output activation bytes for this expert (Equation 2's per-token
  /// term: 2 * tokens * dmodel elements).
  [[nodiscard]] constexpr Bytes activation_bytes(DataType dt) const {
    return Bytes{std::uint64_t{2} * static_cast<std::uint64_t>(tokens) *
                 static_cast<std::uint64_t>(dmodel) *
                 static_cast<std::uint64_t>(bytes_per_element(dt))};
  }

  bool operator==(const ExpertShape&) const = default;
};

}  // namespace monde::compute
