#include "compute/cpu.hpp"

#include "common/error.hpp"

namespace monde::compute {

CpuSpec CpuSpec::xeon_silver_4310() {
  CpuSpec s;
  s.name = "Xeon-Silver-4310";
  s.mem_bandwidth = Bandwidth::gbps(187.0);
  return s;
}

CpuModel::CpuModel(CpuSpec spec) : spec_{std::move(spec)} {
  MONDE_REQUIRE(spec_.mem_bandwidth.as_gbps() > 0.0, "CPU bandwidth must be positive");
  MONDE_REQUIRE(spec_.stream_efficiency > 0.0 && spec_.stream_efficiency <= 1.0,
                "stream efficiency must be in (0, 1]");
}

Duration CpuModel::gemm_time(const GemmShape& shape, DataType dt) const {
  if (shape.m <= 0 || shape.n <= 0 || shape.k <= 0) return Duration::zero();
  const Duration compute = compute_time(shape.flops(), spec_.effective_gemm_flops);
  const Duration memory = transfer_time(shape.total_bytes(dt), effective_bandwidth());
  return spec_.op_overhead + max(compute, memory);
}

Duration CpuModel::expert_time(const ExpertShape& expert, DataType dt) const {
  if (expert.tokens <= 0) return Duration::zero();
  return gemm_time(expert.linear1(), dt) + gemm_time(expert.linear2(), dt);
}

}  // namespace monde::compute
