// Cost model for the non-expert parts of a transformer block.
//
// End-to-end throughput (paper Figure 6) includes attention, layer norms,
// gating, and dense FFN blocks that always execute on the GPU regardless of
// the expert-offload strategy. This model prices them with the GPU roofline.
// Both evaluated models are encoder-decoder stacks; decoder blocks carry
// self-attention with a KV cache plus cross-attention to the encoder output.
#pragma once

#include <cstdint>

#include "compute/gpu.hpp"

namespace monde::compute {

/// Per-block latency contributions of non-MoE work.
struct BlockCostBreakdown {
  Duration attention = Duration::zero();
  Duration dense_ffn = Duration::zero();   ///< zero for MoE blocks
  Duration elementwise = Duration::zero(); ///< norms, residuals, softmax
  [[nodiscard]] Duration total() const { return attention + dense_ffn + elementwise; }
};

/// Prices attention / dense-FFN / gating work on a GpuModel.
class TransformerCostModel {
 public:
  TransformerCostModel(const GpuModel& gpu, DataType dtype);

  /// One encoder block processing `batch` sequences of `seq_len` tokens.
  /// `dense_ffn` selects whether this block's FFN is a dense FFN (true) or
  /// an MoE FFN (false; expert cost is priced by the strategy instead).
  [[nodiscard]] BlockCostBreakdown encoder_block(std::int64_t batch, std::int64_t seq_len,
                                                 std::int64_t dmodel, std::int64_t dff,
                                                 bool dense_ffn) const;

  /// One decoder block for a single autoregressive step: `batch` new tokens
  /// attending over `past_len` cached positions, plus cross-attention over
  /// `cross_len` encoder positions (0 disables cross-attention).
  [[nodiscard]] BlockCostBreakdown decoder_block(std::int64_t batch, std::int64_t past_len,
                                                 std::int64_t cross_len, std::int64_t dmodel,
                                                 std::int64_t dff, bool dense_ffn) const;

  /// Gating network: router GEMM (tokens x E x dmodel) + softmax/top-k +
  /// dispatch scatter. Runs on the GPU before any expert computation.
  [[nodiscard]] Duration gating_time(std::int64_t tokens, std::int64_t num_experts,
                                     std::int64_t dmodel) const;

  /// Combine: weighted gather of expert outputs back into token order.
  [[nodiscard]] Duration combine_time(std::int64_t tokens, std::int64_t dmodel) const;

  [[nodiscard]] DataType dtype() const { return dtype_; }

 private:
  [[nodiscard]] Duration attention_time(std::int64_t rows, std::int64_t kv_len,
                                        std::int64_t dmodel) const;

  const GpuModel& gpu_;
  DataType dtype_;
};

}  // namespace monde::compute
