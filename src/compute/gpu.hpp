// GPU timing model.
//
// The paper obtains GPU-side latencies from Nsight profiles of an A100; we
// substitute a roofline model with (a) a tensor-core utilization curve that
// penalizes skinny GEMMs (few routed tokens -> low occupancy, the effect
// Figure 2(c) measures), (b) HBM bandwidth derating, and (c) fixed kernel
// launch overhead. Calibration constants are documented inline.
#pragma once

#include <string>

#include "compute/gemm.hpp"

namespace monde::compute {

/// Static description of one GPU.
struct GpuSpec {
  std::string name;
  Flops peak_flops;          ///< dense tensor-core peak for the datatype
  Bandwidth hbm_bandwidth;   ///< datasheet HBM bandwidth
  Bytes memory_capacity;
  Duration kernel_launch = Duration::micros(6.0);  ///< CUDA launch + sync amortized
  double max_compute_utilization = 0.62;  ///< large-GEMM fraction of peak
  double hbm_efficiency = 0.78;           ///< achieved / datasheet bandwidth
  /// Rows (tokens) needed to reach full tensor-core utilization; below this
  /// the effective FLOPs scale ~linearly (tile quantization).
  std::int64_t rows_for_full_utilization = 256;

  /// NVIDIA A100-PCIe-40GB, bf16 tensor ops: 312 TFLOPS, 1555 GB/s.
  [[nodiscard]] static GpuSpec a100_pcie_40gb();
};

/// Roofline-with-overheads GPU kernel timing.
class GpuModel {
 public:
  explicit GpuModel(GpuSpec spec);

  [[nodiscard]] const GpuSpec& spec() const { return spec_; }

  /// Effective compute throughput for a GEMM of `shape` (utilization curve).
  [[nodiscard]] Flops effective_flops(const GemmShape& shape) const;

  /// Latency of one GEMM kernel (launch + max(compute, memory) roofline).
  [[nodiscard]] Duration gemm_time(const GemmShape& shape, DataType dt) const;

  /// Latency of one expert FFN (two GEMMs + fused activation).
  [[nodiscard]] Duration expert_time(const ExpertShape& expert, DataType dt) const;

  /// Elementwise / reduction op over `bytes` of traffic (LayerNorm, softmax,
  /// residual adds, gating combine): bandwidth-bound plus launch cost.
  [[nodiscard]] Duration elementwise_time(Bytes bytes) const;

 private:
  GpuSpec spec_;
};

}  // namespace monde::compute
