// DRAM device organization and timing specification.
//
// The MoNDE device (paper Section 3.1) is a CXL memory expander built from
// LPDDR modules: x16 chips at 8533 MT/s, 32 chips per 64-GB module with
// 68 GB/s of bandwidth, and 8 such modules/channels for 512 GB @ ~512 GB/s.
//
// We model each channel as a 64-bit LPDDR5X-8533 bus (4 x16 chips per rank,
// 8 ranks), with a controller clocked at CK = data_rate/16 (LPDDR5 16n
// prefetch: one BL16 column burst occupies exactly one CK cycle on the bus).
// All timing parameters below are in controller clock cycles.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace monde::dram {

/// Physical topology of one DRAM channel and the channel count.
struct Organization {
  int channels = 8;
  int ranks = 8;
  int bankgroups = 4;
  int banks_per_group = 4;
  int rows = 65536;
  /// Column *accesses* per row: each access moves `access_bytes` over the bus.
  int columns = 64;
  /// Bytes moved by one column access (BL16 x 64-bit bus = 128 B).
  int access_bytes = 128;

  [[nodiscard]] int banks_per_rank() const { return bankgroups * banks_per_group; }
  [[nodiscard]] int banks_per_channel() const { return ranks * banks_per_rank(); }
  [[nodiscard]] Bytes row_bytes() const {
    return Bytes{static_cast<std::uint64_t>(columns) * static_cast<std::uint64_t>(access_bytes)};
  }
  [[nodiscard]] Bytes channel_capacity() const {
    return Bytes{static_cast<std::uint64_t>(ranks) * static_cast<std::uint64_t>(banks_per_rank()) *
                 static_cast<std::uint64_t>(rows) * row_bytes().count()};
  }
  [[nodiscard]] Bytes total_capacity() const {
    return Bytes{channel_capacity().count() * static_cast<std::uint64_t>(channels)};
  }
};

/// Timing constraints in controller clock (CK) cycles.
struct Timing {
  int nBL = 1;      ///< data-bus cycles per column burst (BL16 on 16n prefetch)
  int nCL = 15;     ///< read latency (RL)
  int nWL = 12;     ///< write latency
  int nRCD = 10;    ///< ACT -> RD/WR
  int nRP = 10;     ///< PRE -> ACT
  int nRAS = 23;    ///< ACT -> PRE
  int nRC = 33;     ///< ACT -> ACT, same bank
  int nCCDS = 1;    ///< CAS -> CAS, different bank group
  /// CAS -> CAS same bank group. LPDDR5's 16n prefetch makes tCCD_L (2 WCK)
  /// shorter than one BL16 burst (1 CK), so seamless bursts are legal.
  int nCCDL = 1;
  int nRRDS = 4;    ///< ACT -> ACT, different bank group
  int nRRDL = 5;    ///< ACT -> ACT, same bank group
  int nFAW = 16;    ///< four-activate window per rank
  int nRTP = 4;     ///< RD -> PRE
  int nWR = 10;     ///< end of write data -> PRE (write recovery)
  int nWTRS = 5;    ///< end of write data -> RD, different bank group
  int nWTRL = 7;    ///< end of write data -> RD, same bank group
  int nREFI = 2080; ///< average refresh interval
  int nRFC = 150;   ///< refresh cycle time (all-bank)
};

/// A complete device specification.
struct Spec {
  std::string name;
  Organization org;
  Timing timing;
  double data_rate_mtps = 8533.0;  ///< transfers per second per data pin (x1e6)

  /// Controller clock period: one CK per BL16 burst (16n prefetch).
  [[nodiscard]] Duration clock_period() const {
    return Duration::nanos(16.0 * 1e3 / data_rate_mtps);
  }
  /// Peak bandwidth of one channel (64-bit bus at the full data rate).
  [[nodiscard]] Bandwidth channel_peak_bandwidth() const {
    return Bandwidth::bytes_per_sec(static_cast<double>(org.access_bytes) /
                                    clock_period().sec());
  }
  /// Peak bandwidth of the whole device.
  [[nodiscard]] Bandwidth total_peak_bandwidth() const {
    return channel_peak_bandwidth() * static_cast<double>(org.channels);
  }

  /// The MoNDE device from the paper: 8 channels, 512 GB, ~512 GB/s, LPDDR5X-8533.
  [[nodiscard]] static Spec monde_lpddr5x_8533();

  /// Same topology with the data rate scaled by `factor` (Figure 7(b)'s
  /// 0.5x / 2.0x bandwidth sensitivity knob). Timing in nanoseconds is kept
  /// constant, i.e. cycle counts are rescaled to the new clock.
  [[nodiscard]] Spec with_bandwidth_scale(double factor) const;

  /// Throws monde::Error if any field is out of its valid domain.
  void validate() const;
};

}  // namespace monde::dram
