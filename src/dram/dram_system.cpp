#include "dram/dram_system.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/error.hpp"

namespace monde::dram {

bool DramSystem::exhaustive_tick_env_default() {
  static const bool on = [] {
    const char* v = std::getenv("MONDE_EXHAUSTIVE_TICK");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
  }();
  return on;
}

DramSystem::DramSystem(Spec spec) : spec_{std::move(spec)}, mapper_{spec_} {
  spec_.validate();
  channels_.reserve(static_cast<std::size_t>(spec_.org.channels));
  for (int c = 0; c < spec_.org.channels; ++c) {
    channels_.push_back(std::make_unique<ChannelController>(spec_, mapper_, c));
  }
}

int DramSystem::channel_of(std::uint64_t addr) const { return mapper_.decompose(addr).channel; }

bool DramSystem::can_accept(std::uint64_t addr) const {
  return channels_[static_cast<std::size_t>(channel_of(addr))]->can_accept();
}

void DramSystem::enqueue(Request req) {
  const int ch = channel_of(req.addr);
  MONDE_REQUIRE(channels_[static_cast<std::size_t>(ch)]->can_accept(),
                "channel " << ch << " queue full; check can_accept() first");
  channels_[static_cast<std::size_t>(ch)]->enqueue(std::move(req), cycle_);
}

void DramSystem::tick() {
  ++cycle_;
  const Duration period = spec_.clock_period();
  for (auto& ch : channels_) ch->tick(cycle_, period);
}

void DramSystem::advance_until(std::uint64_t limit_cycle) {
  if (exhaustive_tick_) {
    tick();
    return;
  }
  std::uint64_t target = limit_cycle;
  for (const auto& ch : channels_) target = std::min(target, ch->next_event_cycle(cycle_));
  cycle_ = std::max(target, cycle_ + 1);
  const Duration period = spec_.clock_period();
  for (auto& ch : channels_) ch->tick(cycle_, period);
}

void DramSystem::run_until_idle() {
  // Guard against runaway loops from scheduling bugs. The limit is phrased
  // in simulated time (not raw cycles) so it stays meaningful across clock
  // rates: no workload in this repository legitimately needs more than ~1 s
  // of simulated DRAM time to drain.
  const Duration max_drain = Duration::seconds(1.0);
  const std::uint64_t limit =
      cycle_ + static_cast<std::uint64_t>(max_drain / spec_.clock_period()) + 1;
  while (!idle()) {
    advance_until(limit);
    if (cycle_ >= limit && !idle()) {
      std::ostringstream os;
      os << "DRAM system failed to drain within " << max_drain.str()
         << " of simulated time (scheduler livelock?); stuck channels:";
      for (std::size_t c = 0; c < channels_.size(); ++c) {
        if (channels_[c]->idle()) continue;
        os << " ch" << c << "{queued=" << channels_[c]->queue_depth()
           << ", inflight=" << channels_[c]->inflight_count() << "}";
      }
      MONDE_ASSERT(false, os.str());
    }
  }
}

Duration DramSystem::now() const {
  return spec_.clock_period() * static_cast<double>(cycle_);
}

bool DramSystem::idle() const {
  for (const auto& ch : channels_) {
    if (!ch->idle()) return false;
  }
  return true;
}

Stats DramSystem::stats() const {
  Stats agg;
  for (const auto& ch : channels_) agg += ch->stats();
  // Utilization denominators aggregate across channels: one device cycle
  // offers `channels` data-bus cycles.
  agg.total_cycles = cycle_ * static_cast<std::uint64_t>(spec_.org.channels);
  return agg;
}

Bandwidth DramSystem::achieved_bandwidth() const {
  const Stats s = stats();
  const double secs = now().sec();
  if (secs <= 0.0) return Bandwidth::gbps(0.0);
  const double bytes =
      static_cast<double>(s.accesses()) * static_cast<double>(spec_.org.access_bytes);
  return Bandwidth::bytes_per_sec(bytes / secs);
}

}  // namespace monde::dram
