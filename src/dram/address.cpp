#include "dram/address.hpp"

#include "common/error.hpp"

namespace monde::dram {
namespace {

int log2_exact(int v) {
  int bits = 0;
  while ((1 << bits) < v) ++bits;
  MONDE_REQUIRE((1 << bits) == v, "dimension must be a power of two");
  return bits;
}

}  // namespace

AddressMapper::AddressMapper(const Spec& spec) {
  spec.validate();
  const Organization& org = spec.org;
  offset_bits_ = log2_exact(org.access_bytes);
  channel_bits_ = log2_exact(org.channels);
  column_bits_ = log2_exact(org.columns);
  rank_bits_ = log2_exact(org.ranks);
  bankgroup_bits_ = log2_exact(org.bankgroups);
  bank_bits_ = log2_exact(org.banks_per_group);
  row_bits_ = log2_exact(org.rows);
  capacity_ = org.total_capacity().count();
}

Address AddressMapper::decompose(std::uint64_t addr) const {
  MONDE_REQUIRE(addr < capacity_, "address 0x" << std::hex << addr << " beyond device capacity");
  std::uint64_t v = addr >> offset_bits_;
  auto take = [&v](int bits) {
    const auto field = static_cast<int>(v & ((1ULL << bits) - 1));
    v >>= bits;
    return field;
  };
  Address a;
  a.channel = take(channel_bits_);
  a.column = take(column_bits_);
  a.rank = take(rank_bits_);
  a.bankgroup = take(bankgroup_bits_);
  a.bank = take(bank_bits_);
  a.row = take(row_bits_);
  return a;
}

std::uint64_t AddressMapper::compose(const Address& a) const {
  MONDE_REQUIRE(a.channel >= 0 && a.channel < (1 << channel_bits_), "channel out of range");
  MONDE_REQUIRE(a.column >= 0 && a.column < (1 << column_bits_), "column out of range");
  MONDE_REQUIRE(a.rank >= 0 && a.rank < (1 << rank_bits_), "rank out of range");
  MONDE_REQUIRE(a.bankgroup >= 0 && a.bankgroup < (1 << bankgroup_bits_), "bankgroup out of range");
  MONDE_REQUIRE(a.bank >= 0 && a.bank < (1 << bank_bits_), "bank out of range");
  MONDE_REQUIRE(a.row >= 0 && a.row < (1 << row_bits_), "row out of range");
  std::uint64_t v = 0;
  int shift = 0;
  auto put = [&](int field, int bits) {
    v |= static_cast<std::uint64_t>(field) << shift;
    shift += bits;
  };
  put(a.channel, channel_bits_);
  put(a.column, column_bits_);
  put(a.rank, rank_bits_);
  put(a.bankgroup, bankgroup_bits_);
  put(a.bank, bank_bits_);
  put(a.row, row_bits_);
  return v << offset_bits_;
}

}  // namespace monde::dram
