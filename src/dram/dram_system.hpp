// Top-level multi-channel DRAM system: the cycle-level model of the MoNDE
// device memory. The NDP core simulator drives this system directly --
// enqueueing column-granularity requests and ticking the controller clock --
// to obtain cycle-accurate expert-GEMM latencies (the role Ramulator plays
// in the paper's evaluation).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dram/address.hpp"
#include "dram/controller.hpp"
#include "dram/request.hpp"
#include "dram/spec.hpp"

namespace monde::dram {

/// A complete DRAM device: N independent channel controllers sharing a clock.
class DramSystem {
 public:
  explicit DramSystem(Spec spec);

  DramSystem(const DramSystem&) = delete;
  DramSystem& operator=(const DramSystem&) = delete;

  /// Channel a byte address maps to (for admission control).
  [[nodiscard]] int channel_of(std::uint64_t addr) const;

  /// True if the owning channel can take another request.
  [[nodiscard]] bool can_accept(std::uint64_t addr) const;

  /// Enqueue a request. Requires can_accept(addr).
  void enqueue(Request req);

  /// Advance one controller cycle on every channel.
  void tick();

  /// Event-driven step: fast-forward the clock to the next cycle at which
  /// any channel's state can change (a transfer retires, a timing constraint
  /// expires, a refresh becomes due) and tick once there. All skipped cycles
  /// are provably no-op ticks, so the result is cycle-exact with calling
  /// tick() in a loop. Callers pass `limit_cycle` when external state
  /// changes at a known future cycle (e.g. the NDP core releasing a
  /// writeback batch): the jump is capped at `limit_cycle` -- except that
  /// every call advances at least one cycle, so a `limit_cycle` at or below
  /// the current cycle still ticks cycle()+1 (progress guarantee; guard in
  /// the caller if the limit must be hard). With exhaustive-tick mode on,
  /// this degrades to a single tick().
  void advance_until(std::uint64_t limit_cycle);

  /// advance_until with no external bound.
  void advance() { advance_until(~std::uint64_t{0}); }

  /// Tick until all queues and in-flight transfers drain.
  void run_until_idle();

  /// Opt-in per-cycle simulation mode: every cycle is ticked individually
  /// instead of fast-forwarding between events. Orders of magnitude slower;
  /// exists as the reference for differential tests. Defaults to the
  /// MONDE_EXHAUSTIVE_TICK environment variable (set and non-"0" = on).
  void set_exhaustive_tick(bool on) { exhaustive_tick_ = on; }
  [[nodiscard]] bool exhaustive_tick() const { return exhaustive_tick_; }

  /// Process-wide default for exhaustive-tick mode (reads the environment
  /// once).
  [[nodiscard]] static bool exhaustive_tick_env_default();

  /// Current simulated time (cycles * clock period).
  [[nodiscard]] Duration now() const;
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

  [[nodiscard]] bool idle() const;

  /// Aggregated statistics across channels.
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const Spec& spec() const { return spec_; }
  [[nodiscard]] const AddressMapper& mapper() const { return mapper_; }

  /// Achieved read+write bandwidth since construction.
  [[nodiscard]] Bandwidth achieved_bandwidth() const;

 private:
  Spec spec_;
  AddressMapper mapper_;
  std::vector<std::unique_ptr<ChannelController>> channels_;
  std::uint64_t cycle_ = 0;
  bool exhaustive_tick_ = exhaustive_tick_env_default();
};

}  // namespace monde::dram
