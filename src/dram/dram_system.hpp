// Top-level multi-channel DRAM system: the cycle-level model of the MoNDE
// device memory. The NDP core simulator drives this system directly --
// enqueueing column-granularity requests and ticking the controller clock --
// to obtain cycle-accurate expert-GEMM latencies (the role Ramulator plays
// in the paper's evaluation).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dram/address.hpp"
#include "dram/controller.hpp"
#include "dram/request.hpp"
#include "dram/spec.hpp"

namespace monde::dram {

/// A complete DRAM device: N independent channel controllers sharing a clock.
class DramSystem {
 public:
  explicit DramSystem(Spec spec);

  DramSystem(const DramSystem&) = delete;
  DramSystem& operator=(const DramSystem&) = delete;

  /// Channel a byte address maps to (for admission control).
  [[nodiscard]] int channel_of(std::uint64_t addr) const;

  /// True if the owning channel can take another request.
  [[nodiscard]] bool can_accept(std::uint64_t addr) const;

  /// Enqueue a request. Requires can_accept(addr).
  void enqueue(Request req);

  /// Advance one controller cycle on every channel.
  void tick();

  /// Tick until all queues and in-flight transfers drain.
  void run_until_idle();

  /// Current simulated time (cycles * clock period).
  [[nodiscard]] Duration now() const;
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

  [[nodiscard]] bool idle() const;

  /// Aggregated statistics across channels.
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const Spec& spec() const { return spec_; }
  [[nodiscard]] const AddressMapper& mapper() const { return mapper_; }

  /// Achieved read+write bandwidth since construction.
  [[nodiscard]] Bandwidth achieved_bandwidth() const;

 private:
  Spec spec_;
  AddressMapper mapper_;
  std::vector<std::unique_ptr<ChannelController>> channels_;
  std::uint64_t cycle_ = 0;
};

}  // namespace monde::dram
