#include "dram/spec.hpp"

#include <cmath>

#include "common/error.hpp"

namespace monde::dram {

Spec Spec::monde_lpddr5x_8533() {
  Spec s;
  s.name = "MoNDE-LPDDR5X-8533";
  // Defaults in Organization/Timing are already the MoNDE configuration:
  // 8 channels x 8 ranks x 16 banks x 65536 rows x 8 KiB rows = 512 GiB,
  // 8 x 68.3 GB/s ~= 546 GB/s peak (512 GB/s sustained-class).
  return s;
}

Spec Spec::with_bandwidth_scale(double factor) const {
  MONDE_REQUIRE(factor > 0.0, "bandwidth scale must be positive");
  Spec s = *this;
  s.name = name + "@" + std::to_string(factor) + "x";
  s.data_rate_mtps = data_rate_mtps * factor;
  // Keep analog timings constant in wall-clock terms: rescale cycle counts
  // to the new (faster/slower) controller clock. Burst length stays 1 CK by
  // construction; latencies round up to whole cycles.
  auto rescale = [&](int cycles) {
    const double ns = static_cast<double>(cycles) * clock_period().ns();
    return std::max(1, static_cast<int>(std::ceil(ns / s.clock_period().ns())));
  };
  Timing& t = s.timing;
  const Timing o = timing;
  t.nCL = rescale(o.nCL);
  t.nWL = rescale(o.nWL);
  t.nRCD = rescale(o.nRCD);
  t.nRP = rescale(o.nRP);
  t.nRAS = rescale(o.nRAS);
  t.nRC = rescale(o.nRC);
  // CAS-to-CAS spacing is a bus-rate constraint (bursts stay seamless at
  // any data rate), not an analog latency -- keep the cycle counts.
  t.nCCDS = o.nCCDS;
  t.nCCDL = o.nCCDL;
  t.nRRDS = rescale(o.nRRDS);
  t.nRRDL = rescale(o.nRRDL);
  t.nFAW = rescale(o.nFAW);
  t.nRTP = rescale(o.nRTP);
  t.nWR = rescale(o.nWR);
  t.nWTRS = rescale(o.nWTRS);
  t.nWTRL = rescale(o.nWTRL);
  t.nREFI = rescale(o.nREFI);
  t.nRFC = rescale(o.nRFC);
  return s;
}

void Spec::validate() const {
  MONDE_REQUIRE(org.channels > 0 && org.channels <= 64, "invalid channel count");
  MONDE_REQUIRE(org.ranks > 0 && org.ranks <= 16, "invalid rank count");
  MONDE_REQUIRE(org.bankgroups > 0 && org.banks_per_group > 0, "invalid bank topology");
  MONDE_REQUIRE(org.rows > 0 && org.columns > 0, "invalid row/column counts");
  MONDE_REQUIRE(org.access_bytes > 0 && (org.access_bytes & (org.access_bytes - 1)) == 0,
                "access granularity must be a power of two");
  // Field widths must be powers of two so the address mapper can use bit slices.
  auto pow2 = [](int v) { return v > 0 && (v & (v - 1)) == 0; };
  MONDE_REQUIRE(pow2(org.channels) && pow2(org.ranks) && pow2(org.bankgroups) &&
                    pow2(org.banks_per_group) && pow2(org.rows) && pow2(org.columns),
                "organization dimensions must be powers of two for bit-sliced mapping");
  MONDE_REQUIRE(data_rate_mtps > 0.0, "data rate must be positive");
  MONDE_REQUIRE(timing.nBL >= 1 && timing.nCL >= 1 && timing.nRCD >= 1 && timing.nRP >= 1,
                "core timings must be at least one cycle");
  MONDE_REQUIRE(timing.nRAS + timing.nRP <= timing.nRC + 1, "tRC must cover tRAS + tRP");
}

}  // namespace monde::dram
