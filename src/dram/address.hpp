// Physical address decomposition for the MoNDE device memory.
//
// The paper (Section 3.4) maps data "to the DRAM ro-ba-bg-ra-co-ch" order so
// that contiguous accesses stripe across channels first, then columns, then
// ranks/bank-groups/banks, with the row in the most-significant bits. This
// maximizes channel/bank parallelism for streaming reads. The mapper is
// bijective; the allocator uses compose() to build layouts constrained to
// even- or odd-indexed banks (parameter vs. activation partitioning).
#pragma once

#include <cstdint>

#include "dram/spec.hpp"

namespace monde::dram {

/// A fully decomposed DRAM coordinate.
struct Address {
  int channel = 0;
  int rank = 0;
  int bankgroup = 0;
  int bank = 0;  ///< bank index within the bank group
  int row = 0;
  int column = 0;

  /// Flat bank index within a rank: bankgroup * banks_per_group + bank.
  [[nodiscard]] int flat_bank(const Organization& org) const {
    return bankgroup * org.banks_per_group + bank;
  }

  bool operator==(const Address&) const = default;
};

/// Bijective byte-address <-> coordinate mapper in ro-ba-bg-ra-co-ch order.
///
/// Bit layout from LSB: [access offset][channel][column][rank][bankgroup]
/// [bank][row]. All dimension sizes are powers of two (validated by Spec).
class AddressMapper {
 public:
  explicit AddressMapper(const Spec& spec);

  /// Decompose a byte address. The low log2(access_bytes) offset bits are
  /// ignored. `addr` must lie within the device capacity.
  [[nodiscard]] Address decompose(std::uint64_t addr) const;

  /// Compose a byte address (offset bits zero) from a coordinate.
  [[nodiscard]] std::uint64_t compose(const Address& a) const;

  /// Total addressable bytes.
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }

  [[nodiscard]] int offset_bits() const { return offset_bits_; }

 private:
  int offset_bits_;
  int channel_bits_;
  int column_bits_;
  int rank_bits_;
  int bankgroup_bits_;
  int bank_bits_;
  int row_bits_;
  std::uint64_t capacity_;
};

}  // namespace monde::dram
