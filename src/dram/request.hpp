// Memory request type exchanged between the NDP core model and the DRAM
// simulator. One request moves exactly one column access (Spec access_bytes).
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.hpp"

namespace monde::dram {

/// One column-granularity DRAM transaction.
struct Request {
  enum class Type { kRead, kWrite };

  std::uint64_t addr = 0;
  Type type = Type::kRead;
  std::uint64_t id = 0;  ///< caller-assigned tag, echoed on completion

  /// Called at the cycle the data transfer finishes (read data returned /
  /// write data accepted by the device). May be empty.
  std::function<void(const Request&, Duration completion_time)> on_complete;
};

/// Aggregate statistics across the device (or one channel).
struct Stats {
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;   ///< ACT needed on an idle (closed) bank
  std::uint64_t row_conflicts = 0;  ///< PRE+ACT needed (other row open)
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t data_bus_busy_cycles = 0;
  std::uint64_t total_cycles = 0;
  double read_latency_sum_ns = 0.0;  ///< enqueue -> data return

  [[nodiscard]] std::uint64_t accesses() const { return reads_completed + writes_completed; }
  [[nodiscard]] double row_hit_rate() const {
    const auto total = row_hits + row_misses + row_conflicts;
    return total == 0 ? 0.0 : static_cast<double>(row_hits) / static_cast<double>(total);
  }
  [[nodiscard]] double bus_utilization() const {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(data_bus_busy_cycles) /
                                   static_cast<double>(total_cycles);
  }
  [[nodiscard]] double avg_read_latency_ns() const {
    return reads_completed == 0 ? 0.0 : read_latency_sum_ns / static_cast<double>(reads_completed);
  }

  Stats& operator+=(const Stats& o);
};

}  // namespace monde::dram
