// Per-channel DRAM controller: bank state machines, timing enforcement,
// FR-FCFS scheduling with read priority and write draining, and all-bank
// refresh per rank.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "dram/address.hpp"
#include "dram/request.hpp"
#include "dram/spec.hpp"

namespace monde::dram {

/// One channel's controller. Owned and ticked by DramSystem.
class ChannelController {
 public:
  ChannelController(const Spec& spec, const AddressMapper& mapper, int channel_index);

  /// True if the (bounded) request queue can take another entry.
  [[nodiscard]] bool can_accept() const;

  /// Enqueue a request already mapped to this channel. `now_cycle` is the
  /// current controller cycle (used for latency accounting).
  void enqueue(Request req, std::uint64_t now_cycle);

  /// Advance one controller clock cycle: issue at most one command, retire
  /// completed data transfers, handle refresh.
  void tick(std::uint64_t cycle, Duration tick_period);

  /// Earliest cycle > `c` at which this channel's state can change: a data
  /// transfer retires, a refresh becomes due (or quiesce progresses), or a
  /// queued request's blocking timing constraint expires. This is an exact
  /// lower bound: every cycle in (c, next_event_cycle(c)) is provably a
  /// no-op tick, so DramSystem may fast-forward across them without changing
  /// any observable behaviour.
  [[nodiscard]] std::uint64_t next_event_cycle(std::uint64_t c) const;

  /// True when no requests are queued or in flight.
  [[nodiscard]] bool idle() const;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const { return read_q_.size() + write_q_.size(); }
  [[nodiscard]] std::size_t inflight_count() const { return inflight_.size(); }

  /// Maximum queued requests per direction (reads and writes each).
  static constexpr std::size_t kQueueCapacity = 64;

 private:
  struct Bank {
    bool open = false;
    int open_row = -1;
    // Earliest cycles at which each command may be issued to this bank.
    std::uint64_t next_act = 0;
    std::uint64_t next_pre = 0;
    std::uint64_t next_rd = 0;
    std::uint64_t next_wr = 0;
  };

  struct RankState {
    std::uint64_t next_act = 0;  ///< rank-level ACT constraint (RRD/FAW)
    std::uint64_t next_rd = 0;   ///< rank-level CAS constraints (CCD/WTR)
    std::uint64_t next_wr = 0;
    std::deque<std::uint64_t> act_window;  ///< last ACT cycles for tFAW
    std::uint64_t refresh_due = 0;
    bool refresh_pending = false;  ///< quiescing: block new work on this rank
    std::size_t queued_demand = 0; ///< queued requests targeting this rank
  };

  /// JEDEC allows postponing up to 8 REF commands; we defer refresh while a
  /// rank has queued demand so streams are not cut mid-burst.
  static constexpr std::uint64_t kMaxPostponedRefreshes = 8;

  struct Entry {
    Request req;
    Address addr;
    std::uint64_t enqueue_cycle = 0;
  };

  struct InFlight {
    Request req;
    std::uint64_t complete_cycle = 0;
    std::uint64_t enqueue_cycle = 0;
    bool is_read = false;
  };

  /// Memoized result of a failed prep scan (see schedule_queue): while the
  /// scan window's membership and the bank/rank state are unchanged, the
  /// scan provably keeps failing before `blocked_until`, so it can be
  /// skipped. Thresholds only ever move later between invalidations, so a
  /// stale bound wakes the scan early (harmless), never late.
  struct PrepCache {
    bool valid = false;
    /// Window held a PRE candidate blocked only by an older row-hit; any
    /// queue-front removal may unblock it, so removals invalidate.
    bool has_conflict = false;
    std::uint64_t blocked_until = 0;
  };

  Bank& bank_at(const Address& a);
  [[nodiscard]] const Bank& bank_at(const Address& a) const;

  // Earliest cycles at which a command could be issued under the timing
  // constraints alone (bank-state preconditions aside). The can_* predicates
  // and the event-bound computations (sched_bound, try_prep's blocked_until)
  // share these so the fast path can never drift from the reference
  // semantics when a timing rule changes.
  [[nodiscard]] std::uint64_t earliest_act_cycle(const Address& a) const;
  [[nodiscard]] std::uint64_t earliest_cas_cycle(const Address& a, bool is_read) const;

  // Timing predicates (at cycle `c`).
  [[nodiscard]] bool can_activate(const Address& a, std::uint64_t c) const;
  [[nodiscard]] bool can_precharge(const Address& a, std::uint64_t c) const;
  [[nodiscard]] bool can_read(const Address& a, std::uint64_t c) const;
  [[nodiscard]] bool can_write(const Address& a, std::uint64_t c) const;

  // Command issue (updates timing state + stats).
  void issue_activate(const Address& a, std::uint64_t c);
  void issue_precharge(const Address& a, std::uint64_t c);
  void issue_cas(Entry& e, std::uint64_t c, bool first_service);
  void issue_refresh(int rank, std::uint64_t c);

  /// Try to make progress on one queued request; returns true if a command
  /// was issued this cycle.
  bool schedule_queue(std::deque<Entry>& q, std::uint64_t c);
  bool try_refresh(std::uint64_t c);

  void retire(std::uint64_t c, Duration tick_period);

  /// Earliest cycle any entry in `q`'s scan window could have a command
  /// issued for it (CAS, PRE, or ACT), ignoring cross-entry ordering rules
  /// (which only delay, never advance, the true issue cycle).
  [[nodiscard]] std::uint64_t sched_bound(const std::deque<Entry>& q, std::uint64_t c) const;

  [[nodiscard]] PrepCache& prep_cache_for(const std::deque<Entry>& q);
  void invalidate_prep_caches();
  /// Incremental prep-cache maintenance after erasing a scan-window entry.
  void on_window_entry_removed(const std::deque<Entry>& q, PrepCache& cache);

  const Spec& spec_;
  const AddressMapper& mapper_;
  int channel_;

  std::vector<Bank> banks_;       // [rank][flat_bank] flattened
  std::vector<RankState> ranks_;
  std::deque<Entry> read_q_;
  std::deque<Entry> write_q_;
  /// FIFO by completion: bus_free_ is monotone, so CAS data transfers
  /// complete in issue order and retire pops from the front.
  std::deque<InFlight> inflight_;
  std::uint64_t bus_free_ = 0;  ///< first cycle the data bus is free
  bool draining_writes_ = false;
  PrepCache read_prep_cache_;
  PrepCache write_prep_cache_;
  Stats stats_;

  static constexpr std::size_t kWriteDrainHigh = 48;
  static constexpr std::size_t kWriteDrainLow = 16;
  static constexpr std::size_t kSchedulerScanDepth = 32;
  /// Buffered row hits at which a prep command is preferred over a CAS.
  static constexpr std::size_t kPrepSlackHits = 4;
  /// JEDEC tFAW: ACTs allowed per rank within any nFAW window.
  static constexpr std::size_t kFawActivates = 4;
  /// Sentinel for "no event until state changes".
  static constexpr std::uint64_t kNeverCycle = ~std::uint64_t{0};
};

}  // namespace monde::dram
