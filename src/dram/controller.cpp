#include "dram/controller.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace monde::dram {

Stats& Stats::operator+=(const Stats& o) {
  reads_completed += o.reads_completed;
  writes_completed += o.writes_completed;
  row_hits += o.row_hits;
  row_misses += o.row_misses;
  row_conflicts += o.row_conflicts;
  activates += o.activates;
  precharges += o.precharges;
  refreshes += o.refreshes;
  data_bus_busy_cycles += o.data_bus_busy_cycles;
  total_cycles = std::max(total_cycles, o.total_cycles);
  read_latency_sum_ns += o.read_latency_sum_ns;
  return *this;
}

ChannelController::ChannelController(const Spec& spec, const AddressMapper& mapper,
                                     int channel_index)
    : spec_{spec}, mapper_{mapper}, channel_{channel_index} {
  banks_.resize(static_cast<std::size_t>(spec_.org.banks_per_channel()));
  ranks_.resize(static_cast<std::size_t>(spec_.org.ranks));
  // Stagger refresh across ranks so they do not all block simultaneously.
  const int refi = spec_.timing.nREFI;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    ranks_[r].refresh_due =
        static_cast<std::uint64_t>(refi) * (r + 1) / ranks_.size() + static_cast<std::uint64_t>(refi) / 8;
  }
}

ChannelController::Bank& ChannelController::bank_at(const Address& a) {
  const auto idx = static_cast<std::size_t>(a.rank * spec_.org.banks_per_rank() +
                                            a.flat_bank(spec_.org));
  return banks_[idx];
}

const ChannelController::Bank& ChannelController::bank_at(const Address& a) const {
  const auto idx = static_cast<std::size_t>(a.rank * spec_.org.banks_per_rank() +
                                            a.flat_bank(spec_.org));
  return banks_[idx];
}

bool ChannelController::can_accept() const {
  return read_q_.size() < kQueueCapacity && write_q_.size() < kQueueCapacity;
}

void ChannelController::enqueue(Request req, std::uint64_t now_cycle) {
  Address a = mapper_.decompose(req.addr);
  MONDE_REQUIRE(a.channel == channel_, "request routed to wrong channel");
  Entry e{std::move(req), a, now_cycle};
  ranks_[static_cast<std::size_t>(a.rank)].queued_demand++;
  if (e.req.type == Request::Type::kRead) {
    MONDE_REQUIRE(read_q_.size() < kQueueCapacity, "read queue overflow");
    read_q_.push_back(std::move(e));
    if (read_q_.size() <= kSchedulerScanDepth) read_prep_cache_.valid = false;
  } else {
    MONDE_REQUIRE(write_q_.size() < kQueueCapacity, "write queue overflow");
    write_q_.push_back(std::move(e));
    if (write_q_.size() <= kSchedulerScanDepth) write_prep_cache_.valid = false;
  }
}

std::uint64_t ChannelController::earliest_act_cycle(const Address& a) const {
  const Bank& b = bank_at(a);
  const RankState& r = ranks_[static_cast<std::size_t>(a.rank)];
  std::uint64_t c = std::max(b.next_act, r.next_act);
  // tFAW: at most kFawActivates ACTs per rank in any nFAW window.
  if (r.act_window.size() >= kFawActivates) {
    c = std::max(c, r.act_window.front() + static_cast<std::uint64_t>(spec_.timing.nFAW));
  }
  return c;
}

std::uint64_t ChannelController::earliest_cas_cycle(const Address& a, bool is_read) const {
  const Bank& b = bank_at(a);
  const RankState& r = ranks_[static_cast<std::size_t>(a.rank)];
  std::uint64_t c = is_read ? std::max(b.next_rd, r.next_rd) : std::max(b.next_wr, r.next_wr);
  // Data bus must be free when the data burst starts, CL/WL after the CAS.
  const auto lat = static_cast<std::uint64_t>(is_read ? spec_.timing.nCL : spec_.timing.nWL);
  if (bus_free_ > lat) c = std::max(c, bus_free_ - lat);
  return c;
}

bool ChannelController::can_activate(const Address& a, std::uint64_t c) const {
  return !bank_at(a).open && c >= earliest_act_cycle(a);
}

bool ChannelController::can_precharge(const Address& a, std::uint64_t c) const {
  const Bank& b = bank_at(a);
  return b.open && c >= b.next_pre;
}

bool ChannelController::can_read(const Address& a, std::uint64_t c) const {
  const Bank& b = bank_at(a);
  if (!b.open || b.open_row != a.row) return false;
  return c >= earliest_cas_cycle(a, /*is_read=*/true);
}

bool ChannelController::can_write(const Address& a, std::uint64_t c) const {
  const Bank& b = bank_at(a);
  if (!b.open || b.open_row != a.row) return false;
  return c >= earliest_cas_cycle(a, /*is_read=*/false);
}

void ChannelController::issue_activate(const Address& a, std::uint64_t c) {
  invalidate_prep_caches();
  Bank& b = bank_at(a);
  RankState& r = ranks_[static_cast<std::size_t>(a.rank)];
  const Timing& t = spec_.timing;
  b.open = true;
  b.open_row = a.row;
  b.next_rd = std::max(b.next_rd, c + static_cast<std::uint64_t>(t.nRCD));
  b.next_wr = std::max(b.next_wr, c + static_cast<std::uint64_t>(t.nRCD));
  b.next_pre = std::max(b.next_pre, c + static_cast<std::uint64_t>(t.nRAS));
  b.next_act = std::max(b.next_act, c + static_cast<std::uint64_t>(t.nRC));
  // Rank-level ACT-to-ACT: conservatively apply the same-bank-group value to
  // the whole rank when bank groups are close; model both distances by using
  // the short distance at rank level and the long one per bank group below.
  r.next_act = std::max(r.next_act, c + static_cast<std::uint64_t>(t.nRRDS));
  // Same-bank-group RRD_L: push next_act of sibling banks.
  for (int bank = 0; bank < spec_.org.banks_per_group; ++bank) {
    Address sib = a;
    sib.bank = bank;
    Bank& sb = bank_at(sib);
    sb.next_act = std::max(sb.next_act, c + static_cast<std::uint64_t>(t.nRRDL));
  }
  r.act_window.push_back(c);
  while (r.act_window.size() > kFawActivates) r.act_window.pop_front();
  ++stats_.activates;
}

void ChannelController::issue_precharge(const Address& a, std::uint64_t c) {
  invalidate_prep_caches();
  Bank& b = bank_at(a);
  b.open = false;
  b.open_row = -1;
  b.next_act = std::max(b.next_act, c + static_cast<std::uint64_t>(spec_.timing.nRP));
  ++stats_.precharges;
}

void ChannelController::issue_cas(Entry& e, std::uint64_t c, bool first_service) {
  const Timing& t = spec_.timing;
  const bool is_read = e.req.type == Request::Type::kRead;
  Bank& b = bank_at(e.addr);
  RankState& r = ranks_[static_cast<std::size_t>(e.addr.rank)];

  const std::uint64_t lat = static_cast<std::uint64_t>(is_read ? t.nCL : t.nWL);
  const std::uint64_t data_start = c + lat;
  const std::uint64_t data_end = data_start + static_cast<std::uint64_t>(t.nBL);
  bus_free_ = data_end;
  stats_.data_bus_busy_cycles += static_cast<std::uint64_t>(t.nBL);

  // CAS-to-CAS separation: long within the same bank group (per-bank state
  // below), short across (rank-level state).
  r.next_rd = std::max(r.next_rd, c + static_cast<std::uint64_t>(t.nCCDS));
  r.next_wr = std::max(r.next_wr, c + static_cast<std::uint64_t>(t.nCCDS));
  for (int bank = 0; bank < spec_.org.banks_per_group; ++bank) {
    Address sib = e.addr;
    sib.bank = bank;
    Bank& sb = bank_at(sib);
    sb.next_rd = std::max(sb.next_rd, c + static_cast<std::uint64_t>(t.nCCDL));
    sb.next_wr = std::max(sb.next_wr, c + static_cast<std::uint64_t>(t.nCCDL));
  }

  if (is_read) {
    b.next_pre = std::max(b.next_pre, c + static_cast<std::uint64_t>(t.nRTP));
    // Read-to-write turnaround handled by the data-bus check plus one bubble.
    r.next_wr = std::max(r.next_wr, data_end + 1 - std::min<std::uint64_t>(data_end + 1,
                                                      static_cast<std::uint64_t>(t.nWL)));
  } else {
    b.next_pre = std::max(b.next_pre, data_end + static_cast<std::uint64_t>(t.nWR));
    r.next_rd = std::max(r.next_rd, data_end + static_cast<std::uint64_t>(t.nWTRS));
    for (int bank = 0; bank < spec_.org.banks_per_group; ++bank) {
      Address sib = e.addr;
      sib.bank = bank;
      Bank& sb = bank_at(sib);
      sb.next_rd = std::max(sb.next_rd, data_end + static_cast<std::uint64_t>(t.nWTRL));
    }
  }

  if (first_service) ++stats_.row_hits;  // row was already open and matching

  MONDE_ASSERT(r.queued_demand > 0, "rank demand accounting underflow");
  r.queued_demand--;
  // bus_free_ is monotone, so completions are FIFO; retire() relies on this.
  MONDE_ASSERT(inflight_.empty() || inflight_.back().complete_cycle < data_end,
               "in-flight completions must be FIFO");
  inflight_.push_back(InFlight{std::move(e.req), data_end, e.enqueue_cycle, is_read});
}

void ChannelController::issue_refresh(int rank, std::uint64_t c) {
  invalidate_prep_caches();
  RankState& r = ranks_[static_cast<std::size_t>(rank)];
  const Timing& t = spec_.timing;
  for (int fb = 0; fb < spec_.org.banks_per_rank(); ++fb) {
    Address a;
    a.rank = rank;
    a.bankgroup = fb / spec_.org.banks_per_group;
    a.bank = fb % spec_.org.banks_per_group;
    Bank& b = bank_at(a);
    MONDE_ASSERT(!b.open, "refresh issued with open bank");
    b.next_act = std::max(b.next_act, c + static_cast<std::uint64_t>(t.nRFC));
  }
  r.refresh_due += static_cast<std::uint64_t>(t.nREFI);
  r.refresh_pending = false;
  ++stats_.refreshes;
}

bool ChannelController::try_refresh(std::uint64_t c) {
  for (std::size_t rk = 0; rk < ranks_.size(); ++rk) {
    RankState& r = ranks_[rk];
    if (c >= r.refresh_due) {
      // Postpone while the rank has queued demand, up to the JEDEC window;
      // once the debt reaches kMaxPostponedRefreshes intervals, force it.
      const bool forced =
          c >= r.refresh_due +
                   kMaxPostponedRefreshes * static_cast<std::uint64_t>(spec_.timing.nREFI);
      if ((forced || r.queued_demand == 0) && !r.refresh_pending) {
        r.refresh_pending = true;
        // refresh_pending changes which entries the prep scan may consider.
        invalidate_prep_caches();
      }
    }
    if (!r.refresh_pending) continue;
    // Close any open bank in this rank, oldest-first by simple scan.
    bool any_open = false;
    for (int fb = 0; fb < spec_.org.banks_per_rank(); ++fb) {
      Address a;
      a.rank = static_cast<int>(rk);
      a.bankgroup = fb / spec_.org.banks_per_group;
      a.bank = fb % spec_.org.banks_per_group;
      Bank& b = bank_at(a);
      if (b.open) {
        any_open = true;
        if (can_precharge(a, c)) {
          issue_precharge(a, c);
          return true;  // one command per cycle
        }
      }
    }
    if (!any_open) {
      // All banks closed: issue REF once the rank-level ACT timing allows.
      bool banks_ready = true;
      for (int fb = 0; fb < spec_.org.banks_per_rank(); ++fb) {
        Address a;
        a.rank = static_cast<int>(rk);
        a.bankgroup = fb / spec_.org.banks_per_group;
        a.bank = fb % spec_.org.banks_per_group;
        if (c < bank_at(a).next_pre && bank_at(a).open) banks_ready = false;
      }
      if (banks_ready) {
        issue_refresh(static_cast<int>(rk), c);
        return true;
      }
    }
  }
  return false;
}

bool ChannelController::schedule_queue(std::deque<Entry>& q, std::uint64_t c) {
  const std::size_t scan = std::min(q.size(), kSchedulerScanDepth);
  PrepCache& cache = prep_cache_for(q);

  // Pass 1 (FR): find the oldest row-hit request whose CAS can issue now,
  // and count how much row-hit work is buffered behind it. When plenty of
  // CAS work remains, spending this command slot on a *prep* command
  // (ACT/PRE for a younger request's bank) instead hides the tRCD+tRP
  // latency of upcoming row/rank switches behind the ongoing data burst --
  // the "open next row early" policy of streaming-oriented controllers.
  // The decision below needs only `hit_idx` and whether the buffered hit
  // count reaches kPrepSlackHits, so the scan stops as soon as both are
  // known (in steady-state streaming: after a handful of entries).
  std::size_t hit_idx = q.size();
  std::size_t hits_buffered = 0;
  for (std::size_t i = 0; i < scan; ++i) {
    Entry& e = q[i];
    const RankState& r = ranks_[static_cast<std::size_t>(e.addr.rank)];
    if (r.refresh_pending) continue;  // rank is quiescing for refresh
    const Bank& b = bank_at(e.addr);
    if (!b.open || b.open_row != e.addr.row) continue;
    ++hits_buffered;
    if (hit_idx == q.size()) {
      const bool ok = e.req.type == Request::Type::kRead ? can_read(e.addr, c)
                                                         : can_write(e.addr, c);
      if (ok) hit_idx = i;
    }
    if (hit_idx != q.size() && hits_buffered >= kPrepSlackHits) break;
  }

  // Prep commands are safe to issue eagerly (PRE never closes a row an
  // older request still wants; ACT only opens needed rows), so prefer them
  // whenever a few CAS are buffered to absorb the one-cycle command slot.
  const bool cas_has_slack = hits_buffered >= kPrepSlackHits;

  // Pass 2 (FCFS / prep): oldest request that needs bank preparation. A
  // failed scan records when it could first succeed so the (hot) all-hits
  // streaming case skips the rescan entirely until then.
  auto try_prep = [&]() -> bool {
    if (cache.valid && c < cache.blocked_until) return false;
    std::uint64_t blocked_until = kNeverCycle;
    bool has_conflict = false;
    for (std::size_t i = 0; i < scan; ++i) {
      Entry& e = q[i];
      const RankState& r = ranks_[static_cast<std::size_t>(e.addr.rank)];
      if (r.refresh_pending) continue;
      const Bank& b = bank_at(e.addr);
      if (b.open && b.open_row != e.addr.row) {
        // Only close a row that no older queued request still wants.
        bool older_wants_row = false;
        for (std::size_t j = 0; j < i; ++j) {
          if (q[j].addr.rank == e.addr.rank && q[j].addr.bankgroup == e.addr.bankgroup &&
              q[j].addr.bank == e.addr.bank && q[j].addr.row == b.open_row) {
            older_wants_row = true;
            break;
          }
        }
        if (!older_wants_row && can_precharge(e.addr, c)) {
          ++stats_.row_conflicts;
          issue_precharge(e.addr, c);
          return true;
        }
        if (older_wants_row) {
          has_conflict = true;  // unblocks only via a queue change
        } else {
          blocked_until = std::min(blocked_until, b.next_pre);
        }
        continue;
      }
      if (!b.open) {
        if (can_activate(e.addr, c)) {
          ++stats_.row_misses;
          issue_activate(e.addr, c);
          return true;
        }
        blocked_until = std::min(blocked_until, earliest_act_cycle(e.addr));
        continue;
      }
      // Row open and matching: CAS handled by pass 1.
    }
    cache.valid = true;
    cache.has_conflict = has_conflict;
    cache.blocked_until = blocked_until;
    return false;
  };

  if (cas_has_slack && try_prep()) return true;
  if (hit_idx != q.size()) {
    issue_cas(q[hit_idx], c, /*first_service=*/true);
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(hit_idx));
    on_window_entry_removed(q, cache);
    return true;
  }
  return try_prep();
}

ChannelController::PrepCache& ChannelController::prep_cache_for(const std::deque<Entry>& q) {
  return &q == &read_q_ ? read_prep_cache_ : write_prep_cache_;
}

void ChannelController::invalidate_prep_caches() {
  read_prep_cache_.valid = false;
  write_prep_cache_.valid = false;
}

void ChannelController::on_window_entry_removed(const std::deque<Entry>& q, PrepCache& cache) {
  if (!cache.valid) return;
  // Removing an entry may unblock a PRE whose open row only that (older)
  // entry still wanted.
  if (cache.has_conflict) {
    cache.valid = false;
    return;
  }
  if (q.size() < kSchedulerScanDepth) return;  // window membership unchanged
  // One entry shifted into the scan window; only a non-hit adds a prep
  // candidate the cached bound does not account for.
  const Entry& e = q[kSchedulerScanDepth - 1];
  const Bank& b = bank_at(e.addr);
  if (!b.open || b.open_row != e.addr.row) cache.valid = false;
}

void ChannelController::retire(std::uint64_t c, Duration tick_period) {
  // In-flight transfers complete in FIFO order (see issue_cas), so retiring
  // is a pop from the front rather than a full scan.
  while (!inflight_.empty() && inflight_.front().complete_cycle <= c) {
    InFlight& f = inflight_.front();
    if (f.is_read) {
      ++stats_.reads_completed;
      stats_.read_latency_sum_ns += static_cast<double>(c - f.enqueue_cycle) * tick_period.ns();
    } else {
      ++stats_.writes_completed;
    }
    if (f.req.on_complete) {
      const Duration t = tick_period * static_cast<double>(c);
      f.req.on_complete(f.req, t);
    }
    inflight_.pop_front();
  }
}

void ChannelController::tick(std::uint64_t cycle, Duration tick_period) {
  stats_.total_cycles = cycle;
  retire(cycle, tick_period);

  // Refresh has absolute priority once due.
  if (try_refresh(cycle)) return;

  // Write draining hysteresis.
  if (write_q_.size() >= kWriteDrainHigh) draining_writes_ = true;
  if (write_q_.size() <= kWriteDrainLow) draining_writes_ = false;

  if (draining_writes_ || read_q_.empty()) {
    if (schedule_queue(write_q_, cycle)) return;
    if (!draining_writes_) return;
    // While draining, also let reads through if writes are blocked.
    schedule_queue(read_q_, cycle);
    return;
  }
  if (schedule_queue(read_q_, cycle)) return;
  // Reads blocked on timing: opportunistically serve writes.
  schedule_queue(write_q_, cycle);
}

bool ChannelController::idle() const {
  return read_q_.empty() && write_q_.empty() && inflight_.empty();
}

std::uint64_t ChannelController::sched_bound(const std::deque<Entry>& q, std::uint64_t c) const {
  const std::size_t scan = std::min(q.size(), kSchedulerScanDepth);
  std::uint64_t bound = kNeverCycle;
  for (std::size_t i = 0; i < scan; ++i) {
    const Entry& e = q[i];
    const RankState& r = ranks_[static_cast<std::size_t>(e.addr.rank)];
    if (r.refresh_pending) continue;  // wakes via the refresh bound instead
    const Bank& b = bank_at(e.addr);
    if (b.open && b.open_row == e.addr.row) {
      bound = std::min(bound,
                       earliest_cas_cycle(e.addr, e.req.type == Request::Type::kRead));
    } else if (b.open) {
      // PRE candidate. The older-wants-row ordering rule can only delay the
      // real issue past this, which keeps the bound a valid lower bound.
      bound = std::min(bound, b.next_pre);
    } else {
      bound = std::min(bound, earliest_act_cycle(e.addr));
    }
    if (bound <= c + 1) return bound;  // cannot get earlier than next cycle
  }
  return bound;
}

std::uint64_t ChannelController::next_event_cycle(std::uint64_t c) const {
  std::uint64_t e = kNeverCycle;
  if (!inflight_.empty()) e = std::min(e, inflight_.front().complete_cycle);
  for (const RankState& r : ranks_) {
    if (r.refresh_pending) {
      // Quiescing: a PRE or the REF itself may issue as soon as next cycle.
      e = std::min(e, c + 1);
    } else if (r.queued_demand == 0) {
      e = std::min(e, r.refresh_due);
    } else {
      // Demand postpones refresh up to the JEDEC window, then it is forced.
      e = std::min(e, r.refresh_due +
                          kMaxPostponedRefreshes * static_cast<std::uint64_t>(spec_.timing.nREFI));
    }
    if (e <= c + 1) return c + 1;
  }
  if (e > c + 1) e = std::min(e, sched_bound(read_q_, c));
  if (e > c + 1) e = std::min(e, sched_bound(write_q_, c));
  return std::max(e, c + 1);
}

}  // namespace monde::dram
