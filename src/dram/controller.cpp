#include "dram/controller.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace monde::dram {

Stats& Stats::operator+=(const Stats& o) {
  reads_completed += o.reads_completed;
  writes_completed += o.writes_completed;
  row_hits += o.row_hits;
  row_misses += o.row_misses;
  row_conflicts += o.row_conflicts;
  activates += o.activates;
  precharges += o.precharges;
  refreshes += o.refreshes;
  data_bus_busy_cycles += o.data_bus_busy_cycles;
  total_cycles = std::max(total_cycles, o.total_cycles);
  read_latency_sum_ns += o.read_latency_sum_ns;
  return *this;
}

ChannelController::ChannelController(const Spec& spec, const AddressMapper& mapper,
                                     int channel_index)
    : spec_{spec}, mapper_{mapper}, channel_{channel_index} {
  banks_.resize(static_cast<std::size_t>(spec_.org.banks_per_channel()));
  ranks_.resize(static_cast<std::size_t>(spec_.org.ranks));
  // Stagger refresh across ranks so they do not all block simultaneously.
  const int refi = spec_.timing.nREFI;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    ranks_[r].refresh_due =
        static_cast<std::uint64_t>(refi) * (r + 1) / ranks_.size() + static_cast<std::uint64_t>(refi) / 8;
  }
}

ChannelController::Bank& ChannelController::bank_at(const Address& a) {
  const auto idx = static_cast<std::size_t>(a.rank * spec_.org.banks_per_rank() +
                                            a.flat_bank(spec_.org));
  return banks_[idx];
}

const ChannelController::Bank& ChannelController::bank_at(const Address& a) const {
  const auto idx = static_cast<std::size_t>(a.rank * spec_.org.banks_per_rank() +
                                            a.flat_bank(spec_.org));
  return banks_[idx];
}

bool ChannelController::can_accept() const {
  return read_q_.size() < kQueueCapacity && write_q_.size() < kQueueCapacity;
}

void ChannelController::enqueue(Request req, std::uint64_t now_cycle) {
  Address a = mapper_.decompose(req.addr);
  MONDE_REQUIRE(a.channel == channel_, "request routed to wrong channel");
  Entry e{std::move(req), a, now_cycle};
  ranks_[static_cast<std::size_t>(a.rank)].queued_demand++;
  if (e.req.type == Request::Type::kRead) {
    MONDE_REQUIRE(read_q_.size() < kQueueCapacity, "read queue overflow");
    read_q_.push_back(std::move(e));
  } else {
    MONDE_REQUIRE(write_q_.size() < kQueueCapacity, "write queue overflow");
    write_q_.push_back(std::move(e));
  }
}

bool ChannelController::can_activate(const Address& a, std::uint64_t c) const {
  const Bank& b = bank_at(a);
  const RankState& r = ranks_[static_cast<std::size_t>(a.rank)];
  if (b.open) return false;
  if (c < b.next_act || c < r.next_act) return false;
  // tFAW: at most 4 ACTs per rank in any nFAW window.
  if (r.act_window.size() >= 4 &&
      c < r.act_window.front() + static_cast<std::uint64_t>(spec_.timing.nFAW)) {
    return false;
  }
  return true;
}

bool ChannelController::can_precharge(const Address& a, std::uint64_t c) const {
  const Bank& b = bank_at(a);
  return b.open && c >= b.next_pre;
}

bool ChannelController::can_read(const Address& a, std::uint64_t c) const {
  const Bank& b = bank_at(a);
  const RankState& r = ranks_[static_cast<std::size_t>(a.rank)];
  if (!b.open || b.open_row != a.row) return false;
  if (c < b.next_rd || c < r.next_rd) return false;
  // Data bus must be free when read data arrives.
  const std::uint64_t data_start = c + static_cast<std::uint64_t>(spec_.timing.nCL);
  return data_start >= bus_free_;
}

bool ChannelController::can_write(const Address& a, std::uint64_t c) const {
  const Bank& b = bank_at(a);
  const RankState& r = ranks_[static_cast<std::size_t>(a.rank)];
  if (!b.open || b.open_row != a.row) return false;
  if (c < b.next_wr || c < r.next_wr) return false;
  const std::uint64_t data_start = c + static_cast<std::uint64_t>(spec_.timing.nWL);
  return data_start >= bus_free_;
}

void ChannelController::issue_activate(const Address& a, std::uint64_t c) {
  Bank& b = bank_at(a);
  RankState& r = ranks_[static_cast<std::size_t>(a.rank)];
  const Timing& t = spec_.timing;
  b.open = true;
  b.open_row = a.row;
  b.next_rd = std::max(b.next_rd, c + static_cast<std::uint64_t>(t.nRCD));
  b.next_wr = std::max(b.next_wr, c + static_cast<std::uint64_t>(t.nRCD));
  b.next_pre = std::max(b.next_pre, c + static_cast<std::uint64_t>(t.nRAS));
  b.next_act = std::max(b.next_act, c + static_cast<std::uint64_t>(t.nRC));
  // Rank-level ACT-to-ACT: conservatively apply the same-bank-group value to
  // the whole rank when bank groups are close; model both distances by using
  // the short distance at rank level and the long one per bank group below.
  r.next_act = std::max(r.next_act, c + static_cast<std::uint64_t>(t.nRRDS));
  // Same-bank-group RRD_L: push next_act of sibling banks.
  for (int bank = 0; bank < spec_.org.banks_per_group; ++bank) {
    Address sib = a;
    sib.bank = bank;
    Bank& sb = bank_at(sib);
    sb.next_act = std::max(sb.next_act, c + static_cast<std::uint64_t>(t.nRRDL));
  }
  r.act_window.push_back(c);
  while (r.act_window.size() > 4) r.act_window.pop_front();
  ++stats_.activates;
}

void ChannelController::issue_precharge(const Address& a, std::uint64_t c) {
  Bank& b = bank_at(a);
  b.open = false;
  b.open_row = -1;
  b.next_act = std::max(b.next_act, c + static_cast<std::uint64_t>(spec_.timing.nRP));
  ++stats_.precharges;
}

void ChannelController::issue_cas(Entry& e, std::uint64_t c, bool first_service) {
  const Timing& t = spec_.timing;
  const bool is_read = e.req.type == Request::Type::kRead;
  Bank& b = bank_at(e.addr);
  RankState& r = ranks_[static_cast<std::size_t>(e.addr.rank)];

  const std::uint64_t lat = static_cast<std::uint64_t>(is_read ? t.nCL : t.nWL);
  const std::uint64_t data_start = c + lat;
  const std::uint64_t data_end = data_start + static_cast<std::uint64_t>(t.nBL);
  bus_free_ = data_end;
  stats_.data_bus_busy_cycles += static_cast<std::uint64_t>(t.nBL);

  // CAS-to-CAS separation: long within the same bank group, short across.
  for (std::size_t i = 0; i < banks_.size(); ++i) {
    // Applying CCD at rank level: use next_rd/next_wr on the rank for the
    // short distance and per-bank for the long distance.
    (void)i;
  }
  r.next_rd = std::max(r.next_rd, c + static_cast<std::uint64_t>(t.nCCDS));
  r.next_wr = std::max(r.next_wr, c + static_cast<std::uint64_t>(t.nCCDS));
  for (int bank = 0; bank < spec_.org.banks_per_group; ++bank) {
    Address sib = e.addr;
    sib.bank = bank;
    Bank& sb = bank_at(sib);
    sb.next_rd = std::max(sb.next_rd, c + static_cast<std::uint64_t>(t.nCCDL));
    sb.next_wr = std::max(sb.next_wr, c + static_cast<std::uint64_t>(t.nCCDL));
  }

  if (is_read) {
    b.next_pre = std::max(b.next_pre, c + static_cast<std::uint64_t>(t.nRTP));
    // Read-to-write turnaround handled by the data-bus check plus one bubble.
    r.next_wr = std::max(r.next_wr, data_end + 1 - std::min<std::uint64_t>(data_end + 1,
                                                      static_cast<std::uint64_t>(t.nWL)));
  } else {
    b.next_pre = std::max(b.next_pre, data_end + static_cast<std::uint64_t>(t.nWR));
    r.next_rd = std::max(r.next_rd, data_end + static_cast<std::uint64_t>(t.nWTRS));
    for (int bank = 0; bank < spec_.org.banks_per_group; ++bank) {
      Address sib = e.addr;
      sib.bank = bank;
      Bank& sb = bank_at(sib);
      sb.next_rd = std::max(sb.next_rd, data_end + static_cast<std::uint64_t>(t.nWTRL));
    }
  }

  if (first_service) ++stats_.row_hits;  // row was already open and matching

  MONDE_ASSERT(r.queued_demand > 0, "rank demand accounting underflow");
  r.queued_demand--;
  inflight_.push_back(InFlight{std::move(e.req), data_end, e.enqueue_cycle, is_read});
}

void ChannelController::issue_refresh(int rank, std::uint64_t c) {
  RankState& r = ranks_[static_cast<std::size_t>(rank)];
  const Timing& t = spec_.timing;
  for (int fb = 0; fb < spec_.org.banks_per_rank(); ++fb) {
    Address a;
    a.rank = rank;
    a.bankgroup = fb / spec_.org.banks_per_group;
    a.bank = fb % spec_.org.banks_per_group;
    Bank& b = bank_at(a);
    MONDE_ASSERT(!b.open, "refresh issued with open bank");
    b.next_act = std::max(b.next_act, c + static_cast<std::uint64_t>(t.nRFC));
  }
  r.refresh_due += static_cast<std::uint64_t>(t.nREFI);
  r.refresh_pending = false;
  ++stats_.refreshes;
}

bool ChannelController::try_refresh(std::uint64_t c) {
  for (std::size_t rk = 0; rk < ranks_.size(); ++rk) {
    RankState& r = ranks_[rk];
    if (c >= r.refresh_due) {
      // Postpone while the rank has queued demand, up to the JEDEC window;
      // once the debt reaches kMaxPostponedRefreshes intervals, force it.
      const bool forced =
          c >= r.refresh_due +
                   kMaxPostponedRefreshes * static_cast<std::uint64_t>(spec_.timing.nREFI);
      if (forced || r.queued_demand == 0) r.refresh_pending = true;
    }
    if (!r.refresh_pending) continue;
    // Close any open bank in this rank, oldest-first by simple scan.
    bool any_open = false;
    for (int fb = 0; fb < spec_.org.banks_per_rank(); ++fb) {
      Address a;
      a.rank = static_cast<int>(rk);
      a.bankgroup = fb / spec_.org.banks_per_group;
      a.bank = fb % spec_.org.banks_per_group;
      Bank& b = bank_at(a);
      if (b.open) {
        any_open = true;
        if (can_precharge(a, c)) {
          issue_precharge(a, c);
          return true;  // one command per cycle
        }
      }
    }
    if (!any_open) {
      // All banks closed: issue REF once the rank-level ACT timing allows.
      bool banks_ready = true;
      for (int fb = 0; fb < spec_.org.banks_per_rank(); ++fb) {
        Address a;
        a.rank = static_cast<int>(rk);
        a.bankgroup = fb / spec_.org.banks_per_group;
        a.bank = fb % spec_.org.banks_per_group;
        if (c < bank_at(a).next_pre && bank_at(a).open) banks_ready = false;
      }
      if (banks_ready) {
        issue_refresh(static_cast<int>(rk), c);
        return true;
      }
    }
  }
  return false;
}

bool ChannelController::schedule_queue(std::deque<Entry>& q, std::uint64_t c) {
  const std::size_t scan = std::min(q.size(), kSchedulerScanDepth);

  // Pass 1 (FR): find the oldest row-hit request whose CAS can issue now,
  // and count how much row-hit work is buffered behind it. When plenty of
  // CAS work remains, spending this command slot on a *prep* command
  // (ACT/PRE for a younger request's bank) instead hides the tRCD+tRP
  // latency of upcoming row/rank switches behind the ongoing data burst --
  // the "open next row early" policy of streaming-oriented controllers.
  std::size_t hit_idx = q.size();
  std::size_t hits_buffered = 0;
  for (std::size_t i = 0; i < scan; ++i) {
    Entry& e = q[i];
    const RankState& r = ranks_[static_cast<std::size_t>(e.addr.rank)];
    if (r.refresh_pending) continue;  // rank is quiescing for refresh
    const Bank& b = bank_at(e.addr);
    if (!b.open || b.open_row != e.addr.row) continue;
    ++hits_buffered;
    if (hit_idx == q.size()) {
      const bool ok = e.req.type == Request::Type::kRead ? can_read(e.addr, c)
                                                         : can_write(e.addr, c);
      if (ok) hit_idx = i;
    }
  }

  // Prep commands are safe to issue eagerly (PRE never closes a row an
  // older request still wants; ACT only opens needed rows), so prefer them
  // whenever a few CAS are buffered to absorb the one-cycle command slot.
  constexpr std::size_t kPrepSlackHits = 4;
  const bool cas_has_slack = hits_buffered >= kPrepSlackHits;

  // Pass 2 (FCFS / prep): oldest request that needs bank preparation.
  auto try_prep = [&]() -> bool {
    for (std::size_t i = 0; i < scan; ++i) {
      Entry& e = q[i];
      const RankState& r = ranks_[static_cast<std::size_t>(e.addr.rank)];
      if (r.refresh_pending) continue;
      const Bank& b = bank_at(e.addr);
      if (b.open && b.open_row != e.addr.row) {
        // Only close a row that no older queued request still wants.
        bool older_wants_row = false;
        for (std::size_t j = 0; j < i; ++j) {
          if (q[j].addr.rank == e.addr.rank && q[j].addr.bankgroup == e.addr.bankgroup &&
              q[j].addr.bank == e.addr.bank && q[j].addr.row == b.open_row) {
            older_wants_row = true;
            break;
          }
        }
        if (!older_wants_row && can_precharge(e.addr, c)) {
          ++stats_.row_conflicts;
          issue_precharge(e.addr, c);
          return true;
        }
        continue;
      }
      if (!b.open) {
        if (can_activate(e.addr, c)) {
          ++stats_.row_misses;
          issue_activate(e.addr, c);
          return true;
        }
        continue;
      }
      // Row open and matching: CAS handled by pass 1.
    }
    return false;
  };

  if (cas_has_slack && try_prep()) return true;
  if (hit_idx != q.size()) {
    issue_cas(q[hit_idx], c, /*first_service=*/true);
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(hit_idx));
    return true;
  }
  return try_prep();
}

void ChannelController::retire(std::uint64_t c, Duration tick_period) {
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->complete_cycle <= c) {
      if (it->is_read) {
        ++stats_.reads_completed;
        stats_.read_latency_sum_ns +=
            static_cast<double>(c - it->enqueue_cycle) * tick_period.ns();
      } else {
        ++stats_.writes_completed;
      }
      if (it->req.on_complete) {
        const Duration t = tick_period * static_cast<double>(c);
        it->req.on_complete(it->req, t);
      }
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
}

void ChannelController::tick(std::uint64_t cycle, Duration tick_period) {
  stats_.total_cycles = cycle;
  retire(cycle, tick_period);

  // Refresh has absolute priority once due.
  if (try_refresh(cycle)) return;

  // Write draining hysteresis.
  if (write_q_.size() >= kWriteDrainHigh) draining_writes_ = true;
  if (write_q_.size() <= kWriteDrainLow) draining_writes_ = false;

  if (draining_writes_ || read_q_.empty()) {
    if (schedule_queue(write_q_, cycle)) return;
    if (!draining_writes_) return;
    // While draining, also let reads through if writes are blocked.
    schedule_queue(read_q_, cycle);
    return;
  }
  if (schedule_queue(read_q_, cycle)) return;
  // Reads blocked on timing: opportunistically serve writes.
  schedule_queue(write_q_, cycle);
}

bool ChannelController::idle() const {
  return read_q_.empty() && write_q_.empty() && inflight_.empty();
}

}  // namespace monde::dram
