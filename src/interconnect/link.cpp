#include "interconnect/link.hpp"

namespace monde::interconnect {

LinkSpec LinkSpec::pcie_gen4_x16() {
  LinkSpec s;
  s.name = "PCIe-Gen4-x16";
  s.raw_bandwidth = Bandwidth::gbps(31.5);
  s.protocol_efficiency = 0.914;  // 256-B MPS: 256 / (256 + 24 B TLP overhead)
  s.propagation = Duration::micros(0.5);
  s.dma_setup = Duration::micros(4.0);
  return s;
}

LinkSpec LinkSpec::pcie_gen3_x16() {
  LinkSpec s = pcie_gen4_x16();
  s.name = "PCIe-Gen3-x16";
  s.raw_bandwidth = Bandwidth::gbps(15.75);
  return s;
}

LinkSpec LinkSpec::pcie_gen5_x16() {
  LinkSpec s = pcie_gen4_x16();
  s.name = "PCIe-Gen5-x16";
  s.raw_bandwidth = Bandwidth::gbps(63.0);
  return s;
}

LinkSpec LinkSpec::cxl_mem_gen4_x16() {
  LinkSpec s;
  s.name = "CXL.mem-Gen4-x16";
  s.raw_bandwidth = Bandwidth::gbps(31.5);
  s.protocol_efficiency = 64.0 / 68.0;  // 68-B flit, 64-B payload
  s.propagation = Duration::nanos(150.0);  // load-to-use class latency
  s.dma_setup = Duration::micros(1.0);     // lighter-weight than PCIe DMA
  return s;
}

LinkSpec LinkSpec::scaled(double factor) const {
  LinkSpec s = *this;
  s.name = name + "@" + std::to_string(factor) + "x";
  s.raw_bandwidth = raw_bandwidth * factor;
  return s;
}

}  // namespace monde::interconnect
