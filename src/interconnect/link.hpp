// Host interconnect timing models: PCIe bulk-DMA links and the CXL.mem
// path used for MoNDE instruction/doorbell traffic.
//
// A transfer costs: DMA setup (descriptor + doorbell) + one-way propagation
// + payload / effective_bandwidth, where effective bandwidth derates the raw
// link rate by the protocol (TLP or flit) efficiency. Small MMIO-style
// messages skip DMA setup and pay per-message latency instead.
#pragma once

#include <string>

#include "common/units.hpp"

namespace monde::interconnect {

/// Static description of one link direction.
struct LinkSpec {
  std::string name;
  Bandwidth raw_bandwidth;       ///< per direction, after line coding
  double protocol_efficiency = 1.0;  ///< payload fraction of link bytes
  Duration propagation = Duration::micros(0.5);  ///< one-way latency
  Duration dma_setup = Duration::micros(4.0);    ///< descriptor + doorbell cost

  /// Payload bandwidth after protocol overhead.
  [[nodiscard]] Bandwidth effective_bandwidth() const {
    return raw_bandwidth * protocol_efficiency;
  }

  /// Bulk DMA transfer latency (setup + propagation + streaming).
  [[nodiscard]] Duration transfer_time(Bytes payload) const {
    return dma_setup + propagation + ::monde::transfer_time(payload, effective_bandwidth());
  }

  /// Latency of a small control message (no DMA setup), e.g. an MMIO write
  /// of one 64-B instruction or a doorbell/done-register access.
  [[nodiscard]] Duration message_time(Bytes payload) const {
    return propagation + ::monde::transfer_time(payload, effective_bandwidth());
  }

  // --- Presets -------------------------------------------------------------

  /// PCIe Gen4 x16: 16 GT/s x 16 lanes, 128b/130b -> 31.5 GB/s raw,
  /// ~91% TLP efficiency at 256-B MPS.
  [[nodiscard]] static LinkSpec pcie_gen4_x16();

  /// PCIe Gen3 x16: 8 GT/s x 16 lanes -> 15.75 GB/s raw.
  [[nodiscard]] static LinkSpec pcie_gen3_x16();

  /// PCIe Gen5 x16: 32 GT/s x 16 lanes -> 63 GB/s raw.
  [[nodiscard]] static LinkSpec pcie_gen5_x16();

  /// CXL.mem over a Gen4 x16 PHY (as in the paper's MoNDE device): 68-B
  /// flits carrying 64-B payloads, sub-microsecond access latency, no DMA
  /// setup for flit-granularity requests.
  [[nodiscard]] static LinkSpec cxl_mem_gen4_x16();

  /// Uniform bandwidth scaling (keeps latencies), for sensitivity studies.
  [[nodiscard]] LinkSpec scaled(double factor) const;
};

/// A bidirectional link: independent lanes per direction (full duplex), as
/// with PCIe/CXL. Directions are scheduled as separate streams by the
/// runtime (PCI_G2M vs PCI_M2G in Figure 5 of the paper).
struct DuplexLink {
  LinkSpec host_to_device;
  LinkSpec device_to_host;

  [[nodiscard]] static DuplexLink symmetric(const LinkSpec& spec) { return {spec, spec}; }
};

}  // namespace monde::interconnect
