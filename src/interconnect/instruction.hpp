// The 64-byte MoNDE NDP CXL instruction (paper Figure 4(a)).
//
// Layout (little-endian bit stream, 512 bits total):
//   [  4b] opcode
//   [ 64b] input-activation address   [ 64b] input-activation size
//   [ 64b] expert-weight address      [ 64b] expert-weight size
//   [ 64b] output-activation address  [ 64b] output-activation size
//   [124b] auxiliary flags: isNDP(1) act_fn(2) expert_id(16) layer_id(16)
//          device_id(8) token_count(20) kernel_seq(16) reserved(45)
//
// Host kernels (`gemm`, `gemm+relu`) compile 1:1 into these instructions;
// the device-side decoder re-extracts every field. Encoding and decoding
// round-trip exactly, which the unit tests verify field-by-field.
#pragma once

#include <array>
#include <cstdint>

namespace monde::interconnect {

/// NDP opcodes. 4 bits: values 0..15; unlisted values are reserved.
enum class Opcode : std::uint8_t {
  kNop = 0,
  kGemm = 1,       ///< C = A x B
  kGemmRelu = 2,   ///< C = relu(A x B)
  kGemmGelu = 3,   ///< C = gelu(A x B)
  kBarrier = 4,    ///< wait for all prior kernels, then raise done
  kReserved5 = 5,
};

/// Trailing activation function selector inside the auxiliary field.
enum class ActFn : std::uint8_t { kNone = 0, kRelu = 1, kGelu = 2 };

/// One (address, size) operand descriptor.
struct OperandDesc {
  std::uint64_t addr = 0;
  std::uint64_t size = 0;
  bool operator==(const OperandDesc&) const = default;
};

/// Decoded form of the 64-B instruction.
struct NdpInstruction {
  Opcode opcode = Opcode::kNop;
  OperandDesc act_in;
  OperandDesc weight;
  OperandDesc act_out;
  // Auxiliary fields.
  bool is_ndp = true;
  ActFn act_fn = ActFn::kNone;
  std::uint16_t expert_id = 0;
  std::uint16_t layer_id = 0;
  std::uint8_t device_id = 0;
  std::uint32_t token_count = 0;  ///< 20 bits used
  std::uint16_t kernel_seq = 0;

  bool operator==(const NdpInstruction&) const = default;
};

/// The wire format: exactly one 64-byte CXL RwD payload.
using InstructionBytes = std::array<std::uint8_t, 64>;

/// Serialize to the 64-B wire format. Throws monde::Error if any field
/// exceeds its bit width (e.g. token_count >= 2^20).
[[nodiscard]] InstructionBytes encode(const NdpInstruction& inst);

/// Parse a 64-B wire instruction. Throws monde::Error on reserved opcodes.
[[nodiscard]] NdpInstruction decode(const InstructionBytes& bytes);

/// True if the flit carries an NDP instruction (the isNDP auxiliary flag the
/// CXL controller checks before forwarding to the NDP instruction buffer).
[[nodiscard]] bool is_ndp_flit(const InstructionBytes& bytes);

}  // namespace monde::interconnect
