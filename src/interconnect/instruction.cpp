#include "interconnect/instruction.hpp"

#include "common/error.hpp"

namespace monde::interconnect {
namespace {

/// Little-endian bit writer over a fixed 64-byte buffer.
class BitWriter {
 public:
  explicit BitWriter(InstructionBytes& buf) : buf_{buf} { buf_.fill(0); }

  void put(std::uint64_t value, int bits) {
    MONDE_REQUIRE(bits > 0 && bits <= 64, "bit width out of range");
    MONDE_REQUIRE(bits == 64 || value < (1ULL << bits),
                  "value " << value << " does not fit in " << bits << " bits");
    for (int i = 0; i < bits; ++i) {
      if ((value >> i) & 1ULL) {
        buf_[static_cast<std::size_t>(pos_ + i) / 8] |=
            static_cast<std::uint8_t>(1U << ((pos_ + i) % 8));
      }
    }
    pos_ += bits;
    MONDE_ASSERT(pos_ <= 512, "instruction encoding overflow");
  }

  [[nodiscard]] int position() const { return pos_; }

 private:
  InstructionBytes& buf_;
  int pos_ = 0;
};

/// Little-endian bit reader mirroring BitWriter.
class BitReader {
 public:
  explicit BitReader(const InstructionBytes& buf) : buf_{buf} {}

  std::uint64_t get(int bits) {
    MONDE_REQUIRE(bits > 0 && bits <= 64, "bit width out of range");
    std::uint64_t value = 0;
    for (int i = 0; i < bits; ++i) {
      const std::size_t bit = static_cast<std::size_t>(pos_ + i);
      if ((buf_[bit / 8] >> (bit % 8)) & 1U) value |= 1ULL << i;
    }
    pos_ += bits;
    MONDE_ASSERT(pos_ <= 512, "instruction decoding overflow");
    return value;
  }

  void skip(int bits) { pos_ += bits; }

 private:
  const InstructionBytes& buf_;
  int pos_ = 0;
};

// Field widths (bits). Sum: 4 + 6*64 + 124 = 512.
constexpr int kOpcodeBits = 4;
constexpr int kAddrBits = 64;
constexpr int kSizeBits = 64;
constexpr int kIsNdpBits = 1;
constexpr int kActFnBits = 2;
constexpr int kExpertBits = 16;
constexpr int kLayerBits = 16;
constexpr int kDeviceBits = 8;
constexpr int kTokenBits = 20;
constexpr int kSeqBits = 16;
constexpr int kReservedBits = 124 - (kIsNdpBits + kActFnBits + kExpertBits + kLayerBits +
                                     kDeviceBits + kTokenBits + kSeqBits);
static_assert(kReservedBits == 45, "auxiliary field layout must total 124 bits");

// The isNDP flag's absolute bit offset, needed by is_ndp_flit().
constexpr int kIsNdpBitOffset = kOpcodeBits + 6 * kAddrBits;  // = 388

bool opcode_valid(std::uint64_t raw) {
  switch (static_cast<Opcode>(raw)) {
    case Opcode::kNop:
    case Opcode::kGemm:
    case Opcode::kGemmRelu:
    case Opcode::kGemmGelu:
    case Opcode::kBarrier:
      return true;
    default:
      return false;
  }
}

}  // namespace

InstructionBytes encode(const NdpInstruction& inst) {
  MONDE_REQUIRE(opcode_valid(static_cast<std::uint64_t>(inst.opcode)),
                "cannot encode reserved opcode "
                    << static_cast<int>(inst.opcode));
  MONDE_REQUIRE(inst.token_count < (1U << kTokenBits),
                "token_count " << inst.token_count << " exceeds 20-bit field");
  InstructionBytes bytes;
  BitWriter w{bytes};
  w.put(static_cast<std::uint64_t>(inst.opcode), kOpcodeBits);
  w.put(inst.act_in.addr, kAddrBits);
  w.put(inst.act_in.size, kSizeBits);
  w.put(inst.weight.addr, kAddrBits);
  w.put(inst.weight.size, kSizeBits);
  w.put(inst.act_out.addr, kAddrBits);
  w.put(inst.act_out.size, kSizeBits);
  w.put(inst.is_ndp ? 1 : 0, kIsNdpBits);
  w.put(static_cast<std::uint64_t>(inst.act_fn), kActFnBits);
  w.put(inst.expert_id, kExpertBits);
  w.put(inst.layer_id, kLayerBits);
  w.put(inst.device_id, kDeviceBits);
  w.put(inst.token_count, kTokenBits);
  w.put(inst.kernel_seq, kSeqBits);
  w.put(0, kReservedBits);
  MONDE_ASSERT(w.position() == 512, "instruction must occupy exactly 512 bits");
  return bytes;
}

NdpInstruction decode(const InstructionBytes& bytes) {
  BitReader r{bytes};
  NdpInstruction inst;
  const std::uint64_t op = r.get(kOpcodeBits);
  MONDE_REQUIRE(opcode_valid(op), "reserved opcode " << op << " in instruction stream");
  inst.opcode = static_cast<Opcode>(op);
  inst.act_in.addr = r.get(kAddrBits);
  inst.act_in.size = r.get(kSizeBits);
  inst.weight.addr = r.get(kAddrBits);
  inst.weight.size = r.get(kSizeBits);
  inst.act_out.addr = r.get(kAddrBits);
  inst.act_out.size = r.get(kSizeBits);
  inst.is_ndp = r.get(kIsNdpBits) != 0;
  inst.act_fn = static_cast<ActFn>(r.get(kActFnBits));
  inst.expert_id = static_cast<std::uint16_t>(r.get(kExpertBits));
  inst.layer_id = static_cast<std::uint16_t>(r.get(kLayerBits));
  inst.device_id = static_cast<std::uint8_t>(r.get(kDeviceBits));
  inst.token_count = static_cast<std::uint32_t>(r.get(kTokenBits));
  inst.kernel_seq = static_cast<std::uint16_t>(r.get(kSeqBits));
  return inst;
}

bool is_ndp_flit(const InstructionBytes& bytes) {
  const std::size_t bit = kIsNdpBitOffset;
  return ((bytes[bit / 8] >> (bit % 8)) & 1U) != 0;
}

}  // namespace monde::interconnect
