// MoE expert-execution strategies (paper Sections 3.2-3.3, Figure 5).
//
// A Strategy schedules one routed MoE layer onto the platform's parallel
// hardware streams:
//
//   GPU        compute stream of the primary GPU
//   GPU-1      second GPU (multi-GPU expert parallelism only)
//   PCIe-G2M   GPU egress:  AMove input activations
//   PCIe-M2G   GPU ingress: PMove expert weights + AMove output activations
//   Host       driver work: NDP instruction issue, done-register polling
//   MoNDE-i    NDP compute stream of MoNDE device i
//   CPU        host CPU expert compute (CPU+AM baseline)
//
// matching the stream layout of Figure 5. The schedule is deterministic
// list scheduling (sim::StreamSchedule); the resulting Timeline doubles as
// the Figure 5 workflow trace.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compute/cpu.hpp"
#include "compute/gpu.hpp"
#include "compute/transformer.hpp"
#include "core/expert_cache.hpp"
#include "core/monde_device.hpp"
#include "core/system_config.hpp"
#include "moe/gating.hpp"
#include "moe/model_config.hpp"
#include "sim/timeline.hpp"

namespace monde::core {

/// Stream handles shared by the engine and strategies.
struct HwStreams {
  sim::StreamId gpu;
  sim::StreamId gpu2;      ///< only meaningful when the config has 2+ GPUs
  sim::StreamId pcie_g2m;
  sim::StreamId pcie_m2g;
  sim::StreamId host;
  sim::StreamId cpu;
  std::vector<sim::StreamId> ndp;  ///< one per MoNDE device

  /// Registers all streams on `sched` according to `sys`.
  [[nodiscard]] static HwStreams create(sim::StreamSchedule& sched, const SystemConfig& sys);
};

/// Shared, non-owning view of the platform models a strategy prices against.
struct StrategyContext {
  const SystemConfig* sys = nullptr;
  const moe::MoeModelConfig* model = nullptr;
  const compute::GpuModel* gpu = nullptr;
  const compute::CpuModel* cpu = nullptr;
  const compute::TransformerCostModel* xformer = nullptr;
  std::vector<MondeDevice*> devices;

  [[nodiscard]] compute::DataType dtype() const { return model->dtype; }
  [[nodiscard]] compute::ExpertShape expert_shape(std::int64_t tokens) const {
    return {tokens, model->dmodel, model->dff};
  }
  /// Activation bytes for `routed` token-slots, one direction.
  [[nodiscard]] Bytes activation_bytes(std::uint64_t routed) const {
    return Bytes{routed * static_cast<std::uint64_t>(model->dmodel) *
                 static_cast<std::uint64_t>(compute::bytes_per_element(model->dtype))};
  }
  void validate() const;
};

/// Accounting for one scheduled MoE layer.
struct MoeLayerResult {
  Duration start = Duration::zero();
  Duration end = Duration::zero();
  Duration gating = Duration::zero();
  Duration combine = Duration::zero();
  std::int64_t experts_gpu = 0;
  std::int64_t experts_ndp = 0;
  std::int64_t experts_cpu = 0;
  Bytes pmove_bytes;
  Bytes amove_bytes;
  int h_value = -1;            ///< load-balanced strategy only
  std::int64_t cache_hits = 0; ///< PMove transfers skipped via the expert cache

  [[nodiscard]] Duration latency() const { return end - start; }
};

/// Available strategies (paper Section 4.2 configurations).
enum class StrategyKind {
  kIdealGpu,           ///< infinite GPU memory; experts compute in place
  kGpuPmove,           ///< GPU+PM: on-demand expert fetch over PCIe
  kMondeAmove,         ///< MD+AM: all experts on MoNDE NDP
  kMondeLoadBalanced,  ///< MD+LB: hot experts on GPU, cold on MoNDE
  kCpuAmove,           ///< CPU+AM: expert compute on the host CPU
  kMultiGpu,           ///< 2-GPU expert parallelism (Figure 10)
};

[[nodiscard]] std::string to_string(StrategyKind kind);

/// Base class: schedules routed MoE layers onto hardware streams.
class Strategy {
 public:
  explicit Strategy(StrategyContext ctx);
  virtual ~Strategy() = default;
  Strategy(const Strategy&) = delete;
  Strategy& operator=(const Strategy&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Schedule the layer starting no earlier than `ready` (attention output
  /// available in GPU memory). Returns accounting with absolute times.
  virtual MoeLayerResult run_layer(const moe::MoeLayerWork& work, sim::StreamSchedule& sched,
                                   const HwStreams& hw, Duration ready) = 0;

 protected:
  /// Gating network + dispatch on the GPU stream; returns its end time.
  Duration place_gating(const moe::MoeLayerWork& work, sim::StreamSchedule& sched,
                        const HwStreams& hw, Duration ready, MoeLayerResult& result) const;
  /// Combine (weighted gather) on the GPU stream.
  Duration place_combine(const moe::MoeLayerWork& work, sim::StreamSchedule& sched,
                         const HwStreams& hw, Duration ready, MoeLayerResult& result) const;

  /// PMove pipeline: fetch each expert over PCIe (M->G) and run it on the
  /// GPU as soon as its weights land; returns the last compute end time.
  /// `layer_id` keys the optional GPU expert cache (transfers are skipped
  /// for cache-resident experts).
  Duration place_pmove_pipeline(const std::vector<std::pair<std::size_t, std::uint64_t>>& experts,
                                int layer_id, sim::StreamSchedule& sched, const HwStreams& hw,
                                Duration ready, sim::StreamId gpu_stream,
                                MoeLayerResult& result);

  /// AMove + NDP batch: ship activations to each device, run its experts
  /// sequentially on the NDP, and retrieve outputs as kernels complete.
  /// `per_device[i]` lists (expert index, tokens) for device i.
  Duration place_ndp_batch(
      const std::vector<std::vector<std::pair<std::size_t, std::uint64_t>>>& per_device,
      sim::StreamSchedule& sched, const HwStreams& hw, Duration ready,
      MoeLayerResult& result) const;

  /// Distribute experts (already sorted by descending load) round-robin
  /// across the configured MoNDE devices (paper Section 3.3, multi-device).
  [[nodiscard]] std::vector<std::vector<std::pair<std::size_t, std::uint64_t>>>
  round_robin_devices(const std::vector<std::pair<std::size_t, std::uint64_t>>& experts) const;

 public:
  /// The GPU expert cache, when SystemConfig::gpu_expert_cache_bytes > 0
  /// (PMove-side strategies only); nullptr otherwise.
  [[nodiscard]] const ExpertCache* expert_cache() const { return expert_cache_.get(); }

 protected:
  StrategyContext ctx_;
  std::unique_ptr<ExpertCache> expert_cache_;
};

/// Factory covering every StrategyKind.
[[nodiscard]] std::unique_ptr<Strategy> make_strategy(StrategyKind kind, StrategyContext ctx);

}  // namespace monde::core
