#include "core/monde_device.hpp"

#include "common/error.hpp"

namespace monde::core {

MondeDevice::MondeDevice(int device_id, std::shared_ptr<ndp::NdpCoreSim> sim)
    : id_{device_id}, sim_{std::move(sim)}, allocator_{sim_->mem_spec()} {
  MONDE_REQUIRE(sim_ != nullptr, "MondeDevice needs an NDP simulator");
}

void MondeDevice::place_expert(ExpertId eid, Bytes bytes) {
  MONDE_REQUIRE(!experts_.count(eid),
                "expert (layer " << eid.layer << ", expert " << eid.expert
                                 << ") already placed");
  const std::string tag =
      "expert L" + std::to_string(eid.layer) + "/E" + std::to_string(eid.expert);
  experts_.emplace(eid, allocator_.allocate(ndp::Partition::kWeights, bytes, tag));
}

void MondeDevice::place_model(const moe::MoeModelConfig& model, int num_devices) {
  MONDE_REQUIRE(num_devices >= 1, "need at least one device");
  const Bytes per_expert = model.expert_bytes();
  for (int layer = 0; layer < model.total_moe_layers(); ++layer) {
    for (int e = 0; e < model.num_experts; ++e) {
      if (e % num_devices == id_ % num_devices) {
        place_expert({layer, e}, per_expert);
      }
    }
  }
}

const DeviceBuffer& MondeDevice::expert_buffer(ExpertId eid) const {
  const auto it = experts_.find(eid);
  MONDE_REQUIRE(it != experts_.end(), "expert (layer " << eid.layer << ", expert "
                                                       << eid.expert << ") not resident");
  return it->second;
}

ndp::NdpKernelResult MondeDevice::expert_latency(const compute::ExpertShape& shape,
                                                 compute::DataType dt) const {
  return sim_->simulate_expert(shape, dt);
}

std::vector<interconnect::NdpInstruction> MondeDevice::compile_expert_op(
    ExpertId eid, std::uint32_t tokens, const moe::MoeModelConfig& model) {
  MONDE_REQUIRE(tokens > 0, "expert op needs tokens");
  const DeviceBuffer& wbuf = expert_buffer(eid);
  const auto elem =
      static_cast<std::uint64_t>(compute::bytes_per_element(model.dtype));
  const std::uint64_t act_in_bytes = tokens * static_cast<std::uint64_t>(model.dmodel) * elem;
  const std::uint64_t hidden_bytes = tokens * static_cast<std::uint64_t>(model.dff) * elem;

  // Activation staging: input, hidden (between the linears), output.
  DeviceBuffer in_buf =
      allocator_.allocate(ndp::Partition::kActivations, Bytes{act_in_bytes}, "act-in");
  DeviceBuffer hid_buf =
      allocator_.allocate(ndp::Partition::kActivations, Bytes{hidden_bytes}, "act-hidden");
  DeviceBuffer out_buf =
      allocator_.allocate(ndp::Partition::kActivations, Bytes{act_in_bytes}, "act-out");

  const std::uint64_t w1_bytes = wbuf.bytes.count() / 2;  // [dmodel x dff]
  const std::uint64_t w2_addr = allocator_.address_of(
      wbuf, wbuf.block_count / 2);  // second linear starts at the midpoint

  interconnect::NdpInstruction l1;
  l1.opcode = interconnect::Opcode::kGemmRelu;
  l1.act_fn = interconnect::ActFn::kRelu;
  l1.act_in = {in_buf.base_address, act_in_bytes};
  l1.weight = {wbuf.base_address, w1_bytes};
  l1.act_out = {hid_buf.base_address, hidden_bytes};
  l1.expert_id = static_cast<std::uint16_t>(eid.expert);
  l1.layer_id = static_cast<std::uint16_t>(eid.layer);
  l1.device_id = static_cast<std::uint8_t>(id_);
  l1.token_count = tokens;
  l1.kernel_seq = next_kernel_seq_++;

  interconnect::NdpInstruction l2;
  l2.opcode = interconnect::Opcode::kGemm;
  l2.act_fn = interconnect::ActFn::kNone;
  l2.act_in = {hid_buf.base_address, hidden_bytes};
  l2.weight = {w2_addr, wbuf.bytes.count() - w1_bytes};
  l2.act_out = {out_buf.base_address, act_in_bytes};
  l2.expert_id = static_cast<std::uint16_t>(eid.expert);
  l2.layer_id = static_cast<std::uint16_t>(eid.layer);
  l2.device_id = static_cast<std::uint8_t>(id_);
  l2.token_count = tokens;
  l2.kernel_seq = next_kernel_seq_++;

  return {l1, l2};
}

}  // namespace monde::core
