#include "core/system_config.hpp"

#include "common/error.hpp"

namespace monde::core {

void SystemConfig::validate() const {
  monde_mem.validate();
  MONDE_REQUIRE(num_monde_devices >= 0 && num_monde_devices <= 64,
                "unreasonable MoNDE device count");
  MONDE_REQUIRE(num_gpus >= 1 && num_gpus <= 16, "unreasonable GPU count");
  MONDE_REQUIRE(pcie.raw_bandwidth.as_gbps() > 0.0, "PCIe bandwidth must be positive");
  MONDE_REQUIRE(cxl.raw_bandwidth.as_gbps() > 0.0, "CXL bandwidth must be positive");
  MONDE_REQUIRE(done_poll >= Duration::zero(), "done_poll must be non-negative");
}

}  // namespace monde::core
