#include "core/expert_cache.hpp"

#include "common/error.hpp"

namespace monde::core {

ExpertCache::ExpertCache(std::size_t capacity) : capacity_{capacity} {}

bool ExpertCache::access(ExpertId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return true;
}

void ExpertCache::insert(ExpertId id) {
  if (capacity_ == 0) return;
  const auto it = index_.find(id);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (index_.size() >= capacity_) {
    MONDE_ASSERT(!lru_.empty(), "cache index/list inconsistency");
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(id);
  index_.emplace(id, lru_.begin());
}

void ExpertCache::clear() {
  lru_.clear();
  index_.clear();
}

}  // namespace monde::core
