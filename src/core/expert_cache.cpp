#include "core/expert_cache.hpp"

#include "common/error.hpp"

namespace monde::core {

ExpertCache::ExpertCache(std::size_t capacity) : capacity_{capacity} {}

bool ExpertCache::access(ExpertId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return true;
}

void ExpertCache::insert(ExpertId id) {
  if (capacity_ == 0) return;
  const auto it = index_.find(id);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (index_.size() >= capacity_) {
    MONDE_ASSERT(!lru_.empty(), "cache index/list inconsistency");
    signature_remove(lru_.back());
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(id);
  index_.emplace(id, lru_.begin());
  signature_add(id);
}

void ExpertCache::signature_add(ExpertId id) {
  const int bit = moe::expert_signature_bit(id.layer, id.expert);
  if (bit_counts_[bit]++ == 0) signature_ |= std::uint64_t{1} << bit;
}

void ExpertCache::signature_remove(ExpertId id) {
  const int bit = moe::expert_signature_bit(id.layer, id.expert);
  MONDE_ASSERT(bit_counts_[bit] > 0, "signature bit count underflow");
  if (--bit_counts_[bit] == 0) signature_ &= ~(std::uint64_t{1} << bit);
}

void ExpertCache::erase(ExpertId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  signature_remove(id);
  lru_.erase(it->second);
  index_.erase(it);
}

void ExpertCache::stats_reset() {
  hits_ = 0;
  misses_ = 0;
}

void ExpertCache::clear() {
  lru_.clear();
  index_.clear();
  signature_ = 0;
  for (auto& c : bit_counts_) c = 0;
}

}  // namespace monde::core
