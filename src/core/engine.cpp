#include "core/engine.hpp"

#include "common/error.hpp"

namespace monde::core {

InferenceEngine::InferenceEngine(SystemConfig sys, moe::MoeModelConfig model,
                                 moe::SkewProfile profile, StrategyKind kind,
                                 std::uint64_t seed,
                                 std::shared_ptr<ndp::NdpCoreSim> shared_sim)
    : sys_{std::move(sys)},
      model_{std::move(model)},
      gpu_{sys_.gpu},
      cpu_{sys_.cpu},
      xformer_{gpu_, model_.dtype},
      // Callers benchmarking several strategies on the same platform should
      // pass a shared simulator so expert-shape latencies memoize across
      // engines (the sim depends only on NdpSpec + DRAM spec).
      ndp_sim_{shared_sim ? std::move(shared_sim)
                          : std::make_shared<ndp::NdpCoreSim>(sys_.ndp, sys_.monde_mem)},
      workload_{model_, profile, seed} {
  sys_.validate();
  model_.validate();
  MONDE_REQUIRE(model_.moe_every > 0, "InferenceEngine needs an MoE model");

  // Instantiate MoNDE devices and make the expert working set resident,
  // sharded round-robin across devices (Section 3.3).
  for (int d = 0; d < sys_.num_monde_devices; ++d) {
    devices_.push_back(std::make_unique<MondeDevice>(d, ndp_sim_));
    devices_.back()->place_model(model_, sys_.num_monde_devices);
  }
  strategy_ = make_strategy(kind, make_context());
}

StrategyContext InferenceEngine::make_context() {
  StrategyContext ctx;
  ctx.sys = &sys_;
  ctx.model = &model_;
  ctx.gpu = &gpu_;
  ctx.cpu = &cpu_;
  ctx.xformer = &xformer_;
  for (auto& d : devices_) ctx.devices.push_back(d.get());
  return ctx;
}

RunReport InferenceEngine::run_encoder(std::int64_t batch, std::int64_t seq_len) {
  MONDE_REQUIRE(batch > 0 && seq_len > 0, "encoder run needs tokens");
  sim::StreamSchedule sched;
  const HwStreams hw = HwStreams::create(sched, sys_);
  moe::EncoderPass pass = workload_.encoder_pass(batch, seq_len);

  RunReport report;
  report.strategy = strategy_->name();
  report.phase = "encoder";
  report.tokens = static_cast<std::uint64_t>(batch * seq_len);

  Duration t = Duration::zero();
  std::size_t moe_idx = 0;
  for (int block = 0; block < model_.encoder_blocks; ++block) {
    const bool is_moe = model_.is_moe_block(block);
    const auto cost =
        xformer_.encoder_block(batch, seq_len, model_.dmodel, model_.dff, !is_moe);
    const Duration block_time = cost.total() + sys_.framework_block_overhead;
    const auto iv = sched.place(hw.gpu, t, block_time,
                                "enc block " + std::to_string(block), "block");
    report.non_moe += block_time;
    t = iv.end;
    if (is_moe) {
      MONDE_ASSERT(moe_idx < pass.moe_layers.size(), "MoE layer/work mismatch");
      const MoeLayerResult res = strategy_->run_layer(pass.moe_layers[moe_idx], sched, hw, t);
      report.moe += res.latency();
      report.layers.push_back(res);
      t = res.end;
      ++moe_idx;
    }
  }
  MONDE_ASSERT(moe_idx == pass.moe_layers.size(), "unused MoE layer work");
  report.total = t;
  report.timeline = sched.timeline();
  report.stream_names = sched.stream_names();
  return report;
}

RunReport InferenceEngine::run_decoder(std::int64_t batch, std::int64_t steps,
                                       std::int64_t cross_len) {
  MONDE_REQUIRE(batch > 0 && steps > 0, "decoder run needs tokens");
  sim::StreamSchedule sched;
  const HwStreams hw = HwStreams::create(sched, sys_);
  const auto step_works = workload_.decoder_steps(batch, steps);

  RunReport report;
  report.strategy = strategy_->name();
  report.phase = "decoder";
  report.tokens = static_cast<std::uint64_t>(batch * steps);

  Duration t = Duration::zero();
  for (std::int64_t s = 0; s < steps; ++s) {
    std::size_t moe_idx = 0;
    for (int block = 0; block < model_.decoder_blocks; ++block) {
      const bool is_moe = model_.is_moe_block(block);
      const auto cost = xformer_.decoder_block(batch, s + 1, cross_len, model_.dmodel,
                                               model_.dff, !is_moe);
      const Duration block_time = cost.total() + sys_.framework_block_overhead;
      const auto iv = sched.place(
          hw.gpu, t, block_time,
          "dec s" + std::to_string(s) + " block " + std::to_string(block), "block");
      report.non_moe += block_time;
      t = iv.end;
      if (is_moe) {
        const MoeLayerResult res =
            strategy_->run_layer(step_works[static_cast<std::size_t>(s)].moe_layers[moe_idx],
                                 sched, hw, t);
        report.moe += res.latency();
        report.layers.push_back(res);
        t = res.end;
        ++moe_idx;
      }
    }
    // LM head projection over the vocabulary plus host-side step overhead
    // (sampling, KV-cache bookkeeping).
    const Duration lm =
        gpu_.gemm_time({batch, model_.vocab_size, model_.dmodel}, model_.dtype);
    const auto head = sched.place(hw.gpu, t, lm + sys_.framework_step_overhead,
                                  "lm head s" + std::to_string(s), "block");
    report.non_moe += lm + sys_.framework_step_overhead;
    t = head.end;
  }
  report.total = t;
  report.timeline = sched.timeline();
  report.stream_names = sched.stream_names();
  return report;
}

}  // namespace monde::core
