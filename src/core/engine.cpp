#include "core/engine.hpp"

#include <map>
#include <utility>

#include "common/error.hpp"

namespace monde::core {

InferenceEngine::InferenceEngine(SystemConfig sys, moe::MoeModelConfig model,
                                 moe::SkewProfile profile, StrategyKind kind,
                                 std::uint64_t seed,
                                 std::shared_ptr<ndp::NdpCoreSim> shared_sim)
    : sys_{std::move(sys)},
      model_{std::move(model)},
      gpu_{sys_.gpu},
      cpu_{sys_.cpu},
      xformer_{gpu_, model_.dtype},
      // Callers benchmarking several strategies on the same platform should
      // pass a shared simulator so expert-shape latencies memoize across
      // engines (the sim depends only on NdpSpec + DRAM spec).
      ndp_sim_{shared_sim ? std::move(shared_sim)
                          : std::make_shared<ndp::NdpCoreSim>(sys_.ndp, sys_.monde_mem)},
      workload_{model_, profile, seed} {
  sys_.validate();
  model_.validate();
  MONDE_REQUIRE(model_.moe_every > 0, "InferenceEngine needs an MoE model");

  // Instantiate MoNDE devices and make the expert working set resident,
  // sharded round-robin across devices (Section 3.3).
  for (int d = 0; d < sys_.num_monde_devices; ++d) {
    devices_.push_back(std::make_unique<MondeDevice>(d, ndp_sim_));
    devices_.back()->place_model(model_, sys_.num_monde_devices);
  }
  strategy_ = make_strategy(kind, make_context());
}

StrategyContext InferenceEngine::make_context() {
  StrategyContext ctx;
  ctx.sys = &sys_;
  ctx.model = &model_;
  ctx.gpu = &gpu_;
  ctx.cpu = &cpu_;
  ctx.xformer = &xformer_;
  for (auto& d : devices_) ctx.devices.push_back(d.get());
  return ctx;
}

EngineState InferenceEngine::make_state() const {
  EngineState st;
  st.hw = HwStreams::create(st.sched, sys_);
  return st;
}

StepResult InferenceEngine::prefill(EngineState& st, std::int64_t batch,
                                    std::int64_t seq_len) {
  MONDE_REQUIRE(batch > 0 && seq_len > 0, "prefill needs tokens");
  moe::EncoderPass pass = workload_.encoder_pass(batch, seq_len);

  StepResult res;
  res.start = st.now;
  res.tokens = static_cast<std::uint64_t>(batch * seq_len);

  Duration t = st.now;
  std::size_t moe_idx = 0;
  for (int block = 0; block < model_.encoder_blocks; ++block) {
    const bool is_moe = model_.is_moe_block(block);
    const auto cost =
        xformer_.encoder_block(batch, seq_len, model_.dmodel, model_.dff, !is_moe);
    const Duration block_time = cost.total() + sys_.framework_block_overhead;
    const auto iv = st.sched.place(st.hw.gpu, t, block_time,
                                   "enc block " + std::to_string(block), "block");
    st.non_moe += block_time;
    t = iv.end;
    if (is_moe) {
      MONDE_ASSERT(moe_idx < pass.moe_layers.size(), "MoE layer/work mismatch");
      const MoeLayerResult lr =
          strategy_->run_layer(pass.moe_layers[moe_idx], st.sched, st.hw, t);
      st.moe += lr.latency();
      st.layers.push_back(lr);
      t = lr.end;
      ++moe_idx;
    }
  }
  MONDE_ASSERT(moe_idx == pass.moe_layers.size(), "unused MoE layer work");
  st.now = t;
  st.tokens += res.tokens;
  res.end = t;
  return res;
}

StepResult InferenceEngine::decode_step(EngineState& st, const std::vector<DecodeSlot>& slots,
                                        const std::vector<moe::MoeLayerWork>& works) {
  MONDE_REQUIRE(!slots.empty(), "decode step needs at least one active request");
  MONDE_REQUIRE(works.size() == static_cast<std::size_t>(model_.decoder_moe_layers()),
                "decode step needs one routed work per decoder MoE layer: got "
                    << works.size() << ", want " << model_.decoder_moe_layers());
  const std::int64_t batch = static_cast<std::int64_t>(slots.size());

  // Attention cost depends on each request's KV depth and encoder context;
  // group slots by (past_len, cross_len) so a uniform batch prices as one
  // batched block while a mixed continuous batch sums its depth groups.
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> depth_groups;
  for (const DecodeSlot& slot : slots) {
    MONDE_REQUIRE(slot.step >= 0, "decode slot depth must be >= 0, got " << slot.step);
    ++depth_groups[{slot.step + 1, slot.cross_len}];
  }

  StepResult res;
  res.start = st.now;
  res.tokens = static_cast<std::uint64_t>(batch);
  const std::string step_tag = "dec s" + std::to_string(st.decode_steps);

  Duration t = st.now;
  std::size_t moe_idx = 0;
  for (int block = 0; block < model_.decoder_blocks; ++block) {
    const bool is_moe = model_.is_moe_block(block);
    Duration block_time = sys_.framework_block_overhead;
    for (const auto& [depth, count] : depth_groups) {
      block_time += xformer_
                        .decoder_block(count, depth.first, depth.second, model_.dmodel,
                                       model_.dff, !is_moe)
                        .total();
    }
    const auto iv = st.sched.place(st.hw.gpu, t, block_time,
                                   step_tag + " block " + std::to_string(block), "block");
    st.non_moe += block_time;
    t = iv.end;
    if (is_moe) {
      const MoeLayerResult lr = strategy_->run_layer(works[moe_idx], st.sched, st.hw, t);
      st.moe += lr.latency();
      st.layers.push_back(lr);
      t = lr.end;
      ++moe_idx;
    }
  }
  // LM head projection over the vocabulary plus host-side step overhead
  // (sampling, KV-cache bookkeeping).
  const Duration lm = gpu_.gemm_time({batch, model_.vocab_size, model_.dmodel}, model_.dtype);
  const auto head = st.sched.place(st.hw.gpu, t, lm + sys_.framework_step_overhead,
                                   "lm head " + step_tag, "block");
  st.non_moe += lm + sys_.framework_step_overhead;
  st.now = head.end;
  st.tokens += res.tokens;
  ++st.decode_steps;
  res.end = head.end;
  return res;
}

StepResult InferenceEngine::decode_step(EngineState& st, const std::vector<DecodeSlot>& slots) {
  MONDE_REQUIRE(!slots.empty(), "decode step needs at least one active request");
  std::vector<std::vector<moe::MoeLayerWork>> draws;
  draws.reserve(slots.size());
  for (const DecodeSlot& slot : slots) {
    draws.push_back(workload_.decoder_step_for(slot.request_id, slot.step));
  }
  return decode_step(st, slots, moe::WorkloadGenerator::merge_layer_works(draws));
}

RunReport InferenceEngine::finish(EngineState&& st, std::string phase) const {
  RunReport report;
  report.strategy = strategy_->name();
  report.phase = std::move(phase);
  report.total = st.now;
  report.non_moe = st.non_moe;
  report.moe = st.moe;
  report.tokens = st.tokens;
  report.layers = std::move(st.layers);
  report.timeline = std::move(st.sched.timeline());
  report.stream_names = st.sched.stream_names();
  return report;
}

RunReport InferenceEngine::run_encoder(std::int64_t batch, std::int64_t seq_len) {
  MONDE_REQUIRE(batch > 0 && seq_len > 0, "encoder run needs tokens");
  EngineState st = make_state();
  prefill(st, batch, seq_len);
  return finish(std::move(st), "encoder");
}

RunReport InferenceEngine::run_decoder(std::int64_t batch, std::int64_t steps,
                                       std::int64_t cross_len) {
  MONDE_REQUIRE(batch > 0 && steps > 0, "decoder run needs tokens");
  EngineState st = make_state();
  const auto step_works = workload_.decoder_steps(batch, steps);

  std::vector<DecodeSlot> slots(static_cast<std::size_t>(batch));
  for (std::size_t b = 0; b < slots.size(); ++b) {
    slots[b].request_id = b;
    slots[b].cross_len = cross_len;
  }
  for (std::int64_t s = 0; s < steps; ++s) {
    for (DecodeSlot& slot : slots) slot.step = s;
    decode_step(st, slots, step_works[static_cast<std::size_t>(s)].moe_layers);
  }
  return finish(std::move(st), "decoder");
}

}  // namespace monde::core
