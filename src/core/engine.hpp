// End-to-end MoE transformer inference engine.
//
// Assembles the platform (GPU/CPU models, MoNDE devices, links), generates
// routed workloads, and simulates full encoder passes and autoregressive
// decoder runs under a chosen expert-execution strategy. Produces latency /
// throughput reports plus the full hardware-stream timeline (Figure 5).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compute/cpu.hpp"
#include "compute/gpu.hpp"
#include "compute/transformer.hpp"
#include "core/monde_device.hpp"
#include "core/strategy.hpp"
#include "core/system_config.hpp"
#include "moe/workload.hpp"

namespace monde::core {

/// Result of one simulated run (an encoder pass or a decoder generation).
struct RunReport {
  std::string strategy;
  std::string phase;  ///< "encoder" or "decoder"
  Duration total = Duration::zero();
  Duration non_moe = Duration::zero();  ///< attention, dense FFN, norms
  Duration moe = Duration::zero();      ///< gating -> combine, per layer sum
  std::uint64_t tokens = 0;             ///< tokens produced/processed
  std::vector<MoeLayerResult> layers;
  sim::Timeline timeline;
  std::vector<std::string> stream_names;

  [[nodiscard]] double throughput_tokens_per_s() const {
    return total > Duration::zero() ? static_cast<double>(tokens) / total.sec() : 0.0;
  }
};

/// Owns the simulated platform and runs inference under one strategy.
class InferenceEngine {
 public:
  InferenceEngine(SystemConfig sys, moe::MoeModelConfig model, moe::SkewProfile profile,
                  StrategyKind kind, std::uint64_t seed = 42,
                  std::shared_ptr<ndp::NdpCoreSim> shared_sim = nullptr);

  /// One encoder pass over `batch` sequences of `seq_len` tokens.
  RunReport run_encoder(std::int64_t batch, std::int64_t seq_len);

  /// `steps` autoregressive decoder steps for `batch` sequences, with
  /// cross-attention over `cross_len` encoder positions.
  RunReport run_decoder(std::int64_t batch, std::int64_t steps, std::int64_t cross_len = 512);

  [[nodiscard]] Strategy& strategy() { return *strategy_; }
  [[nodiscard]] const SystemConfig& system() const { return sys_; }
  [[nodiscard]] const moe::MoeModelConfig& model() const { return model_; }
  [[nodiscard]] const std::vector<std::unique_ptr<MondeDevice>>& devices() const {
    return devices_;
  }

 private:
  [[nodiscard]] StrategyContext make_context();

  SystemConfig sys_;
  moe::MoeModelConfig model_;
  compute::GpuModel gpu_;
  compute::CpuModel cpu_;
  compute::TransformerCostModel xformer_;
  std::shared_ptr<ndp::NdpCoreSim> ndp_sim_;
  std::vector<std::unique_ptr<MondeDevice>> devices_;
  std::unique_ptr<Strategy> strategy_;
  moe::WorkloadGenerator workload_;
};

}  // namespace monde::core
