// End-to-end MoE transformer inference engine.
//
// Assembles the platform (GPU/CPU models, MoNDE devices, links), generates
// routed workloads, and simulates inference under a chosen expert-execution
// strategy. Execution is built from two step primitives -- prefill() (one
// encoder pass) and decode_step() (one autoregressive step over a batch of
// requests at arbitrary decode depths) -- threaded through an explicit
// EngineState. The classic run_encoder / run_decoder entry points are thin
// wrappers over the primitives; the serving layer (src/serve) drives the
// primitives directly to interleave requests (continuous batching).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compute/cpu.hpp"
#include "compute/gpu.hpp"
#include "compute/transformer.hpp"
#include "core/monde_device.hpp"
#include "core/strategy.hpp"
#include "core/system_config.hpp"
#include "moe/workload.hpp"

namespace monde::core {

/// Result of one simulated run (an encoder pass or a decoder generation).
struct RunReport {
  std::string strategy;
  std::string phase;  ///< "encoder" or "decoder"
  Duration total = Duration::zero();
  Duration non_moe = Duration::zero();  ///< attention, dense FFN, norms
  Duration moe = Duration::zero();      ///< gating -> combine, per layer sum
  std::uint64_t tokens = 0;             ///< tokens produced/processed
  std::vector<MoeLayerResult> layers;
  sim::Timeline timeline;
  std::vector<std::string> stream_names;

  [[nodiscard]] double throughput_tokens_per_s() const {
    return total > Duration::zero() ? static_cast<double>(tokens) / total.sec() : 0.0;
  }
};

/// Explicit, resumable execution state threaded through the step primitives.
/// One state owns one shared hardware schedule; every prefill()/decode_step()
/// call appends to it and advances the `now` cursor. A state outlives many
/// steps, which is what lets requests at different decode depths share a
/// schedule (continuous batching).
struct EngineState {
  sim::StreamSchedule sched;
  HwStreams hw;
  Duration now = Duration::zero();      ///< GPU-stream cursor: end of last step
  Duration non_moe = Duration::zero();  ///< accumulated non-expert time
  Duration moe = Duration::zero();      ///< accumulated MoE layer time
  std::uint64_t tokens = 0;             ///< tokens processed/produced so far
  std::int64_t decode_steps = 0;        ///< decode_step() calls so far (labels)
  std::vector<MoeLayerResult> layers;   ///< every scheduled MoE layer, in order
};

/// One request's view of a decode step: its identity, decode depth, and the
/// encoder context it cross-attends over. Requests in the same step may sit
/// at different depths.
struct DecodeSlot {
  std::uint64_t request_id = 0;
  std::int64_t step = 0;       ///< 0-based decode depth: tokens already generated
  std::int64_t cross_len = 0;  ///< encoder positions for cross-attention
};

/// Span of one step primitive on the shared schedule.
struct StepResult {
  Duration start = Duration::zero();
  Duration end = Duration::zero();
  std::uint64_t tokens = 0;  ///< tokens this step processed (prefill) or produced (decode)

  [[nodiscard]] Duration latency() const { return end - start; }
};

/// Owns the simulated platform and runs inference under one strategy.
class InferenceEngine {
 public:
  InferenceEngine(SystemConfig sys, moe::MoeModelConfig model, moe::SkewProfile profile,
                  StrategyKind kind, std::uint64_t seed = 42,
                  std::shared_ptr<ndp::NdpCoreSim> shared_sim = nullptr);

  // --- Step primitives -----------------------------------------------------

  /// A fresh state with this platform's hardware streams registered.
  [[nodiscard]] EngineState make_state() const;

  /// One encoder pass (prefill) over `batch` sequences of `seq_len` tokens,
  /// starting no earlier than `st.now`. Routing is drawn from the workload
  /// generator's encoder stream.
  StepResult prefill(EngineState& st, std::int64_t batch, std::int64_t seq_len);

  /// One autoregressive decoder step over `slots` (one new token per slot),
  /// executing `works` -- one routed MoeLayerWork per decoder MoE layer,
  /// typically the per-request draws merged across the batch. Slots may sit
  /// at different decode depths; attention is priced per depth group while
  /// dense GEMMs and the LM head batch across the whole step.
  StepResult decode_step(EngineState& st, const std::vector<DecodeSlot>& slots,
                         const std::vector<moe::MoeLayerWork>& works);

  /// Convenience overload: draws each slot's routing from the per-request
  /// workload stream and merges across the batch.
  StepResult decode_step(EngineState& st, const std::vector<DecodeSlot>& slots);

  /// Package an exhausted state into a RunReport.
  [[nodiscard]] RunReport finish(EngineState&& st, std::string phase) const;

  // --- Classic whole-run entry points (wrappers over the primitives) -------

  /// One encoder pass over `batch` sequences of `seq_len` tokens.
  RunReport run_encoder(std::int64_t batch, std::int64_t seq_len);

  /// `steps` autoregressive decoder steps for `batch` sequences, with
  /// cross-attention over `cross_len` encoder positions.
  RunReport run_decoder(std::int64_t batch, std::int64_t steps, std::int64_t cross_len = 512);

  [[nodiscard]] Strategy& strategy() { return *strategy_; }
  [[nodiscard]] const SystemConfig& system() const { return sys_; }
  [[nodiscard]] const moe::MoeModelConfig& model() const { return model_; }
  [[nodiscard]] moe::WorkloadGenerator& workload() { return workload_; }
  [[nodiscard]] const std::vector<std::unique_ptr<MondeDevice>>& devices() const {
    return devices_;
  }

 private:
  [[nodiscard]] StrategyContext make_context();

  SystemConfig sys_;
  moe::MoeModelConfig model_;
  compute::GpuModel gpu_;
  compute::CpuModel cpu_;
  compute::TransformerCostModel xformer_;
  std::shared_ptr<ndp::NdpCoreSim> ndp_sim_;
  std::vector<std::unique_ptr<MondeDevice>> devices_;
  std::unique_ptr<Strategy> strategy_;
  moe::WorkloadGenerator workload_;
};

}  // namespace monde::core
