// Full-system hardware configuration (paper Table 2, bottom half).
#pragma once

#include "compute/cpu.hpp"
#include "compute/gpu.hpp"
#include "dram/spec.hpp"
#include "interconnect/link.hpp"
#include "ndp/ndp_spec.hpp"

namespace monde::core {

/// Everything the runtime needs to know about the platform.
struct SystemConfig {
  compute::GpuSpec gpu = compute::GpuSpec::a100_pcie_40gb();
  compute::CpuSpec cpu = compute::CpuSpec::xeon_silver_4310();
  /// The GPU's PCIe link; PMove rides M->G, AMove input rides G->M.
  interconnect::LinkSpec pcie = interconnect::LinkSpec::pcie_gen4_x16();
  /// CXL.mem path used for NDP instructions and MMIO (doorbell/done).
  interconnect::LinkSpec cxl = interconnect::LinkSpec::cxl_mem_gen4_x16();
  ndp::NdpSpec ndp = ndp::NdpSpec::monde_dac24();
  dram::Spec monde_mem = dram::Spec::monde_lpddr5x_8533();
  int num_monde_devices = 1;
  int num_gpus = 1;

  /// Host-side latency from the NDP done-register being raised to the host
  /// observing it (MMIO poll interval).
  Duration done_poll = Duration::micros(1.0);
  /// Host framework cost per expert offloaded to an NDP/CPU backend: input
  /// slicing, driver ioctl, completion arming. Serializes on the host
  /// thread but is small enough to hide behind device execution.
  Duration offload_dispatch_overhead = Duration::micros(25.0);
  /// Device-side cost per offloaded expert kernel pair, paid on that
  /// device's NDP stream: activation staging into the odd banks,
  /// instruction fetch/decode, skew-unit fill/drain, output drain, and the
  /// done-register handshake. Because it sits on the device, it scales down
  /// with more MoNDE devices (Figure 9), unlike host dispatch. The value is
  /// calibrated against the paper's Figure 6 magnitudes, whose measured
  /// workflow retains per-expert overheads around this scale.
  Duration ndp_expert_overhead = Duration::micros(110.0);
  /// Host framework cost per GPU-resident expert launch (Ideal / PMove /
  /// multi-GPU paths): the HuggingFace MoE implementation loops over
  /// activated experts in Python regardless of where weights live, so even
  /// the Ideal baseline pays this per expert.
  Duration gpu_expert_dispatch = Duration::micros(100.0);
  /// Spare GPU memory dedicated to an LRU cache of fetched experts
  /// (extension beyond the paper; 0 = the paper's fetch-and-evict PMove).
  /// Cached experts skip the PCIe transfer on re-activation.
  Bytes gpu_expert_cache_bytes = Bytes{0};
  /// Host framework (PyTorch-level) dispatch overhead per transformer block.
  /// The paper's profiled latencies include this; it dominates decoder steps.
  Duration framework_block_overhead = Duration::micros(150.0);
  /// Per-decoder-step overhead: sampling, KV-cache bookkeeping, host sync.
  Duration framework_step_overhead = Duration::millis(1.5);

  /// Aggregate MoNDE memory bandwidth across devices (Equation 6's BW_MD).
  [[nodiscard]] Bandwidth monde_aggregate_bandwidth() const {
    return monde_mem.total_peak_bandwidth() * static_cast<double>(num_monde_devices);
  }

  /// The paper's evaluated platform: 1x A100 PCIe + PCIe Gen4 x16 + one
  /// MoNDE device (512 GB / ~512 GB/s, 64x 4x4 arrays @ 1 GHz).
  [[nodiscard]] static SystemConfig dac24() { return SystemConfig{}; }

  /// Figure 7(b): scale MoNDE memory bandwidth and rate-match NDP compute.
  [[nodiscard]] SystemConfig with_monde_bandwidth_scale(double factor) const {
    SystemConfig s = *this;
    s.monde_mem = monde_mem.with_bandwidth_scale(factor);
    s.ndp = ndp.rate_matched(factor);
    return s;
  }

  void validate() const;
};

}  // namespace monde::core
