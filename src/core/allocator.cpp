#include "core/allocator.hpp"

#include "common/error.hpp"

namespace monde::core {

DeviceAllocator::DeviceAllocator(const dram::Spec& spec)
    : spec_{spec},
      mapper_{spec_},
      weights_layout_{spec_, mapper_, ndp::Partition::kWeights},
      acts_layout_{spec_, mapper_, ndp::Partition::kActivations} {}

DeviceBuffer DeviceAllocator::allocate(ndp::Partition part, Bytes bytes,
                                       const std::string& tag) {
  MONDE_REQUIRE(bytes.count() > 0, "cannot allocate zero bytes for '" << tag << "'");
  const bool is_weights = part == ndp::Partition::kWeights;
  const ndp::PartitionLayout& layout = is_weights ? weights_layout_ : acts_layout_;
  std::uint64_t& cursor = is_weights ? weights_cursor_ : acts_cursor_;

  const std::uint64_t blocks = layout.blocks_for(bytes);
  MONDE_REQUIRE(cursor + blocks <= layout.block_count(),
                "device memory exhausted allocating '"
                    << tag << "': need " << bytes.str() << ", partition has "
                    << Bytes{(layout.block_count() - cursor) *
                             static_cast<std::uint64_t>(layout.access_bytes())}
                           .str()
                    << " free of " << layout.capacity().str());

  DeviceBuffer buf;
  buf.partition = part;
  buf.first_block = cursor;
  buf.block_count = blocks;
  buf.base_address = layout.block_address(cursor);
  buf.bytes = bytes;
  cursor += blocks;
  return buf;
}

void DeviceAllocator::reset_activations() { acts_cursor_ = 0; }

Bytes DeviceAllocator::weights_used() const {
  return Bytes{weights_cursor_ * static_cast<std::uint64_t>(weights_layout_.access_bytes())};
}

Bytes DeviceAllocator::activations_used() const {
  return Bytes{acts_cursor_ * static_cast<std::uint64_t>(acts_layout_.access_bytes())};
}

std::uint64_t DeviceAllocator::address_of(const DeviceBuffer& buf, std::uint64_t block) const {
  MONDE_REQUIRE(block < buf.block_count, "block offset beyond buffer");
  const ndp::PartitionLayout& layout =
      buf.partition == ndp::Partition::kWeights ? weights_layout_ : acts_layout_;
  return layout.block_address(buf.first_block + block);
}

}  // namespace monde::core
