#include <algorithm>

#include "common/error.hpp"
#include "core/load_balancer.hpp"
#include "core/strategy.hpp"

namespace monde::core {

namespace {

using ExpertList = std::vector<std::pair<std::size_t, std::uint64_t>>;

/// Activated experts of a layer in descending-load order.
ExpertList activated_by_load(const moe::MoeLayerWork& work) {
  ExpertList out;
  for (std::size_t e : work.experts_by_load()) {
    const std::uint64_t tok = work.tokens_per_expert[e];
    if (tok == 0) break;  // sorted descending; the rest are zero
    out.emplace_back(e, tok);
  }
  return out;
}

std::string expert_label(const char* what, std::size_t e, std::uint64_t tok) {
  return std::string{what} + " E" + std::to_string(e) + " (" + std::to_string(tok) + " tok)";
}

}  // namespace

HwStreams HwStreams::create(sim::StreamSchedule& sched, const SystemConfig& sys) {
  HwStreams hw;
  hw.gpu = sched.add_stream("GPU");
  hw.gpu2 = sys.num_gpus > 1 ? sched.add_stream("GPU-1") : hw.gpu;
  hw.pcie_g2m = sched.add_stream("PCIe-G2M");
  hw.pcie_m2g = sched.add_stream("PCIe-M2G");
  hw.host = sched.add_stream("Host");
  hw.cpu = sched.add_stream("CPU");
  for (int d = 0; d < sys.num_monde_devices; ++d) {
    hw.ndp.push_back(sched.add_stream("MoNDE-" + std::to_string(d)));
  }
  return hw;
}

void StrategyContext::validate() const {
  MONDE_REQUIRE(sys && model && gpu && cpu && xformer, "incomplete strategy context");
  MONDE_REQUIRE(devices.size() == static_cast<std::size_t>(sys->num_monde_devices),
                "device list size mismatch");
}

Strategy::Strategy(StrategyContext ctx) : ctx_{std::move(ctx)} {
  ctx_.validate();
  // Optional GPU expert cache for the PMove-side paths (extension).
  const std::uint64_t cache_bytes = ctx_.sys->gpu_expert_cache_bytes.count();
  if (cache_bytes > 0) {
    const std::uint64_t per_expert = ctx_.model->expert_bytes().count();
    expert_cache_ = std::make_unique<ExpertCache>(
        static_cast<std::size_t>(cache_bytes / per_expert));
  }
}

std::string to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kIdealGpu: return "Ideal";
    case StrategyKind::kGpuPmove: return "GPU+PM";
    case StrategyKind::kMondeAmove: return "MD+AM";
    case StrategyKind::kMondeLoadBalanced: return "MD+LB";
    case StrategyKind::kCpuAmove: return "CPU+AM";
    case StrategyKind::kMultiGpu: return "2GPU";
  }
  return "?";
}

Duration Strategy::place_gating(const moe::MoeLayerWork& work, sim::StreamSchedule& sched,
                                const HwStreams& hw, Duration ready,
                                MoeLayerResult& result) const {
  const Duration t = ctx_.xformer->gating_time(work.total_tokens, ctx_.model->num_experts,
                                               ctx_.model->dmodel);
  const auto iv = sched.place(hw.gpu, ready, t, "gating", "gating");
  result.gating += t;
  return iv.end;
}

Duration Strategy::place_combine(const moe::MoeLayerWork& work, sim::StreamSchedule& sched,
                                 const HwStreams& hw, Duration ready,
                                 MoeLayerResult& result) const {
  const Duration t = ctx_.xformer->combine_time(work.total_tokens, ctx_.model->dmodel);
  const auto iv = sched.place(hw.gpu, ready, t, "combine", "combine");
  result.combine += t;
  return iv.end;
}

Duration Strategy::place_pmove_pipeline(const ExpertList& experts, int layer_id,
                                        sim::StreamSchedule& sched, const HwStreams& hw,
                                        Duration ready, sim::StreamId gpu_stream,
                                        MoeLayerResult& result) {
  Duration last_end = ready;
  const Bytes weights = ctx_.model->expert_bytes();
  for (const auto& [e, tok] : experts) {
    // Weights stream host/CXL memory -> GPU on the M->G direction; the
    // expert GEMM launches as soon as its parameters land and the host has
    // dispatched the kernel. Transfers of later experts overlap earlier
    // experts' compute (Figure 5, GPU+PM row). Cache-resident experts skip
    // the transfer entirely.
    const ExpertId eid{layer_id, static_cast<int>(e)};
    const bool cached = expert_cache_ && expert_cache_->access(eid);
    Duration weights_ready = ready;
    if (!cached) {
      const auto tr = sched.place(hw.pcie_m2g, ready, ctx_.sys->pcie.transfer_time(weights),
                                  expert_label("PMove", e, tok), "pmove");
      weights_ready = tr.end;
      result.pmove_bytes += weights;
      if (expert_cache_) expert_cache_->insert(eid);
    } else {
      ++result.cache_hits;
    }
    const auto disp = sched.place(hw.host, ready, ctx_.sys->gpu_expert_dispatch,
                                  expert_label("dispatch", e, tok), "driver");
    const auto cp =
        sched.place(gpu_stream, max(weights_ready, disp.end),
                    ctx_.gpu->expert_time(ctx_.expert_shape(static_cast<std::int64_t>(tok)),
                                          ctx_.dtype()),
                    expert_label("expert", e, tok), "gemm");
    last_end = max(last_end, cp.end);
    ++result.experts_gpu;
  }
  return last_end;
}

std::vector<ExpertList> Strategy::round_robin_devices(const ExpertList& experts) const {
  const std::size_t n = ctx_.devices.size();
  MONDE_REQUIRE(n > 0, "strategy needs MoNDE devices");
  std::vector<ExpertList> per_device(n);
  for (std::size_t i = 0; i < experts.size(); ++i) {
    per_device[i % n].push_back(experts[i]);
  }
  return per_device;
}

Duration Strategy::place_ndp_batch(const std::vector<ExpertList>& per_device,
                                   sim::StreamSchedule& sched, const HwStreams& hw,
                                   Duration ready, MoeLayerResult& result) const {
  MONDE_REQUIRE(per_device.size() <= hw.ndp.size(), "more device lists than NDP streams");
  Duration all_end = ready;
  const Bytes instr{64};
  for (std::size_t d = 0; d < per_device.size(); ++d) {
    const ExpertList& experts = per_device[d];
    if (experts.empty()) continue;

    // AMove input: all routed activations for this device's experts in one
    // DMA (G->M direction).
    std::uint64_t routed = 0;
    for (const auto& [e, tok] : experts) routed += tok;
    const Bytes in_bytes = ctx_.activation_bytes(routed);
    const auto am =
        sched.place(hw.pcie_g2m, ready, ctx_.sys->pcie.transfer_time(in_bytes),
                    "AMove-in dev" + std::to_string(d), "amove");
    result.amove_bytes += in_bytes;

    // The host driver prepares each expert offload (input slicing, two 64-B
    // NDP instructions over CXL, completion arming) while the activation
    // DMA is in flight; dispatches serialize on the host thread and gate
    // each kernel's start -- the framework-bound regime the paper's
    // profiled workflow exhibits for many-cold-expert layers.
    const Duration per_dispatch =
        ctx_.sys->offload_dispatch_overhead + ctx_.sys->cxl.message_time(instr) * 2.0;

    Duration kernel_ready = am.end;
    for (const auto& [e, tok] : experts) {
      const auto disp = sched.place(hw.host, ready, per_dispatch,
                                    expert_label("offload", e, tok), "driver");
      const auto kr = ctx_.devices[d]->expert_latency(
          ctx_.expert_shape(static_cast<std::int64_t>(tok)), ctx_.dtype());
      // Kernel occupancy = simulated GEMM time + per-expert device overhead
      // (staging, decode, skew fill/drain, done handshake).
      const auto kv = sched.place(hw.ndp[d], max(kernel_ready, disp.end),
                                  kr.latency + ctx_.sys->ndp_expert_overhead,
                                  expert_label("NDP expert", e, tok), "ndp");
      kernel_ready = kv.end;
      // Host observes the done register, then retrieves this expert's
      // output (M->G direction, shared with PMove traffic).
      const Bytes out_bytes = ctx_.activation_bytes(tok);
      const auto out = sched.place(hw.pcie_m2g, kv.end + ctx_.sys->done_poll,
                                   ctx_.sys->pcie.transfer_time(out_bytes),
                                   expert_label("AMove-out", e, tok), "amove");
      result.amove_bytes += out_bytes;
      all_end = max(all_end, out.end);
      ++result.experts_ndp;
    }
  }
  return all_end;
}

// --- Ideal -------------------------------------------------------------------

namespace {

class IdealGpu final : public Strategy {
 public:
  using Strategy::Strategy;
  [[nodiscard]] std::string name() const override { return "Ideal"; }

  MoeLayerResult run_layer(const moe::MoeLayerWork& work, sim::StreamSchedule& sched,
                           const HwStreams& hw, Duration ready) override {
    MoeLayerResult r;
    r.start = ready;
    const Duration gate_end = place_gating(work, sched, hw, ready, r);
    Duration t = gate_end;
    for (const auto& [e, tok] : activated_by_load(work)) {
      const auto disp = sched.place(hw.host, gate_end, ctx_.sys->gpu_expert_dispatch,
                                    expert_label("dispatch", e, tok), "driver");
      const auto iv =
          sched.place(hw.gpu, max(t, disp.end),
                      ctx_.gpu->expert_time(ctx_.expert_shape(static_cast<std::int64_t>(tok)),
                                            ctx_.dtype()),
                      expert_label("expert", e, tok), "gemm");
      t = iv.end;
      ++r.experts_gpu;
    }
    r.end = place_combine(work, sched, hw, t, r);
    return r;
  }
};

// --- GPU+PM ------------------------------------------------------------------

class GpuPmove final : public Strategy {
 public:
  using Strategy::Strategy;
  [[nodiscard]] std::string name() const override { return "GPU+PM"; }

  MoeLayerResult run_layer(const moe::MoeLayerWork& work, sim::StreamSchedule& sched,
                           const HwStreams& hw, Duration ready) override {
    MoeLayerResult r;
    r.start = ready;
    const Duration gate_end = place_gating(work, sched, hw, ready, r);
    const Duration experts_end =
        place_pmove_pipeline(activated_by_load(work), work.layer_id, sched, hw,
                             gate_end, hw.gpu, r);
    r.end = place_combine(work, sched, hw, experts_end, r);
    return r;
  }
};

// --- MD+AM -------------------------------------------------------------------

class MondeAmove final : public Strategy {
 public:
  using Strategy::Strategy;
  [[nodiscard]] std::string name() const override { return "MD+AM"; }

  MoeLayerResult run_layer(const moe::MoeLayerWork& work, sim::StreamSchedule& sched,
                           const HwStreams& hw, Duration ready) override {
    MoeLayerResult r;
    r.start = ready;
    const Duration gate_end = place_gating(work, sched, hw, ready, r);
    const auto per_device = round_robin_devices(activated_by_load(work));
    const Duration experts_end = place_ndp_batch(per_device, sched, hw, gate_end, r);
    r.end = place_combine(work, sched, hw, experts_end, r);
    return r;
  }
};

// --- CPU+AM ------------------------------------------------------------------

class CpuAmove final : public Strategy {
 public:
  using Strategy::Strategy;
  [[nodiscard]] std::string name() const override { return "CPU+AM"; }

  MoeLayerResult run_layer(const moe::MoeLayerWork& work, sim::StreamSchedule& sched,
                           const HwStreams& hw, Duration ready) override {
    MoeLayerResult r;
    r.start = ready;
    const Duration gate_end = place_gating(work, sched, hw, ready, r);

    const ExpertList experts = activated_by_load(work);
    std::uint64_t routed = 0;
    for (const auto& [e, tok] : experts) routed += tok;
    const Bytes in_bytes = ctx_.activation_bytes(routed);
    const auto am = sched.place(hw.pcie_g2m, gate_end,
                                ctx_.sys->pcie.transfer_time(in_bytes), "AMove-in CPU",
                                "amove");
    r.amove_bytes += in_bytes;

    Duration t = am.end;
    Duration last_out = am.end;
    for (const auto& [e, tok] : experts) {
      const auto disp = sched.place(hw.host, gate_end, ctx_.sys->offload_dispatch_overhead,
                                    expert_label("offload", e, tok), "driver");
      const auto cp =
          sched.place(hw.cpu, max(t, disp.end),
                      ctx_.cpu->expert_time(ctx_.expert_shape(static_cast<std::int64_t>(tok)),
                                            ctx_.dtype()),
                      expert_label("CPU expert", e, tok), "cpu");
      t = cp.end;
      const Bytes out_bytes = ctx_.activation_bytes(tok);
      const auto out = sched.place(hw.pcie_m2g, cp.end,
                                   ctx_.sys->pcie.transfer_time(out_bytes),
                                   expert_label("AMove-out", e, tok), "amove");
      r.amove_bytes += out_bytes;
      last_out = max(last_out, out.end);
      ++r.experts_cpu;
    }
    r.end = place_combine(work, sched, hw, last_out, r);
    return r;
  }
};

// --- 2-GPU expert parallelism --------------------------------------------------

class MultiGpu final : public Strategy {
 public:
  explicit MultiGpu(StrategyContext ctx) : Strategy{std::move(ctx)} {
    MONDE_REQUIRE(ctx_.sys->num_gpus >= 2, "MultiGpu strategy needs num_gpus >= 2");
  }
  [[nodiscard]] std::string name() const override { return "2GPU"; }

  MoeLayerResult run_layer(const moe::MoeLayerWork& work, sim::StreamSchedule& sched,
                           const HwStreams& hw, Duration ready) override {
    MoeLayerResult r;
    r.start = ready;
    const Duration gate_end = place_gating(work, sched, hw, ready, r);

    // Static expert parallelism: even experts on GPU-0, odd on GPU-1; all
    // weights are resident (the multi-GPU baseline assumes capacity).
    ExpertList local, remote;
    std::uint64_t remote_tokens = 0;
    for (const auto& [e, tok] : activated_by_load(work)) {
      if (e % 2 == 0) {
        local.emplace_back(e, tok);
      } else {
        remote.emplace_back(e, tok);
        remote_tokens += tok;
      }
    }

    // All-to-all dispatch: tokens for GPU-1's experts cross the link.
    const Bytes dispatch = ctx_.activation_bytes(remote_tokens);
    Duration remote_ready = gate_end;
    if (remote_tokens > 0) {
      const auto tr = sched.place(hw.pcie_g2m, gate_end,
                                  ctx_.sys->pcie.transfer_time(dispatch), "a2a dispatch",
                                  "amove");
      remote_ready = tr.end;
      r.amove_bytes += dispatch;
    }

    Duration local_end = gate_end;
    for (const auto& [e, tok] : local) {
      const auto disp = sched.place(hw.host, gate_end, ctx_.sys->gpu_expert_dispatch,
                                    expert_label("dispatch", e, tok), "driver");
      const auto cp =
          sched.place(hw.gpu, max(local_end, disp.end),
                      ctx_.gpu->expert_time(ctx_.expert_shape(static_cast<std::int64_t>(tok)),
                                            ctx_.dtype()),
                      expert_label("expert", e, tok), "gemm");
      local_end = cp.end;
      ++r.experts_gpu;
    }
    Duration remote_end = remote_ready;
    for (const auto& [e, tok] : remote) {
      const auto disp = sched.place(hw.host, gate_end, ctx_.sys->gpu_expert_dispatch,
                                    expert_label("dispatch", e, tok), "driver");
      const auto cp =
          sched.place(hw.gpu2, max(remote_end, disp.end),
                      ctx_.gpu->expert_time(ctx_.expert_shape(static_cast<std::int64_t>(tok)),
                                            ctx_.dtype()),
                      expert_label("expert", e, tok), "gemm");
      remote_end = cp.end;
      ++r.experts_gpu;
    }
    if (remote_tokens > 0) {
      const auto back = sched.place(hw.pcie_m2g, remote_end,
                                    ctx_.sys->pcie.transfer_time(dispatch), "a2a return",
                                    "amove");
      remote_end = back.end;
      r.amove_bytes += dispatch;
    }
    r.end = place_combine(work, sched, hw, max(local_end, remote_end), r);
    return r;
  }
};

}  // namespace

// --- MD+LB ---------------------------------------------------------------------

MondeLoadBalanced::MondeLoadBalanced(StrategyContext ctx) : Strategy{std::move(ctx)} {
  MONDE_REQUIRE(!ctx_.devices.empty(), "MD+LB needs at least one MoNDE device");
}

double MondeLoadBalanced::h_raw_equation6(const moe::MoeLayerWork& work) const {
  const double activ = static_cast<double>(work.activated_experts());
  const double bw_pcie =
      (profiled_pcie_.as_bytes_per_sec() > 0.0 ? profiled_pcie_
                                               : ctx_.sys->pcie.effective_bandwidth())
          .as_bytes_per_sec();
  const double bw_md = (profiled_monde_.as_bytes_per_sec() > 0.0
                            ? profiled_monde_ * static_cast<double>(ctx_.devices.size())
                            : ctx_.sys->monde_aggregate_bandwidth())
                           .as_bytes_per_sec();
  return bw_pcie / (bw_md + bw_pcie) * activ;
}

int MondeLoadBalanced::h_from_equation6(const moe::MoeLayerWork& work, double alpha) const {
  const double activ = static_cast<double>(work.activated_experts());
  const double h = alpha * h_raw_equation6(work);
  return static_cast<int>(std::clamp(std::llround(h), 0LL, static_cast<long long>(activ)));
}

void MondeLoadBalanced::set_profiled_bandwidths(Bandwidth pcie, Bandwidth monde) {
  profiled_pcie_ = pcie;
  profiled_monde_ = monde;
}

MoeLayerResult MondeLoadBalanced::schedule_layer(const moe::MoeLayerWork& work, int h,
                                                 sim::StreamSchedule& sched,
                                                 const HwStreams& hw, Duration ready) {
  MoeLayerResult r;
  r.start = ready;
  r.h_value = h;
  const Duration gate_end = place_gating(work, sched, hw, ready, r);

  const ExpertList all = activated_by_load(work);
  const auto h_sz = static_cast<std::size_t>(std::min<std::int64_t>(
      h, static_cast<std::int64_t>(all.size())));
  const ExpertList hot{all.begin(), all.begin() + static_cast<std::ptrdiff_t>(h_sz)};
  const ExpertList cold{all.begin() + static_cast<std::ptrdiff_t>(h_sz), all.end()};

  // The GPU workflow (PMove + GPU GEMMs) and the MoNDE workflow (AMove +
  // NDP) run concurrently (Equation 3); both begin once gating resolves.
  const Duration gpu_end =
      place_pmove_pipeline(hot, work.layer_id, sched, hw, gate_end, hw.gpu, r);
  Duration ndp_end = gate_end;
  if (!cold.empty()) {
    ndp_end = place_ndp_batch(round_robin_devices(cold), sched, hw, gate_end, r);
  }
  r.end = place_combine(work, sched, hw, max(gpu_end, ndp_end), r);
  return r;
}

Duration MondeLoadBalanced::evaluate_layer_with_h(const moe::MoeLayerWork& work, int h) {
  sim::StreamSchedule scratch;
  const HwStreams hw = HwStreams::create(scratch, *ctx_.sys);
  const MoeLayerResult r = schedule_layer(work, h, scratch, hw, Duration::zero());
  return r.latency();
}

void MondeLoadBalanced::set_alpha(double alpha, bool keep_tuning) {
  MONDE_REQUIRE(alpha > 0.0, "alpha must be positive");
  alpha_ = alpha;
  autotune_ = keep_tuning;
}

void MondeLoadBalanced::maybe_retune() {
  if (!autotune_ || window_.empty()) return;
  // Local search mirroring the paper: evaluate H offsets around the current
  // alpha's choice on recent layers; adopt the alpha that realizes the best
  // average latency. Offsets map back to alpha via the mean Equation-6 H.
  static constexpr int kOffsets[] = {-4, -2, -1, 0, 1, 2, 4, 8, 16, 32};
  double best_alpha = alpha_;
  Duration best = Duration::infinite();
  for (const int off : kOffsets) {
    Duration total = Duration::zero();
    double alpha_sum = 0.0;
    for (const auto& w : window_) {
      const int base = h_from_equation6(w, alpha_);
      const int h = std::max(0, base + off);
      total += evaluate_layer_with_h(w, h);
      // Invert through the *unrounded* Equation-6 value so the adopted
      // alpha reproduces exactly this H after rounding.
      const double h0 = h_raw_equation6(w);
      alpha_sum += h0 > 0.0 ? static_cast<double>(h) / h0 : alpha_;
    }
    if (total < best) {
      best = total;
      best_alpha = std::max(0.05, alpha_sum / static_cast<double>(window_.size()));
    }
  }
  alpha_ = best_alpha;
}

MoeLayerResult MondeLoadBalanced::run_layer(const moe::MoeLayerWork& work,
                                            sim::StreamSchedule& sched, const HwStreams& hw,
                                            Duration ready) {
  // The paper tunes alpha by "periodically running profiled inference on a
  // small set of past input batches". Mirror that: on a cold start, profile
  // the current layer before committing (alpha = 1 can be pathologically
  // wrong when the hottest experts are strongly compute-bound -- the exact
  // case alpha exists for); retune every early layer, then back off to the
  // periodic schedule.
  if (autotune_) {
    if (window_.empty()) window_.push_back(work);
    const bool warmup = layers_seen_ < 4;
    if (warmup || layers_seen_ % tune_period == 0) maybe_retune();
  }
  ++layers_seen_;
  window_.push_back(work);
  while (window_.size() > tune_window) window_.pop_front();

  const int h = fixed_h_ >= 0 ? fixed_h_ : h_from_equation6(work, alpha_);
  last_h_ = h;
  return schedule_layer(work, h, sched, hw, ready);
}

std::unique_ptr<Strategy> make_strategy(StrategyKind kind, StrategyContext ctx) {
  switch (kind) {
    case StrategyKind::kIdealGpu: return std::make_unique<IdealGpu>(std::move(ctx));
    case StrategyKind::kGpuPmove: return std::make_unique<GpuPmove>(std::move(ctx));
    case StrategyKind::kMondeAmove: return std::make_unique<MondeAmove>(std::move(ctx));
    case StrategyKind::kMondeLoadBalanced:
      return std::make_unique<MondeLoadBalanced>(std::move(ctx));
    case StrategyKind::kCpuAmove: return std::make_unique<CpuAmove>(std::move(ctx));
    case StrategyKind::kMultiGpu: return std::make_unique<MultiGpu>(std::move(ctx));
  }
  throw Error("unknown strategy kind");
}

}  // namespace monde::core
