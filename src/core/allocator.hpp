// MoNDE device-memory allocator (paper Section 3.4, "Memory Allocation").
//
// The host-side driver allocates fixed-size regions for expert parameters
// and input/output activations at MoE layer initialization. Parameters live
// in even-indexed banks, activations in odd-indexed banks (contention
// avoidance), and both are laid out in the bandwidth-friendly
// ro-ba-bg-ra-co-ch block order via ndp::PartitionLayout.
//
// Allocation is bump-pointer per partition: the expert working set is
// immutable for the lifetime of a deployment (no frees), and the activation
// arena is reset per layer. This matches the paper's "fixed-sized memory
// space ... during MoE layer initialization".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dram/address.hpp"
#include "ndp/layout.hpp"

namespace monde::core {

/// A device-resident buffer: a contiguous range of logical blocks within a
/// bank-parity partition, plus its physical base address.
struct DeviceBuffer {
  ndp::Partition partition = ndp::Partition::kWeights;
  std::uint64_t first_block = 0;
  std::uint64_t block_count = 0;
  std::uint64_t base_address = 0;  ///< physical address of first_block
  Bytes bytes;                     ///< requested payload size

  [[nodiscard]] bool valid() const { return block_count > 0; }
};

/// Bump-pointer allocator over the two bank-parity partitions of one device.
class DeviceAllocator {
 public:
  explicit DeviceAllocator(const dram::Spec& spec);

  DeviceAllocator(const DeviceAllocator&) = delete;
  DeviceAllocator& operator=(const DeviceAllocator&) = delete;

  /// Allocate `bytes` in the given partition. Throws monde::Error with a
  /// capacity diagnosis when the partition is exhausted.
  DeviceBuffer allocate(ndp::Partition part, Bytes bytes, const std::string& tag);

  /// Reset the activation partition's bump pointer (per-layer reuse). The
  /// weights partition is never reset.
  void reset_activations();

  [[nodiscard]] Bytes weights_used() const;
  [[nodiscard]] Bytes activations_used() const;
  [[nodiscard]] Bytes partition_capacity() const { return weights_layout_.capacity(); }

  /// Resolve a block index within a buffer to a physical address.
  [[nodiscard]] std::uint64_t address_of(const DeviceBuffer& buf, std::uint64_t block) const;

 private:
  dram::Spec spec_;
  dram::AddressMapper mapper_;
  ndp::PartitionLayout weights_layout_;
  ndp::PartitionLayout acts_layout_;
  std::uint64_t weights_cursor_ = 0;
  std::uint64_t acts_cursor_ = 0;
};

}  // namespace monde::core
