// One MoNDE device: device memory + allocator + resident expert placement +
// host-driver instruction generation (paper Sections 3.1 and 3.4).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/allocator.hpp"
#include "interconnect/instruction.hpp"
#include "interconnect/link.hpp"
#include "moe/model_config.hpp"
#include "ndp/ndp_core.hpp"

namespace monde::core {

/// Identifies an expert within the model: (MoE layer index, expert index).
struct ExpertId {
  int layer = 0;
  int expert = 0;
  auto operator<=>(const ExpertId&) const = default;
};

/// A MoNDE CXL memory expander with NDP units and resident experts.
///
/// All devices in a system are identical, so they share one NdpCoreSim
/// (latency results depend only on the GEMM shape, and the sim memoizes).
class MondeDevice {
 public:
  MondeDevice(int device_id, std::shared_ptr<ndp::NdpCoreSim> sim);

  [[nodiscard]] int id() const { return id_; }

  /// Place one expert's parameters in device memory; records the buffer for
  /// instruction generation. Throws on capacity exhaustion.
  void place_expert(ExpertId eid, Bytes bytes);

  /// Place all experts of every MoE layer of `model` whose index satisfies
  /// (expert % num_devices == device_id % num_devices) -- the static
  /// round-robin sharding used for multi-MoNDE deployments. For a single
  /// device, everything lands here.
  void place_model(const moe::MoeModelConfig& model, int num_devices);

  [[nodiscard]] bool has_expert(ExpertId eid) const { return experts_.count(eid) > 0; }
  [[nodiscard]] const DeviceBuffer& expert_buffer(ExpertId eid) const;
  [[nodiscard]] Bytes weights_used() const { return allocator_.weights_used(); }

  /// Cycle-level latency of running one expert FFN on this device's NDP.
  [[nodiscard]] ndp::NdpKernelResult expert_latency(const compute::ExpertShape& shape,
                                                    compute::DataType dt) const;

  /// Compile one expert operation into its two 64-B NDP instructions
  /// (gemm+relu for linear1, gemm for linear2) with real device addresses.
  [[nodiscard]] std::vector<interconnect::NdpInstruction> compile_expert_op(
      ExpertId eid, std::uint32_t tokens, const moe::MoeModelConfig& model);

  [[nodiscard]] ndp::NdpCoreSim& sim() { return *sim_; }
  [[nodiscard]] const ndp::NdpCoreSim& sim() const { return *sim_; }
  [[nodiscard]] DeviceAllocator& allocator() { return allocator_; }

 private:
  int id_;
  std::shared_ptr<ndp::NdpCoreSim> sim_;
  DeviceAllocator allocator_;
  std::map<ExpertId, DeviceBuffer> experts_;
  std::uint16_t next_kernel_seq_ = 0;
};

}  // namespace monde::core
