// GPU-MoNDE load balancing (paper Section 3.3, Equations 3-6).
//
// After gating, the top-H most compute-intensive (hottest) experts run on
// the GPU via PMove while the cold remainder runs near-data via AMove; the
// two workflows overlap. H follows Equation 6:
//
//   H = alpha * BW_PCIe / (BW_MD + BW_PCIe) * E_activ
//
// which balances the bandwidth-bound PMove time against the bandwidth-bound
// NDP streaming time (Equation 4). The scaling factor alpha corrects for
// cases where the NDP-side experts are compute-intensive (intuition 2 of
// the paper breaks); it is auto-tuned by periodically re-evaluating recent
// layers under candidate values and keeping the local optimum, mirroring
// the paper's profiling-based tuner.
#pragma once

#include <deque>

#include "core/strategy.hpp"

namespace monde::core {

/// The MD+LB strategy. Also exposes dry-run evaluation used by the tuner
/// and by the H-sweep ablation bench.
class MondeLoadBalanced final : public Strategy {
 public:
  explicit MondeLoadBalanced(StrategyContext ctx);

  [[nodiscard]] std::string name() const override { return "MD+LB"; }

  MoeLayerResult run_layer(const moe::MoeLayerWork& work, sim::StreamSchedule& sched,
                           const HwStreams& hw, Duration ready) override;

  /// Equation 6 with the current (or given) alpha, clamped to [0, E_activ].
  [[nodiscard]] int h_from_equation6(const moe::MoeLayerWork& work, double alpha) const;

  /// Unrounded Equation-6 value at alpha = 1 (used to invert H -> alpha).
  [[nodiscard]] double h_raw_equation6(const moe::MoeLayerWork& work) const;

  /// Dry-run: latency of the layer under a fixed H on fresh streams.
  [[nodiscard]] Duration evaluate_layer_with_h(const moe::MoeLayerWork& work, int h);

  /// Pin H (disables Equation 6 and tuning); pass -1 to restore auto mode.
  void set_fixed_h(int h) { fixed_h_ = h; }
  /// Pin alpha and disable the auto-tuner.
  void set_alpha(double alpha, bool keep_tuning = false);

  /// Replace the datasheet bandwidths in Equation 6 with profiled values
  /// (paper Section 3.3: "this can be replaced by profiled bandwidths").
  /// Typical source: NdpKernelResult::achieved_bandwidth and a measured
  /// PCIe rate. Pass zero-bandwidth values to revert to the specification.
  void set_profiled_bandwidths(Bandwidth pcie, Bandwidth monde);

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] int last_h() const { return last_h_; }

  /// Layers between tuner invocations.
  int tune_period = 4;
  /// Recent-layer window size used by the tuner.
  std::size_t tune_window = 4;

 private:
  MoeLayerResult schedule_layer(const moe::MoeLayerWork& work, int h,
                                sim::StreamSchedule& sched, const HwStreams& hw,
                                Duration ready);
  void maybe_retune();

  double alpha_ = 1.0;
  bool autotune_ = true;
  int fixed_h_ = -1;
  int last_h_ = -1;
  int layers_seen_ = 0;
  std::deque<moe::MoeLayerWork> window_;
  Bandwidth profiled_pcie_;   ///< zero = use specification
  Bandwidth profiled_monde_;  ///< zero = use specification
};

}  // namespace monde::core
