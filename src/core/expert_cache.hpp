// GPU-resident expert cache (extension beyond the paper).
//
// The paper's GPU+PM baseline re-fetches every activated expert on demand
// and evicts it afterwards. Spare GPU memory can instead hold an LRU cache
// of recently used experts; because the routing popularity is heavily
// skewed and stable across decode steps (Figure 3), the hot experts hit
// almost always. This is the natural "future work" optimization the paper's
// on-demand PMove leaves on the table, and the PMove-side strategies use it
// when SystemConfig::gpu_expert_cache_bytes is non-zero.
#pragma once

#include <cstdint>
#include <list>
#include <map>

#include "core/monde_device.hpp"

namespace monde::core {

/// Fixed-capacity LRU set of experts resident in GPU memory.
class ExpertCache {
 public:
  /// `capacity` experts; 0 disables caching (every access misses).
  explicit ExpertCache(std::size_t capacity);

  /// Look up an expert; a hit refreshes its recency. Returns hit/miss.
  bool access(ExpertId id);

  /// Insert after a miss fetch; evicts the least-recently-used expert when
  /// full. Inserting an already-present expert only refreshes recency.
  void insert(ExpertId id);

  [[nodiscard]] bool contains(ExpertId id) const { return index_.count(id) > 0; }
  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double hit_rate() const {
    const auto total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

  void clear();

 private:
  std::size_t capacity_;
  std::list<ExpertId> lru_;  ///< front = most recent
  std::map<ExpertId, std::list<ExpertId>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace monde::core
