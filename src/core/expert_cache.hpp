// GPU-resident expert cache (extension beyond the paper).
//
// The paper's GPU+PM baseline re-fetches every activated expert on demand
// and evicts it afterwards. Spare GPU memory can instead hold an LRU cache
// of recently used experts; because the routing popularity is heavily
// skewed and stable across decode steps (Figure 3), the hot experts hit
// almost always. This is the natural "future work" optimization the paper's
// on-demand PMove leaves on the table, and the PMove-side strategies use it
// when SystemConfig::gpu_expert_cache_bytes is non-zero. The serving layer
// reuses it as each replica's expert residency (serve/server.hpp), so the
// cache also maintains a 64-bit residency signature dispatchers can
// intersect with a request's ExpertProfile signature.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "core/monde_device.hpp"
#include "moe/expert_profile.hpp"

namespace monde::core {

/// Hash for the unordered LRU index: mixes the packed (layer, expert) pair
/// with the same finalizer family as moe::expert_signature_bit.
struct ExpertIdHash {
  [[nodiscard]] std::size_t operator()(const ExpertId& id) const {
    std::uint64_t x =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.layer)) << 32) |
        static_cast<std::uint32_t>(id.expert);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

/// Fixed-capacity LRU set of experts resident in GPU memory. All operations
/// are O(1): the recency list is indexed by an unordered map.
class ExpertCache {
 public:
  /// `capacity` experts; 0 disables caching (every access misses).
  explicit ExpertCache(std::size_t capacity);

  /// Look up an expert; a hit refreshes its recency. Returns hit/miss.
  bool access(ExpertId id);

  /// Insert after a miss fetch; evicts the least-recently-used expert when
  /// full. Inserting an already-present expert only refreshes recency.
  void insert(ExpertId id);

  [[nodiscard]] bool contains(ExpertId id) const { return index_.count(id) > 0; }
  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double hit_rate() const {
    const auto total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

  /// 64-bit Bloom-style summary of the resident set: the OR of
  /// moe::expert_signature_bit over every cached expert, maintained
  /// incrementally (per-bit reference counts absorb collisions and
  /// evictions). A dispatcher ANDs this with a request's profile signature
  /// to estimate hot-set overlap without walking the cache.
  [[nodiscard]] std::uint64_t signature() const { return signature_; }

  /// Drop one expert outright -- no recency refresh, no hit/miss accounting.
  /// The serving layer's residency refcounts (serve/server.hpp) use this to
  /// evict experts whose last referencing request migrated off the replica,
  /// so the demand re-homes with the request. No-op when absent.
  void erase(ExpertId id);

  /// Zero the hit/miss counters without touching the resident set, so a
  /// steady-state window can be measured after warmup.
  void stats_reset();

  void clear();

 private:
  void signature_add(ExpertId id);
  void signature_remove(ExpertId id);

  std::size_t capacity_;
  std::list<ExpertId> lru_;  ///< front = most recent
  std::unordered_map<ExpertId, std::list<ExpertId>::iterator, ExpertIdHash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t signature_ = 0;
  std::uint32_t bit_counts_[64] = {};  ///< residents mapped onto each signature bit
};

}  // namespace monde::core
