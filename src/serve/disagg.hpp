// Disaggregated prefill/decode serving configuration.
//
// Splitwise/DistServe-style pool specialization for the fleet: when enabled,
// every replica is assigned a role -- prefill specialist or decode
// specialist. Dispatch routes newly arriving (prefill-phase) requests to the
// prefill pool only; as soon as a request's prompt is fully prefilled, the
// prefill replica releases it and its KV state is handed off to a decode
// replica over `handoff_link`, priced per token through the same
// kv_bytes_per_token model that prices retry/migration transfers
// (serve/kvcache.hpp). The handoff reuses the checkpointed-resume machinery:
// the released request carries a ResumeState with `prefilled == prompt_len`,
// so the decode replica admits it as a resumed request and never re-runs the
// prompt.
//
// Everything is off by default: with `enabled == false` the cluster is
// bit-identical to the unified fleet (pinned by tests/test_calendar_diff.cpp
// and tests/test_random_diff.cpp), mirroring the PrefixCacheConfig /
// ExpertServingConfig pattern.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "interconnect/link.hpp"

namespace monde::serve {

struct DisaggConfig {
  bool enabled = false;

  /// Boot-time prefill specialists: replicas [0, prefill_replicas) of the
  /// initial fleet take the prefill role, the rest decode. Autoscaling keeps
  /// the pools near this boot-time ratio and never retires the last replica
  /// of either pool.
  std::size_t prefill_replicas = 1;

  /// Link carrying the KV state of a prefilled request from its prefill
  /// replica to the chosen decode replica. The payload is
  /// `kv_bytes_per_token * (prompt + decoded so far)` -- the request's whole
  /// resident frontier -- so slow links visibly delay the first decode step.
  interconnect::LinkSpec handoff_link = interconnect::LinkSpec::pcie_gen4_x16();

  /// Decode-pool admission by outstanding-token load: a handed-off request
  /// only considers decode replicas whose outstanding tokens are at or below
  /// this cap, falling back to the whole pool when every replica is above
  /// it. 0 = uncapped.
  std::int64_t decode_admit_tokens = 0;

  void validate() const {
    if (!enabled) return;
    MONDE_REQUIRE(prefill_replicas > 0,
                  "disaggregated serving needs prefill_replicas > 0");
    MONDE_REQUIRE(decode_admit_tokens >= 0, "decode_admit_tokens must be >= 0");
  }
};

}  // namespace monde::serve
