// The request model of the serving layer.
//
// A serving workload is a trace of inference requests: each arrives at some
// wall-clock time with a prompt to prefill (one encoder pass) and a budget of
// new tokens to decode. The scheduler (scheduler.hpp) decides when a request
// is admitted into the shared decode batch; ServerSim (server.hpp) turns a
// trace into per-request latency and aggregate throughput numbers.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/units.hpp"

namespace monde::serve {

/// Canonical serving-trace order: by arrival time, request id breaking
/// ties. Every layer that orders a trace -- scheduler submission, the
/// scheduler's push() precondition, cluster dispatch, fleet aggregation --
/// must agree on this one definition. Works for any record carrying
/// `arrival` and `id` (Request, RequestMetrics).
template <typename T>
[[nodiscard]] bool arrival_order(const T& a, const T& b) {
  return a.arrival != b.arrival ? a.arrival < b.arrival : a.id < b.id;
}

/// One inference request in a serving trace.
///
/// Units: `arrival` is simulated time (Duration, nanosecond resolution);
/// `prompt_len` and `max_new_tokens` are token counts. `attempt` tracks
/// failure-driven re-dispatch: a request stranded on a failed replica is
/// re-enqueued elsewhere with `attempt` incremented and `arrival` rewritten
/// to the retry instant (the cluster re-bases fleet-level metrics to the
/// original arrival so retries show up in the latency tail).
struct Request {
  std::uint64_t id = 0;
  Duration arrival = Duration::zero();  ///< when the request enters the queue
  std::int64_t prompt_len = 0;          ///< source tokens to prefill
  std::int64_t max_new_tokens = 0;      ///< decode budget (tokens to generate)
  std::uint32_t attempt = 0;            ///< 0 = first dispatch; +1 per failure retry

  void validate() const {
    MONDE_REQUIRE(prompt_len > 0, "request " << id << " needs prompt_len > 0");
    MONDE_REQUIRE(max_new_tokens > 0, "request " << id << " needs max_new_tokens > 0");
    MONDE_REQUIRE(arrival >= Duration::zero(), "request " << id << " arrives before t=0");
  }
};

}  // namespace monde::serve
