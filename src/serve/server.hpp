// The serving simulator: a request trace in, per-request latency and
// aggregate throughput out.
//
// ServerSim drives the engine's step primitives under a batching scheduler.
// It exposes an incremental event API so a cluster of replicas can be
// interleaved in simulated time by an outside driver (serve/cluster.hpp):
//
//   enqueue(rq)       hand the server one request (its arrival time is the
//                     moment it lands in this server's queue);
//   advance_to(t)     run every scheduler step that starts strictly before
//                     t. A step that would start at or after t is deferred,
//                     because the caller may still enqueue arrivals in the
//                     gap; a step that starts before t runs to completion
//                     even if it ends after t (steps are atomic).
//   next_event_time() earliest time at which advance_to() would do work;
//   drain()           declare the trace complete and run everything left;
//   report()          per-request metrics + aggregates, after drain().
//
// The classic one-shot run(trace) is a thin wrapper: enqueue the sorted
// trace, drain, report. Queue-state accessors (in_flight(),
// outstanding_tokens()) expose the live load dispatch policies balance on;
// note they reflect the last completed step boundary, which may sit up to
// one step past the dispatcher's clock (steps are atomic).
//
// Steps execute eagerly (the engine prices the whole step when it starts)
// but their scheduler effects -- token counts, completions, retirements --
// are applied lazily, once the clock passes the step's end. A dispatcher
// advancing the server to an instant that falls inside a step therefore
// observes the queue as it stands mid-step, not the step's future outcome.
//
// Metric conventions (all measured from request arrival):
//
//   TTFT  time to first token  -- completion of the request's first decode
//         step (this simulator models encoder-decoder stacks, so the first
//         token lands one decode step after the prefill);
//   TPOT  time per output token -- (completion - first token) / (n - 1),
//         the steady-state decode cadence;
//   E2E   end-to-end latency    -- completion of the last token.
//
// Aggregate throughput is useful (non-padding) generated tokens divided by
// the simulated makespan.
//
// Replica lifecycle (cluster serving): a server may boot late (`start_at` --
// an autoscaled replica's cold-start: it accepts enqueues immediately but
// runs no step before `start_at`) and may carry a FaultSpec (fault.hpp). A
// slow-down fault stretches affected steps' spans about their start; a
// fail-stop freezes the server at `fail_at` -- the step in flight at the
// instant of death loses its effects, and harvest_stranded() hands the
// accepted-but-unfinished requests back to the cluster for re-dispatch,
// annotated with their last-checkpointed progress. A retiring replica can
// instead evacuate(): stop at the current step boundary and hand its
// unfinished requests (with resident state) to the cluster for migration.
//
// Prefix/KV cache (kvcache.hpp): when enabled, an admitted request's
// prompt tokens already resident (its resumed prefix, or the shared prefix
// of its `prefix_id` group) skip the prefill, so the step prices only the
// un-cached tokens; per-step `cached_tokens` and the report's cache stats
// make the savings auditable. Disabled (the default), the server is
// bit-identical to the cache-less behavior.
//
// Units: token counts are tokens; all instants/spans are simulated-time
// `Duration`s (nanosecond-resolution doubles; cycle counts never surface at
// this layer). The engine reference passed to the constructor must outlive
// the server, and one engine must not be shared by two concurrently-driven
// servers (each run threads its own EngineState but draws from the engine's
// per-request workload streams).
#pragma once

#include <cstdint>
#include <vector>

#include <unordered_map>

#include "common/stats.hpp"
#include "core/engine.hpp"
#include "core/expert_cache.hpp"
#include "serve/disagg.hpp"
#include "serve/expert.hpp"
#include "serve/fault.hpp"
#include "serve/kvcache.hpp"
#include "serve/scheduler.hpp"

namespace monde::serve {

/// What one scheduler step processed (for budget audits and utilization).
struct StepRecord {
  std::int64_t index = 0;
  Duration start = Duration::zero();
  Duration end = Duration::zero();
  std::int64_t prefill_tokens = 0;  ///< prompt tokens prefilled this step
  std::int64_t decode_tokens = 0;   ///< decode slots (incl. fixed-mode padding)
  std::int64_t cached_tokens = 0;   ///< prompt tokens served from the prefix cache
  std::int64_t expert_misses = 0;   ///< expert fetches priced into this step
  Duration expert_fetch = Duration::zero();  ///< fetch time added to the step span
  /// KV handoff shipments (disaggregated serving) charged to this step: the
  /// outbound DMA of the previous step's releases contends with compute, so
  /// the next step synchronizes on it -- same model as rebalance preloads.
  Duration handoff_ship = Duration::zero();
};

/// Final per-request latency accounting. `arrival` is the instant the
/// request joined *this* server's queue -- for a failure retry that is the
/// re-dispatch instant; the cluster re-bases its fleet-level copy to the
/// original trace arrival so the retry delay lands in the latency tail.
///
/// A request resumed with prior decode progress (`resumed_tokens` > 0)
/// keeps its ORIGINAL `first_token` instant -- the user saw that token
/// before the failure -- which may precede this server's `arrival`;
/// per-server TTFT/TPOT percentiles therefore skip resumed requests, while
/// the cluster's re-based copies include them.
struct RequestMetrics {
  std::uint64_t id = 0;
  std::uint32_t attempt = 0;  ///< dispatch attempt that finally served it
  std::int64_t prompt_len = 0;
  std::int64_t generated = 0;       ///< tokens delivered, summed across attempts
  std::int64_t saved_tokens = 0;    ///< prefill tokens the cache skipped this attempt
  std::int64_t resumed_tokens = 0;  ///< decode tokens carried in from earlier attempts
  Duration arrival = Duration::zero();
  Duration admitted = Duration::zero();
  Duration first_token = Duration::zero();
  Duration completion = Duration::zero();

  [[nodiscard]] Duration ttft() const { return first_token - arrival; }
  [[nodiscard]] Duration e2e() const { return completion - arrival; }
  [[nodiscard]] Duration tpot() const {
    return generated > 1 ? (completion - first_token) / static_cast<double>(generated - 1)
                         : Duration::zero();
  }
};

/// Everything one serving run produced.
struct ServeReport {
  std::string strategy;
  std::string mode;  ///< "fixed" or "continuous"
  std::vector<RequestMetrics> requests;
  std::vector<StepRecord> steps;
  Duration makespan = Duration::zero();
  Duration busy = Duration::zero();  ///< sum of step spans (utilization numerator)
  /// Tokens decoded BY THIS SERVER (a resumed request's carried-in tokens
  /// are credited to the replica that produced them, not re-counted here).
  std::uint64_t generated_tokens = 0;
  double tokens_per_s = 0.0;
  Percentiles ttft_ms;
  /// All-zero when no request generated more than one token (TPOT is
  /// undefined for single-token responses).
  Percentiles tpot_ms;
  Percentiles e2e_ms;
  PrefixCacheStats cache;  ///< prefix-cache counters (all-zero when disabled)
  // Expert residency (all-zero when expert-aware serving is disabled):
  std::uint64_t expert_hits = 0;    ///< profile experts found resident at step time
  std::uint64_t expert_misses = 0;  ///< profile experts fetched (priced into steps)
  double expert_hit_rate = 0.0;     ///< hits / (hits + misses), 0 with no accesses
  std::size_t resident_experts = 0; ///< experts hot at the end of the run
  // Disaggregated serving (all-zero unless this replica runs the prefill
  // role): prefill-complete releases handed to the decode pool. A handed-off
  // request does not appear in `requests` (it finishes on a decode replica);
  // only its locally decoded tokens count into generated_tokens.
  std::uint64_t handoffs = 0;              ///< requests released to decode replicas
  std::int64_t handoff_tokens = 0;         ///< KV tokens shipped with those releases
  Duration handoff_transfer = Duration::zero();  ///< summed handoff-link time
};

/// One prefill-complete release (disaggregated serving): the request leaves a
/// prefill replica annotated for checkpointed resume -- prompt fully
/// prefilled, decode progress and first-token instant carried along -- and
/// the cluster re-dispatches it to a decode replica once the KV frontier has
/// crossed the handoff link (at `release + transfer`).
struct HandoffRecord {
  Request request;
  Duration release = Duration::zero();   ///< step boundary of the release
  Duration transfer = Duration::zero();  ///< handoff-link span for the KV frontier
};

/// Drives one InferenceEngine through a request trace under one scheduler.
class ServerSim {
 public:
  /// `engine` must outlive the server and must not be driven by anything
  /// else concurrently. `start_at` is the boot instant (no step starts
  /// earlier; enqueues are accepted at any time); `fault` is the replica's
  /// fault plan -- a fail-stop must lie strictly after `start_at`; `cache`
  /// configures the replica's prefix/KV cache (disabled by default, which
  /// keeps the server bit-identical to the cache-less behavior); `expert`
  /// configures the replica's expert residency (serve/expert.hpp) -- also
  /// disabled by default with the same bit-identity guarantee. `disagg` and
  /// `prefill_role` opt the replica into disaggregated serving
  /// (serve/disagg.hpp): a prefill-role replica releases every request at
  /// its admission-step boundary instead of decoding it to completion, and
  /// requires continuous batching (a fixed batch cannot release mid-batch).
  ServerSim(core::InferenceEngine& engine, SchedulerConfig cfg,
            Duration start_at = Duration::zero(), FaultSpec fault = {},
            PrefixCacheConfig cache = {}, ExpertServingConfig expert = {},
            DisaggConfig disagg = {}, bool prefill_role = false);

  // --- Incremental event API (what a cluster dispatcher drives) -----------

  /// Hand the server one request; it joins the queue at `rq.arrival`
  /// (dispatch is zero-latency). Requests must arrive in (arrival, id)
  /// order, before drain(), and never after harvest_stranded().
  void enqueue(const Request& rq);

  /// Run every scheduler step that starts strictly before `t`; idle gaps
  /// fast-forward through queued arrivals. See the file comment for the
  /// strict-before contract. Advancing to or past a fail-stop instant kills
  /// the server: the step in flight at death loses its effects and no
  /// further work ever runs. Advancing to a past timestamp is a no-op.
  void advance_to(Duration t);

  /// Earliest time at which advance_to() can do work: the current boundary
  /// when a step can run there (one in flight, or admission would fire),
  /// else the next queued arrival, else infinite -- the server then waits
  /// on enqueue()/drain() (e.g. a fixed-mode batch still filling). Because
  /// advance_to() is strict-before, pass a time strictly greater than this
  /// to run the work. Cached: recomputed only after a mutation (see
  /// version()), so a cluster driver may poll it freely.
  [[nodiscard]] Duration next_event_time() const;

  /// Monotone mutation counter: bumped whenever the server's observable
  /// state changes (an enqueue, steps run by advance_to(), a fail-stop,
  /// drain(), harvest, evacuation). While version() is unchanged,
  /// next_event_time() is unchanged too -- the contract the cluster's event
  /// calendar relies on to detect stale entries without re-polling (lazy
  /// deletion: an entry tagged with an older version is dead).
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// No further enqueue(): finish every request still in the system. On an
  /// empty queue this is a harmless no-op (the server reports zero
  /// requests). On a failed server every stranded request must have been
  /// harvested first.
  void drain();

  /// End of the last completed step (the server's simulated clock); equals
  /// `start_at` until the first step runs, and freezes at the fail-stop
  /// instant once the server dies.
  [[nodiscard]] Duration now() const { return st_.now; }
  [[nodiscard]] bool drained() const { return sched_.drained(); }
  [[nodiscard]] Duration start_at() const { return start_at_; }
  [[nodiscard]] const FaultSpec& fault() const { return fault_; }

  /// The server reached its fail-stop instant and is permanently frozen.
  [[nodiscard]] bool failed() const { return failed_; }

  /// After a fail-stop: remove and return every accepted-but-unfinished
  /// request (in (arrival, id) order) so the cluster can re-dispatch them.
  /// Each is annotated with its checkpointed progress as of the last
  /// completed step (Request::resume); whether the retry honors it is the
  /// cluster's cache-survival policy -- with no prefix cache the
  /// annotations are dropped and retries restart from scratch. Requires
  /// failed(); call at most once; enqueue() is invalid afterwards and
  /// drain()/report() then cover only completed requests.
  [[nodiscard]] std::vector<Request> harvest_stranded();

  /// Live-migration support (scale-down): stop at the current step boundary
  /// -- the step in flight completes and its effects are part of the
  /// migrated checkpoint -- and remove and return every unfinished request
  /// with its progress annotations, exactly as harvest_stranded() does for
  /// a dead server. Requires a live server; call at most once; enqueue() is
  /// invalid afterwards and drain()/report() cover only completed requests.
  [[nodiscard]] std::vector<Request> evacuate();

  /// Live load, for dispatch decisions (see ContinuousBatchScheduler).
  /// Requests retired by a step still in flight at the last advance_to()
  /// instant are still counted (their completion lies in the future).
  [[nodiscard]] std::size_t in_flight() const { return sched_.in_flight(); }
  [[nodiscard]] std::int64_t outstanding_tokens() const {
    return sched_.outstanding_tokens();
  }

  /// Arrival times of accepted requests still awaiting admission (the
  /// autoscaler's queue-delay signal). O(waiting).
  [[nodiscard]] std::vector<Duration> waiting_arrivals() const {
    return sched_.waiting_arrivals();
  }

  /// Steps executed so far (including one whose completion is still
  /// pending); the cluster folds their spans into its health EWMA.
  [[nodiscard]] const std::vector<StepRecord>& steps() const { return steps_; }

  /// The replica's prefix/KV cache (inert when disabled in the config).
  [[nodiscard]] const KvCache& kv_cache() const { return cache_; }

  /// The replica's expert residency (empty when expert serving is disabled).
  [[nodiscard]] const core::ExpertCache& expert_cache() const { return expert_cache_; }

  /// Compact residency summary for dispatch snapshots: the expert cache's
  /// 64-bit signature, 0 while nothing is resident (or serving disabled).
  [[nodiscard]] std::uint64_t expert_signature() const { return expert_cache_.signature(); }

  /// Compact shared-prefix residency for dispatch snapshots: the KV cache's
  /// 64-bit signature, 0 while no shared prefix is resident (or disabled).
  [[nodiscard]] std::uint64_t prefix_signature() const { return cache_.prefix_signature(); }

  /// Cross-replica rebalancing entry point: make `ids` resident, evicting
  /// LRU experts as needed. Each newly fetched expert's transfer time is
  /// accumulated and charged to the NEXT step this replica runs (the
  /// preload rides the link while the replica keeps serving; the step that
  /// wants the weights synchronizes on them). Returns the number fetched;
  /// a no-op on a failed/evacuated server or with expert serving disabled.
  std::size_t preload_experts(const std::vector<core::ExpertId>& ids);

  /// Disaggregated serving: true when this replica runs the prefill role.
  [[nodiscard]] bool prefill_role() const { return prefill_role_; }

  /// Prefill-complete releases buffered since the last take_handoffs().
  [[nodiscard]] bool has_handoffs() const { return !handoffs_out_.empty(); }

  /// Drain the buffered prefill-complete releases, in release order. First
  /// applies a pending step completion that ends strictly before `now` (the
  /// cluster's tail drain passes infinite to flush the final step; a commit
  /// at the current event time never applies anything early, preserving the
  /// lazy-completion contract). Prefill-role only.
  [[nodiscard]] std::vector<HandoffRecord> take_handoffs(Duration now);

  /// Metrics for everything served so far. Requires drained().
  [[nodiscard]] ServeReport report() const;

  // --- One-shot entry point ------------------------------------------------

  /// Simulate the whole trace to completion on a fresh server. Deterministic
  /// given the engine's seed and the trace.
  [[nodiscard]] ServeReport run(std::vector<Request> trace);

 private:
  /// Prefill `newly`, run one shared decode step, account it. The step's
  /// scheduler completion is deferred until the clock passes its end.
  void step(const std::vector<RequestState*>& newly);

  /// Apply the deferred complete_step() of the last executed step.
  void apply_pending_completion();

  /// Freeze at the fail-stop instant: apply a pending completion that
  /// landed in time, discard one that did not, clamp the clock.
  void fail_now();

  /// Expert residency refcounts: remember which experts `rq` references so
  /// its departure can release them (satisfying "demand re-homes with the
  /// request"). Pins never protect an expert from ordinary LRU pressure --
  /// they only drive departure eviction.
  void pin_experts(const Request& rq);

  /// Drop request `id`'s pins. A completing or handed-off request leaves its
  /// experts warm (`evict` false); a harvested/evacuated one takes its
  /// demand with it -- experts with no remaining referencing request are
  /// erased from the cache (`evict` true).
  void unpin_experts(std::uint64_t id, bool evict);

  /// Record a mutation: bump version_ and drop the next_event_time() cache.
  void touch() {
    ++version_;
    next_event_valid_ = false;
  }

  core::InferenceEngine& engine_;
  SchedulerConfig cfg_;
  ContinuousBatchScheduler sched_;
  core::EngineState st_;
  Duration start_at_ = Duration::zero();
  FaultSpec fault_;
  KvCache cache_;
  ExpertServingConfig expert_;
  core::ExpertCache expert_cache_;  ///< capacity 0 (inert) when disabled
  Duration expert_fetch_time_ = Duration::zero();  ///< per-expert miss cost
  Duration pending_preload_ = Duration::zero();    ///< rebalance fetches awaiting a step
  /// Expert residency refcounts (see pin_experts/unpin_experts): per-request
  /// pinned experts and how many in-flight requests reference each expert.
  std::unordered_map<std::uint64_t, std::vector<core::ExpertId>> request_experts_;
  std::unordered_map<core::ExpertId, std::int64_t, core::ExpertIdHash> expert_pins_;
  // Disaggregated serving (inert unless prefill_role_):
  DisaggConfig disagg_;
  bool prefill_role_ = false;
  std::vector<HandoffRecord> handoffs_out_;  ///< releases awaiting take_handoffs()
  Duration pending_handoff_ship_ = Duration::zero();  ///< DMA time awaiting a step
  std::uint64_t handoff_count_ = 0;
  std::int64_t handoff_tokens_ = 0;
  Duration handoff_transfer_ = Duration::zero();
  /// Admissions of the in-flight step, held back until its completion
  /// applies: a fail-stop that discards the step must not credit the cache
  /// with hits (or pin state) for work that died with the node.
  std::vector<std::pair<Request, std::int64_t>> pending_admits_;
  std::vector<StepRecord> steps_;
  Duration busy_ = Duration::zero();
  bool completion_pending_ = false;     ///< the last step's effects not yet applied
  Duration pending_end_ = Duration::zero();
  bool failed_ = false;     ///< fail-stop instant reached; frozen forever
  bool harvested_ = false;  ///< stranded requests already handed back
  std::uint64_t version_ = 0;  ///< observable-mutation counter (see version())
  mutable bool next_event_valid_ = false;      ///< cache flag for next_event_time()
  mutable Duration next_event_cache_ = Duration::zero();
};

}  // namespace monde::serve
