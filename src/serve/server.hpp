// The serving simulator: a request trace in, per-request latency and
// aggregate throughput out.
//
// ServerSim drives the engine's step primitives under a batching scheduler:
// it releases arrivals, admits requests (prefilling each on admission), runs
// one shared decode step per iteration over the active batch, and fast-
// forwards through idle gaps. Metric conventions (all measured from request
// arrival):
//
//   TTFT  time to first token  -- completion of the request's first decode
//         step (this simulator models encoder-decoder stacks, so the first
//         token lands one decode step after the prefill);
//   TPOT  time per output token -- (completion - first token) / (n - 1),
//         the steady-state decode cadence;
//   E2E   end-to-end latency    -- completion of the last token.
//
// Aggregate throughput is useful (non-padding) generated tokens divided by
// the simulated makespan.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "core/engine.hpp"
#include "serve/scheduler.hpp"

namespace monde::serve {

/// What one scheduler step processed (for budget audits and utilization).
struct StepRecord {
  std::int64_t index = 0;
  Duration start = Duration::zero();
  Duration end = Duration::zero();
  std::int64_t prefill_tokens = 0;  ///< prompt tokens prefilled this step
  std::int64_t decode_tokens = 0;   ///< decode slots (incl. fixed-mode padding)
};

/// Final per-request latency accounting.
struct RequestMetrics {
  std::uint64_t id = 0;
  std::int64_t prompt_len = 0;
  std::int64_t generated = 0;
  Duration arrival = Duration::zero();
  Duration admitted = Duration::zero();
  Duration first_token = Duration::zero();
  Duration completion = Duration::zero();

  [[nodiscard]] Duration ttft() const { return first_token - arrival; }
  [[nodiscard]] Duration e2e() const { return completion - arrival; }
  [[nodiscard]] Duration tpot() const {
    return generated > 1 ? (completion - first_token) / static_cast<double>(generated - 1)
                         : Duration::zero();
  }
};

/// Everything one serving run produced.
struct ServeReport {
  std::string strategy;
  std::string mode;  ///< "fixed" or "continuous"
  std::vector<RequestMetrics> requests;
  std::vector<StepRecord> steps;
  Duration makespan = Duration::zero();
  std::uint64_t generated_tokens = 0;
  double tokens_per_s = 0.0;
  Percentiles ttft_ms;
  /// All-zero when no request generated more than one token (TPOT is
  /// undefined for single-token responses).
  Percentiles tpot_ms;
  Percentiles e2e_ms;
};

/// Drives one InferenceEngine through a request trace under one scheduler.
class ServerSim {
 public:
  ServerSim(core::InferenceEngine& engine, SchedulerConfig cfg);

  /// Simulate the whole trace to completion. Deterministic given the
  /// engine's seed and the trace.
  [[nodiscard]] ServeReport run(std::vector<Request> trace);

 private:
  core::InferenceEngine& engine_;
  SchedulerConfig cfg_;
};

}  // namespace monde::serve
