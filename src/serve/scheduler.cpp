#include "serve/scheduler.hpp"

#include <algorithm>

namespace monde::serve {

std::string to_string(BatchingMode mode) {
  return mode == BatchingMode::kFixed ? "fixed" : "continuous";
}

void SchedulerConfig::validate() const {
  MONDE_REQUIRE(token_budget > 0, "scheduler needs token_budget > 0, got " << token_budget);
  MONDE_REQUIRE(fixed_batch > 0, "scheduler needs fixed_batch > 0, got " << fixed_batch);
  MONDE_REQUIRE(fixed_batch <= token_budget,
                "fixed_batch (" << fixed_batch << ") must not exceed token_budget ("
                                << token_budget << ")");
  MONDE_REQUIRE(admission_bypass_limit > 0,
                "admission_bypass_limit must be positive, got " << admission_bypass_limit);
}

ContinuousBatchScheduler::ContinuousBatchScheduler(SchedulerConfig cfg) : cfg_{cfg} {
  cfg_.validate();
}

void ContinuousBatchScheduler::push(const Request& rq) {
  MONDE_REQUIRE(!sealed_, "scheduler is sealed; no further requests accepted");
  rq.validate();
  if (!states_.empty()) {
    const Request& last = states_.back().request;
    MONDE_REQUIRE(arrival_order(last, rq),
                  "requests must be pushed in (arrival, id) order: request "
                      << rq.id << " after request " << last.id);
  }
  states_.push_back(RequestState{rq});
  RequestState& rs = states_.back();
  // A resumed request continues at its checkpointed decode depth; the first
  // token (if any surfaced before) keeps its original instant across
  // attempts -- the user already saw it.
  rs.generated = rq.resume.decoded;
  if (rq.resume.decoded > 0) rs.first_token = rq.resume.first_token;
  ++live_;
  owed_tokens_ +=
      (rq.prompt_len - rq.resume.prefilled) + (rq.max_new_tokens - rq.resume.decoded);
}

void ContinuousBatchScheduler::seal() { sealed_ = true; }

void ContinuousBatchScheduler::submit(std::vector<Request> trace) {
  MONDE_REQUIRE(states_.empty() && !sealed_, "submit() needs a fresh scheduler");
  MONDE_REQUIRE(!trace.empty(), "cannot serve an empty trace");
  std::stable_sort(trace.begin(), trace.end(), arrival_order<Request>);
  states_.reserve(trace.size());
  for (const Request& rq : trace) push(rq);
  seal();
}

bool ContinuousBatchScheduler::drained() const {
  return next_pending_ == states_.size() && queued_.empty() && active_.empty();
}

Duration ContinuousBatchScheduler::next_arrival() const {
  return next_pending_ < states_.size() ? states_[next_pending_].request.arrival
                                        : Duration::infinite();
}

void ContinuousBatchScheduler::release_arrivals(Duration now) {
  while (next_pending_ < states_.size() && states_[next_pending_].request.arrival <= now) {
    queued_.push_back(next_pending_);
    ++next_pending_;
  }
}

std::int64_t ContinuousBatchScheduler::discount_for(const Request& rq) const {
  const std::int64_t saved = discount_ ? discount_(rq) : rq.resume.prefilled;
  MONDE_ASSERT(saved >= rq.resume.prefilled && saved <= rq.prompt_len,
               "prefill discount for request " << rq.id << " (" << saved
                                               << ") must lie in [resume.prefilled, prompt_len]");
  return saved;
}

void ContinuousBatchScheduler::mark_admitted(std::size_t idx, std::int64_t saved,
                                             std::vector<RequestState*>& newly) {
  active_.push_back(idx);
  RequestState& rs = states_[idx];
  // Freeze the discount admission budgeted with; the server prices the
  // prefill from exactly this number.
  rs.saved_tokens = saved;
  // The whole prompt-side obligation is discharged this step: the
  // un-discounted part is prefilled now, the rest comes from the cache.
  owed_tokens_ -= rs.request.prompt_len - rs.request.resume.prefilled;
  newly.push_back(&rs);
}

void ContinuousBatchScheduler::take_front(std::int64_t saved,
                                          std::vector<RequestState*>& newly) {
  const std::size_t idx = queued_.front();
  queued_.pop_front();
  mark_admitted(idx, saved, newly);
}

std::vector<RequestState*> ContinuousBatchScheduler::admit_fixed() {
  std::vector<RequestState*> newly;
  // A new batch forms only on an empty server, and waits for a full batch
  // while more arrivals are still due (the classic batching delay). An
  // unsealed scheduler may always receive more arrivals.
  if (!active_.empty() || queued_.empty()) return newly;
  if (static_cast<std::int64_t>(queued_.size()) < cfg_.fixed_batch &&
      (next_pending_ < states_.size() || !sealed_)) {
    return newly;
  }
  const std::size_t take =
      std::min(queued_.size(), static_cast<std::size_t>(cfg_.fixed_batch));
  for (std::size_t i = 0; i < take; ++i) {
    take_front(discount_for(states_[queued_.front()].request), newly);
  }
  return newly;
}

std::vector<RequestState*> ContinuousBatchScheduler::admit_fifo() {
  // Admit while this step's tokens (prefills admitted now + one decode token
  // per slot after admission) stay within the budget. The FIFO head pops in
  // O(1), so a burst of arrivals admits in O(batch), not O(queue^2) as a
  // vector-head erase would.
  std::vector<RequestState*> newly;
  std::int64_t prefill_tokens = 0;
  while (!queued_.empty()) {
    const Request& rq = states_[queued_.front()].request;
    const std::int64_t saved = discount_for(rq);
    const std::int64_t prompt = rq.prompt_len - saved;  // tokens to prefill
    const std::int64_t slots_after =
        static_cast<std::int64_t>(active_.size()) + static_cast<std::int64_t>(newly.size()) + 1;
    const bool fits = prefill_tokens + prompt + slots_after <= cfg_.token_budget;
    // Starvation guard: an over-budget prompt runs alone on an empty server.
    const bool oversized_alone = active_.empty() && newly.empty() &&
                                 prompt + 1 > cfg_.token_budget;
    if (!fits && !oversized_alone) break;
    take_front(saved, newly);
    prefill_tokens += prompt;
    if (oversized_alone) break;
  }
  return newly;
}

std::vector<RequestState*> ContinuousBatchScheduler::admit_size_aware() {
  // Fewest-remaining-tokens first: admit the queued requests owing the
  // fewest (discounted prompt + remaining decode) tokens -- unless a
  // request has been bypassed past the limit, in which case seniority wins
  // and admission stalls until that request fits (the starvation guard).
  //
  // The ranking keys (discount, remaining tokens, bypass state) cannot
  // change inside one admit() call, and the budget only tightens as
  // admissions accumulate, so one ranked pass is equivalent to re-ranking
  // after every admission -- and calls the discount hook once per request
  // instead of O(admitted x queue log queue) times.
  std::vector<RequestState*> newly;
  if (queued_.empty()) return newly;
  struct Candidate {
    std::size_t pos = 0;  ///< position in queued_ (the seniority key)
    std::int64_t saved = 0;
    std::int64_t remaining = 0;
    bool forced = false;  ///< past the bypass limit: seniority beats size
  };
  std::vector<Candidate> order;
  order.reserve(queued_.size());
  for (std::size_t pos = 0; pos < queued_.size(); ++pos) {
    const RequestState& rs = states_[queued_[pos]];
    const std::int64_t saved = discount_for(rs.request);
    order.push_back({pos, saved,
                     (rs.request.prompt_len - saved) +
                         (rs.request.max_new_tokens - rs.generated),
                     rs.bypassed >= cfg_.admission_bypass_limit});
  }
  std::stable_sort(order.begin(), order.end(), [](const Candidate& a, const Candidate& b) {
    if (a.forced != b.forced) return a.forced;  // guarded requests first...
    if (a.forced) return a.pos < b.pos;         // ...by seniority among them
    return a.remaining != b.remaining ? a.remaining < b.remaining : a.pos < b.pos;
  });
  std::vector<bool> taken(queued_.size(), false);
  std::int64_t prefill_tokens = 0;
  for (const Candidate& c : order) {
    const Request& rq = states_[queued_[c.pos]].request;
    const std::int64_t prompt = rq.prompt_len - c.saved;
    const std::int64_t slots_after = static_cast<std::int64_t>(active_.size()) +
                                     static_cast<std::int64_t>(newly.size()) + 1;
    const bool fits = prefill_tokens + prompt + slots_after <= cfg_.token_budget;
    const bool oversized_alone = active_.empty() && newly.empty() &&
                                 prompt + 1 > cfg_.token_budget;
    if (fits || oversized_alone) {
      taken[c.pos] = true;
      mark_admitted(queued_[c.pos], c.saved, newly);
      prefill_tokens += prompt;
      if (oversized_alone) break;
      continue;
    }
    // A request past the bypass limit blocks everything behind it: nothing
    // may leapfrog the guard, so admission is over for this step.
    if (c.forced) break;
  }
  // Starvation credit: a request was bypassed only if a JUNIOR (later
  // queue position) request was admitted past it -- waiting behind one's
  // seniors is ordinary FIFO progress, not a bypass.
  std::size_t last_taken = 0;
  for (std::size_t pos = 0; pos < queued_.size(); ++pos) {
    if (taken[pos]) last_taken = pos;
  }
  for (std::size_t pos = 0; pos < last_taken; ++pos) {
    if (!taken[pos]) ++states_[queued_[pos]].bypassed;
  }
  // Compact the queue in order, dropping the admitted entries.
  std::size_t write = 0;
  for (std::size_t read = 0; read < queued_.size(); ++read) {
    if (!taken[read]) queued_[write++] = queued_[read];
  }
  queued_.resize(write);
  return newly;
}

std::vector<RequestState*> ContinuousBatchScheduler::admit() {
  if (cfg_.mode == BatchingMode::kFixed) return admit_fixed();
  return cfg_.size_aware_admission ? admit_size_aware() : admit_fifo();
}

bool ContinuousBatchScheduler::step_ready() const {
  if (!active_.empty()) return true;
  if (queued_.empty()) return false;
  if (cfg_.mode != BatchingMode::kFixed) return true;
  return static_cast<std::int64_t>(queued_.size()) >= cfg_.fixed_batch ||
         (next_pending_ == states_.size() && sealed_);
}

std::vector<core::DecodeSlot> ContinuousBatchScheduler::slots() const {
  std::vector<core::DecodeSlot> out;
  out.reserve(active_.size());
  for (const std::size_t idx : active_) {
    const RequestState& rs = states_[idx];
    out.push_back({rs.request.id, rs.generated, rs.request.prompt_len});
  }
  return out;
}

std::vector<moe::MoeLayerWork> ContinuousBatchScheduler::step_works(
    moe::WorkloadGenerator& gen) const {
  MONDE_REQUIRE(!active_.empty(), "no active requests to route");
  std::vector<std::vector<moe::MoeLayerWork>> draws;
  draws.reserve(active_.size());
  for (const std::size_t idx : active_) {
    const RequestState& rs = states_[idx];
    draws.push_back(gen.decoder_step_for(rs.request.id, rs.generated));
  }
  return moe::WorkloadGenerator::merge_layer_works(draws);
}

std::vector<Duration> ContinuousBatchScheduler::waiting_arrivals() const {
  std::vector<Duration> out;
  out.reserve(states_.size() - next_pending_ + queued_.size());
  for (std::size_t i = next_pending_; i < states_.size(); ++i) {
    out.push_back(states_[i].request.arrival);
  }
  for (const std::size_t idx : queued_) out.push_back(states_[idx].request.arrival);
  return out;
}

std::vector<Request> ContinuousBatchScheduler::abort_unfinished() {
  std::vector<Request> stranded;
  std::vector<RequestState> kept;
  kept.reserve(states_.size());
  for (RequestState& rs : states_) {
    if (rs.done) {
      kept.push_back(std::move(rs));
    } else {
      Request rq = rs.request;
      // Checkpointed progress: an applied step since admission means the
      // whole prompt and `generated` decode tokens were resident at the
      // last completed step boundary. Anything short of that (waiting, or
      // admitted into a step whose completion never applied -- stranded
      // mid-prefill) keeps the resume state it arrived with. Whether the
      // retry USES the annotation is the cluster's cache-survival policy.
      if (rs.generated > rq.resume.decoded) {
        rq.resume.prefilled = rq.prompt_len;
        rq.resume.decoded = rs.generated;
        rq.resume.first_token = rs.first_token;
      }
      stranded.push_back(rq);
    }
  }
  states_ = std::move(kept);
  queued_.clear();
  active_.clear();
  next_pending_ = states_.size();
  live_ = 0;
  owed_tokens_ = 0;
  sealed_ = true;  // an aborted replica never accepts again
  return stranded;
}

std::vector<Request> ContinuousBatchScheduler::release_prefilled() {
  std::vector<Request> released;
  for (const std::size_t idx : active_) {
    RequestState& rs = states_[idx];
    if (rs.done) continue;
    // Only requests whose admission step has completed are releasable: the
    // step advanced their decode depth past what they arrived with, which is
    // the same signal abort_unfinished() keys its checkpoint annotation on.
    if (rs.generated <= rs.request.resume.decoded) continue;
    Request rq = rs.request;
    rq.resume.prefilled = rq.prompt_len;
    rq.resume.decoded = rs.generated;
    rq.resume.first_token = rs.first_token;
    released.push_back(rq);
    rs.done = true;  // leaves the batch; handed_off keeps reporting honest
    rs.handed_off = true;
    --live_;
    owed_tokens_ -= rs.request.max_new_tokens - rs.generated;
  }
  std::erase_if(active_, [this](std::size_t idx) { return states_[idx].done; });
  std::stable_sort(released.begin(), released.end(), arrival_order<Request>);
  return released;
}

StepOutcome ContinuousBatchScheduler::complete_step(Duration end) {
  StepOutcome out;
  bool all_done = true;
  for (const std::size_t idx : active_) {
    RequestState& rs = states_[idx];
    // A fixed-mode padded slot surfaced no token: its decode depth stays
    // frozen at the final generated count (the KV cache stops growing).
    if (rs.done) continue;
    ++rs.generated;
    --owed_tokens_;
    out.advanced.push_back(rs.request.id);
    if (rs.generated == 1) rs.first_token = end;
    if (rs.generated == rs.request.max_new_tokens) {
      rs.done = true;
      rs.completion = end;
      --live_;
      out.finished.push_back(rs.request.id);
    }
    all_done = all_done && rs.done;
  }
  if (cfg_.mode == BatchingMode::kFixed) {
    // Padded slots keep running until the whole batch drains.
    if (all_done) active_.clear();
    return out;
  }
  std::erase_if(active_, [this](std::size_t idx) { return states_[idx].done; });
  return out;
}

}  // namespace monde::serve
