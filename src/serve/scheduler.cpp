#include "serve/scheduler.hpp"

#include <algorithm>

namespace monde::serve {

std::string to_string(BatchingMode mode) {
  return mode == BatchingMode::kFixed ? "fixed" : "continuous";
}

void SchedulerConfig::validate() const {
  MONDE_REQUIRE(token_budget > 0, "scheduler needs token_budget > 0, got " << token_budget);
  MONDE_REQUIRE(fixed_batch > 0, "scheduler needs fixed_batch > 0, got " << fixed_batch);
  MONDE_REQUIRE(fixed_batch <= token_budget,
                "fixed_batch (" << fixed_batch << ") must not exceed token_budget ("
                                << token_budget << ")");
}

ContinuousBatchScheduler::ContinuousBatchScheduler(SchedulerConfig cfg) : cfg_{cfg} {
  cfg_.validate();
}

void ContinuousBatchScheduler::push(const Request& rq) {
  MONDE_REQUIRE(!sealed_, "scheduler is sealed; no further requests accepted");
  rq.validate();
  if (!states_.empty()) {
    const Request& last = states_.back().request;
    MONDE_REQUIRE(arrival_order(last, rq),
                  "requests must be pushed in (arrival, id) order: request "
                      << rq.id << " after request " << last.id);
  }
  states_.push_back(RequestState{rq});
  ++live_;
  owed_tokens_ += rq.prompt_len + rq.max_new_tokens;
}

void ContinuousBatchScheduler::seal() { sealed_ = true; }

void ContinuousBatchScheduler::submit(std::vector<Request> trace) {
  MONDE_REQUIRE(states_.empty() && !sealed_, "submit() needs a fresh scheduler");
  MONDE_REQUIRE(!trace.empty(), "cannot serve an empty trace");
  std::stable_sort(trace.begin(), trace.end(), arrival_order<Request>);
  states_.reserve(trace.size());
  for (const Request& rq : trace) push(rq);
  seal();
}

bool ContinuousBatchScheduler::drained() const {
  return next_pending_ == states_.size() && queued_.empty() && active_.empty();
}

Duration ContinuousBatchScheduler::next_arrival() const {
  return next_pending_ < states_.size() ? states_[next_pending_].request.arrival
                                        : Duration::infinite();
}

void ContinuousBatchScheduler::release_arrivals(Duration now) {
  while (next_pending_ < states_.size() && states_[next_pending_].request.arrival <= now) {
    queued_.push_back(next_pending_);
    ++next_pending_;
  }
}

std::vector<RequestState*> ContinuousBatchScheduler::admit() {
  std::vector<RequestState*> newly;
  if (cfg_.mode == BatchingMode::kFixed) {
    // A new batch forms only on an empty server, and waits for a full batch
    // while more arrivals are still due (the classic batching delay). An
    // unsealed scheduler may always receive more arrivals.
    if (!active_.empty() || queued_.empty()) return newly;
    if (static_cast<std::int64_t>(queued_.size()) < cfg_.fixed_batch &&
        (next_pending_ < states_.size() || !sealed_)) {
      return newly;
    }
    const std::size_t take =
        std::min(queued_.size(), static_cast<std::size_t>(cfg_.fixed_batch));
    for (std::size_t i = 0; i < take; ++i) {
      active_.push_back(queued_.front());
      newly.push_back(&states_[queued_.front()]);
      owed_tokens_ -= states_[queued_.front()].request.prompt_len;  // prefilled this step
      queued_.pop_front();
    }
    return newly;
  }

  // Continuous: admit while this step's tokens (prefills admitted now + one
  // decode token per slot after admission) stay within the budget. The FIFO
  // head pops in O(1), so a burst of arrivals admits in O(batch), not
  // O(queue^2) as a vector-head erase would.
  std::int64_t prefill_tokens = 0;
  while (!queued_.empty()) {
    const std::size_t idx = queued_.front();
    const std::int64_t prompt = states_[idx].request.prompt_len;
    const std::int64_t slots_after =
        static_cast<std::int64_t>(active_.size()) + static_cast<std::int64_t>(newly.size()) + 1;
    const bool fits = prefill_tokens + prompt + slots_after <= cfg_.token_budget;
    // Starvation guard: an over-budget prompt runs alone on an empty server.
    const bool oversized_alone = active_.empty() && newly.empty() &&
                                 prompt + 1 > cfg_.token_budget;
    if (!fits && !oversized_alone) break;
    queued_.pop_front();
    active_.push_back(idx);
    newly.push_back(&states_[idx]);
    owed_tokens_ -= prompt;  // prefilled this step
    prefill_tokens += prompt;
    if (oversized_alone) break;
  }
  return newly;
}

bool ContinuousBatchScheduler::step_ready() const {
  if (!active_.empty()) return true;
  if (queued_.empty()) return false;
  if (cfg_.mode != BatchingMode::kFixed) return true;
  return static_cast<std::int64_t>(queued_.size()) >= cfg_.fixed_batch ||
         (next_pending_ == states_.size() && sealed_);
}

std::vector<core::DecodeSlot> ContinuousBatchScheduler::slots() const {
  std::vector<core::DecodeSlot> out;
  out.reserve(active_.size());
  for (const std::size_t idx : active_) {
    const RequestState& rs = states_[idx];
    out.push_back({rs.request.id, rs.generated, rs.request.prompt_len});
  }
  return out;
}

std::vector<moe::MoeLayerWork> ContinuousBatchScheduler::step_works(
    moe::WorkloadGenerator& gen) const {
  MONDE_REQUIRE(!active_.empty(), "no active requests to route");
  std::vector<std::vector<moe::MoeLayerWork>> draws;
  draws.reserve(active_.size());
  for (const std::size_t idx : active_) {
    const RequestState& rs = states_[idx];
    draws.push_back(gen.decoder_step_for(rs.request.id, rs.generated));
  }
  return moe::WorkloadGenerator::merge_layer_works(draws);
}

std::vector<Duration> ContinuousBatchScheduler::waiting_arrivals() const {
  std::vector<Duration> out;
  out.reserve(states_.size() - next_pending_ + queued_.size());
  for (std::size_t i = next_pending_; i < states_.size(); ++i) {
    out.push_back(states_[i].request.arrival);
  }
  for (const std::size_t idx : queued_) out.push_back(states_[idx].request.arrival);
  return out;
}

std::vector<Request> ContinuousBatchScheduler::abort_unfinished() {
  std::vector<Request> stranded;
  std::vector<RequestState> kept;
  kept.reserve(states_.size());
  for (RequestState& rs : states_) {
    if (rs.done) {
      kept.push_back(std::move(rs));
    } else {
      stranded.push_back(rs.request);
    }
  }
  states_ = std::move(kept);
  queued_.clear();
  active_.clear();
  next_pending_ = states_.size();
  live_ = 0;
  owed_tokens_ = 0;
  sealed_ = true;  // a failed replica never accepts again
  return stranded;
}

void ContinuousBatchScheduler::complete_step(Duration end) {
  bool all_done = true;
  for (const std::size_t idx : active_) {
    RequestState& rs = states_[idx];
    // A fixed-mode padded slot surfaced no token: its decode depth stays
    // frozen at the final generated count (the KV cache stops growing).
    if (rs.done) continue;
    ++rs.generated;
    --owed_tokens_;
    if (rs.generated == 1) rs.first_token = end;
    if (rs.generated == rs.request.max_new_tokens) {
      rs.done = true;
      rs.completion = end;
      --live_;
    }
    all_done = all_done && rs.done;
  }
  if (cfg_.mode == BatchingMode::kFixed) {
    // Padded slots keep running until the whole batch drains.
    if (all_done) active_.clear();
    return;
  }
  std::erase_if(active_, [this](std::size_t idx) { return states_[idx].done; });
}

}  // namespace monde::serve
