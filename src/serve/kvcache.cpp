#include "serve/kvcache.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace monde::serve {

void PrefixCacheConfig::validate() const {
  if (!enabled) return;
  MONDE_REQUIRE(capacity_tokens > 0, "prefix cache needs capacity_tokens > 0");
  MONDE_REQUIRE(kv_bytes_per_token.count() > 0, "prefix cache needs kv_bytes_per_token > 0");
  MONDE_REQUIRE(migration_bw.as_bytes_per_sec() > 0.0,
                "prefix cache needs a positive migration bandwidth");
  MONDE_REQUIRE(checkpoint_interval_tokens >= 0,
                "checkpoint_interval_tokens must be >= 0");
}

KvCache::KvCache(PrefixCacheConfig cfg) : cfg_{cfg} { cfg_.validate(); }

std::int64_t KvCache::saved_tokens(const Request& rq) const {
  std::int64_t saved = rq.resume.prefilled;
  if (cfg_.enabled && rq.prefix_id != 0) {
    const auto it = shared_.find(rq.prefix_id);
    if (it != shared_.end()) {
      // Only the part of the shared prefix this request actually carries.
      saved = std::max(saved, std::min(it->second->tokens, rq.shared_prefix_len));
    }
  }
  return std::min(saved, rq.prompt_len);
}

void KvCache::admit(const Request& rq, std::int64_t saved) {
  if (!cfg_.enabled) return;
  ++stats_.lookups;
  if (saved > 0) ++stats_.hits;
  stats_.saved_tokens += saved;
  // After the admission step the request's whole frontier is resident
  // (prefilled or cache-served) -- but its shared prefix is one physical
  // copy counted in the SharedEntry below, so the request pins only the
  // tokens unique to it: the prompt beyond the prefix plus resumed decode.
  const bool has_prefix = rq.prefix_id != 0 && rq.shared_prefix_len > 0;
  const std::int64_t unique =
      rq.prompt_len - (has_prefix ? rq.shared_prefix_len : 0) + rq.resume.decoded;
  MONDE_REQUIRE(
      pinned_.emplace(rq.id, Pinned{unique, has_prefix ? rq.prefix_id : 0}).second,
      "request " << rq.id << " admitted to the prefix cache twice");
  pinned_tokens_ += unique;
  // The request's shared prefix becomes (or stays) resident and referenced;
  // later arrivals of the same group hit it. Touch it freshest either way.
  if (has_prefix) {
    const auto it = shared_.find(rq.prefix_id);
    if (it == shared_.end()) {
      lru_.push_back(SharedEntry{rq.prefix_id, rq.shared_prefix_len, /*in_use=*/1});
      shared_.emplace(rq.prefix_id, std::prev(lru_.end()));
      shared_tokens_ += rq.shared_prefix_len;
      signature_add(rq.prefix_id);
    } else {
      if (rq.shared_prefix_len > it->second->tokens) {
        shared_tokens_ += rq.shared_prefix_len - it->second->tokens;
        it->second->tokens = rq.shared_prefix_len;
      }
      ++it->second->in_use;
      lru_.splice(lru_.end(), lru_, it->second);
    }
  }
  evict_over_capacity();
  note_resident_peak();
}

void KvCache::decode_token(std::uint64_t id) {
  if (!cfg_.enabled) return;
  const auto it = pinned_.find(id);
  MONDE_REQUIRE(it != pinned_.end(), "decode token for request " << id << " not in the cache");
  ++it->second.tokens;
  ++pinned_tokens_;
  evict_over_capacity();
  note_resident_peak();
}

void KvCache::complete(std::uint64_t id) {
  if (!cfg_.enabled) return;
  const auto it = pinned_.find(id);
  MONDE_REQUIRE(it != pinned_.end(), "request " << id << " released but never admitted");
  if (it->second.prefix_id != 0) {
    const auto shared = shared_.find(it->second.prefix_id);
    // The entry cannot have been evicted while referenced.
    MONDE_ASSERT(shared != shared_.end(),
                 "shared prefix " << it->second.prefix_id << " vanished while in use");
    --shared->second->in_use;
    // The prefix was in active use until this instant: refresh it.
    lru_.splice(lru_.end(), lru_, shared->second);
  }
  pinned_tokens_ -= it->second.tokens;
  pinned_.erase(it);
  // Dropping a reference can unlock eviction of an over-capacity entry.
  evict_over_capacity();
}

void KvCache::drop_pinned() {
  pinned_.clear();
  pinned_tokens_ = 0;
  for (SharedEntry& entry : lru_) entry.in_use = 0;
}

Duration KvCache::transfer_time_for(std::int64_t tokens) const {
  MONDE_REQUIRE(tokens >= 0, "cannot transfer a negative token count");
  return cfg_.transfer_time_for(tokens);
}

void KvCache::evict_over_capacity() {
  // Pinned state is never evicted, and neither is a shared prefix an active
  // request references; unreferenced retained prefixes go LRU-first until
  // the total fits (or nothing evictable is left).
  auto it = lru_.begin();
  while (pinned_tokens_ + shared_tokens_ > cfg_.capacity_tokens && it != lru_.end()) {
    if (it->in_use > 0) {
      ++it;
      continue;
    }
    shared_tokens_ -= it->tokens;
    shared_.erase(it->prefix_id);
    signature_remove(it->prefix_id);
    it = lru_.erase(it);
    ++stats_.evictions;
  }
}

void KvCache::note_resident_peak() {
  stats_.resident_peak = std::max(stats_.resident_peak, resident_tokens());
}

void KvCache::signature_add(std::uint64_t prefix_id) {
  const int bit = prefix_signature_bit(prefix_id);
  if (sig_counts_[bit]++ == 0) signature_ |= std::uint64_t{1} << bit;
}

void KvCache::signature_remove(std::uint64_t prefix_id) {
  const int bit = prefix_signature_bit(prefix_id);
  MONDE_ASSERT(sig_counts_[bit] > 0, "prefix signature bit " << bit << " underflow");
  if (--sig_counts_[bit] == 0) signature_ &= ~(std::uint64_t{1} << bit);
}

}  // namespace monde::serve
