// Replica fault models and health-check configuration for cluster serving.
//
// Two fault shapes cover the failure modes a fleet-level dispatcher must
// survive (the classic fail-stop / slow-down dichotomy of distributed
// serving):
//
//   * fail-stop  -- the replica dies at `fail_at`: steps whose effects would
//     land after the instant of death are lost with the node, and every
//     accepted-but-unfinished request strands until the cluster detects the
//     failure and re-dispatches it elsewhere (ServerSim::harvest_stranded).
//   * slow-down  -- steps *starting* inside [slow_from, slow_until) run
//     `slow_factor` times slower, modelling thermal throttling, a noisy
//     neighbour, or a degraded link. Work is never lost; latency stretches.
//
// Failure *detection* is modelled by heartbeat polling (HealthConfig): the
// cluster polls each replica every `heartbeat_interval`; a replica whose last
// successful poll is older than `heartbeat_timeout` is marked dead and never
// dispatched to again. Detection therefore lags the actual death by up to
// one polling interval plus the timeout -- requests dispatched inside that
// window strand and are retried like the rest.
//
// Everything here is pure policy/configuration: deterministic, engine-free,
// and unit-tested without a simulator.
#pragma once

#include <limits>

#include "common/units.hpp"

namespace monde::serve {

/// Fault plan for one replica. Default-constructed = a healthy replica.
/// Times are absolute simulated instants (`Duration` is nanosecond-resolution
/// simulated time throughout the serving layer).
struct FaultSpec {
  /// Fail-stop instant: at `fail_at` the replica stops mid-flight. A step
  /// whose effects would land strictly after `fail_at` is lost (its requests
  /// strand); a step completing at or before `fail_at` counts. infinite()
  /// (the default) means the replica never fails.
  Duration fail_at = Duration::infinite();

  /// Slow-down window: a step *starting* in [slow_from, slow_until) takes
  /// `slow_factor` times its fault-free span. The window is half-open and
  /// empty by default.
  Duration slow_from = Duration::zero();
  Duration slow_until = Duration::zero();
  double slow_factor = 1.0;  ///< >= 1; 1.0 disables the slow-down

  [[nodiscard]] bool fail_stop() const { return fail_at < Duration::infinite(); }
  [[nodiscard]] bool any() const { return fail_stop() || slow_factor != 1.0; }

  /// Dilation factor for a step starting at `start` (1.0 outside the window).
  [[nodiscard]] double factor_at(Duration start) const {
    return (slow_factor != 1.0 && start >= slow_from && start < slow_until) ? slow_factor
                                                                            : 1.0;
  }

  void validate() const;
};

/// How the cluster judges replica health at dispatch time.
struct HealthConfig {
  /// Heartbeat polling cadence. A poll at instant p succeeds iff the replica
  /// is alive at p (p strictly before its fail-stop instant).
  Duration heartbeat_interval = Duration::millis(2);

  /// A replica whose last successful poll is older than this is declared
  /// dead: its stranded requests are harvested for retry and it is excluded
  /// from dispatch permanently. Must be >= heartbeat_interval (a healthy
  /// replica's heartbeat age never exceeds one interval).
  Duration heartbeat_timeout = Duration::millis(6);

  /// Smoothing for the per-replica step-duration EWMA surfaced in
  /// ReplicaSnapshot::step_ewma_ms (weight of the newest step).
  double ewma_alpha = 0.25;

  /// Soft slow-replica filter: deprioritize (skip while a faster peer
  /// exists) any replica whose step-duration EWMA exceeds this multiple of
  /// the fleet median. Infinity (the default) disables the filter, which
  /// keeps fault-free runs bit-identical to health-unaware dispatch --
  /// enable it only when slow-down faults (or genuinely degraded hardware)
  /// are in play, and mind that it will also divert load from legitimately
  /// slower replicas of a heterogeneous fleet.
  double slow_ewma_factor = std::numeric_limits<double>::infinity();

  void validate() const;
};

/// Instant of the last successful heartbeat poll at or before `now` for a
/// replica that dies at `fail_at` (infinite = never). Polls run at
/// k * heartbeat_interval, k = 0, 1, ...; the k = 0 poll always succeeds
/// (a replica is alive at its own start).
[[nodiscard]] Duration last_ok_heartbeat(Duration now, Duration fail_at,
                                         const HealthConfig& cfg);

/// Instant at which a fail-stop at `fail_at` is *detected*: the first moment
/// the replica's heartbeat age exceeds the timeout. Never earlier than
/// `fail_at` itself.
[[nodiscard]] Duration failure_detection_time(Duration fail_at, const HealthConfig& cfg);

}  // namespace monde::serve
