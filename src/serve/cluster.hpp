// Multi-replica cluster serving: N replica servers behind one dispatcher.
//
// The paper argues MoNDE makes sparse-MoE serving cost-effective per node;
// a production deployment then scales out by putting a fleet of such nodes
// behind a load balancer. ClusterSim models exactly that: each replica is a
// full ServerSim (its own InferenceEngine, expert-execution strategy,
// scheduler, and routing seed -- replicas may be heterogeneous, e.g. some
// MD+LB and some GPU+PM), and a pluggable Dispatcher (dispatch.hpp) routes
// every request at its arrival instant against the replicas' live queue
// state. Replicas are interleaved in simulated time through ServerSim's
// incremental event API: before each dispatch decision every replica is
// advanced to the arrival instant, so completions up to that point are
// reflected in the snapshots the policy sees.
//
// The report carries both per-replica ServeReports and fleet-wide
// aggregates: latency percentiles over the union of all requests, total
// tokens/s over the fleet makespan, per-replica utilization, and a
// max-over-mean busy-time imbalance factor (1.0 = perfectly balanced).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "serve/dispatch.hpp"
#include "serve/server.hpp"

namespace monde::serve {

/// What distinguishes one replica from another. The platform (SystemConfig),
/// model, and skew profile are cluster-wide; strategy, scheduler, and the
/// routing seed are per replica.
struct ReplicaSpec {
  core::StrategyKind strategy = core::StrategyKind::kMondeLoadBalanced;
  SchedulerConfig sched;
  std::uint64_t seed = 42;  ///< workload-routing seed; give replicas distinct seeds
};

/// Homogeneous fleet helper: `n` replicas of one strategy/scheduler with
/// seeds seed0, seed0+1, ... (distinct seeds decorrelate the replicas'
/// routing draws, as distinct traffic would).
[[nodiscard]] std::vector<ReplicaSpec> uniform_fleet(std::size_t n,
                                                     core::StrategyKind strategy,
                                                     SchedulerConfig sched,
                                                     std::uint64_t seed0 = 1);

/// One replica's slice of a cluster run.
struct ReplicaReport {
  std::string name;  ///< "replica<i> (<strategy>)"
  ServeReport serve;
  std::size_t dispatched = 0;  ///< requests this replica received
  double utilization = 0.0;    ///< busy time / fleet makespan
};

/// Everything one cluster run produced.
struct ClusterReport {
  std::string policy;
  std::vector<ReplicaReport> replicas;
  /// Fleet-wide union of every replica's per-request metrics, in
  /// (arrival, id) order. Exactly a permutation of the input trace.
  std::vector<RequestMetrics> requests;
  Duration makespan = Duration::zero();  ///< latest replica completion
  std::uint64_t generated_tokens = 0;
  double tokens_per_s = 0.0;
  Percentiles ttft_ms;
  Percentiles tpot_ms;  ///< all-zero when no request generated > 1 token
  Percentiles e2e_ms;
  /// Max-over-mean of per-replica busy time: 1.0 = perfectly balanced.
  double imbalance = 0.0;
};

/// A fleet of replica servers interleaved in simulated time.
class ClusterSim {
 public:
  ClusterSim(const core::SystemConfig& sys, const moe::MoeModelConfig& model,
             const moe::SkewProfile& profile, const std::vector<ReplicaSpec>& specs);

  [[nodiscard]] std::size_t size() const { return replicas_.size(); }

  /// Serve `trace` (sorted by (arrival, id) internally), dispatching each
  /// request at its arrival instant via `dispatcher`. Call once.
  [[nodiscard]] ClusterReport run(std::vector<Request> trace, Dispatcher& dispatcher);

 private:
  struct Replica {
    std::string name;
    std::unique_ptr<core::InferenceEngine> engine;
    std::unique_ptr<ServerSim> server;
    std::size_t dispatched = 0;
  };

  std::vector<Replica> replicas_;
  bool used_ = false;
};

}  // namespace monde::serve
