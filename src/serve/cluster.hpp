// Multi-replica cluster serving: an elastic fleet of replica servers behind
// one health-checked dispatcher.
//
// The paper argues MoNDE makes sparse-MoE serving cost-effective per node;
// a production deployment then scales out by putting a fleet of such nodes
// behind a load balancer. ClusterSim models exactly that: each replica is a
// full ServerSim (its own InferenceEngine, expert-execution strategy,
// scheduler, and routing seed -- replicas may be heterogeneous, e.g. some
// MD+LB and some GPU+PM), and a pluggable Dispatcher (dispatch.hpp) routes
// every request at its arrival instant against the replicas' live queue
// state. Replicas are interleaved in simulated time through ServerSim's
// incremental event API: before each dispatch decision every replica is
// advanced to the arrival instant, so completions up to that point are
// reflected in the snapshots the policy sees.
//
// On top of that base (PR 3), the cluster is elastic and failure-aware:
//
//   * Autoscaling -- pass an Autoscaler (autoscale.hpp) to run() and the
//     fleet is resized against queue pressure at a fixed evaluation cadence.
//     Scale-ups spawn replicas of `growth` (default: specs[0], faults
//     cleared) with a modelled cold start: the new replica accepts and
//     queues requests immediately but runs no step until spawn + warmup.
//     Scale-downs retire the accepting replica owing the fewest tokens; it
//     drains its queue and then idles, excluded from dispatch.
//   * Failure injection -- each ReplicaSpec may carry a FaultSpec
//     (fault.hpp): fail-stop at an instant, or a slow-down window priced
//     through ServerSim's steps. Fail-stop detection is heartbeat-based
//     (HealthConfig): the dispatcher keeps feeding a dead replica until its
//     heartbeat goes stale, then the replica is excluded permanently, its
//     stranded requests are harvested and re-dispatched to healthy replicas
//     after `retry_timeout` (retries restart from scratch; fleet metrics
//     stay keyed to the original arrival so the loss lands in the tail).
//
//   * Prefix caching + partial-progress recovery -- with
//     ClusterConfig::cache enabled, every replica carries a prefix/KV cache
//     (kvcache.hpp): shared prompt prefixes skip their prefill, fail-stop
//     retries can resume from the last checkpointed step
//     (`survive_failstop`, surviving-cache mode) instead of restarting, and
//     scale-down retirement can live-migrate a retiree's unfinished
//     requests to the surviving fleet (`migrate_on_retire`) -- both priced
//     at a modelled per-token KV transfer cost, and both surfacing in the
//     event log and the retry/migration counters.
//
// With no autoscaler, no faults, and the cache disabled, run() degenerates
// to exactly the classic dispatch loop -- pinned bit-identical by
// tests/test_cluster.cpp.
//
// Scale (PR 6): run() is driven by an indexed event calendar -- a
// lazy-deletion min-heap over per-replica server events (keyed (time,
// replica), entries tagged with ServerSim::version() and discarded when the
// version moved on) merged with the arrival stream, the retry/migration
// queue, sorted fail-stop/detection cursors, and the autoscale tick -- so
// each cluster event advances only the replicas that actually have work
// before it, instead of scanning the whole fleet. Dispatch likewise reads an
// incrementally maintained index of accepting-replica snapshots (updated
// only when a replica's server mutates) rather than rebuilding every
// snapshot per request; the slow-EWMA health filter, when enabled, is part
// of the same index (a running median over the eligible EWMAs and a
// write-through maintained fast set), so a finite slow_ewma_factor no
// longer forces per-dispatch rebuilds. Arrivals may be consumed lazily from
// an ArrivalStream (arrivals.hpp), so a million-request trace is never
// materialized. The calendar loop is proven bit-identical to the classic
// scan-everything loop (ClusterConfig::reference_loop, kept for diff
// tests); one caveat: in the fast path the time-varying snapshot fields
// (heartbeat_age_ms, and warming once a replica is warm) are refreshed only
// for replicas where they can change eligibility or behavior -- the stock
// policies never read them, and eligibility is provably unaffected, but a
// custom Dispatcher needing exact per-dispatch heartbeat ages for healthy
// replicas should set reference_loop.
//
// Parallelism (PR 7): with ClusterConfig::threads > 1 the calendar loop
// fans each event's advancement batch (the replicas with server events
// before the event's instant) out to a common::TaskPool. Replica servers
// are mutually independent -- the only state they share is the NdpCoreSim,
// whose shape memo is a concurrent table with canonical (deterministic)
// values -- so the batch advances in parallel and the per-replica
// write-backs (EWMA fold, snapshot-index write-through, calendar re-push)
// then commit sequentially in ascending replica order. That fixed commit
// order makes every counter, percentile, and RNG draw independent of thread
// scheduling: runs are bit-identical across thread counts, pinned by
// tests/test_calendar_diff.cpp at 1-8 threads. See ARCHITECTURE.md's
// "Parallel execution model".
//
// The report carries per-replica ServeReports and fleet-wide aggregates:
// latency percentiles over the union of all requests (re-based to original
// arrivals), total tokens/s over the fleet makespan, alive-time-weighted
// per-replica and fleet utilization, a max-over-mean busy-time imbalance
// factor (1.0 = perfectly balanced), and the scaling/failure event log.
//
// Ownership: ClusterSim copies the platform/model/profile configuration and
// owns every replica's engine and server. All replicas (including ones
// spawned mid-run) share one NdpCoreSim so expert-shape latencies memoize
// across the fleet; the shared_ptr keeps it alive for the cluster's
// lifetime, and the sharing is timing-neutral (see test_fastpath_diff).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "moe/workload.hpp"
#include "serve/arrivals.hpp"
#include "serve/autoscale.hpp"
#include "serve/disagg.hpp"
#include "serve/dispatch.hpp"
#include "serve/expert.hpp"
#include "serve/server.hpp"

namespace monde::serve {

/// What distinguishes one replica from another. The platform (SystemConfig),
/// model, and skew profile are cluster-wide; strategy, scheduler, routing
/// seed, and fault plan are per replica.
struct ReplicaSpec {
  core::StrategyKind strategy = core::StrategyKind::kMondeLoadBalanced;
  SchedulerConfig sched;
  std::uint64_t seed = 42;  ///< workload-routing seed; give replicas distinct seeds
  FaultSpec fault;          ///< injected fault plan (default: healthy)
};

/// Homogeneous fleet helper: `n` replicas of one strategy/scheduler with
/// seeds seed0, seed0+1, ... (distinct seeds decorrelate the replicas'
/// routing draws, as distinct traffic would).
[[nodiscard]] std::vector<ReplicaSpec> uniform_fleet(std::size_t n,
                                                     core::StrategyKind strategy,
                                                     SchedulerConfig sched,
                                                     std::uint64_t seed0 = 1);

/// Cluster-wide behavior knobs (health checking, retry, elasticity, prefix
/// caching). The defaults are inert for a fault-free, autoscaler-less run.
struct ClusterConfig {
  HealthConfig health;
  /// Delay between detecting a replica failure and re-dispatching its
  /// stranded requests (the client/LB retry backoff).
  Duration retry_timeout = Duration::millis(2);
  /// Cold-start span of an autoscaled replica: it accepts requests from the
  /// spawn instant but runs no step until spawn + warmup (expert placement).
  Duration warmup = Duration::millis(10);
  /// Autoscaler evaluation cadence: ticks at k * period while arrivals or
  /// retries remain, and keeps ticking through the drain phase while any
  /// replica still holds work -- drain-phase ticks may only scale DOWN
  /// (spawning capacity no arrival will ever reach is pure waste), which is
  /// what lets late scale-downs release idle replicas before the fleet
  /// makespan bills them.
  Duration autoscale_period = Duration::millis(5);
  /// Per-replica prefix/KV cache (kvcache.hpp). Disabled by default, which
  /// pins the cache-less behavior bit-identically. When enabled it also
  /// governs re-dispatch: `survive_failstop` resumes fail-stop retries from
  /// the last checkpoint, and `migrate_on_retire` live-migrates a retiring
  /// replica's unfinished requests -- both priced at the configured
  /// transfer cost per resident token.
  PrefixCacheConfig cache;
  /// Expert-aware serving (serve/expert.hpp). Disabled by default, which
  /// pins the expert-oblivious behavior bit-identically. When enabled,
  /// every dispatched request gets an ExpertProfile from a cluster-level
  /// profiling WorkloadGenerator (seeded by `expert.profile_seed`), every
  /// replica prices expert-miss fetches into its steps, gating-aware
  /// dispatchers read the residency signatures, hot experts are rebalanced
  /// across the fleet at `expert.rebalance_period`, and the pruned-expert
  /// degraded mode truncates profiles dispatched onto overloaded replicas.
  ExpertServingConfig expert;
  /// Disaggregated prefill/decode serving (serve/disagg.hpp). Disabled by
  /// default, which pins the unified-fleet behavior bit-identically. When
  /// enabled, boot replicas [0, disagg.prefill_replicas) take the prefill
  /// role: new arrivals are dispatched to the prefill pool only; the moment
  /// a request's prefill completes it is handed off -- its KV frontier ships
  /// over `disagg.handoff_link`, priced per resident token -- and re-enters
  /// dispatch as a checkpointed resume routed to the decode pool
  /// (Request::decode_phase()). Autoscaling grows the pool furthest below
  /// its boot share and never retires a pool's last member; a decode
  /// replica's fail-stop re-homes its in-flight handoffs within the decode
  /// pool when the checkpoint survives (ClusterConfig::cache). Requires
  /// continuous batching on every replica.
  DisaggConfig disagg;
  /// Measure per-phase wall-clock (advance / dispatch / commit) into the
  /// report's phase_*_s fields, for the perf-trend dashboard: the
  /// advancement phase parallelizes across threads while dispatch and
  /// commit stay sequential, and these counters show which dominates.
  /// Off by default -- the steady_clock reads are pure overhead otherwise.
  /// Simulated results are identical either way.
  bool measure_phases = false;
  /// Record the scaling/failure timeline (ClusterReport::events), detail
  /// strings included. Off, events are not built at all -- the counters
  /// (retries, migrations, peak_replicas) and every other report field are
  /// unaffected -- which large sweeps (bench/serve_scale) want: the detail
  /// strings are pure allocation cost when nobody reads them.
  bool event_log_enabled = true;
  /// Run the classic O(replicas)-per-event loop instead of the indexed
  /// event calendar. The two are bit-identical (pinned by
  /// tests/test_calendar_diff.cpp); the reference loop exists for those diff
  /// tests and for custom dispatchers that want exact time-varying snapshot
  /// fields (see the file comment).
  bool reference_loop = false;
  /// Worker threads for the parallel advancement phase (the calling thread
  /// counts, so 1 = fully sequential, no pool, no behavior risk). Results
  /// are bit-identical across thread counts (see the file comment); only
  /// wall-clock changes. Ignored by the reference loop, which stays
  /// single-threaded by design.
  std::size_t threads = 1;

  void validate() const;
};

/// One entry of the cluster's scaling/failure timeline.
struct ClusterEvent {
  enum class Kind {
    kScaleUp,          ///< autoscaler spawned a replica (warm-up begins)
    kScaleDown,        ///< autoscaler retired a replica (drains, then idles)
    kFailStop,         ///< a replica died (recorded at the instant of death)
    kFailureDetected,  ///< heartbeat monitor declared it dead; harvest + retry
    kRetry,            ///< a stranded request was re-dispatched
    kMigrate,          ///< an evacuated request landed on its new replica
    kExpertRebalance,  ///< hot experts preloaded across the fleet
    kHandoff,          ///< a prefilled request's KV landed on a decode replica
  };
  Kind kind{};
  Duration time = Duration::zero();
  std::size_t replica = 0;  ///< replica index the event concerns
  std::string detail;
};

[[nodiscard]] std::string to_string(ClusterEvent::Kind kind);

/// One replica's slice of a cluster run.
struct ReplicaReport {
  std::string name;  ///< "replica<i> (<strategy>)"
  ServeReport serve;
  std::size_t dispatched = 0;  ///< requests this replica received (incl. retries)
  Duration spawned_at = Duration::zero();  ///< 0 for boot replicas
  /// End of the replica's alive (provisioned) window: its fail-stop
  /// instant; for a retired replica the later of the retirement decision
  /// and its drain completion (after which the capacity is released); else
  /// the fleet makespan. Utilization is busy time over
  /// [spawned_at, alive_until] -- weighting by the alive window keeps
  /// autoscaled, retired, or failed replicas comparable to ones that lived
  /// the whole run, and makes replica_seconds credit scale-downs.
  Duration alive_until = Duration::zero();
  double utilization = 0.0;
  bool failed = false;   ///< hit its fail-stop instant
  bool retired = false;  ///< scaled down (drained its queue, then idled)
};

/// Everything one cluster run produced.
struct ClusterReport {
  std::string policy;
  std::string autoscaler;  ///< empty when autoscaling was off
  std::vector<ReplicaReport> replicas;
  /// Fleet-wide union of every completed request's metrics, in (arrival,
  /// id) order with arrivals re-based to the input trace (so a retried
  /// request's latency spans its failures). Exactly a permutation of the
  /// input trace's ids.
  std::vector<RequestMetrics> requests;
  Duration makespan = Duration::zero();  ///< latest replica completion
  std::uint64_t generated_tokens = 0;
  double tokens_per_s = 0.0;
  Percentiles ttft_ms;
  Percentiles tpot_ms;  ///< all-zero when no request generated > 1 token
  Percentiles e2e_ms;
  /// Max-over-mean of per-replica busy time: 1.0 = perfectly balanced.
  double imbalance = 0.0;
  /// Sum of busy time over sum of alive windows: the fleet's useful
  /// occupancy of the capacity it actually paid for.
  double fleet_utilization = 0.0;
  /// Sum of alive windows in seconds -- the autoscaling cost metric
  /// (replica-seconds of capacity provisioned).
  double replica_seconds = 0.0;
  std::size_t peak_replicas = 0;  ///< max simultaneously accepting replicas
  std::size_t retries = 0;        ///< failure-driven re-dispatches
  std::size_t migrations = 0;     ///< scale-down-driven re-dispatches
  /// Prefill tokens served from prefix caches fleet-wide (0 when disabled).
  std::int64_t cached_prefill_tokens = 0;
  // Expert-aware serving (all-zero when ClusterConfig::expert is disabled):
  std::uint64_t expert_hits = 0;    ///< fleet-wide resident profile experts at step time
  std::uint64_t expert_misses = 0;  ///< fleet-wide demand expert fetches
  double expert_hit_rate = 0.0;     ///< hits / (hits + misses), 0 with no accesses
  std::size_t expert_migrations = 0;  ///< experts preloaded by rebalance ticks
  std::size_t pruned_requests = 0;    ///< requests served with a truncated profile
  // Disaggregated serving (all-zero when ClusterConfig::disagg is disabled):
  std::size_t handoffs = 0;         ///< prefill-complete releases re-dispatched
  std::int64_t handoff_tokens = 0;  ///< KV tokens shipped across the handoff link
  double handoff_transfer_s = 0.0;  ///< summed handoff-link time, seconds
  /// One pool's slice of a disaggregated run (all-zero when disabled).
  struct PoolReport {
    std::size_t replicas = 0;     ///< replicas that ever held the role
    std::size_t dispatched = 0;   ///< requests the pool received (incl. re-dispatches)
    std::size_t steps = 0;        ///< scheduler steps the pool executed
    double busy_s = 0.0;          ///< summed step time, seconds
    double replica_seconds = 0.0; ///< summed alive windows, seconds
    double utilization = 0.0;     ///< busy_s over replica_seconds
    double mean_step_ms = 0.0;    ///< busy_s / steps, milliseconds
  };
  PoolReport prefill_pool;
  PoolReport decode_pool;
  // Per-phase wall-clock (0 unless ClusterConfig::measure_phases):
  double phase_advance_s = 0.0;   ///< replica advancement (parallelizes)
  double phase_dispatch_s = 0.0;  ///< snapshot refresh + pick + enqueue (sequential)
  double phase_commit_s = 0.0;    ///< EWMA/index/calendar write-backs (sequential)
  std::vector<ClusterEvent> events;  ///< scaling/failure timeline, time order
};

/// A fleet of replica servers interleaved in simulated time.
class ClusterSim {
 public:
  ClusterSim(const core::SystemConfig& sys, const moe::MoeModelConfig& model,
             const moe::SkewProfile& profile, const std::vector<ReplicaSpec>& specs,
             ClusterConfig cfg = {});

  /// Currently instantiated replicas (grows under autoscaling).
  [[nodiscard]] std::size_t size() const { return replicas_.size(); }

  /// Serve `trace` (sorted by (arrival, id) internally; ids must be
  /// unique), dispatching each request at its arrival instant via
  /// `dispatcher`. Pass an `autoscaler` to resize the fleet against queue
  /// pressure. Call once. Throws if every replica fails or retires while
  /// requests remain.
  [[nodiscard]] ClusterReport run(std::vector<Request> trace, Dispatcher& dispatcher,
                                  Autoscaler* autoscaler = nullptr);

  /// Streaming variant: consume requests lazily from `arrivals` (must yield
  /// them in (arrival, id) order with unique ids) so the trace is never
  /// materialized -- O(1) arrival memory regardless of trace length. For the
  /// same requests this is bit-identical to the vector overload (which is
  /// now a thin adapter over it).
  [[nodiscard]] ClusterReport run(ArrivalStream& arrivals, Dispatcher& dispatcher,
                                  Autoscaler* autoscaler = nullptr);

 private:
  struct Replica {
    std::string name;
    std::unique_ptr<core::InferenceEngine> engine;
    std::unique_ptr<ServerSim> server;
    std::size_t dispatched = 0;
    Duration spawned_at = Duration::zero();
    Duration detect_at = Duration::infinite();  ///< fail-stop detection instant
    Duration retired_at = Duration::zero();     ///< scale-down decision instant
    bool detected = false;  ///< failure detected (excluded, harvested)
    bool retired = false;   ///< scaled down (excluded from dispatch)
    bool evacuated = false; ///< retirement migrated its work away (nothing to harvest)
    bool prefill = false;   ///< disaggregated-serving role (false = decode/unified)
    std::size_t steps_seen = 0;  ///< steps folded into the EWMA so far
    double ewma_ms = 0.0;        ///< step-duration EWMA (health signal)
  };

  void add_replica(const ReplicaSpec& spec, Duration spawned_at, Duration start_at,
                   bool prefill = false);
  void update_ewma(Replica& r);
  [[nodiscard]] std::vector<ReplicaSnapshot> snapshots(Duration now) const;
  [[nodiscard]] std::size_t accepting_count() const;

  core::SystemConfig sys_;
  moe::MoeModelConfig model_;
  moe::SkewProfile profile_;
  ClusterConfig cfg_;
  std::shared_ptr<ndp::NdpCoreSim> shared_sim_;
  /// Cluster-level profiling generator (expert-aware serving only): derives
  /// each request's ExpertProfile on the request's own stream, independent
  /// of every replica's routing seed so profiles are fleet-global.
  std::unique_ptr<moe::WorkloadGenerator> profiler_;
  std::vector<Replica> replicas_;
  ReplicaSpec growth_;        ///< template for autoscaled replicas (no faults)
  std::uint64_t next_seed_;   ///< routing seed for the next spawned replica
  bool used_ = false;
};

}  // namespace monde::serve
