// Prefix/KV-cache model for the serving layer.
//
// MoNDE's core argument is that state already resident near the data should
// not be moved again; the serving-side counterpart is the KV cache: the
// attention state of every prefilled prompt token and every generated token
// is resident on the replica that computed it. This module models that
// residency as *token counts* (no tensors are simulated):
//
//   * per-request state -- an admitted request pins the resident tokens
//     unique to it (its prompt beyond any shared prefix, plus one more per
//     decoded token) until it completes or aborts. Its whole frontier --
//     prompt + decoded -- is what partial-progress retry/migration moves.
//   * shared prefixes   -- requests carrying the same `Request::prefix_id`
//     share their first `shared_prefix_len` prompt tokens (a system prompt,
//     a few-shot header). The prefix is one physical copy, counted once no
//     matter how many requests reference it. Once one of them has
//     prefilled, the shared entry is retained after completion, and later
//     arrivals skip the prefill of the resident part (a cache *hit*).
//     Unreferenced retained entries are evicted in LRU order when the
//     configured token capacity is exceeded; pinned per-request state and
//     in-use prefixes are never evicted (a replica cannot drop the KV of a
//     request it is actively serving).
//
// The cache is priced into ServerSim::step(): a request admitted with
// `saved` cached tokens runs a prefill over only `prompt_len - saved`
// tokens. With `enabled = false` (the default) every lookup returns the
// request's own `resume.prefilled` and no state is tracked, which keeps the
// serving stack bit-identical to the cache-less behavior.
//
// Transfer pricing: checkpointed retry and scale-down migration move
// `resident_tokens` of KV state between replicas; `transfer_time_for()`
// prices that at `kv_bytes_per_token / migration_bw` per token. The cluster
// (cluster.hpp) applies the span to the re-dispatch instant.
//
// Units: every quantity named *_tokens counts tokens; sizes are `Bytes`,
// rates `Bandwidth`, spans `Duration`. Deterministic, engine-free, and
// unit-tested standalone (tests/test_kvcache.cpp).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/units.hpp"
#include "serve/request.hpp"

namespace monde::serve {

/// Signature bit a shared prefix occupies in the 64-bit residency summary
/// (see KvCache::prefix_signature). Same murmur-finalizer family as
/// moe::expert_signature_bit so both residency views hash comparably well.
/// Deterministic in `prefix_id` alone -- dispatchers and caches agree on
/// the bit without sharing state. `prefix_id` 0 ("no shared prefix") is
/// never inserted, so its bit value is irrelevant.
[[nodiscard]] inline int prefix_signature_bit(std::uint64_t prefix_id) {
  std::uint64_t x = prefix_id;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 29;
  return static_cast<int>(x & 63);
}

/// Per-replica prefix-cache knobs. The default (`enabled = false`) is inert:
/// no residency tracking, no prefill savings, retries restart from scratch.
struct PrefixCacheConfig {
  bool enabled = false;

  /// Resident-KV capacity of one replica, in tokens. Pinned (active-request)
  /// state always fits conceptually -- it is never evicted, even when it
  /// alone exceeds the capacity -- but retained shared prefixes are evicted
  /// LRU-first while the total resident count is above this cap.
  std::int64_t capacity_tokens = 1 << 18;

  /// Modelled KV footprint of one token (all layers, K+V), used only to
  /// price state transfers between replicas.
  Bytes kv_bytes_per_token = Bytes::kib(128);

  /// Link rate for checkpoint restore / live migration of KV state.
  Bandwidth migration_bw = Bandwidth::gbps(16.0);

  /// Checkpoint cadence for surviving-cache retry, in decoded tokens. A
  /// stranded request resumes from the last decode position that is a
  /// multiple of this interval -- coarser cadence means fewer checkpoint
  /// writes but more decode work repeated after a fail-stop, and a smaller
  /// resident frontier to move on restore. 0 = every step (the continuous
  /// checkpointing behavior the cadence generalizes).
  std::int64_t checkpoint_interval_tokens = 0;

  /// Fail-stop retry mode. `true` = surviving-cache: prefixes are
  /// continuously checkpointed off-node, so a stranded request resumes from
  /// its last completed step on the retry replica (after a transfer span).
  /// `false` = lost-cache: the KV state dies with the node and retries
  /// restart from scratch (the pre-cache behavior).
  bool survive_failstop = false;

  /// Scale-down mode. `true` = a retired replica stops at its current step
  /// boundary and live-migrates every unfinished request (with its resident
  /// state, at the modelled transfer cost) to the surviving fleet, releasing
  /// its capacity immediately. `false` = the retiree drains its own queue to
  /// completion first (the pre-cache behavior).
  bool migrate_on_retire = false;

  /// Span of moving `tokens` of KV state over the migration link.
  [[nodiscard]] Duration transfer_time_for(std::int64_t tokens) const {
    return transfer_time(kv_bytes_per_token * static_cast<std::uint64_t>(tokens),
                         migration_bw);
  }

  void validate() const;
};

/// Counters one replica's cache accumulated over a run.
struct PrefixCacheStats {
  std::uint64_t lookups = 0;     ///< admissions that consulted the cache
  std::uint64_t hits = 0;        ///< lookups that saved at least one token
  std::int64_t saved_tokens = 0; ///< prefill tokens skipped in total
  std::uint64_t evictions = 0;   ///< retained shared-prefix entries evicted
  std::int64_t resident_peak = 0;///< max resident tokens observed

  [[nodiscard]] double hit_rate() const {
    return lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
  }
};

/// One replica's resident-KV bookkeeping. All mutators are O(1) amortized
/// (hash lookups plus LRU splices); eviction is O(evicted).
class KvCache {
 public:
  explicit KvCache(PrefixCacheConfig cfg);

  [[nodiscard]] bool enabled() const { return cfg_.enabled; }
  [[nodiscard]] const PrefixCacheConfig& config() const { return cfg_; }

  /// Prompt tokens of `rq` that need no prefill on this replica: the longer
  /// of the request's own resumed prefix and the resident part of its shared
  /// prefix, capped at the prompt. Pure -- no stats, no LRU touch -- so
  /// admission-control can probe it freely. When the cache is disabled this
  /// degenerates to `rq.resume.prefilled`.
  [[nodiscard]] std::int64_t saved_tokens(const Request& rq) const;

  /// Account one admission: pin the request's resident state (its prompt
  /// beyond the shared prefix, plus already-resumed decode tokens -- the
  /// shared prefix is counted once in its own entry), record the lookup
  /// with `saved` tokens skipped (as admission computed it), make the
  /// request's shared prefix resident and referenced, and evict
  /// over-capacity unreferenced retained entries.
  void admit(const Request& rq, std::int64_t saved);

  /// One more decoded token is resident for request `id`.
  void decode_token(std::uint64_t id);

  /// The request finished: unpin its state. Its shared prefix (if any)
  /// stays retained for future arrivals, freshest in LRU order.
  void complete(std::uint64_t id);

  /// Unpin everything at once (a harvest/evacuation took every unfinished
  /// request away with it). Retained shared prefixes stay.
  void drop_pinned();

  /// Span of moving `tokens` of KV state over the migration link.
  [[nodiscard]] Duration transfer_time_for(std::int64_t tokens) const;

  /// Tokens currently resident (pinned + retained shared prefixes).
  [[nodiscard]] std::int64_t resident_tokens() const { return pinned_tokens_ + shared_tokens_; }
  [[nodiscard]] const PrefixCacheStats& stats() const { return stats_; }

  /// Compact residency view for dispatch snapshots: the OR of
  /// `prefix_signature_bit` over every resident shared prefix, maintained
  /// incrementally alongside the LRU (per-bit reference counts, so two
  /// prefixes colliding on a bit keep it set until *both* leave). A set bit
  /// means "some prefix hashing there is resident" -- a Bloom-style
  /// approximation with false positives but no false negatives, which is
  /// the right direction for affinity routing: a spurious hit costs one
  /// ordinary prefill, a missed resident prefix would waste the cache.
  /// 0 whenever nothing is resident (and always, when disabled).
  [[nodiscard]] std::uint64_t prefix_signature() const { return signature_; }

 private:
  struct SharedEntry {
    std::uint64_t prefix_id = 0;
    std::int64_t tokens = 0;  ///< resident length of the shared prefix
    std::int64_t in_use = 0;  ///< active requests referencing it (pinned while > 0)
  };
  struct Pinned {
    /// Resident tokens UNIQUE to the request: prompt beyond its shared
    /// prefix, plus decoded tokens. The shared prefix itself is counted
    /// once, in its SharedEntry, no matter how many requests reference it.
    std::int64_t tokens = 0;
    std::uint64_t prefix_id = 0;  ///< for refcounting + LRU refresh on release
  };

  void evict_over_capacity();
  void note_resident_peak();
  void signature_add(std::uint64_t prefix_id);
  void signature_remove(std::uint64_t prefix_id);

  PrefixCacheConfig cfg_;
  PrefixCacheStats stats_;
  /// Pinned per-request resident state, keyed by request id.
  std::unordered_map<std::uint64_t, Pinned> pinned_;
  std::int64_t pinned_tokens_ = 0;
  /// Retained shared prefixes, least-recently-used first.
  std::list<SharedEntry> lru_;
  std::unordered_map<std::uint64_t, std::list<SharedEntry>::iterator> shared_;
  std::int64_t shared_tokens_ = 0;
  /// Residency signature over `shared_` (see prefix_signature()).
  std::uint64_t signature_ = 0;
  std::uint32_t sig_counts_[64] = {};  ///< resident prefixes mapped onto each bit
};

}  // namespace monde::serve
