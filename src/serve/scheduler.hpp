// Request admission and batch composition for the serving simulator.
//
// The scheduler owns the request lifecycle (pending -> queued -> active ->
// done) and decides, at every step boundary, which queued requests join the
// shared decode batch:
//
//   * kContinuous -- requests are admitted as soon as the per-step token
//     budget (prefill tokens admitted this step + one decode token per
//     active slot) allows, and leave the batch the moment they finish. This
//     is vLLM/Orca-style continuous batching. Admission order is FIFO by
//     default; `size_aware_admission` switches to fewest-remaining-tokens
//     first (the cluster's least-outstanding-tokens signal applied inside
//     the replica), with a bypass cap as a starvation guard.
//   * kFixed -- the classic baseline: requests are grouped into fixed-size
//     batches; a batch is admitted only when the previous one fully drains,
//     and finished requests keep occupying padded slots until the whole
//     batch completes.
//
// Prefix-cache integration: a request may carry resumed progress
// (Request::resume -- prompt tokens already prefilled elsewhere, decode
// tokens already generated) and the server may register a prefill-discount
// hook (the prefix cache's shared-prefix lookup). Both shrink the prefill
// the admission budget charges for; the discount actually applied is frozen
// into RequestState::saved_tokens at admission so the server prices the
// step with exactly the tokens admission budgeted.
//
// Requests enter either all at once (submit(), the one-shot trace path) or
// incrementally (push(), the path a cluster dispatcher drives); seal()
// declares that no further requests will arrive, which is what lets the
// fixed-mode batch-fill wait distinguish "more arrivals are due" from "the
// trace is exhausted".
//
// The scheduler also merges the per-request, step-indexed gating draws from
// moe::WorkloadGenerator into the per-layer MoeLayerWork a shared decode
// step executes, which is what makes per-request routing (and therefore
// latency) independent of admission order.
//
// Units: every quantity named *_tokens / *_budget / *_batch counts tokens
// (or decode slots, which consume one token of budget each); every instant
// or span is a `Duration` of simulated time (nanosecond-resolution double --
// DRAM-level cycle counts never surface here, the engine converts them).
// The scheduler owns no hardware state: it can be driven standalone with
// hand-written complete_step() times, which is how its unit tests run.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "moe/workload.hpp"
#include "serve/request.hpp"

namespace monde::serve {

enum class BatchingMode {
  kFixed,       ///< fixed-size batches, padded until the whole batch drains
  kContinuous,  ///< per-step join/leave under a token budget
};

[[nodiscard]] std::string to_string(BatchingMode mode);

struct SchedulerConfig {
  BatchingMode mode = BatchingMode::kContinuous;
  /// Per-step token cap for continuous batching: prompt tokens prefilled in
  /// the step plus one decode token per active slot. A request whose prompt
  /// alone exceeds the budget is admitted once the server is otherwise empty
  /// (it can never fit, and starving it forever would deadlock the queue).
  std::int64_t token_budget = 256;
  /// Batch size for kFixed; must not exceed token_budget so the two modes
  /// are comparable under one config.
  std::int64_t fixed_batch = 8;
  /// Continuous-mode admission order: false = FIFO (the classic behavior),
  /// true = fewest-remaining-tokens first, so short requests slip past a
  /// head-of-line giant instead of queueing behind it (shortest-job-first
  /// under the step budget).
  bool size_aware_admission = false;
  /// Starvation guard for size-aware admission: a queued request that has
  /// seen junior (later-arrived) peers admitted past it this many times is
  /// admitted before any of them (its next fitting step takes it first).
  std::int64_t admission_bypass_limit = 8;

  void validate() const;
};

/// A request plus its serving-lifecycle bookkeeping. The request's decode
/// depth IS its generated count: padded fixed-mode slots surface no tokens
/// and so stay frozen at their final depth. A resumed request starts with
/// `generated = resume.decoded` (its decode depth carries over) and keeps
/// the original attempt's `first_token`.
struct RequestState {
  Request request;
  std::int64_t generated = 0;  ///< tokens produced across attempts (= decode depth)
  std::int64_t saved_tokens = 0;  ///< prefill tokens skipped at admission
  bool done = false;
  /// Released to a decode replica by release_prefilled(): the request left
  /// this scheduler mid-flight by design, not by completion or failure. Its
  /// metrics finish elsewhere, so reporting skips it like a padded slot.
  bool handed_off = false;
  std::int64_t bypassed = 0;   ///< size-aware admissions that skipped past this
  Duration admitted = Duration::zero();
  Duration first_token = Duration::zero();
  Duration completion = Duration::zero();
};

/// What one completed step did to the batch, for residency layers above
/// (the server feeds its prefix cache from this).
struct StepOutcome {
  std::vector<std::uint64_t> advanced;  ///< requests that surfaced a token
  std::vector<std::uint64_t> finished;  ///< subset that completed
};

/// Admission control + batch composition over one request trace.
class ContinuousBatchScheduler {
 public:
  /// Prompt tokens of a request that need no prefill here (the prefix
  /// cache's lookup). Must be pure w.r.t. the scheduler and stay in
  /// [resume.prefilled, prompt_len].
  using PrefillDiscount = std::function<std::int64_t(const Request&)>;

  explicit ContinuousBatchScheduler(SchedulerConfig cfg);

  /// Register the prefill-discount hook. Without one, a request's discount
  /// is its own `resume.prefilled`.
  void set_prefill_discount(PrefillDiscount fn) { discount_ = std::move(fn); }

  /// Append one request. Pushes must come in (arrival, id) order -- the
  /// order a trace replay or a cluster dispatcher naturally produces.
  void push(const Request& rq);

  /// Declare that no further push() will happen. Fixed-mode admission may
  /// then stop holding under-full batches for arrivals that never come.
  void seal();

  /// Load a whole trace (any order; sorted by (arrival, id) internally) and
  /// seal it. Call once, on a fresh scheduler, instead of push()/seal().
  void submit(std::vector<Request> trace);

  /// Every accepted request has been fully served (vacuously true when no
  /// request was ever pushed).
  [[nodiscard]] bool drained() const;

  /// Arrival time of the next not-yet-released request (infinite if none).
  [[nodiscard]] Duration next_arrival() const;

  /// Move every request with arrival <= now from pending into the queue.
  void release_arrivals(Duration now);

  /// Admit queued requests into the active batch per the configured policy.
  /// Returns the newly admitted requests (they still need their prefill).
  std::vector<RequestState*> admit();

  /// The active decode batch (admission order).
  [[nodiscard]] const std::vector<std::size_t>& active() const { return active_; }
  [[nodiscard]] const std::vector<RequestState>& states() const { return states_; }

  /// Arrived requests awaiting admission.
  [[nodiscard]] std::size_t queued_count() const { return queued_.size(); }

  /// Would a step run right now? True when a batch is in flight, or when
  /// admit() would accept at least one queued request (fixed mode holds an
  /// under-full batch while more arrivals may come; continuous admission
  /// always accepts a non-empty queue on an idle server).
  [[nodiscard]] bool step_ready() const;

  /// Accepted-but-unfinished requests (pending + queued + active non-done
  /// slots): the queue-depth signal a cluster dispatcher balances on.
  /// O(1) -- a dispatcher snapshots every replica at every arrival.
  [[nodiscard]] std::size_t in_flight() const { return live_; }

  /// Arrival times of every accepted request still waiting for admission
  /// (pending release or queued). The cluster's autoscaler derives its
  /// queue-delay pressure signal (now - arrival, per waiting request) from
  /// this. O(waiting).
  [[nodiscard]] std::vector<Duration> waiting_arrivals() const;

  /// Tokens of work still owed to accepted requests: un-prefilled prompt
  /// tokens plus the remaining decode budget. The size-aware load signal.
  /// O(1), maintained across push/admit/complete_step.
  [[nodiscard]] std::int64_t outstanding_tokens() const { return owed_tokens_; }

  /// One DecodeSlot per active request (its id, depth, and prompt context).
  /// In fixed mode a finished request keeps its padded slot at its final
  /// depth until the whole batch drains (its KV cache stops growing).
  [[nodiscard]] std::vector<core::DecodeSlot> slots() const;

  /// Per-request gating draws for the upcoming step, merged across the
  /// active batch into one MoeLayerWork per decoder MoE layer.
  [[nodiscard]] std::vector<moe::MoeLayerWork> step_works(moe::WorkloadGenerator& gen) const;

  /// Account one finished decode step ending at `end`: advance depths,
  /// record first-token/completion times, and retire finished requests
  /// (immediately in continuous mode, batch-at-once in fixed mode). The
  /// outcome lists which requests advanced/finished, for the server's
  /// cache residency bookkeeping.
  StepOutcome complete_step(Duration end);

  /// Fail-stop / evacuation support: remove every accepted-but-unfinished
  /// request (pending, queued, or active) and return the original Requests,
  /// in (arrival, id) order, each annotated with its checkpointed progress
  /// (Request::resume): an admitted request whose admission step completed
  /// has its full prompt and `generated` tokens resident; anything else
  /// keeps the resume state it arrived with. Whether a retry may *use* the
  /// annotation is the cluster's policy (surviving- vs lost-cache).
  /// Completed requests keep their metrics and the scheduler is left
  /// drained; push() must not be called afterwards.
  std::vector<Request> abort_unfinished();

  /// Disaggregated-serving support: release every active request whose
  /// admission step has completed (its prompt is fully resident and at least
  /// one decode token surfaced) for handoff to a decode replica. Returns the
  /// original Requests in (arrival, id) order, each annotated with its
  /// checkpointed progress exactly like abort_unfinished(); the released
  /// states stay behind flagged `handed_off` (their metrics finish on the
  /// decode replica). Unlike abort_unfinished() the scheduler keeps serving:
  /// queued and pending requests are untouched and push() stays legal.
  std::vector<Request> release_prefilled();

 private:
  /// Admission helpers for the two continuous-mode orders.
  std::vector<RequestState*> admit_fixed();
  std::vector<RequestState*> admit_fifo();
  std::vector<RequestState*> admit_size_aware();
  /// Frozen discount + budget accounting for one admission (shared by every
  /// admission order; queue removal is the caller's).
  void mark_admitted(std::size_t idx, std::int64_t saved,
                     std::vector<RequestState*>& newly);
  /// mark_admitted() plus popping the FIFO head (the fixed/FIFO orders).
  void take_front(std::int64_t saved, std::vector<RequestState*>& newly);
  [[nodiscard]] std::int64_t discount_for(const Request& rq) const;

  SchedulerConfig cfg_;
  PrefillDiscount discount_;
  std::vector<RequestState> states_;  ///< in (arrival, id) order; stable storage
  std::size_t next_pending_ = 0;      ///< states_[next_pending_..) not yet arrived
  std::deque<std::size_t> queued_;    ///< arrived, awaiting admission (FIFO)
  std::vector<std::size_t> active_;   ///< in the decode batch
  bool sealed_ = false;               ///< no further push() calls
  std::size_t live_ = 0;              ///< accepted, not yet done
  std::int64_t owed_tokens_ = 0;      ///< un-prefilled prompt + remaining decode
};

}  // namespace monde::serve
