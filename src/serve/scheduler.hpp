// Request admission and batch composition for the serving simulator.
//
// The scheduler owns the request lifecycle (pending -> queued -> active ->
// done) and decides, at every step boundary, which queued requests join the
// shared decode batch:
//
//   * kContinuous -- requests are admitted as soon as the per-step token
//     budget (prefill tokens admitted this step + one decode token per
//     active slot) allows, and leave the batch the moment they finish. This
//     is vLLM/Orca-style continuous batching.
//   * kFixed -- the classic baseline: requests are grouped into fixed-size
//     batches; a batch is admitted only when the previous one fully drains,
//     and finished requests keep occupying padded slots until the whole
//     batch completes.
//
// The scheduler also merges the per-request, step-indexed gating draws from
// moe::WorkloadGenerator into the per-layer MoeLayerWork a shared decode
// step executes, which is what makes per-request routing (and therefore
// latency) independent of admission order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "moe/workload.hpp"
#include "serve/request.hpp"

namespace monde::serve {

enum class BatchingMode {
  kFixed,       ///< fixed-size batches, padded until the whole batch drains
  kContinuous,  ///< per-step join/leave under a token budget
};

[[nodiscard]] std::string to_string(BatchingMode mode);

struct SchedulerConfig {
  BatchingMode mode = BatchingMode::kContinuous;
  /// Per-step token cap for continuous batching: prompt tokens prefilled in
  /// the step plus one decode token per active slot. A request whose prompt
  /// alone exceeds the budget is admitted once the server is otherwise empty
  /// (it can never fit, and starving it forever would deadlock the queue).
  std::int64_t token_budget = 256;
  /// Batch size for kFixed; must not exceed token_budget so the two modes
  /// are comparable under one config.
  std::int64_t fixed_batch = 8;

  void validate() const;
};

/// A request plus its serving-lifecycle bookkeeping.
struct RequestState {
  Request request;
  std::int64_t generated = 0;  ///< useful tokens produced so far
  std::int64_t step = 0;       ///< decode depth (includes fixed-mode padded steps)
  bool done = false;
  Duration admitted = Duration::zero();
  Duration first_token = Duration::zero();
  Duration completion = Duration::zero();
};

/// Admission control + batch composition over one request trace.
class ContinuousBatchScheduler {
 public:
  explicit ContinuousBatchScheduler(SchedulerConfig cfg);

  /// Load the trace (any order; sorted by arrival internally). Call once.
  void submit(std::vector<Request> trace);

  [[nodiscard]] bool finished() const;

  /// Arrival time of the next not-yet-released request (infinite if none).
  [[nodiscard]] Duration next_arrival() const;

  /// Move every request with arrival <= now from pending into the queue.
  void release_arrivals(Duration now);

  /// Admit queued requests into the active batch per the configured policy.
  /// Returns the newly admitted requests (they still need their prefill).
  std::vector<RequestState*> admit();

  /// The active decode batch (admission order).
  [[nodiscard]] const std::vector<std::size_t>& active() const { return active_; }
  [[nodiscard]] const std::vector<RequestState>& states() const { return states_; }

  /// One DecodeSlot per active request (its id, depth, and prompt context).
  [[nodiscard]] std::vector<core::DecodeSlot> slots() const;

  /// Per-request gating draws for the upcoming step, merged across the
  /// active batch into one MoeLayerWork per decoder MoE layer.
  [[nodiscard]] std::vector<moe::MoeLayerWork> step_works(moe::WorkloadGenerator& gen) const;

  /// Account one finished decode step ending at `end`: advance depths,
  /// record first-token/completion times, and retire finished requests
  /// (immediately in continuous mode, batch-at-once in fixed mode).
  void complete_step(Duration end);

 private:
  SchedulerConfig cfg_;
  std::vector<RequestState> states_;  ///< sorted by (arrival, id); stable storage
  std::size_t next_pending_ = 0;      ///< states_[next_pending_..) not yet arrived
  std::vector<std::size_t> queued_;   ///< arrived, awaiting admission (FIFO)
  std::vector<std::size_t> active_;   ///< in the decode batch
};

}  // namespace monde::serve
