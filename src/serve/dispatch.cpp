#include "serve/dispatch.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "moe/expert_profile.hpp"

namespace monde::serve {
namespace {

/// Index of the snapshot minimizing `load`, lowest replica index on ties.
template <typename LoadFn>
std::size_t argmin_load(const std::vector<ReplicaSnapshot>& snapshots, LoadFn load) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    if (load(snapshots[i]) < load(snapshots[best])) best = i;
  }
  return best;
}

class RoundRobinDispatcher final : public Dispatcher {
 public:
  [[nodiscard]] std::string name() const override { return "round-robin"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    return next_++ % snapshots.size();
  }

 private:
  std::size_t next_ = 0;
};

class JoinShortestQueueDispatcher final : public Dispatcher {
 public:
  [[nodiscard]] std::string name() const override { return "join-shortest-queue"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    return argmin_load(snapshots, [](const ReplicaSnapshot& s) { return s.in_flight; });
  }
};

class LeastOutstandingTokensDispatcher final : public Dispatcher {
 public:
  [[nodiscard]] std::string name() const override { return "least-outstanding-tokens"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    return argmin_load(snapshots,
                       [](const ReplicaSnapshot& s) { return s.outstanding_tokens; });
  }
};

class PowerOfTwoChoicesDispatcher final : public Dispatcher {
 public:
  explicit PowerOfTwoChoicesDispatcher(std::uint64_t seed) : rng_{seed} {}

  [[nodiscard]] std::string name() const override { return "power-of-two"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    const std::size_t n = snapshots.size();
    if (n == 1) return 0;
    // Two distinct uniform probes; keep the shorter queue (lower index wins
    // ties so the choice is deterministic).
    std::size_t a = static_cast<std::size_t>(rng_.next_below(n));
    std::size_t b = static_cast<std::size_t>(rng_.next_below(n - 1));
    if (b >= a) ++b;
    if (a > b) std::swap(a, b);
    return snapshots[b].in_flight < snapshots[a].in_flight ? b : a;
  }

 private:
  Rng rng_;
};

/// Shared by the gating-aware policies: a power-of-two load spill-over.
/// Affinity concentrates hot experts, but a popular expert must not melt its
/// home replica -- so after the affinity choice, probe two random replicas
/// and defect to the less-loaded probe when the choice carries more than
/// twice its outstanding tokens. Deterministic given the RNG stream.
std::size_t spill_over(const std::vector<ReplicaSnapshot>& snapshots, std::size_t choice,
                       Rng& rng) {
  const std::size_t n = snapshots.size();
  if (n < 2) return choice;
  std::size_t a = static_cast<std::size_t>(rng.next_below(n));
  std::size_t b = static_cast<std::size_t>(rng.next_below(n - 1));
  if (b >= a) ++b;
  if (a > b) std::swap(a, b);
  const std::size_t probe =
      snapshots[b].outstanding_tokens < snapshots[a].outstanding_tokens ? b : a;
  if (snapshots[choice].outstanding_tokens > 2 * snapshots[probe].outstanding_tokens) {
    return probe;
  }
  return choice;
}

class ExpertAffinityDispatcher final : public Dispatcher {
 public:
  explicit ExpertAffinityDispatcher(std::uint64_t seed) : rng_{seed} {}

  [[nodiscard]] std::string name() const override { return "expert-affinity"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    return argmin_load(snapshots,
                       [](const ReplicaSnapshot& s) { return s.outstanding_tokens; });
  }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots,
                   const Request& rq) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    if (rq.expert_profile.empty()) return pick(snapshots);
    // Best hot-set overlap; ties go to the lighter replica, then the lower
    // index (so an all-cold fleet degenerates to least-outstanding-tokens).
    std::size_t best = 0;
    int best_overlap = std::popcount(snapshots[0].expert_sig & rq.expert_profile.signature);
    for (std::size_t i = 1; i < snapshots.size(); ++i) {
      const int overlap =
          std::popcount(snapshots[i].expert_sig & rq.expert_profile.signature);
      if (overlap > best_overlap ||
          (overlap == best_overlap &&
           snapshots[i].outstanding_tokens < snapshots[best].outstanding_tokens)) {
        best = i;
        best_overlap = overlap;
      }
    }
    return spill_over(snapshots, best, rng_);
  }

 private:
  Rng rng_;
};

class ExpertShardedDispatcher final : public Dispatcher {
 public:
  explicit ExpertShardedDispatcher(std::uint64_t seed) : rng_{seed} {}

  [[nodiscard]] std::string name() const override { return "expert-sharded"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    return argmin_load(snapshots,
                       [](const ReplicaSnapshot& s) { return s.outstanding_tokens; });
  }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots,
                   const Request& rq) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    if (rq.expert_profile.empty()) return pick(snapshots);
    // Partition by the request's primary expert (heaviest of its first
    // profiled layer): every request leaning on the same heavy expert lands
    // on the same home shard, so each replica's residency converges to its
    // partition of the heavy experts.
    const auto& primary = rq.expert_profile.experts.front();
    const std::size_t home = static_cast<std::size_t>(
        moe::expert_signature_bit(primary.layer, primary.expert)) % snapshots.size();
    return spill_over(snapshots, home, rng_);
  }

 private:
  Rng rng_;
};

}  // namespace

std::string to_string(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kJoinShortestQueue: return "join-shortest-queue";
    case DispatchPolicy::kLeastOutstandingTokens: return "least-outstanding-tokens";
    case DispatchPolicy::kPowerOfTwoChoices: return "power-of-two";
    case DispatchPolicy::kExpertAffinity: return "expert-affinity";
    case DispatchPolicy::kExpertSharded: return "expert-sharded";
  }
  MONDE_ASSERT(false, "unknown dispatch policy");
  return {};
}

std::vector<DispatchPolicy> all_dispatch_policies() {
  return {DispatchPolicy::kRoundRobin, DispatchPolicy::kJoinShortestQueue,
          DispatchPolicy::kLeastOutstandingTokens, DispatchPolicy::kPowerOfTwoChoices};
}

std::vector<ReplicaSnapshot> eligible_snapshots(const std::vector<ReplicaSnapshot>& all,
                                                double slow_ewma_factor,
                                                double stale_age_ms) {
  std::vector<ReplicaSnapshot> eligible;
  eligible.reserve(all.size());
  for (const ReplicaSnapshot& s : all) {
    if (s.accepting && s.heartbeat_age_ms <= stale_age_ms) eligible.push_back(s);
  }
  MONDE_REQUIRE(!eligible.empty(),
                "no replica is accepting requests (every replica failed or retired)");
  if (!std::isfinite(slow_ewma_factor)) return eligible;
  // Soft filter: skip pathologically slow replicas, but never starve the
  // dispatcher -- if everyone looks slow, everyone stays eligible.
  std::vector<double> ewmas;
  for (const ReplicaSnapshot& s : eligible) {
    if (s.step_ewma_ms > 0.0) ewmas.push_back(s.step_ewma_ms);
  }
  if (ewmas.empty()) return eligible;
  const double cutoff = percentile(std::move(ewmas), 50.0) * slow_ewma_factor;
  std::vector<ReplicaSnapshot> fast;
  for (const ReplicaSnapshot& s : eligible) {
    if (s.step_ewma_ms <= cutoff) fast.push_back(s);
  }
  return fast.empty() ? eligible : fast;
}

std::vector<ReplicaSnapshot> pool_snapshots(const std::vector<ReplicaSnapshot>& all,
                                            bool prefill,
                                            std::int64_t decode_admit_tokens) {
  std::vector<ReplicaSnapshot> pool;
  for (const ReplicaSnapshot& s : all) {
    if (s.prefill_pool == prefill) pool.push_back(s);
  }
  if (!prefill && decode_admit_tokens > 0) {
    // Decode-pool admission control: prefer replicas whose outstanding-token
    // load is within the cap, but never strand a request -- an all-over-cap
    // pool stays dispatchable in full.
    std::vector<ReplicaSnapshot> within;
    for (const ReplicaSnapshot& s : pool) {
      if (s.outstanding_tokens <= decode_admit_tokens) within.push_back(s);
    }
    if (!within.empty()) return within;
  }
  return pool;
}

std::unique_ptr<Dispatcher> make_dispatcher(DispatchPolicy policy, std::uint64_t seed) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return std::make_unique<RoundRobinDispatcher>();
    case DispatchPolicy::kJoinShortestQueue:
      return std::make_unique<JoinShortestQueueDispatcher>();
    case DispatchPolicy::kLeastOutstandingTokens:
      return std::make_unique<LeastOutstandingTokensDispatcher>();
    case DispatchPolicy::kPowerOfTwoChoices:
      return std::make_unique<PowerOfTwoChoicesDispatcher>(seed);
    case DispatchPolicy::kExpertAffinity:
      return std::make_unique<ExpertAffinityDispatcher>(seed);
    case DispatchPolicy::kExpertSharded:
      return std::make_unique<ExpertShardedDispatcher>(seed);
  }
  MONDE_ASSERT(false, "unknown dispatch policy");
  return nullptr;
}

}  // namespace monde::serve
