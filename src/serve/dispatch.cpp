#include "serve/dispatch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "moe/expert_profile.hpp"
#include "serve/kvcache.hpp"

namespace monde::serve {
namespace {

/// Index of the snapshot minimizing `load`, lowest replica index on ties.
template <typename LoadFn>
std::size_t argmin_load(const std::vector<ReplicaSnapshot>& snapshots, LoadFn load) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    if (load(snapshots[i]) < load(snapshots[best])) best = i;
  }
  return best;
}

class RoundRobinDispatcher final : public Dispatcher {
 public:
  [[nodiscard]] std::string name() const override { return "round-robin"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    return next_++ % snapshots.size();
  }

 private:
  std::size_t next_ = 0;
};

class JoinShortestQueueDispatcher final : public Dispatcher {
 public:
  [[nodiscard]] std::string name() const override { return "join-shortest-queue"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    return argmin_load(snapshots, [](const ReplicaSnapshot& s) { return s.in_flight; });
  }
};

class LeastOutstandingTokensDispatcher final : public Dispatcher {
 public:
  [[nodiscard]] std::string name() const override { return "least-outstanding-tokens"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    return argmin_load(snapshots,
                       [](const ReplicaSnapshot& s) { return s.outstanding_tokens; });
  }
};

class PowerOfTwoChoicesDispatcher final : public Dispatcher {
 public:
  explicit PowerOfTwoChoicesDispatcher(std::uint64_t seed) : rng_{seed} {}

  [[nodiscard]] std::string name() const override { return "power-of-two"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    const std::size_t n = snapshots.size();
    if (n == 1) return 0;
    // Two distinct uniform probes; keep the shorter queue (lower index wins
    // ties so the choice is deterministic).
    std::size_t a = static_cast<std::size_t>(rng_.next_below(n));
    std::size_t b = static_cast<std::size_t>(rng_.next_below(n - 1));
    if (b >= a) ++b;
    if (a > b) std::swap(a, b);
    return snapshots[b].in_flight < snapshots[a].in_flight ? b : a;
  }

 private:
  Rng rng_;
};

/// Shared by the residency-aware policies: a power-of-two load spill-over.
/// Affinity concentrates hot state (experts, shared prefixes), but a popular
/// home must not melt -- so after the affinity choice, probe two random
/// replicas and defect to the less-loaded probe when the choice carries more
/// than twice its outstanding tokens. Deterministic given the RNG stream.
std::size_t spill_over(const std::vector<ReplicaSnapshot>& snapshots, std::size_t choice,
                       Rng& rng) {
  const std::size_t n = snapshots.size();
  if (n < 2) return choice;
  std::size_t a = static_cast<std::size_t>(rng.next_below(n));
  std::size_t b = static_cast<std::size_t>(rng.next_below(n - 1));
  if (b >= a) ++b;
  if (a > b) std::swap(a, b);
  const std::size_t probe =
      snapshots[b].outstanding_tokens < snapshots[a].outstanding_tokens ? b : a;
  if (snapshots[choice].outstanding_tokens > 2 * snapshots[probe].outstanding_tokens) {
    return probe;
  }
  return choice;
}

class ExpertAffinityDispatcher final : public Dispatcher {
 public:
  explicit ExpertAffinityDispatcher(std::uint64_t seed) : rng_{seed} {}

  [[nodiscard]] std::string name() const override { return "expert-affinity"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    return argmin_load(snapshots,
                       [](const ReplicaSnapshot& s) { return s.outstanding_tokens; });
  }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots,
                   const Request& rq) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    if (rq.expert_profile.empty()) return pick(snapshots);
    // Best hot-set overlap; ties go to the lighter replica, then the lower
    // index (so an all-cold fleet degenerates to least-outstanding-tokens).
    std::size_t best = 0;
    int best_overlap = std::popcount(snapshots[0].expert_sig & rq.expert_profile.signature);
    for (std::size_t i = 1; i < snapshots.size(); ++i) {
      const int overlap =
          std::popcount(snapshots[i].expert_sig & rq.expert_profile.signature);
      if (overlap > best_overlap ||
          (overlap == best_overlap &&
           snapshots[i].outstanding_tokens < snapshots[best].outstanding_tokens)) {
        best = i;
        best_overlap = overlap;
      }
    }
    return spill_over(snapshots, best, rng_);
  }

 private:
  Rng rng_;
};

class ExpertShardedDispatcher final : public Dispatcher {
 public:
  explicit ExpertShardedDispatcher(std::uint64_t seed) : rng_{seed} {}

  [[nodiscard]] std::string name() const override { return "expert-sharded"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    return argmin_load(snapshots,
                       [](const ReplicaSnapshot& s) { return s.outstanding_tokens; });
  }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots,
                   const Request& rq) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    if (rq.expert_profile.empty()) return pick(snapshots);
    // Partition by the request's primary expert (heaviest of its first
    // profiled layer): every request leaning on the same heavy expert lands
    // on the same home shard, so each replica's residency converges to its
    // partition of the heavy experts.
    const auto& primary = rq.expert_profile.experts.front();
    const std::size_t home = static_cast<std::size_t>(
        moe::expert_signature_bit(primary.layer, primary.expert)) % snapshots.size();
    return spill_over(snapshots, home, rng_);
  }

 private:
  Rng rng_;
};

/// Ring point of one virtual node: the murmur finalizer over the packed
/// (replica, vnode) pair. Pure in its inputs, so every dispatcher instance
/// (and both cluster loops) places the same replica at the same points.
std::uint64_t ring_point(std::size_t replica, std::uint32_t vnode) {
  std::uint64_t x = (static_cast<std::uint64_t>(replica) << 8) | vnode;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 29;
  return x;
}

/// Consistent-hash-ring routing on the request's shared prefix id.
///
/// Each replica in the current view owns kVnodes pseudo-random points on a
/// 64-bit ring; a request walks clockwise from hash(prefix_id) to the first
/// point. Membership is diffed against the view on every routed pick, so a
/// spawn/retire/death only moves the keys whose successor point changed --
/// an expected `changed/fleet` share of the keyspace -- while every other
/// prefix group keeps its home (and its resident prefix KV). A bounded-load
/// spill-over (power-of-two probes) protects a popular group's home from
/// melting. Requests with no shared prefix, and decode-phase requests (no
/// prefill left to save), fall back to least-outstanding-tokens.
class PrefixHashDispatcher final : public Dispatcher {
 public:
  explicit PrefixHashDispatcher(std::uint64_t seed) : rng_{seed} {}

  [[nodiscard]] std::string name() const override { return "prefix-hash"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    return argmin_load(snapshots,
                       [](const ReplicaSnapshot& s) { return s.outstanding_tokens; });
  }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots,
                   const Request& rq) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    if (rq.prefix_id == 0 || rq.decode_phase()) return pick(snapshots);
    sync_ring(snapshots);
    // Walk clockwise from the key to the first virtual node (wrapping).
    std::uint64_t key = rq.prefix_id;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    key *= 0xc4ceb9fe1a85ec53ULL;
    key ^= key >> 29;
    auto it = ring_.lower_bound(key);
    if (it == ring_.end()) it = ring_.begin();
    const std::size_t home_replica = it->second;
    std::size_t home = 0;
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
      if (snapshots[i].replica == home_replica) {
        home = i;
        break;
      }
    }
    return spill_over(snapshots, home, rng_);
  }

 private:
  /// Virtual nodes per replica: enough to keep per-replica keyspace shares
  /// near-uniform (stddev ~ 1/sqrt(kVnodes)) without bloating the ring.
  static constexpr std::uint32_t kVnodes = 32;

  /// Reconcile ring membership with the view. The common no-change case is
  /// one O(view) sorted compare; a membership change costs O(changed x
  /// kVnodes x log ring). Keyed on ReplicaSnapshot::replica -- the stable
  /// identity across health/pool filtering and fleet resizes.
  void sync_ring(const std::vector<ReplicaSnapshot>& snapshots) {
    seen_.clear();
    seen_.reserve(snapshots.size());
    for (const ReplicaSnapshot& s : snapshots) seen_.push_back(s.replica);
    std::sort(seen_.begin(), seen_.end());
    if (seen_ == members_) return;
    // Merge-walk the sorted member lists; only the symmetric difference
    // touches the ring, so unchanged replicas keep their points (and the
    // keys mapped to them).
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < members_.size() || j < seen_.size()) {
      if (j == seen_.size() || (i < members_.size() && members_[i] < seen_[j])) {
        remove_points(members_[i]);
        ++i;
      } else if (i == members_.size() || seen_[j] < members_[i]) {
        add_points(seen_[j]);
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
    members_ = seen_;
  }

  void add_points(std::size_t replica) {
    for (std::uint32_t v = 0; v < kVnodes; ++v) {
      // On a (vanishingly rare) 64-bit point collision the lower replica
      // index wins deterministically; the loser just runs one vnode short.
      auto [it, inserted] = ring_.emplace(ring_point(replica, v), replica);
      if (!inserted && replica < it->second) it->second = replica;
    }
  }

  void remove_points(std::size_t replica) {
    for (std::uint32_t v = 0; v < kVnodes; ++v) {
      const auto it = ring_.find(ring_point(replica, v));
      if (it != ring_.end() && it->second == replica) ring_.erase(it);
    }
  }

  Rng rng_;
  std::map<std::uint64_t, std::size_t> ring_;  ///< point -> replica id
  std::vector<std::size_t> members_;           ///< sorted replica ids on the ring
  std::vector<std::size_t> seen_;              ///< scratch for the per-pick diff
};

/// Power-of-two choices restricted to replicas whose snapshot signature
/// says the request's shared prefix is resident *right now* -- the sharpest
/// locality signal available (kPrefixHash routes on where the prefix
/// *should* live; this routes on where it verifiably does). Falls back to
/// least-outstanding-tokens when no holder exists (the first arrival of a
/// group seeds a home wherever the load is lowest), for prefix-less
/// requests, and for decode-phase work. The spill-over keeps a saturated
/// holder from absorbing its whole group.
class PrefixAffinityDispatcher final : public Dispatcher {
 public:
  explicit PrefixAffinityDispatcher(std::uint64_t seed) : rng_{seed} {}

  [[nodiscard]] std::string name() const override { return "prefix-affinity"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    return argmin_load(snapshots,
                       [](const ReplicaSnapshot& s) { return s.outstanding_tokens; });
  }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots,
                   const Request& rq) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    if (rq.prefix_id == 0 || rq.decode_phase()) return pick(snapshots);
    const std::uint64_t bit = std::uint64_t{1} << prefix_signature_bit(rq.prefix_id);
    holders_.clear();
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
      if ((snapshots[i].prefix_sig & bit) != 0) holders_.push_back(i);
    }
    if (holders_.empty()) return pick(snapshots);
    std::size_t choice = holders_.front();
    if (holders_.size() > 1) {
      // Two distinct uniform probes among the holders; fewer outstanding
      // tokens wins, lower index on ties.
      const std::size_t h = holders_.size();
      std::size_t a = static_cast<std::size_t>(rng_.next_below(h));
      std::size_t b = static_cast<std::size_t>(rng_.next_below(h - 1));
      if (b >= a) ++b;
      if (a > b) std::swap(a, b);
      choice = snapshots[holders_[b]].outstanding_tokens <
                       snapshots[holders_[a]].outstanding_tokens
                   ? holders_[b]
                   : holders_[a];
    }
    return spill_over(snapshots, choice, rng_);
  }

 private:
  Rng rng_;
  std::vector<std::size_t> holders_;  ///< scratch: view indices holding the prefix
};

}  // namespace

std::string to_string(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kJoinShortestQueue: return "join-shortest-queue";
    case DispatchPolicy::kLeastOutstandingTokens: return "least-outstanding-tokens";
    case DispatchPolicy::kPowerOfTwoChoices: return "power-of-two";
    case DispatchPolicy::kExpertAffinity: return "expert-affinity";
    case DispatchPolicy::kExpertSharded: return "expert-sharded";
    case DispatchPolicy::kPrefixHash: return "prefix-hash";
    case DispatchPolicy::kPrefixAffinity: return "prefix-affinity";
  }
  MONDE_ASSERT(false, "unknown dispatch policy");
  return {};
}

std::vector<DispatchPolicy> all_dispatch_policies() {
  return {DispatchPolicy::kRoundRobin, DispatchPolicy::kJoinShortestQueue,
          DispatchPolicy::kLeastOutstandingTokens, DispatchPolicy::kPowerOfTwoChoices};
}

std::vector<ReplicaSnapshot> eligible_snapshots(const std::vector<ReplicaSnapshot>& all,
                                                double slow_ewma_factor,
                                                double stale_age_ms) {
  // No-filter fast path: with every replica accepting and fresh (the common
  // all-healthy case) the element-wise loop below just rebuilds the input
  // one push_back at a time; take a single bulk copy instead (snapshots are
  // trivially copyable, so this is one memcpy-sized assignment). Same
  // result by construction -- pinned by a regression test.
  bool all_pass = true;
  for (const ReplicaSnapshot& s : all) {
    if (!s.accepting || s.heartbeat_age_ms > stale_age_ms) {
      all_pass = false;
      break;
    }
  }
  std::vector<ReplicaSnapshot> eligible;
  if (all_pass) {
    eligible = all;
  } else {
    eligible.reserve(all.size());
    for (const ReplicaSnapshot& s : all) {
      if (s.accepting && s.heartbeat_age_ms <= stale_age_ms) eligible.push_back(s);
    }
  }
  MONDE_REQUIRE(!eligible.empty(),
                "no replica is accepting requests (every replica failed or retired)");
  if (!std::isfinite(slow_ewma_factor)) return eligible;
  // Soft filter: skip pathologically slow replicas, but never starve the
  // dispatcher -- if everyone looks slow, everyone stays eligible.
  std::vector<double> ewmas;
  for (const ReplicaSnapshot& s : eligible) {
    if (s.step_ewma_ms > 0.0) ewmas.push_back(s.step_ewma_ms);
  }
  if (ewmas.empty()) return eligible;
  const double cutoff = percentile(std::move(ewmas), 50.0) * slow_ewma_factor;
  std::vector<ReplicaSnapshot> fast;
  for (const ReplicaSnapshot& s : eligible) {
    if (s.step_ewma_ms <= cutoff) fast.push_back(s);
  }
  return fast.empty() ? eligible : fast;
}

std::vector<ReplicaSnapshot> pool_snapshots(const std::vector<ReplicaSnapshot>& all,
                                            bool prefill,
                                            std::int64_t decode_admit_tokens) {
  std::vector<ReplicaSnapshot> pool;
  for (const ReplicaSnapshot& s : all) {
    if (s.prefill_pool == prefill) pool.push_back(s);
  }
  if (!prefill && decode_admit_tokens > 0) {
    // Decode-pool admission control: prefer replicas whose outstanding-token
    // load is within the cap, but never strand a request -- an all-over-cap
    // pool stays dispatchable in full.
    std::vector<ReplicaSnapshot> within;
    for (const ReplicaSnapshot& s : pool) {
      if (s.outstanding_tokens <= decode_admit_tokens) within.push_back(s);
    }
    if (!within.empty()) return within;
  }
  return pool;
}

std::unique_ptr<Dispatcher> make_dispatcher(DispatchPolicy policy, std::uint64_t seed) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return std::make_unique<RoundRobinDispatcher>();
    case DispatchPolicy::kJoinShortestQueue:
      return std::make_unique<JoinShortestQueueDispatcher>();
    case DispatchPolicy::kLeastOutstandingTokens:
      return std::make_unique<LeastOutstandingTokensDispatcher>();
    case DispatchPolicy::kPowerOfTwoChoices:
      return std::make_unique<PowerOfTwoChoicesDispatcher>(seed);
    case DispatchPolicy::kExpertAffinity:
      return std::make_unique<ExpertAffinityDispatcher>(seed);
    case DispatchPolicy::kExpertSharded:
      return std::make_unique<ExpertShardedDispatcher>(seed);
    case DispatchPolicy::kPrefixHash:
      return std::make_unique<PrefixHashDispatcher>(seed);
    case DispatchPolicy::kPrefixAffinity:
      return std::make_unique<PrefixAffinityDispatcher>(seed);
  }
  MONDE_ASSERT(false, "unknown dispatch policy");
  return nullptr;
}

}  // namespace monde::serve
