#include "serve/dispatch.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace monde::serve {
namespace {

/// Index of the snapshot minimizing `load`, lowest replica index on ties.
template <typename LoadFn>
std::size_t argmin_load(const std::vector<ReplicaSnapshot>& snapshots, LoadFn load) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    if (load(snapshots[i]) < load(snapshots[best])) best = i;
  }
  return best;
}

class RoundRobinDispatcher final : public Dispatcher {
 public:
  [[nodiscard]] std::string name() const override { return "round-robin"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    return next_++ % snapshots.size();
  }

 private:
  std::size_t next_ = 0;
};

class JoinShortestQueueDispatcher final : public Dispatcher {
 public:
  [[nodiscard]] std::string name() const override { return "join-shortest-queue"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    return argmin_load(snapshots, [](const ReplicaSnapshot& s) { return s.in_flight; });
  }
};

class LeastOutstandingTokensDispatcher final : public Dispatcher {
 public:
  [[nodiscard]] std::string name() const override { return "least-outstanding-tokens"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    return argmin_load(snapshots,
                       [](const ReplicaSnapshot& s) { return s.outstanding_tokens; });
  }
};

class PowerOfTwoChoicesDispatcher final : public Dispatcher {
 public:
  explicit PowerOfTwoChoicesDispatcher(std::uint64_t seed) : rng_{seed} {}

  [[nodiscard]] std::string name() const override { return "power-of-two"; }

  std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) override {
    MONDE_REQUIRE(!snapshots.empty(), "dispatcher needs at least one replica");
    const std::size_t n = snapshots.size();
    if (n == 1) return 0;
    // Two distinct uniform probes; keep the shorter queue (lower index wins
    // ties so the choice is deterministic).
    std::size_t a = static_cast<std::size_t>(rng_.next_below(n));
    std::size_t b = static_cast<std::size_t>(rng_.next_below(n - 1));
    if (b >= a) ++b;
    if (a > b) std::swap(a, b);
    return snapshots[b].in_flight < snapshots[a].in_flight ? b : a;
  }

 private:
  Rng rng_;
};

}  // namespace

std::string to_string(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kJoinShortestQueue: return "join-shortest-queue";
    case DispatchPolicy::kLeastOutstandingTokens: return "least-outstanding-tokens";
    case DispatchPolicy::kPowerOfTwoChoices: return "power-of-two";
  }
  MONDE_ASSERT(false, "unknown dispatch policy");
  return {};
}

std::vector<DispatchPolicy> all_dispatch_policies() {
  return {DispatchPolicy::kRoundRobin, DispatchPolicy::kJoinShortestQueue,
          DispatchPolicy::kLeastOutstandingTokens, DispatchPolicy::kPowerOfTwoChoices};
}

std::vector<ReplicaSnapshot> eligible_snapshots(const std::vector<ReplicaSnapshot>& all,
                                                double slow_ewma_factor,
                                                double stale_age_ms) {
  std::vector<ReplicaSnapshot> eligible;
  eligible.reserve(all.size());
  for (const ReplicaSnapshot& s : all) {
    if (s.accepting && s.heartbeat_age_ms <= stale_age_ms) eligible.push_back(s);
  }
  MONDE_REQUIRE(!eligible.empty(),
                "no replica is accepting requests (every replica failed or retired)");
  if (!std::isfinite(slow_ewma_factor)) return eligible;
  // Soft filter: skip pathologically slow replicas, but never starve the
  // dispatcher -- if everyone looks slow, everyone stays eligible.
  std::vector<double> ewmas;
  for (const ReplicaSnapshot& s : eligible) {
    if (s.step_ewma_ms > 0.0) ewmas.push_back(s.step_ewma_ms);
  }
  if (ewmas.empty()) return eligible;
  const double cutoff = percentile(std::move(ewmas), 50.0) * slow_ewma_factor;
  std::vector<ReplicaSnapshot> fast;
  for (const ReplicaSnapshot& s : eligible) {
    if (s.step_ewma_ms <= cutoff) fast.push_back(s);
  }
  return fast.empty() ? eligible : fast;
}

std::unique_ptr<Dispatcher> make_dispatcher(DispatchPolicy policy, std::uint64_t seed) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return std::make_unique<RoundRobinDispatcher>();
    case DispatchPolicy::kJoinShortestQueue:
      return std::make_unique<JoinShortestQueueDispatcher>();
    case DispatchPolicy::kLeastOutstandingTokens:
      return std::make_unique<LeastOutstandingTokensDispatcher>();
    case DispatchPolicy::kPowerOfTwoChoices:
      return std::make_unique<PowerOfTwoChoicesDispatcher>(seed);
  }
  MONDE_ASSERT(false, "unknown dispatch policy");
  return nullptr;
}

}  // namespace monde::serve
