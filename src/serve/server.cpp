#include "serve/server.hpp"

namespace monde::serve {

ServerSim::ServerSim(core::InferenceEngine& engine, SchedulerConfig cfg)
    : engine_{engine}, cfg_{cfg}, sched_{cfg}, st_{engine.make_state()} {
  cfg_.validate();
}

void ServerSim::enqueue(const Request& rq) { sched_.push(rq); }

void ServerSim::advance_to(Duration t) {
  for (;;) {
    // A step that would start at or after `t` belongs to a later call: the
    // caller may still enqueue arrivals landing in [t, start). Equally, a
    // step whose end sits at or after `t` keeps its completion deferred, so
    // load snapshots taken at `t` see the mid-step queue state.
    if (st_.now >= t) return;
    apply_pending_completion();
    sched_.release_arrivals(st_.now);
    const std::vector<RequestState*> newly = sched_.admit();
    if (newly.empty() && sched_.active().empty()) {
      // Nothing runnable here: fast-forward to the next queued arrival (or
      // hand control back and wait for enqueue()/drain()).
      const Duration next = sched_.next_arrival();
      if (next >= t) return;
      st_.now = monde::max(st_.now, next);
      continue;
    }
    step(newly);
  }
}

Duration ServerSim::next_event_time() const {
  if (sched_.step_ready()) return st_.now;
  return sched_.next_arrival();
}

void ServerSim::drain() {
  sched_.seal();
  advance_to(Duration::infinite());
  apply_pending_completion();
  MONDE_ASSERT(sched_.drained(), "drain() left requests unserved");
}

void ServerSim::apply_pending_completion() {
  if (!completion_pending_) return;
  completion_pending_ = false;
  sched_.complete_step(pending_end_);
}

void ServerSim::step(const std::vector<RequestState*>& newly) {
  StepRecord rec;
  rec.index = static_cast<std::int64_t>(steps_.size());
  rec.start = st_.now;
  for (RequestState* rs : newly) {
    rs->admitted = st_.now;
    engine_.prefill(st_, 1, rs->request.prompt_len);
    rec.prefill_tokens += rs->request.prompt_len;
  }
  // Newly admitted requests join this step's decode immediately, so a
  // step's cost is its prefills plus one shared decode over all slots.
  const std::vector<core::DecodeSlot> slots = sched_.slots();
  const std::vector<moe::MoeLayerWork> works = sched_.step_works(engine_.workload());
  const core::StepResult sr = engine_.decode_step(st_, slots, works);
  // The step is priced now, but its scheduler effects land at sr.end: defer
  // them so load queries between now and then see the mid-step state.
  completion_pending_ = true;
  pending_end_ = sr.end;
  rec.decode_tokens = static_cast<std::int64_t>(slots.size());
  rec.end = st_.now;
  busy_ += rec.end - rec.start;
  steps_.push_back(rec);
}

ServeReport ServerSim::report() const {
  MONDE_REQUIRE(sched_.drained(), "report() before the server drained");
  ServeReport report;
  report.strategy = engine_.strategy().name();
  report.mode = to_string(cfg_.mode);
  report.steps = steps_;
  report.makespan = st_.now;
  report.busy = busy_;
  std::vector<double> ttft_ms, tpot_ms, e2e_ms;
  for (const RequestState& rs : sched_.states()) {
    MONDE_ASSERT(rs.done, "request " << rs.request.id << " never completed");
    RequestMetrics m;
    m.id = rs.request.id;
    m.prompt_len = rs.request.prompt_len;
    m.generated = rs.generated;
    m.arrival = rs.request.arrival;
    m.admitted = rs.admitted;
    m.first_token = rs.first_token;
    m.completion = rs.completion;
    report.generated_tokens += static_cast<std::uint64_t>(rs.generated);
    ttft_ms.push_back(m.ttft().ms());
    if (m.generated > 1) tpot_ms.push_back(m.tpot().ms());
    e2e_ms.push_back(m.e2e().ms());
    report.requests.push_back(m);
  }
  // A replica that never received a request legitimately reports nothing.
  if (!ttft_ms.empty()) report.ttft_ms = compute_percentiles(std::move(ttft_ms));
  if (!tpot_ms.empty()) report.tpot_ms = compute_percentiles(std::move(tpot_ms));
  if (!e2e_ms.empty()) report.e2e_ms = compute_percentiles(std::move(e2e_ms));
  report.tokens_per_s = report.makespan > Duration::zero()
                            ? static_cast<double>(report.generated_tokens) /
                                  report.makespan.sec()
                            : 0.0;
  return report;
}

ServeReport ServerSim::run(std::vector<Request> trace) {
  sched_.submit(std::move(trace));  // rejects a used server or an empty trace
  drain();
  return report();
}

}  // namespace monde::serve
