#include "serve/server.hpp"

#include <tuple>

namespace monde::serve {

ServerSim::ServerSim(core::InferenceEngine& engine, SchedulerConfig cfg, Duration start_at,
                     FaultSpec fault, PrefixCacheConfig cache, ExpertServingConfig expert,
                     DisaggConfig disagg, bool prefill_role)
    : engine_{engine},
      cfg_{cfg},
      sched_{cfg},
      st_{engine.make_state()},
      start_at_{start_at},
      fault_{fault},
      cache_{cache},
      expert_{expert},
      expert_cache_{expert.enabled ? expert.cache_capacity : 0},
      disagg_{disagg},
      prefill_role_{prefill_role} {
  cfg_.validate();
  fault_.validate();
  expert_.validate();
  disagg_.validate();
  MONDE_REQUIRE(!prefill_role_ || disagg_.enabled,
                "the prefill role requires disaggregated serving to be enabled");
  MONDE_REQUIRE(!prefill_role_ || cfg_.mode == BatchingMode::kContinuous,
                "a prefill-role replica needs continuous batching (a fixed batch "
                "cannot release requests mid-batch)");
  if (expert_.enabled) {
    const Bytes bytes = expert_.expert_bytes.count() > 0
                            ? expert_.expert_bytes
                            : engine_.workload().model().expert_bytes();
    expert_fetch_time_ = expert_.fetch_link.transfer_time(bytes);
  }
  MONDE_REQUIRE(start_at_ >= Duration::zero(), "server cannot boot before t=0");
  MONDE_REQUIRE(fault_.fail_at > start_at_, "fail-stop must lie after the boot instant");
  // Booting at start_at: the clock starts there, so no step can begin
  // earlier while enqueues land in the queue at any time (cold start).
  st_.now = start_at_;
  if (cache_.enabled()) {
    // Admission budgets with the cache's shared-prefix savings; the
    // discount is frozen per request at admission so step() prices exactly
    // what admission charged for.
    sched_.set_prefill_discount(
        [this](const Request& rq) { return cache_.saved_tokens(rq); });
  }
}

void ServerSim::enqueue(const Request& rq) {
  MONDE_REQUIRE(!harvested_, "enqueue() on a harvested or evacuated server");
  sched_.push(rq);
  touch();
}

void ServerSim::advance_to(Duration t) {
  if (failed_) return;  // frozen at the fail-stop instant forever
  // Mutation detection for version(): everything next_event_time() and the
  // dispatch-facing load accessors read, snapshotted before the loop.
  const auto observable = [this] {
    return std::tuple{st_.now,          steps_.size(),    completion_pending_,
                      failed_,          sched_.queued_count(), sched_.in_flight(),
                      sched_.next_arrival()};
  };
  const auto before = observable();
  // Death occurs the moment simulated time reaches fail_at: no step starts
  // at or after it, which the strict-before loop below gives us by clamping.
  const bool dies = fault_.fail_stop() && t >= fault_.fail_at;
  if (dies) t = fault_.fail_at;
  for (;;) {
    // A step that would start at or after `t` belongs to a later call: the
    // caller may still enqueue arrivals landing in [t, start). Equally, a
    // step whose end sits at or after `t` keeps its completion deferred, so
    // load snapshots taken at `t` see the mid-step queue state.
    if (st_.now >= t) break;
    apply_pending_completion();
    sched_.release_arrivals(st_.now);
    const std::vector<RequestState*> newly = sched_.admit();
    if (newly.empty() && sched_.active().empty()) {
      // Nothing runnable here: fast-forward to the next queued arrival (or
      // hand control back and wait for enqueue()/drain()).
      const Duration next = sched_.next_arrival();
      if (next >= t) break;
      st_.now = monde::max(st_.now, next);
      continue;
    }
    step(newly);
  }
  if (dies) fail_now();
  if (observable() != before) touch();
}

Duration ServerSim::next_event_time() const {
  if (next_event_valid_) return next_event_cache_;
  next_event_valid_ = true;
  if (failed_) return next_event_cache_ = Duration::infinite();
  if (sched_.step_ready()) return next_event_cache_ = st_.now;
  // An arrival already at or before the clock (a cold-starting replica
  // buffers those) becomes runnable the moment the clock can move: the
  // event time is the clock itself, never the past.
  return next_event_cache_ = monde::max(st_.now, sched_.next_arrival());
}

void ServerSim::drain() {
  sched_.seal();
  touch();  // seal() may unblock a fixed-mode batch-fill wait
  advance_to(Duration::infinite());
  apply_pending_completion();
  touch();
  MONDE_ASSERT(sched_.drained(),
               (failed_ ? "drain() on a failed server with unharvested stranded requests"
                        : "drain() left requests unserved"));
}

void ServerSim::fail_now() {
  failed_ = true;
  // A completion landing at or before the instant of death made it; one
  // landing after dies with the node (its requests strand mid-step, and
  // the step's would-be cache admissions die too).
  if (completion_pending_ && pending_end_ <= fault_.fail_at) apply_pending_completion();
  completion_pending_ = false;
  pending_admits_.clear();
  // The step cut short by the failure only burned cycles up to the death.
  if (!steps_.empty() && steps_.back().end > fault_.fail_at) {
    busy_ -= steps_.back().end - fault_.fail_at;
    steps_.back().end = fault_.fail_at;
  }
  st_.now = monde::min(st_.now, fault_.fail_at);
}

std::vector<Request> ServerSim::harvest_stranded() {
  MONDE_REQUIRE(failed_, "harvest_stranded() is only valid after a fail-stop");
  MONDE_REQUIRE(!harvested_, "stranded requests were already harvested");
  harvested_ = true;
  std::vector<Request> stranded = sched_.abort_unfinished();
  cache_.drop_pinned();
  for (const Request& rq : stranded) unpin_experts(rq.id, /*evict=*/true);
  touch();
  return stranded;
}

std::vector<Request> ServerSim::evacuate() {
  MONDE_REQUIRE(!failed_, "evacuate() needs a live server (harvest_stranded() a dead one)");
  MONDE_REQUIRE(!harvested_, "server was already harvested or evacuated");
  harvested_ = true;
  // Migration happens at the step boundary: the step in flight completes
  // (deterministically, at its already-priced end) and its effects are part
  // of the checkpoint the requests carry away -- unless a scheduled
  // fail-stop lands inside that step, in which case the node never finishes
  // it and migration cannot rescue its effects (the same rule fail_now()
  // applies).
  if (completion_pending_ && fault_.fail_stop() && pending_end_ > fault_.fail_at) {
    completion_pending_ = false;
    pending_admits_.clear();
  }
  apply_pending_completion();
  std::vector<Request> moved = sched_.abort_unfinished();
  cache_.drop_pinned();
  // The migrating requests take their expert demand with them: experts no
  // remaining local request references leave the cache and re-home on
  // whichever replica the cluster re-dispatches the requests to.
  for (const Request& rq : moved) unpin_experts(rq.id, /*evict=*/true);
  touch();
  return moved;
}

void ServerSim::apply_pending_completion() {
  if (!completion_pending_) return;
  completion_pending_ = false;
  // The step committed: its admissions become resident (pins + stats)
  // before its decode tokens land on them.
  for (const auto& [rq, saved] : pending_admits_) cache_.admit(rq, saved);
  pending_admits_.clear();
  const StepOutcome out = sched_.complete_step(pending_end_);
  if (cache_.enabled()) {
    for (const std::uint64_t id : out.advanced) cache_.decode_token(id);
    for (const std::uint64_t id : out.finished) cache_.complete(id);
  }
  if (expert_.enabled) {
    for (const std::uint64_t id : out.finished) unpin_experts(id, /*evict=*/false);
  }
  if (prefill_role_) {
    // Prefill complete: every request whose admission step just landed
    // (prompt resident, first decode token surfaced) leaves for the decode
    // pool as a checkpointed resume. Its KV frontier ships over the handoff
    // link, priced per resident token; the outbound DMA is charged to this
    // replica's next step (pending_handoff_ship_), and the cluster turns
    // each record into a decode-pool dispatch at release + transfer.
    for (Request& rq : sched_.release_prefilled()) {
      cache_.complete(rq.id);  // no-op when the cache is disabled
      unpin_experts(rq.id, /*evict=*/false);
      const Duration transfer = disagg_.handoff_link.transfer_time(
          cache_.config().kv_bytes_per_token *
          static_cast<std::uint64_t>(rq.resume.resident_tokens()));
      ++handoff_count_;
      handoff_tokens_ += rq.resume.resident_tokens();
      handoff_transfer_ += transfer;
      pending_handoff_ship_ += transfer;
      handoffs_out_.push_back(HandoffRecord{std::move(rq), pending_end_, transfer});
    }
  }
}

std::vector<HandoffRecord> ServerSim::take_handoffs(Duration now) {
  MONDE_REQUIRE(prefill_role_, "take_handoffs() on a non-prefill replica");
  if (!failed_ && completion_pending_ && pending_end_ < now) {
    apply_pending_completion();
    touch();
  }
  std::vector<HandoffRecord> out;
  out.swap(handoffs_out_);
  return out;
}

void ServerSim::step(const std::vector<RequestState*>& newly) {
  StepRecord rec;
  rec.index = static_cast<std::int64_t>(steps_.size());
  rec.start = st_.now;
  for (RequestState* rs : newly) {
    rs->admitted = st_.now;
    // Cached tokens (resumed prefix or shared-prefix hit) skip the prefill;
    // a fully-covered prompt runs none at all. The cache itself learns of
    // the admission only once this step's completion applies -- a step
    // discarded by a fail-stop must not count as cache traffic.
    const std::int64_t prefill_len = rs->request.prompt_len - rs->saved_tokens;
    if (prefill_len > 0) engine_.prefill(st_, 1, prefill_len);
    rec.prefill_tokens += prefill_len;
    rec.cached_tokens += rs->saved_tokens;
    if (cache_.enabled()) pending_admits_.emplace_back(rs->request, rs->saved_tokens);
  }
  // Newly admitted requests join this step's decode immediately, so a
  // step's cost is its prefills plus one shared decode over all slots.
  const std::vector<core::DecodeSlot> slots = sched_.slots();
  const std::vector<moe::MoeLayerWork> works = sched_.step_works(engine_.workload());
  const core::StepResult sr = engine_.decode_step(st_, slots, works);
  // The step is priced now, but its scheduler effects land at sr.end: defer
  // them so load queries between now and then see the mid-step state.
  completion_pending_ = true;
  pending_end_ = sr.end;
  // Slow-down fault: dilate the whole step (prefills + decode) about its
  // start. The engine's internal schedule keeps native spans; the server's
  // clock and the deferred completion carry the externally imposed factor,
  // so subsequent steps start (and requests finish) proportionally later.
  const double factor = fault_.factor_at(rec.start);
  if (factor != 1.0) {
    st_.now = rec.start + (st_.now - rec.start) * factor;
    pending_end_ = rec.start + (sr.end - rec.start) * factor;
  }
  // Expert residency: every active request's profiled experts must be hot
  // for this step. Misses fetch over the configured link and stretch the
  // step (the decode synchronizes on the weights); rebalance preloads that
  // arrived since the last step are charged here too. The walk is in
  // admission order, so the accounting is deterministic.
  if (expert_.enabled) {
    for (const RequestState* rs : newly) pin_experts(rs->request);
    const auto& states = sched_.states();
    for (const std::size_t idx : sched_.active()) {
      for (const auto& e : states[idx].request.expert_profile.experts) {
        const core::ExpertId id{e.layer, e.expert};
        if (!expert_cache_.access(id)) {
          expert_cache_.insert(id);
          ++rec.expert_misses;
        }
      }
    }
    rec.expert_fetch = expert_fetch_time_ * static_cast<double>(rec.expert_misses) +
                       pending_preload_;
    pending_preload_ = Duration::zero();
    st_.now += rec.expert_fetch;
    pending_end_ += rec.expert_fetch;
  }
  // Outbound KV handoffs released at the previous boundary occupy the link
  // now; this step synchronizes on the DMA (same model as the preloads).
  if (pending_handoff_ship_ > Duration::zero()) {
    rec.handoff_ship = pending_handoff_ship_;
    pending_handoff_ship_ = Duration::zero();
    st_.now += rec.handoff_ship;
    pending_end_ += rec.handoff_ship;
  }
  rec.decode_tokens = static_cast<std::int64_t>(slots.size());
  rec.end = st_.now;
  busy_ += rec.end - rec.start;
  steps_.push_back(rec);
}

void ServerSim::pin_experts(const Request& rq) {
  if (rq.expert_profile.empty()) return;
  std::vector<core::ExpertId>& ids = request_experts_[rq.id];
  for (const auto& e : rq.expert_profile.experts) {
    const core::ExpertId id{e.layer, e.expert};
    ids.push_back(id);
    ++expert_pins_[id];
  }
}

void ServerSim::unpin_experts(std::uint64_t id, bool evict) {
  const auto it = request_experts_.find(id);
  if (it == request_experts_.end()) return;
  for (const core::ExpertId& eid : it->second) {
    const auto pin = expert_pins_.find(eid);
    MONDE_ASSERT(pin != expert_pins_.end() && pin->second > 0,
                 "expert residency refcount underflow");
    if (--pin->second == 0) {
      expert_pins_.erase(pin);
      if (evict) expert_cache_.erase(eid);
    }
  }
  request_experts_.erase(it);
}

std::size_t ServerSim::preload_experts(const std::vector<core::ExpertId>& ids) {
  if (!expert_.enabled || failed_ || harvested_) return 0;
  std::size_t fetched = 0;
  for (const core::ExpertId& id : ids) {
    if (expert_cache_.contains(id)) continue;
    expert_cache_.insert(id);
    pending_preload_ += expert_fetch_time_;
    ++fetched;
  }
  if (fetched > 0) touch();
  return fetched;
}

ServeReport ServerSim::report() const {
  MONDE_REQUIRE(sched_.drained(), "report() before the server drained");
  ServeReport report;
  report.strategy = engine_.strategy().name();
  report.mode = to_string(cfg_.mode);
  report.steps = steps_;
  report.makespan = st_.now;
  report.busy = busy_;
  std::vector<double> ttft_ms, tpot_ms, e2e_ms;
  for (const RequestState& rs : sched_.states()) {
    if (rs.handed_off) {
      // The request left mid-flight for a decode replica; its latency
      // metrics finish there. Credit only the tokens decoded here.
      report.generated_tokens +=
          static_cast<std::uint64_t>(rs.generated - rs.request.resume.decoded);
      continue;
    }
    MONDE_ASSERT(rs.done, "request " << rs.request.id << " never completed");
    RequestMetrics m;
    m.id = rs.request.id;
    m.attempt = rs.request.attempt;
    m.prompt_len = rs.request.prompt_len;
    m.generated = rs.generated;
    m.saved_tokens = rs.saved_tokens;
    m.resumed_tokens = rs.request.resume.decoded;
    m.arrival = rs.request.arrival;
    m.admitted = rs.admitted;
    m.first_token = rs.first_token;
    m.completion = rs.completion;
    // Only locally decoded tokens count toward this server's throughput.
    report.generated_tokens += static_cast<std::uint64_t>(rs.generated - m.resumed_tokens);
    // A resumed request's first token predates this server (and possibly
    // its local arrival): its TTFT/TPOT belong to the fleet-level re-based
    // metrics, not this replica's.
    if (m.resumed_tokens == 0) {
      ttft_ms.push_back(m.ttft().ms());
      if (m.generated > 1) tpot_ms.push_back(m.tpot().ms());
    }
    e2e_ms.push_back(m.e2e().ms());
    report.requests.push_back(m);
  }
  // A replica that never received a request legitimately reports nothing.
  if (!ttft_ms.empty()) report.ttft_ms = compute_percentiles(std::move(ttft_ms));
  if (!tpot_ms.empty()) report.tpot_ms = compute_percentiles(std::move(tpot_ms));
  if (!e2e_ms.empty()) report.e2e_ms = compute_percentiles(std::move(e2e_ms));
  report.tokens_per_s = report.makespan > Duration::zero()
                            ? static_cast<double>(report.generated_tokens) /
                                  report.makespan.sec()
                            : 0.0;
  report.cache = cache_.stats();
  report.expert_hits = expert_cache_.hits();
  report.expert_misses = expert_cache_.misses();
  report.expert_hit_rate = expert_cache_.hit_rate();
  report.resident_experts = expert_cache_.size();
  report.handoffs = handoff_count_;
  report.handoff_tokens = handoff_tokens_;
  report.handoff_transfer = handoff_transfer_;
  return report;
}

ServeReport ServerSim::run(std::vector<Request> trace) {
  sched_.submit(std::move(trace));  // rejects a used server or an empty trace
  touch();
  drain();
  return report();
}

}  // namespace monde::serve
