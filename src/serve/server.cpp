#include "serve/server.hpp"

namespace monde::serve {

ServerSim::ServerSim(core::InferenceEngine& engine, SchedulerConfig cfg)
    : engine_{engine}, cfg_{cfg} {
  cfg_.validate();
}

ServeReport ServerSim::run(std::vector<Request> trace) {
  ContinuousBatchScheduler sched{cfg_};
  sched.submit(std::move(trace));

  core::EngineState st = engine_.make_state();
  ServeReport report;
  report.strategy = engine_.strategy().name();
  report.mode = to_string(cfg_.mode);

  while (!sched.finished()) {
    sched.release_arrivals(st.now);
    const std::vector<RequestState*> newly = sched.admit();
    if (newly.empty() && sched.active().empty()) {
      // Nothing runnable: fast-forward to the next arrival (continuous) or
      // to the arrival that completes a fixed batch.
      const Duration next = sched.next_arrival();
      MONDE_ASSERT(next < Duration::infinite(), "server idle with no future arrivals");
      st.now = monde::max(st.now, next);
      continue;
    }

    StepRecord rec;
    rec.index = static_cast<std::int64_t>(report.steps.size());
    rec.start = st.now;
    for (RequestState* rs : newly) {
      rs->admitted = st.now;
      engine_.prefill(st, 1, rs->request.prompt_len);
      rec.prefill_tokens += rs->request.prompt_len;
    }
    // Newly admitted requests join this step's decode immediately, so a
    // step's cost is its prefills plus one shared decode over all slots.
    const std::vector<core::DecodeSlot> slots = sched.slots();
    const std::vector<moe::MoeLayerWork> works = sched.step_works(engine_.workload());
    const core::StepResult sr = engine_.decode_step(st, slots, works);
    sched.complete_step(sr.end);
    rec.decode_tokens = static_cast<std::int64_t>(slots.size());
    rec.end = st.now;
    report.steps.push_back(rec);
  }

  report.makespan = st.now;
  std::vector<double> ttft_ms, tpot_ms, e2e_ms;
  for (const RequestState& rs : sched.states()) {
    MONDE_ASSERT(rs.done, "request " << rs.request.id << " never completed");
    RequestMetrics m;
    m.id = rs.request.id;
    m.prompt_len = rs.request.prompt_len;
    m.generated = rs.generated;
    m.arrival = rs.request.arrival;
    m.admitted = rs.admitted;
    m.first_token = rs.first_token;
    m.completion = rs.completion;
    report.generated_tokens += static_cast<std::uint64_t>(rs.generated);
    ttft_ms.push_back(m.ttft().ms());
    if (m.generated > 1) tpot_ms.push_back(m.tpot().ms());
    e2e_ms.push_back(m.e2e().ms());
    report.requests.push_back(m);
  }
  report.ttft_ms = compute_percentiles(std::move(ttft_ms));
  if (!tpot_ms.empty()) report.tpot_ms = compute_percentiles(std::move(tpot_ms));
  report.e2e_ms = compute_percentiles(std::move(e2e_ms));
  report.tokens_per_s = report.makespan > Duration::zero()
                            ? static_cast<double>(report.generated_tokens) /
                                  report.makespan.sec()
                            : 0.0;
  return report;
}

}  // namespace monde::serve
