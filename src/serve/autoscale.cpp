#include "serve/autoscale.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace monde::serve {

void AutoscaleConfig::validate() const {
  MONDE_REQUIRE(min_replicas >= 1, "a fleet needs at least one replica");
  MONDE_REQUIRE(max_replicas >= min_replicas,
                "max_replicas (" << max_replicas << ") must be >= min_replicas ("
                                 << min_replicas << ")");
  MONDE_REQUIRE(high_tokens_per_replica > low_tokens_per_replica,
                "watermarks must leave a hysteresis band: high "
                    << high_tokens_per_replica << " <= low " << low_tokens_per_replica);
  MONDE_REQUIRE(low_tokens_per_replica >= 0, "low watermark must be non-negative");
  MONDE_REQUIRE(step >= 1, "autoscaling step must be >= 1");
  MONDE_REQUIRE(cooldown >= Duration::zero(), "cooldown must be non-negative");
}

namespace {

class QueuePressureAutoscaler final : public Autoscaler {
 public:
  explicit QueuePressureAutoscaler(AutoscaleConfig cfg) : cfg_{cfg} { cfg_.validate(); }

  [[nodiscard]] std::string name() const override { return "queue-pressure"; }

  std::size_t target_size(const AutoscaleSignals& s) override {
    const std::size_t capacity = std::max<std::size_t>(s.capacity(), 1);
    const auto clamp = [&](std::size_t n) {
      return std::clamp(n, cfg_.min_replicas, cfg_.max_replicas);
    };
    if (cfg_.cooldown > Duration::zero() && last_change_ > Duration::zero() &&
        s.now < last_change_ + cfg_.cooldown) {
      return clamp(capacity);
    }
    const double per_replica = static_cast<double>(s.outstanding_tokens) /
                               static_cast<double>(capacity);
    const bool delay_hot =
        cfg_.high_queue_delay_ms > 0.0 && s.p95_queue_delay_ms > cfg_.high_queue_delay_ms;
    std::size_t target = capacity;
    if (per_replica > static_cast<double>(cfg_.high_tokens_per_replica) || delay_hot) {
      target = capacity + cfg_.step;
    } else if (per_replica < static_cast<double>(cfg_.low_tokens_per_replica) &&
               !delay_hot && s.warming_replicas == 0) {
      // Never shrink while a scale-up is still warming: the pressure that
      // triggered it has not been absorbed yet.
      target = capacity > cfg_.step ? capacity - cfg_.step : 1;
    }
    target = clamp(target);
    if (target != capacity) last_change_ = s.now;
    return target;
  }

 private:
  AutoscaleConfig cfg_;
  Duration last_change_ = Duration::zero();
};

}  // namespace

std::unique_ptr<Autoscaler> make_queue_pressure_autoscaler(AutoscaleConfig cfg) {
  return std::make_unique<QueuePressureAutoscaler>(cfg);
}

}  // namespace monde::serve
