// Autoscaling policies for the cluster serving layer.
//
// ClusterSim evaluates its Autoscaler at a fixed simulated-time cadence
// (ClusterConfig::autoscale_period) while arrivals remain, handing it the
// fleet's queue-pressure signals and asking for a desired replica count.
// The cluster then converges: scale-up spawns fresh replicas of its growth
// template with a modelled cold start (the new replica accepts and queues
// requests immediately but runs no step until spawn + warmup -- the expert
// working set is being placed); scale-down retires the emptiest accepting
// replica, which finishes its queue and then idles, but is never dispatched
// to again. Failed replicas do not count toward capacity once detected,
// so an autoscaler naturally replaces dead capacity.
//
// Like dispatchers, autoscalers are pure policy: deterministic, engine-free
// values in, a target fleet size out. To add a policy, implement
// Autoscaler::target_size() and hand an instance to ClusterSim::run() --
// see docs/ARCHITECTURE.md for a worked example.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/units.hpp"

namespace monde::serve {

/// Fleet queue-pressure signals at one evaluation tick. Token quantities
/// count tokens; delays are simulated milliseconds.
struct AutoscaleSignals {
  Duration now = Duration::zero();
  std::size_t ready_replicas = 0;    ///< accepting and past warm-up
  std::size_t warming_replicas = 0;  ///< spun up, still cold-starting
  std::size_t in_flight = 0;         ///< accepted-but-unfinished requests, fleet-wide
  std::int64_t outstanding_tokens = 0;  ///< tokens still owed, fleet-wide
  std::size_t waiting_requests = 0;  ///< accepted, not yet admitted to a batch
  /// p95 of (now - arrival) over the waiting requests: how long the queue's
  /// tail has already been sitting. 0 when nothing waits.
  double p95_queue_delay_ms = 0.0;

  /// Accepting capacity the decision starts from.
  [[nodiscard]] std::size_t capacity() const { return ready_replicas + warming_replicas; }
};

/// An autoscaling policy. target_size() is called once per evaluation tick,
/// in time order; implementations may carry state (cooldown clocks).
class Autoscaler {
 public:
  virtual ~Autoscaler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Desired accepting-replica count (ready + warming). The cluster clamps
  /// the result to at least one replica and converges toward it.
  [[nodiscard]] virtual std::size_t target_size(const AutoscaleSignals& s) = 0;
};

/// Configuration for the shipped queue-pressure policy.
struct AutoscaleConfig {
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 8;
  /// Scale up when outstanding tokens per accepting replica exceed this
  /// high watermark; scale down below the low watermark (hysteresis band).
  std::int64_t high_tokens_per_replica = 256;
  std::int64_t low_tokens_per_replica = 32;
  /// Optional latency trigger: also scale up when the p95 queue delay
  /// exceeds this many simulated milliseconds. <= 0 disables it.
  double high_queue_delay_ms = 0.0;
  /// Replicas added or removed per decision.
  std::size_t step = 1;
  /// Minimum simulated time between two scaling actions (0 = none). Ticks
  /// inside the cooldown hold the fleet size steady.
  Duration cooldown = Duration::zero();

  void validate() const;
};

/// Hysteresis autoscaler over outstanding-token pressure with an optional
/// p95-queue-delay trigger. Never scales down while a replica is still
/// warming (the previous decision has not landed yet).
[[nodiscard]] std::unique_ptr<Autoscaler> make_queue_pressure_autoscaler(AutoscaleConfig cfg);

}  // namespace monde::serve
