#include "serve/arrivals.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace monde::serve {

void RequestShape::validate() const {
  MONDE_REQUIRE(prompt_min > 0 && prompt_max >= prompt_min,
                "request shape needs 0 < prompt_min <= prompt_max");
  MONDE_REQUIRE(new_tokens_min > 0 && new_tokens_max >= new_tokens_min,
                "request shape needs 0 < new_tokens_min <= new_tokens_max");
  MONDE_REQUIRE(prefix_groups >= 0, "prefix_groups must be non-negative");
  if (prefix_groups > 0) {
    MONDE_REQUIRE(shared_fraction >= 0.0 && shared_fraction <= 1.0,
                  "shared_fraction must lie in [0, 1], got " << shared_fraction);
    MONDE_REQUIRE(shared_prefix_len > 0 && shared_prefix_len <= prompt_min,
                  "shared_prefix_len must lie in (0, prompt_min] so every group "
                  "member actually carries the prefix");
  }
}

namespace {

std::int64_t draw_range(Rng& rng, std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  rng.next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

/// Shared tail: assign ids and shapes over a vector of arrival times.
std::vector<Request> shape_trace(const std::vector<Duration>& arrivals,
                                 const RequestShape& shape, std::uint64_t seed) {
  Rng rng{seed};
  // Prefix assignment draws from its own stream (like the arrival stream)
  // so enabling shared prefixes leaves the per-request shapes bit-identical.
  Rng prefix_rng{seed ^ 0x9e3779b97f4a7c15ULL};
  std::vector<Request> trace;
  trace.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    Request rq;
    rq.id = i;
    rq.arrival = arrivals[i];
    rq.prompt_len = draw_range(rng, shape.prompt_min, shape.prompt_max);
    rq.max_new_tokens = draw_range(rng, shape.new_tokens_min, shape.new_tokens_max);
    if (shape.prefix_groups > 0 && prefix_rng.next_double() < shape.shared_fraction) {
      rq.prefix_id =
          1 + prefix_rng.next_below(static_cast<std::uint64_t>(shape.prefix_groups));
      rq.shared_prefix_len = std::min(shape.shared_prefix_len, rq.prompt_len);
    }
    rq.validate();
    trace.push_back(rq);
  }
  return trace;
}

}  // namespace

std::vector<Request> closed_loop_trace(int n, const RequestShape& shape, std::uint64_t seed) {
  MONDE_REQUIRE(n > 0, "trace needs n > 0 requests, got " << n);
  shape.validate();
  return shape_trace(std::vector<Duration>(static_cast<std::size_t>(n), Duration::zero()),
                     shape, seed);
}

std::vector<Request> poisson_trace(int n, double rate_per_s, const RequestShape& shape,
                                   std::uint64_t seed) {
  MONDE_REQUIRE(n > 0, "trace needs n > 0 requests, got " << n);
  MONDE_REQUIRE(rate_per_s > 0.0, "Poisson trace needs rate > 0, got " << rate_per_s);
  shape.validate();
  // Draw inter-arrival gaps with an Rng distinct from the shape stream so
  // changing the shape envelope does not perturb arrival times.
  Rng rng{seed ^ 0xa11a5a11a5ULL};
  std::vector<Duration> arrivals;
  arrivals.reserve(static_cast<std::size_t>(n));
  Duration t = Duration::zero();
  for (int i = 0; i < n; ++i) {
    // Exponential inter-arrival: -ln(1-u) / rate.
    t += Duration::seconds(-std::log(1.0 - rng.next_double()) / rate_per_s);
    arrivals.push_back(t);
  }
  return shape_trace(arrivals, shape, seed);
}

std::vector<Request> bursty_trace(int n, int burst_size, Duration burst_gap,
                                  const RequestShape& shape, std::uint64_t seed) {
  MONDE_REQUIRE(n > 0, "trace needs n > 0 requests, got " << n);
  MONDE_REQUIRE(burst_size > 0, "bursty trace needs burst_size > 0, got " << burst_size);
  MONDE_REQUIRE(burst_gap > Duration::zero(), "bursty trace needs a positive burst gap");
  shape.validate();
  std::vector<Duration> arrivals;
  arrivals.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    arrivals.push_back(burst_gap * static_cast<double>(i / burst_size));
  }
  return shape_trace(arrivals, shape, seed);
}

}  // namespace monde::serve
