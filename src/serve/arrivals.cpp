#include "serve/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace monde::serve {

void RequestShape::validate() const {
  MONDE_REQUIRE(prompt_min > 0 && prompt_max >= prompt_min,
                "request shape needs 0 < prompt_min <= prompt_max");
  MONDE_REQUIRE(new_tokens_min > 0 && new_tokens_max >= new_tokens_min,
                "request shape needs 0 < new_tokens_min <= new_tokens_max");
  MONDE_REQUIRE(prefix_groups >= 0, "prefix_groups must be non-negative");
  if (prefix_groups > 0) {
    MONDE_REQUIRE(shared_fraction >= 0.0 && shared_fraction <= 1.0,
                  "shared_fraction must lie in [0, 1], got " << shared_fraction);
    MONDE_REQUIRE(shared_prefix_len > 0 && shared_prefix_len <= prompt_min,
                  "shared_prefix_len must lie in (0, prompt_min] so every group "
                  "member actually carries the prefix");
  }
  MONDE_REQUIRE(prefix_zipf_s >= 0.0,
                "prefix_zipf_s must be non-negative, got " << prefix_zipf_s);
}

namespace {

std::int64_t draw_range(Rng& rng, std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  rng.next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

/// Shared generator core: ids and shapes over arrival times produced one at
/// a time by the subclass. The shape and prefix draws live on their own RNG
/// streams (and arrival-time generators on a third), so interleaving the
/// draws per request yields bit-identical values to the historical
/// build-arrivals-then-shape-everything order.
class GeneratedStream : public ArrivalStream {
 public:
  GeneratedStream(int n, const RequestShape& shape, std::uint64_t seed)
      : n_{static_cast<std::size_t>(n)},
        shape_{shape},
        rng_{seed},
        // Prefix assignment draws from its own stream (like the arrival
        // stream) so enabling shared prefixes leaves the per-request shapes
        // bit-identical.
        prefix_rng_{seed ^ 0x9e3779b97f4a7c15ULL} {
    MONDE_REQUIRE(n > 0, "trace needs n > 0 requests, got " << n);
    shape_.validate();
    // Zipf-skewed group popularity: precompute the CDF once. At the default
    // s = 0 the table stays empty and the uniform next_below draw below is
    // untouched, keeping historical traces bit-identical.
    if (shape_.prefix_groups > 0 && shape_.prefix_zipf_s > 0.0) {
      const std::vector<double> w =
          zipf_weights(static_cast<std::size_t>(shape_.prefix_groups), shape_.prefix_zipf_s);
      prefix_cdf_.reserve(w.size());
      double acc = 0.0;
      for (const double wi : w) prefix_cdf_.push_back(acc += wi);
      const double total = prefix_cdf_.back();
      for (double& c : prefix_cdf_) c /= total;
    }
  }

  [[nodiscard]] std::optional<Request> next() final {
    if (next_id_ >= n_) return std::nullopt;
    Request rq;
    rq.id = next_id_;
    rq.arrival = arrival_of(next_id_);
    rq.prompt_len = draw_range(rng_, shape_.prompt_min, shape_.prompt_max);
    rq.max_new_tokens = draw_range(rng_, shape_.new_tokens_min, shape_.new_tokens_max);
    if (shape_.prefix_groups > 0 && prefix_rng_.next_double() < shape_.shared_fraction) {
      if (prefix_cdf_.empty()) {
        rq.prefix_id =
            1 + prefix_rng_.next_below(static_cast<std::uint64_t>(shape_.prefix_groups));
      } else {
        // Zipf-skewed popularity: invert the precomputed CDF (group 1 is
        // the heaviest tenant).
        const double u = prefix_rng_.next_double();
        const auto it = std::upper_bound(prefix_cdf_.begin(), prefix_cdf_.end(), u);
        rq.prefix_id = 1 + static_cast<std::uint64_t>(it - prefix_cdf_.begin());
        if (rq.prefix_id > static_cast<std::uint64_t>(shape_.prefix_groups)) {
          rq.prefix_id = static_cast<std::uint64_t>(shape_.prefix_groups);
        }
      }
      rq.shared_prefix_len = std::min(shape_.shared_prefix_len, rq.prompt_len);
    }
    rq.validate();
    ++next_id_;
    return rq;
  }

  [[nodiscard]] std::size_t size_hint() const final { return n_; }

 protected:
  /// Arrival instant of request `id`; called once per id, in id order.
  [[nodiscard]] virtual Duration arrival_of(std::uint64_t id) = 0;

 private:
  std::size_t n_;
  RequestShape shape_;
  Rng rng_;         ///< prompt-length / decode-budget draws
  Rng prefix_rng_;  ///< shared-prefix group draws
  std::vector<double> prefix_cdf_;  ///< Zipf group CDF (empty = uniform)
  std::uint64_t next_id_ = 0;
};

class ClosedLoopStream final : public GeneratedStream {
 public:
  using GeneratedStream::GeneratedStream;

 protected:
  [[nodiscard]] Duration arrival_of(std::uint64_t) override { return Duration::zero(); }
};

class PoissonStream final : public GeneratedStream {
 public:
  PoissonStream(int n, double rate_per_s, const RequestShape& shape, std::uint64_t seed)
      // Draw inter-arrival gaps with an Rng distinct from the shape stream
      // so changing the shape envelope does not perturb arrival times.
      : GeneratedStream{n, shape, seed}, rate_{rate_per_s}, rng_{seed ^ 0xa11a5a11a5ULL} {
    MONDE_REQUIRE(rate_per_s > 0.0, "Poisson trace needs rate > 0, got " << rate_per_s);
  }

 protected:
  [[nodiscard]] Duration arrival_of(std::uint64_t) override {
    // Exponential inter-arrival: -ln(1-u) / rate.
    t_ += Duration::seconds(-std::log(1.0 - rng_.next_double()) / rate_);
    return t_;
  }

 private:
  double rate_;
  Rng rng_;  ///< arrival-gap draws
  Duration t_ = Duration::zero();
};

class BurstyStream final : public GeneratedStream {
 public:
  BurstyStream(int n, int burst_size, Duration burst_gap, const RequestShape& shape,
               std::uint64_t seed)
      : GeneratedStream{n, shape, seed}, burst_size_{burst_size}, burst_gap_{burst_gap} {
    MONDE_REQUIRE(burst_size > 0, "bursty trace needs burst_size > 0, got " << burst_size);
    MONDE_REQUIRE(burst_gap > Duration::zero(), "bursty trace needs a positive burst gap");
  }

 protected:
  [[nodiscard]] Duration arrival_of(std::uint64_t id) override {
    return burst_gap_ * static_cast<double>(static_cast<std::int64_t>(id) / burst_size_);
  }

 private:
  int burst_size_;
  Duration burst_gap_;
};

}  // namespace

std::unique_ptr<ArrivalStream> closed_loop_stream(int n, const RequestShape& shape,
                                                  std::uint64_t seed) {
  return std::make_unique<ClosedLoopStream>(n, shape, seed);
}

std::unique_ptr<ArrivalStream> poisson_stream(int n, double rate_per_s,
                                              const RequestShape& shape, std::uint64_t seed) {
  return std::make_unique<PoissonStream>(n, rate_per_s, shape, seed);
}

std::unique_ptr<ArrivalStream> bursty_stream(int n, int burst_size, Duration burst_gap,
                                             const RequestShape& shape, std::uint64_t seed) {
  return std::make_unique<BurstyStream>(n, burst_size, burst_gap, shape, seed);
}

TraceArrivalStream::TraceArrivalStream(std::vector<Request> trace)
    : trace_{std::move(trace)} {}

std::optional<Request> TraceArrivalStream::next() {
  if (pos_ >= trace_.size()) return std::nullopt;
  const Request& rq = trace_[pos_];
  MONDE_REQUIRE(pos_ == 0 || !arrival_order(rq, trace_[pos_ - 1]),
                "trace replay is out of (arrival, id) order at position " << pos_);
  ++pos_;
  return rq;
}

std::vector<Request> materialize(ArrivalStream& stream) {
  std::vector<Request> trace;
  trace.reserve(stream.size_hint());
  while (std::optional<Request> rq = stream.next()) trace.push_back(*rq);
  return trace;
}

std::vector<Request> closed_loop_trace(int n, const RequestShape& shape, std::uint64_t seed) {
  return materialize(*closed_loop_stream(n, shape, seed));
}

std::vector<Request> poisson_trace(int n, double rate_per_s, const RequestShape& shape,
                                   std::uint64_t seed) {
  return materialize(*poisson_stream(n, rate_per_s, shape, seed));
}

std::vector<Request> bursty_trace(int n, int burst_size, Duration burst_gap,
                                  const RequestShape& shape, std::uint64_t seed) {
  return materialize(*bursty_stream(n, burst_size, burst_gap, shape, seed));
}

}  // namespace monde::serve
