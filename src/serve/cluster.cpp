#include "serve/cluster.hpp"

#include <algorithm>

#include "ndp/ndp_core.hpp"

namespace monde::serve {

std::vector<ReplicaSpec> uniform_fleet(std::size_t n, core::StrategyKind strategy,
                                       SchedulerConfig sched, std::uint64_t seed0) {
  MONDE_REQUIRE(n > 0, "a fleet needs at least one replica");
  std::vector<ReplicaSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs.push_back(ReplicaSpec{strategy, sched, seed0 + i});
  }
  return specs;
}

ClusterSim::ClusterSim(const core::SystemConfig& sys, const moe::MoeModelConfig& model,
                       const moe::SkewProfile& profile,
                       const std::vector<ReplicaSpec>& specs) {
  MONDE_REQUIRE(!specs.empty(), "cluster needs at least one replica");
  // All replicas run the same platform, so one NdpCoreSim serves the whole
  // fleet and expert-shape latencies memoize across replicas (the sharing
  // is timing-neutral; see test_fastpath_diff).
  auto shared_sim = std::make_shared<ndp::NdpCoreSim>(sys.ndp, sys.monde_mem);
  replicas_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Replica r;
    r.engine = std::make_unique<core::InferenceEngine>(sys, model, profile,
                                                       specs[i].strategy, specs[i].seed,
                                                       shared_sim);
    r.server = std::make_unique<ServerSim>(*r.engine, specs[i].sched);
    r.name = "replica" + std::to_string(i) + " (" + r.engine->strategy().name() + ")";
    replicas_.push_back(std::move(r));
  }
}

ClusterReport ClusterSim::run(std::vector<Request> trace, Dispatcher& dispatcher) {
  MONDE_REQUIRE(!used_, "ClusterSim::run() may be called only once");
  MONDE_REQUIRE(!trace.empty(), "cannot serve an empty trace");
  used_ = true;
  std::stable_sort(trace.begin(), trace.end(), arrival_order<Request>);

  // Dispatch loop: bring every replica up to the arrival instant, snapshot
  // their live load, let the policy pick, hand over the request.
  std::vector<ReplicaSnapshot> snapshots(replicas_.size());
  for (const Request& rq : trace) {
    for (Replica& r : replicas_) r.server->advance_to(rq.arrival);
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      snapshots[i] = ReplicaSnapshot{i, replicas_[i].server->in_flight(),
                                     replicas_[i].server->outstanding_tokens()};
    }
    const std::size_t pick = dispatcher.pick(snapshots);
    MONDE_REQUIRE(pick < replicas_.size(),
                  "dispatcher picked replica " << pick << " of " << replicas_.size());
    replicas_[pick].server->enqueue(rq);
    ++replicas_[pick].dispatched;
  }
  // No further arrivals: replicas finish independently, so each can drain
  // to completion on its own.
  for (Replica& r : replicas_) r.server->drain();

  ClusterReport rep;
  rep.policy = dispatcher.name();
  std::vector<double> busy_ms;
  std::vector<double> ttft_ms, tpot_ms, e2e_ms;
  rep.replicas.reserve(replicas_.size());
  for (Replica& r : replicas_) {
    ReplicaReport rr;
    rr.name = r.name;
    rr.serve = r.server->report();
    rr.dispatched = r.dispatched;
    rep.makespan = monde::max(rep.makespan, rr.serve.makespan);
    rep.generated_tokens += rr.serve.generated_tokens;
    busy_ms.push_back(rr.serve.busy.ms());
    for (const RequestMetrics& m : rr.serve.requests) {
      ttft_ms.push_back(m.ttft().ms());
      if (m.generated > 1) tpot_ms.push_back(m.tpot().ms());
      e2e_ms.push_back(m.e2e().ms());
      rep.requests.push_back(m);
    }
    rep.replicas.push_back(std::move(rr));
  }
  std::stable_sort(rep.requests.begin(), rep.requests.end(), arrival_order<RequestMetrics>);
  for (ReplicaReport& rr : rep.replicas) {
    rr.utilization = rep.makespan > Duration::zero() ? rr.serve.busy / rep.makespan : 0.0;
  }
  rep.imbalance = imbalance_factor(busy_ms);
  if (!ttft_ms.empty()) rep.ttft_ms = compute_percentiles(std::move(ttft_ms));
  if (!tpot_ms.empty()) rep.tpot_ms = compute_percentiles(std::move(tpot_ms));
  if (!e2e_ms.empty()) rep.e2e_ms = compute_percentiles(std::move(e2e_ms));
  rep.tokens_per_s = rep.makespan > Duration::zero()
                         ? static_cast<double>(rep.generated_tokens) / rep.makespan.sec()
                         : 0.0;
  return rep;
}

}  // namespace monde::serve
