#include "serve/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/taskpool.hpp"
#include "ndp/ndp_core.hpp"

namespace monde::serve {

std::vector<ReplicaSpec> uniform_fleet(std::size_t n, core::StrategyKind strategy,
                                       SchedulerConfig sched, std::uint64_t seed0) {
  MONDE_REQUIRE(n > 0, "a fleet needs at least one replica");
  std::vector<ReplicaSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs.push_back(ReplicaSpec{strategy, sched, seed0 + i, FaultSpec{}});
  }
  return specs;
}

void ClusterConfig::validate() const {
  health.validate();
  MONDE_REQUIRE(retry_timeout > Duration::zero(), "retry_timeout must be positive");
  MONDE_REQUIRE(warmup >= Duration::zero(), "warmup must be non-negative");
  MONDE_REQUIRE(autoscale_period > Duration::zero(), "autoscale_period must be positive");
  MONDE_REQUIRE(threads >= 1, "threads must be >= 1 (the calling thread counts)");
  cache.validate();
  expert.validate();
  disagg.validate();
}

std::string to_string(ClusterEvent::Kind kind) {
  switch (kind) {
    case ClusterEvent::Kind::kScaleUp: return "scale-up";
    case ClusterEvent::Kind::kScaleDown: return "scale-down";
    case ClusterEvent::Kind::kFailStop: return "fail-stop";
    case ClusterEvent::Kind::kFailureDetected: return "failure-detected";
    case ClusterEvent::Kind::kRetry: return "retry";
    case ClusterEvent::Kind::kMigrate: return "migrate";
    case ClusterEvent::Kind::kExpertRebalance: return "expert-rebalance";
    case ClusterEvent::Kind::kHandoff: return "handoff";
  }
  MONDE_ASSERT(false, "unknown cluster event kind");
  return {};
}

ClusterSim::ClusterSim(const core::SystemConfig& sys, const moe::MoeModelConfig& model,
                       const moe::SkewProfile& profile,
                       const std::vector<ReplicaSpec>& specs, ClusterConfig cfg)
    : sys_{sys}, model_{model}, profile_{profile}, cfg_{cfg} {
  MONDE_REQUIRE(!specs.empty(), "cluster needs at least one replica");
  cfg_.validate();
  // All replicas run the same platform, so one NdpCoreSim serves the whole
  // fleet and expert-shape latencies memoize across replicas (the sharing
  // is timing-neutral; see test_fastpath_diff).
  shared_sim_ = std::make_shared<ndp::NdpCoreSim>(sys_.ndp, sys_.monde_mem);
  if (cfg_.expert.enabled) {
    profiler_ = std::make_unique<moe::WorkloadGenerator>(model_, profile_,
                                                         cfg_.expert.profile_seed);
  }
  if (cfg_.disagg.enabled) {
    MONDE_REQUIRE(specs.size() > cfg_.disagg.prefill_replicas,
                  "disaggregated serving needs at least one decode replica beyond the "
                      << cfg_.disagg.prefill_replicas << " prefill replica(s)");
    for (const ReplicaSpec& spec : specs) {
      MONDE_REQUIRE(spec.sched.mode == BatchingMode::kContinuous,
                    "disaggregated serving requires continuous batching on every "
                    "replica (a fixed batch cannot release requests mid-batch)");
    }
  }
  replicas_.reserve(specs.size());
  next_seed_ = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    add_replica(specs[i], Duration::zero(), Duration::zero(),
                cfg_.disagg.enabled && i < cfg_.disagg.prefill_replicas);
    next_seed_ = std::max(next_seed_, specs[i].seed + 1);
  }
  // Autoscaled replicas clone the first spec, faults cleared: an injected
  // fault plan describes a *specific* node, not replacement capacity.
  growth_ = specs.front();
  growth_.fault = FaultSpec{};
}

void ClusterSim::add_replica(const ReplicaSpec& spec, Duration spawned_at,
                             Duration start_at, bool prefill) {
  Replica r;
  r.engine = std::make_unique<core::InferenceEngine>(sys_, model_, profile_, spec.strategy,
                                                     spec.seed, shared_sim_);
  r.server = std::make_unique<ServerSim>(*r.engine, spec.sched, start_at, spec.fault,
                                         cfg_.cache, cfg_.expert, cfg_.disagg, prefill);
  r.prefill = prefill;
  r.name = "replica" + std::to_string(replicas_.size()) + " (" +
           r.engine->strategy().name() + ")";
  if (prefill) r.name += " [prefill]";
  r.spawned_at = spawned_at;
  if (spec.fault.fail_stop()) {
    r.detect_at = failure_detection_time(spec.fault.fail_at, cfg_.health);
  }
  replicas_.push_back(std::move(r));
}

void ClusterSim::update_ewma(Replica& r) {
  const std::vector<StepRecord>& steps = r.server->steps();
  for (; r.steps_seen < steps.size(); ++r.steps_seen) {
    const double ms = (steps[r.steps_seen].end - steps[r.steps_seen].start).ms();
    r.ewma_ms = r.steps_seen == 0
                    ? ms
                    : cfg_.health.ewma_alpha * ms + (1.0 - cfg_.health.ewma_alpha) * r.ewma_ms;
  }
}

std::vector<ReplicaSnapshot> ClusterSim::snapshots(Duration now) const {
  std::vector<ReplicaSnapshot> snaps(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const Replica& r = replicas_[i];
    snaps[i] = ReplicaSnapshot{i,
                               r.server->in_flight(),
                               r.server->outstanding_tokens(),
                               /*accepting=*/!r.detected && !r.retired,
                               /*warming=*/r.server->start_at() > now,
                               (now - last_ok_heartbeat(now, r.server->fault().fail_at,
                                                        cfg_.health))
                                   .ms(),
                               r.ewma_ms,
                               r.server->expert_signature(),
                               r.server->prefix_signature(),
                               r.prefill};
  }
  return snaps;
}

std::size_t ClusterSim::accepting_count() const {
  std::size_t n = 0;
  for (const Replica& r : replicas_) {
    if (!r.detected && !r.retired) ++n;
  }
  return n;
}

ClusterReport ClusterSim::run(std::vector<Request> trace, Dispatcher& dispatcher,
                              Autoscaler* autoscaler) {
  MONDE_REQUIRE(!used_, "ClusterSim::run() may be called only once");
  MONDE_REQUIRE(!trace.empty(), "cannot serve an empty trace");
  std::stable_sort(trace.begin(), trace.end(), arrival_order<Request>);
  // Preserve the classic error timing: duplicate ids are rejected before any
  // simulation runs (the streaming path can only catch them on arrival).
  {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(trace.size());
    for (const Request& rq : trace) {
      MONDE_REQUIRE(seen.insert(rq.id).second, "duplicate request id " << rq.id << " in trace");
    }
  }
  TraceArrivalStream stream{std::move(trace)};
  return run(stream, dispatcher, autoscaler);
}

ClusterReport ClusterSim::run(ArrivalStream& arrivals, Dispatcher& dispatcher,
                              Autoscaler* autoscaler) {
  MONDE_REQUIRE(!used_, "ClusterSim::run() may be called only once");
  used_ = true;
  const bool fast = !cfg_.reference_loop;
  // With a finite slow_ewma_factor the median cutoff is maintained
  // incrementally too (running median + write-through fast set, below), so
  // the eligible index serves every fast-mode config.
  const bool ewma_filter = fast && std::isfinite(cfg_.health.slow_ewma_factor);
  // Worker pool for the parallel advancement phase. threads == 1 builds no
  // pool at all: the loop below is then the plain sequential path.
  std::unique_ptr<common::TaskPool> pool;
  if (fast && cfg_.threads > 1) pool = std::make_unique<common::TaskPool>(cfg_.threads);

  // --- Arrival intake: lazy stream head + duplicate/order policing --------
  std::unordered_map<std::uint64_t, Duration> original_arrival;
  original_arrival.reserve(arrivals.size_hint());
  const auto note_original = [&](const Request& rq) {
    MONDE_REQUIRE(original_arrival.emplace(rq.id, rq.arrival).second,
                  "duplicate request id " << rq.id << " in trace");
  };
  std::optional<Request> head = arrivals.next();
  MONDE_REQUIRE(head.has_value(), "cannot serve an empty trace");
  note_original(*head);
  const auto pull_head = [&] {
    std::optional<Request> nxt = arrivals.next();
    if (nxt.has_value()) {
      MONDE_REQUIRE(!arrival_order(*nxt, *head),
                    "arrival stream is out of (arrival, id) order at request " << nxt->id);
      note_original(*nxt);
    }
    head = std::move(nxt);
  };

  // The re-dispatch queue: failure retries and scale-down migrations, merged
  // with the arrival stream in (time, id) order so per-replica enqueues stay
  // (arrival, id)-ordered. (Originals used to sit in this heap too; the
  // merge pops the exact same sequence, with O(retries) memory instead of
  // O(trace).)
  struct Item {
    Duration time;
    Request rq;
    bool migrated = false;  ///< re-dispatch came from a retirement, not a failure
    bool handoff = false;   ///< prefill-complete handoff bound for the decode pool
  };
  const auto later = [](const Item& a, const Item& b) {
    return a.time != b.time ? a.time > b.time : a.rq.id > b.rq.id;
  };
  std::priority_queue<Item, std::vector<Item>, decltype(later)> pending{later};
  const auto has_item = [&] { return head.has_value() || !pending.empty(); };
  const auto item_time = [&] {
    Duration t = head.has_value() ? head->arrival : Duration::infinite();
    if (!pending.empty()) t = monde::min(t, pending.top().time);
    return t;
  };
  const auto pop_item = [&] {
    // Lexicographic (time, id) merge; a stream request and a re-dispatch
    // never collide exactly (ids are unique per attempt epoch).
    const bool from_stream =
        head.has_value() &&
        (pending.empty() || head->arrival < pending.top().time ||
         (head->arrival == pending.top().time && head->id < pending.top().rq.id));
    if (from_stream) {
      Item it{head->arrival, *head, false};
      pull_head();
      return it;
    }
    Item it = pending.top();
    pending.pop();
    return it;
  };

  // --- Prefill->decode handoffs (disaggregated serving) -------------------
  // A prefill replica buffers a HandoffRecord the moment a request's
  // admission step completes (inside advance_to, possibly on a worker
  // thread); the cluster drains the buffer at the sequential commit that
  // follows every advance, turning each record into a decode-pool
  // re-dispatch item at `release + transfer`. That instant is clamped to a
  // floor that never precedes an already-popped item (the advance target at
  // fleet-wide commits; the last-popped time when only the prefill pool
  // advanced), so the global (time, id) pop order -- and with it the
  // per-replica (arrival, id) enqueue contract -- survives releases
  // discovered mid-event. Releases almost always surface through the
  // prefill-pool anchor below, which advances no decode replica and so can
  // afford the loose floor; the fleet-wide commits only catch releases
  // landing exactly on an external anchor, where the tight clamp is exact.
  const bool disagg_on = cfg_.disagg.enabled;
  Duration last_pop = Duration::zero();  // latest item the loop dispatched
  const auto drain_handoffs = [&](std::size_t i, Duration apply_until, Duration floor) {
    if (!disagg_on || !replicas_[i].prefill) return;
    for (HandoffRecord& h : replicas_[i].server->take_handoffs(apply_until)) {
      Request rq = std::move(h.request);
      ++rq.attempt;
      pending.push(Item{monde::max(h.release + h.transfer, floor), std::move(rq),
                        /*migrated=*/false, /*handoff=*/true});
    }
  };

  // --- Event calendar (fast mode): per-replica server events --------------
  // Min-heap keyed (time, replica); an entry is dead the moment its
  // replica's version moved past the tagged one (lazy deletion). Invariant:
  // every replica whose next_event_time() is finite has exactly one live
  // entry -- each mutation site re-pushes, and a mutation always bumps the
  // version, killing prior entries.
  struct CalEntry {
    Duration time;
    std::uint64_t version;
    std::size_t replica;
  };
  const auto cal_after = [](const CalEntry& a, const CalEntry& b) {
    return a.time != b.time ? a.time > b.time : a.replica > b.replica;
  };
  std::priority_queue<CalEntry, std::vector<CalEntry>, decltype(cal_after)> calendar{
      cal_after};
  const auto push_calendar = [&](std::size_t i) {
    if (!fast) return;
    const ServerSim& s = *replicas_[i].server;
    const Duration t = s.next_event_time();
    if (t == Duration::infinite()) return;  // idle: woken by a future enqueue
    calendar.push(CalEntry{t, s.version(), i});
  };
  const auto settle_calendar = [&] {
    while (!calendar.empty() && calendar.top().version !=
                                    replicas_[calendar.top().replica].server->version()) {
      calendar.pop();
    }
  };

  // Sorted fail-stop and detection cursors (fast mode): faults are fixed at
  // construction (autoscaled replicas spawn fault-free), so the reference
  // loop's per-event min-scans collapse to two precomputed orders.
  std::vector<std::pair<Duration, std::size_t>> fail_order;    // (fail_at, replica)
  std::vector<std::pair<Duration, std::size_t>> detect_order;  // (detect_at, replica)
  if (fast) {
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i].server->fault().fail_stop()) {
        fail_order.emplace_back(replicas_[i].server->fault().fail_at, i);
        detect_order.emplace_back(replicas_[i].detect_at, i);
      }
    }
    std::sort(fail_order.begin(), fail_order.end());
    std::sort(detect_order.begin(), detect_order.end());
  }
  std::size_t fail_cursor = 0;
  std::size_t detect_cursor = 0;

  // --- Incremental eligible-snapshot index (fast mode) --------------------
  // `eligible` holds exactly the accepting replicas in ascending index order
  // (the order eligible_snapshots() yields); load fields are written through
  // whenever a replica's server mutates, and the few time-varying fields
  // that can still change without a mutation (warming during cold start,
  // heartbeat age of an undetected fail-stop) are refreshed per dispatch
  // from the `time_sensitive` worklist. Eligibility itself cannot silently
  // change between mutations: detections are processed before any dispatch
  // at or past them, and a healthy replica's heartbeat age never exceeds
  // one interval (<= timeout).
  constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  std::vector<ReplicaSnapshot> eligible;
  std::vector<std::size_t> epos;            // replica index -> slot in `eligible`
  std::vector<std::size_t> time_sensitive;  // replicas with time-varying fields
  const auto make_snapshot = [&](std::size_t i, Duration now) {
    const Replica& r = replicas_[i];
    return ReplicaSnapshot{i,
                           r.server->in_flight(),
                           r.server->outstanding_tokens(),
                           /*accepting=*/!r.detected && !r.retired,
                           /*warming=*/r.server->start_at() > now,
                           (now - last_ok_heartbeat(now, r.server->fault().fail_at,
                                                    cfg_.health))
                               .ms(),
                           r.ewma_ms,
                           r.server->expert_signature(),
                           r.server->prefix_signature(),
                           r.prefill};
  };

  // --- Incremental slow-EWMA filter (finite factor only) ------------------
  // eligible_snapshots()'s soft filter, maintained instead of rebuilt: a
  // two-multiset running median over the positive step EWMAs of eligible
  // replicas reproduces percentile(ewmas, 50) bit-for-bit (the R-7
  // interpolation weight at q=50 is exactly 0.0 for odd counts and 0.5 for
  // even ones), `by_ewma` orders those replicas by EWMA so a cutoff move
  // flips exactly the replicas in the crossed interval, and `fast_eligible`
  // mirrors the EWMA <= cutoff subsequence of `eligible` (same ascending
  // replica order; zero-EWMA replicas always qualify since the cutoff is
  // positive -- factor > 1 -- or infinite when no positive EWMA exists).
  std::multiset<double> med_lo;  // lower half; its max is the lower median
  std::multiset<double> med_hi;  // upper half; its min is the upper median
  std::multiset<std::pair<double, std::size_t>> by_ewma;  // positive (ewma, replica)
  std::vector<ReplicaSnapshot> fast_eligible;  // the EWMA <= cutoff subsequence
  std::vector<std::size_t> fpos;  // replica index -> slot in `fast_eligible`
  double cutoff = std::numeric_limits<double>::infinity();
  const auto med_rebalance = [&] {
    if (med_lo.size() > med_hi.size() + 1) {
      const auto it = std::prev(med_lo.end());
      med_hi.insert(*it);
      med_lo.erase(it);
    } else if (med_hi.size() > med_lo.size()) {
      const auto it = med_hi.begin();
      med_lo.insert(*it);
      med_hi.erase(it);
    }
  };
  const auto med_insert = [&](double x) {
    if (med_lo.empty() || x <= *std::prev(med_lo.end())) {
      med_lo.insert(x);
    } else {
      med_hi.insert(x);
    }
    med_rebalance();
  };
  const auto med_erase = [&](double x) {
    if (const auto it = med_lo.find(x); it != med_lo.end()) {
      med_lo.erase(it);
    } else {
      med_hi.erase(med_hi.find(x));
    }
    med_rebalance();
  };
  const auto current_cutoff = [&]() -> double {
    const std::size_t k = med_lo.size() + med_hi.size();
    if (k == 0) return std::numeric_limits<double>::infinity();
    double median;
    if (k % 2 == 1) {
      median = *std::prev(med_lo.end());
    } else {
      const double a = *std::prev(med_lo.end());
      const double b = *med_hi.begin();
      median = a + (b - a) * 0.5;  // sorted_percentile's exact arithmetic
    }
    return median * cfg_.health.slow_ewma_factor;
  };
  const auto set_fast_member = [&](std::size_t i, bool member) {
    fpos.resize(replicas_.size(), kNoSlot);
    if (member == (fpos[i] != kNoSlot)) return;  // idempotent
    if (member) {
      const auto at = std::lower_bound(
          fast_eligible.begin(), fast_eligible.end(), i,
          [](const ReplicaSnapshot& s, std::size_t idx) { return s.replica < idx; });
      const auto slot = static_cast<std::size_t>(at - fast_eligible.begin());
      fast_eligible.insert(at, eligible[epos[i]]);
      for (std::size_t p = slot; p < fast_eligible.size(); ++p) {
        fpos[fast_eligible[p].replica] = p;
      }
    } else {
      const std::size_t slot = fpos[i];
      fast_eligible.erase(fast_eligible.begin() + static_cast<std::ptrdiff_t>(slot));
      fpos[i] = kNoSlot;
      for (std::size_t p = slot; p < fast_eligible.size(); ++p) {
        fpos[fast_eligible[p].replica] = p;
      }
    }
  };
  // Move the cutoff: only replicas whose EWMA lies in the crossed interval
  // (lo, hi] can change sides, and by_ewma hands us exactly those.
  const auto apply_cutoff = [&](double next) {
    if (next == cutoff) return;
    const double lo = std::min(cutoff, next);
    const double hi = std::max(cutoff, next);
    cutoff = next;
    constexpr std::size_t kMaxIdx = std::numeric_limits<std::size_t>::max();
    const auto last = by_ewma.upper_bound({hi, kMaxIdx});
    for (auto it = by_ewma.upper_bound({lo, kMaxIdx}); it != last; ++it) {
      set_fast_member(it->second, it->first <= cutoff);
    }
  };
  const auto filter_add = [&](std::size_t i, double ewma) {
    if (!ewma_filter) return;
    if (ewma > 0.0) {
      med_insert(ewma);
      by_ewma.insert({ewma, i});
    }
    apply_cutoff(current_cutoff());
    set_fast_member(i, ewma <= cutoff);
  };
  const auto filter_remove = [&](std::size_t i, double ewma) {
    if (!ewma_filter) return;
    set_fast_member(i, false);
    if (ewma > 0.0) {
      med_erase(ewma);
      by_ewma.erase(by_ewma.find({ewma, i}));
    }
    apply_cutoff(current_cutoff());
  };
  const auto filter_update = [&](std::size_t i, double old_ewma, double new_ewma) {
    if (!ewma_filter || old_ewma == new_ewma) return;
    if (old_ewma > 0.0) {
      med_erase(old_ewma);
      by_ewma.erase(by_ewma.find({old_ewma, i}));
    }
    if (new_ewma > 0.0) {
      med_insert(new_ewma);
      by_ewma.insert({new_ewma, i});
    }
    apply_cutoff(current_cutoff());
    set_fast_member(i, new_ewma <= cutoff);
  };

  const auto eligible_add = [&](std::size_t i, Duration now) {
    if (!fast) return;
    epos.resize(replicas_.size(), kNoSlot);
    epos[i] = eligible.size();
    eligible.push_back(make_snapshot(i, now));
    if (replicas_[i].server->start_at() > now || replicas_[i].server->fault().fail_stop()) {
      time_sensitive.push_back(i);
    }
    filter_add(i, replicas_[i].ewma_ms);
  };
  const auto eligible_remove = [&](std::size_t i) {
    if (!fast) return;
    const std::size_t at = epos[i];
    if (at == kNoSlot) return;
    filter_remove(i, eligible[at].step_ewma_ms);
    eligible.erase(eligible.begin() + static_cast<std::ptrdiff_t>(at));
    epos[i] = kNoSlot;
    for (std::size_t p = at; p < eligible.size(); ++p) epos[eligible[p].replica] = p;
  };
  const auto write_through = [&](std::size_t i) {
    if (!fast) return;
    const std::size_t at = epos[i];
    if (at == kNoSlot) return;
    ReplicaSnapshot& s = eligible[at];
    const double old_ewma = s.step_ewma_ms;
    s.in_flight = replicas_[i].server->in_flight();
    s.outstanding_tokens = replicas_[i].server->outstanding_tokens();
    s.step_ewma_ms = replicas_[i].ewma_ms;
    s.expert_sig = replicas_[i].server->expert_signature();
    s.prefix_sig = replicas_[i].server->prefix_signature();
    if (ewma_filter) {
      if (fpos[i] != kNoSlot) fast_eligible[fpos[i]] = s;  // mirror load fields
      filter_update(i, old_ewma, s.step_ewma_ms);
    }
  };
  const auto refresh_time_sensitive = [&](Duration now) {
    std::size_t keep = 0;
    for (std::size_t k = 0; k < time_sensitive.size(); ++k) {
      const std::size_t i = time_sensitive[k];
      const Replica& r = replicas_[i];
      const bool warming = r.server->start_at() > now;
      if (epos[i] != kNoSlot) {
        ReplicaSnapshot& s = eligible[epos[i]];
        s.warming = warming;
        s.heartbeat_age_ms =
            (now - last_ok_heartbeat(now, r.server->fault().fail_at, cfg_.health)).ms();
        if (ewma_filter && fpos[i] != kNoSlot) {
          ReplicaSnapshot& f = fast_eligible[fpos[i]];
          f.warming = s.warming;
          f.heartbeat_age_ms = s.heartbeat_age_ms;
        }
      }
      // Done once the cold start is over and no fail-stop can age the
      // heartbeat further (a detected replica left `eligible` for good).
      if (warming || (r.server->fault().fail_stop() && !r.detected)) {
        time_sensitive[keep++] = i;
      }
    }
    time_sensitive.resize(keep);
  };
  if (fast) {
    for (std::size_t i = 0; i < replicas_.size(); ++i) eligible_add(i, Duration::zero());
  }

  // --- Per-phase wall-clock (ClusterConfig::measure_phases) ----------------
  // Three buckets for the perf-trend dashboard: advancement (fans out to the
  // pool), the sequential commit write-backs, and the sequential dispatch
  // decisions. Zero-cost when off; simulated results never depend on them.
  using WallClock = std::chrono::steady_clock;
  const bool measure = cfg_.measure_phases;
  double phase_advance_s = 0.0;
  double phase_dispatch_s = 0.0;
  double phase_commit_s = 0.0;
  WallClock::time_point phase_t0{};
  const auto phase_begin = [&] {
    if (measure) phase_t0 = WallClock::now();
  };
  const auto phase_end = [&](double& bucket) {
    if (measure) {
      bucket += std::chrono::duration<double>(WallClock::now() - phase_t0).count();
    }
  };

  // --- Fleet advancement ---------------------------------------------------
  // The handoff drain sits between the EWMA fold and the index/calendar
  // write-backs: taking the buffer may mutate the server (version bump), so
  // the calendar entry must be pushed after.
  const auto commit_one = [&](std::size_t i, Duration t) {
    update_ewma(replicas_[i]);
    drain_handoffs(i, t, t);
    write_through(i);
    push_calendar(i);
  };
  // Fast-mode equivalent of advance_all(t): collect the replicas whose
  // fail-stop lies at or before t (advance_to mutates them even when they
  // look event-less) plus every calendar entry strictly before t into one
  // batch -- a replica with no entry before t provably has nothing to do
  // there (advance_to(t) with next_event_time() >= t is a no-op for a live
  // server), and an advanced replica's next event lands at or after t, so
  // one batch is exhaustive. The batch then advances each replica all the
  // way to t: in parallel on the pool when one exists (servers are mutually
  // independent; the shared NdpCoreSim memo is concurrency-safe with
  // canonical values), with the per-replica write-backs (EWMA fold,
  // snapshot write-through, calendar re-push) committed sequentially in
  // ascending replica order afterwards. The write-backs commute -- each
  // touches its own replica's state, and the index/filter updates are pure
  // functions of the final fleet state -- so the fixed commit order keeps
  // parallel runs bit-identical to the sequential interleaving.
  std::vector<std::size_t> batch;  // reused across events
  const auto advance_fleet_to = [&](Duration t) {
    batch.clear();
    while (fail_cursor < fail_order.size() && fail_order[fail_cursor].first <= t) {
      batch.push_back(fail_order[fail_cursor].second);
      ++fail_cursor;
    }
    for (;;) {
      settle_calendar();
      if (calendar.empty() || calendar.top().time >= t) break;
      batch.push_back(calendar.top().replica);
      calendar.pop();
    }
    if (batch.empty()) return;
    // A failing replica may also hold a live calendar entry before t; never
    // hand the same replica to two workers.
    std::sort(batch.begin(), batch.end());
    batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
    // Advance, then commit: the write-backs commute with advancement (each
    // touches only its own replica's state, the index/filter updates are
    // pure functions of the final fleet state), so the sequential path uses
    // the same advance-all-then-commit-all split the pool path does -- one
    // code shape, and the phase timers bucket both paths identically.
    phase_begin();
    if (pool != nullptr && batch.size() > 1) {
      pool->run(batch.size(),
                [&](std::size_t k) { replicas_[batch[k]].server->advance_to(t); });
    } else {
      for (const std::size_t i : batch) replicas_[i].server->advance_to(t);
    }
    phase_end(phase_advance_s);
    phase_begin();
    for (const std::size_t i : batch) commit_one(i, t);
    phase_end(phase_commit_s);
  };
  const auto advance = [&](Duration t) {
    if (fast) {
      advance_fleet_to(t);
      return;
    }
    phase_begin();
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      replicas_[i].server->advance_to(t);
      update_ewma(replicas_[i]);
      // Same ascending-index drain order as the fast loop's commit phase;
      // the heap re-sorts the pushed items, so interleaving is immaterial.
      drain_handoffs(i, t, t);
    }
    phase_end(phase_advance_s);
  };

  // With disaggregation, prefill completions are cluster events in their own
  // right: each release spawns a decode-pool re-dispatch, and waiting for the
  // next arrival/detection/tick to surface it would delay the handoff by the
  // whole inter-anchor gap. When the earliest event among live prefill
  // replicas precedes every external anchor, run ONLY the prefill pool
  // forward to that anchor and convert its releases at their true release
  // times. Decode replicas stay put, so a surfaced item earlier than the
  // external anchor is dispatched into a decode replica whose clock has not
  // yet passed it -- causality holds. Progress is guaranteed: afterwards
  // every live prefill replica's next event is at or beyond the horizon, so
  // the branch cannot re-fire until new prefill work (an item) is dispatched.
  const auto advance_prefill_to = [&](Duration horizon) {
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      Replica& r = replicas_[i];
      if (!r.prefill || r.detected) continue;
      phase_begin();
      r.server->advance_to(horizon);
      phase_end(phase_advance_s);
      phase_begin();
      update_ewma(r);
      drain_handoffs(i, horizon, last_pop);
      write_through(i);
      push_calendar(i);
      phase_end(phase_commit_s);
    }
  };

  const bool log = cfg_.event_log_enabled;
  std::vector<ClusterEvent> events;
  std::size_t retries = 0;
  std::size_t migrations = 0;
  std::size_t handoffs = 0;
  std::size_t peak = accepting_count();
  Duration next_tick = cfg_.autoscale_period;
  // Boot-time pool shares (disaggregated autoscaling grows the pool furthest
  // below its share). run() is called once, so replicas_ is the boot fleet.
  const std::size_t boot_prefill = disagg_on ? cfg_.disagg.prefill_replicas : 0;
  const std::size_t boot_decode = disagg_on ? replicas_.size() - boot_prefill : 0;

  // Role routing (disaggregated serving): the pool filter applies after the
  // health/EWMA filter. If the soft EWMA filter left the needed pool empty,
  // fall back to the full accepting set before declaring the pool gone.
  const auto disagg_view = [&](const std::vector<ReplicaSnapshot>& filtered,
                               const auto& accepting_fn, const Request& rq) {
    const bool want_prefill = !rq.decode_phase();
    std::vector<ReplicaSnapshot> pool =
        pool_snapshots(filtered, want_prefill, cfg_.disagg.decode_admit_tokens);
    if (pool.empty()) {
      pool = pool_snapshots(accepting_fn(), want_prefill,
                            cfg_.disagg.decode_admit_tokens);
    }
    MONDE_REQUIRE(!pool.empty(), "no " << (want_prefill ? "prefill" : "decode")
                                       << " replica is accepting requests");
    return pool;
  };

  // --- Expert-aware serving state (inert when disabled) --------------------
  const bool expert_on = cfg_.expert.enabled;
  const bool rebalance_on = expert_on && cfg_.expert.rebalance_period > Duration::zero();
  Duration next_rebalance = cfg_.expert.rebalance_period;
  std::size_t expert_migrations = 0;
  std::size_t pruned_requests = 0;
  // Fleet-wide demand per expert, accumulated from dispatched profiles; the
  // ordered map gives rebalance ticks a deterministic hottest-first walk.
  std::map<core::ExpertId, std::uint64_t> fleet_expert_load;
  // Truncate a profile to the `width` heaviest experts per layer (entries
  // are layer-major, descending activation). Returns true if it shrank.
  const auto prune_profile = [](moe::ExpertProfile& p, int width) {
    std::vector<moe::ExpertProfile::Entry> kept;
    kept.reserve(p.experts.size());
    int run = 0;
    int cur_layer = std::numeric_limits<int>::min();
    for (const auto& e : p.experts) {
      if (e.layer != cur_layer) {
        cur_layer = e.layer;
        run = 0;
      }
      if (run++ < width) kept.push_back(e);
    }
    if (kept.size() == p.experts.size()) return false;
    p.experts = std::move(kept);
    p.rebuild_signature();
    return true;
  };

  // Work that keeps drain-phase autoscale ticks alive: any replica (even a
  // retiring one, whose drain extends the makespan survivors are billed to)
  // still owing requests AND able to serve them without drain() -- a
  // fixed-mode replica holding an under-full batch waits for a seal that
  // only drain() provides (next_event_time() is infinite), and ticking on
  // it forever would hang the loop. In fast mode the settled calendar IS
  // this predicate: a live entry exists iff some replica's next event is
  // finite, which implies undetected work in flight.
  const auto fleet_has_live_work = [&] {
    if (fast) {
      settle_calendar();
      return !calendar.empty();
    }
    for (const Replica& r : replicas_) {
      if (!r.detected && r.server->in_flight() > 0 &&
          r.server->next_event_time() < Duration::infinite()) {
        return true;
      }
    }
    return false;
  };

  for (;;) {
    const Duration item_t = item_time();
    // Earliest undetected fail-stop: its detection is a cluster event even
    // when it lies beyond the last arrival (stranded work must recover).
    Duration det_t = Duration::infinite();
    std::size_t det_i = 0;
    if (fast) {
      if (detect_cursor < detect_order.size()) {
        det_t = detect_order[detect_cursor].first;
        det_i = detect_order[detect_cursor].second;
      }
    } else {
      for (std::size_t i = 0; i < replicas_.size(); ++i) {
        const Replica& r = replicas_[i];
        if (!r.detected && r.detect_at < det_t) {
          det_t = r.detect_at;
          det_i = i;
        }
      }
    }
    // The autoscaler ticks while arrivals/retries remain AND through the
    // drain phase while any replica still holds work, so late scale-downs
    // release idle capacity (drain-phase ticks may only scale down).
    const Duration tick_t =
        (autoscaler != nullptr && (has_item() || fleet_has_live_work()))
            ? next_tick
            : Duration::infinite();
    // Rebalance ticks only matter while requests remain to route: once the
    // stream and retry queue are empty, residency can no longer help anyone.
    const Duration reb_t = (rebalance_on && has_item()) ? next_rebalance
                                                        : Duration::infinite();
    // Earliest prefill-internal event (admission start, step boundary, or an
    // already-buffered release awaiting drain). Finite only with
    // disaggregation on; infinite anchors never win a strict comparison.
    Duration ho_t = Duration::infinite();
    if (disagg_on) {
      for (const Replica& r : replicas_) {
        if (!r.prefill || r.detected) continue;
        ho_t = monde::min(ho_t, r.server->next_event_time());
        if (r.server->has_handoffs()) ho_t = monde::min(ho_t, last_pop);
      }
    }

    if (disagg_on && ho_t < det_t && ho_t < item_t && ho_t < tick_t &&
        ho_t < reb_t) {
      // The prefill pool owns every fleet event until the next external
      // anchor: run it to that horizon and surface its releases. With no
      // external anchor left (all infinite) this drains the prefill tail
      // outright; new handoff items re-arm the item branch.
      advance_prefill_to(
          monde::min(monde::min(det_t, item_t), monde::min(tick_t, reb_t)));
      continue;
    }

    if (det_t <= item_t && det_t <= tick_t && det_t <= reb_t) {
      if (det_t == Duration::infinite()) {
        // ho_t is infinite too (it lost the strict comparison above), so the
        // prefill pool holds no future work: the fleet is truly idle.
        break;
      }
      Replica& r = replicas_[det_i];
      advance(det_t);  // the dying replica freezes at its fail-stop instant
      r.detected = true;
      if (fast) ++detect_cursor;
      eligible_remove(det_i);
      const Duration died_at = r.server->fault().fail_at;
      if (log) {
        events.push_back({ClusterEvent::Kind::kFailStop, died_at, det_i,
                          "replica" + std::to_string(det_i) + " died"});
      }
      // A replica evacuated by a scale-down migration died empty: its work
      // already moved on, so there is nothing (and no way) to harvest.
      std::vector<Request> stranded;
      if (!r.evacuated) stranded = r.server->harvest_stranded();
      if (log) {
        events.push_back({ClusterEvent::Kind::kFailureDetected, det_t, det_i,
                          "heartbeat stale; " + std::to_string(stranded.size()) +
                              " stranded request(s) queued for retry"});
      }
      const bool resume = cfg_.cache.enabled && cfg_.cache.survive_failstop;
      for (Request rq : stranded) {
        ++rq.attempt;
        Duration at = det_t + cfg_.retry_timeout;
        if (resume) {
          // Surviving-cache mode: the checkpointed prefix is restored onto
          // the retry replica at the modelled transfer cost. With a
          // checkpoint cadence, decode progress rounds down to the last
          // interval boundary -- work past it was never checkpointed and is
          // repeated on the retry replica (a decode-pool victim's requests
          // keep their full prompt, so they re-home within the decode pool).
          if (cfg_.cache.checkpoint_interval_tokens > 0) {
            rq.resume.decoded -=
                rq.resume.decoded % cfg_.cache.checkpoint_interval_tokens;
            if (rq.resume.decoded == 0) rq.resume.first_token = Duration::zero();
          }
          at += cfg_.cache.transfer_time_for(rq.resume.resident_tokens());
        } else {
          // Lost-cache mode: the KV state died with the node.
          rq.resume = ResumeState{};
        }
        pending.push(Item{at, rq, false});
      }
      continue;
    }

    if (tick_t <= item_t && tick_t <= reb_t) {
      advance(tick_t);
      AutoscaleSignals sig;
      sig.now = tick_t;
      std::vector<double> waits_ms;
      for (const Replica& r : replicas_) {
        if (r.detected || r.retired) continue;
        if (r.server->start_at() > tick_t) {
          ++sig.warming_replicas;
        } else {
          ++sig.ready_replicas;
        }
        sig.in_flight += r.server->in_flight();
        sig.outstanding_tokens += r.server->outstanding_tokens();
        for (const Duration arrival : r.server->waiting_arrivals()) {
          waits_ms.push_back((tick_t - arrival).ms());
        }
      }
      sig.waiting_requests = waits_ms.size();
      if (!waits_ms.empty()) {
        sig.p95_queue_delay_ms = percentile(std::move(waits_ms), 95.0);
      }
      std::size_t target = std::max<std::size_t>(autoscaler->target_size(sig), 1);
      std::size_t capacity = accepting_count();
      // Drain phase (no arrivals or retries left): scaling up is pure waste
      // -- no dispatch will ever reach the new replica -- so only honor the
      // downward direction of the policy's answer.
      if (!has_item()) target = std::min(target, capacity);
      while (capacity < target) {
        ReplicaSpec spec = growth_;
        spec.seed = next_seed_++;
        const std::size_t idx = replicas_.size();
        bool spawn_prefill = false;
        if (disagg_on) {
          // Grow the pool furthest below its boot share (accepting members
          // vs. boot prefill:decode ratio); ties grow the decode pool.
          std::size_t p = 0, d = 0;
          for (const Replica& r : replicas_) {
            if (r.detected || r.retired) continue;
            (r.prefill ? p : d) += 1;
          }
          spawn_prefill = p * boot_decode < d * boot_prefill;
        }
        add_replica(spec, tick_t, tick_t + cfg_.warmup, spawn_prefill);
        eligible_add(idx, tick_t);
        if (log) {
          events.push_back({ClusterEvent::Kind::kScaleUp, tick_t, idx,
                            "spawned " + replicas_.back().name + ", ready at " +
                                (tick_t + cfg_.warmup).str()});
        }
        ++capacity;
      }
      while (capacity > target && capacity > 1) {
        // Retire the accepting replica owing the fewest tokens, newest on
        // ties: it drains its queue, then idles, never dispatched to again.
        // Disaggregated fleets never retire a pool's last accepting member
        // (requests of its phase would have nowhere to go).
        std::size_t pool_count[2] = {0, 0};  // [decode, prefill]
        if (disagg_on) {
          for (const Replica& r : replicas_) {
            if (r.detected || r.retired) continue;
            ++pool_count[r.prefill ? 1 : 0];
          }
        }
        std::size_t victim = replicas_.size();
        for (std::size_t i = 0; i < replicas_.size(); ++i) {
          const Replica& r = replicas_[i];
          if (r.detected || r.retired) continue;
          if (disagg_on && pool_count[r.prefill ? 1 : 0] <= 1) continue;
          if (victim == replicas_.size() ||
              r.server->outstanding_tokens() <=
                  replicas_[victim].server->outstanding_tokens()) {
            victim = i;
          }
        }
        if (victim == replicas_.size()) break;  // every candidate is its pool's last
        replicas_[victim].retired = true;
        replicas_[victim].retired_at = tick_t;
        eligible_remove(victim);
        // A victim that silently fail-stopped inside the detection lag
        // cannot be evacuated -- its state died with it. Retire it plainly;
        // the heartbeat monitor will harvest its stranded work.
        if (cfg_.cache.enabled && cfg_.cache.migrate_on_retire &&
            !replicas_[victim].server->failed()) {
          // Live migration: the retiree stops at its step boundary and its
          // unfinished requests move (with their resident KV state, at the
          // modelled transfer cost) to the surviving fleet. Requests with
          // no resident state re-dispatch at the tick itself.
          std::vector<Request> moved = replicas_[victim].server->evacuate();
          replicas_[victim].evacuated = true;
          // A prefill victim's forced step-boundary completion may have
          // released prefill-complete requests: convert them now (their
          // release lies at or after this tick), or they die with the buffer.
          drain_handoffs(victim, tick_t, tick_t);
          push_calendar(victim);  // evacuation mutated the server (to no events)
          const Duration boundary = monde::max(tick_t, replicas_[victim].server->now());
          for (Request rq : moved) {
            ++rq.attempt;
            const std::int64_t resident = rq.resume.resident_tokens();
            const Duration at =
                resident > 0 ? boundary + cfg_.cache.transfer_time_for(resident) : tick_t;
            pending.push(Item{at, rq, true});
          }
          if (log) {
            std::string detail = "retired " + replicas_[victim].name + " (migrated ";
            detail += std::to_string(moved.size());
            detail += " request(s))";
            events.push_back({ClusterEvent::Kind::kScaleDown, tick_t, victim, detail});
          }
        } else if (log) {
          events.push_back({ClusterEvent::Kind::kScaleDown, tick_t, victim,
                            "retired " + replicas_[victim].name + " (" +
                                std::to_string(replicas_[victim].server->in_flight()) +
                                " request(s) left to drain)"});
        }
        --capacity;
      }
      peak = std::max(peak, accepting_count());
      next_tick += cfg_.autoscale_period;
      continue;
    }

    if (reb_t <= item_t) {
      // Cross-replica expert rebalancing: push the fleet's currently hottest
      // experts (by dispatched-profile demand) into every accepting
      // replica's residency. Each preload is priced as a fetch over the
      // configured link, charged to the receiving replica's next step --
      // migrating hot experts toward the shards that will serve them
      // instead of letting each replica fault them in one miss at a time.
      advance(reb_t);
      std::vector<std::pair<std::uint64_t, core::ExpertId>> by_demand;
      by_demand.reserve(fleet_expert_load.size());
      for (const auto& [id, count] : fleet_expert_load) by_demand.push_back({count, id});
      // Hottest first; the map walk above yields ascending ExpertId, and the
      // stable sort keeps that order within a demand tie -- deterministic.
      std::stable_sort(by_demand.begin(), by_demand.end(),
                       [](const auto& a, const auto& b) { return a.first > b.first; });
      if (by_demand.size() > cfg_.expert.rebalance_hot_experts) {
        by_demand.resize(cfg_.expert.rebalance_hot_experts);
      }
      std::vector<core::ExpertId> hot;
      hot.reserve(by_demand.size());
      for (const auto& [count, id] : by_demand) hot.push_back(id);
      if (!hot.empty()) {
        for (std::size_t i = 0; i < replicas_.size(); ++i) {
          Replica& r = replicas_[i];
          if (r.detected || r.retired) continue;
          // preload_experts() no-ops on a silently fail-stopped server.
          const std::size_t fetched = r.server->preload_experts(hot);
          if (fetched == 0) continue;
          expert_migrations += fetched;
          write_through(i);
          push_calendar(i);
          if (log) {
            events.push_back({ClusterEvent::Kind::kExpertRebalance, reb_t, i,
                              "preloaded " + std::to_string(fetched) +
                                  " hot expert(s) onto replica" + std::to_string(i)});
          }
        }
      }
      next_rebalance += cfg_.expert.rebalance_period;
      continue;
    }

    // The detection branch wins every all-infinite tie, so an item is
    // guaranteed here: item_t < det_t/tick_t/reb_t implies has_item().
    MONDE_ASSERT(has_item(), "item branch reached with no item");
    // Advance before popping: the advance may surface prefill-complete
    // handoffs clamped to this very instant, and such an item (possibly
    // carrying a smaller id than the current head) must be eligible for
    // this pop to keep the global (time, id) dispatch order.
    advance(item_t);
    const Item it = pop_item();
    last_pop = it.time;
    phase_begin();
    Request rq = it.rq;
    rq.arrival = it.time;  // = the original arrival except for re-dispatches
    if (expert_on) {
      // First dispatch derives the profile; a retry/migration keeps the one
      // it already carries (possibly pruned by an earlier overload).
      if (rq.expert_profile.empty()) {
        rq.expert_profile = profiler_->expert_profile_for(
            rq.id, cfg_.expert.profile_width, cfg_.expert.profile_tokens);
      }
      // Fleet demand feeds the rebalance ticks; count the full profile (the
      // demand exists whether or not pruning later drops part of it).
      for (const auto& e : rq.expert_profile.experts) {
        ++fleet_expert_load[core::ExpertId{e.layer, e.expert}];
      }
    }
    std::size_t idx;  // the chosen replica
    if (fast) {
      // Fast path: the maintained index IS the eligible list. Detections at
      // or before `it.time` were processed first, and a healthy heartbeat
      // age never exceeds one interval, so the stale cut the reference
      // filter applies provably keeps exactly the accepting set. With the
      // EWMA filter on, `fast_eligible` is the maintained <= cutoff subset,
      // with the reference's no-starvation guard (empty -> everyone stays).
      refresh_time_sensitive(it.time);
      MONDE_REQUIRE(!eligible.empty(),
                    "no replica is accepting requests (every replica failed or retired)");
      const std::vector<ReplicaSnapshot>& view =
          ewma_filter && !fast_eligible.empty() ? fast_eligible : eligible;
      if (disagg_on) {
        const std::vector<ReplicaSnapshot> pool = disagg_view(
            view, [&]() -> const std::vector<ReplicaSnapshot>& { return eligible; }, rq);
        const std::size_t pick = dispatcher.pick(pool, rq);
        MONDE_REQUIRE(pick < pool.size(),
                      "dispatcher picked entry " << pick << " of " << pool.size());
        idx = pool[pick].replica;
      } else {
        const std::size_t pick = dispatcher.pick(view, rq);
        MONDE_REQUIRE(pick < view.size(),
                      "dispatcher picked entry " << pick << " of " << view.size());
        idx = view[pick].replica;
      }
    } else {
      // The stale-heartbeat cut is belt-and-braces here: detection events at
      // or before `it.time` were processed first, so a replica whose age
      // crossed the timeout is already non-accepting -- but the filter makes
      // the snapshot's heartbeat age authoritative for custom policies too.
      const std::vector<ReplicaSnapshot> elig =
          eligible_snapshots(snapshots(it.time), cfg_.health.slow_ewma_factor,
                             cfg_.health.heartbeat_timeout.ms());
      if (disagg_on) {
        // The fallback view drops only the soft EWMA filter, mirroring the
        // fast path's maintained `eligible` index.
        const auto accepting = [&] {
          return eligible_snapshots(snapshots(it.time),
                                    std::numeric_limits<double>::infinity(),
                                    cfg_.health.heartbeat_timeout.ms());
        };
        const std::vector<ReplicaSnapshot> pool = disagg_view(elig, accepting, rq);
        const std::size_t pick = dispatcher.pick(pool, rq);
        MONDE_REQUIRE(pick < pool.size(),
                      "dispatcher picked entry " << pick << " of " << pool.size());
        idx = pool[pick].replica;
      } else {
        const std::size_t pick = dispatcher.pick(elig, rq);
        MONDE_REQUIRE(pick < elig.size(),
                      "dispatcher picked entry " << pick << " of " << elig.size());
        idx = elig[pick].replica;
      }
    }
    // Pruned-expert degraded mode: a request landing on an overloaded
    // replica is served with a truncated profile -- fewer experts to keep
    // hot, fewer fetches to price -- instead of queueing at full fidelity.
    if (expert_on && cfg_.expert.prune_outstanding_tokens > 0 &&
        replicas_[idx].server->outstanding_tokens() >
            cfg_.expert.prune_outstanding_tokens &&
        prune_profile(rq.expert_profile, cfg_.expert.prune_width)) {
      ++pruned_requests;
    }
    replicas_[idx].server->enqueue(rq);
    ++replicas_[idx].dispatched;
    write_through(idx);
    push_calendar(idx);
    if (it.handoff) {
      // Handoffs are their own lifecycle event, not failure retries --
      // attempt was bumped (it IS a re-dispatch) but the retry/migration
      // counters stay clean.
      ++handoffs;
      if (log) {
        events.push_back({ClusterEvent::Kind::kHandoff, it.time, idx,
                          "request " + std::to_string(rq.id) +
                              " prefill complete -> replica" + std::to_string(idx) + " (" +
                              std::to_string(rq.resume.resident_tokens()) + " KV tokens)"});
      }
    } else if (rq.attempt > 0) {
      if (log) {
        std::string detail = "request " + std::to_string(rq.id) + " attempt " +
                             std::to_string(rq.attempt) + " -> replica" + std::to_string(idx);
        if (rq.resume.any()) {
          detail += " (resumed ";
          detail += std::to_string(rq.resume.resident_tokens());
          detail += " tokens)";
        }
        events.push_back({it.migrated ? ClusterEvent::Kind::kMigrate
                                      : ClusterEvent::Kind::kRetry,
                          it.time, idx, detail});
      }
      if (it.migrated) {
        ++migrations;
      } else {
        ++retries;
      }
    }
    phase_end(phase_dispatch_s);
  }
  // No further arrivals: replicas finish independently, so each can drain
  // to completion on its own (failed replicas were harvested above). The
  // drains are mutually independent, so they fan out to the pool too; the
  // report below reads the servers only after every drain returned.
  phase_begin();
  if (pool != nullptr && replicas_.size() > 1) {
    pool->run(replicas_.size(), [&](std::size_t i) { replicas_[i].server->drain(); });
  } else {
    for (Replica& r : replicas_) r.server->drain();
  }
  phase_end(phase_advance_s);

  ClusterReport rep;
  rep.policy = dispatcher.name();
  rep.autoscaler = autoscaler != nullptr ? autoscaler->name() : "";
  rep.retries = retries;
  rep.migrations = migrations;
  rep.handoffs = handoffs;
  rep.peak_replicas = peak;
  rep.expert_migrations = expert_migrations;
  rep.pruned_requests = pruned_requests;
  rep.phase_advance_s = phase_advance_s;
  rep.phase_dispatch_s = phase_dispatch_s;
  rep.phase_commit_s = phase_commit_s;
  std::stable_sort(events.begin(), events.end(),
                   [](const ClusterEvent& a, const ClusterEvent& b) { return a.time < b.time; });
  rep.events = std::move(events);

  std::vector<ServeReport> serves;
  serves.reserve(replicas_.size());
  for (Replica& r : replicas_) serves.push_back(r.server->report());
  // Fleet makespan: a spawned replica that never ran a step contributes its
  // spawn instant, not its (possibly later) warm-up boundary.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    rep.makespan = monde::max(rep.makespan, serves[i].steps.empty()
                                                ? replicas_[i].spawned_at
                                                : serves[i].makespan);
  }

  std::vector<double> busy_ms;
  std::vector<double> ttft_ms, tpot_ms, e2e_ms;
  Duration total_busy = Duration::zero();
  Duration total_alive = Duration::zero();
  rep.replicas.reserve(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    Replica& r = replicas_[i];
    ReplicaReport rr;
    rr.name = r.name;
    rr.serve = std::move(serves[i]);
    rr.dispatched = r.dispatched;
    rr.spawned_at = r.spawned_at;
    rr.failed = r.server->failed();
    rr.retired = r.retired;
    // A failed replica's provisioned window ends at its death; a retired
    // one's when its drain completes (the capacity is released then) -- so
    // replica_seconds and fleet utilization credit scale-downs. Survivors
    // are billed until the fleet finishes.
    if (rr.failed) {
      rr.alive_until = monde::min(r.server->fault().fail_at, rep.makespan);
    } else if (rr.retired) {
      rr.alive_until = monde::max(r.retired_at,
                                  rr.serve.steps.empty() ? rr.spawned_at : rr.serve.makespan);
    } else {
      rr.alive_until = rep.makespan;
    }
    rr.alive_until = monde::max(rr.alive_until, rr.spawned_at);
    // Utilization weights each replica by the window it was actually alive
    // -- an autoscaled replica is not diluted by time before its spawn, nor
    // a failed one credited for time after its death.
    const Duration window = rr.alive_until - rr.spawned_at;
    rr.utilization = window > Duration::zero() ? rr.serve.busy / window : 0.0;
    rep.cached_prefill_tokens += rr.serve.cache.saved_tokens;
    rep.expert_hits += rr.serve.expert_hits;
    rep.expert_misses += rr.serve.expert_misses;
    rep.handoff_tokens += rr.serve.handoff_tokens;
    rep.handoff_transfer_s += rr.serve.handoff_transfer.sec();
    if (disagg_on) {
      ClusterReport::PoolReport& pr = r.prefill ? rep.prefill_pool : rep.decode_pool;
      ++pr.replicas;
      pr.dispatched += rr.dispatched;
      pr.steps += rr.serve.steps.size();
      pr.busy_s += rr.serve.busy.sec();
      pr.replica_seconds += window.sec();
    }
    total_busy += rr.serve.busy;
    total_alive += window;
    busy_ms.push_back(rr.serve.busy.ms());
    for (const RequestMetrics& m : rr.serve.requests) {
      RequestMetrics fm = m;
      fm.arrival = original_arrival.at(fm.id);  // re-dispatches span their failures
      // Tokens delivered, fleet-wide: each request's full generation counts
      // once, on the replica that finished it (resumed tokens included --
      // they reached the user, and the replica that computed them aborted
      // without reporting).
      rep.generated_tokens += static_cast<std::uint64_t>(fm.generated);
      ttft_ms.push_back(fm.ttft().ms());
      if (fm.generated > 1) tpot_ms.push_back(fm.tpot().ms());
      e2e_ms.push_back(fm.e2e().ms());
      rep.requests.push_back(fm);
    }
    rep.replicas.push_back(std::move(rr));
  }
  MONDE_ASSERT(rep.requests.size() == original_arrival.size(),
               "cluster lost requests: served " << rep.requests.size() << " of "
                                                << original_arrival.size());
  std::stable_sort(rep.requests.begin(), rep.requests.end(), arrival_order<RequestMetrics>);
  rep.imbalance = imbalance_factor(busy_ms);
  rep.fleet_utilization = total_alive > Duration::zero() ? total_busy / total_alive : 0.0;
  rep.replica_seconds = total_alive.sec();
  if (!ttft_ms.empty()) rep.ttft_ms = compute_percentiles(std::move(ttft_ms));
  if (!tpot_ms.empty()) rep.tpot_ms = compute_percentiles(std::move(tpot_ms));
  if (!e2e_ms.empty()) rep.e2e_ms = compute_percentiles(std::move(e2e_ms));
  rep.tokens_per_s = rep.makespan > Duration::zero()
                         ? static_cast<double>(rep.generated_tokens) / rep.makespan.sec()
                         : 0.0;
  const std::uint64_t expert_total = rep.expert_hits + rep.expert_misses;
  rep.expert_hit_rate = expert_total == 0 ? 0.0
                                          : static_cast<double>(rep.expert_hits) /
                                                static_cast<double>(expert_total);
  const auto finish_pool = [](ClusterReport::PoolReport& pr) {
    pr.utilization = pr.replica_seconds > 0.0 ? pr.busy_s / pr.replica_seconds : 0.0;
    pr.mean_step_ms =
        pr.steps > 0 ? pr.busy_s * 1000.0 / static_cast<double>(pr.steps) : 0.0;
  };
  finish_pool(rep.prefill_pool);
  finish_pool(rep.decode_pool);
  return rep;
}

}  // namespace monde::serve
