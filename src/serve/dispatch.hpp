// Pluggable request-dispatch policies for the cluster simulator.
//
// A ClusterSim (cluster.hpp) fronts N replica servers with one dispatcher:
// at every request's arrival instant the dispatcher sees a load snapshot of
// each replica and picks where the request goes. Four classic load-only
// policies:
//
//   * round-robin             -- rotate through replicas, load-oblivious;
//     the baseline every load balancer starts from.
//   * join-shortest-queue     -- send to the replica with the fewest
//     accepted-but-unfinished requests; the canonical load-aware policy.
//   * least-outstanding-tokens -- like JSQ but weighs each request by the
//     tokens it still owes (un-prefilled prompt + remaining decode budget),
//     so one long request counts for more than several short ones.
//   * power-of-two-choices    -- sample two random replicas, keep the
//     shorter queue; near-JSQ tail latency while probing O(1) replicas
//     (Mitzenmacher's "power of two choices").
//
// plus four residency-aware policies that additionally read what is already
// *resident* on each replica -- expert weights (kExpertAffinity /
// kExpertSharded, serve/expert.hpp) or shared KV prefixes (kPrefixHash /
// kPrefixAffinity, serve/kvcache.hpp). docs/DISPATCH.md is the reference
// page: the full policy matrix, each policy's snapshot-field dependencies,
// and the tie-break rules.
//
// Policies are deterministic given their seed; ties break toward the lowest
// replica index.
//
// Health-checked dispatch: the cluster never hands a policy the raw fleet.
// It filters snapshots through eligible_snapshots() first -- detected-dead
// and retired replicas are excluded outright, and replicas whose step-
// duration EWMA marks them as pathologically slow are skipped while a
// faster peer exists. A policy's pick() therefore indexes into the filtered
// vector; the caller maps back through ReplicaSnapshot::replica. With every
// replica healthy the filter is the identity, so fault-free dispatch is
// bit-identical to the pre-health behavior.
//
// Snapshot maintenance: by default the cluster maintains the eligible list
// incrementally -- one snapshot per accepting replica, load fields written
// through when that replica's server mutates, membership adjusted on spawn/
// detection/retirement -- so a dispatch costs O(changed replicas), not
// O(fleet). The slow-EWMA filter is maintained the same way (a running
// median over the eligible EWMAs and a write-through fast set), so enabling
// it does not reintroduce per-dispatch rebuilds; eligible_snapshots() below
// remains the reference implementation both paths are pinned against. The load fields (in_flight, outstanding_tokens) and membership
// are exact; the purely time-varying fields (heartbeat_age_ms, warming) are
// refreshed per dispatch only for replicas where they can still move
// (cold-starting or undetected-fail-stop ones). A custom policy that reads
// exact heartbeat ages of healthy replicas should run the cluster with
// ClusterConfig::reference_loop (see cluster.hpp).
//
// Units: `outstanding_tokens` counts tokens, `heartbeat_age_ms` and
// `step_ewma_ms` are simulated milliseconds. Snapshots are plain values --
// policies never touch a server and are unit-testable without an engine.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace monde::serve {

/// Which dispatcher make_dispatcher() builds. Every enumerator is documented
/// in docs/DISPATCH.md (policy matrix, snapshot-field dependencies,
/// tie-break rules); the residency-aware ones are opt-in and reduce to
/// kLeastOutstandingTokens when the state they route on is absent.
enum class DispatchPolicy {
  kRoundRobin,              ///< rotate through replicas, load-oblivious
  kJoinShortestQueue,       ///< fewest in-flight requests wins
  kLeastOutstandingTokens,  ///< fewest still-owed tokens wins
  kPowerOfTwoChoices,       ///< two random probes, lighter queue wins
  // Gating-aware policies (expert-aware serving, serve/expert.hpp). They
  // read the request's ExpertProfile and the replicas' expert residency
  // signatures; with both absent they reduce to least-outstanding-tokens.
  kExpertAffinity,  ///< best hot-set overlap, power-of-two load spill-over
  kExpertSharded,   ///< heavy experts hash-partitioned across the fleet
  // Prefix-locality policies (KV-cache-aware serving, serve/kvcache.hpp).
  // They route on the request's shared `prefix_id` so group members land
  // where the group's prefix KV is (or will become) resident; requests
  // without a shared prefix -- and decode-phase work, which has no prefill
  // left to save -- fall back to least-outstanding-tokens.
  kPrefixHash,      ///< consistent-hash ring on prefix_id, load spill-over
  kPrefixAffinity,  ///< power-of-two choices among resident prefix-holders
};

/// Canonical policy name ("round-robin", "prefix-affinity", ...), used in
/// bench banners and docs; docs/DISPATCH.md keys its matrix on these.
[[nodiscard]] std::string to_string(DispatchPolicy policy);

/// The four classic load-only policies, in enum order (for benches and tests
/// that sweep them; the budget-pinned sweeps rely on this set staying
/// fixed). The residency-aware policies are opted into explicitly.
[[nodiscard]] std::vector<DispatchPolicy> all_dispatch_policies();

/// One replica's live load and health as the dispatcher sees it at a
/// dispatch instant.
struct ReplicaSnapshot {
  std::size_t replica = 0;             ///< index into the cluster's replica list
  std::size_t in_flight = 0;           ///< accepted, not yet finished requests
  std::int64_t outstanding_tokens = 0; ///< un-prefilled prompt + remaining decode tokens
  // Health and lifecycle (filled by the cluster; defaults describe a
  // healthy, long-booted replica so hand-built snapshots keep working):
  bool accepting = true;        ///< false: detected dead or retired -- never dispatch
  bool warming = false;         ///< cold-starting: accepts, but steps only after warm-up
  double heartbeat_age_ms = 0;  ///< time since the last successful heartbeat poll
  double step_ewma_ms = 0;      ///< EWMA of recent step durations (0 = no steps yet)
  /// Compact residency summary: the replica's ExpertCache signature
  /// (core/expert_cache.hpp), 0 when expert-aware serving is disabled.
  /// Gating-aware policies AND it with the request's profile signature to
  /// estimate hot-set overlap in one popcount.
  std::uint64_t expert_sig = 0;
  /// Compact shared-prefix residency: the replica's KvCache signature
  /// (serve/kvcache.hpp, `prefix_signature()`), 0 when the prefix cache is
  /// disabled or empty. kPrefixAffinity tests the request's
  /// `prefix_signature_bit` against it to find prefix-holders; a set bit is
  /// Bloom-approximate (possible false positive, never a false negative).
  std::uint64_t prefix_sig = 0;
  /// Disaggregated serving (serve/disagg.hpp): true for a prefill-specialist
  /// replica. False when disaggregation is disabled (the whole fleet is then
  /// one unified decode-capable pool), so hand-built snapshots keep working.
  bool prefill_pool = false;
};

/// A dispatch policy. pick() is called once per request, in arrival order;
/// implementations may carry state (rotation counter, RNG stream, the
/// consistent-hash ring), so picks are deterministic in the *sequence* of
/// (snapshots, request) pairs seen since construction.
class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Chooses the replica for the next request. `snapshots` holds one entry
  /// per replica, in replica order; the returned index refers into it.
  [[nodiscard]] virtual std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) = 0;

  /// Request-aware overload used by the cluster: residency-aware policies
  /// read the request's expert profile or shared prefix id; every load-only
  /// policy ignores the request and forwards to pick(snapshots), so stock
  /// policies behave identically through either entry point.
  [[nodiscard]] virtual std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots,
                                         const Request& rq) {
    (void)rq;
    return pick(snapshots);
  }
};

/// Builds a fresh dispatcher. `seed` feeds the randomized policies
/// (power-of-two choices and every residency-aware policy's load
/// spill-over probes); everything is deterministic given it.
[[nodiscard]] std::unique_ptr<Dispatcher> make_dispatcher(DispatchPolicy policy,
                                                          std::uint64_t seed = 42);

/// The health filter applied before every pick():
///
///   1. keeps accepting replicas only, and among those drops any whose
///      `heartbeat_age_ms` exceeds `stale_age_ms` (a stale heartbeat is how
///      the dispatcher "sees" an undetected death) -- throws when nothing
///      is left: the whole fleet failed or retired;
///   2. when `slow_ewma_factor` is finite, drops replicas whose step EWMA
///      exceeds factor x the median EWMA of the remaining set -- unless
///      that would empty it (a soft deprioritization).
///
/// Warming replicas stay eligible (a cold-starting replica accepts and
/// queues; that *is* the modelled warm-up cost). Order and `replica`
/// indices are preserved, so with an all-healthy fleet the result equals
/// the input.
[[nodiscard]] std::vector<ReplicaSnapshot> eligible_snapshots(
    const std::vector<ReplicaSnapshot>& all, double slow_ewma_factor,
    double stale_age_ms = std::numeric_limits<double>::infinity());

/// Disaggregated-serving pool filter, applied after eligible_snapshots():
/// keeps the replicas of the requested role (`prefill` true = prefill pool,
/// false = decode pool). For the decode pool a positive `decode_admit_tokens`
/// prefers replicas within the outstanding-token cap and falls back to the
/// whole pool when every member is over it (admission control must not
/// strand a handoff). May return empty -- the caller decides whether to fall
/// back to a less-filtered view before declaring the pool gone. Order and
/// `replica` indices are preserved.
[[nodiscard]] std::vector<ReplicaSnapshot> pool_snapshots(
    const std::vector<ReplicaSnapshot>& all, bool prefill,
    std::int64_t decode_admit_tokens = 0);

}  // namespace monde::serve
