// Pluggable request-dispatch policies for the cluster simulator.
//
// A ClusterSim (cluster.hpp) fronts N replica servers with one dispatcher:
// at every request's arrival instant the dispatcher sees a load snapshot of
// each replica and picks where the request goes. Four classic policies:
//
//   * round-robin             -- rotate through replicas, load-oblivious;
//     the baseline every load balancer starts from.
//   * join-shortest-queue     -- send to the replica with the fewest
//     accepted-but-unfinished requests; the canonical load-aware policy.
//   * least-outstanding-tokens -- like JSQ but weighs each request by the
//     tokens it still owes (un-prefilled prompt + remaining decode budget),
//     so one long request counts for more than several short ones.
//   * power-of-two-choices    -- sample two random replicas, keep the
//     shorter queue; near-JSQ tail latency while probing O(1) replicas
//     (Mitzenmacher's "power of two choices").
//
// Policies are deterministic given their seed; ties break toward the lowest
// replica index.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace monde::serve {

enum class DispatchPolicy {
  kRoundRobin,
  kJoinShortestQueue,
  kLeastOutstandingTokens,
  kPowerOfTwoChoices,
};

[[nodiscard]] std::string to_string(DispatchPolicy policy);

/// All four policies, in enum order (for benches and tests that sweep them).
[[nodiscard]] std::vector<DispatchPolicy> all_dispatch_policies();

/// One replica's live load as the dispatcher sees it at a dispatch instant.
struct ReplicaSnapshot {
  std::size_t replica = 0;             ///< index into the cluster's replica list
  std::size_t in_flight = 0;           ///< accepted, not yet finished requests
  std::int64_t outstanding_tokens = 0; ///< un-prefilled prompt + remaining decode tokens
};

/// A dispatch policy. pick() is called once per request, in arrival order;
/// implementations may carry state (rotation counter, RNG stream).
class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Chooses the replica for the next request. `snapshots` holds one entry
  /// per replica, in replica order; the returned index refers into it.
  [[nodiscard]] virtual std::size_t pick(const std::vector<ReplicaSnapshot>& snapshots) = 0;
};

/// Builds a fresh dispatcher. `seed` feeds the randomized policies
/// (power-of-two choices); everything is deterministic given it.
[[nodiscard]] std::unique_ptr<Dispatcher> make_dispatcher(DispatchPolicy policy,
                                                          std::uint64_t seed = 42);

}  // namespace monde::serve
