// Arrival-trace generators for the serving simulator.
//
// Three canonical load shapes cover most serving studies:
//   * closed-loop  -- all requests queued at t=0 (offline / batch inference);
//   * Poisson      -- open-loop with exponential inter-arrival times, the
//                     standard model of independent online users;
//   * bursty       -- groups of simultaneous requests separated by idle
//                     gaps, the shape that stresses admission control and
//                     tail latency.
// Generation is deterministic given the seed; request shapes (prompt length,
// decode budget) are drawn uniformly from a RequestShape envelope.
//
// Two consumption styles over the same generators:
//   * streaming  -- an ArrivalStream hands out requests one at a time in
//     (arrival, id) order with O(1) generator state, so a cluster run over a
//     million requests never holds the trace in memory;
//   * materialized -- the classic `std::vector<Request>` builders, now thin
//     adapters that drain the corresponding stream. A trace and its stream
//     are bit-identical request for request (pinned by tests), so callers
//     can switch styles without perturbing any simulation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "serve/request.hpp"

namespace monde::serve {

/// Envelope of request shapes in a generated trace; each request draws its
/// prompt length and decode budget uniformly from these ranges.
///
/// Shared prefixes: with `prefix_groups` > 0, each request joins one of the
/// groups with probability `shared_fraction`; group members share their
/// first `shared_prefix_len` prompt tokens (a system prompt or few-shot
/// header), which a replica's prefix cache can serve without re-prefilling.
/// Group membership is uniform by default; `prefix_zipf_s` > 0 skews it
/// Zipf-style (group 1 most popular), modelling a multi-tenant fleet where
/// a few tenants dominate traffic. Prefix assignment draws from its own RNG
/// stream, so a trace's arrivals and shapes are bit-identical with prefixes
/// on or off -- and at the default `prefix_zipf_s = 0` the group draw is
/// bit-identical to the historical uniform draw.
struct RequestShape {
  std::int64_t prompt_min = 64;
  std::int64_t prompt_max = 256;
  std::int64_t new_tokens_min = 8;
  std::int64_t new_tokens_max = 32;
  int prefix_groups = 0;            ///< shared-prefix groups (0 disables)
  double shared_fraction = 0.0;     ///< probability a request joins a group
  std::int64_t shared_prefix_len = 0;  ///< tokens shared (capped to the prompt)
  double prefix_zipf_s = 0.0;       ///< Zipf skew of group popularity (0 = uniform)

  void validate() const;
};

/// Pull-based source of serving requests. next() yields requests in
/// (arrival, id) order -- the scheduler's push() precondition -- and
/// std::nullopt once the trace is exhausted (every call after that also
/// yields nullopt). Generators hold O(1) state: seeded RNG streams plus a
/// cursor, never a materialized trace.
class ArrivalStream {
 public:
  virtual ~ArrivalStream() = default;

  /// The next request, or std::nullopt when the stream is exhausted.
  [[nodiscard]] virtual std::optional<Request> next() = 0;

  /// Total requests this stream will yield, when known up front (every
  /// generator in this header knows). Lets consumers pre-size bookkeeping
  /// without draining the stream.
  [[nodiscard]] virtual std::size_t size_hint() const = 0;
};

/// `n` requests all queued at t=0 (offline batch inference).
[[nodiscard]] std::unique_ptr<ArrivalStream> closed_loop_stream(int n, const RequestShape& shape,
                                                                std::uint64_t seed);

/// Open-loop Poisson arrivals at `rate_per_s` requests per second.
[[nodiscard]] std::unique_ptr<ArrivalStream> poisson_stream(int n, double rate_per_s,
                                                            const RequestShape& shape,
                                                            std::uint64_t seed);

/// Bursts of `burst_size` back-to-back requests separated by `burst_gap`.
[[nodiscard]] std::unique_ptr<ArrivalStream> bursty_stream(int n, int burst_size,
                                                           Duration burst_gap,
                                                           const RequestShape& shape,
                                                           std::uint64_t seed);

/// Replays an existing trace as a stream. The trace must already be in
/// (arrival, id) order (generated traces are; hand-built ones may need a
/// sort) -- enforced per next() call.
class TraceArrivalStream final : public ArrivalStream {
 public:
  explicit TraceArrivalStream(std::vector<Request> trace);
  [[nodiscard]] std::optional<Request> next() override;
  [[nodiscard]] std::size_t size_hint() const override { return trace_.size(); }

 private:
  std::vector<Request> trace_;
  std::size_t pos_ = 0;
};

/// Drain a stream into a vector (the materialized-trace adapter).
[[nodiscard]] std::vector<Request> materialize(ArrivalStream& stream);

/// `n` requests all queued at t=0 (offline batch inference).
[[nodiscard]] std::vector<Request> closed_loop_trace(int n, const RequestShape& shape,
                                                     std::uint64_t seed);

/// Open-loop Poisson arrivals at `rate_per_s` requests per second.
[[nodiscard]] std::vector<Request> poisson_trace(int n, double rate_per_s,
                                                 const RequestShape& shape,
                                                 std::uint64_t seed);

/// Bursts of `burst_size` back-to-back requests separated by `burst_gap`.
[[nodiscard]] std::vector<Request> bursty_trace(int n, int burst_size, Duration burst_gap,
                                                const RequestShape& shape,
                                                std::uint64_t seed);

}  // namespace monde::serve
