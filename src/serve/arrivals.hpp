// Arrival-trace generators for the serving simulator.
//
// Three canonical load shapes cover most serving studies:
//   * closed-loop  -- all requests queued at t=0 (offline / batch inference);
//   * Poisson      -- open-loop with exponential inter-arrival times, the
//                     standard model of independent online users;
//   * bursty       -- groups of simultaneous requests separated by idle
//                     gaps, the shape that stresses admission control and
//                     tail latency.
// Generation is deterministic given the seed; request shapes (prompt length,
// decode budget) are drawn uniformly from a RequestShape envelope.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request.hpp"

namespace monde::serve {

/// Envelope of request shapes in a generated trace; each request draws its
/// prompt length and decode budget uniformly from these ranges.
///
/// Shared prefixes: with `prefix_groups` > 0, each request joins one of the
/// groups (uniformly) with probability `shared_fraction`; group members
/// share their first `shared_prefix_len` prompt tokens (a system prompt or
/// few-shot header), which a replica's prefix cache can serve without
/// re-prefilling. Prefix assignment draws from its own RNG stream, so a
/// trace's arrivals and shapes are bit-identical with prefixes on or off.
struct RequestShape {
  std::int64_t prompt_min = 64;
  std::int64_t prompt_max = 256;
  std::int64_t new_tokens_min = 8;
  std::int64_t new_tokens_max = 32;
  int prefix_groups = 0;            ///< shared-prefix groups (0 disables)
  double shared_fraction = 0.0;     ///< probability a request joins a group
  std::int64_t shared_prefix_len = 0;  ///< tokens shared (capped to the prompt)

  void validate() const;
};

/// `n` requests all queued at t=0 (offline batch inference).
[[nodiscard]] std::vector<Request> closed_loop_trace(int n, const RequestShape& shape,
                                                     std::uint64_t seed);

/// Open-loop Poisson arrivals at `rate_per_s` requests per second.
[[nodiscard]] std::vector<Request> poisson_trace(int n, double rate_per_s,
                                                 const RequestShape& shape,
                                                 std::uint64_t seed);

/// Bursts of `burst_size` back-to-back requests separated by `burst_gap`.
[[nodiscard]] std::vector<Request> bursty_trace(int n, int burst_size, Duration burst_gap,
                                                const RequestShape& shape,
                                                std::uint64_t seed);

}  // namespace monde::serve
