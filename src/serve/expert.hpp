// Expert-aware serving configuration.
//
// Reconnects the fleet layer to the paper's subject: when enabled, every
// request carries an ExpertProfile (its top activated experts per decoder
// MoE layer, moe/expert_profile.hpp), every replica keeps its own hot/cold
// expert residency (core::ExpertCache), expert-miss fetches are priced into
// step time through the interconnect transfer-cost model, and the cluster
// can periodically rebalance hot experts across replicas. Everything is
// off by default: with `enabled == false` the serving stack is bit-identical
// to an expert-oblivious build (pinned by tests/test_calendar_diff.cpp),
// mirroring the PrefixCacheConfig pattern in serve/kvcache.hpp.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/units.hpp"
#include "interconnect/link.hpp"

namespace monde::serve {

struct ExpertServingConfig {
  bool enabled = false;

  /// Per-replica residency: experts each replica can hold hot (ExpertCache
  /// capacity). Must be > 0 when enabled -- a replica with no residency
  /// would pay a fetch for every activated expert every step.
  std::size_t cache_capacity = 24;

  /// Experts kept per decoder MoE layer in a request's profile.
  int profile_width = 2;

  /// Probe tokens routed per layer when deriving a profile. More tokens
  /// sharpen the top-k estimate; the draw happens on a dedicated per-request
  /// RNG stream either way, so this never perturbs the routed workload.
  std::int64_t profile_tokens = 64;

  /// Seed of the cluster-level profiling WorkloadGenerator (independent of
  /// replica seeds so profiles are fleet-global, not per-replica).
  std::uint64_t profile_seed = 42;

  /// Weight bytes fetched per expert miss; Bytes{0} derives the size from
  /// the model (MoeModelConfig::expert_bytes()).
  Bytes expert_bytes{0};

  /// Link pricing an expert fetch into the missing replica's step time --
  /// the paper's CXL.mem path by default, matching the MoNDE device pulling
  /// cold experts from pooled memory.
  interconnect::LinkSpec fetch_link = interconnect::LinkSpec::cxl_mem_gen4_x16();

  /// Cross-replica rebalancing cadence on the cluster event calendar;
  /// zero() disables rebalancing. Each tick preloads the fleet's currently
  /// hottest experts (by dispatched-profile counts) into every accepting
  /// replica's residency, each preload priced as a fetch_link transfer.
  Duration rebalance_period = Duration::zero();

  /// Hottest experts preloaded per rebalance tick.
  std::size_t rebalance_hot_experts = 4;

  /// Pruned-expert degraded mode (MoNE-style): when the chosen replica's
  /// outstanding token load exceeds this threshold, the request's profile is
  /// truncated to `prune_width` experts per layer before enqueue -- trading
  /// routing fidelity for fewer expert fetches under overload. 0 disables.
  std::int64_t prune_outstanding_tokens = 0;

  /// Experts kept per layer for pruned requests.
  int prune_width = 1;

  void validate() const {
    if (!enabled) return;
    MONDE_REQUIRE(cache_capacity > 0, "expert serving needs cache_capacity > 0");
    MONDE_REQUIRE(profile_width > 0, "expert serving needs profile_width > 0");
    MONDE_REQUIRE(profile_tokens > 0, "expert serving needs profile_tokens > 0");
    MONDE_REQUIRE(rebalance_period >= Duration::zero(),
                  "rebalance_period must be >= 0");
    MONDE_REQUIRE(rebalance_period == Duration::zero() || rebalance_hot_experts > 0,
                  "rebalancing needs rebalance_hot_experts > 0");
    MONDE_REQUIRE(prune_outstanding_tokens >= 0,
                  "prune_outstanding_tokens must be >= 0");
    MONDE_REQUIRE(prune_outstanding_tokens == 0 || prune_width > 0,
                  "pruned mode needs prune_width > 0");
  }
};

}  // namespace monde::serve
