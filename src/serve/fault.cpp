#include "serve/fault.hpp"

#include <cmath>

#include "common/error.hpp"

namespace monde::serve {

void FaultSpec::validate() const {
  MONDE_REQUIRE(fail_at > Duration::zero(), "fail_at must be positive (replica must boot)");
  MONDE_REQUIRE(slow_factor >= 1.0,
                "slow_factor models a slow-down; need >= 1, got " << slow_factor);
  MONDE_REQUIRE(slow_until >= slow_from, "slow-down window must not be inverted");
  MONDE_REQUIRE(slow_from >= Duration::zero(), "slow-down window starts before t=0");
}

void HealthConfig::validate() const {
  MONDE_REQUIRE(heartbeat_interval > Duration::zero(), "heartbeat_interval must be > 0");
  MONDE_REQUIRE(heartbeat_timeout >= heartbeat_interval,
                "heartbeat_timeout (" << heartbeat_timeout.str()
                                      << ") must be >= heartbeat_interval ("
                                      << heartbeat_interval.str() << ")");
  MONDE_REQUIRE(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
                "ewma_alpha must lie in (0, 1], got " << ewma_alpha);
  MONDE_REQUIRE(slow_ewma_factor > 1.0,
                "slow_ewma_factor must exceed 1 (or be infinite to disable)");
}

Duration last_ok_heartbeat(Duration now, Duration fail_at, const HealthConfig& cfg) {
  MONDE_REQUIRE(now >= Duration::zero(), "heartbeat query before t=0");
  // Last poll at or before `now`...
  double k = std::floor(now / cfg.heartbeat_interval);
  // ...clamped to the last poll strictly before the instant of death (the
  // k = 0 poll is defined to succeed: a replica is alive at its own start).
  if (fail_at < Duration::infinite()) {
    const double k_dead = std::ceil(fail_at / cfg.heartbeat_interval) - 1.0;
    if (k_dead < k) k = k_dead;
  }
  if (k < 0.0) k = 0.0;
  return cfg.heartbeat_interval * k;
}

Duration failure_detection_time(Duration fail_at, const HealthConfig& cfg) {
  MONDE_REQUIRE(fail_at < Duration::infinite(),
                "detection time is only defined for a fail-stop fault");
  const Duration last_ok = last_ok_heartbeat(fail_at, fail_at, cfg);
  return monde::max(fail_at, last_ok + cfg.heartbeat_timeout);
}

}  // namespace monde::serve
