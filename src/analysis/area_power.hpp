// Parametric area / power model of the MoNDE NDP core (paper Table 3).
//
// The paper synthesizes the systolic array with Synopsys DC at 28 nm / 1 GHz
// and generates buffers with a commercial memory compiler. We substitute a
// parametric model whose per-MAC and per-KB coefficients are calibrated so
// the DAC'24 configuration (64 units of 4x4 PEs, 264 KB of buffers)
// reproduces the published component numbers exactly, while remaining
// scalable for what-if ablations (different unit counts, buffer sizes,
// clocks).
#pragma once

#include "ndp/ndp_spec.hpp"

namespace monde::analysis {

/// Area (mm^2) and power (W) of one component.
struct AreaPower {
  double area_mm2 = 0.0;
  double power_w = 0.0;

  AreaPower& operator+=(const AreaPower& o) {
    area_mm2 += o.area_mm2;
    power_w += o.power_w;
    return *this;
  }
};

/// The Table 3 breakdown.
struct NdpAreaPowerReport {
  AreaPower pe_array;       ///< "Systolic Array / PE"
  AreaPower array_control;  ///< "Systolic Array / Control"
  AreaPower scratchpad;     ///< "Scratchpad"
  AreaPower operand_bufs;   ///< "Operand Bufs"

  [[nodiscard]] AreaPower total() const {
    AreaPower t;
    t += pe_array;
    t += array_control;
    t += scratchpad;
    t += operand_bufs;
    return t;
  }
};

/// Technology coefficients (28 nm, 1 GHz reference clock).
struct TechCoefficients {
  double mm2_per_mac = 0.0;
  double w_per_mac = 0.0;
  double mm2_control_per_unit = 0.0;
  double w_control_per_unit = 0.0;
  double mm2_per_scratch_kib = 0.0;
  double w_per_scratch_kib = 0.0;
  double mm2_per_operand_kib = 0.0;
  double w_per_operand_kib = 0.0;

  /// Coefficients calibrated so NdpSpec::monde_dac24() reproduces Table 3.
  [[nodiscard]] static TechCoefficients dac24_28nm();
};

/// Parametric NDP area/power evaluator.
class AreaPowerModel {
 public:
  explicit AreaPowerModel(TechCoefficients coeff = TechCoefficients::dac24_28nm());

  /// Evaluate a configuration. Dynamic power scales linearly with clock
  /// relative to the 1 GHz calibration point; area is clock-independent.
  [[nodiscard]] NdpAreaPowerReport evaluate(const ndp::NdpSpec& spec) const;

  /// Power of the base CXL memory-expander device (no NDP): static per-GB
  /// plus dynamic per-GB/s terms, calibrated to the paper's 114.2 W at
  /// 512 GB / ~512 GB/s.
  [[nodiscard]] double base_device_power_w(Bytes capacity, Bandwidth bandwidth) const;

  /// NDP power as a fraction of the base device power (paper: ~1.6%).
  [[nodiscard]] double ndp_power_overhead(const ndp::NdpSpec& spec, Bytes capacity,
                                          Bandwidth bandwidth) const;

  /// DRAM-equivalent area: Gb of DRAM cells occupying the same silicon as
  /// the NDP core (the paper states 3.0 mm^2 ~= 0.9 Gb of its target DRAM).
  [[nodiscard]] double dram_equivalent_gb(double area_mm2) const;

 private:
  TechCoefficients coeff_;
  // Calibrated so a 512-GiB / 512-GB/s expander draws the paper's 114.2 W.
  double w_per_gb_static_ = 0.1118;   ///< DRAM background+refresh per GB
  double w_per_gbps_dynamic_ = 0.103; ///< IO+activate power per GB/s
  double dram_gb_per_mm2_ = 0.3;      ///< density of the target LPDDR node
};

}  // namespace monde::analysis
