#include "analysis/area_power.hpp"

#include "common/error.hpp"

namespace monde::analysis {

TechCoefficients TechCoefficients::dac24_28nm() {
  // Calibration anchors (Table 3, DAC'24 configuration):
  //   PE array:   2.042 mm^2 / 0.993 W over 64 units x 16 MACs = 1024 MACs
  //   Control:    0.053 mm^2 / 0.033 W over 64 units
  //   Scratchpad: 0.289 mm^2 / 0.258 W over 136 KiB
  //   Operand:    0.570 mm^2 / 0.526 W over 128 KiB
  TechCoefficients c;
  c.mm2_per_mac = 2.042 / 1024.0;
  c.w_per_mac = 0.993 / 1024.0;
  c.mm2_control_per_unit = 0.053 / 64.0;
  c.w_control_per_unit = 0.033 / 64.0;
  c.mm2_per_scratch_kib = 0.289 / 136.0;
  c.w_per_scratch_kib = 0.258 / 136.0;
  c.mm2_per_operand_kib = 0.570 / 128.0;
  c.w_per_operand_kib = 0.526 / 128.0;
  return c;
}

AreaPowerModel::AreaPowerModel(TechCoefficients coeff) : coeff_{coeff} {}

NdpAreaPowerReport AreaPowerModel::evaluate(const ndp::NdpSpec& spec) const {
  MONDE_REQUIRE(spec.num_units > 0 && spec.clock_ghz > 0.0, "invalid NDP spec");
  const double macs = spec.macs_per_cycle();
  const double units = static_cast<double>(spec.num_units);
  const double clock_scale = spec.clock_ghz / 1.0;  // dynamic power vs 1 GHz

  NdpAreaPowerReport r;
  r.pe_array.area_mm2 = coeff_.mm2_per_mac * macs;
  r.pe_array.power_w = coeff_.w_per_mac * macs * clock_scale;
  r.array_control.area_mm2 = coeff_.mm2_control_per_unit * units;
  r.array_control.power_w = coeff_.w_control_per_unit * units * clock_scale;
  r.scratchpad.area_mm2 = coeff_.mm2_per_scratch_kib * spec.scratchpad.as_kib();
  r.scratchpad.power_w = coeff_.w_per_scratch_kib * spec.scratchpad.as_kib() * clock_scale;
  r.operand_bufs.area_mm2 = coeff_.mm2_per_operand_kib * spec.operand_buffers.as_kib();
  r.operand_bufs.power_w =
      coeff_.w_per_operand_kib * spec.operand_buffers.as_kib() * clock_scale;
  return r;
}

double AreaPowerModel::base_device_power_w(Bytes capacity, Bandwidth bandwidth) const {
  return w_per_gb_static_ * capacity.as_gb() + w_per_gbps_dynamic_ * bandwidth.as_gbps();
}

double AreaPowerModel::ndp_power_overhead(const ndp::NdpSpec& spec, Bytes capacity,
                                          Bandwidth bandwidth) const {
  const double base = base_device_power_w(capacity, bandwidth);
  MONDE_REQUIRE(base > 0.0, "base device power must be positive");
  return evaluate(spec).total().power_w / base;
}

double AreaPowerModel::dram_equivalent_gb(double area_mm2) const {
  return area_mm2 * dram_gb_per_mm2_;
}

}  // namespace monde::analysis
