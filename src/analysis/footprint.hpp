// Memory-footprint and data-movement analytics (paper Section 2.2,
// Figures 2(a)/2(b), Equations 1-2).
#pragma once

#include <cstdint>
#include <vector>

#include "moe/model_config.hpp"

namespace monde::analysis {

/// One row of the Figure 2(a) memory-scaling chart.
struct FootprintRow {
  std::string label;
  std::int64_t num_experts = 0;  ///< 0 for the dense baseline
  Bytes non_expert;
  Bytes expert;
  [[nodiscard]] Bytes total() const { return non_expert + expert; }
};

/// Footprint of one configuration.
[[nodiscard]] FootprintRow footprint(const moe::MoeModelConfig& model);

/// Figure 2(a): dense baseline plus E in {64, 128, 256, 512} variants.
[[nodiscard]] std::vector<FootprintRow> expert_scaling_sweep(const moe::MoeModelConfig& base);

/// Equation 1: full Parameter Movement volume of one MoE layer,
/// 2 * E * dmodel * dff elements.
[[nodiscard]] Bytes pmove_volume_full(const moe::MoeModelConfig& model);

/// On-demand PMove volume: only `activated` experts move.
[[nodiscard]] Bytes pmove_volume(const moe::MoeModelConfig& model, std::int64_t activated);

/// Equation 2: Activation Movement volume of one MoE layer,
/// 2 * B * S * dmodel elements (input + output activations).
[[nodiscard]] Bytes amove_volume(const moe::MoeModelConfig& model, std::int64_t batch,
                                 std::int64_t seq_len);

/// One row of the Figure 2(b) dmodel-scaling chart.
struct DmodelScalingRow {
  std::int64_t dmodel = 0;
  Bytes single_expert;       ///< one expert's parameters
  Bytes activations;         ///< activations for the probe token count
  double expert_to_act_ratio = 0.0;
};

/// Figure 2(b): expert size vs activation size across dmodel values for a
/// fixed probe of `tokens` tokens (paper uses 6144).
[[nodiscard]] std::vector<DmodelScalingRow> dmodel_scaling_sweep(
    const std::vector<std::int64_t>& dmodels, std::int64_t tokens,
    compute::DataType dtype = compute::DataType::kBf16);

}  // namespace monde::analysis
