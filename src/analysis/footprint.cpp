#include "analysis/footprint.hpp"

#include "common/error.hpp"

namespace monde::analysis {

FootprintRow footprint(const moe::MoeModelConfig& model) {
  model.validate();
  FootprintRow row;
  row.label = model.name;
  row.num_experts = model.moe_every > 0 ? model.num_experts : 0;
  row.non_expert = model.non_expert_bytes();
  row.expert = model.total_expert_bytes();
  return row;
}

std::vector<FootprintRow> expert_scaling_sweep(const moe::MoeModelConfig& base) {
  std::vector<FootprintRow> rows;
  moe::MoeModelConfig dense = base;
  dense.moe_every = 0;
  dense.num_experts = 0;
  dense.name = base.name + "-Dense";
  rows.push_back(footprint(dense));
  for (const std::int64_t e : {std::int64_t{64}, std::int64_t{128}, std::int64_t{256},
                               std::int64_t{512}}) {
    moe::MoeModelConfig variant = base;
    if (variant.moe_every == 0) variant.moe_every = 2;
    variant.num_experts = e;
    variant.name = base.name + "-E" + std::to_string(e);
    rows.push_back(footprint(variant));
  }
  return rows;
}

Bytes pmove_volume_full(const moe::MoeModelConfig& model) {
  return model.layer_expert_bytes();
}

Bytes pmove_volume(const moe::MoeModelConfig& model, std::int64_t activated) {
  MONDE_REQUIRE(activated >= 0 && activated <= model.num_experts,
                "activated experts out of range");
  return Bytes{model.expert_bytes().count() * static_cast<std::uint64_t>(activated)};
}

Bytes amove_volume(const moe::MoeModelConfig& model, std::int64_t batch, std::int64_t seq_len) {
  MONDE_REQUIRE(batch > 0 && seq_len > 0, "amove volume needs tokens");
  const auto elem = static_cast<std::uint64_t>(compute::bytes_per_element(model.dtype));
  return Bytes{std::uint64_t{2} * static_cast<std::uint64_t>(batch) *
               static_cast<std::uint64_t>(seq_len) * static_cast<std::uint64_t>(model.dmodel) *
               elem};
}

std::vector<DmodelScalingRow> dmodel_scaling_sweep(const std::vector<std::int64_t>& dmodels,
                                                   std::int64_t tokens,
                                                   compute::DataType dtype) {
  MONDE_REQUIRE(tokens > 0, "dmodel sweep needs a token probe");
  std::vector<DmodelScalingRow> rows;
  for (const std::int64_t d : dmodels) {
    MONDE_REQUIRE(d > 0, "dmodel must be positive");
    DmodelScalingRow row;
    row.dmodel = d;
    const compute::ExpertShape shape{tokens, d, 4 * d};
    row.single_expert = shape.weight_bytes(dtype);
    row.activations = shape.activation_bytes(dtype);
    row.expert_to_act_ratio =
        static_cast<double>(row.single_expert.count()) /
        static_cast<double>(row.activations.count());
    rows.push_back(row);
  }
  return rows;
}

}  // namespace monde::analysis
