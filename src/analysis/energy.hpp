// Energy accounting (extension beyond the paper's Table 3).
//
// The paper reports component *power*; serving decisions also need *energy
// per request*. This model prices the three movers of an MoE layer:
//
//   * DRAM energy from the cycle simulator's command counts (activate /
//     read / write / refresh energy plus background power x elapsed time),
//     with LPDDR5X-class coefficients;
//   * NDP core energy from the Table-3-calibrated power model x busy time;
//   * link energy per transferred bit (PCIe/CXL SerDes class);
//   * GPU and CPU energy from average-power x busy-time envelopes.
//
// Combined with the strategies' MoeLayerResult accounting, this yields the
// joules-per-MoE-layer comparison in bench/ablation_energy.
#pragma once

#include "analysis/area_power.hpp"
#include "core/strategy.hpp"
#include "dram/request.hpp"

namespace monde::analysis {

/// Per-command and background DRAM energy coefficients (LPDDR5X class).
struct DramEnergyCoefficients {
  double pj_per_activate = 2500.0;   ///< ACT+PRE pair, whole row
  double pj_per_read = 450.0;        ///< one 128-B column access, incl. I/O
  double pj_per_write = 430.0;
  double pj_per_refresh = 28000.0;   ///< all-bank refresh, one rank
  double background_mw_per_gb = 18.0;  ///< idle/standby power per GB
};

/// DRAM energy for a simulated interval.
[[nodiscard]] double dram_energy_joules(const dram::Stats& stats, Duration elapsed,
                                        Bytes capacity,
                                        const DramEnergyCoefficients& c = {});

/// Average-power envelopes for the processors and links.
struct PlatformEnergyCoefficients {
  double gpu_busy_watts = 250.0;       ///< A100 PCIe board power under load
  double cpu_busy_watts = 120.0;       ///< Xeon Silver 4310 package power
  double link_pj_per_bit = 5.0;        ///< PCIe Gen4 SerDes + controller
  DramEnergyCoefficients dram;
};

/// Energy breakdown of one scheduled MoE layer.
struct MoeLayerEnergy {
  double gpu_j = 0.0;       ///< GPU compute (gating, experts, combine)
  double cpu_j = 0.0;       ///< CPU expert compute (CPU+AM only)
  double ndp_j = 0.0;       ///< NDP core + device DRAM
  double link_j = 0.0;      ///< PCIe transfers (PMove + AMove)
  [[nodiscard]] double total_j() const { return gpu_j + cpu_j + ndp_j + link_j; }
};

/// Prices a MoeLayerResult using busy times from the schedule's timeline.
///
/// `timeline` must be the schedule the layer ran on; busy times are taken
/// per stream. NDP DRAM traffic is approximated from the AMove/weight
/// volumes implied by the result (the cycle simulator's detailed counts are
/// available per expert shape via NdpCoreSim when finer accounting is
/// needed).
class EnergyModel {
 public:
  explicit EnergyModel(PlatformEnergyCoefficients coeff = {},
                       AreaPowerModel area_power = AreaPowerModel{});

  [[nodiscard]] MoeLayerEnergy price_layer(const core::MoeLayerResult& result,
                                           const sim::Timeline& timeline,
                                           const core::HwStreams& hw,
                                           const core::SystemConfig& sys,
                                           const moe::MoeModelConfig& model) const;

  [[nodiscard]] const PlatformEnergyCoefficients& coefficients() const { return coeff_; }

 private:
  PlatformEnergyCoefficients coeff_;
  AreaPowerModel area_power_;
};

}  // namespace monde::analysis
