#include "analysis/energy.hpp"

#include "common/error.hpp"

namespace monde::analysis {

double dram_energy_joules(const dram::Stats& stats, Duration elapsed, Bytes capacity,
                          const DramEnergyCoefficients& c) {
  MONDE_REQUIRE(elapsed >= Duration::zero(), "elapsed time must be non-negative");
  const double commands =
      static_cast<double>(stats.activates) * c.pj_per_activate +
      static_cast<double>(stats.reads_completed) * c.pj_per_read +
      static_cast<double>(stats.writes_completed) * c.pj_per_write +
      static_cast<double>(stats.refreshes) * c.pj_per_refresh;
  const double background_w = c.background_mw_per_gb * 1e-3 * capacity.as_gb();
  return commands * 1e-12 + background_w * elapsed.sec();
}

EnergyModel::EnergyModel(PlatformEnergyCoefficients coeff, AreaPowerModel area_power)
    : coeff_{coeff}, area_power_{area_power} {}

MoeLayerEnergy EnergyModel::price_layer(const core::MoeLayerResult& result,
                                        const sim::Timeline& timeline,
                                        const core::HwStreams& hw,
                                        const core::SystemConfig& sys,
                                        const moe::MoeModelConfig& model) const {
  MoeLayerEnergy e;

  // Processor energy: average busy power x busy time on the compute streams.
  Duration gpu_busy = timeline.busy_time(hw.gpu);
  if (sys.num_gpus > 1) gpu_busy += timeline.busy_time(hw.gpu2);
  e.gpu_j = coeff_.gpu_busy_watts * gpu_busy.sec();
  e.cpu_j = coeff_.cpu_busy_watts * timeline.busy_time(hw.cpu).sec();

  // Link energy: every PMove/AMove byte crosses the PCIe link once.
  const double link_bits =
      8.0 * static_cast<double>((result.pmove_bytes + result.amove_bytes).count());
  e.link_j = link_bits * coeff_.link_pj_per_bit * 1e-12;

  // NDP: core power x busy time, plus device-DRAM traffic. Each NDP expert
  // streams its full weights once and moves its activations; command mix is
  // approximated with the cycle simulator's typical row-hit behaviour
  // (>95% hits -> reads dominate; one activate per row).
  Duration ndp_busy = Duration::zero();
  for (const auto& stream : hw.ndp) ndp_busy += timeline.busy_time(stream);
  const double core_w = area_power_.evaluate(sys.ndp).total().power_w;
  e.ndp_j = core_w * ndp_busy.sec();
  if (result.experts_ndp > 0) {
    const double weight_bytes = static_cast<double>(model.expert_bytes().count()) *
                                static_cast<double>(result.experts_ndp);
    const double access = static_cast<double>(sys.monde_mem.org.access_bytes);
    const double reads = weight_bytes / access;
    const double row_bytes = static_cast<double>(sys.monde_mem.org.row_bytes().count());
    const double activates = weight_bytes / row_bytes;
    dram::Stats approx;
    approx.reads_completed = static_cast<std::uint64_t>(reads);
    approx.activates = static_cast<std::uint64_t>(activates);
    e.ndp_j += dram_energy_joules(approx, ndp_busy, sys.monde_mem.org.total_capacity(),
                                  coeff_.dram);
  }
  return e;
}

}  // namespace monde::analysis
