#!/usr/bin/env python3
"""Fail on broken intra-repo links in README.md and docs/*.md.

Checks every markdown inline link ``[text](target)`` whose target is not an
external URL (http/https/mailto) or a pure in-page anchor. Relative targets
are resolved against the file containing the link; an optional ``#anchor``
suffix is stripped before the existence check (anchor validity itself is
not checked). Exits non-zero listing every broken link.

Run from anywhere inside the repository:

    python3 scripts/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline markdown links, skipping images; good enough for this repo's docs
# (no reference-style links, no angle-bracket destinations with spaces).
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files(repo_root: Path) -> list[Path]:
    files = [repo_root / "README.md"]
    files += sorted((repo_root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def check_file(md: Path) -> list[str]:
    errors = []
    for lineno, line in enumerate(md.read_text(encoding="utf-8").splitlines(), 1):
        for target in LINK_RE.findall(line):
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{md}:{lineno}: broken link -> {target}")
    return errors


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    files = doc_files(repo_root)
    if not files:
        print("no documentation files found -- wrong repository root?")
        return 1
    errors = [e for f in files for e in check_file(f)]
    for e in errors:
        print(e)
    checked = ", ".join(str(f.relative_to(repo_root)) for f in files)
    if errors:
        print(f"\n{len(errors)} broken link(s) across {checked}")
        return 1
    print(f"all intra-repo links resolve ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
