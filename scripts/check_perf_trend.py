#!/usr/bin/env python3
"""Wall-clock perf trend gate: record measured runtimes, fail on regressions.

The budget gate (check_bench_budget.py) pins SIMULATED metrics, which are
deterministic and machine-independent. Wall-clock is neither, so it gets a
different treatment: every nightly serve-scale-full run appends its measured
runtime (a `--perf` record: {"bench", "threads", "wall_s"} plus optional
per-phase keys "advance_s"/"dispatch_s"/"commit_s") to a retained history
file, and this script gates the newest sample against the trailing median of
its own (bench, threads) group. The phase split shows where the wall-clock
went (parallel advancement vs sequential dispatch and commit); by default it
is display-only, but --max-phase-share turns it into a gate: a sequential
phase swelling past its share cap fails the run even when total wall_s still
squeaks under the regression band. A slow sample on an unlucky runner widens
the band once; a real slowdown shifts every subsequent sample and trips the
gate.

Usage:
    check_perf_trend.py --history perf_history.jsonl --add run1.perf.json...
    check_perf_trend.py --history perf_history.jsonl            # check only
    check_perf_trend.py ... --require-speedup serve_scale_full:8:1:2.0
    check_perf_trend.py ... --max-phase-share serve_scale_full:8:dispatch_s:0.25

The trend table goes to stdout and, when $GITHUB_STEP_SUMMARY is set, to
the job summary. Gating rules:

  * regression: newest wall_s > trailing-median(previous samples, same
    bench+threads) * (1 + --max-regression). Groups with fewer than
    --min-samples prior samples only report, never fail (cold history).
  * speedup (opt-in): --require-speedup BENCH:FAST:BASE:RATIO requires the
    newest BENCH sample at FAST threads to be at least RATIO x faster than
    the newest at BASE threads -- the parallel-advancement acceptance
    criterion, e.g. serve_scale_full:8:1:2.0.
  * phase share (opt-in): --max-phase-share BENCH:THREADS:PHASE:SHARE caps
    PHASE (advance_s / dispatch_s / commit_s) at SHARE of the newest
    sample's wall_s. Dispatch and commit run sequentially, so a dispatch-
    phase blowup at 8 threads silently erodes the parallel speedup long
    before total wall-clock trips the 25% band -- this catches it the
    night it lands.
"""

import argparse
import datetime
import json
import os
import statistics
import sys

TRAILING_WINDOW = 10  # samples per (bench, threads) group the median sees
PHASE_KEYS = ("advance_s", "dispatch_s", "commit_s")  # optional, display-only


def load_history(path):
    entries = []
    try:
        with open(path, encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                for key in ("bench", "threads", "wall_s"):
                    if key not in entry:
                        raise ValueError(f"{path}:{line_no}: missing '{key}'")
                entries.append(entry)
    except FileNotFoundError:
        pass
    return entries


def append_records(history_path, record_paths, date):
    added = []
    for path in record_paths:
        with open(path, encoding="utf-8") as f:
            record = json.load(f)
        for key in ("bench", "threads", "wall_s"):
            if key not in record:
                print(f"error: {path} is not a --perf record (no '{key}')",
                      file=sys.stderr)
                return None
        entry = {
            "date": date,
            "bench": record["bench"],
            "threads": int(record["threads"]),
            "wall_s": float(record["wall_s"]),
        }
        for key in PHASE_KEYS:  # optional phase split, retained for the table
            if key in record:
                entry[key] = float(record[key])
        added.append(entry)
    os.makedirs(os.path.dirname(history_path) or ".", exist_ok=True)
    with open(history_path, "a", encoding="utf-8") as f:
        for entry in added:
            f.write(json.dumps(entry, sort_keys=True) + "\n")
    return added


def group_key(entry):
    return (entry["bench"], int(entry["threads"]))


def render_table(entries):
    """Markdown trend table: one row per group, trailing samples oldest-first."""
    groups = {}
    for entry in entries:
        groups.setdefault(group_key(entry), []).append(entry)
    lines = [
        "| bench | threads | trailing wall_s (oldest..newest) | median | latest |"
        " adv/disp/commit |",
        "|---|---|---|---|---|---|",
    ]
    for (bench, threads), samples in sorted(groups.items()):
        tail = samples[-TRAILING_WINDOW:]
        walls = [s["wall_s"] for s in tail]
        newest = tail[-1]
        if all(key in newest for key in PHASE_KEYS):
            phases = "/".join(f"{newest[key]:.1f}" for key in PHASE_KEYS)
        else:
            phases = "-"
        lines.append(
            f"| {bench} | {threads} | "
            f"{' '.join(f'{w:.1f}' for w in walls)} | "
            f"{statistics.median(walls):.1f} | {walls[-1]:.1f} | {phases} |"
        )
    return "\n".join(lines)


def check_regressions(entries, max_regression, min_samples):
    failures = []
    groups = {}
    for entry in entries:
        groups.setdefault(group_key(entry), []).append(entry)
    for (bench, threads), samples in sorted(groups.items()):
        prior = [s["wall_s"] for s in samples[:-1]][-TRAILING_WINDOW:]
        latest = samples[-1]["wall_s"]
        if len(prior) < min_samples:
            print(f"  {bench} t{threads}: {latest:.1f}s "
                  f"({len(prior)} prior sample(s), gate warms up at {min_samples})")
            continue
        median = statistics.median(prior)
        limit = median * (1.0 + max_regression)
        verdict = "ok" if latest <= limit else "REGRESSION"
        print(f"  {bench} t{threads}: {latest:.1f}s vs trailing median "
              f"{median:.1f}s (limit {limit:.1f}s) -- {verdict}")
        if latest > limit:
            failures.append(
                f"{bench} threads={threads}: wall {latest:.1f}s exceeds "
                f"{100 * max_regression:.0f}% over trailing median {median:.1f}s"
            )
    return failures


def check_speedup(entries, spec):
    bench, fast_t, base_t, min_ratio = spec
    latest = {}
    for entry in entries:
        if entry["bench"] == bench:
            latest[int(entry["threads"])] = entry["wall_s"]
    if fast_t not in latest or base_t not in latest:
        return (f"{bench}: --require-speedup needs samples at threads={fast_t} "
                f"and threads={base_t}; have threads={sorted(latest)}")
    ratio = latest[base_t] / latest[fast_t]
    print(f"  {bench}: t{base_t} {latest[base_t]:.1f}s / t{fast_t} "
          f"{latest[fast_t]:.1f}s = {ratio:.2f}x (need >= {min_ratio:.2f}x)")
    if ratio < min_ratio:
        return (f"{bench}: threads={fast_t} is only {ratio:.2f}x faster than "
                f"threads={base_t} (required {min_ratio:.2f}x)")
    return None


def check_phase_share(entries, spec):
    bench, threads, phase, max_share = spec
    newest = None
    for entry in entries:
        if entry["bench"] == bench and int(entry["threads"]) == threads:
            newest = entry
    if newest is None:
        return (f"{bench}: --max-phase-share needs a sample at "
                f"threads={threads}; none in history")
    if phase not in newest:
        return (f"{bench} threads={threads}: newest sample carries no "
                f"'{phase}' (bench must run with phase measurement on)")
    share = newest[phase] / newest["wall_s"]
    print(f"  {bench} t{threads}: {phase} {newest[phase]:.1f}s / wall "
          f"{newest['wall_s']:.1f}s = {100 * share:.1f}% "
          f"(max {100 * max_share:.0f}%)")
    if share > max_share:
        return (f"{bench} threads={threads}: {phase} is {100 * share:.1f}% "
                f"of wall-clock (max {100 * max_share:.0f}%) -- the "
                f"sequential phase is eating the parallel speedup")
    return None


def parse_speedup(text):
    parts = text.split(":")
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            "expected BENCH:FAST_THREADS:BASE_THREADS:MIN_RATIO")
    return (parts[0], int(parts[1]), int(parts[2]), float(parts[3]))


def parse_phase_share(text):
    parts = text.split(":")
    if len(parts) != 4 or parts[2] not in PHASE_KEYS:
        raise argparse.ArgumentTypeError(
            "expected BENCH:THREADS:PHASE:MAX_SHARE with PHASE one of "
            + "/".join(PHASE_KEYS))
    return (parts[0], int(parts[1]), parts[2], float(parts[3]))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history", required=True,
                        help="JSONL history file (retained across runs)")
    parser.add_argument("--add", nargs="*", default=[],
                        help="--perf record files to append before checking")
    parser.add_argument("--date", default=None,
                        help="date stamped onto --add entries (default: today, UTC)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fraction over the trailing median (default 0.25)")
    parser.add_argument("--min-samples", type=int, default=3,
                        help="prior samples needed before a group gates (default 3)")
    parser.add_argument("--require-speedup", type=parse_speedup, default=None,
                        metavar="BENCH:FAST:BASE:RATIO",
                        help="require the newest FAST-threads sample to beat the "
                        "newest BASE-threads sample by RATIO x")
    parser.add_argument("--max-phase-share", type=parse_phase_share,
                        action="append", default=[],
                        metavar="BENCH:THREADS:PHASE:SHARE",
                        help="cap PHASE at SHARE of the newest sample's "
                        "wall_s for that bench+threads group (repeatable)")
    args = parser.parse_args()

    if args.add:
        date = args.date or datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%d")
        if append_records(args.history, args.add, date) is None:
            return 2

    entries = load_history(args.history)
    if not entries:
        print(f"perf trend: no history at {args.history}, nothing to check")
        return 0

    table = render_table(entries)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as f:
            f.write("## Wall-clock perf trend\n\n" + table + "\n")
    print(table)
    print()

    print("regression gate:")
    failures = check_regressions(entries, args.max_regression, args.min_samples)
    if args.require_speedup:
        print("speedup gate:")
        failure = check_speedup(entries, args.require_speedup)
        if failure:
            failures.append(failure)
    if args.max_phase_share:
        print("phase-share gate:")
        for spec in args.max_phase_share:
            failure = check_phase_share(entries, spec)
            if failure:
                failures.append(failure)
    if failures:
        print(f"perf trend check FAILED ({len(failures)} violation(s)):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("perf trend check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
