#!/usr/bin/env python3
"""Bench regression gate: compare --json bench outputs against pinned budgets.

Every CI-facing bench accepts `--json <path>` and writes deterministic
simulated metrics (tokens/s, percentile latencies, utilization -- never
wall-clock). This script compares those outputs against the budgets pinned
in bench/budgets.json and fails on any metric that drifts outside its
tolerance band, in either direction: an unexpected improvement is also a
behavior change, and re-pinning it is a one-line --update away.

Usage:
    check_bench_budget.py [--budgets bench/budgets.json] result.json...
    check_bench_budget.py --update result.json...   # (re)pin from results
    check_bench_budget.py --subset result.json...   # partial coverage OK

Budget file format:
    {
      "default_tolerance": 0.10,
      "benches": {
        "<bench name>": {
          "metrics": {
            "<metric>": 123.4,                            # default tolerance
            "<metric>": {"value": 123.4, "tolerance": 0.25}
          }
        }
      }
    }

Tolerances are relative (|measured - pinned| / max(|pinned|, eps)). A
metric present in the budget but missing from the result (or vice versa)
is an error: silently dropped coverage is how gates rot.
"""

import argparse
import json
import sys

EPS = 1e-12


def load_json(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def check_bench(name, result_metrics, budget_entry, default_tol):
    """Returns a list of failure strings for one bench."""
    failures = []
    budget_metrics = budget_entry.get("metrics", {})
    for metric in sorted(set(budget_metrics) | set(result_metrics)):
        if metric not in result_metrics:
            failures.append(f"{name}: metric '{metric}' is budgeted but was not emitted")
            continue
        if metric not in budget_metrics:
            failures.append(
                f"{name}: metric '{metric}' is emitted but has no budget "
                f"(pin it with --update)"
            )
            continue
        entry = budget_metrics[metric]
        if isinstance(entry, dict):
            pinned = float(entry["value"])
            tol = float(entry.get("tolerance", default_tol))
        else:
            pinned = float(entry)
            tol = default_tol
        measured = float(result_metrics[metric])
        rel = abs(measured - pinned) / max(abs(pinned), EPS)
        if rel > tol:
            failures.append(
                f"{name}: '{metric}' = {measured:.6g} vs budget {pinned:.6g} "
                f"(drift {100 * rel:.1f}% > tolerance {100 * tol:.0f}%)"
            )
    return failures


def update_budgets(budgets_path, results, default_tol):
    try:
        budgets = load_json(budgets_path)
    except FileNotFoundError:
        budgets = {"default_tolerance": default_tol, "benches": {}}
    benches = budgets.setdefault("benches", {})
    for result in results:
        name = result["bench"]
        old = benches.get(name, {}).get("metrics", {})
        new_metrics = {}
        for metric, value in sorted(result["metrics"].items()):
            prev = old.get(metric)
            if isinstance(prev, dict) and "tolerance" in prev:
                # Keep a hand-tuned per-metric tolerance across re-pins.
                new_metrics[metric] = {"value": value, "tolerance": prev["tolerance"]}
            else:
                new_metrics[metric] = value
        benches[name] = {"metrics": new_metrics}
    with open(budgets_path, "w", encoding="utf-8") as f:
        json.dump(budgets, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"pinned {len(results)} bench(es) into {budgets_path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budgets", default="bench/budgets.json")
    parser.add_argument(
        "--update", action="store_true", help="(re)pin budgets from the given results"
    )
    parser.add_argument(
        "--subset",
        action="store_true",
        help="check only the presented benches, skipping the every-pinned-bench "
        "coverage check (for jobs that legitimately run a slice, e.g. the "
        "nightly exhaustive-tick re-run); per-metric coverage still applies",
    )
    parser.add_argument("results", nargs="+", help="--json outputs to check")
    args = parser.parse_args()

    results = []
    for path in args.results:
        result = load_json(path)
        if "bench" not in result or "metrics" not in result:
            print(f"error: {path} is not a bench --json output", file=sys.stderr)
            return 2
        results.append(result)

    if args.update:
        update_budgets(args.budgets, results, default_tol=0.10)
        return 0

    budgets = load_json(args.budgets)
    default_tol = float(budgets.get("default_tolerance", 0.10))
    benches = budgets.get("benches", {})
    failures = []
    checked = 0
    # Coverage is part of the gate: every pinned bench must be presented
    # (unless the caller declared a deliberate slice with --subset).
    if not args.subset:
        for name in sorted(set(benches) - {r["bench"] for r in results}):
            failures.append(
                f"{name}: budgeted bench missing from the provided results "
                f"(the gate must see every pinned bench, or pass --subset)"
            )
    for result in results:
        name = result["bench"]
        if name not in benches:
            failures.append(f"{name}: no budget entry (pin it with --update)")
            continue
        failures.extend(check_bench(name, result["metrics"], benches[name], default_tol))
        checked += len(result["metrics"])
    if failures:
        print(f"bench budget check FAILED ({len(failures)} violation(s)):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"bench budget check passed: {checked} metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
