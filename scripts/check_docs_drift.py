#!/usr/bin/env python3
"""Fail when the documentation drifts from the source tree.

Three checks over README.md and docs/*.md:

1. every CLI flag token (``--smoke``, ``--json``, ...) quoted in the docs
   must appear somewhere in the source tree (src/, bench/, tests/,
   scripts/, examples/, CI workflows, CMakeLists.txt) -- a renamed or
   removed flag fails here before a user trips over it;
2. every enumerator-style token in backticks (``kPrefixAffinity``,
   ``kHandoff``, ...) must appear under src/ -- docs cannot reference
   enumerators that no longer exist;
3. docs/DISPATCH.md (the dispatch-policy reference page) must mention
   every ``DispatchPolicy`` enumerator declared in
   src/serve/dispatch.hpp *and* every canonical policy name returned by
   ``to_string`` in src/serve/dispatch.cpp -- adding a policy without
   documenting it fails CI.

Exits non-zero listing every violation. Run from anywhere inside the
repository:

    python3 scripts/check_docs_drift.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

FLAG_RE = re.compile(r"--[a-zA-Z][a-zA-Z0-9_-]*")
ENUM_RE = re.compile(r"`(k[A-Z][A-Za-z0-9]*)`")
SOURCE_DIRS = ("src", "bench", "tests", "scripts", "examples", ".github")
SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc", ".py", ".yml", ".yaml", ".cmake", ".txt"}


def doc_files(repo_root: Path) -> list[Path]:
    files = [repo_root / "README.md"]
    files += sorted((repo_root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def source_files(repo_root: Path) -> list[Path]:
    files = [repo_root / "CMakeLists.txt"]
    for d in SOURCE_DIRS:
        for f in sorted((repo_root / d).rglob("*")):
            if f.is_file() and f.suffix in SOURCE_SUFFIXES:
                files.append(f)
    return [f for f in files if f.is_file()]


def known_source_flags(sources: list[Path]) -> set[str]:
    known: set[str] = set()
    for f in sources:
        known.update(FLAG_RE.findall(f.read_text(encoding="utf-8", errors="replace")))
    return known


def check_doc_tokens(md: Path, known_flags: set[str], src_text: str) -> list[str]:
    errors = []
    for lineno, line in enumerate(md.read_text(encoding="utf-8").splitlines(), 1):
        for flag in FLAG_RE.findall(line):
            if flag not in known_flags:
                errors.append(f"{md}:{lineno}: flag {flag} not found in the source tree")
        for enum in ENUM_RE.findall(line):
            if enum not in src_text:
                errors.append(f"{md}:{lineno}: enumerator {enum} not found under src/")
    return errors


def dispatch_policies(repo_root: Path) -> tuple[list[str], list[str]]:
    """(enumerators, canonical names) of DispatchPolicy, from the sources."""
    hpp = (repo_root / "src/serve/dispatch.hpp").read_text(encoding="utf-8")
    enum_body = re.search(r"enum class DispatchPolicy \{(.*?)\n\};", hpp, re.DOTALL)
    if enum_body is None:
        raise SystemExit("cannot parse DispatchPolicy from src/serve/dispatch.hpp")
    enumerators = re.findall(r"^\s*(k[A-Z][A-Za-z0-9]*),", enum_body.group(1), re.MULTILINE)
    cpp = (repo_root / "src/serve/dispatch.cpp").read_text(encoding="utf-8")
    names = re.findall(r'case DispatchPolicy::k\w+: return "([^"]+)";', cpp)
    if not enumerators or not names:
        raise SystemExit("cannot parse DispatchPolicy enumerators / to_string names")
    return enumerators, names


def check_dispatch_reference(repo_root: Path) -> list[str]:
    page = repo_root / "docs" / "DISPATCH.md"
    if not page.is_file():
        return [f"{page}: missing -- the dispatch-policy reference page is required"]
    text = page.read_text(encoding="utf-8")
    enumerators, names = dispatch_policies(repo_root)
    errors = []
    for e in enumerators:
        if e not in text:
            errors.append(f"{page}: DispatchPolicy::{e} is not documented")
    for n in names:
        if n not in text:
            errors.append(f"{page}: policy name \"{n}\" is not documented")
    return errors


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    docs = doc_files(repo_root)
    if not docs:
        print("no documentation files found -- wrong repository root?")
        return 1
    sources = source_files(repo_root)
    known_flags = known_source_flags(sources)
    src_text = "\n".join(
        f.read_text(encoding="utf-8", errors="replace")
        for f in sources
        if f.is_relative_to(repo_root / "src")
    )
    errors = [e for md in docs for e in check_doc_tokens(md, known_flags, src_text)]
    errors += check_dispatch_reference(repo_root)
    for e in errors:
        print(e)
    checked = ", ".join(str(f.relative_to(repo_root)) for f in docs)
    if errors:
        print(f"\n{len(errors)} doc-drift issue(s) across {checked}")
        return 1
    print(f"docs match the source tree ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
