// Figure 10: MD+LB vs a 2-GPU expert-parallel system for NLLB-MoE, batch
// 1 and 4, encoder and decoder, normalized to GPU+PM.
//
// The multi-GPU system keeps all experts resident (across both GPUs'
// memory) and wins on the encoder; on the auto-regressive decoder only one
// or two experts activate per step, GPUs with inactive experts idle, and
// MoNDE is comparable at a fraction of the cost.
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace monde;
  using core::StrategyKind;
  bench::banner("Figure 10", "MD+LB vs 2-GPU expert parallelism (NLLB-MoE)");

  bench::EngineFactory factory;
  const auto model = moe::MoeModelConfig::nllb_moe_128();
  const auto prof = moe::SkewProfile::nllb_like();
  core::SystemConfig sys2 = core::SystemConfig::dac24();
  sys2.num_gpus = 2;

  for (const bool decoder : {false, true}) {
    Table t{{"B", "MD+LB", "2GPU", "2GPU / MD+LB"}};
    for (const std::int64_t batch : {std::int64_t{1}, std::int64_t{4}}) {
      auto pm = factory.make(core::SystemConfig::dac24(), model, prof,
                             StrategyKind::kGpuPmove);
      auto lb = factory.make(core::SystemConfig::dac24(), model, prof,
                             StrategyKind::kMondeLoadBalanced);
      auto two = factory.make(sys2, model, prof, StrategyKind::kMultiGpu);
      auto tput = [&](core::InferenceEngine& eng) {
        return (decoder ? eng.run_decoder(batch, bench::kDecoderSteps)
                        : eng.run_encoder(batch, 512))
            .throughput_tokens_per_s();
      };
      const double t_pm = tput(pm);
      const double t_lb = tput(lb);
      const double t_2g = tput(two);
      t.add_row({std::to_string(batch), Table::num(t_lb / t_pm, 2) + "x",
                 Table::num(t_2g / t_pm, 2) + "x", Table::num(t_2g / t_lb, 2)});
    }
    std::printf("%s throughput normalized to GPU+PM:\n", decoder ? "decoder" : "encoder");
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf("paper: 2GPU wins the encoder (more activated experts per GPU); for the\n"
              "       decoder MoNDE is comparable while one MoNDE device provides the\n"
              "       capacity of dozens of GPUs.\n");
  return 0;
}
