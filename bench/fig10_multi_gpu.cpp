// Figure 10: MD+LB vs a 2-GPU expert-parallel system for NLLB-MoE, batch
// 1 and 4, encoder and decoder, normalized to GPU+PM.
//
// The multi-GPU system keeps all experts resident (across both GPUs'
// memory) and wins on the encoder; on the auto-regressive decoder only one
// or two experts activate per step, GPUs with inactive experts idle, and
// MoNDE is comparable at a fraction of the cost.
// The closing section adds the serving-layer counterpart: a 2-replica
// MD+LB fleet with per-replica expert residency, dispatched load-only vs
// by gating affinity vs hash-sharded -- expert placement across devices as
// a policy choice rather than a static partition.
#include "bench_util.hpp"
#include "common/table.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"

int main() {
  using namespace monde;
  using core::StrategyKind;
  bench::banner("Figure 10", "MD+LB vs 2-GPU expert parallelism (NLLB-MoE)");

  bench::EngineFactory factory;
  const auto model = moe::MoeModelConfig::nllb_moe_128();
  const auto prof = moe::SkewProfile::nllb_like();
  core::SystemConfig sys2 = core::SystemConfig::dac24();
  sys2.num_gpus = 2;

  for (const bool decoder : {false, true}) {
    Table t{{"B", "MD+LB", "2GPU", "2GPU / MD+LB"}};
    for (const std::int64_t batch : {std::int64_t{1}, std::int64_t{4}}) {
      auto pm = factory.make(core::SystemConfig::dac24(), model, prof,
                             StrategyKind::kGpuPmove);
      auto lb = factory.make(core::SystemConfig::dac24(), model, prof,
                             StrategyKind::kMondeLoadBalanced);
      auto two = factory.make(sys2, model, prof, StrategyKind::kMultiGpu);
      auto tput = [&](core::InferenceEngine& eng) {
        return (decoder ? eng.run_decoder(batch, bench::kDecoderSteps)
                        : eng.run_encoder(batch, 512))
            .throughput_tokens_per_s();
      };
      const double t_pm = tput(pm);
      const double t_lb = tput(lb);
      const double t_2g = tput(two);
      t.add_row({std::to_string(batch), Table::num(t_lb / t_pm, 2) + "x",
                 Table::num(t_2g / t_pm, 2) + "x", Table::num(t_2g / t_lb, 2)});
    }
    std::printf("%s throughput normalized to GPU+PM:\n", decoder ? "decoder" : "encoder");
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf("paper: 2GPU wins the encoder (more activated experts per GPU); for the\n"
              "       decoder MoNDE is comparable while one MoNDE device provides the\n"
              "       capacity of dozens of GPUs.\n");

  // Expert placement on a 2-device MD+LB fleet: the 2-GPU system above
  // statically partitions experts across GPUs; here placement is a dispatch
  // policy over per-replica caches (reduced model for runtime).
  {
    moe::MoeModelConfig small = moe::MoeModelConfig::switch_variant(512, 16);
    small.encoder_blocks = 4;
    small.decoder_blocks = 4;
    small.moe_every = 2;
    serve::RequestShape shape;
    shape.prompt_min = 16;
    shape.prompt_max = 48;
    shape.new_tokens_min = 4;
    shape.new_tokens_max = 12;
    serve::SchedulerConfig sched;
    sched.token_budget = 128;
    Table t{{"placement", "hit rate", "TPOT p99 (ms)", "imbalance"}};
    for (const serve::DispatchPolicy policy :
         {serve::DispatchPolicy::kLeastOutstandingTokens,
          serve::DispatchPolicy::kExpertAffinity, serve::DispatchPolicy::kExpertSharded}) {
      serve::ClusterConfig ccfg;
      ccfg.expert.enabled = true;
      ccfg.expert.cache_capacity = 8;
      ccfg.event_log_enabled = false;
      serve::ClusterSim cluster{
          core::SystemConfig::dac24(), small, moe::SkewProfile::switch_like(),
          serve::uniform_fleet(2, StrategyKind::kMondeLoadBalanced, sched), ccfg};
      const auto dispatcher = serve::make_dispatcher(policy, /*seed=*/17);
      const auto stream = serve::poisson_stream(/*count=*/400, 500.0, shape, /*seed=*/7);
      const serve::ClusterReport rep = cluster.run(*stream, *dispatcher);
      t.add_row({dispatcher->name(), Table::num(100.0 * rep.expert_hit_rate, 1) + "%",
                 Table::num(rep.tpot_ms.p99, 3), Table::num(rep.imbalance, 3)});
    }
    std::printf("\nexpert placement on a 2-device fleet (reduced model, switch-style skew):\n");
    t.print(std::cout);
    std::printf("\nstatic expert parallelism fixes placement at load time; dispatch-level\n"
                "placement adapts it to the live gating mix per request.\n");
  }
  return 0;
}
