// Production-scale serving: 10k replicas, 1M streamed requests.
//
// The PR 6 refactor replaced the cluster's scan-every-replica event loop
// with an indexed event calendar and the materialized trace with a pull-
// based ArrivalStream. This bench is the scale proof: a fleet three orders
// of magnitude past the unit tests, driven end to end with O(1) arrival
// memory, plus a small same-seed comparison of the calendar loop against
// the retained reference loop -- the binary FAILS if their reports diverge
// in any compared field, and prints the measured wall-clock speedup.
//
// Wall-clock numbers go to stdout only; the --json metrics are simulated
// quantities and bit-stable run to run, so the budget gate can pin them.
//
//   ./bench/serve_scale --smoke            512 replicas, 50k requests (CI)
//   ./bench/serve_scale                    10k replicas, 1M requests (nightly)
//   ./bench/serve_scale --smoke --json f   + deterministic metrics
//   ./bench/serve_scale --threads 8        parallel advancement (bit-identical
//                                          results; only wall-clock moves)
//   ./bench/serve_scale --perf p.json      wall-clock record for the
//                                          perf-trend gate (check_perf_trend.py)
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"

namespace {

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Exact equality over everything the loops could plausibly diverge on.
bool reports_identical(const monde::serve::ClusterReport& a,
                       const monde::serve::ClusterReport& b) {
  using monde::serve::RequestMetrics;
  if (a.requests.size() != b.requests.size() || a.replicas.size() != b.replicas.size() ||
      a.makespan != b.makespan || a.generated_tokens != b.generated_tokens ||
      a.tokens_per_s != b.tokens_per_s || a.imbalance != b.imbalance ||
      a.fleet_utilization != b.fleet_utilization || a.retries != b.retries ||
      a.migrations != b.migrations || a.events.size() != b.events.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const RequestMetrics& x = a.requests[i];
    const RequestMetrics& y = b.requests[i];
    if (x.id != y.id || x.arrival != y.arrival || x.first_token != y.first_token ||
        x.completion != y.completion || x.generated != y.generated) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.replicas.size(); ++i) {
    if (a.replicas[i].dispatched != b.replicas[i].dispatched ||
        a.replicas[i].utilization != b.replicas[i].utilization) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace monde;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const bool smoke = args.smoke;
  bench::BenchMetrics metrics{smoke ? "serve_scale" : "serve_scale_full"};

  bench::banner("cluster at scale",
                smoke ? "512 replicas / 50k streamed requests (smoke)"
                      : "10k replicas / 1M streamed requests");

  const std::size_t replicas = smoke ? 512 : 10'000;
  const int requests = smoke ? 50'000 : 1'000'000;

  const core::SystemConfig sys = core::SystemConfig::dac24();
  moe::MoeModelConfig model = moe::MoeModelConfig::switch_variant(512, 16);
  model.encoder_blocks = 4;
  model.decoder_blocks = 4;
  model.moe_every = 2;
  const moe::SkewProfile prof = bench::profile_for(model);

  serve::RequestShape shape;
  shape.prompt_min = 16;
  shape.prompt_max = 48;
  shape.new_tokens_min = 2;
  shape.new_tokens_max = 8;

  serve::SchedulerConfig sched;
  sched.token_budget = 128;

  // Per-replica offered load is held constant across the two scales, so the
  // smoke run is a faithful miniature: the same queueing regime, 20x fewer
  // replicas. Dispatch is power-of-two-choices -- the O(1)-probes policy a
  // 10k-replica balancer would actually run.
  const double rate_per_s = 250.0 * static_cast<double>(replicas);

  serve::ClusterConfig ccfg;
  ccfg.event_log_enabled = false;  // nobody reads 1M requests' worth of detail strings
  ccfg.threads = args.threads;     // bit-identical results; only wall-clock moves
  // Phase split for the perf-trend dashboard: shows whether the sequential
  // dispatch/commit phases dominate once advancement parallelizes. Only the
  // --perf record reads it; simulated metrics are identical either way.
  ccfg.measure_phases = !args.perf_path.empty();

  {
    serve::ClusterSim cluster{
        sys, model, prof,
        serve::uniform_fleet(replicas, core::StrategyKind::kMondeLoadBalanced, sched), ccfg};
    const auto dispatcher =
        serve::make_dispatcher(serve::DispatchPolicy::kPowerOfTwoChoices, /*seed=*/17);
    const auto stream = serve::poisson_stream(requests, rate_per_s, shape, /*seed=*/7);
    const auto t0 = std::chrono::steady_clock::now();
    const serve::ClusterReport rep = cluster.run(*stream, *dispatcher);
    const double wall = wall_seconds(t0);

    std::printf("%zu replicas, %d requests (Poisson %.0f req/s fleet-wide, %zu thread%s):\n",
                replicas, requests, rate_per_s, args.threads, args.threads == 1 ? "" : "s");
    std::printf("  simulated makespan   %.1f ms\n", rep.makespan.ms());
    std::printf("  fleet throughput     %.0f tok/s\n", rep.tokens_per_s);
    std::printf("  TTFT p50 / p95       %.2f / %.2f ms\n", rep.ttft_ms.p50, rep.ttft_ms.p95);
    std::printf("  E2E p95              %.2f ms\n", rep.e2e_ms.p95);
    std::printf("  fleet utilization    %.3f\n", rep.fleet_utilization);
    std::printf("  imbalance            %.3f\n", rep.imbalance);
    std::printf("  wall clock           %.1f s (%.0f requests/s simulated-through)\n", wall,
                static_cast<double>(requests) / wall);
    if (ccfg.measure_phases) {
      std::printf("  phase split          advance %.1f s / dispatch %.1f s / commit %.1f s\n",
                  rep.phase_advance_s, rep.phase_dispatch_s, rep.phase_commit_s);
    }
    std::printf("\n");

    metrics.add("scale.tokens_per_s", rep.tokens_per_s);
    metrics.add("scale.makespan_ms", rep.makespan.ms());
    metrics.add("scale.generated_tokens", static_cast<double>(rep.generated_tokens));
    metrics.add("scale.ttft_p50_ms", rep.ttft_ms.p50);
    metrics.add("scale.ttft_p95_ms", rep.ttft_ms.p95);
    metrics.add("scale.e2e_p95_ms", rep.e2e_ms.p95);
    metrics.add("scale.fleet_utilization", rep.fleet_utilization);
    metrics.add("scale.imbalance", rep.imbalance);
    bench::write_perf_record(args.perf_path, smoke ? "serve_scale" : "serve_scale_full",
                             args.threads, wall, rep.phase_advance_s, rep.phase_dispatch_s,
                             rep.phase_commit_s);
  }

  // Calendar-vs-reference differential at a scale the O(replicas)-per-event
  // reference loop can still stomach. Identity is also pinned by
  // tests/test_calendar_diff.cpp; here it guards the exact configuration the
  // scale run above uses -- including its thread count, so a --threads 4 CI
  // run diffs the PARALLEL calendar loop against the sequential reference --
  // and yields the honest speedup number.
  {
    const std::size_t dr = smoke ? 64 : 128;
    const int dn = smoke ? 2'000 : 5'000;
    const double drate = 250.0 * static_cast<double>(dr);
    serve::ClusterReport reps[2];
    double walls[2] = {};
    for (const bool reference : {false, true}) {
      serve::ClusterConfig dcfg = ccfg;
      dcfg.reference_loop = reference;
      dcfg.threads = reference ? 1 : args.threads;
      serve::ClusterSim cluster{
          sys, model, prof,
          serve::uniform_fleet(dr, core::StrategyKind::kMondeLoadBalanced, sched), dcfg};
      const auto dispatcher =
          serve::make_dispatcher(serve::DispatchPolicy::kPowerOfTwoChoices, /*seed=*/17);
      const auto stream = serve::poisson_stream(dn, drate, shape, /*seed=*/7);
      const auto t0 = std::chrono::steady_clock::now();
      reps[reference ? 1 : 0] = cluster.run(*stream, *dispatcher);
      walls[reference ? 1 : 0] = wall_seconds(t0);
    }
    const bool identical = reports_identical(reps[0], reps[1]);
    std::printf("loop differential (%zu replicas, %d requests):\n", dr, dn);
    std::printf("  calendar loop        %.2f s\n", walls[0]);
    std::printf("  reference loop       %.2f s\n", walls[1]);
    std::printf("  speedup              %.1fx\n", walls[1] / walls[0]);
    std::printf("  reports identical    %s\n\n", identical ? "yes" : "NO -- DIVERGENCE");
    metrics.add("loopdiff.identical", identical ? 1.0 : 0.0);
    if (!identical) {
      std::printf("FAIL: calendar loop diverged from the reference loop\n");
      return 1;
    }
  }

  metrics.write(args.json_path);
  return 0;
}
