// Figure 5: MoE workflow comparison across parallel hardware streams.
//
// Schedules one NLLB-MoE encoder MoE layer (batch 4) under each strategy
// and renders the per-stream timeline as an ASCII Gantt chart -- the same
// picture as the paper's Figure 5 (gating, PMove 'p', AMove 'a', expert 'e'
// boxes on GPU / PCIe / MoNDE / CPU streams). Also writes Chrome-trace JSON
// next to the binary for interactive inspection.
#include <fstream>

#include "bench_util.hpp"

int main() {
  using namespace monde;
  using core::StrategyKind;
  bench::banner("Figure 5", "MoE workflow timelines (one NLLB-MoE encoder layer, B=4)");

  const auto model = moe::MoeModelConfig::nllb_moe_128();
  const auto sys = core::SystemConfig::dac24();
  const auto prof = moe::SkewProfile::nllb_like();
  auto sim = std::make_shared<ndp::NdpCoreSim>(sys.ndp, sys.monde_mem);

  moe::WorkloadGenerator gen{model, prof, 42};
  const auto work = gen.encoder_pass(4, 512).moe_layers[0];
  std::printf("layer: %lld activated experts, %llu routed token-slots\n\n",
              static_cast<long long>(work.activated_experts()),
              static_cast<unsigned long long>(work.routed_tokens()));

  for (const StrategyKind kind : {StrategyKind::kIdealGpu, StrategyKind::kMondeAmove,
                                  StrategyKind::kMondeLoadBalanced,
                                  StrategyKind::kGpuPmove}) {
    core::InferenceEngine eng{sys, model, prof, kind, 42, sim};
    // Drive the strategy directly on a fresh schedule for a clean chart.
    sim::StreamSchedule sched;
    const core::HwStreams hw = core::HwStreams::create(sched, sys);
    const auto res = eng.strategy().run_layer(work, sched, hw, Duration::zero());

    std::printf("--- %s: MoE layer latency %s", eng.strategy().name().c_str(),
                res.latency().str().c_str());
    if (res.h_value >= 0) std::printf(" (H=%d)", res.h_value);
    std::printf(" ---\n%s\n",
                sched.timeline().to_ascii_gantt(sched.stream_names(), 96).c_str());

    const std::string path = "fig5_trace_" + eng.strategy().name() + ".json";
    std::ofstream{path} << sched.timeline().to_chrome_trace(sched.stream_names());
    std::printf("chrome trace written to %s\n\n", path.c_str());
  }
  std::printf("paper: GPU+PM serializes PMove 'p' boxes on PCIe; MD+AM replaces them with\n"
              "small 'a' boxes and NDP 'e' boxes; MD+LB overlaps the GPU and MoNDE\n"
              "workflows; Ideal runs experts back-to-back on the GPU.\n");
  return 0;
}
