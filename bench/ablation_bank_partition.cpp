// Ablation (beyond the paper's figures): the even/odd bank partitioning of
// parameters vs activations (Section 3.4, "Memory Allocation").
//
// With partitioning disabled, activation reads/writes land in the same
// banks as the weight stream and thrash its open rows. Reports cycle-level
// expert latency, achieved bandwidth, and row-hit rate both ways.
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace monde;
  bench::banner("Ablation: bank partitioning",
                "even/odd bank split of weights vs activations (Section 3.4)");

  const auto sys = core::SystemConfig::dac24();
  Table t{{"tokens", "partitioned (us)", "shared banks (us)", "slowdown", "row-hit part.",
           "row-hit shared"}};
  // One simulator for both arms: the memo key folds in the partitioning
  // flag, so results never alias and repeated shapes resolve from cache.
  ndp::NdpCoreSim sim{sys.ndp, sys.monde_mem};
  for (const std::int64_t tokens : {std::int64_t{1}, std::int64_t{4}, std::int64_t{8},
                                    std::int64_t{16}}) {
    const compute::ExpertShape e{tokens, 2048, 8192};
    sim.bank_partitioning = true;
    const auto rp = sim.simulate_expert(e, compute::DataType::kBf16);
    sim.bank_partitioning = false;
    const auto rs = sim.simulate_expert(e, compute::DataType::kBf16);
    t.add_row({std::to_string(tokens), Table::num(rp.latency.us(), 1),
               Table::num(rs.latency.us(), 1), Table::num(rs.latency / rp.latency, 3) + "x",
               Table::pct(rp.row_hit_rate, 1), Table::pct(rs.row_hit_rate, 1)});
  }
  t.print(std::cout);
  std::printf("\nthe paper partitions 'to mitigate memory contention from accessing expert\n"
              "parameters and activations simultaneously'; the effect concentrates in the\n"
              "activation-heavy (higher-token) cases.\n");
  std::printf("NDP shape-memo: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(sim.memo_hits()),
              static_cast<unsigned long long>(sim.memo_misses()));
  return 0;
}
