// Google-benchmark microbenchmarks of the simulator's hot components:
// DRAM cycle simulation, NDP expert simulation (cold + memoized), routing,
// and instruction encode/decode.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "dram/dram_system.hpp"
#include "interconnect/instruction.hpp"
#include "moe/workload.hpp"
#include "ndp/ndp_core.hpp"

namespace {

using namespace monde;

/// Simulated-cycles-per-second of the DRAM model under a streaming load.
void BM_DramStreamingTick(benchmark::State& state) {
  const dram::Spec spec = dram::Spec::monde_lpddr5x_8533();
  dram::DramSystem sys{spec};
  const auto block = static_cast<std::uint64_t>(spec.org.access_bytes);
  std::uint64_t next = 0;
  for (auto _ : state) {
    while (sys.can_accept(next * block)) {
      dram::Request r;
      r.addr = (next * block) % spec.org.total_capacity().count();
      r.type = dram::Request::Type::kRead;
      sys.enqueue(std::move(r));
      ++next;
    }
    sys.tick();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sys.cycle()));
  state.counters["achieved_GBps"] = sys.achieved_bandwidth().as_gbps();
}
BENCHMARK(BM_DramStreamingTick);

/// Cold (uncached) cycle-level expert simulation.
void BM_NdpExpertSimCold(benchmark::State& state) {
  const auto tokens = state.range(0);
  for (auto _ : state) {
    ndp::NdpCoreSim sim{ndp::NdpSpec::monde_dac24(), dram::Spec::monde_lpddr5x_8533()};
    benchmark::DoNotOptimize(
        sim.simulate_expert({tokens, 1024, 4096}, compute::DataType::kBf16));
  }
}
BENCHMARK(BM_NdpExpertSimCold)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

/// Memoized expert lookup (the steady-state cost inside the engine).
void BM_NdpExpertSimMemoized(benchmark::State& state) {
  ndp::NdpCoreSim sim{ndp::NdpSpec::monde_dac24(), dram::Spec::monde_lpddr5x_8533()};
  (void)sim.simulate_expert({4, 1024, 4096}, compute::DataType::kBf16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.simulate_expert({4, 1024, 4096}, compute::DataType::kBf16));
  }
}
BENCHMARK(BM_NdpExpertSimMemoized);

/// Top-2 routing of a full encoder batch over 128 experts.
void BM_RouterEncoderBatch(benchmark::State& state) {
  const moe::GatingModel gating{128, 2, moe::SkewProfile::nllb_like(), 42};
  Rng rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gating.route(2048, rng));
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_RouterEncoderBatch);

/// 64-B NDP instruction encode+decode round trip.
void BM_InstructionRoundTrip(benchmark::State& state) {
  interconnect::NdpInstruction inst;
  inst.opcode = interconnect::Opcode::kGemmRelu;
  inst.act_in = {0x1000, 4096};
  inst.weight = {0x2000000, 1 << 25};
  inst.act_out = {0x3000, 4096};
  inst.token_count = 17;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interconnect::decode(interconnect::encode(inst)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InstructionRoundTrip);

}  // namespace

BENCHMARK_MAIN();
