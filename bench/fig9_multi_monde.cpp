// Figure 9: multi-MoNDE scalability. MoE-layer throughput of 1/2/4/8
// MD+LB devices for NLLB-MoE at batch 1 / 4 / 16, normalized to GPU+PM.
//
// Encoder throughput scales with device count (more aggregate compute and
// bandwidth); decoder gains are flat because few tokens cannot fill
// multiple NDP devices.
//
// The serving-level extension below adds an expert-placement axis to the
// same device sweep: a fleet of 1/2/4/8 MD+LB replicas with per-replica
// expert residency (serve/expert.hpp), dispatched load-only vs by gating
// affinity. More devices means more aggregate cache slots -- but only the
// gating-aware placement turns them into hit rate.
//
//   ./bench/fig9_multi_monde                full reproduction
//   ./bench/fig9_multi_monde --json f       + deterministic metrics (the
//                                             bench budget gate)
#include "bench_util.hpp"
#include "common/table.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"

int main(int argc, char** argv) {
  using namespace monde;
  using core::StrategyKind;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::BenchMetrics metrics{"fig9_multi_monde"};
  bench::banner("Figure 9", "multi-MoNDE scalability (NLLB-MoE, normalized to GPU+PM)");

  bench::EngineFactory factory;
  const auto model = moe::MoeModelConfig::nllb_moe_128();
  const auto prof = moe::SkewProfile::nllb_like();

  for (const bool decoder : {false, true}) {
    Table t{{"B", "1MD+LB", "2MD+LB", "4MD+LB", "8MD+LB"}};
    for (const std::int64_t batch : {std::int64_t{1}, std::int64_t{4}, std::int64_t{16}}) {
      auto pm_eng = factory.make(core::SystemConfig::dac24(), model, prof,
                                 StrategyKind::kGpuPmove);
      const double moe_pm = (decoder ? pm_eng.run_decoder(batch, bench::kDecoderSteps)
                                     : pm_eng.run_encoder(batch, 512))
                                .moe.sec();
      std::vector<std::string> row{"B=" + std::to_string(batch)};
      for (const int devices : {1, 2, 4, 8}) {
        core::SystemConfig sys = core::SystemConfig::dac24();
        sys.num_monde_devices = devices;
        auto eng = factory.make(sys, model, prof, StrategyKind::kMondeLoadBalanced);
        const double moe_lb = (decoder ? eng.run_decoder(batch, bench::kDecoderSteps)
                                       : eng.run_encoder(batch, 512))
                                  .moe.sec();
        row.push_back(Table::num(moe_pm / moe_lb, 2) + "x");
        metrics.add(std::string{decoder ? "dec" : "enc"} + ".b" + std::to_string(batch) +
                        ".d" + std::to_string(devices) + ".speedup_vs_gpu_pm",
                    moe_pm / moe_lb);
      }
      t.add_row(std::move(row));
    }
    std::printf("%s MoE throughput vs GPU+PM:\n", decoder ? "decoder" : "encoder");
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf("paper: encoder gains grow with device count; decoder gains stay flat\n"
              "       (1/4/16 tokens cannot utilize multiple NDP devices).\n");

  // Expert-placement axis: the same 1/2/4/8-device sweep at the serving
  // layer. Each replica carries a small expert cache; misses are priced as
  // interconnect fetches. A reduced NLLB-flavored model keeps the cluster
  // runs tractable while preserving the Figure 3 skew.
  {
    moe::MoeModelConfig small = moe::MoeModelConfig::switch_variant(512, 16);
    small.encoder_blocks = 4;
    small.decoder_blocks = 4;
    small.moe_every = 2;
    // Switch-style skew: hot + warm tiers with per-request variety in the
    // top experts. (NLLB's 93%-on-2-experts concentration makes every
    // profile identical -- nothing for placement to differentiate.)
    const moe::SkewProfile sprof = moe::SkewProfile::switch_like();
    serve::RequestShape shape;
    shape.prompt_min = 16;
    shape.prompt_max = 48;
    shape.new_tokens_min = 4;
    shape.new_tokens_max = 12;
    serve::SchedulerConfig sched;
    sched.token_budget = 128;
    Table t{{"devices", "load-only hit", "affinity hit", "load-only TPOT p99",
             "affinity TPOT p99"}};
    for (const std::size_t devices : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                      std::size_t{8}}) {
      std::vector<std::string> row{std::to_string(devices) + "MD+LB"};
      double hits[2] = {};
      double tpots[2] = {};
      for (const bool gating : {false, true}) {
        serve::ClusterConfig ccfg;
        ccfg.expert.enabled = true;
        ccfg.expert.cache_capacity = 8;
        ccfg.event_log_enabled = false;
        serve::ClusterSim cluster{
            core::SystemConfig::dac24(), small, sprof,
            serve::uniform_fleet(devices, StrategyKind::kMondeLoadBalanced, sched), ccfg};
        const auto dispatcher = serve::make_dispatcher(
            gating ? serve::DispatchPolicy::kExpertAffinity
                   : serve::DispatchPolicy::kLeastOutstandingTokens,
            /*seed=*/17);
        const auto stream = serve::poisson_stream(
            /*count=*/400, 250.0 * static_cast<double>(devices), shape, /*seed=*/7);
        const serve::ClusterReport rep = cluster.run(*stream, *dispatcher);
        hits[gating ? 1 : 0] = rep.expert_hit_rate;
        tpots[gating ? 1 : 0] = rep.tpot_ms.p99;
        metrics.add("place.d" + std::to_string(devices) +
                        (gating ? ".affinity." : ".loadonly.") + "hit_rate",
                    rep.expert_hit_rate);
        metrics.add("place.d" + std::to_string(devices) +
                        (gating ? ".affinity." : ".loadonly.") + "tpot_p99_ms",
                    rep.tpot_ms.p99);
      }
      row.push_back(Table::num(100.0 * hits[0], 1) + "%");
      row.push_back(Table::num(100.0 * hits[1], 1) + "%");
      row.push_back(Table::num(tpots[0], 3));
      row.push_back(Table::num(tpots[1], 3));
      t.add_row(std::move(row));
    }
    std::printf("\nexpert placement across the fleet (reduced model, switch-style skew):\n");
    t.print(std::cout);
    std::printf("\nmore devices add aggregate residency; gating-aware placement is what\n"
                "converts it into hit rate (a single device has nothing to steward).\n");
  }

  metrics.write(args.json_path);
  return 0;
}
