// Figure 9: multi-MoNDE scalability. MoE-layer throughput of 1/2/4/8
// MD+LB devices for NLLB-MoE at batch 1 / 4 / 16, normalized to GPU+PM.
//
// Encoder throughput scales with device count (more aggregate compute and
// bandwidth); decoder gains are flat because few tokens cannot fill
// multiple NDP devices.
//
//   ./bench/fig9_multi_monde                full reproduction
//   ./bench/fig9_multi_monde --json f       + deterministic metrics (the
//                                             bench budget gate)
#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace monde;
  using core::StrategyKind;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::BenchMetrics metrics{"fig9_multi_monde"};
  bench::banner("Figure 9", "multi-MoNDE scalability (NLLB-MoE, normalized to GPU+PM)");

  bench::EngineFactory factory;
  const auto model = moe::MoeModelConfig::nllb_moe_128();
  const auto prof = moe::SkewProfile::nllb_like();

  for (const bool decoder : {false, true}) {
    Table t{{"B", "1MD+LB", "2MD+LB", "4MD+LB", "8MD+LB"}};
    for (const std::int64_t batch : {std::int64_t{1}, std::int64_t{4}, std::int64_t{16}}) {
      auto pm_eng = factory.make(core::SystemConfig::dac24(), model, prof,
                                 StrategyKind::kGpuPmove);
      const double moe_pm = (decoder ? pm_eng.run_decoder(batch, bench::kDecoderSteps)
                                     : pm_eng.run_encoder(batch, 512))
                                .moe.sec();
      std::vector<std::string> row{"B=" + std::to_string(batch)};
      for (const int devices : {1, 2, 4, 8}) {
        core::SystemConfig sys = core::SystemConfig::dac24();
        sys.num_monde_devices = devices;
        auto eng = factory.make(sys, model, prof, StrategyKind::kMondeLoadBalanced);
        const double moe_lb = (decoder ? eng.run_decoder(batch, bench::kDecoderSteps)
                                       : eng.run_encoder(batch, 512))
                                  .moe.sec();
        row.push_back(Table::num(moe_pm / moe_lb, 2) + "x");
        metrics.add(std::string{decoder ? "dec" : "enc"} + ".b" + std::to_string(batch) +
                        ".d" + std::to_string(devices) + ".speedup_vs_gpu_pm",
                    moe_pm / moe_lb);
      }
      t.add_row(std::move(row));
    }
    std::printf("%s MoE throughput vs GPU+PM:\n", decoder ? "decoder" : "encoder");
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf("paper: encoder gains grow with device count; decoder gains stay flat\n"
              "       (1/4/16 tokens cannot utilize multiple NDP devices).\n");
  metrics.write(args.json_path);
  return 0;
}
