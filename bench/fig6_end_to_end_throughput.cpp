// Figure 6: end-to-end throughput normalized to the Ideal (infinite GPU
// memory) configuration, for Switch-Large-128 and NLLB-MoE, encoder and
// decoder, batch sizes 1 and 4.
//
// Also prints the Table 2 workload summary the runs are configured from.
//
//   ./bench/fig6_end_to_end_throughput                full reproduction
//   ./bench/fig6_end_to_end_throughput --json f       + deterministic metrics
//                                                       (the bench budget gate)
#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace monde;
  using core::StrategyKind;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::BenchMetrics metrics{"fig6_end_to_end_throughput"};
  bench::banner("Figure 6", "end-to-end throughput normalized to Ideal");

  {  // Table 2 header.
    Table t{{"model", "non-expert (GB)", "expert (GB)", "dmodel", "E", "gating"}};
    for (const auto& m :
         {moe::MoeModelConfig::switch_large_128(), moe::MoeModelConfig::nllb_moe_128()}) {
      t.add_row({m.name, Table::num(m.non_expert_bytes().as_gb(), 1),
                 Table::num(m.total_expert_bytes().as_gb(), 1), std::to_string(m.dmodel),
                 std::to_string(m.num_experts), "top-" + std::to_string(m.top_k)});
    }
    t.print(std::cout);
    std::printf("\n");
  }

  bench::EngineFactory factory;
  const auto sys = core::SystemConfig::dac24();
  const StrategyKind kinds[] = {StrategyKind::kGpuPmove, StrategyKind::kMondeAmove,
                                StrategyKind::kMondeLoadBalanced, StrategyKind::kIdealGpu};

  for (const bool decoder : {false, true}) {
    Table t{{"model", "B", "GPU+PM", "MD+AM", "MD+LB", "Ideal",
             "MD+LB speedup over GPU+PM"}};
    for (const auto& model :
         {moe::MoeModelConfig::switch_large_128(), moe::MoeModelConfig::nllb_moe_128()}) {
      const auto prof = bench::profile_for(model);
      for (const std::int64_t batch : {std::int64_t{1}, std::int64_t{4}}) {
        double tput[4] = {};
        for (int k = 0; k < 4; ++k) {
          auto eng = factory.make(sys, model, prof, kinds[k]);
          const auto report = decoder ? eng.run_decoder(batch, bench::kDecoderSteps)
                                      : eng.run_encoder(batch, 512);
          tput[k] = report.throughput_tokens_per_s();
        }
        const double ideal = tput[3];
        t.add_row({model.name, std::to_string(batch), Table::num(tput[0] / ideal, 3),
                   Table::num(tput[1] / ideal, 3), Table::num(tput[2] / ideal, 3), "1.000",
                   Table::num(tput[2] / tput[0], 2) + "x"});
        const std::string key = std::string{decoder ? "dec" : "enc"} + "." + model.name +
                                ".b" + std::to_string(batch);
        metrics.add(key + ".gpu_pm_norm", tput[0] / ideal);
        metrics.add(key + ".md_am_norm", tput[1] / ideal);
        metrics.add(key + ".md_lb_norm", tput[2] / ideal);
        metrics.add(key + ".md_lb_over_gpu_pm", tput[2] / tput[0]);
      }
    }
    std::printf("%s throughput (normalized to Ideal):\n", decoder ? "decoder" : "encoder");
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf("paper: MD+LB over GPU+PM -- encoder 3.1x (SL-128) / 6.7x (N-MoE);\n"
              "       decoder 1.1x / 1.9x; MD+LB approaches the Ideal GPU.\n");
  factory.report_memo_stats();
  metrics.write(args.json_path);
  return 0;
}
