// Figure 2(b): expert-parameter vs activation scaling across dmodel.
//
// Single-expert size (2 * dmodel * dff elements, dff = 4*dmodel) against the
// activation volume of a 6144-token probe, and their ratio -- the quadratic
// vs linear gap that makes Activation Movement win (Equations 1-2).
#include "analysis/footprint.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace monde;
  bench::banner("Figure 2(b)", "MoE scaling with dmodel (6144-token activation probe)");

  Table t{{"dmodel", "single expert (MB)", "activations (MB)", "expert/activation"}};
  for (const auto& row :
       analysis::dmodel_scaling_sweep({768, 1024, 1536, 2048, 2560, 4096}, 6144)) {
    t.add_row({std::to_string(row.dmodel),
               Table::num(static_cast<double>(row.single_expert.count()) * 1e-6, 1),
               Table::num(static_cast<double>(row.activations.count()) * 1e-6, 1),
               Table::num(row.expert_to_act_ratio, 2)});
  }
  t.print(std::cout);
  std::printf("\npaper: the expert/activation ratio grows ~linearly with dmodel "
              "(quadratic expert bytes vs linear activation bytes).\n");
  return 0;
}
