// Continuous vs fixed batching under a Poisson arrival trace.
//
// Serving-side counterpart of the paper's single-run evaluation: the same
// request trace is replayed under the classic fixed-batch policy and under
// continuous batching, for each expert-execution strategy. Reports aggregate
// tokens/s plus TTFT / end-to-end latency percentiles per configuration.
//
//   ./bench/serve_continuous_batching
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "serve/arrivals.hpp"
#include "serve/server.hpp"

int main() {
  using namespace monde;

  bench::banner("serving", "continuous vs fixed batching, Poisson open-loop trace");

  const core::SystemConfig sys = core::SystemConfig::dac24();
  // A scaled-down Switch-style model keeps the cycle-level NDP runs quick
  // while preserving the routing skew that drives the strategy differences.
  moe::MoeModelConfig model = moe::MoeModelConfig::switch_variant(768, 64);
  model.encoder_blocks = 8;
  model.decoder_blocks = 8;
  model.moe_every = 2;
  const moe::SkewProfile prof = bench::profile_for(model);

  serve::RequestShape shape;
  shape.prompt_min = 64;
  shape.prompt_max = 256;
  shape.new_tokens_min = 8;
  shape.new_tokens_max = 32;
  const auto trace = serve::poisson_trace(32, /*rate_per_s=*/12.0, shape, /*seed=*/7);

  serve::SchedulerConfig cfg;
  cfg.token_budget = 512;
  cfg.fixed_batch = 8;

  std::printf("trace: %zu requests, prompts %lld-%lld tokens, %lld-%lld new tokens\n\n",
              trace.size(), static_cast<long long>(shape.prompt_min),
              static_cast<long long>(shape.prompt_max),
              static_cast<long long>(shape.new_tokens_min),
              static_cast<long long>(shape.new_tokens_max));

  Table table{{"strategy", "batching", "tok/s", "TTFT p50 (ms)", "TTFT p99 (ms)",
               "E2E p50 (ms)", "E2E p99 (ms)"}};
  bench::EngineFactory factory;
  for (const auto kind : {core::StrategyKind::kGpuPmove, core::StrategyKind::kMondeAmove,
                          core::StrategyKind::kMondeLoadBalanced}) {
    for (const auto mode : {serve::BatchingMode::kFixed, serve::BatchingMode::kContinuous}) {
      cfg.mode = mode;
      core::InferenceEngine engine = factory.make(sys, model, prof, kind, /*seed=*/42);
      serve::ServerSim sim{engine, cfg};
      const serve::ServeReport rep = sim.run(trace);
      table.add_row({rep.strategy, rep.mode, Table::num(rep.tokens_per_s, 1),
                     Table::num(rep.ttft_ms.p50, 2), Table::num(rep.ttft_ms.p99, 2),
                     Table::num(rep.e2e_ms.p50, 2), Table::num(rep.e2e_ms.p99, 2)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Continuous batching removes both fixed-batch penalties: the wait for a\n"
              "batch to fill (TTFT) and the padded decode slots after short requests\n"
              "finish (tokens/s). The gap is largest under bursty queueing.\n");
  factory.report_memo_stats();
  return 0;
}
