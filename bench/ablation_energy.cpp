// Ablation (beyond the paper): energy per MoE layer under each strategy.
//
// Extends the paper's Table 3 power analysis to energy-per-work: prices the
// GPU, CPU, NDP (core + device DRAM) and PCIe-link energy of one NLLB-MoE
// encoder layer under every execution strategy. The data-movement argument
// of Equations 1-2 shows up as joules: PMove's ~6.8 GB of weight traffic
// costs more link energy than MoNDE's entire near-data execution.
#include "analysis/energy.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace monde;
  using core::StrategyKind;
  bench::banner("Ablation: energy per MoE layer",
                "energy breakdown by strategy (NLLB-MoE encoder layer, B=4)");

  const auto sys = core::SystemConfig::dac24();
  const auto model = moe::MoeModelConfig::nllb_moe_128();
  const auto prof = moe::SkewProfile::nllb_like();
  auto sim = std::make_shared<ndp::NdpCoreSim>(sys.ndp, sys.monde_mem);
  const analysis::EnergyModel energy;

  moe::WorkloadGenerator gen{model, prof, 42};
  const auto work = gen.encoder_pass(4, 512).moe_layers[0];

  Table t{{"strategy", "GPU (J)", "CPU (J)", "NDP+DRAM (J)", "link (J)", "total (J)",
           "latency (ms)"}};
  for (const StrategyKind kind : {StrategyKind::kIdealGpu, StrategyKind::kGpuPmove,
                                  StrategyKind::kMondeAmove,
                                  StrategyKind::kMondeLoadBalanced,
                                  StrategyKind::kCpuAmove}) {
    core::InferenceEngine eng{sys, model, prof, kind, 42, sim};
    sim::StreamSchedule sched;
    const core::HwStreams hw = core::HwStreams::create(sched, sys);
    const auto res = eng.strategy().run_layer(work, sched, hw, Duration::zero());
    const auto e = energy.price_layer(res, sched.timeline(), hw, sys, model);
    t.add_row({eng.strategy().name(), Table::num(e.gpu_j, 3), Table::num(e.cpu_j, 3),
               Table::num(e.ndp_j, 3), Table::num(e.link_j, 3), Table::num(e.total_j(), 3),
               Table::num(res.latency().ms(), 1)});
  }
  t.print(std::cout);

  std::printf("\nNDP core power is %.2f W (Table 3) against the GPU's hundreds of watts;\n"
              "moving one 67-MB expert over PCIe costs ~%.1f mJ in link energy alone.\n",
              analysis::AreaPowerModel{}.evaluate(sys.ndp).total().power_w,
              8.0 * static_cast<double>(model.expert_bytes().count()) * 5.0 * 1e-9);
  return 0;
}
