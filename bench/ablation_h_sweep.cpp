// Ablation (beyond the paper's figures): sensitivity of the MD+LB layer
// latency to the hot-expert count H, against Equation 6's choice and the
// auto-tuned value.
//
// The paper states H "sensitively affects performance" (Section 3.3); this
// bench quantifies it: a full H sweep on one NLLB encoder layer, marking
// the Equation-6 baseline (alpha = 1) and the tuner's pick.
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace monde;
  using core::StrategyKind;
  bench::banner("Ablation: H sweep", "MD+LB layer latency vs hot-expert count H");

  const auto sys = core::SystemConfig::dac24();
  const auto model = moe::MoeModelConfig::nllb_moe_128();
  const auto prof = moe::SkewProfile::nllb_like();
  auto sim = std::make_shared<ndp::NdpCoreSim>(sys.ndp, sys.monde_mem);

  core::InferenceEngine eng{sys, model, prof, StrategyKind::kMondeLoadBalanced, 42, sim};
  auto& lb = dynamic_cast<core::MondeLoadBalanced&>(eng.strategy());

  moe::WorkloadGenerator gen{model, prof, 42};
  const auto work = gen.encoder_pass(4, 512).moe_layers[0];
  const int activated = static_cast<int>(work.activated_experts());
  const int h_eq6 = lb.h_from_equation6(work, 1.0);

  std::printf("layer: %d activated experts; Equation 6 (alpha=1) picks H=%d\n\n", activated,
              h_eq6);
  Table t{{"H", "layer latency (ms)", "note"}};
  int best_h = 0;
  double best = 1e300;
  for (int h = 0; h <= activated; h = h < 8 ? h + 1 : h + (h < 32 ? 4 : 16)) {
    const double ms = lb.evaluate_layer_with_h(work, h).ms();
    if (ms < best) {
      best = ms;
      best_h = h;
    }
    t.add_row({std::to_string(h), Table::num(ms, 2), h == h_eq6 ? "<- Equation 6" : ""});
  }
  t.print(std::cout);

  // Let the auto-tuner converge on a stream of layers, then report alpha.
  sim::StreamSchedule sched;
  const auto hw = core::HwStreams::create(sched, sys);
  Duration when = Duration::zero();
  for (int i = 0; i < 16; ++i) {
    const auto res = lb.run_layer(work, sched, hw, when);
    when = res.end;
  }
  std::printf("\nbest H in sweep: %d (%.2f ms); auto-tuner converged to alpha=%.2f -> H=%d\n",
              best_h, best, lb.alpha(), lb.last_h());
  return 0;
}
