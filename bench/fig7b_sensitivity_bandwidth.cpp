// Figure 7(b): sensitivity to MoNDE memory bandwidth. NLLB-MoE, batch 4,
// with 0.5x / 1.0x / 2.0x device bandwidth and rate-matched NDP compute;
// speedups of MD+AM and MD+LB over GPU+PM for encoder and decoder.
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace monde;
  using core::StrategyKind;
  bench::banner("Figure 7(b)", "sensitivity to MoNDE memory bandwidth (NLLB-MoE, B=4)");

  bench::EngineFactory factory;
  const auto model = moe::MoeModelConfig::nllb_moe_128();
  const auto prof = moe::SkewProfile::nllb_like();

  for (const bool decoder : {false, true}) {
    Table t{{"bandwidth", "MD+AM", "MD+LB", "(speedup over GPU+PM)"}};
    for (const double scale : {0.5, 1.0, 2.0}) {
      const auto sys = core::SystemConfig::dac24().with_monde_bandwidth_scale(scale);
      auto run = [&](StrategyKind kind) {
        auto eng = factory.make(sys, model, prof, kind);
        return (decoder ? eng.run_decoder(4, bench::kDecoderSteps)
                        : eng.run_encoder(4, 512))
            .total.sec();
      };
      const double t_pm = run(StrategyKind::kGpuPmove);
      const double t_am = run(StrategyKind::kMondeAmove);
      const double t_lb = run(StrategyKind::kMondeLoadBalanced);
      t.add_row({Table::num(scale, 1) + "x", Table::num(t_pm / t_am, 2) + "x",
                 Table::num(t_pm / t_lb, 2) + "x", ""});
    }
    std::printf("%s:\n", decoder ? "decoder" : "encoder");
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "paper: speedups grow with memory bandwidth (cold experts are bandwidth-bound);\n"
      "       MD+LB stays above MD+AM, with the gap narrowing at high bandwidth\n"
      "       (H becomes lower/more conservative); decoder gains are smaller.\n");
  return 0;
}
