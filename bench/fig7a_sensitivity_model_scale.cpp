// Figure 7(a): MD+LB speedup over GPU+PM for Switch variants with different
// dmodel and E (d768-E64, d768-E128, d1024-E128), batch 1 and 4, encoder
// and decoder. Larger models -> larger speedups (robustness to scaling).
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace monde;
  using core::StrategyKind;
  bench::banner("Figure 7(a)", "MD+LB speedup over GPU+PM vs model scale");

  bench::EngineFactory factory;
  const auto sys = core::SystemConfig::dac24();
  const moe::MoeModelConfig variants[] = {moe::MoeModelConfig::switch_variant(768, 64),
                                          moe::MoeModelConfig::switch_variant(768, 128),
                                          moe::MoeModelConfig::switch_variant(1024, 128)};

  for (const bool decoder : {false, true}) {
    Table t{{"B", "d768-E64", "d768-E128", "d1024-E128"}};
    for (const std::int64_t batch : {std::int64_t{1}, std::int64_t{4}}) {
      std::vector<std::string> row{"B=" + std::to_string(batch)};
      for (const auto& model : variants) {
        const auto prof = bench::profile_for(model);
        auto pm = factory.make(sys, model, prof, StrategyKind::kGpuPmove);
        auto lb = factory.make(sys, model, prof, StrategyKind::kMondeLoadBalanced);
        const double t_pm = (decoder ? pm.run_decoder(batch, bench::kDecoderSteps)
                                     : pm.run_encoder(batch, 512))
                                .total.sec();
        const double t_lb = (decoder ? lb.run_decoder(batch, bench::kDecoderSteps)
                                     : lb.run_encoder(batch, 512))
                                .total.sec();
        row.push_back(Table::num(t_pm / t_lb, 2) + "x");
      }
      t.add_row(std::move(row));
    }
    std::printf("%s MoE speedup (MD+LB over GPU+PM):\n", decoder ? "decoder" : "encoder");
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf("paper: speedups increase from d768-E64 to d768-E128 to d1024-E128\n"
              "       (MD+LB is robust to dmodel and E scaling).\n");
  return 0;
}
