// Figure 3: average token distribution across experts (NLLB-MoE encoder
// layer 0, batch 4 x 512 tokens, top-2 routing, FLORES-200-like skew).
//
// Prints the number of experts falling into each routed-token bucket,
// averaged over inputs, next to the paper's published histogram.
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "moe/workload.hpp"

int main() {
  using namespace monde;
  bench::banner("Figure 3", "token distribution across experts (NLLB-MoE, enc layer 0, B=4)");

  const auto model = moe::MoeModelConfig::nllb_moe_128();
  Histogram hist = make_token_histogram();
  const int batches = 100;
  for (int b = 0; b < batches; ++b) {
    moe::WorkloadGenerator gen{model, moe::SkewProfile::nllb_like(),
                               1000 + static_cast<std::uint64_t>(b)};
    const auto pass = gen.encoder_pass(4, 512);
    for (const auto tokens : pass.moe_layers[0].tokens_per_expert) {
      hist.add(static_cast<double>(tokens));
    }
  }
  hist.scale(1.0 / batches);

  const double paper[] = {25.48, 72.56, 24.63, 1.86, 0.08, 1.2, 0.67, 1.52};
  Table t{{"routed tokens", "experts (paper)", "experts (measured)"}};
  for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
    t.add_row({hist.bucket_label(i), Table::num(paper[i], 2),
               Table::num(hist.bucket(i), 2)});
  }
  t.print(std::cout);

  std::printf("\ncold/hot split: the top-2 hot experts absorb the bulk of the %.0f routed\n"
              "token-slots while ~%.0f experts see 0-7 tokens (the paper's motivation for\n"
              "running cold experts near-data).\n",
              4.0 * 512 * 2, hist.bucket(0) + hist.bucket(1) + hist.bucket(2));
  return 0;
}
