// Figure 2(c): single-expert computation vs parameter-transfer latency on
// the GPU across routed-token counts, for dmodel 1024 and 2048 (A100 +
// PCIe Gen4 x16), with achieved TFLOPS.
//
// The paper's takeaway: transferring one expert takes up to ~30x longer
// than computing it when few tokens are routed, and the GPU's compute
// throughput is severely underutilized in that regime.
#include "bench_util.hpp"
#include "common/table.hpp"
#include "compute/gpu.hpp"
#include "interconnect/link.hpp"

int main() {
  using namespace monde;
  bench::banner("Figure 2(c)", "expert compute vs transfer latency (A100 + PCIe Gen4 x16)");

  const compute::GpuModel gpu{compute::GpuSpec::a100_pcie_40gb()};
  const auto pcie = interconnect::LinkSpec::pcie_gen4_x16();

  for (const std::int64_t dmodel : {std::int64_t{1024}, std::int64_t{2048}}) {
    const std::int64_t dff = 4 * dmodel;
    std::printf("dmodel=%lld, dff=%lld (expert = %.1f MB)\n",
                static_cast<long long>(dmodel), static_cast<long long>(dff),
                static_cast<double>(
                    compute::ExpertShape{1, dmodel, dff}.weight_bytes(
                        compute::DataType::kBf16).count()) * 1e-6);
    Table t{{"tokens", "compute (ms)", "transfer (ms)", "transfer/compute", "TFLOPS"}};
    const std::int64_t max_tokens = dmodel == 1024 ? 512 : 2048;
    for (std::int64_t tok = 1; tok <= max_tokens; tok *= 4) {
      const compute::ExpertShape e{tok, dmodel, dff};
      const Duration compute = gpu.expert_time(e, compute::DataType::kBf16);
      const Duration transfer = pcie.transfer_time(e.weight_bytes(compute::DataType::kBf16));
      const double tflops = e.flops() / compute.sec() * 1e-12;
      t.add_row({std::to_string(tok), Table::num(compute.ms(), 3),
                 Table::num(transfer.ms(), 3), Table::num(transfer / compute, 1),
                 Table::num(tflops, 2)});
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf("paper: transfer up to ~30x longer than compute at 1 routed token;\n"
              "       achieved TFLOPS far below the A100's 312 TFLOPS peak for cold experts.\n");
  return 0;
}
