// Ablation (beyond the paper's figures): top-1 vs top-2 routing on the
// NLLB backbone. Top-2 doubles routed token-slots and activates more
// experts per layer, which shifts the PMove/AMove trade-off.
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace monde;
  using core::StrategyKind;
  bench::banner("Ablation: top-k routing", "top-1 vs top-2 on the NLLB backbone (B=4)");

  bench::EngineFactory factory;
  const auto sys = core::SystemConfig::dac24();

  Table t{{"top-k", "phase", "GPU+PM (tok/s)", "MD+LB (tok/s)", "speedup"}};
  for (const int k : {1, 2}) {
    moe::MoeModelConfig model = moe::MoeModelConfig::nllb_moe_128();
    model.top_k = k;
    model.name = "NLLB-top" + std::to_string(k);
    const auto prof = moe::SkewProfile::nllb_like();
    for (const bool decoder : {false, true}) {
      auto pm = factory.make(sys, model, prof, StrategyKind::kGpuPmove);
      auto lb = factory.make(sys, model, prof, StrategyKind::kMondeLoadBalanced);
      const auto rp = decoder ? pm.run_decoder(4, bench::kDecoderSteps)
                              : pm.run_encoder(4, 512);
      const auto rl = decoder ? lb.run_decoder(4, bench::kDecoderSteps)
                              : lb.run_encoder(4, 512);
      t.add_row({std::to_string(k), decoder ? "decoder" : "encoder",
                 Table::num(rp.throughput_tokens_per_s(), 0),
                 Table::num(rl.throughput_tokens_per_s(), 0),
                 Table::num(rl.throughput_tokens_per_s() / rp.throughput_tokens_per_s(), 2) +
                     "x"});
    }
  }
  t.print(std::cout);
  std::printf("\ntop-2 activates more experts per layer -> heavier PMove for the baseline\n"
              "and a larger near-data win; decoder activations stay tiny either way.\n");
  return 0;
}
