// Ablation (beyond the paper): GPU expert caching for the PMove baseline.
//
// The paper's GPU+PM fetches and evicts every activated expert. With spare
// GPU memory as an LRU expert cache, the skewed routing (Figure 3) makes
// hot experts hit across decode steps. This bench sweeps the cache size for
// NLLB-MoE decoding and reports throughput and hit rates -- quantifying how
// far a software-only fix can close the gap MoNDE closes in hardware.
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace monde;
  using core::StrategyKind;
  bench::banner("Ablation: GPU expert cache",
                "LRU expert caching on the GPU+PM baseline (NLLB-MoE decoder, B=4)");

  bench::EngineFactory factory;
  const auto model = moe::MoeModelConfig::nllb_moe_128();
  const auto prof = moe::SkewProfile::nllb_like();

  // MD+LB reference (no cache).
  auto lb = factory.make(core::SystemConfig::dac24(), model, prof,
                         StrategyKind::kMondeLoadBalanced);
  const double t_lb = lb.run_decoder(4, bench::kDecoderSteps).throughput_tokens_per_s();

  Table t{{"cache", "experts cached", "decoder tok/s", "hit rate", "vs no cache",
           "vs MD+LB"}};
  double base_tput = 0.0;
  for (const double cache_gb : {0.0, 2.0, 8.0, 16.0, 32.0}) {
    core::SystemConfig sys = core::SystemConfig::dac24();
    sys.gpu_expert_cache_bytes = Bytes::gib(cache_gb);
    auto eng = factory.make(sys, model, prof, StrategyKind::kGpuPmove);
    const auto report = eng.run_decoder(4, bench::kDecoderSteps);
    const double tput = report.throughput_tokens_per_s();
    if (cache_gb == 0.0) base_tput = tput;
    const auto* cache = eng.strategy().expert_cache();
    const std::size_t capacity =
        static_cast<std::size_t>(Bytes::gib(cache_gb).count() / model.expert_bytes().count());
    t.add_row({cache_gb == 0.0 ? "off" : Table::num(cache_gb, 0) + " GiB",
               std::to_string(capacity), Table::num(tput, 0),
               cache ? Table::pct(cache->hit_rate(), 1) : "-",
               Table::num(tput / base_tput, 2) + "x",
               Table::num(tput / t_lb, 2) + "x"});
  }
  t.print(std::cout);
  std::printf("\nEven a generous cache cannot hold 103 GB of experts; the hot few hit, the\n"
              "cold majority still pays PMove -- near-data execution remains ahead while\n"
              "needing no GPU memory at all. (MD+LB reference: %.0f tok/s)\n", t_lb);
  return 0;
}
