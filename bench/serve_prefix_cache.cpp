// Prefix/KV-cache serving scenarios: shared-prefix reuse, partial-progress
// retry after a fail-stop, and scale-down live migration.
//
// Three sections, each comparing the cache-less baseline against the prefix
// cache (serve/kvcache.hpp):
//
//   1. shared prefixes -- a closed-loop trace whose requests share system
//      -prompt-style prefixes, served by one MD+LB fleet with the cache off
//      vs on: the cache skips the re-prefill of resident prefixes, which
//      shows up directly in the makespan-bound throughput.
//   2. fail-stop retry -- a replica dies mid-trace. Lost-cache mode retries
//      from scratch (the classic behavior); surviving-cache mode resumes
//      every stranded request from its last checkpointed step at a modelled
//      KV-transfer cost. The win is the E2E tail: p99 covers exactly the
//      retried requests. The bench FAILS (non-zero exit) if resume does not
//      beat restart -- CI runs the smoke configuration on every PR.
//   3. scale-down migration -- an autoscaler shrinks a fleet mid-drain;
//      with migration the retiree hands its unfinished requests (and their
//      resident state) to the survivor and releases its capacity at the
//      step boundary, instead of draining its own queue to the end.
//
//   ./bench/serve_prefix_cache                     full sweep
//   ./bench/serve_prefix_cache --smoke             tiny CI configuration
//   ./bench/serve_prefix_cache --smoke --json f    + deterministic metrics
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"

int main(int argc, char** argv) {
  using namespace monde;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const bool smoke = args.smoke;
  bench::BenchMetrics metrics{"serve_prefix_cache"};

  bench::banner("prefix-cache serving",
                smoke ? "shared prefixes, resume-on-retry, migration (smoke)"
                      : "shared prefixes, resume-on-retry, scale-down migration");

  const core::SystemConfig sys = core::SystemConfig::dac24();
  moe::MoeModelConfig model = moe::MoeModelConfig::switch_variant(smoke ? 512 : 768,
                                                                  smoke ? 16 : 64);
  model.encoder_blocks = smoke ? 4 : 8;
  model.decoder_blocks = smoke ? 4 : 8;
  model.moe_every = 2;
  const moe::SkewProfile prof = bench::profile_for(model);

  serve::RequestShape shape;
  shape.prompt_min = 16;
  shape.prompt_max = smoke ? 48 : 160;
  shape.new_tokens_min = 2;
  shape.new_tokens_max = smoke ? 8 : 24;

  serve::SchedulerConfig sched;
  sched.token_budget = smoke ? 96 : 192;

  serve::PrefixCacheConfig cache;
  cache.enabled = true;
  cache.kv_bytes_per_token = Bytes::kib(smoke ? 4.0 : 16.0);
  cache.migration_bw = Bandwidth::gbps(32.0);

  // --- 1. Shared-prefix reuse ---------------------------------------------
  {
    std::printf("--- shared prefixes: %d%% of requests carry a group prefix ---\n",
                75);
    serve::RequestShape pshape = shape;
    pshape.prefix_groups = smoke ? 2 : 4;
    pshape.shared_fraction = 0.75;
    pshape.shared_prefix_len = smoke ? 12 : 14;
    const auto trace =
        serve::closed_loop_trace(smoke ? 24 : 96, pshape, /*seed=*/11);
    Table table{{"cache", "tok/s", "E2E p50 (ms)", "E2E p95 (ms)", "cached tokens",
                 "hit rate", "util"}};
    for (const bool enabled : {false, true}) {
      serve::ClusterConfig ccfg;
      ccfg.cache = cache;
      ccfg.cache.enabled = enabled;
      ccfg.threads = args.threads;
      serve::ClusterSim cluster{
          sys, model, prof,
          serve::uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced, sched), ccfg};
      const auto dispatcher = serve::make_dispatcher(serve::DispatchPolicy::kRoundRobin);
      const serve::ClusterReport rep = cluster.run(trace, *dispatcher);
      std::uint64_t hits = 0, lookups = 0;
      for (const serve::ReplicaReport& rr : rep.replicas) {
        hits += rr.serve.cache.hits;
        lookups += rr.serve.cache.lookups;
      }
      const double hit_rate =
          lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
      table.add_row({enabled ? "prefix cache" : "off", Table::num(rep.tokens_per_s, 1),
                     Table::num(rep.e2e_ms.p50, 2), Table::num(rep.e2e_ms.p95, 2),
                     std::to_string(rep.cached_prefill_tokens),
                     Table::num(100.0 * hit_rate, 1) + "%",
                     Table::num(100.0 * rep.fleet_utilization, 1) + "%"});
      const std::string key = enabled ? "prefix.on." : "prefix.off.";
      metrics.add(key + "tokens_per_s", rep.tokens_per_s);
      metrics.add(key + "e2e_p95_ms", rep.e2e_ms.p95);
      metrics.add(key + "utilization", rep.fleet_utilization);
      if (enabled) {
        metrics.add(key + "cached_tokens",
                    static_cast<double>(rep.cached_prefill_tokens));
        metrics.add(key + "hit_rate", hit_rate);
      }
    }
    std::printf("%s\n", table.str().c_str());
  }

  // --- 2. Fail-stop retry: restart vs resume ------------------------------
  double restart_p99 = 0.0, resume_p99 = 0.0;
  {
    std::printf("--- fail-stop: replica 1 of 3 dies mid-trace; retries restart or resume ---\n");
    const auto trace = serve::bursty_trace(smoke ? 24 : 72, /*burst_size=*/6,
                                           Duration::millis(25.0), shape, /*seed=*/13);
    Table table{{"retry mode", "tok/s", "E2E p95 (ms)", "E2E p99 (ms)", "retries",
                 "resumed tokens"}};
    struct Mode {
      const char* name;
      const char* key;
      bool enabled;
      bool survive;
    };
    for (const Mode mode : {Mode{"restart (no cache)", "failstop.restart.", false, false},
                            Mode{"resume (ckpt cache)", "failstop.resume.", true, true}}) {
      serve::ClusterConfig ccfg;
      ccfg.cache = cache;
      ccfg.cache.enabled = mode.enabled;
      ccfg.cache.survive_failstop = mode.survive;
      ccfg.threads = args.threads;
      auto specs = serve::uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, sched);
      // Mid-trace, while a real backlog is in flight, so the stranded
      // requests are what the p99 tail measures.
      specs[1].fault.fail_at = Duration::millis(smoke ? 30.0 : 120.0);
      serve::ClusterSim cluster{sys, model, prof, specs, ccfg};
      const auto dispatcher =
          serve::make_dispatcher(serve::DispatchPolicy::kJoinShortestQueue);
      const serve::ClusterReport rep = cluster.run(trace, *dispatcher);
      std::int64_t resumed = 0;
      for (const serve::RequestMetrics& m : rep.requests) resumed += m.resumed_tokens;
      table.add_row({mode.name, Table::num(rep.tokens_per_s, 1),
                     Table::num(rep.e2e_ms.p95, 2), Table::num(rep.e2e_ms.p99, 2),
                     std::to_string(rep.retries), std::to_string(resumed)});
      metrics.add(std::string{mode.key} + "tokens_per_s", rep.tokens_per_s);
      metrics.add(std::string{mode.key} + "e2e_p99_ms", rep.e2e_ms.p99);
      metrics.add(std::string{mode.key} + "retries", static_cast<double>(rep.retries));
      if (mode.survive) {
        resume_p99 = rep.e2e_ms.p99;
        metrics.add(std::string{mode.key} + "resumed_tokens",
                    static_cast<double>(resumed));
      } else {
        restart_p99 = rep.e2e_ms.p99;
      }
    }
    std::printf("%s\n", table.str().c_str());
  }

  // --- 3. Scale-down live migration ---------------------------------------
  {
    std::printf("--- scale-down: a front-loaded burst, then the autoscaler shrinks the fleet ---\n");
    const auto trace = serve::bursty_trace(smoke ? 16 : 48, smoke ? 16 : 24,
                                           Duration::millis(1.0), shape, /*seed=*/3);
    Table table{{"retirement", "tok/s", "E2E p95 (ms)", "replica-s", "migrations",
                 "fleet util"}};
    for (const bool migrate : {false, true}) {
      serve::ClusterConfig ccfg;
      ccfg.autoscale_period = Duration::millis(2.0);
      ccfg.cache = cache;
      ccfg.cache.migrate_on_retire = migrate;
      ccfg.threads = args.threads;
      serve::ClusterSim cluster{
          sys, model, prof,
          serve::uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced, sched), ccfg};
      const auto dispatcher =
          serve::make_dispatcher(serve::DispatchPolicy::kJoinShortestQueue);
      serve::AutoscaleConfig as;
      as.min_replicas = 1;
      as.max_replicas = 2;
      as.high_tokens_per_replica = 1 << 20;
      as.low_tokens_per_replica = 1 << 19;  // always below: shrink when possible
      const auto autoscaler = serve::make_queue_pressure_autoscaler(as);
      const serve::ClusterReport rep = cluster.run(trace, *dispatcher, autoscaler.get());
      table.add_row({migrate ? "live migration" : "self-drain",
                     Table::num(rep.tokens_per_s, 1), Table::num(rep.e2e_ms.p95, 2),
                     Table::num(rep.replica_seconds, 4), std::to_string(rep.migrations),
                     Table::num(100.0 * rep.fleet_utilization, 1) + "%"});
      const std::string key = migrate ? "migrate.on." : "migrate.off.";
      metrics.add(key + "replica_seconds", rep.replica_seconds);
      metrics.add(key + "e2e_p95_ms", rep.e2e_ms.p95);
      metrics.add(key + "utilization", rep.fleet_utilization);
    }
    std::printf("%s\n", table.str().c_str());
  }

  std::printf("Shared prefixes make the prefill bill proportional to the NOVEL tokens a\n"
              "request brings; surviving checkpoints turn a node loss from restart-from\n"
              "-scratch into a bounded transfer + catch-up; and live migration releases\n"
              "retired capacity at the step boundary instead of billing its self-drain.\n");

  metrics.write(args.json_path);

  // The acceptance gate this bench exists for: partial-progress retry must
  // beat restart-from-scratch on the failure tail.
  if (resume_p99 >= restart_p99) {
    std::printf("FAIL: resume p99 (%.2f ms) did not beat restart p99 (%.2f ms)\n",
                resume_p99, restart_p99);
    return 1;
  }
  std::printf("resume p99 %.2f ms < restart p99 %.2f ms (retry tail improved)\n",
              resume_p99, restart_p99);
  return 0;
}
