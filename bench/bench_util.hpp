// Shared helpers for the figure/table reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation: it builds the platform, runs the simulation, and prints the
// same rows/series the paper reports (plus our measured values).
#pragma once

#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "core/engine.hpp"
#include "core/load_balancer.hpp"

namespace monde::bench {

/// Command-line surface shared by the CI-facing benches:
///   [--smoke]          seconds-scale configuration (fast CI runs it)
///   [--json <path>]    also emit deterministic metrics as JSON (the bench
///                      regression gate: scripts/check_bench_budget.py
///                      compares them against bench/budgets.json)
///   [--threads <n>]    worker threads for the cluster benches' parallel
///                      advancement phase (ClusterConfig::threads). Results
///                      are bit-identical across thread counts -- the 132
///                      pinned budget metrics never move -- only wall-clock
///                      does. Default 1.
///   [--perf <path>]    write a wall-clock record as JSON for the perf-trend
///                      gate (scripts/check_perf_trend.py). Measured time,
///                      NOT deterministic -- kept separate from --json.
struct BenchArgs {
  bool smoke = false;
  std::string json_path;  ///< empty = no JSON output
  std::string perf_path;  ///< empty = no wall-clock perf record
  std::size_t threads = 1;
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg{argv[i]};
    if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--json") {
      MONDE_REQUIRE(i + 1 < argc, "--json needs a <path> argument");
      args.json_path = argv[++i];
    } else if (arg == "--perf") {
      MONDE_REQUIRE(i + 1 < argc, "--perf needs a <path> argument");
      args.perf_path = argv[++i];
    } else if (arg == "--threads") {
      MONDE_REQUIRE(i + 1 < argc, "--threads needs a count argument");
      const std::string value{argv[++i]};
      std::size_t pos = 0;
      unsigned long n = 0;
      try {
        n = std::stoul(value, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      MONDE_REQUIRE(pos == value.size() && n >= 1,
                    "--threads needs a positive integer, got '" << value << "'");
      args.threads = static_cast<std::size_t>(n);
    } else {
      MONDE_REQUIRE(false, "unknown bench argument '"
                               << arg
                               << "' (expected --smoke / --json <path> / --perf <path> / "
                                  "--threads <n>)");
    }
  }
  return args;
}

/// One wall-clock measurement for the perf-trend gate. Unlike BenchMetrics
/// this is MEASURED time and varies run to run, so it lives in its own file
/// that the budget gate never reads; scripts/check_perf_trend.py appends it
/// (dated) to the retained perf history and gates the trend. No-op when
/// `path` is empty (no --perf given).
/// The optional per-phase split (ClusterConfig::measure_phases): negative
/// values mean "not measured" and the keys are omitted from the record, so
/// pre-existing perf histories and non-cluster benches are unaffected.
inline void write_perf_record(const std::string& path, const std::string& bench,
                              std::size_t threads, double wall_s,
                              double advance_s = -1.0, double dispatch_s = -1.0,
                              double commit_s = -1.0) {
  if (path.empty()) return;
  std::ofstream out{path};
  MONDE_REQUIRE(out.good(), "cannot open --perf path '" << path << "' for writing");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", wall_s);
  out << "{\"bench\": \"" << bench << "\", \"threads\": " << threads << ", \"wall_s\": " << buf;
  const auto phase = [&](const char* key, double value) {
    if (value < 0.0) return;
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    out << ", \"" << key << "\": " << buf;
  };
  phase("advance_s", advance_s);
  phase("dispatch_s", dispatch_s);
  phase("commit_s", commit_s);
  out << "}\n";
  MONDE_REQUIRE(out.good(), "failed writing --perf output to '" << path << "'");
  std::printf("wrote perf record to %s\n", path.c_str());
}

/// Deterministic simulated-metric sink for the bench regression gate: flat
/// name -> value pairs, written as sorted JSON so diffs are stable. Values
/// are simulated quantities (tokens/s, percentile latencies, utilization)
/// -- never wall-clock -- so the same binary always writes the same file.
class BenchMetrics {
 public:
  explicit BenchMetrics(std::string bench) : bench_{std::move(bench)} {}

  void add(const std::string& name, double value) { metrics_[name] = value; }

  /// Write the metrics JSON; no-op when `path` is empty (no --json given).
  void write(const std::string& path) const {
    if (path.empty()) return;
    std::ofstream out{path};
    MONDE_REQUIRE(out.good(), "cannot open --json path '" << path << "' for writing");
    out << "{\n  \"bench\": \"" << bench_ << "\",\n  \"metrics\": {";
    const char* sep = "\n";
    for (const auto& [name, value] : metrics_) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.10g", value);
      out << sep << "    \"" << name << "\": " << buf;
      sep = ",\n";
    }
    out << "\n  }\n}\n";
    MONDE_REQUIRE(out.good(), "failed writing --json output to '" << path << "'");
    std::printf("wrote %zu metric(s) to %s\n", metrics_.size(), path.c_str());
  }

 private:
  std::string bench_;
  std::map<std::string, double> metrics_;  ///< sorted -> deterministic output
};

/// Banner with the figure/table id and a one-line description.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "\n=== " << id << ": " << what << " ===\n"
            << "(simulated reproduction; see EXPERIMENTS.md for paper-vs-measured notes)\n\n";
}

/// Engine factory that shares one NDP simulator per (system, model dims)
/// so expert-shape latencies memoize across strategies and batch sizes.
class EngineFactory {
 public:
  core::InferenceEngine make(const core::SystemConfig& sys, const moe::MoeModelConfig& model,
                             const moe::SkewProfile& prof, core::StrategyKind kind,
                             std::uint64_t seed = 42) {
    const Key key{sys.monde_mem.data_rate_mtps, sys.ndp.clock_ghz, sys.ndp.num_units};
    auto& sim = sims_[key];
    if (!sim) sim = std::make_shared<ndp::NdpCoreSim>(sys.ndp, sys.monde_mem);
    return core::InferenceEngine{sys, model, prof, kind, seed, sim};
  }

  /// Memo-cache effectiveness across every simulator this factory created
  /// (NdpCoreSim::memo_hits/memo_misses): how much cycle-level simulation
  /// the shape memoization avoided.
  void report_memo_stats() const {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (const auto& [key, sim] : sims_) {
      if (!sim) continue;
      hits += sim->memo_hits();
      misses += sim->memo_misses();
    }
    const std::uint64_t lookups = hits + misses;
    std::printf("\nNDP shape-memo: %llu lookups, %llu cycle-level sims avoided (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(lookups), static_cast<unsigned long long>(hits),
                lookups == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                         static_cast<double>(lookups));
  }

 private:
  using Key = std::tuple<double, double, int>;
  std::map<Key, std::shared_ptr<ndp::NdpCoreSim>> sims_;
};

/// The skew profile the paper's workloads exhibit for each model.
inline moe::SkewProfile profile_for(const moe::MoeModelConfig& model) {
  return model.top_k >= 2 ? moe::SkewProfile::nllb_like() : moe::SkewProfile::switch_like();
}

/// Decoder steps simulated per run: enough for steady-state averages while
/// keeping the cycle-level runs tractable.
constexpr std::int64_t kDecoderSteps = 16;

}  // namespace monde::bench
