// Figure 2(a): MoE memory scaling with the number of experts.
//
// Reproduces the bars: non-expert vs expert parameter memory for T5-Large
// and NLLB-3.3B backbones at Dense / E=64 / 128 / 256 / 512, against the
// A100x4 (320 GB) and V100x4 (128 GB) GPU-memory envelopes the paper draws.
#include "analysis/footprint.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace monde;
  bench::banner("Figure 2(a)", "MoE parameter scaling with E");

  Table t{{"backbone", "config", "non-expert (GB)", "expert (GB)", "total (GB)",
           "fits A100x4 (320GB)", "fits V100x4 (128GB)"}};
  for (const auto& base :
       {moe::MoeModelConfig::switch_large_128(), moe::MoeModelConfig::nllb_moe_128()}) {
    const std::string backbone = base.dmodel == 1024 ? "T5-L" : "NLLB-3.3B";
    for (const auto& row : analysis::expert_scaling_sweep(base)) {
      const double total = row.total().as_gb();
      t.add_row({backbone,
                 row.num_experts == 0 ? "Dense" : "E=" + std::to_string(row.num_experts),
                 Table::num(row.non_expert.as_gb(), 2), Table::num(row.expert.as_gb(), 1),
                 Table::num(total, 1), total <= 320.0 ? "yes" : "NO",
                 total <= 128.0 ? "yes" : "NO"});
    }
  }
  t.print(std::cout);

  const auto t5 = analysis::footprint(moe::MoeModelConfig::t5_large_dense());
  const auto sl = analysis::footprint(moe::MoeModelConfig::switch_large_128());
  std::printf(
      "\npaper: Switch-Large-128 needs ~34x the memory of T5-Large; measured: %.1fx\n",
      static_cast<double>(sl.total().count()) / static_cast<double>(t5.total().count()));
  return 0;
}
