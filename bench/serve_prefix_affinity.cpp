// Prefix-locality dispatch vs load-only dispatch on a multi-tenant trace.
//
// The serving-side MoNDE argument: state that is already resident should
// attract the work, not the other way around. At fleet scale the resident
// state is the KV prefix cache (serve/kvcache.hpp) -- a request whose
// shared prefix is hot on replica 3 pays a full prefill if dispatch lands
// it on replica 7. This bench is the acceptance proof for the
// prefix-locality dispatchers (serve/dispatch.hpp):
//
//   1. dispatch policies -- a Zipf-skewed multi-tenant trace (a few heavy
//      tenants, a long tail; every tenant a shared-prefix group) served by
//      a fleet whose per-replica cache holds only a handful of prefixes,
//      dispatched by (a) least-outstanding-tokens (the load-only
//      baseline), (b) prefix-affinity (power-of-two choices among
//      resident prefix-holders), (c) prefix-hash (consistent-hash ring on
//      the prefix id with bounded-load spill-over). The binary FAILS
//      (non-zero exit) unless prefix-affinity beats the baseline on BOTH
//      the cached-token rate AND p99 E2E -- locality must pay for itself
//      at the tail, not just in the hit counter.
//   2. fleet churn -- the same head-to-head under autoscaling: spawns and
//      retirements reshuffle membership, and the consistent-hash ring's
//      O(moved-keys) re-homing keeps the cached-token rate up where the
//      load-only baseline scatters every group across the churned fleet.
//
//   ./bench/serve_prefix_affinity                  full sweep
//   ./bench/serve_prefix_affinity --smoke          tiny CI configuration
//   ./bench/serve_prefix_affinity --smoke --json f + deterministic metrics
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"

namespace {

struct PolicyRun {
  double cached_rate = 0.0;
  double e2e_p99 = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace monde;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const bool smoke = args.smoke;
  bench::BenchMetrics metrics{"serve_prefix_affinity"};

  bench::banner("prefix-affinity serving",
                smoke ? "prefix-locality vs load-only dispatch (smoke)"
                      : "prefix-locality vs load-only dispatch, multi-tenant trace");

  const core::SystemConfig sys = core::SystemConfig::dac24();
  moe::MoeModelConfig model = moe::MoeModelConfig::switch_variant(512, 16);
  model.encoder_blocks = 4;
  model.decoder_blocks = 4;
  model.moe_every = 2;
  const moe::SkewProfile prof = moe::SkewProfile::switch_like();

  const std::size_t replicas = smoke ? 8 : 16;
  const int requests = smoke ? 800 : 6'000;
  const double rate_per_s = 150.0 * static_cast<double>(replicas);

  // Multi-tenant shape: most of every prompt IS its tenant's shared system
  // prefix, tenant popularity is Zipf-skewed, and there are several times
  // more tenants than any single replica's cache can retain -- so WHERE a
  // request lands decides whether its prefill is served from residency.
  serve::RequestShape shape;
  shape.prompt_min = 96;
  shape.prompt_max = 160;
  shape.new_tokens_min = 4;
  shape.new_tokens_max = 12;
  shape.prefix_groups = static_cast<int>(replicas) * 3;
  shape.shared_fraction = 0.9;
  shape.shared_prefix_len = 64;
  shape.prefix_zipf_s = 0.8;

  serve::SchedulerConfig sched;
  sched.token_budget = 128;

  serve::PrefixCacheConfig cache;
  cache.enabled = true;
  // Room for the pinned in-flight state plus only a handful of retained
  // 64-token prefixes: residency is scarce, so scattering a tenant across
  // the fleet evicts faster than it reuses.
  cache.capacity_tokens = 1024;

  // The same materialized trace drives every policy; its total prompt
  // tokens turn the report's cached_prefill_tokens into a rate.
  const std::vector<serve::Request> trace = [&] {
    const auto stream = serve::poisson_stream(requests, rate_per_s, shape, /*seed=*/7);
    return serve::materialize(*stream);
  }();
  std::int64_t total_prompt_tokens = 0;
  for (const serve::Request& rq : trace) total_prompt_tokens += rq.prompt_len;

  struct Policy {
    serve::DispatchPolicy policy;
    const char* key;
  };
  const Policy kPolicies[] = {
      {serve::DispatchPolicy::kLeastOutstandingTokens, "baseline."},
      {serve::DispatchPolicy::kPrefixAffinity, "affinity."},
      {serve::DispatchPolicy::kPrefixHash, "hash."},
  };

  // --- 1. Dispatch policies on the multi-tenant trace ----------------------
  PolicyRun baseline, affinity;
  {
    std::printf(
        "--- dispatch: %zu replicas, %d requests, %d tenants, %lld-token caches ---\n",
        replicas, requests, shape.prefix_groups,
        static_cast<long long>(cache.capacity_tokens));
    Table table{{"policy", "tok/s", "cached rate", "TTFT p95 (ms)", "E2E p50 (ms)",
                 "E2E p99 (ms)", "imbalance"}};
    for (const Policy p : kPolicies) {
      serve::ClusterConfig ccfg;
      ccfg.cache = cache;
      ccfg.event_log_enabled = false;
      ccfg.threads = args.threads;
      serve::ClusterSim cluster{
          sys, model, prof,
          serve::uniform_fleet(replicas, core::StrategyKind::kMondeLoadBalanced, sched),
          ccfg};
      const auto dispatcher = serve::make_dispatcher(p.policy, /*seed=*/17);
      serve::TraceArrivalStream stream{trace};
      const serve::ClusterReport rep = cluster.run(stream, *dispatcher);
      const double cached_rate = static_cast<double>(rep.cached_prefill_tokens) /
                                 static_cast<double>(total_prompt_tokens);
      table.add_row({dispatcher->name(), Table::num(rep.tokens_per_s, 1),
                     Table::num(100.0 * cached_rate, 1) + "%",
                     Table::num(rep.ttft_ms.p95, 2), Table::num(rep.e2e_ms.p50, 2),
                     Table::num(rep.e2e_ms.p99, 2), Table::num(rep.imbalance, 3)});
      const std::string key{p.key};
      metrics.add(key + "tokens_per_s", rep.tokens_per_s);
      metrics.add(key + "cached_rate", cached_rate);
      metrics.add(key + "e2e_p99_ms", rep.e2e_ms.p99);
      metrics.add(key + "ttft_p95_ms", rep.ttft_ms.p95);
      metrics.add(key + "imbalance", rep.imbalance);
      if (p.policy == serve::DispatchPolicy::kLeastOutstandingTokens) {
        baseline = {cached_rate, rep.e2e_ms.p99};
      } else if (p.policy == serve::DispatchPolicy::kPrefixAffinity) {
        affinity = {cached_rate, rep.e2e_ms.p99};
      }
    }
    std::printf("%s\n", table.str().c_str());
  }

  // --- 2. Fleet churn: the ring under autoscale spawns/retirements ---------
  {
    std::printf("--- churn: bursty load, autoscaled fleet (spawns + retirements) ---\n");
    serve::RequestShape churn_shape = shape;
    const int churn_requests = smoke ? 400 : 3'000;
    const auto churn_trace = [&] {
      const auto stream = serve::bursty_stream(
          churn_requests, /*burst_size=*/smoke ? 40 : 150,
          Duration::millis(60.0), churn_shape, /*seed=*/7);
      return serve::materialize(*stream);
    }();
    std::int64_t churn_prompt_tokens = 0;
    for (const serve::Request& rq : churn_trace) churn_prompt_tokens += rq.prompt_len;
    Table table{{"policy", "cached rate", "E2E p99 (ms)", "peak replicas",
                 "replica-s"}};
    for (const Policy p : kPolicies) {
      serve::ClusterConfig ccfg;
      ccfg.cache = cache;
      ccfg.cache.migrate_on_retire = true;  // retirements hand work (and KV) over
      ccfg.event_log_enabled = false;
      ccfg.threads = args.threads;
      ccfg.warmup = Duration::millis(5.0);
      ccfg.autoscale_period = Duration::millis(10.0);
      serve::AutoscaleConfig acfg;
      acfg.min_replicas = replicas / 2;
      acfg.max_replicas = replicas * 2;
      acfg.high_tokens_per_replica = 256;
      acfg.low_tokens_per_replica = 32;
      const auto autoscaler = serve::make_queue_pressure_autoscaler(acfg);
      serve::ClusterSim cluster{
          sys, model, prof,
          serve::uniform_fleet(replicas / 2, core::StrategyKind::kMondeLoadBalanced,
                               sched),
          ccfg};
      const auto dispatcher = serve::make_dispatcher(p.policy, /*seed=*/17);
      serve::TraceArrivalStream stream{churn_trace};
      const serve::ClusterReport rep = cluster.run(stream, *dispatcher, autoscaler.get());
      const double cached_rate = static_cast<double>(rep.cached_prefill_tokens) /
                                 static_cast<double>(churn_prompt_tokens);
      table.add_row({dispatcher->name(), Table::num(100.0 * cached_rate, 1) + "%",
                     Table::num(rep.e2e_ms.p99, 2), std::to_string(rep.peak_replicas),
                     Table::num(rep.replica_seconds, 2)});
      const std::string key = std::string{"churn."} + p.key;
      metrics.add(key + "cached_rate", cached_rate);
      metrics.add(key + "e2e_p99_ms", rep.e2e_ms.p99);
      metrics.add(key + "peak_replicas", static_cast<double>(rep.peak_replicas));
    }
    std::printf("%s\n", table.str().c_str());
  }

  std::printf("Routing a tenant's requests to the replica already holding its shared\n"
              "prefix turns most prefills into cache hits; the saved prefill work\n"
              "shortens queues fleet-wide, so the E2E tail drops with it.\n");

  metrics.write(args.json_path);

  // The acceptance gate this bench exists for: prefix-locality dispatch must
  // beat the load-only baseline on residency reuse AND on the E2E tail.
  bool failed = false;
  if (affinity.cached_rate <= baseline.cached_rate) {
    std::printf("FAIL: affinity cached-token rate (%.1f%%) did not beat baseline (%.1f%%)\n",
                100.0 * affinity.cached_rate, 100.0 * baseline.cached_rate);
    failed = true;
  }
  if (affinity.e2e_p99 >= baseline.e2e_p99) {
    std::printf("FAIL: affinity E2E p99 (%.2f ms) did not beat baseline (%.2f ms)\n",
                affinity.e2e_p99, baseline.e2e_p99);
    failed = true;
  }
  if (failed) return 1;
  std::printf("affinity cached rate %.1f%% > baseline %.1f%%; E2E p99 %.2f ms < %.2f ms\n",
              100.0 * affinity.cached_rate, 100.0 * baseline.cached_rate,
              affinity.e2e_p99, baseline.e2e_p99);
  return 0;
}
