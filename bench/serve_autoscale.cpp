// Autoscaling policy comparison: static fleets vs queue-pressure elasticity.
//
// Replays one bursty trace through (a) static MD+LB fleets of several sizes
// and (b) an autoscaled fleet (min 1 replica, growing under queue
// pressure), at several modelled cold-start latencies. The interesting
// trade-off is cost vs tail latency: a static fleet sized for the burst
// peak wastes replica-seconds between bursts, while the autoscaler pays a
// warm-up penalty on every burst edge -- the longer the cold start, the
// more tail latency it gives back. A final section shows elasticity as
// failure recovery: a replica fail-stops mid-trace and the autoscaler
// replaces the lost capacity.
//
//   ./bench/serve_autoscale                    full sweep
//   ./bench/serve_autoscale --smoke            tiny CI configuration
//   ./bench/serve_autoscale --smoke --json f   + deterministic metrics JSON
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"

int main(int argc, char** argv) {
  using namespace monde;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const bool smoke = args.smoke;
  bench::BenchMetrics metrics{"serve_autoscale"};

  bench::banner("elastic cluster serving",
                smoke ? "autoscaling vs static fleets, smoke configuration"
                      : "autoscaling vs static fleets under bursty traffic");

  const core::SystemConfig sys = core::SystemConfig::dac24();
  moe::MoeModelConfig model = moe::MoeModelConfig::switch_variant(smoke ? 512 : 768,
                                                                  smoke ? 16 : 64);
  model.encoder_blocks = smoke ? 4 : 8;
  model.decoder_blocks = smoke ? 4 : 8;
  model.moe_every = 2;
  const moe::SkewProfile prof = bench::profile_for(model);

  serve::RequestShape shape;
  shape.prompt_min = 16;
  shape.prompt_max = smoke ? 48 : 160;
  shape.new_tokens_min = 2;
  shape.new_tokens_max = smoke ? 8 : 24;

  const int requests = smoke ? 16 : 72;
  const auto trace = serve::bursty_trace(requests, /*burst_size=*/8,
                                         Duration::millis(smoke ? 25.0 : 40.0), shape,
                                         /*seed=*/13);

  serve::SchedulerConfig sched;
  sched.token_budget = smoke ? 96 : 192;

  serve::ClusterConfig ccfg;
  ccfg.autoscale_period = Duration::millis(smoke ? 4.0 : 5.0);
  ccfg.threads = args.threads;  // bit-identical results; only wall-clock moves

  serve::AutoscaleConfig as;
  as.min_replicas = 1;
  as.max_replicas = smoke ? 3 : 6;
  as.high_tokens_per_replica = smoke ? 96 : 192;
  as.low_tokens_per_replica = smoke ? 16 : 32;
  as.high_queue_delay_ms = 25.0;

  Table table{{"fleet", "tok/s", "TTFT p50 (ms)", "TTFT p95 (ms)", "E2E p95 (ms)",
               "peak", "replica-s", "fleet util"}};
  const auto add_row = [&](const std::string& name, const serve::ClusterReport& rep,
                           const std::string& metric_key) {
    table.add_row({name, Table::num(rep.tokens_per_s, 1), Table::num(rep.ttft_ms.p50, 2),
                   Table::num(rep.ttft_ms.p95, 2), Table::num(rep.e2e_ms.p95, 2),
                   std::to_string(rep.peak_replicas), Table::num(rep.replica_seconds, 3),
                   Table::num(100.0 * rep.fleet_utilization, 1) + "%"});
    metrics.add(metric_key + ".tokens_per_s", rep.tokens_per_s);
    metrics.add(metric_key + ".e2e_p95_ms", rep.e2e_ms.p95);
    metrics.add(metric_key + ".utilization", rep.fleet_utilization);
    metrics.add(metric_key + ".replica_seconds", rep.replica_seconds);
  };

  const std::vector<std::size_t> static_sizes =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};
  for (const std::size_t n : static_sizes) {
    serve::ClusterSim cluster{
        sys, model, prof,
        serve::uniform_fleet(n, core::StrategyKind::kMondeLoadBalanced, sched), ccfg};
    const auto dispatcher = serve::make_dispatcher(serve::DispatchPolicy::kJoinShortestQueue);
    add_row("static x" + std::to_string(n), cluster.run(trace, *dispatcher),
            "static_x" + std::to_string(n));
  }

  const std::vector<double> warmups_ms =
      smoke ? std::vector<double>{5.0} : std::vector<double>{2.0, 10.0, 30.0};
  for (const double warmup_ms : warmups_ms) {
    serve::ClusterConfig cfg = ccfg;
    cfg.warmup = Duration::millis(warmup_ms);
    serve::ClusterSim cluster{
        sys, model, prof,
        serve::uniform_fleet(1, core::StrategyKind::kMondeLoadBalanced, sched), cfg};
    const auto dispatcher = serve::make_dispatcher(serve::DispatchPolicy::kJoinShortestQueue);
    const auto autoscaler = serve::make_queue_pressure_autoscaler(as);
    std::string label = "autoscaled (warmup ";
    label += Table::num(warmup_ms, 0);
    label += " ms)";
    add_row(label, cluster.run(trace, *dispatcher, autoscaler.get()),
            "autoscaled_warmup" + Table::num(warmup_ms, 0) + "ms");
  }
  std::printf("%s\n", table.str().c_str());

  // Elasticity as failure recovery: one of two replicas dies mid-trace.
  {
    std::printf("--- fail-stop recovery: replica 1 of 2 dies mid-trace ---\n");
    serve::FaultSpec fault;
    fault.fail_at = Duration::millis(smoke ? 30.0 : 70.0);
    Table ft{{"fleet", "tok/s", "TTFT p95 (ms)", "E2E p95 (ms)", "retries", "peak"}};
    for (const bool elastic : {false, true}) {
      auto specs = serve::uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced, sched);
      specs[1].fault = fault;
      serve::ClusterSim cluster{sys, model, prof, specs, ccfg};
      const auto dispatcher =
          serve::make_dispatcher(serve::DispatchPolicy::kJoinShortestQueue);
      const auto autoscaler = serve::make_queue_pressure_autoscaler(as);
      const serve::ClusterReport rep =
          cluster.run(trace, *dispatcher, elastic ? autoscaler.get() : nullptr);
      ft.add_row({elastic ? "faulty + autoscaler" : "faulty, static",
                  Table::num(rep.tokens_per_s, 1), Table::num(rep.ttft_ms.p95, 2),
                  Table::num(rep.e2e_ms.p95, 2), std::to_string(rep.retries),
                  std::to_string(rep.peak_replicas)});
      const std::string key = elastic ? "failstop_elastic" : "failstop_static";
      metrics.add(key + ".tokens_per_s", rep.tokens_per_s);
      metrics.add(key + ".e2e_p95_ms", rep.e2e_ms.p95);
      metrics.add(key + ".retries", static_cast<double>(rep.retries));
    }
    std::printf("%s\n", ft.str().c_str());
  }

  std::printf("Static fleets trade replica-seconds for tail latency; the autoscaler\n"
              "buys back most of the idle cost and pays for it at burst edges, with\n"
              "the give-back growing in the modelled cold-start latency. Under a\n"
              "fail-stop every request still completes via heartbeat detection and\n"
              "retry, and the autoscaler refills the lost capacity.\n");
  metrics.write(args.json_path);
  return 0;
}
