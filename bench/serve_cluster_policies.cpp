// Dispatch-policy comparison for multi-replica cluster serving.
//
// Replays the same Poisson and bursty request traces through fleets of
// MoNDE (MD+LB) replica servers at several replica counts, once per
// dispatch policy, and reports fleet tokens/s, TTFT/E2E tail percentiles,
// and the busy-time imbalance factor. The load-aware policies (JSQ, least
// -outstanding-tokens, power-of-two) should separate from round-robin most
// under bursty traffic, where replicas hold uneven backlogs.
//
//   ./bench/serve_cluster_policies                    full sweep
//   ./bench/serve_cluster_policies --smoke            tiny CI configuration
//   ./bench/serve_cluster_policies --smoke --json f   + deterministic metrics
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"

int main(int argc, char** argv) {
  using namespace monde;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const bool smoke = args.smoke;
  bench::BenchMetrics metrics{"serve_cluster_policies"};

  bench::banner("cluster serving",
                smoke ? "dispatch policies, smoke configuration"
                      : "dispatch policies under Poisson and bursty traffic");

  const core::SystemConfig sys = core::SystemConfig::dac24();
  moe::MoeModelConfig model = moe::MoeModelConfig::switch_variant(smoke ? 512 : 768,
                                                                  smoke ? 16 : 64);
  model.encoder_blocks = smoke ? 4 : 8;
  model.decoder_blocks = smoke ? 4 : 8;
  model.moe_every = 2;
  const moe::SkewProfile prof = bench::profile_for(model);

  serve::RequestShape shape;
  shape.prompt_min = 16;
  shape.prompt_max = smoke ? 48 : 192;
  shape.new_tokens_min = 2;
  shape.new_tokens_max = smoke ? 8 : 24;

  const int requests = smoke ? 12 : 64;
  const std::vector<std::size_t> replica_counts = smoke ? std::vector<std::size_t>{2}
                                                        : std::vector<std::size_t>{2, 4, 8};

  serve::SchedulerConfig cfg;
  cfg.token_budget = smoke ? 128 : 256;

  serve::ClusterConfig ccfg;
  ccfg.threads = args.threads;  // bit-identical results; only wall-clock moves

  struct TraceCase {
    std::string name;
    std::vector<serve::Request> trace;
  };
  const std::vector<TraceCase> cases{
      {"poisson", serve::poisson_trace(requests, smoke ? 60.0 : 120.0, shape, /*seed=*/7)},
      {"bursty", serve::bursty_trace(requests, /*burst_size=*/8,
                                     Duration::millis(smoke ? 20.0 : 25.0), shape,
                                     /*seed=*/13)},
  };

  for (const TraceCase& tc : cases) {
    std::printf("--- %s trace, homogeneous MD+LB fleet: %d requests ---\n", tc.name.c_str(),
                requests);
    Table table{{"replicas", "policy", "tok/s", "TTFT p50 (ms)", "TTFT p95 (ms)",
                 "E2E p95 (ms)", "imbalance"}};
    for (const std::size_t n : replica_counts) {
      for (const serve::DispatchPolicy policy : serve::all_dispatch_policies()) {
        serve::ClusterSim cluster{
            sys, model, prof,
            serve::uniform_fleet(n, core::StrategyKind::kMondeLoadBalanced, cfg), ccfg};
        const auto dispatcher = serve::make_dispatcher(policy, /*seed=*/17);
        const serve::ClusterReport rep = cluster.run(tc.trace, *dispatcher);
        table.add_row({std::to_string(n), rep.policy, Table::num(rep.tokens_per_s, 1),
                       Table::num(rep.ttft_ms.p50, 2), Table::num(rep.ttft_ms.p95, 2),
                       Table::num(rep.e2e_ms.p95, 2), Table::num(rep.imbalance, 2)});
        const std::string key = tc.name + ".r" + std::to_string(n) + "." + rep.policy;
        metrics.add(key + ".tokens_per_s", rep.tokens_per_s);
        metrics.add(key + ".e2e_p95_ms", rep.e2e_ms.p95);
      }
    }
    std::printf("%s\n", table.str().c_str());
  }

  // Where dispatch policy really matters: an asymmetric fleet. Three full
  // -budget MD+LB replicas plus one capacity-limited GPU+PM replica; round
  // -robin keeps feeding the weak replica its full share.
  {
    serve::SchedulerConfig weak = cfg;
    weak.token_budget = smoke ? 24 : 48;
    weak.fixed_batch = std::min<std::int64_t>(cfg.fixed_batch, weak.token_budget);
    std::vector<serve::ReplicaSpec> specs;
    specs.push_back({core::StrategyKind::kMondeLoadBalanced, cfg, 1, {}});
    specs.push_back({core::StrategyKind::kMondeLoadBalanced, cfg, 2, {}});
    specs.push_back({core::StrategyKind::kMondeLoadBalanced, cfg, 3, {}});
    specs.push_back({core::StrategyKind::kGpuPmove, weak, 4, {}});
    std::printf("--- bursty trace, heterogeneous fleet (3x MD+LB + 1 weak GPU+PM) ---\n");
    // Moderate load: the strong replicas drain between bursts, so the weak
    // replica's persistent backlog is what the queue snapshots expose.
    const auto hetero_trace = serve::bursty_trace(
        requests, /*burst_size=*/8, Duration::millis(smoke ? 20.0 : 60.0), shape,
        /*seed=*/13);
    Table table{{"policy", "tok/s", "TTFT p50 (ms)", "TTFT p95 (ms)", "E2E p95 (ms)",
                 "weak-replica share", "imbalance"}};
    for (const serve::DispatchPolicy policy : serve::all_dispatch_policies()) {
      serve::ClusterSim cluster{sys, model, prof, specs, ccfg};
      const auto dispatcher = serve::make_dispatcher(policy, /*seed=*/17);
      const serve::ClusterReport rep = cluster.run(hetero_trace, *dispatcher);
      const double share = static_cast<double>(rep.replicas.back().dispatched) /
                           static_cast<double>(rep.requests.size());
      table.add_row({rep.policy, Table::num(rep.tokens_per_s, 1),
                     Table::num(rep.ttft_ms.p50, 2), Table::num(rep.ttft_ms.p95, 2),
                     Table::num(rep.e2e_ms.p95, 2), Table::num(100.0 * share, 1) + "%",
                     Table::num(rep.imbalance, 2)});
      const std::string key = "hetero." + rep.policy;
      metrics.add(key + ".tokens_per_s", rep.tokens_per_s);
      metrics.add(key + ".ttft_p95_ms", rep.ttft_ms.p95);
      metrics.add(key + ".e2e_p95_ms", rep.e2e_ms.p95);
    }
    std::printf("%s\n", table.str().c_str());
  }

  std::printf("On a homogeneous fleet with evenly split bursts the four policies make\n"
              "near-identical choices. The asymmetric fleet is where load-awareness\n"
              "pays: round-robin keeps handing the weak replica its full share and its\n"
              "queue dominates the TTFT tail, while join-shortest-queue and least-\n"
              "outstanding-tokens route around the backlog -- power-of-two-choices gets\n"
              "most of that improvement probing only two replicas per request.\n");
  metrics.write(args.json_path);
  return 0;
}
