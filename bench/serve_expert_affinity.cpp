// Gating-aware dispatch vs load-only dispatch under Figure-3 expert skew.
//
// Expert-aware serving (serve/expert.hpp) gives every request an
// ExpertProfile -- its top gated experts per MoE layer -- and every replica
// a hot/cold ExpertCache whose misses are priced as interconnect fetches.
// This bench is the acceptance proof for the gating-aware dispatchers:
//
//   1. dispatch policies -- the same skewed stream served by a fleet with
//      expert residency enabled, dispatched by (a) least-outstanding-tokens
//      (the load-only baseline), (b) expert-affinity (best residency
//      overlap with power-of-two load spill-over), (c) expert-sharded
//      (heavy experts hash-partitioned across the fleet). The binary FAILS
//      (non-zero exit) unless expert-affinity beats the baseline on BOTH
//      the fleet expert hit-rate AND TPOT p99 -- the two halves of the
//      claim that routing by gating cuts expert-fetch stalls without
//      wrecking the load balance.
//   2. rebalancing -- the affinity fleet with periodic cross-replica
//      expert rebalancing off vs on: the calendar tick preloads the
//      fleet-wide hottest experts everywhere, priced over the same link.
//   3. degraded mode -- an overloaded fleet with the pruned-expert mode:
//      requests dispatched onto replicas past the outstanding-token
//      threshold are served with a truncated profile (fewer expert
//      fetches, top-1 quality).
//
//   ./bench/serve_expert_affinity                  full sweep
//   ./bench/serve_expert_affinity --smoke          tiny CI configuration
//   ./bench/serve_expert_affinity --smoke --json f + deterministic metrics
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"

namespace {

struct PolicyRun {
  double hit_rate = 0.0;
  double tpot_p99 = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace monde;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const bool smoke = args.smoke;
  bench::BenchMetrics metrics{"serve_expert_affinity"};

  bench::banner("expert-affinity serving",
                smoke ? "gating-aware vs load-only dispatch (smoke)"
                      : "gating-aware vs load-only dispatch under fig3 skew");

  const core::SystemConfig sys = core::SystemConfig::dac24();
  moe::MoeModelConfig model = moe::MoeModelConfig::switch_variant(512, 16);
  model.encoder_blocks = 4;
  model.decoder_blocks = 4;
  model.moe_every = 2;  // two decoder MoE layers x 16 experts
  // Switch-style top-1 skew: a handful of heavy experts, a warm mid-tier,
  // and a long cold tail (Figure 3's shape). Enough per-request diversity
  // in the top experts that affinity has something to exploit.
  const moe::SkewProfile prof = moe::SkewProfile::switch_like();

  serve::RequestShape shape;
  shape.prompt_min = 16;
  shape.prompt_max = 48;
  shape.new_tokens_min = 4;
  shape.new_tokens_max = 12;

  serve::SchedulerConfig sched;
  sched.token_budget = 128;

  serve::ExpertServingConfig expert;
  expert.enabled = true;
  // Far fewer cache slots than the 32 experts the model routes across, so
  // residency is a scarce resource the dispatcher can actually steward.
  expert.cache_capacity = 8;
  expert.profile_width = 2;

  const std::size_t replicas = smoke ? 8 : 32;
  const int requests = smoke ? 600 : 5'000;
  const double rate_per_s = 250.0 * static_cast<double>(replicas);

  // --- 1. Dispatch policies under expert residency ------------------------
  PolicyRun baseline, affinity;
  {
    std::printf("--- dispatch: %zu replicas, %d requests, %zu-expert caches ---\n",
                replicas, requests, expert.cache_capacity);
    Table table{{"policy", "tok/s", "hit rate", "TPOT p50 (ms)", "TPOT p99 (ms)",
                 "E2E p95 (ms)", "imbalance"}};
    struct Policy {
      serve::DispatchPolicy policy;
      const char* key;
    };
    for (const Policy p :
         {Policy{serve::DispatchPolicy::kLeastOutstandingTokens, "baseline."},
          Policy{serve::DispatchPolicy::kExpertAffinity, "affinity."},
          Policy{serve::DispatchPolicy::kExpertSharded, "sharded."}}) {
      serve::ClusterConfig ccfg;
      ccfg.expert = expert;
      ccfg.event_log_enabled = false;
      ccfg.threads = args.threads;
      serve::ClusterSim cluster{
          sys, model, prof,
          serve::uniform_fleet(replicas, core::StrategyKind::kMondeLoadBalanced, sched),
          ccfg};
      const auto dispatcher = serve::make_dispatcher(p.policy, /*seed=*/17);
      const auto stream = serve::poisson_stream(requests, rate_per_s, shape, /*seed=*/7);
      const serve::ClusterReport rep = cluster.run(*stream, *dispatcher);
      table.add_row({dispatcher->name(), Table::num(rep.tokens_per_s, 1),
                     Table::num(100.0 * rep.expert_hit_rate, 1) + "%",
                     Table::num(rep.tpot_ms.p50, 3), Table::num(rep.tpot_ms.p99, 3),
                     Table::num(rep.e2e_ms.p95, 2), Table::num(rep.imbalance, 3)});
      const std::string key{p.key};
      metrics.add(key + "tokens_per_s", rep.tokens_per_s);
      metrics.add(key + "hit_rate", rep.expert_hit_rate);
      metrics.add(key + "tpot_p99_ms", rep.tpot_ms.p99);
      metrics.add(key + "e2e_p95_ms", rep.e2e_ms.p95);
      metrics.add(key + "imbalance", rep.imbalance);
      if (p.policy == serve::DispatchPolicy::kLeastOutstandingTokens) {
        baseline = {rep.expert_hit_rate, rep.tpot_ms.p99};
      } else if (p.policy == serve::DispatchPolicy::kExpertAffinity) {
        affinity = {rep.expert_hit_rate, rep.tpot_ms.p99};
      }
    }
    std::printf("%s\n", table.str().c_str());
  }

  // --- 2. Periodic cross-replica expert rebalancing -----------------------
  {
    std::printf("--- rebalance: affinity dispatch, hot-expert preload tick off vs on ---\n");
    Table table{{"rebalance", "tok/s", "hit rate", "TPOT p99 (ms)", "migrations"}};
    for (const bool on : {false, true}) {
      serve::ClusterConfig ccfg;
      ccfg.expert = expert;
      if (on) {
        ccfg.expert.rebalance_period = Duration::millis(smoke ? 20.0 : 50.0);
        ccfg.expert.rebalance_hot_experts = 4;
      }
      ccfg.event_log_enabled = false;
      ccfg.threads = args.threads;
      serve::ClusterSim cluster{
          sys, model, prof,
          serve::uniform_fleet(replicas, core::StrategyKind::kMondeLoadBalanced, sched),
          ccfg};
      const auto dispatcher =
          serve::make_dispatcher(serve::DispatchPolicy::kExpertAffinity, /*seed=*/17);
      const auto stream = serve::poisson_stream(requests, rate_per_s, shape, /*seed=*/7);
      const serve::ClusterReport rep = cluster.run(*stream, *dispatcher);
      table.add_row({on ? "on" : "off", Table::num(rep.tokens_per_s, 1),
                     Table::num(100.0 * rep.expert_hit_rate, 1) + "%",
                     Table::num(rep.tpot_ms.p99, 3), std::to_string(rep.expert_migrations)});
      const std::string key = on ? "rebalance.on." : "rebalance.off.";
      metrics.add(key + "hit_rate", rep.expert_hit_rate);
      metrics.add(key + "tpot_p99_ms", rep.tpot_ms.p99);
      metrics.add(key + "expert_migrations", static_cast<double>(rep.expert_migrations));
    }
    std::printf("%s\n", table.str().c_str());
  }

  // --- 3. Pruned-expert degraded mode under overload ----------------------
  {
    std::printf("--- overload: prune profiles dispatched onto backed-up replicas ---\n");
    // A small fleet driven well past capacity, so outstanding tokens pile up
    // and the prune threshold actually trips.
    const std::size_t orep = smoke ? 2 : 4;
    const int oreq = smoke ? 200 : 1'000;
    const double orate = 2'000.0 * static_cast<double>(orep);
    Table table{{"degraded mode", "tok/s", "hit rate", "TPOT p99 (ms)", "pruned"}};
    for (const bool on : {false, true}) {
      serve::ClusterConfig ccfg;
      ccfg.expert = expert;
      if (on) {
        ccfg.expert.prune_outstanding_tokens = 256;
        ccfg.expert.prune_width = 1;
      }
      ccfg.event_log_enabled = false;
      ccfg.threads = args.threads;
      serve::ClusterSim cluster{
          sys, model, prof,
          serve::uniform_fleet(orep, core::StrategyKind::kMondeLoadBalanced, sched), ccfg};
      const auto dispatcher =
          serve::make_dispatcher(serve::DispatchPolicy::kExpertAffinity, /*seed=*/17);
      const auto stream = serve::poisson_stream(oreq, orate, shape, /*seed=*/7);
      const serve::ClusterReport rep = cluster.run(*stream, *dispatcher);
      table.add_row({on ? "prune to top-1" : "full profiles",
                     Table::num(rep.tokens_per_s, 1),
                     Table::num(100.0 * rep.expert_hit_rate, 1) + "%",
                     Table::num(rep.tpot_ms.p99, 3), std::to_string(rep.pruned_requests)});
      const std::string key = on ? "prune.on." : "prune.off.";
      metrics.add(key + "tpot_p99_ms", rep.tpot_ms.p99);
      metrics.add(key + "pruned_requests", static_cast<double>(rep.pruned_requests));
    }
    std::printf("%s\n", table.str().c_str());
  }

  std::printf("Routing by gating overlap keeps each replica's small expert cache hot for\n"
              "the requests it serves, so the fetch bill -- and the TPOT tail it inflates\n"
              "-- drops below what any load-only policy achieves under the same skew.\n");

  metrics.write(args.json_path);

  // The acceptance gate this bench exists for: gating-aware dispatch must
  // beat the load-only baseline on residency AND on the decode tail.
  bool failed = false;
  if (affinity.hit_rate <= baseline.hit_rate) {
    std::printf("FAIL: affinity hit rate (%.1f%%) did not beat baseline (%.1f%%)\n",
                100.0 * affinity.hit_rate, 100.0 * baseline.hit_rate);
    failed = true;
  }
  if (affinity.tpot_p99 >= baseline.tpot_p99) {
    std::printf("FAIL: affinity TPOT p99 (%.3f ms) did not beat baseline (%.3f ms)\n",
                affinity.tpot_p99, baseline.tpot_p99);
    failed = true;
  }
  if (failed) return 1;
  std::printf("affinity hit rate %.1f%% > baseline %.1f%%; TPOT p99 %.3f ms < %.3f ms\n",
              100.0 * affinity.hit_rate, 100.0 * baseline.hit_rate, affinity.tpot_p99,
              baseline.tpot_p99);
  return 0;
}
