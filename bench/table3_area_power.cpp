// Table 3: area and power of the MoNDE NDP core (28 nm, 1 GHz), plus the
// DRAM-equivalence and power-overhead notes from Section 4.3.
#include "analysis/area_power.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace monde;
  bench::banner("Table 3", "MoNDE NDP core area and power (28 nm @ 1 GHz)");

  const analysis::AreaPowerModel model;
  const auto spec = ndp::NdpSpec::monde_dac24();
  const auto r = model.evaluate(spec);

  Table t{{"component", "area (mm^2)", "power (W)"}};
  t.add_row({"Systolic Array / PE", Table::num(r.pe_array.area_mm2, 3),
             Table::num(r.pe_array.power_w, 3)});
  t.add_row({"Systolic Array / Control", Table::num(r.array_control.area_mm2, 3),
             Table::num(r.array_control.power_w, 3)});
  t.add_row({"Scratchpad", Table::num(r.scratchpad.area_mm2, 3),
             Table::num(r.scratchpad.power_w, 3)});
  t.add_row({"Operand Bufs", Table::num(r.operand_bufs.area_mm2, 3),
             Table::num(r.operand_bufs.power_w, 3)});
  t.add_row({"TOTAL", Table::num(r.total().area_mm2, 3), Table::num(r.total().power_w, 3)});
  t.print(std::cout);

  const double base = model.base_device_power_w(Bytes::gib(512), Bandwidth::gbps(512));
  std::printf("\narea overhead:  %.1f mm^2 (~%.2f Gb of target DRAM cells; paper: 3.0 mm^2 / 0.9 Gb)\n",
              r.total().area_mm2, model.dram_equivalent_gb(r.total().area_mm2));
  std::printf("base device:    %.1f W (paper: 114.2 W)\n", base);
  std::printf("NDP power cost: %.1f%% of the base memory system (paper: 1.6%%)\n",
              100.0 * model.ndp_power_overhead(spec, Bytes::gib(512), Bandwidth::gbps(512)));

  // What-if scaling beyond the paper: wider/faster NDP cores.
  std::printf("\nwhat-if scaling (not in the paper):\n");
  Table w{{"config", "area (mm^2)", "power (W)", "peak TFLOPS"}};
  for (const auto& [units, ghz] : {std::pair{32, 1.0}, {64, 1.0}, {128, 1.0}, {64, 2.0}}) {
    ndp::NdpSpec s = spec;
    s.num_units = units;
    s.clock_ghz = ghz;
    const auto rr = model.evaluate(s);
    w.add_row({std::to_string(units) + " units @ " + Table::num(ghz, 1) + " GHz",
               Table::num(rr.total().area_mm2, 3), Table::num(rr.total().power_w, 3),
               Table::num(s.peak_flops().as_tflops(), 2)});
  }
  w.print(std::cout);
  return 0;
}
