// Disaggregated prefill/decode serving vs the unified fleet.
//
// The interference this bench stages is the one Splitwise/DistServe built
// whole systems around: under continuous batching, a long prompt admitted
// into a replica shares its step with every decode slot already there, so
// one heavy prefill inflates the inter-token latency of every co-located
// decode. A unified fleet eats that collision on every replica; a
// disaggregated fleet (serve/disagg.hpp) pays a priced KV handoff per
// request to keep decode replicas running pure-decode steps.
//
//   1. head-to-head -- the same bimodal trace (heavy prefills colliding
//      with deep decodes) on a unified N-replica fleet vs the same N
//      replicas split into prefill and decode pools. The binary FAILS
//      (non-zero exit) unless disaggregation beats the unified fleet on
//      TPOT p99 -- the decode-tail claim is the whole point of paying the
//      handoff tax. TTFT is reported honestly: the handoff transfer makes
//      it WORSE; this is a trade, not a free lunch.
//   2. pool split -- how the prefill/decode share moves both tails.
//   3. handoff link -- the same split over a slower interconnect: the
//      handoff tax grows in the TTFT tail while the TPOT win survives
//      (the shipped bytes never touch a decode step).
//
//   ./bench/serve_disagg                  full sweep
//   ./bench/serve_disagg --smoke          seconds-scale CI configuration
//   ./bench/serve_disagg --smoke --json f + deterministic metrics
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"

namespace {

using namespace monde;

/// Heavy prefills (long prompts, nearly no decode) merged with deep decodes
/// (short prompts, long generations) into one (arrival, id)-ordered trace.
/// Ids are reassigned after the merge, so the stream is indistinguishable
/// from a single mixed workload -- exactly what a unified fleet would see.
std::vector<serve::Request> interference_trace(int n_prefill_heavy, int n_decode_deep,
                                               double rate_per_s, std::uint64_t seed) {
  serve::RequestShape heavy;
  heavy.prompt_min = 512;
  heavy.prompt_max = 1024;
  heavy.new_tokens_min = 2;
  heavy.new_tokens_max = 4;
  serve::RequestShape deep;
  deep.prompt_min = 16;
  deep.prompt_max = 32;
  deep.new_tokens_min = 64;
  deep.new_tokens_max = 128;
  std::vector<serve::Request> trace =
      serve::poisson_trace(n_prefill_heavy, rate_per_s / 2.0, heavy, seed);
  const std::vector<serve::Request> decodes =
      serve::poisson_trace(n_decode_deep, rate_per_s / 2.0, deep, seed + 1);
  trace.insert(trace.end(), decodes.begin(), decodes.end());
  std::stable_sort(trace.begin(), trace.end(),
                   [](const serve::Request& a, const serve::Request& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].id = static_cast<std::int64_t>(i);
  }
  return trace;
}

struct RunResult {
  double tpot_p99 = 0.0;
  double ttft_p50 = 0.0;
  double e2e_p95 = 0.0;
  double tokens_per_s = 0.0;
  std::size_t handoffs = 0;
  double handoff_transfer_s = 0.0;
  double prefill_util = 0.0;
  double decode_util = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const bool smoke = args.smoke;
  bench::BenchMetrics metrics{"serve_disagg"};

  bench::banner("disaggregated serving",
                smoke ? "prefill/decode pools vs unified fleet (smoke)"
                      : "prefill/decode pools vs unified fleet under interference");

  const core::SystemConfig sys = core::SystemConfig::dac24();
  moe::MoeModelConfig model = moe::MoeModelConfig::switch_variant(512, 16);
  model.encoder_blocks = 4;
  model.decoder_blocks = 4;
  model.moe_every = 2;
  const moe::SkewProfile prof = moe::SkewProfile::switch_like();

  serve::SchedulerConfig sched;
  sched.token_budget = 1024;  // a heavy prompt fits in one step -- and owns it

  const std::size_t replicas = smoke ? 4 : 8;
  // The collision is a burst phenomenon: a flood of concurrent prompts is
  // what contaminates unified decode steps (spreading the same prompts out
  // lets the unified fleet absorb them one at a time). ~100 req/s/replica
  // keeps both pools busy without drowning the decode side.
  const int n_heavy = smoke ? 160 : 320;
  const int n_deep = smoke ? 160 : 320;
  const double rate_per_s = 100.0 * static_cast<double>(replicas);
  const std::vector<serve::Request> trace =
      interference_trace(n_heavy, n_deep, rate_per_s, /*seed=*/11);

  const auto run = [&](bool disagg, std::size_t prefill_share,
                       interconnect::LinkSpec link) {
    serve::ClusterConfig ccfg;
    ccfg.event_log_enabled = false;
    ccfg.threads = args.threads;
    if (disagg) {
      ccfg.disagg.enabled = true;
      ccfg.disagg.prefill_replicas = prefill_share;
      ccfg.disagg.handoff_link = link;
    }
    serve::ClusterSim cluster{
        sys, model, prof,
        serve::uniform_fleet(replicas, core::StrategyKind::kMondeLoadBalanced, sched),
        ccfg};
    const auto dispatcher =
        serve::make_dispatcher(serve::DispatchPolicy::kLeastOutstandingTokens, /*seed=*/17);
    const serve::ClusterReport rep = cluster.run(trace, *dispatcher);
    RunResult r;
    r.tpot_p99 = rep.tpot_ms.p99;
    r.ttft_p50 = rep.ttft_ms.p50;
    r.e2e_p95 = rep.e2e_ms.p95;
    r.tokens_per_s = rep.tokens_per_s;
    r.handoffs = rep.handoffs;
    r.handoff_transfer_s = rep.handoff_transfer_s;
    r.prefill_util = rep.prefill_pool.utilization;
    r.decode_util = rep.decode_pool.utilization;
    return r;
  };
  const auto emit = [&](const std::string& key, const RunResult& r) {
    metrics.add(key + ".tpot_p99_ms", r.tpot_p99);
    metrics.add(key + ".ttft_p50_ms", r.ttft_p50);
    metrics.add(key + ".e2e_p95_ms", r.e2e_p95);
    metrics.add(key + ".tokens_per_s", r.tokens_per_s);
  };

  // Prefill is compute-dense but brief: the sweet spot leaves most of the
  // fleet decoding. Section 2 sweeps the split; the headline uses this one.
  const std::size_t base_share = std::max<std::size_t>(1, replicas / 4);

  // --- 1. Head-to-head ------------------------------------------------------
  std::printf("--- head-to-head: %zu replicas, %d heavy prefills + %d deep decodes ---\n",
              replicas, n_heavy, n_deep);
  const RunResult unified = run(false, 0, interconnect::LinkSpec::pcie_gen4_x16());
  const RunResult disagg =
      run(true, base_share, interconnect::LinkSpec::pcie_gen4_x16());
  {
    Table table{{"fleet", "tok/s", "TPOT p99 (ms)", "TTFT p50 (ms)", "E2E p95 (ms)",
                 "handoffs", "handoff link-s"}};
    table.add_row({"unified", Table::num(unified.tokens_per_s, 1),
                   Table::num(unified.tpot_p99, 3), Table::num(unified.ttft_p50, 3),
                   Table::num(unified.e2e_p95, 2), "0", "0"});
    table.add_row({"disaggregated", Table::num(disagg.tokens_per_s, 1),
                   Table::num(disagg.tpot_p99, 3), Table::num(disagg.ttft_p50, 3),
                   Table::num(disagg.e2e_p95, 2), std::to_string(disagg.handoffs),
                   Table::num(disagg.handoff_transfer_s, 4)});
    std::printf("%s\n", table.str().c_str());
    emit("unified", unified);
    emit("disagg", disagg);
    metrics.add("disagg.handoffs", static_cast<double>(disagg.handoffs));
    metrics.add("disagg.handoff_transfer_s", disagg.handoff_transfer_s);
    metrics.add("disagg.prefill_util", disagg.prefill_util);
    metrics.add("disagg.decode_util", disagg.decode_util);
  }

  // --- 2. Pool split --------------------------------------------------------
  {
    std::printf("--- pool split: prefill share of the same %zu replicas ---\n", replicas);
    Table table{{"prefill/decode", "tok/s", "TPOT p99 (ms)", "TTFT p50 (ms)",
                 "prefill util", "decode util"}};
    for (std::size_t share = 1; share < replicas; ++share) {
      if (smoke && share != 1 && share != base_share && share != replicas - 1) continue;
      const RunResult r = run(true, share, interconnect::LinkSpec::pcie_gen4_x16());
      const std::string split =
          std::to_string(share) + "p/" + std::to_string(replicas - share) + "d";
      table.add_row({split, Table::num(r.tokens_per_s, 1), Table::num(r.tpot_p99, 3),
                     Table::num(r.ttft_p50, 3), Table::num(100.0 * r.prefill_util, 1) + "%",
                     Table::num(100.0 * r.decode_util, 1) + "%"});
      emit("split." + std::to_string(share) + "p", r);
    }
    std::printf("%s\n", table.str().c_str());
  }

  // --- 3. Handoff link ------------------------------------------------------
  {
    std::printf("--- handoff link: the KV transfer tax at the same %zup/%zud split ---\n",
                base_share, replicas - base_share);
    Table table{{"link", "TPOT p99 (ms)", "TTFT p50 (ms)", "handoff link-s"}};
    struct Link {
      const char* name;
      interconnect::LinkSpec spec;
    };
    for (const Link& l : {Link{"pcie_gen4_x16", interconnect::LinkSpec::pcie_gen4_x16()},
                          Link{"pcie_gen3_x16", interconnect::LinkSpec::pcie_gen3_x16()}}) {
      const RunResult r = run(true, base_share, l.spec);
      table.add_row({l.name, Table::num(r.tpot_p99, 3), Table::num(r.ttft_p50, 3),
                     Table::num(r.handoff_transfer_s, 4)});
      metrics.add(std::string{"link."} + l.name + ".tpot_p99_ms", r.tpot_p99);
      metrics.add(std::string{"link."} + l.name + ".ttft_p50_ms", r.ttft_p50);
      metrics.add(std::string{"link."} + l.name + ".handoff_transfer_s",
                  r.handoff_transfer_s);
    }
    std::printf("%s\n", table.str().c_str());
  }

  std::printf("Pool specialization keeps decode replicas running pure-decode steps, so\n"
              "the decode tail stops paying for other requests' prompts; the bill moves\n"
              "to TTFT, which now carries a priced KV handoff per request.\n");

  metrics.write(args.json_path);

  // The acceptance gate this bench exists for: under prefill/decode
  // interference, disaggregation must beat the unified fleet on TPOT p99.
  if (disagg.tpot_p99 >= unified.tpot_p99) {
    std::printf("FAIL: disagg TPOT p99 (%.3f ms) did not beat unified (%.3f ms)\n",
                disagg.tpot_p99, unified.tpot_p99);
    return 1;
  }
  std::printf("disagg TPOT p99 %.3f ms < unified %.3f ms (%.1f%% of the unified tail)\n",
              disagg.tpot_p99, unified.tpot_p99,
              100.0 * disagg.tpot_p99 / unified.tpot_p99);
  return 0;
}
