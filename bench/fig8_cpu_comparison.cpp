// Figure 8: MoE latency of CPU expert computation (CPU+AM) vs MoNDE NDP
// (MD+AM) for NLLB-MoE at batch 1 / 4 / 16, encoder and decoder.
//
// The paper reports 9.1x (encoder) and 1.9x (decoder) average latency
// reductions, attributed to MoNDE's higher memory bandwidth (2.7x the
// Xeon's) and the CPU's NUMA/efficiency limits.
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace monde;
  using core::StrategyKind;
  bench::banner("Figure 8", "CPU+AM vs MD+AM MoE latency (NLLB-MoE)");

  bench::EngineFactory factory;
  const auto sys = core::SystemConfig::dac24();
  const auto model = moe::MoeModelConfig::nllb_moe_128();
  const auto prof = moe::SkewProfile::nllb_like();

  for (const bool decoder : {false, true}) {
    Table t{{"B", "CPU+AM MoE (ms)", "MD+AM MoE (ms)", "reduction"}};
    std::vector<double> reductions;
    for (const std::int64_t batch : {std::int64_t{1}, std::int64_t{4}, std::int64_t{16}}) {
      auto cpu = factory.make(sys, model, prof, StrategyKind::kCpuAmove);
      auto md = factory.make(sys, model, prof, StrategyKind::kMondeAmove);
      const double t_cpu = (decoder ? cpu.run_decoder(batch, bench::kDecoderSteps)
                                    : cpu.run_encoder(batch, 512))
                               .moe.ms();
      const double t_md = (decoder ? md.run_decoder(batch, bench::kDecoderSteps)
                                   : md.run_encoder(batch, 512))
                              .moe.ms();
      reductions.push_back(t_cpu / t_md);
      t.add_row({std::to_string(batch), Table::num(t_cpu, 1), Table::num(t_md, 1),
                 Table::num(t_cpu / t_md, 2) + "x"});
    }
    double avg = 0;
    for (const double r : reductions) avg += r / static_cast<double>(reductions.size());
    std::printf("%s (paper avg reduction: %s):\n", decoder ? "decoder" : "encoder",
                decoder ? "1.9x" : "9.1x");
    t.print(std::cout);
    std::printf("measured average reduction: %.2fx\n\n", avg);
  }
  return 0;
}
