// Ablation (beyond the paper's figures): decoder batch-size crossover.
//
// As the decode batch grows, more experts activate per step and each GPU
// expert GEMM gains utilization -- GPU+PM catches up while the AMove win
// per expert shrinks. This bench sweeps B to find where the MD+LB advantage
// saturates or inverts.
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace monde;
  using core::StrategyKind;
  bench::banner("Ablation: decoder batch sweep", "MD+LB vs GPU+PM across decode batch sizes");

  bench::EngineFactory factory;
  const auto sys = core::SystemConfig::dac24();
  const auto model = moe::MoeModelConfig::nllb_moe_128();
  const auto prof = moe::SkewProfile::nllb_like();

  Table t{{"B", "activated experts/layer", "GPU+PM (tok/s)", "MD+LB (tok/s)", "speedup"}};
  for (const std::int64_t batch : {std::int64_t{1}, std::int64_t{4}, std::int64_t{16},
                                   std::int64_t{64}}) {
    moe::WorkloadGenerator gen{model, prof, 42};
    const auto steps = gen.decoder_steps(batch, 4);
    double activated = 0;
    int n = 0;
    for (const auto& s : steps) {
      for (const auto& w : s.moe_layers) {
        activated += static_cast<double>(w.activated_experts());
        ++n;
      }
    }
    auto pm = factory.make(sys, model, prof, StrategyKind::kGpuPmove);
    auto lb = factory.make(sys, model, prof, StrategyKind::kMondeLoadBalanced);
    const double t_pm =
        pm.run_decoder(batch, bench::kDecoderSteps).throughput_tokens_per_s();
    const double t_lb =
        lb.run_decoder(batch, bench::kDecoderSteps).throughput_tokens_per_s();
    t.add_row({std::to_string(batch), Table::num(activated / n, 1), Table::num(t_pm, 0),
               Table::num(t_lb, 0), Table::num(t_lb / t_pm, 2) + "x"});
  }
  t.print(std::cout);
  std::printf("\nthe MoNDE advantage persists across decode batches: PMove volume grows\n"
              "with the activated-expert count, while AMove volume grows only with B.\n");
  return 0;
}
