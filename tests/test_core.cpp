// Unit tests for the MoNDE runtime: allocator, device, driver instruction
// generation, execution strategies, load balancing, and the engine.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "core/engine.hpp"
#include "core/load_balancer.hpp"
#include "core/strategy.hpp"
#include "interconnect/instruction.hpp"

namespace monde::core {
namespace {

/// A small MoE model that keeps cycle-level simulations fast.
moe::MoeModelConfig tiny_model() {
  moe::MoeModelConfig m = moe::MoeModelConfig::switch_variant(512, 16);
  m.encoder_blocks = 4;
  m.decoder_blocks = 4;
  m.moe_every = 2;  // 2 encoder + 2 decoder MoE layers
  m.vocab_size = 8192;
  m.top_k = 2;
  m.name = "tiny-test-model";
  return m;
}

/// Platform fixture shared by strategy tests: one MoNDE device, models, and
/// a routed layer of work.
class StrategyTest : public ::testing::Test {
 protected:
  StrategyTest()
      : sys_{SystemConfig::dac24()},
        model_{tiny_model()},
        gpu_{sys_.gpu},
        cpu_{sys_.cpu},
        xformer_{gpu_, model_.dtype},
        sim_{std::make_shared<ndp::NdpCoreSim>(sys_.ndp, sys_.monde_mem)} {
    devices_.push_back(std::make_unique<MondeDevice>(0, sim_));
    devices_.back()->place_model(model_, 1);
  }

  StrategyContext ctx() {
    StrategyContext c;
    c.sys = &sys_;
    c.model = &model_;
    c.gpu = &gpu_;
    c.cpu = &cpu_;
    c.xformer = &xformer_;
    for (auto& d : devices_) c.devices.push_back(d.get());
    return c;
  }

  moe::MoeLayerWork routed_work(std::int64_t tokens) {
    moe::WorkloadGenerator gen{model_, moe::SkewProfile::switch_like(), 42};
    auto pass = gen.encoder_pass(1, tokens);
    return pass.moe_layers.at(0);
  }

  MoeLayerResult run(StrategyKind kind, const moe::MoeLayerWork& work) {
    sim::StreamSchedule sched;
    const HwStreams hw = HwStreams::create(sched, sys_);
    auto strat = make_strategy(kind, ctx());
    const MoeLayerResult r = strat->run_layer(work, sched, hw, Duration::zero());
    EXPECT_TRUE(sched.timeline().validate().empty())
        << to_string(kind) << ": " << sched.timeline().validate();
    return r;
  }

  SystemConfig sys_;
  moe::MoeModelConfig model_;
  compute::GpuModel gpu_;
  compute::CpuModel cpu_;
  compute::TransformerCostModel xformer_;
  std::shared_ptr<ndp::NdpCoreSim> sim_;
  std::vector<std::unique_ptr<MondeDevice>> devices_;
};

// --- SystemConfig -------------------------------------------------------------

TEST(SystemConfig, Dac24Defaults) {
  const SystemConfig s = SystemConfig::dac24();
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.num_monde_devices, 1);
  EXPECT_NEAR(s.monde_aggregate_bandwidth().as_gbps(), 546.0, 2.0);
}

TEST(SystemConfig, BandwidthScaleAffectsMemAndNdp) {
  const SystemConfig s = SystemConfig::dac24().with_monde_bandwidth_scale(2.0);
  EXPECT_NEAR(s.monde_mem.total_peak_bandwidth().as_gbps(), 1092.0, 5.0);
  EXPECT_DOUBLE_EQ(s.ndp.clock_ghz, 2.0);  // rate-matched compute
}

TEST(SystemConfig, ValidationCatchesBadValues) {
  SystemConfig s = SystemConfig::dac24();
  s.num_gpus = 0;
  EXPECT_THROW(s.validate(), Error);
  s = SystemConfig::dac24();
  s.num_monde_devices = -1;
  EXPECT_THROW(s.validate(), Error);
}

// --- Allocator ------------------------------------------------------------------

TEST(Allocator, DisjointSequentialBuffers) {
  DeviceAllocator alloc{dram::Spec::monde_lpddr5x_8533()};
  const DeviceBuffer a = alloc.allocate(ndp::Partition::kWeights, Bytes::mib(1), "a");
  const DeviceBuffer b = alloc.allocate(ndp::Partition::kWeights, Bytes::mib(2), "b");
  EXPECT_EQ(a.first_block + a.block_count, b.first_block);
  EXPECT_NE(a.base_address, b.base_address);
  EXPECT_EQ(alloc.weights_used().count(), a.block_count * 128 + b.block_count * 128);
}

TEST(Allocator, PartitionsIndependent) {
  DeviceAllocator alloc{dram::Spec::monde_lpddr5x_8533()};
  alloc.allocate(ndp::Partition::kWeights, Bytes::mib(10), "w");
  const DeviceBuffer act = alloc.allocate(ndp::Partition::kActivations, Bytes::mib(1), "a");
  EXPECT_EQ(act.first_block, 0u);
  alloc.reset_activations();
  const DeviceBuffer act2 = alloc.allocate(ndp::Partition::kActivations, Bytes::mib(1), "a2");
  EXPECT_EQ(act2.first_block, 0u);  // bump pointer reset
  EXPECT_GT(alloc.weights_used().count(), 0u);  // weights untouched by reset
}

TEST(Allocator, ExhaustionThrowsWithDiagnosis) {
  dram::Spec small = dram::Spec::monde_lpddr5x_8533();
  small.org.channels = 1;
  small.org.ranks = 1;
  small.org.rows = 16;  // 16 banks * 16 rows * 8 KiB = 2 MiB; 1 MiB/partition
  DeviceAllocator alloc{small};
  EXPECT_NO_THROW(alloc.allocate(ndp::Partition::kWeights, Bytes::kib(512), "half"));
  try {
    alloc.allocate(ndp::Partition::kWeights, Bytes::mib(4), "too-big");
    FAIL() << "expected exhaustion";
  } catch (const Error& e) {
    EXPECT_NE(std::string{e.what()}.find("exhausted"), std::string::npos);
  }
}

TEST(Allocator, RejectsZeroBytes) {
  DeviceAllocator alloc{dram::Spec::monde_lpddr5x_8533()};
  EXPECT_THROW(alloc.allocate(ndp::Partition::kWeights, Bytes{0}, "zero"), Error);
}

TEST(Allocator, AddressOfStaysInBuffer) {
  DeviceAllocator alloc{dram::Spec::monde_lpddr5x_8533()};
  const DeviceBuffer buf = alloc.allocate(ndp::Partition::kActivations, Bytes::kib(4), "x");
  EXPECT_NO_THROW((void)alloc.address_of(buf, buf.block_count - 1));
  EXPECT_THROW((void)alloc.address_of(buf, buf.block_count), Error);
}

// --- MondeDevice -------------------------------------------------------------------

TEST_F(StrategyTest, DevicePlacementAndLookup) {
  MondeDevice& dev = *devices_[0];
  EXPECT_TRUE(dev.has_expert({0, 0}));
  EXPECT_TRUE(dev.has_expert({3, 15}));  // 4 layers x 16 experts
  EXPECT_FALSE(dev.has_expert({4, 0}));
  EXPECT_THROW((void)dev.expert_buffer({9, 9}), Error);
  EXPECT_THROW(dev.place_expert({0, 0}, Bytes{1}), Error);  // double placement
  EXPECT_EQ(dev.weights_used().count(),
            model_.expert_bytes().count() * 16 * 4);
}

TEST_F(StrategyTest, ModelShardingAcrossDevices) {
  auto dev1 = std::make_unique<MondeDevice>(1, sim_);
  dev1->place_model(model_, 2);
  // Device 1 of 2 holds only odd experts.
  EXPECT_FALSE(dev1->has_expert({0, 0}));
  EXPECT_TRUE(dev1->has_expert({0, 1}));
  EXPECT_EQ(dev1->weights_used().count(), model_.expert_bytes().count() * 8 * 4);
}

TEST_F(StrategyTest, CompiledInstructionsAreValid) {
  MondeDevice& dev = *devices_[0];
  const auto instrs = dev.compile_expert_op({1, 3}, 12, model_);
  ASSERT_EQ(instrs.size(), 2u);
  EXPECT_EQ(instrs[0].opcode, interconnect::Opcode::kGemmRelu);
  EXPECT_EQ(instrs[1].opcode, interconnect::Opcode::kGemm);
  EXPECT_EQ(instrs[0].token_count, 12u);
  EXPECT_EQ(instrs[0].layer_id, 1);
  EXPECT_EQ(instrs[0].expert_id, 3);
  // Linear2 consumes linear1's output buffer.
  EXPECT_EQ(instrs[1].act_in.addr, instrs[0].act_out.addr);
  // Each kernel reads half of the expert's parameters.
  EXPECT_EQ(instrs[0].weight.size + instrs[1].weight.size,
            model_.expert_bytes().count());
  // Wire round-trip of compiled instructions.
  for (const auto& inst : instrs) {
    EXPECT_EQ(interconnect::decode(interconnect::encode(inst)), inst);
    EXPECT_TRUE(interconnect::is_ndp_flit(interconnect::encode(inst)));
  }
}

TEST_F(StrategyTest, CompiledAddressesRespectBankPartitions) {
  MondeDevice& dev = *devices_[0];
  const auto instrs = dev.compile_expert_op({0, 5}, 4, model_);
  const dram::AddressMapper mapper{sys_.monde_mem};
  for (const auto& inst : instrs) {
    EXPECT_EQ(mapper.decompose(inst.weight.addr).flat_bank(sys_.monde_mem.org) % 2, 0)
        << "weights live in even banks";
    EXPECT_EQ(mapper.decompose(inst.act_in.addr).flat_bank(sys_.monde_mem.org) % 2, 1)
        << "activations live in odd banks";
    EXPECT_EQ(mapper.decompose(inst.act_out.addr).flat_bank(sys_.monde_mem.org) % 2, 1);
  }
}

// --- Strategies ----------------------------------------------------------------------

TEST_F(StrategyTest, AllStrategiesConserveExperts) {
  const moe::MoeLayerWork work = routed_work(128);
  const std::int64_t activated = work.activated_experts();
  for (const StrategyKind kind :
       {StrategyKind::kIdealGpu, StrategyKind::kGpuPmove, StrategyKind::kMondeAmove,
        StrategyKind::kMondeLoadBalanced, StrategyKind::kCpuAmove}) {
    const MoeLayerResult r = run(kind, work);
    EXPECT_EQ(r.experts_gpu + r.experts_ndp + r.experts_cpu, activated)
        << to_string(kind);
    EXPECT_GT(r.end, r.start) << to_string(kind);
    EXPECT_GT(r.gating, Duration::zero()) << to_string(kind);
    EXPECT_GT(r.combine, Duration::zero()) << to_string(kind);
  }
}

TEST_F(StrategyTest, PmoveMovesExactlyActivatedWeights) {
  const moe::MoeLayerWork work = routed_work(128);
  const MoeLayerResult r = run(StrategyKind::kGpuPmove, work);
  EXPECT_EQ(r.pmove_bytes.count(),
            model_.expert_bytes().count() *
                static_cast<std::uint64_t>(work.activated_experts()));
  EXPECT_EQ(r.amove_bytes.count(), 0u);
}

TEST_F(StrategyTest, AmoveMovesOnlyActivations) {
  const moe::MoeLayerWork work = routed_work(128);
  const MoeLayerResult r = run(StrategyKind::kMondeAmove, work);
  EXPECT_EQ(r.pmove_bytes.count(), 0u);
  // In + out: 2 * routed * dmodel * elem.
  EXPECT_EQ(r.amove_bytes.count(), 2u * work.routed_tokens() *
                                       static_cast<std::uint64_t>(model_.dmodel) * 2u);
  EXPECT_EQ(r.experts_gpu, 0);
}

TEST_F(StrategyTest, AmoveVolumeFarBelowPmoveVolume) {
  // The core claim of the paper (Equations 1-2): activation movement is
  // orders of magnitude smaller than parameter movement.
  const moe::MoeLayerWork work = routed_work(128);
  const MoeLayerResult pm = run(StrategyKind::kGpuPmove, work);
  const MoeLayerResult am = run(StrategyKind::kMondeAmove, work);
  EXPECT_GT(pm.pmove_bytes.count(), 20u * am.amove_bytes.count());
}

TEST_F(StrategyTest, IdealIsFastest) {
  const moe::MoeLayerWork work = routed_work(256);
  const Duration ideal = run(StrategyKind::kIdealGpu, work).latency();
  for (const StrategyKind kind : {StrategyKind::kGpuPmove, StrategyKind::kMondeAmove,
                                  StrategyKind::kMondeLoadBalanced,
                                  StrategyKind::kCpuAmove}) {
    EXPECT_GE(run(kind, work).latency().ns(), ideal.ns() * 0.98) << to_string(kind);
  }
}

TEST_F(StrategyTest, LoadBalancedBeatsOrMatchesPureStrategies) {
  const moe::MoeLayerWork work = routed_work(256);
  const Duration pm = run(StrategyKind::kGpuPmove, work).latency();
  const Duration am = run(StrategyKind::kMondeAmove, work).latency();
  const Duration lb = run(StrategyKind::kMondeLoadBalanced, work).latency();
  EXPECT_LE(lb.ns(), std::min(pm.ns(), am.ns()) * 1.05);
}

TEST_F(StrategyTest, Equation6HValue) {
  MondeLoadBalanced lb{ctx()};
  moe::MoeLayerWork work = routed_work(128);
  const double bw_pcie = sys_.pcie.effective_bandwidth().as_bytes_per_sec();
  const double bw_md = sys_.monde_aggregate_bandwidth().as_bytes_per_sec();
  const double expected =
      bw_pcie / (bw_md + bw_pcie) * static_cast<double>(work.activated_experts());
  EXPECT_EQ(lb.h_from_equation6(work, 1.0),
            static_cast<int>(std::llround(expected)));
  // Alpha scales H linearly until the activated-expert clamp.
  EXPECT_GE(lb.h_from_equation6(work, 50.0), lb.h_from_equation6(work, 1.0));
  EXPECT_LE(lb.h_from_equation6(work, 1e9),
            static_cast<int>(work.activated_experts()));
}

TEST_F(StrategyTest, FixedHOverrideRespected) {
  MondeLoadBalanced lb{ctx()};
  lb.set_fixed_h(3);
  sim::StreamSchedule sched;
  const HwStreams hw = HwStreams::create(sched, sys_);
  const MoeLayerResult r = lb.run_layer(routed_work(128), sched, hw, Duration::zero());
  EXPECT_EQ(r.h_value, 3);
  EXPECT_EQ(r.experts_gpu, 3);
}

TEST_F(StrategyTest, EvaluateLayerWithHSweepHasInteriorOptimum) {
  MondeLoadBalanced lb{ctx()};
  const moe::MoeLayerWork work = routed_work(512);
  const std::int64_t activated = work.activated_experts();
  // All-GPU (H = activated) pays full PMove; H in between should be no
  // worse than the worst extreme.
  const Duration all_ndp = lb.evaluate_layer_with_h(work, 0);
  const Duration all_gpu = lb.evaluate_layer_with_h(work, static_cast<int>(activated));
  const Duration mid = lb.evaluate_layer_with_h(work, static_cast<int>(activated / 4));
  EXPECT_LE(mid.ns(), std::max(all_ndp.ns(), all_gpu.ns()));
  EXPECT_GT(all_gpu, Duration::zero());
}

TEST_F(StrategyTest, AutotunerAdjustsAlpha) {
  MondeLoadBalanced lb{ctx()};
  sim::StreamSchedule sched;
  const HwStreams hw = HwStreams::create(sched, sys_);
  const double alpha0 = lb.alpha();
  Duration t = Duration::zero();
  for (int i = 0; i < 12; ++i) {
    const auto r = lb.run_layer(routed_work(256), sched, hw, t);
    t = r.end;
  }
  // The tuner ran at least twice; alpha must remain positive and finite.
  EXPECT_GT(lb.alpha(), 0.0);
  EXPECT_LT(lb.alpha(), 1000.0);
  // With dispatch-heavy tiny experts the optimum moves away from alpha0=1
  // in this configuration.
  EXPECT_NE(lb.alpha(), alpha0);
}

TEST_F(StrategyTest, MultiGpuRequiresTwoGpus) {
  EXPECT_THROW(make_strategy(StrategyKind::kMultiGpu, ctx()), Error);
}

TEST_F(StrategyTest, MultiGpuSplitsExperts) {
  sys_.num_gpus = 2;
  sim::StreamSchedule sched;
  const HwStreams hw = HwStreams::create(sched, sys_);
  auto strat = make_strategy(StrategyKind::kMultiGpu, ctx());
  const moe::MoeLayerWork work = routed_work(256);
  const MoeLayerResult r = strat->run_layer(work, sched, hw, Duration::zero());
  EXPECT_EQ(r.experts_gpu, work.activated_experts());
  EXPECT_TRUE(sched.timeline().validate().empty());
  // Both GPU streams were used (unless all activated experts share parity,
  // which this seed does not produce).
  EXPECT_GT(sched.timeline().busy_time(hw.gpu2), Duration::zero());
}

TEST_F(StrategyTest, ZeroColdExpertsStillValid) {
  // H >= activated: everything goes to the GPU; the NDP batch is empty.
  MondeLoadBalanced lb{ctx()};
  lb.set_fixed_h(1000);
  sim::StreamSchedule sched;
  const HwStreams hw = HwStreams::create(sched, sys_);
  const moe::MoeLayerWork work = routed_work(64);
  const MoeLayerResult r = lb.run_layer(work, sched, hw, Duration::zero());
  EXPECT_EQ(r.experts_ndp, 0);
  EXPECT_EQ(r.experts_gpu, work.activated_experts());
}

// --- Engine -----------------------------------------------------------------------

TEST(Engine, EncoderReportConsistency) {
  InferenceEngine eng{SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                      StrategyKind::kMondeLoadBalanced, 42};
  const RunReport r = eng.run_encoder(2, 128);
  EXPECT_EQ(r.phase, "encoder");
  EXPECT_EQ(r.tokens, 256u);
  EXPECT_EQ(r.layers.size(), 2u);  // tiny model: 2 encoder MoE layers
  // Blocks and MoE layers serialize on the GPU stream: totals add up.
  EXPECT_NEAR(r.total.us(), (r.non_moe + r.moe).us(), r.total.us() * 1e-6);
  EXPECT_TRUE(r.timeline.validate().empty());
  EXPECT_GT(r.throughput_tokens_per_s(), 0.0);
}

TEST(Engine, DecoderReportConsistency) {
  InferenceEngine eng{SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                      StrategyKind::kMondeAmove, 42};
  const RunReport r = eng.run_decoder(2, 4, 128);
  EXPECT_EQ(r.phase, "decoder");
  EXPECT_EQ(r.tokens, 8u);
  EXPECT_EQ(r.layers.size(), 8u);  // 4 steps x 2 decoder MoE layers
  EXPECT_NEAR(r.total.us(), (r.non_moe + r.moe).us(), r.total.us() * 1e-6);
  EXPECT_TRUE(r.timeline.validate().empty());
}

TEST(Engine, DeterministicAcrossRuns) {
  const auto run_once = [] {
    InferenceEngine eng{SystemConfig::dac24(), tiny_model(),
                        moe::SkewProfile::switch_like(), StrategyKind::kMondeLoadBalanced,
                        7};
    return eng.run_encoder(1, 128).total;
  };
  EXPECT_DOUBLE_EQ(run_once().ns(), run_once().ns());
}

TEST(Engine, SharedSimulatorReusesMemoization) {
  auto sys = SystemConfig::dac24();
  auto shared = std::make_shared<ndp::NdpCoreSim>(sys.ndp, sys.monde_mem);
  InferenceEngine a{sys, tiny_model(), moe::SkewProfile::switch_like(),
                    StrategyKind::kMondeAmove, 42, shared};
  a.run_encoder(1, 128);
  const auto misses_after_first = shared->memo_misses();
  InferenceEngine b{sys, tiny_model(), moe::SkewProfile::switch_like(),
                    StrategyKind::kMondeAmove, 42, shared};
  b.run_encoder(1, 128);
  EXPECT_EQ(shared->memo_misses(), misses_after_first);  // all hits
}

// --- Refactor seam: run_encoder / run_decoder are reimplemented on top of
// the prefill()/decode_step() primitives. These pins capture the exact
// report values the pre-refactor monolithic loops produced (printed with
// %.17g, so the literals round-trip bit-exactly); the step-wise engine must
// keep reproducing them.

TEST(Engine, ReportsPinnedMdLb) {
  // Encoder then decoder on one engine, in this order: the load balancer's
  // autotuner state and the workload RNG advance across runs, so the pinned
  // values are tied to this exact call sequence.
  InferenceEngine eng{SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                      StrategyKind::kMondeLoadBalanced, 42};
  const RunReport enc = eng.run_encoder(2, 128);
  EXPECT_DOUBLE_EQ(enc.total.ns(), 4569608.2068707831);
  EXPECT_DOUBLE_EQ(enc.moe.ns(), 3792324.1966473516);
  EXPECT_DOUBLE_EQ(enc.non_moe.ns(), 777284.0102234314);
  ASSERT_EQ(enc.layers.size(), 2u);
  std::int64_t gpu = 0, ndp = 0, cpu = 0;
  for (const auto& l : enc.layers) {
    gpu += l.experts_gpu;
    ndp += l.experts_ndp;
    cpu += l.experts_cpu;
  }
  EXPECT_EQ(gpu, 20);
  EXPECT_EQ(ndp, 12);
  EXPECT_EQ(cpu, 0);

  const RunReport dec = eng.run_decoder(2, 4, 128);
  EXPECT_DOUBLE_EQ(dec.total.ns(), 12792135.793517902);
  EXPECT_DOUBLE_EQ(dec.moe.ns(), 3292931.5194639787);
  EXPECT_DOUBLE_EQ(dec.non_moe.ns(), 9499204.2740539219);
  ASSERT_EQ(dec.layers.size(), 8u);
  gpu = ndp = 0;
  for (const auto& l : dec.layers) {
    gpu += l.experts_gpu;
    ndp += l.experts_ndp;
  }
  EXPECT_EQ(gpu, 19);
  EXPECT_EQ(ndp, 8);
}

TEST(Engine, ReportsPinnedGpuPmove) {
  InferenceEngine eng{SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                      StrategyKind::kGpuPmove, 7};
  const RunReport enc = eng.run_encoder(1, 64);
  EXPECT_DOUBLE_EQ(enc.total.ns(), 5642157.4822156876);
  EXPECT_DOUBLE_EQ(enc.moe.ns(), 4873306.7923957678);
  EXPECT_DOUBLE_EQ(enc.non_moe.ns(), 768850.68981991964);
  ASSERT_EQ(enc.layers.size(), 2u);
  const RunReport dec = eng.run_decoder(1, 3, 64);
  EXPECT_DOUBLE_EQ(dec.total.ns(), 9125789.8294882607);
  EXPECT_DOUBLE_EQ(dec.moe.ns(), 2003078.6348308269);
  EXPECT_DOUBLE_EQ(dec.non_moe.ns(), 7122711.1946574338);
  ASSERT_EQ(dec.layers.size(), 6u);
}

// --- Step primitives ---------------------------------------------------------

TEST(Engine, StepPrimitivesComposeIntoRuns) {
  // Driving the primitives by hand must equal run_encoder + run_decoder on a
  // fresh engine with the same seed (same draws, same schedule).
  InferenceEngine manual{SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                         StrategyKind::kMondeAmove, 42};
  EngineState st = manual.make_state();
  const StepResult pf = manual.prefill(st, 2, 64);
  EXPECT_DOUBLE_EQ(pf.start.ns(), 0.0);
  EXPECT_EQ(pf.tokens, 128u);
  const auto works = manual.workload().decoder_steps(2, 1);
  const std::vector<DecodeSlot> slots = {{0, 0, 64}, {1, 0, 64}};
  const StepResult ds = manual.decode_step(st, slots, works[0].moe_layers);
  EXPECT_DOUBLE_EQ(ds.start.ns(), pf.end.ns());  // steps chain on the cursor
  EXPECT_EQ(ds.tokens, 2u);
  const RunReport rep = manual.finish(std::move(st), "decoder");
  EXPECT_EQ(rep.tokens, 130u);
  EXPECT_DOUBLE_EQ(rep.total.ns(), ds.end.ns());
  EXPECT_TRUE(rep.timeline.validate().empty());

  InferenceEngine whole{SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                        StrategyKind::kMondeAmove, 42};
  const RunReport enc = whole.run_encoder(2, 64);
  const RunReport dec = whole.run_decoder(2, 1, 64);
  EXPECT_DOUBLE_EQ(rep.total.ns(), (enc.total + dec.total).ns());
}

TEST(Engine, DecodeStepHandlesMixedDepths) {
  InferenceEngine eng{SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                      StrategyKind::kMondeLoadBalanced, 42};
  EngineState st = eng.make_state();
  // A continuous batch: three requests at decode depths 0, 5, and 11 with
  // different prompt lengths.
  const std::vector<DecodeSlot> slots = {{10, 0, 64}, {11, 5, 128}, {12, 11, 96}};
  const StepResult r = eng.decode_step(st, slots);
  EXPECT_EQ(r.tokens, 3u);
  EXPECT_GT(r.end, r.start);
  EXPECT_TRUE(st.sched.timeline().validate().empty());
  ASSERT_EQ(st.layers.size(), 2u);  // tiny model: 2 decoder MoE layers
  for (const auto& l : st.layers) {
    EXPECT_GE(l.experts_gpu + l.experts_ndp + l.experts_cpu, 1);
    EXPECT_LE(l.experts_gpu + l.experts_ndp + l.experts_cpu, 6);  // 3 tokens x top-2
  }
  // Deeper slots attend over longer KV caches: a second identical step at
  // greater depths must not be cheaper.
  EngineState st2 = eng.make_state();
  const std::vector<DecodeSlot> deep = {{10, 100, 64}, {11, 105, 128}, {12, 111, 96}};
  const StepResult r2 = eng.decode_step(st2, deep);
  EXPECT_GE(r2.latency().ns(), r.latency().ns() * 0.5);
}

TEST(Engine, DecodeStepPerRequestRoutingIndependentOfBatchOrder) {
  // The same three requests in a different slot order must produce the same
  // merged MoE work (per-request draws are order-independent).
  InferenceEngine eng{SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                      StrategyKind::kMondeAmove, 42};
  const auto draw = [&](std::uint64_t id, std::int64_t step) {
    return eng.workload().decoder_step_for(id, step);
  };
  const auto merged_a = moe::WorkloadGenerator::merge_layer_works(
      {draw(1, 0), draw(2, 3), draw(3, 7)});
  const auto merged_b = moe::WorkloadGenerator::merge_layer_works(
      {draw(3, 7), draw(1, 0), draw(2, 3)});
  ASSERT_EQ(merged_a.size(), merged_b.size());
  for (std::size_t i = 0; i < merged_a.size(); ++i) {
    EXPECT_EQ(merged_a[i].tokens_per_expert, merged_b[i].tokens_per_expert);
  }
}

TEST(Engine, DecodeStepRejectsBadInput) {
  InferenceEngine eng{SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                      StrategyKind::kMondeAmove, 42};
  EngineState st = eng.make_state();
  EXPECT_THROW((void)eng.decode_step(st, {}), Error);
  // Wrong per-layer work count for this model.
  const std::vector<DecodeSlot> slots = {{0, 0, 64}};
  EXPECT_THROW((void)eng.decode_step(st, slots, {}), Error);
  // Negative decode depth.
  EngineState st2 = eng.make_state();
  EXPECT_THROW((void)eng.decode_step(st2, {{0, -1, 64}}), Error);
}

TEST(Engine, RejectsDenseModel) {
  EXPECT_THROW(InferenceEngine(SystemConfig::dac24(), moe::MoeModelConfig::t5_large_dense(),
                               moe::SkewProfile::uniform(), StrategyKind::kIdealGpu, 1),
               Error);
}

TEST(Engine, MultiDeviceEncoderNotSlower) {
  SystemConfig one = SystemConfig::dac24();
  SystemConfig four = SystemConfig::dac24();
  four.num_monde_devices = 4;
  InferenceEngine e1{one, tiny_model(), moe::SkewProfile::switch_like(),
                     StrategyKind::kMondeAmove, 42};
  InferenceEngine e4{four, tiny_model(), moe::SkewProfile::switch_like(),
                     StrategyKind::kMondeAmove, 42};
  const Duration t1 = e1.run_encoder(4, 128).moe;
  const Duration t4 = e4.run_encoder(4, 128).moe;
  EXPECT_LE(t4.ns(), t1.ns() * 1.01);
}

}  // namespace
}  // namespace monde::core
