// Unit tests for the prefix/KV-cache model (serve/kvcache.hpp): lookup
// semantics, LRU retention/eviction, pinning, transfer pricing, and the
// disabled-mode inertness the serving stack's bit-identity pin relies on.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "serve/kvcache.hpp"

namespace monde::serve {
namespace {

Request request(std::uint64_t id, std::int64_t prompt, std::int64_t new_tokens,
                std::uint64_t prefix_id = 0, std::int64_t shared_len = 0) {
  Request rq;
  rq.id = id;
  rq.prompt_len = prompt;
  rq.max_new_tokens = new_tokens;
  rq.prefix_id = prefix_id;
  rq.shared_prefix_len = shared_len;
  return rq;
}

PrefixCacheConfig enabled_config(std::int64_t capacity = 1 << 20) {
  PrefixCacheConfig cfg;
  cfg.enabled = true;
  cfg.capacity_tokens = capacity;
  return cfg;
}

TEST(PrefixCacheConfig, ValidationFiresOnlyWhenEnabled) {
  PrefixCacheConfig cfg;  // disabled: junk knobs are never read
  cfg.capacity_tokens = -5;
  EXPECT_NO_THROW(cfg.validate());
  cfg.enabled = true;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = enabled_config();
  cfg.kv_bytes_per_token = Bytes{0};
  EXPECT_THROW(cfg.validate(), Error);
  cfg = enabled_config();
  cfg.migration_bw = Bandwidth{};
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(KvCache, DisabledCacheIsInert) {
  KvCache cache{PrefixCacheConfig{}};
  EXPECT_FALSE(cache.enabled());
  Request rq = request(1, 64, 8, /*prefix_id=*/7, /*shared_len=*/32);
  rq.resume.prefilled = 10;
  // Disabled lookups degrade to the request's own resumed prefix.
  EXPECT_EQ(cache.saved_tokens(rq), 10);
  cache.admit(rq, 10);
  cache.decode_token(1);
  cache.complete(1);
  EXPECT_EQ(cache.resident_tokens(), 0);
  EXPECT_EQ(cache.stats().lookups, 0u);
  EXPECT_EQ(cache.stats().saved_tokens, 0);
}

TEST(KvCache, SharedPrefixHitsAfterFirstAdmission) {
  KvCache cache{enabled_config()};
  const Request a = request(1, 64, 8, /*prefix_id=*/3, /*shared_len=*/32);
  EXPECT_EQ(cache.saved_tokens(a), 0);  // nothing resident yet
  cache.admit(a, 0);
  // A group sibling now skips the resident part of the shared prefix...
  const Request b = request(2, 100, 8, /*prefix_id=*/3, /*shared_len=*/32);
  EXPECT_EQ(cache.saved_tokens(b), 32);
  // ...a stranger (other group / no group) does not.
  EXPECT_EQ(cache.saved_tokens(request(3, 100, 8, /*prefix_id=*/4, /*shared_len=*/32)), 0);
  EXPECT_EQ(cache.saved_tokens(request(4, 100, 8)), 0);
  cache.admit(b, 32);
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().saved_tokens, 32);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST(KvCache, SavedTokensTakesTheBestOfResumeAndSharedPrefix) {
  KvCache cache{enabled_config()};
  cache.admit(request(1, 64, 8, /*prefix_id=*/3, /*shared_len=*/32), 0);
  Request rq = request(2, 40, 8, /*prefix_id=*/3, /*shared_len=*/24);
  // The sibling carries only 24 shared tokens: the resident 32 don't all apply.
  EXPECT_EQ(cache.saved_tokens(rq), 24);
  // Its own resumed prefix wins when longer...
  rq.resume.prefilled = 30;
  EXPECT_EQ(cache.saved_tokens(rq), 30);
  // ...and the answer never exceeds the prompt.
  rq.resume.prefilled = 40;
  EXPECT_EQ(cache.saved_tokens(rq), 40);
}

TEST(KvCache, PinnedStateGrowsWithDecodeAndReleasesOnCompletion) {
  KvCache cache{enabled_config()};
  Request rq = request(1, 64, 8);
  rq.resume.prefilled = 64;
  rq.resume.decoded = 3;
  cache.admit(rq, 64);
  EXPECT_EQ(cache.resident_tokens(), 64 + 3);
  cache.decode_token(1);
  cache.decode_token(1);
  EXPECT_EQ(cache.resident_tokens(), 64 + 5);
  EXPECT_EQ(cache.stats().resident_peak, 64 + 5);
  cache.complete(1);
  EXPECT_EQ(cache.resident_tokens(), 0);
  EXPECT_EQ(cache.stats().resident_peak, 64 + 5);  // peak sticks
  // Double admission / release of an unknown request are contract errors.
  cache.admit(request(2, 8, 2), 0);
  EXPECT_THROW(cache.admit(request(2, 8, 2), 0), Error);
  EXPECT_THROW(cache.decode_token(99), Error);
  EXPECT_THROW(cache.complete(99), Error);
}

TEST(KvCache, SharedPrefixesEvictLruFirstAndPinnedNever) {
  // Capacity fits a 64-token pinned payload plus two 32-token prefixes.
  KvCache cache{enabled_config(/*capacity=*/64 + 2 * 32)};
  for (std::uint64_t g = 1; g <= 2; ++g) {
    // A request whose whole prompt IS the shared prefix pins nothing
    // unique: the prefix is one physical copy, counted once.
    cache.admit(request(g, 32, 4, /*prefix_id=*/g, /*shared_len=*/32), 0);
    EXPECT_EQ(cache.resident_tokens(), static_cast<std::int64_t>(32 * g));
    cache.complete(g);
  }
  EXPECT_EQ(cache.resident_tokens(), 64);  // two retained prefixes
  // Touch group 1 so group 2 becomes the LRU victim.
  cache.admit(request(10, 32, 4, /*prefix_id=*/1, /*shared_len=*/32), 32);
  cache.complete(10);
  // An 80-token admission carrying a new 16-token prefix overflows (64
  // unique + 32 + 32 + 16 shared = 144 > 128): exactly the LRU entry,
  // group 2, goes. The in-use group-3 prefix is not evictable.
  cache.admit(request(11, 80, 4, /*prefix_id=*/3, /*shared_len=*/16), 0);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.saved_tokens(request(12, 64, 4, /*prefix_id=*/2, /*shared_len=*/32)), 0);
  EXPECT_GT(cache.saved_tokens(request(13, 64, 4, /*prefix_id=*/1, /*shared_len=*/32)), 0);
  // Pinned state alone may exceed capacity; only retained entries are shed.
  cache.decode_token(11);
  EXPECT_GE(cache.resident_tokens(), 65);
  cache.complete(11);
  EXPECT_THROW(cache.complete(11), Error);  // already released
}

TEST(KvCache, DropPinnedKeepsRetainedPrefixes) {
  KvCache cache{enabled_config()};
  cache.admit(request(1, 32, 4, /*prefix_id=*/5, /*shared_len=*/16), 0);
  cache.admit(request(2, 48, 4), 0);
  cache.drop_pinned();
  EXPECT_EQ(cache.resident_tokens(), 16);  // the shared prefix survives
  EXPECT_EQ(cache.saved_tokens(request(3, 32, 4, /*prefix_id=*/5, /*shared_len=*/16)), 16);
}

TEST(KvCache, PrefixSignatureTracksResidencyIncrementally) {
  KvCache cache{enabled_config()};
  EXPECT_EQ(cache.prefix_signature(), 0u);
  cache.admit(request(1, 32, 4, /*prefix_id=*/5, /*shared_len=*/16), 0);
  const std::uint64_t bit5 = std::uint64_t{1} << prefix_signature_bit(5);
  EXPECT_EQ(cache.prefix_signature(), bit5);
  // A second admission of the same group sets nothing new; a different
  // group ORs its own bit in.
  cache.admit(request(2, 32, 4, /*prefix_id=*/5, /*shared_len=*/16), 16);
  cache.admit(request(3, 32, 4, /*prefix_id=*/9, /*shared_len=*/16), 0);
  const std::uint64_t bit9 = std::uint64_t{1} << prefix_signature_bit(9);
  EXPECT_EQ(cache.prefix_signature(), bit5 | bit9);
  // Completion retains the prefix: the signature advertises it to
  // dispatchers precisely because later arrivals would hit it.
  cache.complete(1);
  cache.complete(2);
  cache.complete(3);
  EXPECT_EQ(cache.prefix_signature(), bit5 | bit9);
  // Harvest/evacuation unpins but keeps retained prefixes -- and their bits.
  cache.drop_pinned();
  EXPECT_EQ(cache.prefix_signature(), bit5 | bit9);
  // Prefix-less admissions never touch the signature.
  cache.admit(request(4, 48, 4), 0);
  EXPECT_EQ(cache.prefix_signature(), bit5 | bit9);
}

TEST(KvCache, PrefixSignatureClearsOnEviction) {
  // Capacity fits exactly two 32-token retained prefixes.
  KvCache cache{enabled_config(/*capacity=*/64)};
  for (std::uint64_t g = 1; g <= 2; ++g) {
    cache.admit(request(g, 32, 4, /*prefix_id=*/g, /*shared_len=*/32), 0);
    cache.complete(g);
  }
  const std::uint64_t bit1 = std::uint64_t{1} << prefix_signature_bit(1);
  const std::uint64_t bit2 = std::uint64_t{1} << prefix_signature_bit(2);
  EXPECT_EQ(cache.prefix_signature(), bit1 | bit2);
  // A third group overflows the capacity: the LRU entry (group 1) is
  // evicted and its bit drops out of the signature.
  cache.admit(request(3, 32, 4, /*prefix_id=*/3, /*shared_len=*/32), 0);
  cache.complete(3);
  const std::uint64_t bit3 = std::uint64_t{1} << prefix_signature_bit(3);
  EXPECT_EQ(cache.prefix_signature(), bit2 | bit3);
}

TEST(KvCache, PrefixSignatureRefcountsBitCollisions) {
  // The 64-bit signature is Bloom-style: two groups may hash to one bit.
  // Find a colliding pair, make both resident, then evict one -- the bit
  // must stay set until the OTHER leaves too (per-bit refcounts).
  const int target = prefix_signature_bit(1);
  std::uint64_t other = 2;
  while (prefix_signature_bit(other) != target) ++other;
  // Capacity fits both 16-token prefixes plus slack.
  KvCache cache{enabled_config(/*capacity=*/32)};
  cache.admit(request(1, 16, 4, /*prefix_id=*/1, /*shared_len=*/16), 0);
  cache.complete(1);
  cache.admit(request(2, 16, 4, other, /*shared_len=*/16), 0);
  cache.complete(2);
  const std::uint64_t bit = std::uint64_t{1} << target;
  EXPECT_EQ(cache.prefix_signature(), bit);
  // Filler groups must NOT hash to the target bit, or they would mask the
  // refcount under test.
  std::uint64_t filler1 = other + 1;
  while (prefix_signature_bit(filler1) == target) ++filler1;
  std::uint64_t filler2 = filler1 + 1;
  while (prefix_signature_bit(filler2) == target) ++filler2;
  // Overflow once: group 1 (LRU) is evicted, but `other` still holds the bit.
  cache.admit(request(3, 16, 4, filler1, /*shared_len=*/16), 0);
  cache.complete(3);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.prefix_signature() & bit, bit);
  // Overflow again: `other` goes too and the bit finally clears.
  cache.admit(request(4, 16, 4, filler2, /*shared_len=*/16), 0);
  cache.complete(4);
  EXPECT_EQ(cache.prefix_signature() & bit, 0u);
}

TEST(KvCache, DisabledCacheHasEmptySignature) {
  KvCache cache{PrefixCacheConfig{}};
  cache.admit(request(1, 32, 4, /*prefix_id=*/5, /*shared_len=*/16), 0);
  EXPECT_EQ(cache.prefix_signature(), 0u);
}

TEST(KvCache, TransferTimeIsTokensTimesBytesOverBandwidth) {
  PrefixCacheConfig cfg = enabled_config();
  cfg.kv_bytes_per_token = Bytes::kib(64);
  cfg.migration_bw = Bandwidth::gbps(16.0);
  KvCache cache{cfg};
  // 1024 tokens x 64 KiB = 64 MiB over 16 GB/s.
  const double expect_s = 1024.0 * 64.0 * 1024.0 / 16e9;
  EXPECT_NEAR(cache.transfer_time_for(1024).sec(), expect_s, 1e-12);
  EXPECT_DOUBLE_EQ(cache.transfer_time_for(0).ns(), 0.0);
  EXPECT_THROW((void)cache.transfer_time_for(-1), Error);
}

TEST(ResumeState, RequestValidationGuardsResumeInvariants) {
  Request rq = request(1, 64, 8);
  rq.resume.prefilled = 65;  // beyond the prompt
  EXPECT_THROW(rq.validate(), Error);
  rq = request(1, 64, 8);
  rq.resume.decoded = 8;  // at the decode budget: nothing left to serve
  rq.resume.prefilled = 64;
  EXPECT_THROW(rq.validate(), Error);
  rq = request(1, 64, 8);
  rq.resume.decoded = 3;  // decoded tokens require a full prefill
  rq.resume.prefilled = 10;
  EXPECT_THROW(rq.validate(), Error);
  rq = request(1, 64, 8);
  rq.shared_prefix_len = 16;  // shared length without a group
  EXPECT_THROW(rq.validate(), Error);
  rq = request(1, 64, 8, /*prefix_id=*/2, /*shared_len=*/16);
  rq.resume.prefilled = 64;
  rq.resume.decoded = 7;
  EXPECT_NO_THROW(rq.validate());
  EXPECT_EQ(rq.resume.resident_tokens(), 71);
  EXPECT_TRUE(rq.resume.any());
}

}  // namespace
}  // namespace monde::serve
