// Unit tests for the prefix-locality dispatch policies (serve/dispatch.hpp):
// consistent-hash-ring determinism and bounded key movement for kPrefixHash,
// holder-restricted power-of-two choices for kPrefixAffinity, the shared
// load spill-over, and the eligible_snapshots() no-filter fast path.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/error.hpp"
#include "serve/dispatch.hpp"
#include "serve/kvcache.hpp"

namespace monde::serve {
namespace {

/// `n` healthy replicas with equal load, ids 0..n-1. Equal outstanding
/// tokens keep the spill-over from ever defecting (a probe is "better" only
/// when the choice carries MORE than twice its tokens), so picks expose the
/// ring / holder choice directly.
std::vector<ReplicaSnapshot> even_fleet(std::size_t n) {
  std::vector<ReplicaSnapshot> snaps;
  for (std::size_t i = 0; i < n; ++i) snaps.push_back({i, 1, 100});
  return snaps;
}

Request prefix_request(std::uint64_t id, std::uint64_t prefix_id) {
  Request rq;
  rq.id = id;
  rq.prompt_len = 64;
  rq.max_new_tokens = 8;
  rq.prefix_id = prefix_id;
  rq.shared_prefix_len = prefix_id != 0 ? 16 : 0;
  return rq;
}

/// The ring home of every probe key under one dispatcher instance.
std::vector<std::size_t> homes(Dispatcher& d, const std::vector<ReplicaSnapshot>& snaps,
                               std::size_t keys) {
  std::vector<std::size_t> out;
  out.reserve(keys);
  for (std::size_t k = 0; k < keys; ++k) {
    out.push_back(snaps[d.pick(snaps, prefix_request(k, k + 1))].replica);
  }
  return out;
}

TEST(PrefixHash, RingPlacementIsSeedIndependent) {
  // The ring is placed by a pure hash -- the seed feeds only the spill-over
  // probes, which never defect on an evenly loaded fleet. Two dispatchers
  // with different seeds must therefore agree on every home.
  const auto snaps = even_fleet(8);
  auto a = make_dispatcher(DispatchPolicy::kPrefixHash, 1);
  auto b = make_dispatcher(DispatchPolicy::kPrefixHash, 999);
  EXPECT_EQ(homes(*a, snaps, 256), homes(*b, snaps, 256));
}

TEST(PrefixHash, SameGroupAlwaysLandsOnItsHome) {
  const auto snaps = even_fleet(5);
  auto d = make_dispatcher(DispatchPolicy::kPrefixHash, 7);
  const std::size_t home = d->pick(snaps, prefix_request(0, 42));
  for (std::uint64_t id = 1; id < 50; ++id) {
    EXPECT_EQ(d->pick(snaps, prefix_request(id, 42)), home);
  }
}

TEST(PrefixHash, BoundedMovementOnReplicaAdd) {
  auto d = make_dispatcher(DispatchPolicy::kPrefixHash, 7);
  constexpr std::size_t kKeys = 2000;
  const auto before = homes(*d, even_fleet(8), kKeys);
  const auto after = homes(*d, even_fleet(9), kKeys);  // spawn replica 8
  std::size_t moved = 0;
  for (std::size_t k = 0; k < kKeys; ++k) {
    if (before[k] != after[k]) {
      ++moved;
      // Consistent hashing moves keys only TO the new replica, never
      // between surviving ones.
      EXPECT_EQ(after[k], 8u);
    }
  }
  // Expected moved share is 1/9 of the keyspace; allow 2x for hash variance.
  EXPECT_GT(moved, 0u);
  EXPECT_LE(moved, 2 * kKeys / 9);
}

TEST(PrefixHash, BoundedMovementOnReplicaRemoval) {
  // Retire/death: the departed replica's keys scatter to survivors; every
  // other key keeps its home. Removal is just membership absence, so this
  // covers retire and detected-death alike.
  auto d = make_dispatcher(DispatchPolicy::kPrefixHash, 7);
  constexpr std::size_t kKeys = 2000;
  const auto before = homes(*d, even_fleet(8), kKeys);
  auto shrunk = even_fleet(8);
  shrunk.erase(shrunk.begin() + 3);  // replica 3 died
  const auto after = homes(*d, shrunk, kKeys);
  std::size_t moved = 0;
  for (std::size_t k = 0; k < kKeys; ++k) {
    if (before[k] != after[k]) {
      ++moved;
      EXPECT_EQ(before[k], 3u);  // only the dead replica's keys re-home
      EXPECT_NE(after[k], 3u);
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LE(moved, 2 * kKeys / 8);
}

TEST(PrefixHash, SpillOverLeavesSaturatedHome) {
  auto d = make_dispatcher(DispatchPolicy::kPrefixHash, 7);
  auto snaps = even_fleet(6);
  const std::size_t home = d->pick(snaps, prefix_request(0, 5));
  // Saturate the home: it now carries far more than twice any probe's
  // outstanding tokens, so the bounded-load check defects every pick.
  snaps[home].outstanding_tokens = 100000;
  for (std::uint64_t id = 1; id < 32; ++id) {
    EXPECT_NE(d->pick(snaps, prefix_request(id, 5)), home);
  }
}

TEST(PrefixHash, FallsBackWithoutPrefixOrInDecodePhase) {
  auto d = make_dispatcher(DispatchPolicy::kPrefixHash, 7);
  auto snaps = even_fleet(4);
  snaps[2].outstanding_tokens = 1;  // the least-outstanding fallback target
  EXPECT_EQ(d->pick(snaps, prefix_request(0, 0)), 2u);  // no shared prefix
  Request decode = prefix_request(1, 9);
  decode.resume.prefilled = decode.prompt_len;  // handoff/retry: no prefill left
  EXPECT_EQ(d->pick(snaps, decode), 2u);
  EXPECT_EQ(d->pick(snaps), 2u);  // request-less entry point
}

TEST(PrefixAffinity, RoutesToTheResidentHolder) {
  auto d = make_dispatcher(DispatchPolicy::kPrefixAffinity, 7);
  auto snaps = even_fleet(4);
  const std::uint64_t prefix = 77;
  snaps[3].prefix_sig = std::uint64_t{1} << prefix_signature_bit(prefix);
  for (std::uint64_t id = 0; id < 16; ++id) {
    EXPECT_EQ(d->pick(snaps, prefix_request(id, prefix)), 3u);
  }
}

TEST(PrefixAffinity, PowerOfTwoAmongMultipleHolders) {
  auto d = make_dispatcher(DispatchPolicy::kPrefixAffinity, 7);
  auto snaps = even_fleet(6);
  const std::uint64_t prefix = 12;
  const std::uint64_t bit = std::uint64_t{1} << prefix_signature_bit(prefix);
  snaps[1].prefix_sig = bit;
  snaps[4].prefix_sig = bit;
  snaps[4].outstanding_tokens = 10;  // the lighter holder
  for (std::uint64_t id = 0; id < 16; ++id) {
    const std::size_t got = d->pick(snaps, prefix_request(id, prefix));
    EXPECT_TRUE(got == 1u || got == 4u);
  }
}

TEST(PrefixAffinity, FallsBackWhenNothingIsResident) {
  auto d = make_dispatcher(DispatchPolicy::kPrefixAffinity, 7);
  auto snaps = even_fleet(4);
  snaps[1].outstanding_tokens = 5;
  // No holder anywhere: the group's first arrival seeds a home at the
  // least-loaded replica.
  EXPECT_EQ(d->pick(snaps, prefix_request(0, 3)), 1u);
  // Same for prefix-less and decode-phase requests.
  EXPECT_EQ(d->pick(snaps, prefix_request(1, 0)), 1u);
  Request decode = prefix_request(2, 3);
  decode.resume.prefilled = decode.prompt_len;
  EXPECT_EQ(d->pick(snaps, decode), 1u);
}

TEST(PrefixPolicies, NamesAndEmptySnapshotRejection) {
  for (const DispatchPolicy policy :
       {DispatchPolicy::kPrefixHash, DispatchPolicy::kPrefixAffinity}) {
    auto d = make_dispatcher(policy);
    EXPECT_EQ(d->name(), to_string(policy));
    EXPECT_THROW((void)d->pick({}), Error) << to_string(policy);
    EXPECT_THROW((void)d->pick({}, prefix_request(0, 1)), Error) << to_string(policy);
  }
  EXPECT_EQ(to_string(DispatchPolicy::kPrefixHash), "prefix-hash");
  EXPECT_EQ(to_string(DispatchPolicy::kPrefixAffinity), "prefix-affinity");
}

bool same_snapshot(const ReplicaSnapshot& a, const ReplicaSnapshot& b) {
  return a.replica == b.replica && a.in_flight == b.in_flight &&
         a.outstanding_tokens == b.outstanding_tokens && a.accepting == b.accepting &&
         a.warming == b.warming && a.heartbeat_age_ms == b.heartbeat_age_ms &&
         a.step_ewma_ms == b.step_ewma_ms && a.expert_sig == b.expert_sig &&
         a.prefix_sig == b.prefix_sig && a.prefill_pool == b.prefill_pool;
}

TEST(EligibleSnapshots, NoFilterFastPathMatchesElementWiseScan) {
  // Regression pin for the bulk-copy fast path: an all-healthy fleet must
  // come back exactly as it went in -- every field, every order -- with or
  // without the slow-EWMA stage, exactly as the element-wise scan produced.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<ReplicaSnapshot> all;
  for (std::size_t i = 0; i < 5; ++i) {
    ReplicaSnapshot s{i, i + 1, static_cast<std::int64_t>(100 * i), true};
    s.step_ewma_ms = 1.0 + 0.1 * static_cast<double>(i);
    s.expert_sig = 0xf0f0u + i;
    s.prefix_sig = 0x0f0fu + i;
    all.push_back(s);
  }
  const auto out = eligible_snapshots(all, inf);
  ASSERT_EQ(out.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_TRUE(same_snapshot(out[i], all[i])) << "snapshot " << i;
  }
  // With a finite factor the fast path feeds the same slow-EWMA stage: the
  // outlier is still cut.
  all[4].step_ewma_ms = 50.0;
  const auto cut = eligible_snapshots(all, 2.0);
  ASSERT_EQ(cut.size(), 4u);
  for (std::size_t i = 0; i < cut.size(); ++i) {
    EXPECT_TRUE(same_snapshot(cut[i], all[i])) << "snapshot " << i;
  }
  // And a fleet that DOES need filtering still takes the element-wise path.
  all[0].accepting = false;
  const auto filtered = eligible_snapshots(all, inf);
  ASSERT_EQ(filtered.size(), 4u);
  EXPECT_EQ(filtered[0].replica, 1u);
}

}  // namespace
}  // namespace monde::serve
