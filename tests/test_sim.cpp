// Unit tests for the discrete-event kernel and stream timelines.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "sim/engine.hpp"
#include "sim/timeline.hpp"

namespace monde::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(Duration::nanos(30), [&] { order.push_back(3); });
  eng.schedule(Duration::nanos(10), [&] { order.push_back(1); });
  eng.schedule(Duration::nanos(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now().ns(), 30.0);
  EXPECT_EQ(eng.executed_events(), 3u);
}

TEST(Engine, SimultaneousEventsFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.schedule(Duration::nanos(10), [&order, i] { order.push_back(i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, CallbacksCanScheduleMore) {
  Engine eng;
  int fired = 0;
  eng.schedule(Duration::nanos(5), [&] {
    ++fired;
    eng.schedule(Duration::nanos(5), [&] { ++fired; });
  });
  eng.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(eng.now().ns(), 10.0);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  eng.schedule(Duration::nanos(10), [&] { ++fired; });
  eng.schedule(Duration::nanos(100), [&] { ++fired; });
  eng.run_until(Duration::nanos(50));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(eng.idle());
  eng.run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(eng.idle());
}

TEST(Engine, RejectsPastScheduling) {
  Engine eng;
  eng.schedule(Duration::nanos(10), [] {});
  eng.run();
  EXPECT_THROW(eng.schedule_at(Duration::nanos(5), [] {}), Error);
  EXPECT_THROW(eng.schedule(Duration::nanos(-1), [] {}), Error);
}

TEST(Timeline, RecordsAndQueries) {
  Timeline tl;
  tl.record({StreamId{0}, Duration::nanos(0), Duration::nanos(10), "a", "x"});
  tl.record({StreamId{1}, Duration::nanos(5), Duration::nanos(25), "b", "y"});
  tl.record({StreamId{0}, Duration::nanos(10), Duration::nanos(12), "c", "x"});
  EXPECT_DOUBLE_EQ(tl.end_time().ns(), 25.0);
  EXPECT_DOUBLE_EQ(tl.busy_time(StreamId{0}).ns(), 12.0);
  EXPECT_DOUBLE_EQ(tl.busy_time(StreamId{1}).ns(), 20.0);
  EXPECT_TRUE(tl.validate().empty());
}

TEST(Timeline, DetectsOverlap) {
  Timeline tl;
  tl.record({StreamId{0}, Duration::nanos(0), Duration::nanos(10), "a", "x"});
  tl.record({StreamId{0}, Duration::nanos(5), Duration::nanos(15), "b", "x"});
  EXPECT_FALSE(tl.validate().empty());
}

TEST(Timeline, BackToBackIsNotOverlap) {
  Timeline tl;
  tl.record({StreamId{0}, Duration::nanos(0), Duration::nanos(10), "a", "x"});
  tl.record({StreamId{0}, Duration::nanos(10), Duration::nanos(20), "b", "x"});
  EXPECT_TRUE(tl.validate().empty());
}

TEST(Timeline, ZeroLengthMarkersAllowed) {
  Timeline tl;
  tl.record({StreamId{0}, Duration::nanos(0), Duration::nanos(10), "a", "x"});
  tl.record({StreamId{0}, Duration::nanos(5), Duration::nanos(5), "marker", "m"});
  EXPECT_TRUE(tl.validate().empty());
}

TEST(Timeline, RejectsNegativeInterval) {
  Timeline tl;
  EXPECT_THROW(tl.record({StreamId{0}, Duration::nanos(10), Duration::nanos(5), "bad", "x"}),
               Error);
}

TEST(Timeline, ChromeTraceContainsStreamsAndEvents) {
  Timeline tl;
  tl.record({StreamId{0}, Duration::nanos(0), Duration::micros(1), "gemm-0", "gemm"});
  const std::string json = tl.to_chrome_trace({"GPU"});
  EXPECT_NE(json.find("\"GPU\""), std::string::npos);
  EXPECT_NE(json.find("gemm-0"), std::string::npos);
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

namespace {

/// Minimal JSON structure scan for the Chrome-trace export: verifies the
/// string is a balanced JSON object (braces/brackets outside strings) and
/// extracts every numeric value following `key` in document order.
std::vector<double> extract_number_fields(const std::string& json, const std::string& key) {
  std::vector<double> out;
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    out.push_back(std::stod(json.substr(pos)));
  }
  return out;
}

bool balanced_json(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

}  // namespace

TEST(Timeline, ChromeTraceRoundTripPreservesIntervals) {
  // A mixed timeline: two streams, out-of-order recording within a stream's
  // wall-clock, zero-length marker included.
  Timeline tl;
  tl.record({StreamId{0}, Duration::nanos(0), Duration::micros(2), "blk0", "block"});
  tl.record({StreamId{1}, Duration::micros(1), Duration::micros(4), "pmove0", "pmove"});
  tl.record({StreamId{0}, Duration::micros(2), Duration::micros(3), "blk1", "block"});
  tl.record({StreamId{0}, Duration::micros(3), Duration::micros(3), "mark", "m"});
  const std::string json = tl.to_chrome_trace({"GPU", "PCIe"});

  EXPECT_TRUE(balanced_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  // One "X" (complete) event per recorded interval, in recording order.
  std::size_t x_events = 0;
  for (std::size_t pos = 0; (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos;
       pos += 8) {
    ++x_events;
  }
  EXPECT_EQ(x_events, tl.intervals().size());

  // ts/dur fields round-trip each interval's start and length (in us). The
  // first two numeric "ts" fields can belong to metadata-free X events only
  // -- metadata events carry no ts -- so the extracted sequences align 1:1
  // with the recorded intervals.
  const auto ts = extract_number_fields(json, "ts");
  const auto dur = extract_number_fields(json, "dur");
  ASSERT_EQ(ts.size(), tl.intervals().size());
  ASSERT_EQ(dur.size(), tl.intervals().size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_DOUBLE_EQ(ts[i], tl.intervals()[i].start.us());
    EXPECT_DOUBLE_EQ(dur[i], (tl.intervals()[i].end - tl.intervals()[i].start).us());
  }

  // Both stream names appear as thread-name metadata.
  EXPECT_NE(json.find("\"GPU\""), std::string::npos);
  EXPECT_NE(json.find("\"PCIe\""), std::string::npos);
}

TEST(Timeline, AsciiGanttRendersRows) {
  Timeline tl;
  tl.record({StreamId{0}, Duration::nanos(0), Duration::nanos(50), "a", "pmove"});
  tl.record({StreamId{1}, Duration::nanos(50), Duration::nanos(100), "b", "gemm"});
  const std::string g = tl.to_ascii_gantt({"GPU", "PCIe"}, 40);
  EXPECT_NE(g.find("GPU"), std::string::npos);
  EXPECT_NE(g.find("PCIe"), std::string::npos);
  EXPECT_NE(g.find("legend:"), std::string::npos);
}

TEST(Timeline, MergeCombinesIntervals) {
  Timeline a, b;
  a.record({StreamId{0}, Duration::nanos(0), Duration::nanos(5), "a", "x"});
  b.record({StreamId{1}, Duration::nanos(0), Duration::nanos(9), "b", "y"});
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.end_time().ns(), 9.0);
}

TEST(StreamSchedule, PlacementRespectsEarliestAndBusy) {
  StreamSchedule sched;
  const StreamId s = sched.add_stream("S");
  const auto a = sched.place(s, Duration::nanos(10), Duration::nanos(5), "a", "x");
  EXPECT_DOUBLE_EQ(a.start.ns(), 10.0);
  EXPECT_DOUBLE_EQ(a.end.ns(), 15.0);
  // Earliest before stream-free: starts when the stream frees.
  const auto b = sched.place(s, Duration::nanos(0), Duration::nanos(5), "b", "x");
  EXPECT_DOUBLE_EQ(b.start.ns(), 15.0);
  // Earliest after stream-free: starts at earliest.
  const auto c = sched.place(s, Duration::nanos(100), Duration::nanos(1), "c", "x");
  EXPECT_DOUBLE_EQ(c.start.ns(), 100.0);
  EXPECT_TRUE(sched.timeline().validate().empty());
}

TEST(StreamSchedule, IndependentStreamsOverlap) {
  StreamSchedule sched;
  const StreamId s0 = sched.add_stream("A");
  const StreamId s1 = sched.add_stream("B");
  sched.place(s0, Duration::zero(), Duration::nanos(100), "a", "x");
  const auto b = sched.place(s1, Duration::zero(), Duration::nanos(100), "b", "x");
  EXPECT_DOUBLE_EQ(b.start.ns(), 0.0);
  EXPECT_DOUBLE_EQ(sched.makespan().ns(), 100.0);
}

TEST(StreamSchedule, BlockUntilAdvancesWithoutRecording) {
  StreamSchedule sched;
  const StreamId s = sched.add_stream("S");
  sched.block_until(s, Duration::nanos(42));
  EXPECT_DOUBLE_EQ(sched.free_at(s).ns(), 42.0);
  EXPECT_TRUE(sched.timeline().intervals().empty());
}

TEST(StreamSchedule, RejectsUnknownStream) {
  StreamSchedule sched;
  EXPECT_THROW(sched.place(StreamId{5}, Duration::zero(), Duration::zero(), "x", "y"), Error);
  EXPECT_THROW((void)sched.free_at(StreamId{1}), Error);
}

TEST(StreamSchedule, ZeroLengthTaskRecordsMarker) {
  StreamSchedule sched;
  const StreamId s = sched.add_stream("S");
  const auto iv = sched.place(s, Duration::nanos(3), Duration::zero(), "marker", "m");
  EXPECT_DOUBLE_EQ(iv.start.ns(), iv.end.ns());
  EXPECT_EQ(sched.timeline().intervals().size(), 1u);
}

}  // namespace
}  // namespace monde::sim
