// Randomized differential harness over the cluster feature lattice.
//
// Each seed deterministically draws one fleet + trace + ClusterConfig from
// the full feature lattice -- fail-stop and slow-down faults, autoscaling,
// prefix caching (lost / surviving, checkpoint cadence, retirement
// migration), expert-aware serving (residency, rebalancing, pruning),
// disaggregated prefill/decode with priced handoffs, both batching modes,
// the EWMA health filter, and every stock dispatch policy -- then demands
// that the indexed calendar loop reproduce the classic reference loop
// bit-identically at 1, 2, 4, and 8 worker threads. The hand-written diff
// suites (test_calendar_diff.cpp, test_disagg.cpp) pin the combinations we
// thought of; this harness walks the ones we did not.
//
// The seed list is fixed, so CI runs are reproducible. Set
// MONDE_EXHAUSTIVE_TICK (the repo-wide "spend more cycles" switch) to sweep
// the wider nightly range. On a failure the offending seed is printed via
// SCOPED_TRACE; to reproduce, run with
// --gtest_filter=RandomDiff.* after adding the seed to kFastSeeds.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iterator>
#include <random>
#include <string_view>
#include <vector>

#include "serve_fixtures.hpp"

namespace monde::serve {
namespace {

using namespace fixtures;

// Fast-CI sweep: a couple dozen seeds keeps the suite under ~15 s while
// still crossing every feature pair (see LatticeCoverage below).
constexpr std::uint64_t kFastSeeds[] = {1,  2,  3,  5,  8,  13, 21, 34,
                                        55, 89, 144, 233, 377, 32};
constexpr std::uint64_t kExhaustiveExtra = 48;  ///< extra seeds when opted in

bool exhaustive_enabled() {
  const char* v = std::getenv("MONDE_EXHAUSTIVE_TICK");
  return v != nullptr && std::string_view{v} != "0";
}

std::vector<std::uint64_t> sweep_seeds() {
  std::vector<std::uint64_t> seeds(std::begin(kFastSeeds), std::end(kFastSeeds));
  if (exhaustive_enabled()) {
    for (std::uint64_t s = 1000; s < 1000 + kExhaustiveExtra; ++s) {
      seeds.push_back(s);
    }
  }
  return seeds;
}

/// One deterministic draw from the feature lattice. Every branch below is a
/// function of `rng` alone, so a seed names a scenario forever; constraints
/// that would make a run degenerate (killing a pool's only member without an
/// autoscaler to respawn capacity) are excluded structurally, not by
/// rejection, so the draw count per dimension is seed-independent.
Scenario random_scenario(std::uint64_t seed) {
  std::mt19937_64 rng{seed * 0x9e3779b97f4a7c15ULL + 0xdeadbeef};
  const auto draw = [&](std::uint64_t lo, std::uint64_t hi) {
    return lo + rng() % (hi - lo + 1);  // inclusive; tiny modulo bias is fine
  };
  const auto chance = [&](std::uint64_t percent) { return rng() % 100 < percent; };

  Scenario sc;

  // --- Fleet shape and batching ------------------------------------------
  const std::size_t n_replicas = draw(2, 4);
  sc.cfg.disagg.enabled = chance(50);
  SchedulerConfig sched;
  sched.token_budget = std::int64_t{128} << draw(0, 2);  // 128 / 256 / 512
  sched.size_aware_admission = chance(30);
  if (!sc.cfg.disagg.enabled && chance(20)) {
    // Fixed batching (disaggregation requires continuous batching).
    sched.mode = BatchingMode::kFixed;
    sched.fixed_batch = static_cast<std::int64_t>(draw(2, 4));
  }
  sc.specs = uniform_fleet(n_replicas, core::StrategyKind::kMondeLoadBalanced,
                           sched, /*seed0=*/seed + 1);

  // --- Disaggregated prefill/decode --------------------------------------
  if (sc.cfg.disagg.enabled) {
    sc.cfg.disagg.prefill_replicas = (n_replicas >= 3 && chance(30)) ? 2 : 1;
    if (chance(30)) {
      sc.cfg.disagg.decode_admit_tokens = static_cast<std::int64_t>(draw(32, 96));
    }
    if (chance(30)) {
      sc.cfg.disagg.handoff_link = interconnect::LinkSpec::pcie_gen3_x16();
    }
  }

  // --- Prefix cache / recovery modes -------------------------------------
  if (chance(60)) {
    sc.cfg.cache.enabled = true;
    sc.cfg.cache.capacity_tokens = std::int64_t{1} << draw(8, 12);
    sc.cfg.cache.survive_failstop = chance(50);
    sc.cfg.cache.migrate_on_retire = chance(50);
    if (chance(40)) {
      sc.cfg.cache.checkpoint_interval_tokens = static_cast<std::int64_t>(draw(2, 8));
    }
  }

  // --- Expert-aware serving ----------------------------------------------
  if (chance(40)) {
    sc.cfg.expert.enabled = true;
    sc.cfg.expert.cache_capacity = draw(4, 24);
    if (chance(40)) {
      sc.cfg.expert.rebalance_period = Duration::millis(static_cast<double>(draw(5, 20)));
    }
    if (chance(30)) {
      sc.cfg.expert.prune_outstanding_tokens = static_cast<std::int64_t>(draw(64, 256));
      sc.cfg.expert.prune_width = 1;
    }
  }

  // --- Faults -------------------------------------------------------------
  // One fail-stop at most, and only on a replica whose death leaves every
  // pool non-empty (a dead last member would rightly abort the run).
  if (chance(50)) {
    std::vector<std::size_t> victims;
    const std::size_t prefill =
        sc.cfg.disagg.enabled ? sc.cfg.disagg.prefill_replicas : 0;
    for (std::size_t i = 0; i < n_replicas; ++i) {
      if (!sc.cfg.disagg.enabled) {
        victims.push_back(i);  // n_replicas >= 2: someone always survives
      } else if (i < prefill ? prefill >= 2 : n_replicas - prefill >= 2) {
        victims.push_back(i);
      }
    }
    if (!victims.empty()) {
      const std::size_t v = victims[draw(0, victims.size() - 1)];
      sc.specs[v].fault.fail_at = Duration::millis(static_cast<double>(draw(8, 60)));
    }
  }
  if (chance(30)) {
    // A slow-down window on some (possibly also failing) replica.
    const std::size_t v = draw(0, n_replicas - 1);
    sc.specs[v].fault.slow_from = Duration::millis(static_cast<double>(draw(0, 10)));
    sc.specs[v].fault.slow_until =
        sc.specs[v].fault.slow_from + Duration::millis(static_cast<double>(draw(10, 40)));
    sc.specs[v].fault.slow_factor = 1.0 + static_cast<double>(draw(1, 6)) * 0.5;
    if (chance(50)) sc.cfg.health.slow_ewma_factor = 1.5;  // engage the EWMA filter
  }

  // --- Autoscaling ---------------------------------------------------------
  if (chance(40)) {
    sc.autoscaled = true;
    sc.autoscale.min_replicas = draw(1, 2);
    sc.autoscale.max_replicas = n_replicas + draw(1, 3);
    sc.autoscale.high_tokens_per_replica = static_cast<std::int64_t>(draw(48, 192));
    sc.autoscale.low_tokens_per_replica = static_cast<std::int64_t>(draw(8, 32));
    if (chance(30)) sc.autoscale.cooldown = Duration::millis(static_cast<double>(draw(5, 15)));
    sc.cfg.autoscale_period = Duration::millis(static_cast<double>(draw(3, 8)));
  }

  // --- Dispatch policy -----------------------------------------------------
  constexpr DispatchPolicy kPolicies[] = {
      DispatchPolicy::kRoundRobin,          DispatchPolicy::kJoinShortestQueue,
      DispatchPolicy::kLeastOutstandingTokens, DispatchPolicy::kPowerOfTwoChoices,
      DispatchPolicy::kExpertAffinity,      DispatchPolicy::kExpertSharded,
      DispatchPolicy::kPrefixHash,          DispatchPolicy::kPrefixAffinity,
  };
  sc.policy = kPolicies[draw(0, std::size(kPolicies) - 1)];
  sc.dispatch_seed = draw(1, 1 << 20);

  // --- Trace ---------------------------------------------------------------
  RequestShape shape = small_shape();
  if (chance(40)) {  // decode-heavy mix: deeper decodes outlive the faults
    shape.new_tokens_min = 16;
    shape.new_tokens_max = 48;
  }
  if (chance(30)) shape.prompt_max = 96;
  if (chance(45)) {  // shared prefixes feed the KV caches + prefix policies
    shape.prefix_groups = static_cast<int>(draw(2, 5));
    shape.shared_fraction = 0.5 + 0.1 * static_cast<double>(draw(0, 4));
    shape.shared_prefix_len = static_cast<std::int64_t>(draw(4, 12));
    if (chance(50)) {  // skewed tenant popularity (the multi-tenant shape)
      shape.prefix_zipf_s = 0.5 * static_cast<double>(draw(1, 3));
    }
  }
  const int n_req = static_cast<int>(draw(24, 48));
  const std::uint64_t trace_seed = seed ^ 0xc0ffee;
  if (chance(50)) {
    sc.trace = poisson_trace(n_req, static_cast<double>(draw(150, 600)), shape, trace_seed);
  } else {
    sc.trace = bursty_trace(n_req, static_cast<int>(draw(4, 8)),
                            Duration::millis(static_cast<double>(draw(4, 12))), shape,
                            trace_seed);
  }
  sc.shape = shape;
  return sc;
}

// The whole point of the harness is breadth: if a refactor of the generator
// (or an over-eager constraint) silently stopped exercising a dimension,
// every seed would still pass and the suite would rot into a no-op. Pin that
// the fast sweep alone crosses each feature at least once.
TEST(RandomDiff, LatticeCoverageSpansEveryDimension) {
  int disagg = 0, cache = 0, survive = 0, cadence = 0, expert = 0, rebalance = 0,
      autoscaled = 0, failstop = 0, slowdown = 0, fixed = 0, size_aware = 0,
      admit_cap = 0, two_prefill = 0, prefix_trace = 0, zipf_trace = 0,
      prefix_policy = 0;
  for (const std::uint64_t seed : kFastSeeds) {
    const Scenario sc = random_scenario(seed);
    prefix_trace += sc.shape.prefix_groups > 0;
    zipf_trace += sc.shape.prefix_zipf_s > 0.0;
    prefix_policy += sc.policy == DispatchPolicy::kPrefixHash ||
                     sc.policy == DispatchPolicy::kPrefixAffinity;
    disagg += sc.cfg.disagg.enabled;
    admit_cap += sc.cfg.disagg.enabled && sc.cfg.disagg.decode_admit_tokens > 0;
    two_prefill += sc.cfg.disagg.enabled && sc.cfg.disagg.prefill_replicas == 2;
    cache += sc.cfg.cache.enabled;
    survive += sc.cfg.cache.enabled && sc.cfg.cache.survive_failstop;
    cadence += sc.cfg.cache.enabled && sc.cfg.cache.checkpoint_interval_tokens > 0;
    expert += sc.cfg.expert.enabled;
    rebalance += sc.cfg.expert.enabled &&
                 sc.cfg.expert.rebalance_period > Duration::zero();
    autoscaled += sc.autoscaled;
    fixed += sc.specs[0].sched.mode == BatchingMode::kFixed;
    size_aware += sc.specs[0].sched.size_aware_admission;
    for (const ReplicaSpec& spec : sc.specs) {
      if (spec.fault.fail_stop()) ++failstop;
      if (spec.fault.slow_factor != 1.0) ++slowdown;
    }
  }
  EXPECT_GT(disagg, 0);
  EXPECT_GT(admit_cap, 0);
  EXPECT_GT(two_prefill, 0);
  EXPECT_GT(cache, 0);
  EXPECT_GT(survive, 0);
  EXPECT_GT(cadence, 0);
  EXPECT_GT(expert, 0);
  EXPECT_GT(rebalance, 0);
  EXPECT_GT(autoscaled, 0);
  EXPECT_GT(failstop, 0);
  EXPECT_GT(slowdown, 0);
  EXPECT_GT(fixed, 0);
  EXPECT_GT(size_aware, 0);
  EXPECT_GT(prefix_trace, 0);
  EXPECT_GT(zipf_trace, 0);
  EXPECT_GT(prefix_policy, 0);
}

TEST(RandomDiff, SeededLatticeAgreesAcrossLoopsAndThreadCounts) {
  for (const std::uint64_t seed : sweep_seeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    expect_threads_agree(random_scenario(seed));
    if (HasFatalFailure()) return;  // one seed's report dump is enough
  }
}

}  // namespace
}  // namespace monde::serve
