// Failure-injection and edge-case tests: degenerate workloads, capacity
// exhaustion, misconfiguration, and corrupted wire data.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "core/engine.hpp"
#include "core/load_balancer.hpp"
#include "interconnect/instruction.hpp"

namespace monde::core {
namespace {

moe::MoeModelConfig tiny() {
  moe::MoeModelConfig m = moe::MoeModelConfig::switch_variant(512, 16);
  m.encoder_blocks = 2;
  m.decoder_blocks = 2;
  m.moe_every = 2;
  m.vocab_size = 4096;
  return m;
}

struct Platform {
  SystemConfig sys = SystemConfig::dac24();
  moe::MoeModelConfig model = tiny();
  compute::GpuModel gpu{sys.gpu};
  compute::CpuModel cpu{sys.cpu};
  compute::TransformerCostModel xformer{gpu, model.dtype};
  std::shared_ptr<ndp::NdpCoreSim> sim =
      std::make_shared<ndp::NdpCoreSim>(sys.ndp, sys.monde_mem);
  std::vector<std::unique_ptr<MondeDevice>> devices;

  Platform() {
    devices.push_back(std::make_unique<MondeDevice>(0, sim));
    devices.back()->place_model(model, 1);
  }

  StrategyContext ctx() {
    StrategyContext c;
    c.sys = &sys;
    c.model = &model;
    c.gpu = &gpu;
    c.cpu = &cpu;
    c.xformer = &xformer;
    for (auto& d : devices) c.devices.push_back(d.get());
    return c;
  }
};

TEST(FailureInjection, LayerWithNoRoutedTokensIsHarmless) {
  // A layer where gating dropped every token (all counts zero): strategies
  // must schedule gating+combine only and report zero experts.
  Platform p;
  moe::MoeLayerWork work;
  work.total_tokens = 4;
  work.top_k = 1;
  work.tokens_per_expert.assign(16, 0);
  for (const StrategyKind kind : {StrategyKind::kIdealGpu, StrategyKind::kGpuPmove,
                                  StrategyKind::kMondeAmove,
                                  StrategyKind::kMondeLoadBalanced,
                                  StrategyKind::kCpuAmove}) {
    sim::StreamSchedule sched;
    const HwStreams hw = HwStreams::create(sched, p.sys);
    auto strat = make_strategy(kind, p.ctx());
    const MoeLayerResult r = strat->run_layer(work, sched, hw, Duration::zero());
    EXPECT_EQ(r.experts_gpu + r.experts_ndp + r.experts_cpu, 0) << to_string(kind);
    EXPECT_GT(r.end, r.start) << to_string(kind);  // gating + combine still run
    EXPECT_TRUE(sched.timeline().validate().empty());
  }
}

TEST(FailureInjection, SingleExpertModelWorks) {
  moe::MoeModelConfig m = tiny();
  m.num_experts = 1;
  m.top_k = 1;
  InferenceEngine eng{SystemConfig::dac24(), m, moe::SkewProfile::uniform(),
                      StrategyKind::kMondeLoadBalanced, 3};
  const RunReport r = eng.run_encoder(1, 64);
  EXPECT_GT(r.total, Duration::zero());
  for (const auto& l : r.layers) {
    EXPECT_EQ(l.experts_gpu + l.experts_ndp, 1);
  }
}

TEST(FailureInjection, MondeStrategiesRequireDevices) {
  Platform p;
  p.sys.num_monde_devices = 0;
  StrategyContext c = p.ctx();
  c.devices.clear();
  EXPECT_THROW(make_strategy(StrategyKind::kMondeLoadBalanced, c), Error);
  // MD+AM constructs but must fail loudly when asked to schedule.
  auto am = make_strategy(StrategyKind::kMondeAmove, c);
  sim::StreamSchedule sched;
  const HwStreams hw = HwStreams::create(sched, p.sys);
  moe::WorkloadGenerator gen{p.model, moe::SkewProfile::switch_like(), 1};
  const auto work = gen.encoder_pass(1, 64).moe_layers[0];
  EXPECT_THROW(am->run_layer(work, sched, hw, Duration::zero()), Error);
}

TEST(FailureInjection, DevicePlacementExhaustsCleanly) {
  // An expert working set beyond the 256-GiB weight partition must throw
  // with a capacity diagnosis, not corrupt state.
  auto sys = SystemConfig::dac24();
  auto sim = std::make_shared<ndp::NdpCoreSim>(sys.ndp, sys.monde_mem);
  MondeDevice dev{0, sim};
  moe::MoeModelConfig huge = moe::MoeModelConfig::nllb_moe_128();
  huge.dff = 8192 * 40;  // ~2.7 GB per expert x 128 x 12 layers >> 256 GiB
  try {
    dev.place_model(huge, 1);
    FAIL() << "expected capacity exhaustion";
  } catch (const Error& e) {
    EXPECT_NE(std::string{e.what()}.find("exhausted"), std::string::npos);
  }
}

TEST(FailureInjection, ActivationArenaResetEnablesLongRuns) {
  // compile_expert_op consumes activation-arena space; periodic per-layer
  // resets (the paper's fixed per-layer allocation) keep it bounded.
  Platform p;
  MondeDevice& dev = *p.devices[0];
  for (int round = 0; round < 200; ++round) {
    (void)dev.compile_expert_op({0, round % 16}, 64, p.model);
    if (round % 8 == 7) dev.allocator().reset_activations();
  }
  SUCCEED();
}

TEST(FailureInjection, CorruptedFlitRejectedOrInert) {
  // All-zero payload: opcode 0 (kNop) decodes, but must not claim NDP.
  interconnect::InstructionBytes zeros{};
  EXPECT_FALSE(interconnect::is_ndp_flit(zeros));
  const auto inst = interconnect::decode(zeros);
  EXPECT_EQ(inst.opcode, interconnect::Opcode::kNop);
  EXPECT_FALSE(inst.is_ndp);
}

TEST(FailureInjection, NdpSlowdownWhenRateMismatched) {
  // Halving the NDP clock without touching memory must not speed anything up.
  auto sys = SystemConfig::dac24();
  ndp::NdpCoreSim fast{sys.ndp, sys.monde_mem};
  ndp::NdpCoreSim slow{sys.ndp.rate_matched(0.5), sys.monde_mem};
  const compute::ExpertShape e{8, 1024, 4096};
  EXPECT_GE(slow.simulate_expert(e, compute::DataType::kBf16).latency.ns(),
            fast.simulate_expert(e, compute::DataType::kBf16).latency.ns());
}

TEST(FailureInjection, ProfiledBandwidthChangesH) {
  Platform p;
  MondeLoadBalanced lb{p.ctx()};
  moe::WorkloadGenerator gen{p.model, moe::SkewProfile::switch_like(), 5};
  const auto work = gen.encoder_pass(4, 512).moe_layers[0];
  const int h_spec = lb.h_from_equation6(work, 8.0);
  // Pretend profiling found the device delivering only a tenth of spec:
  // Equation 6 should shift experts toward the GPU (larger H).
  lb.set_profiled_bandwidths(p.sys.pcie.effective_bandwidth(),
                             p.sys.monde_mem.total_peak_bandwidth() * 0.1);
  const int h_prof = lb.h_from_equation6(work, 8.0);
  EXPECT_GT(h_prof, h_spec);
  // Reverting restores the specification value.
  lb.set_profiled_bandwidths(Bandwidth{}, Bandwidth{});
  EXPECT_EQ(lb.h_from_equation6(work, 8.0), h_spec);
}

TEST(FailureInjection, DecoderRejectsBadArguments) {
  InferenceEngine eng{SystemConfig::dac24(), tiny(), moe::SkewProfile::switch_like(),
                      StrategyKind::kIdealGpu, 1};
  EXPECT_THROW(eng.run_decoder(0, 4), Error);
  EXPECT_THROW(eng.run_decoder(1, 0), Error);
  EXPECT_THROW(eng.run_encoder(-1, 16), Error);
}

TEST(FailureInjection, TuningWindowBoundedUnderManyLayers) {
  Platform p;
  MondeLoadBalanced lb{p.ctx()};
  lb.tune_period = 2;
  sim::StreamSchedule sched;
  const HwStreams hw = HwStreams::create(sched, p.sys);
  moe::WorkloadGenerator gen{p.model, moe::SkewProfile::switch_like(), 9};
  Duration t = Duration::zero();
  for (int i = 0; i < 40; ++i) {
    const auto work = gen.encoder_pass(1, 64).moe_layers[0];
    const auto r = lb.run_layer(work, sched, hw, t);
    t = r.end;
  }
  EXPECT_TRUE(sched.timeline().validate().empty());
  EXPECT_GT(lb.alpha(), 0.0);
}

}  // namespace
}  // namespace monde::core
