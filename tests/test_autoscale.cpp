// Unit tests for the elastic cluster layer: the queue-pressure autoscaling
// policy, warm-up (cold-start) modelling, scale-down, alive-time-weighted
// utilization, and determinism of autoscaled runs.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"

namespace monde::serve {
namespace {

/// A small MoE model that keeps cycle-level simulations fast.
moe::MoeModelConfig tiny_model() {
  moe::MoeModelConfig m = moe::MoeModelConfig::switch_variant(512, 16);
  m.encoder_blocks = 4;
  m.decoder_blocks = 4;
  m.moe_every = 2;
  m.vocab_size = 8192;
  m.top_k = 2;
  m.name = "tiny-test-model";
  return m;
}

RequestShape small_shape() {
  RequestShape s;
  s.prompt_min = 16;
  s.prompt_max = 48;
  s.new_tokens_min = 2;
  s.new_tokens_max = 8;
  return s;
}

AutoscaleConfig test_policy() {
  AutoscaleConfig as;
  as.min_replicas = 1;
  as.max_replicas = 4;
  as.high_tokens_per_replica = 64;
  as.low_tokens_per_replica = 8;
  return as;
}

AutoscaleSignals signals(std::size_t ready, std::size_t warming, std::int64_t tokens,
                         double p95_delay_ms = 0.0) {
  AutoscaleSignals s;
  s.now = Duration::millis(10);
  s.ready_replicas = ready;
  s.warming_replicas = warming;
  s.outstanding_tokens = tokens;
  s.p95_queue_delay_ms = p95_delay_ms;
  return s;
}

// --- Queue-pressure policy (no engine involved) -------------------------------

TEST(QueuePressurePolicy, ScalesUpAboveHighWatermarkAndClampsAtMax) {
  auto as = make_queue_pressure_autoscaler(test_policy());
  EXPECT_EQ(as->target_size(signals(2, 0, 300)), 3u);   // 150/replica > 64
  EXPECT_EQ(as->target_size(signals(4, 0, 9000)), 4u);  // already at max
}

TEST(QueuePressurePolicy, HoldsInsideTheHysteresisBand) {
  auto as = make_queue_pressure_autoscaler(test_policy());
  EXPECT_EQ(as->target_size(signals(2, 0, 64)), 2u);  // 32/replica: between 8 and 64
}

TEST(QueuePressurePolicy, ScalesDownBelowLowWatermarkButNeverBelowMin) {
  auto as = make_queue_pressure_autoscaler(test_policy());
  EXPECT_EQ(as->target_size(signals(3, 0, 6)), 2u);  // 2/replica < 8
  EXPECT_EQ(as->target_size(signals(1, 0, 0)), 1u);  // idle, already at min
}

TEST(QueuePressurePolicy, NeverShrinksWhileAReplicaIsWarming) {
  auto as = make_queue_pressure_autoscaler(test_policy());
  EXPECT_EQ(as->target_size(signals(2, 1, 0)), 3u);  // idle but warm-up pending
}

TEST(QueuePressurePolicy, QueueDelayTriggerFiresIndependently) {
  AutoscaleConfig cfg = test_policy();
  cfg.high_queue_delay_ms = 15.0;
  auto as = make_queue_pressure_autoscaler(cfg);
  // Tokens per replica sit inside the band, but the queue tail is old.
  EXPECT_EQ(as->target_size(signals(2, 0, 64, /*p95_delay_ms=*/20.0)), 3u);
  EXPECT_EQ(as->target_size(signals(2, 0, 64, /*p95_delay_ms=*/10.0)), 2u);
}

TEST(QueuePressurePolicy, CooldownHoldsTheFleetSteady) {
  AutoscaleConfig cfg = test_policy();
  cfg.cooldown = Duration::millis(50);
  auto as = make_queue_pressure_autoscaler(cfg);
  AutoscaleSignals hot = signals(1, 0, 500);
  hot.now = Duration::millis(10);
  EXPECT_EQ(as->target_size(hot), 2u);  // first decision scales up
  hot.now = Duration::millis(20);
  EXPECT_EQ(as->target_size(hot), 1u);  // inside cooldown: hold (capacity is 1)
  hot.now = Duration::millis(70);
  EXPECT_EQ(as->target_size(hot), 2u);  // cooldown expired
}

TEST(QueuePressurePolicy, RejectsBadConfig) {
  AutoscaleConfig cfg = test_policy();
  cfg.max_replicas = 0;
  EXPECT_THROW((void)make_queue_pressure_autoscaler(cfg), Error);
  cfg = test_policy();
  cfg.high_tokens_per_replica = cfg.low_tokens_per_replica;
  EXPECT_THROW((void)make_queue_pressure_autoscaler(cfg), Error);
  cfg = test_policy();
  cfg.step = 0;
  EXPECT_THROW((void)make_queue_pressure_autoscaler(cfg), Error);
}

// --- Autoscaled ClusterSim runs -----------------------------------------------

ClusterReport run_elastic(const std::vector<Request>& trace, ClusterConfig cfg,
                          AutoscaleConfig as, std::size_t boot_replicas = 1,
                          std::uint64_t dispatch_seed = 17) {
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                     moe::SkewProfile::switch_like(),
                     uniform_fleet(boot_replicas, core::StrategyKind::kMondeLoadBalanced,
                                   SchedulerConfig{}),
                     cfg};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kJoinShortestQueue, dispatch_seed);
  const auto autoscaler = make_queue_pressure_autoscaler(as);
  return cluster.run(trace, *dispatcher, autoscaler.get());
}

std::vector<Request> burst_trace() {
  return bursty_trace(32, /*burst_size=*/8, Duration::millis(30), small_shape(), /*seed=*/13);
}

TEST(Autoscale, TracksBurstyTraceWithBoundedQueueDelay) {
  // One boot replica cannot absorb the bursts; the autoscaler must grow the
  // fleet and keep the TTFT tail well under the static single-replica run.
  ClusterConfig cfg;
  cfg.warmup = Duration::millis(2);
  cfg.autoscale_period = Duration::millis(4);
  AutoscaleConfig as;
  as.min_replicas = 1;
  as.max_replicas = 4;
  as.high_tokens_per_replica = 48;
  as.low_tokens_per_replica = 8;
  as.high_queue_delay_ms = 10.0;
  const auto trace = burst_trace();
  const ClusterReport elastic = run_elastic(trace, cfg, as);

  ClusterSim fixed{core::SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                   uniform_fleet(1, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{}),
                   cfg};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kJoinShortestQueue, 17);
  const ClusterReport baseline = fixed.run(trace, *dispatcher);

  EXPECT_GT(elastic.peak_replicas, 1u);
  EXPECT_LT(elastic.ttft_ms.p95, baseline.ttft_ms.p95);
  EXPECT_LT(elastic.e2e_ms.p95, baseline.e2e_ms.p95);
  // Every request served exactly once, scale-ups recorded.
  EXPECT_EQ(elastic.requests.size(), trace.size());
  bool scaled_up = false;
  for (const ClusterEvent& ev : elastic.events) {
    scaled_up = scaled_up || ev.kind == ClusterEvent::Kind::kScaleUp;
  }
  EXPECT_TRUE(scaled_up);
  EXPECT_EQ(elastic.autoscaler, "queue-pressure");
}

TEST(Autoscale, WarmupDelaysASpawnedReplicasFirstStep) {
  ClusterConfig cfg;
  cfg.warmup = Duration::millis(8);
  cfg.autoscale_period = Duration::millis(4);
  const ClusterReport rep = run_elastic(burst_trace(), cfg, test_policy());
  std::size_t spawned_with_steps = 0;
  for (const ReplicaReport& rr : rep.replicas) {
    if (rr.spawned_at == Duration::zero() || rr.serve.steps.empty()) continue;
    ++spawned_with_steps;
    // The cold start is real: no step starts inside [spawn, spawn + warmup).
    EXPECT_GE(rr.serve.steps.front().start, rr.spawned_at + cfg.warmup) << rr.name;
  }
  EXPECT_GT(spawned_with_steps, 0u);  // the trace forced a scale-up that served work
}

TEST(Autoscale, ScaleDownRetiresReplicasThatStillDrain) {
  // A front-loaded burst followed by a long sparse tail: pressure collapses
  // after the burst and the autoscaler must give capacity back.
  std::vector<Request> trace = bursty_trace(16, 16, Duration::millis(1), small_shape(), 3);
  const auto tail = poisson_trace(10, 15.0, small_shape(), 4);
  for (Request rq : tail) {
    rq.id += 100;
    rq.arrival += Duration::millis(60);
    trace.push_back(rq);
  }
  ClusterConfig cfg;
  cfg.warmup = Duration::millis(2);
  cfg.autoscale_period = Duration::millis(4);
  AutoscaleConfig as = test_policy();
  as.high_tokens_per_replica = 48;
  as.low_tokens_per_replica = 24;
  const ClusterReport rep = run_elastic(trace, cfg, as);

  bool retired = false;
  for (const ReplicaReport& rr : rep.replicas) {
    if (!rr.retired) continue;
    retired = true;
    // A retirement releases the capacity once the drain completes: the
    // alive window must not be billed through to the fleet makespan.
    EXPECT_LT(rr.alive_until, rep.makespan) << rr.name;
    if (!rr.serve.steps.empty()) {
      EXPECT_GE(rr.alive_until, rr.serve.makespan) << rr.name;
    }
  }
  EXPECT_TRUE(retired);
  // Retirement never loses work: the union still covers the whole trace.
  EXPECT_EQ(rep.requests.size(), trace.size());
  std::set<std::uint64_t> ids;
  for (const auto& m : rep.requests) ids.insert(m.id);
  EXPECT_EQ(ids.size(), trace.size());
}

TEST(Autoscale, UtilizationIsWeightedByAliveWindow) {
  // Regression for the fleet-aggregation fix: a replica spawned mid-run must
  // be normalized by its own alive window, not the whole fleet makespan --
  // else elastic fleets would report absurdly low utilization for capacity
  // that was only provisioned briefly.
  ClusterConfig cfg;
  cfg.warmup = Duration::millis(2);
  cfg.autoscale_period = Duration::millis(4);
  const ClusterReport rep = run_elastic(burst_trace(), cfg, test_policy());
  double busy_ns = 0.0, alive_ns = 0.0;
  bool saw_late_spawn = false;
  for (const ReplicaReport& rr : rep.replicas) {
    const Duration window = rr.alive_until - rr.spawned_at;
    ASSERT_GE(window, Duration::zero()) << rr.name;
    EXPECT_LE(rr.spawned_at, rr.alive_until) << rr.name;
    EXPECT_LE(rr.utilization, 1.0 + 1e-9) << rr.name;
    if (window > Duration::zero()) {
      EXPECT_NEAR(rr.utilization, rr.serve.busy / window, 1e-12) << rr.name;
    }
    if (rr.spawned_at > Duration::zero() && rr.serve.busy > Duration::zero()) {
      saw_late_spawn = true;
      // The old (whole-makespan) normalization strictly under-reports a
      // late-spawned replica's occupancy.
      EXPECT_GT(rr.utilization, rr.serve.busy / rep.makespan) << rr.name;
    }
    busy_ns += rr.serve.busy.ns();
    alive_ns += window.ns();
  }
  ASSERT_TRUE(saw_late_spawn);
  EXPECT_NEAR(rep.fleet_utilization, busy_ns / alive_ns, 1e-12);
  EXPECT_NEAR(rep.replica_seconds, alive_ns * 1e-9, 1e-12);
}

TEST(Autoscale, DeterministicGivenSeeds) {
  ClusterConfig cfg;
  cfg.warmup = Duration::millis(3);
  cfg.autoscale_period = Duration::millis(4);
  const auto trace = burst_trace();
  const ClusterReport a = run_elastic(trace, cfg, test_policy());
  const ClusterReport b = run_elastic(trace, cfg, test_policy());
  ASSERT_EQ(a.replicas.size(), b.replicas.size());
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].id, b.requests[i].id);
    EXPECT_DOUBLE_EQ(a.requests[i].ttft().ns(), b.requests[i].ttft().ns());
    EXPECT_DOUBLE_EQ(a.requests[i].e2e().ns(), b.requests[i].e2e().ns());
  }
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_DOUBLE_EQ(a.events[i].time.ns(), b.events[i].time.ns());
    EXPECT_EQ(a.events[i].replica, b.events[i].replica);
  }
  EXPECT_DOUBLE_EQ(a.makespan.ns(), b.makespan.ns());
  EXPECT_DOUBLE_EQ(a.replica_seconds, b.replica_seconds);
}

TEST(Autoscale, DrainPhaseTicksFireLateScaleDowns) {
  // Every arrival lands at t = 0, so every autoscale tick is a drain-phase
  // tick. Before the drain-tick fix no tick ever fired here and all three
  // replicas were billed through to the fleet makespan; now the autoscaler
  // keeps evaluating while work remains and releases idle capacity early.
  const auto trace = closed_loop_trace(12, small_shape(), 7);
  ClusterConfig cfg;
  cfg.autoscale_period = Duration::millis(2);
  AutoscaleConfig down = test_policy();
  down.max_replicas = 3;
  down.high_tokens_per_replica = 1 << 20;  // never up...
  down.low_tokens_per_replica = 1 << 19;   // ...always down
  const ClusterReport rep = run_elastic(trace, cfg, down, /*boot_replicas=*/3);

  ASSERT_EQ(rep.requests.size(), trace.size());
  std::size_t scale_downs = 0;
  for (const ClusterEvent& ev : rep.events) {
    EXPECT_NE(ev.kind, ClusterEvent::Kind::kScaleUp);
    if (ev.kind == ClusterEvent::Kind::kScaleDown) {
      ++scale_downs;
      EXPECT_GT(ev.time, Duration::zero());  // strictly after the last arrival
    }
  }
  EXPECT_GT(scale_downs, 0u);
  // Replica-seconds accounting (regression): the sum of alive windows must
  // match, and at least one retiree released capacity before the makespan.
  double alive_ns = 0.0;
  bool early_release = false;
  for (const ReplicaReport& rr : rep.replicas) {
    alive_ns += (rr.alive_until - rr.spawned_at).ns();
    early_release = early_release || (rr.retired && rr.alive_until < rep.makespan);
  }
  EXPECT_NEAR(rep.replica_seconds, alive_ns * 1e-9, 1e-12);
  EXPECT_TRUE(early_release);
  EXPECT_LT(rep.replica_seconds, 3.0 * rep.makespan.sec());

  // The dual guard: a scale-up-hungry policy gets clamped during drain --
  // spawning capacity no arrival will ever reach is pure waste.
  AutoscaleConfig up = test_policy();
  up.max_replicas = 4;
  up.high_tokens_per_replica = 1;  // always wants another replica
  up.low_tokens_per_replica = 0;
  const ClusterReport held = run_elastic(trace, cfg, up, /*boot_replicas=*/2);
  ASSERT_EQ(held.requests.size(), trace.size());
  for (const ClusterEvent& ev : held.events) {
    EXPECT_NE(ev.kind, ClusterEvent::Kind::kScaleUp);
  }
  EXPECT_EQ(held.peak_replicas, 2u);
}

TEST(Autoscale, DrainTicksTerminateWithStuckFixedBatch) {
  // Regression for a drain-tick livelock: a fixed-batching replica holding
  // an under-full batch cannot serve it until drain() seals the scheduler,
  // so its in_flight work must NOT keep the autoscaler ticking forever --
  // the loop has to fall through to drain() and let the partial batch run.
  SchedulerConfig fixed;
  fixed.mode = BatchingMode::kFixed;
  fixed.fixed_batch = 8;
  ClusterConfig cfg;
  cfg.autoscale_period = Duration::millis(2);
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                     uniform_fleet(1, core::StrategyKind::kMondeLoadBalanced, fixed), cfg};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kRoundRobin);
  const auto autoscaler = make_queue_pressure_autoscaler(test_policy());
  // 3 < fixed_batch requests: without the liveness cut this never returns.
  const ClusterReport rep =
      cluster.run(closed_loop_trace(3, small_shape(), 5), *dispatcher, autoscaler.get());
  ASSERT_EQ(rep.requests.size(), 3u);
  for (const RequestMetrics& m : rep.requests) EXPECT_GT(m.generated, 0);
}

TEST(Autoscale, ConfigValidation) {
  ClusterConfig cfg;
  cfg.retry_timeout = Duration::zero();
  EXPECT_THROW(cfg.validate(), Error);
  cfg = ClusterConfig{};
  cfg.autoscale_period = Duration::zero();
  EXPECT_THROW(cfg.validate(), Error);
  cfg = ClusterConfig{};
  cfg.health.heartbeat_timeout = cfg.health.heartbeat_interval / 2.0;
  EXPECT_THROW(cfg.validate(), Error);
}

}  // namespace
}  // namespace monde::serve
