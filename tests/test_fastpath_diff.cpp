// Differential tests for the event-driven DRAM/NDP fast path.
//
// The fast path (DramSystem::advance_until fast-forwarding between events,
// plus NdpCoreSim's homogeneous chunk-batch draining) must be cycle-exact
// with the per-cycle reference mode (MONDE_EXHAUSTIVE_TICK /
// set_exhaustive_tick). These tests sweep a grid of small GEMM and expert
// shapes under both bank-partitioning settings and require every observable
// of the kernel result to agree bit-for-bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <tuple>

#include "core/system_config.hpp"
#include "dram/dram_system.hpp"
#include "ndp/ndp_core.hpp"

namespace monde::ndp {
namespace {

dram::Spec small_mem() {
  // Small topology keeps the exhaustive reference affordable while still
  // exercising multi-channel scheduling, refresh, and bank partitioning.
  dram::Spec s = dram::Spec::monde_lpddr5x_8533();
  s.org.channels = 2;
  s.org.ranks = 2;
  s.org.rows = 512;
  return s;
}

NdpSpec small_ndp() { return core::SystemConfig::dac24().ndp; }

void expect_identical(const NdpKernelResult& fast, const NdpKernelResult& ref,
                      const std::string& what) {
  EXPECT_EQ(fast.latency.ns(), ref.latency.ns()) << what;
  EXPECT_EQ(fast.compute_cycles, ref.compute_cycles) << what;
  EXPECT_EQ(fast.read_blocks, ref.read_blocks) << what;
  EXPECT_EQ(fast.write_blocks, ref.write_blocks) << what;
  EXPECT_EQ(fast.row_hit_rate, ref.row_hit_rate) << what;
  EXPECT_EQ(fast.achieved_bandwidth.as_bytes_per_sec(),
            ref.achieved_bandwidth.as_bytes_per_sec())
      << what;
}

TEST(FastPathDiff, GemmGridMatchesExhaustiveTicking) {
  NdpCoreSim sim{small_ndp(), small_mem()};
  const std::int64_t ms[] = {1, 3, 4};
  const std::int64_t ns[] = {256, 320};
  const std::int64_t ks[] = {128, 384};
  for (const bool partition : {true, false}) {
    sim.bank_partitioning = partition;
    for (const auto m : ms) {
      for (const auto n : ns) {
        for (const auto k : ks) {
          const compute::GemmShape shape{m, n, k};
          sim.exhaustive_tick = false;
          const auto fast = sim.simulate_gemm(shape, compute::DataType::kBf16);
          sim.exhaustive_tick = true;
          const auto ref = sim.simulate_gemm(shape, compute::DataType::kBf16);
          std::ostringstream what;
          what << "gemm m=" << m << " n=" << n << " k=" << k << " partition=" << partition;
          expect_identical(fast, ref, what.str());
          EXPECT_TRUE(fast.cycle_accurate) << what.str();
        }
      }
    }
  }
}

TEST(FastPathDiff, ExpertShapesMatchExhaustiveTicking) {
  // Whole experts chain two kernels and exercise the writeback-release and
  // prefetch-window gates between them.
  NdpCoreSim sim{small_ndp(), small_mem()};
  for (const bool partition : {true, false}) {
    sim.bank_partitioning = partition;
    for (const std::int64_t tokens : {1, 2, 5}) {
      const compute::ExpertShape e{tokens, 512, 1024};
      sim.exhaustive_tick = false;
      const auto fast = sim.simulate_expert(e, compute::DataType::kBf16);
      sim.exhaustive_tick = true;
      const auto ref = sim.simulate_expert(e, compute::DataType::kBf16);
      std::ostringstream what;
      what << "expert tokens=" << tokens << " partition=" << partition;
      expect_identical(fast, ref, what.str());
    }
  }
}

TEST(FastPathDiff, DramStreamDrainMatchesExhaustiveTicking) {
  // Pure DRAM-level check, no NDP pipeline: a sequential read/write stream
  // pushed through run_until_idle must retire the same commands at the same
  // cycles in both modes.
  auto run = [](bool exhaustive) {
    dram::DramSystem sys{small_mem()};
    sys.set_exhaustive_tick(exhaustive);
    const auto block = static_cast<std::uint64_t>(sys.spec().org.access_bytes);
    std::uint64_t injected = 0;
    while (injected < 4096) {
      while (injected < 4096 && sys.can_accept(injected * block)) {
        dram::Request r;
        r.addr = injected * block;
        r.type = injected % 7 == 3 ? dram::Request::Type::kWrite : dram::Request::Type::kRead;
        sys.enqueue(std::move(r));
        ++injected;
      }
      sys.advance();
    }
    sys.run_until_idle();
    return std::tuple{sys.cycle(), sys.stats().activates, sys.stats().refreshes,
                      sys.stats().row_hits, sys.stats().avg_read_latency_ns()};
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(FastPathDiff, ExhaustiveModeIsKeyedSeparatelyInMemo) {
  // Differential runs must never alias through the memo cache.
  NdpCoreSim sim{small_ndp(), small_mem()};
  const compute::ExpertShape e{2, 512, 1024};
  sim.exhaustive_tick = false;
  (void)sim.simulate_expert(e, compute::DataType::kBf16);
  const auto misses_before = sim.memo_misses();
  sim.exhaustive_tick = true;
  (void)sim.simulate_expert(e, compute::DataType::kBf16);
  EXPECT_EQ(sim.memo_misses(), misses_before + 1);
  sim.exhaustive_tick = false;
  const auto hits_before = sim.memo_hits();
  (void)sim.simulate_expert(e, compute::DataType::kBf16);
  EXPECT_EQ(sim.memo_hits(), hits_before + 1);
}

}  // namespace
}  // namespace monde::ndp
