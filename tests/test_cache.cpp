// Unit tests for the GPU-resident ExpertCache: LRU eviction order under
// interleaved access/insert, capacity-0 behaviour, and hit-rate accounting.
#include <gtest/gtest.h>

#include "core/expert_cache.hpp"

namespace monde::core {
namespace {

ExpertId id(int layer, int expert) { return ExpertId{layer, expert}; }

TEST(ExpertCache, EvictsLeastRecentlyUsedUnderInterleavedAccessAndInsert) {
  ExpertCache cache{2};
  cache.insert(id(0, 0));
  cache.insert(id(0, 1));  // recency order (most recent first): 1, 0
  EXPECT_TRUE(cache.access(id(0, 0)));  // refresh -> order: 0, 1
  cache.insert(id(0, 2));               // evicts 1, the LRU
  EXPECT_TRUE(cache.contains(id(0, 0)));
  EXPECT_FALSE(cache.contains(id(0, 1)));
  EXPECT_TRUE(cache.contains(id(0, 2)));
  EXPECT_EQ(cache.size(), 2u);

  // Re-inserting a resident expert refreshes recency without evicting.
  cache.insert(id(0, 0));  // order: 0, 2
  EXPECT_EQ(cache.size(), 2u);
  cache.insert(id(0, 3));  // evicts 2
  EXPECT_TRUE(cache.contains(id(0, 0)));
  EXPECT_FALSE(cache.contains(id(0, 2)));
  EXPECT_TRUE(cache.contains(id(0, 3)));

  // A missed access must not change recency: 3 is most recent, 0 is LRU.
  EXPECT_FALSE(cache.access(id(1, 7)));
  cache.insert(id(0, 4));  // evicts 0
  EXPECT_FALSE(cache.contains(id(0, 0)));
  EXPECT_TRUE(cache.contains(id(0, 3)));
}

TEST(ExpertCache, ExpertsOnDifferentLayersAreDistinct) {
  ExpertCache cache{2};
  cache.insert(id(0, 5));
  cache.insert(id(1, 5));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.access(id(0, 5)));
  EXPECT_TRUE(cache.access(id(1, 5)));
}

TEST(ExpertCache, CapacityZeroNeverCaches) {
  ExpertCache cache{0};
  EXPECT_EQ(cache.capacity(), 0u);
  EXPECT_FALSE(cache.access(id(0, 0)));
  cache.insert(id(0, 0));  // no-op
  EXPECT_FALSE(cache.contains(id(0, 0)));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.access(id(0, 0)));  // still a miss after insert
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

TEST(ExpertCache, HitRateAccounting) {
  ExpertCache cache{4};
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);  // no accesses yet: defined as 0
  EXPECT_FALSE(cache.access(id(0, 0)));     // miss
  cache.insert(id(0, 0));
  EXPECT_TRUE(cache.access(id(0, 0)));   // hit
  EXPECT_TRUE(cache.access(id(0, 0)));   // hit
  EXPECT_FALSE(cache.access(id(1, 0)));  // miss
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);

  // clear() drops contents but keeps the lifetime counters.
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_FALSE(cache.access(id(0, 0)));  // contents really gone
  EXPECT_EQ(cache.misses(), 3u);
}

}  // namespace
}  // namespace monde::core
