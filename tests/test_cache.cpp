// Unit tests for the GPU-resident ExpertCache: LRU eviction order under
// interleaved access/insert, capacity-0 behaviour, hit-rate accounting,
// stats_reset(), and the residency signature maintained for gating-aware
// dispatch.
#include <gtest/gtest.h>

#include "core/expert_cache.hpp"
#include "moe/expert_profile.hpp"

namespace monde::core {
namespace {

ExpertId id(int layer, int expert) { return ExpertId{layer, expert}; }

TEST(ExpertCache, EvictsLeastRecentlyUsedUnderInterleavedAccessAndInsert) {
  ExpertCache cache{2};
  cache.insert(id(0, 0));
  cache.insert(id(0, 1));  // recency order (most recent first): 1, 0
  EXPECT_TRUE(cache.access(id(0, 0)));  // refresh -> order: 0, 1
  cache.insert(id(0, 2));               // evicts 1, the LRU
  EXPECT_TRUE(cache.contains(id(0, 0)));
  EXPECT_FALSE(cache.contains(id(0, 1)));
  EXPECT_TRUE(cache.contains(id(0, 2)));
  EXPECT_EQ(cache.size(), 2u);

  // Re-inserting a resident expert refreshes recency without evicting.
  cache.insert(id(0, 0));  // order: 0, 2
  EXPECT_EQ(cache.size(), 2u);
  cache.insert(id(0, 3));  // evicts 2
  EXPECT_TRUE(cache.contains(id(0, 0)));
  EXPECT_FALSE(cache.contains(id(0, 2)));
  EXPECT_TRUE(cache.contains(id(0, 3)));

  // A missed access must not change recency: 3 is most recent, 0 is LRU.
  EXPECT_FALSE(cache.access(id(1, 7)));
  cache.insert(id(0, 4));  // evicts 0
  EXPECT_FALSE(cache.contains(id(0, 0)));
  EXPECT_TRUE(cache.contains(id(0, 3)));
}

TEST(ExpertCache, ExpertsOnDifferentLayersAreDistinct) {
  ExpertCache cache{2};
  cache.insert(id(0, 5));
  cache.insert(id(1, 5));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.access(id(0, 5)));
  EXPECT_TRUE(cache.access(id(1, 5)));
}

TEST(ExpertCache, CapacityZeroNeverCaches) {
  ExpertCache cache{0};
  EXPECT_EQ(cache.capacity(), 0u);
  EXPECT_FALSE(cache.access(id(0, 0)));
  cache.insert(id(0, 0));  // no-op
  EXPECT_FALSE(cache.contains(id(0, 0)));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.access(id(0, 0)));  // still a miss after insert
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

TEST(ExpertCache, HitRateAccounting) {
  ExpertCache cache{4};
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);  // no accesses yet: defined as 0
  EXPECT_FALSE(cache.access(id(0, 0)));     // miss
  cache.insert(id(0, 0));
  EXPECT_TRUE(cache.access(id(0, 0)));   // hit
  EXPECT_TRUE(cache.access(id(0, 0)));   // hit
  EXPECT_FALSE(cache.access(id(1, 0)));  // miss
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);

  // clear() drops contents but keeps the lifetime counters.
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_FALSE(cache.access(id(0, 0)));  // contents really gone
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(ExpertCache, StatsResetZeroesCountersButKeepsContents) {
  ExpertCache cache{2};
  EXPECT_FALSE(cache.access(id(0, 0)));  // miss
  cache.insert(id(0, 0));
  EXPECT_TRUE(cache.access(id(0, 0)));  // hit
  cache.stats_reset();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
  // Contents and recency survive: the resident expert still hits.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.access(id(0, 0)));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 1.0);
}

TEST(ExpertCache, SignatureTracksResidency) {
  ExpertCache cache{2};
  EXPECT_EQ(cache.signature(), 0u);
  cache.insert(id(0, 1));
  const std::uint64_t bit01 = std::uint64_t{1} << moe::expert_signature_bit(0, 1);
  EXPECT_EQ(cache.signature(), bit01);
  // Re-inserting a resident expert leaves the signature unchanged.
  cache.insert(id(0, 1));
  EXPECT_EQ(cache.signature(), bit01);

  cache.insert(id(0, 2));
  const std::uint64_t bit02 = std::uint64_t{1} << moe::expert_signature_bit(0, 2);
  EXPECT_EQ(cache.signature(), bit01 | bit02);

  // Evicting the LRU (0,1) clears its bit; inserting (0,3) sets its own.
  cache.insert(id(0, 3));
  const std::uint64_t bit03 = std::uint64_t{1} << moe::expert_signature_bit(0, 3);
  EXPECT_EQ(cache.signature(), bit02 | bit03);

  cache.clear();
  EXPECT_EQ(cache.signature(), 0u);
}

TEST(ExpertCache, SignatureRefcountsCollidingExperts) {
  // Two distinct experts that hash to the same signature bit: the bit must
  // stay set until BOTH leave. Find a colliding pair by brute force.
  const int target = moe::expert_signature_bit(0, 0);
  int other_layer = -1, other_expert = -1;
  for (int l = 0; l < 64 && other_layer < 0; ++l) {
    for (int e = 0; e < 64; ++e) {
      if (l == 0 && e == 0) continue;
      if (moe::expert_signature_bit(l, e) == target) {
        other_layer = l;
        other_expert = e;
        break;
      }
    }
  }
  ASSERT_GE(other_layer, 0) << "no colliding pair in a 64x64 sweep";

  ExpertCache cache{2};
  cache.insert(id(0, 0));
  cache.insert(id(other_layer, other_expert));
  const std::uint64_t bit = std::uint64_t{1} << target;
  EXPECT_EQ(cache.signature() & bit, bit);
  cache.insert(id(1, 1));  // evicts (0,0); the collider keeps the bit alive
  EXPECT_EQ(cache.signature() & bit, bit);
  cache.insert(id(1, 2));  // evicts the collider; now the bit drops
  EXPECT_EQ(cache.signature() & bit, 0u);
}

TEST(ExpertCache, EraseRemovesResidencyAndSignature) {
  ExpertCache cache{4};
  cache.insert(id(0, 1));
  cache.insert(id(0, 2));
  cache.erase(id(0, 1));
  EXPECT_FALSE(cache.contains(id(0, 1)));
  EXPECT_TRUE(cache.contains(id(0, 2)));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.signature(),
            std::uint64_t{1} << moe::expert_signature_bit(0, 2));

  // Erasing an absent expert is a no-op, and erase never counts as an
  // access: hit/miss statistics stay untouched.
  const std::uint64_t misses = cache.misses();
  cache.erase(id(0, 1));
  cache.erase(id(5, 5));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), misses);
  EXPECT_EQ(cache.hits(), 0u);

  // The freed slot is real capacity: a full cache that loses a member
  // accepts the next insert without evicting anyone else.
  ExpertCache full{2};
  full.insert(id(1, 0));
  full.insert(id(1, 1));
  full.erase(id(1, 0));
  full.insert(id(1, 2));
  EXPECT_TRUE(full.contains(id(1, 1)));
  EXPECT_TRUE(full.contains(id(1, 2)));
  EXPECT_EQ(full.size(), 2u);
}

}  // namespace
}  // namespace monde::core
