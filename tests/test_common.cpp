// Unit tests for the common substrate: units, RNG, statistics, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace monde {
namespace {

// --- Duration ---------------------------------------------------------------

TEST(Duration, ConversionsRoundTrip) {
  const Duration d = Duration::micros(12.5);
  EXPECT_DOUBLE_EQ(d.ns(), 12500.0);
  EXPECT_DOUBLE_EQ(d.us(), 12.5);
  EXPECT_DOUBLE_EQ(d.ms(), 0.0125);
  EXPECT_DOUBLE_EQ(d.sec(), 12.5e-6);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::nanos(100);
  const Duration b = Duration::nanos(50);
  EXPECT_DOUBLE_EQ((a + b).ns(), 150.0);
  EXPECT_DOUBLE_EQ((a - b).ns(), 50.0);
  EXPECT_DOUBLE_EQ((a * 2.0).ns(), 200.0);
  EXPECT_DOUBLE_EQ((a / 4.0).ns(), 25.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_EQ(max(a, b), a);
  EXPECT_EQ(min(a, b), b);
}

TEST(Duration, ComparisonAndAccumulation) {
  Duration t = Duration::zero();
  t += Duration::millis(1);
  t += Duration::micros(500);
  EXPECT_DOUBLE_EQ(t.ms(), 1.5);
  EXPECT_LT(Duration::nanos(1), Duration::micros(1));
  EXPECT_GT(Duration::infinite(), Duration::seconds(1e9));
}

TEST(Duration, HumanReadableString) {
  EXPECT_EQ(Duration::nanos(12).str(), "12.000 ns");
  EXPECT_EQ(Duration::micros(3.5).str(), "3.500 us");
  EXPECT_EQ(Duration::millis(7).str(), "7.000 ms");
  EXPECT_EQ(Duration::seconds(2).str(), "2.000 s");
}

// --- Bytes -------------------------------------------------------------------

TEST(Bytes, UnitsAndArithmetic) {
  EXPECT_EQ(Bytes::kib(1).count(), 1024u);
  EXPECT_EQ(Bytes::mib(1).count(), 1024u * 1024u);
  EXPECT_EQ(Bytes::gib(1).count(), 1024ull * 1024 * 1024);
  EXPECT_DOUBLE_EQ(Bytes::gib(2).as_gib(), 2.0);
  EXPECT_EQ((Bytes{100} + Bytes{28}).count(), 128u);
  EXPECT_EQ((Bytes{100} * std::uint64_t{3}).count(), 300u);
}

TEST(Bytes, DecimalGb) {
  EXPECT_DOUBLE_EQ(Bytes{1'000'000'000}.as_gb(), 1.0);
}

// --- Bandwidth / transfer math -------------------------------------------------

TEST(Bandwidth, TransferTime) {
  // 1 GB at 1 GB/s takes exactly 1 s.
  const Duration t = transfer_time(Bytes{1'000'000'000}, Bandwidth::gbps(1.0));
  EXPECT_NEAR(t.sec(), 1.0, 1e-12);
}

TEST(Bandwidth, ComputeTime) {
  const Duration t = compute_time(2e12, Flops::tflops(1.0));
  EXPECT_NEAR(t.sec(), 2.0, 1e-12);
}

TEST(Bandwidth, Scaling) {
  const Bandwidth bw = Bandwidth::gbps(10.0) * 2.0;
  EXPECT_DOUBLE_EQ(bw.as_gbps(), 20.0);
  EXPECT_DOUBLE_EQ((Bandwidth::gbps(30.0) / Bandwidth::gbps(10.0)), 3.0);
}

// --- Rng ----------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng r{9};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(7), 7u);
  EXPECT_THROW(r.next_below(0), Error);
}

TEST(Rng, NormalMoments) {
  Rng r{11};
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, GammaPositiveAndMeanMatchesShape) {
  Rng r{13};
  RunningStat s;
  for (int i = 0; i < 50000; ++i) {
    const double g = r.gamma(3.0);
    EXPECT_GT(g, 0.0);
    s.add(g);
  }
  EXPECT_NEAR(s.mean(), 3.0, 0.1);  // Gamma(k, 1) has mean k
  EXPECT_THROW(r.gamma(0.0), Error);
}

TEST(Rng, GammaSubUnityShape) {
  Rng r{17};
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.add(r.gamma(0.5));
  EXPECT_NEAR(s.mean(), 0.5, 0.05);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng r{19};
  std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) counts[r.categorical(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
  EXPECT_THROW(r.categorical({}), Error);
  EXPECT_THROW(r.categorical({0.0, 0.0}), Error);
  EXPECT_THROW(r.categorical({-1.0, 2.0}), Error);
}

TEST(Rng, ForkDiverges) {
  Rng parent{21};
  Rng child = parent.fork();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(Rng, ZipfWeightsNormalizedAndMonotone) {
  const auto w = zipf_weights(100, 1.2);
  double total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    total += w[i];
    if (i > 0) {
      EXPECT_LE(w[i], w[i - 1]);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_THROW(zipf_weights(0, 1.0), Error);
}

TEST(Rng, DirichletSumsToOne) {
  Rng r{23};
  const auto w = dirichlet(r, 16, 0.5);
  double total = 0.0;
  for (const double v : w) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Rng, MultinomialConservesTrials) {
  Rng r{25};
  const auto counts = multinomial(r, 5000, {0.2, 0.3, 0.5});
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, 5000u);
  EXPECT_NEAR(static_cast<double>(counts[2]), 2500.0, 150.0);
}

// --- Stats ---------------------------------------------------------------------

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, BucketingIsHalfOpen) {
  Histogram h{{1.0, 4.0, 8.0}};
  h.add(0);    // bucket 0: [<, 1)
  h.add(1);    // bucket 1: [1, 4)
  h.add(3);    // bucket 1
  h.add(4);    // bucket 2: [4, 8)
  h.add(7);    // bucket 2
  h.add(8);    // overflow: >= 8
  h.add(100);  // overflow
  EXPECT_DOUBLE_EQ(h.bucket(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket(2), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket(3), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 7.0);
}

TEST(Histogram, FractionalBoundsBucketHalfOpen) {
  // Latency-ms style buckets; a value on a bound belongs to the bucket above.
  Histogram h{{0.5, 2.5, 10.0}};
  h.add(0.49);  // bucket 0
  h.add(0.5);   // bucket 1
  h.add(2.49);  // bucket 1
  h.add(2.5);   // bucket 2
  h.add(10.0);  // overflow
  EXPECT_DOUBLE_EQ(h.bucket(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket(2), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket(3), 1.0);
}

TEST(Histogram, LabelsMatchPaperFigure3) {
  Histogram h = make_token_histogram();
  EXPECT_EQ(h.bucket_count(), 8u);
  EXPECT_EQ(h.bucket_label(0), "0");
  EXPECT_EQ(h.bucket_label(1), "1-3");
  EXPECT_EQ(h.bucket_label(2), "4-7");
  EXPECT_EQ(h.bucket_label(6), "64-127");
  EXPECT_EQ(h.bucket_label(7), "128+");
}

TEST(Histogram, FractionalBoundsLabelAsIntervals) {
  // Regression: the old labels assumed integer width->=1 bounds and printed
  // overlapping ranges like "1-2" / "1-2" for fractional bounds.
  Histogram h{{0.5, 2.5}};
  EXPECT_EQ(h.bucket_label(0), "[0, 0.5)");
  EXPECT_EQ(h.bucket_label(1), "[0.5, 2.5)");
  EXPECT_EQ(h.bucket_label(2), "2.5+");
  // Integral bounds of width 1 still collapse to a single count label.
  Histogram g{{1.0, 2.0}};
  EXPECT_EQ(g.bucket_label(0), "0");
  EXPECT_EQ(g.bucket_label(1), "1");
  EXPECT_EQ(g.bucket_label(2), "2+");
}

TEST(Histogram, ScaleDividesCounts) {
  Histogram h{{1.0}};
  h.add(0.5);
  h.add(0.5);
  h.scale(0.5);
  EXPECT_DOUBLE_EQ(h.bucket(0), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 1.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
}

TEST(Stats, PercentileLinearInterpolation) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);   // midpoint of 2 and 3
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);  // rank 0.75 between 1 and 2
}

TEST(Stats, PercentileSingleElementAndErrors) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
  EXPECT_THROW((void)percentile({}, 50.0), Error);
  EXPECT_THROW((void)percentile({1.0}, -1.0), Error);
  EXPECT_THROW((void)percentile({1.0}, 101.0), Error);
}

TEST(Stats, PercentilesTrioMatchesPercentile) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const Percentiles p = compute_percentiles(v);
  EXPECT_DOUBLE_EQ(p.p50, percentile(v, 50.0));
  EXPECT_DOUBLE_EQ(p.p95, percentile(v, 95.0));
  EXPECT_DOUBLE_EQ(p.p99, percentile(v, 99.0));
  EXPECT_LE(p.p50, p.p95);
  EXPECT_LE(p.p95, p.p99);
  EXPECT_THROW((void)compute_percentiles({}), Error);
}

TEST(Stats, Geomean) {
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_THROW((void)geomean({}), Error);
  EXPECT_THROW((void)geomean({1.0, -1.0}), Error);
}

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_THROW((void)mean({}), Error);
}

TEST(Stats, ImbalanceFactor) {
  EXPECT_DOUBLE_EQ(imbalance_factor({3.0, 3.0, 3.0}), 1.0);  // balanced
  EXPECT_DOUBLE_EQ(imbalance_factor({6.0, 0.0, 0.0}), 3.0);  // one does it all
  EXPECT_DOUBLE_EQ(imbalance_factor({0.0, 0.0}), 0.0);       // idle fleet
  EXPECT_THROW((void)imbalance_factor({}), Error);
  EXPECT_THROW((void)imbalance_factor({1.0, -1.0}), Error);
}

// --- Table -----------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvFormat) {
  Table t{{"a", "b"}};
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, RejectsArityMismatch) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.5, 1), "50.0%");
}

// --- Error macros -------------------------------------------------------------------

TEST(Error, RequireThrowsWithMessage) {
  try {
    MONDE_REQUIRE(1 == 2, "math is broken: " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string{e.what()}.find("math is broken: 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace monde
