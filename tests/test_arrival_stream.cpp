// Streaming-arrival pinning (PR 6): every generator's ArrivalStream must be
// bit-identical request for request to the materialized trace it replaced,
// TraceArrivalStream must enforce the (arrival, id) push order, and a
// cluster run fed from a stream must equal one fed the materialized vector.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"

namespace monde::serve {
namespace {

moe::MoeModelConfig tiny_model() {
  moe::MoeModelConfig m = moe::MoeModelConfig::switch_variant(512, 16);
  m.encoder_blocks = 4;
  m.decoder_blocks = 4;
  m.moe_every = 2;
  m.vocab_size = 8192;
  m.top_k = 2;
  m.name = "tiny-test-model";
  return m;
}

RequestShape small_shape() {
  RequestShape s;
  s.prompt_min = 16;
  s.prompt_max = 48;
  s.new_tokens_min = 2;
  s.new_tokens_max = 8;
  return s;
}

RequestShape prefixed_shape() {
  RequestShape s = small_shape();
  s.prefix_groups = 3;
  s.shared_fraction = 0.6;
  s.shared_prefix_len = 10;
  return s;
}

void expect_requests_identical(const std::vector<Request>& a, const std::vector<Request>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "request " << i;
    EXPECT_EQ(a[i].arrival, b[i].arrival) << "request " << a[i].id;
    EXPECT_EQ(a[i].prompt_len, b[i].prompt_len) << "request " << a[i].id;
    EXPECT_EQ(a[i].max_new_tokens, b[i].max_new_tokens) << "request " << a[i].id;
    EXPECT_EQ(a[i].prefix_id, b[i].prefix_id) << "request " << a[i].id;
    EXPECT_EQ(a[i].shared_prefix_len, b[i].shared_prefix_len) << "request " << a[i].id;
  }
}

TEST(ArrivalStream, ClosedLoopStreamMatchesTrace) {
  for (const RequestShape& shape : {small_shape(), prefixed_shape()}) {
    const std::vector<Request> trace = closed_loop_trace(40, shape, 123);
    const auto stream = closed_loop_stream(40, shape, 123);
    EXPECT_EQ(stream->size_hint(), 40u);
    expect_requests_identical(materialize(*stream), trace);
    EXPECT_FALSE(stream->next().has_value());  // exhausted stays exhausted
  }
}

TEST(ArrivalStream, PoissonStreamMatchesTrace) {
  for (const RequestShape& shape : {small_shape(), prefixed_shape()}) {
    const std::vector<Request> trace = poisson_trace(40, 150.0, shape, 99);
    const auto stream = poisson_stream(40, 150.0, shape, 99);
    expect_requests_identical(materialize(*stream), trace);
    EXPECT_FALSE(stream->next().has_value());
  }
}

TEST(ArrivalStream, BurstyStreamMatchesTrace) {
  for (const RequestShape& shape : {small_shape(), prefixed_shape()}) {
    const std::vector<Request> trace =
        bursty_trace(40, 8, Duration::millis(20), shape, 7);
    const auto stream = bursty_stream(40, 8, Duration::millis(20), shape, 7);
    expect_requests_identical(materialize(*stream), trace);
    EXPECT_FALSE(stream->next().has_value());
  }
}

TEST(ArrivalStream, GeneratorsYieldSortedUniqueIds) {
  const auto stream = poisson_stream(64, 200.0, small_shape(), 5);
  Duration prev = Duration::zero();
  std::uint64_t expected_id = 0;
  while (auto rq = stream->next()) {
    EXPECT_GE(rq->arrival, prev);
    EXPECT_EQ(rq->id, expected_id++);  // ids are 0..n-1 in order
    prev = rq->arrival;
  }
  EXPECT_EQ(expected_id, 64u);
}

TEST(ArrivalStream, TraceStreamRoundTrips) {
  const std::vector<Request> trace = bursty_trace(30, 5, Duration::millis(10), small_shape(), 3);
  TraceArrivalStream stream{trace};
  EXPECT_EQ(stream.size_hint(), trace.size());
  expect_requests_identical(materialize(stream), trace);
}

TEST(ArrivalStream, TraceStreamRejectsOutOfOrderTraces) {
  std::vector<Request> trace = poisson_trace(8, 100.0, small_shape(), 11);
  std::swap(trace[2], trace[5]);  // break the (arrival, id) order
  TraceArrivalStream stream{std::move(trace)};
  EXPECT_THROW(
      {
        while (stream.next().has_value()) {
        }
      },
      Error);
}

TEST(ArrivalStream, ClusterRunFromStreamMatchesVectorRun) {
  const auto make_cluster = [](ClusterConfig cfg) {
    return ClusterSim{core::SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                      uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{}),
                      cfg};
  };
  ClusterConfig cfg;
  ClusterSim via_vector = make_cluster(cfg);
  const auto d1 = make_dispatcher(DispatchPolicy::kJoinShortestQueue, 7);
  const ClusterReport a =
      via_vector.run(poisson_trace(32, 120.0, small_shape(), 19), *d1);

  ClusterSim via_stream = make_cluster(cfg);
  const auto d2 = make_dispatcher(DispatchPolicy::kJoinShortestQueue, 7);
  const auto stream = poisson_stream(32, 120.0, small_shape(), 19);
  const ClusterReport b = via_stream.run(*stream, *d2);

  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].id, b.requests[i].id);
    EXPECT_EQ(a.requests[i].completion, b.requests[i].completion);
    EXPECT_EQ(a.requests[i].first_token, b.requests[i].first_token);
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.generated_tokens, b.generated_tokens);
  EXPECT_EQ(a.tokens_per_s, b.tokens_per_s);
  ASSERT_EQ(a.replicas.size(), b.replicas.size());
  for (std::size_t i = 0; i < a.replicas.size(); ++i) {
    EXPECT_EQ(a.replicas[i].dispatched, b.replicas[i].dispatched);
    EXPECT_EQ(a.replicas[i].utilization, b.replicas[i].utilization);
  }
}

TEST(ArrivalStream, StreamRunRejectsDuplicateIds) {
  std::vector<Request> trace = closed_loop_trace(4, small_shape(), 2);
  trace[3] = trace[1];  // an exact duplicate: same id twice
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                     uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{})};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kRoundRobin, 1);
  EXPECT_THROW((void)cluster.run(std::move(trace), *dispatcher), Error);
}

}  // namespace
}  // namespace monde::serve
