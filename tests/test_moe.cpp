// Unit tests for model configs (Table 2), the skewed gating model
// (Figure 3), and workload generation.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "moe/gating.hpp"
#include "moe/model_config.hpp"
#include "moe/trace.hpp"
#include "moe/workload.hpp"

namespace monde::moe {
namespace {

TEST(ModelConfig, SwitchLargeMatchesTable2) {
  const MoeModelConfig m = MoeModelConfig::switch_large_128();
  EXPECT_EQ(m.dmodel, 1024);
  EXPECT_EQ(m.num_experts, 128);
  EXPECT_EQ(m.top_k, 1);
  EXPECT_EQ(m.total_moe_layers(), 24);  // 12 encoder + 12 decoder
  // Table 2: 51.5 GB expert parameters, ~1.1 GB non-expert.
  EXPECT_NEAR(m.total_expert_bytes().as_gb(), 51.5, 1.0);
  EXPECT_NEAR(m.non_expert_bytes().as_gb(), 1.1, 0.2);
}

TEST(ModelConfig, NllbMoeMatchesTable2) {
  const MoeModelConfig m = MoeModelConfig::nllb_moe_128();
  EXPECT_EQ(m.dmodel, 2048);
  EXPECT_EQ(m.top_k, 2);
  EXPECT_EQ(m.total_moe_layers(), 12);  // 6 + 6
  EXPECT_NEAR(m.total_expert_bytes().as_gb(), 103.1, 2.0);
  EXPECT_NEAR(m.non_expert_bytes().as_gb(), 5.7, 0.7);
}

TEST(ModelConfig, DenseBaselines) {
  const MoeModelConfig t5 = MoeModelConfig::t5_large_dense();
  EXPECT_EQ(t5.total_moe_layers(), 0);
  EXPECT_EQ(t5.total_expert_bytes().count(), 0u);
  // T5-Large is ~3 GB in the paper's Figure 2(a) narrative (bf16 ~1.5 GB
  // params; the paper counts fp32 master copies -- we check the bf16 size).
  EXPECT_NEAR(t5.non_expert_bytes().as_gb(), 1.5, 0.4);
  const MoeModelConfig nllb = MoeModelConfig::nllb_dense_3_3b();
  EXPECT_NEAR(nllb.non_expert_bytes().as_gb(), 6.6, 1.2);
}

TEST(ModelConfig, MoeBlockPlacement) {
  const MoeModelConfig m = MoeModelConfig::switch_large_128();  // every 2nd
  EXPECT_FALSE(m.is_moe_block(0));
  EXPECT_TRUE(m.is_moe_block(1));
  EXPECT_TRUE(m.is_moe_block(23));
  const MoeModelConfig n = MoeModelConfig::nllb_moe_128();  // every 4th
  EXPECT_FALSE(n.is_moe_block(0));
  EXPECT_TRUE(n.is_moe_block(3));
  int count = 0;
  for (int b = 0; b < n.encoder_blocks; ++b) count += n.is_moe_block(b) ? 1 : 0;
  EXPECT_EQ(count, n.encoder_moe_layers());
}

TEST(ModelConfig, VariantsScale) {
  const MoeModelConfig v = MoeModelConfig::switch_variant(768, 64);
  EXPECT_EQ(v.dmodel, 768);
  EXPECT_EQ(v.dff, 3072);
  EXPECT_EQ(v.num_experts, 64);
  EXPECT_LT(v.total_expert_bytes().count(),
            MoeModelConfig::switch_large_128().total_expert_bytes().count());
  EXPECT_EQ(v.name, "d768-E64");
}

TEST(ModelConfig, ValidationCatchesBadConfigs) {
  MoeModelConfig m = MoeModelConfig::switch_large_128();
  m.top_k = 0;
  EXPECT_THROW(m.validate(), Error);
  m = MoeModelConfig::switch_large_128();
  m.top_k = 200;  // > E
  EXPECT_THROW(m.validate(), Error);
  m = MoeModelConfig::switch_large_128();
  m.dmodel = -5;
  EXPECT_THROW(m.validate(), Error);
}

TEST(Gating, RouteConservesTokens) {
  const GatingModel g{128, 2, SkewProfile::nllb_like(), 1};
  Rng rng{2};
  const auto counts = g.route(2048, rng);
  const std::uint64_t total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  EXPECT_EQ(total, 2048u * 2u);  // top-2: every token lands on 2 experts
}

TEST(Gating, TopKDistinctExpertsBoundPerExpertCount) {
  // With top-2 distinct routing, no expert can receive more than `tokens`.
  const GatingModel g{16, 2, SkewProfile::nllb_like(), 3};
  Rng rng{4};
  const auto counts = g.route(1000, rng);
  for (const auto c : counts) EXPECT_LE(c, 1000u);
}

TEST(Gating, DeterministicGivenSeeds) {
  const GatingModel g1{128, 2, SkewProfile::nllb_like(), 42};
  const GatingModel g2{128, 2, SkewProfile::nllb_like(), 42};
  Rng r1{7}, r2{7};
  EXPECT_EQ(g1.route(512, r1), g2.route(512, r2));
}

TEST(Gating, DifferentLayersHaveDifferentHotExperts) {
  const GatingModel g1{128, 2, SkewProfile::nllb_like(), 1};
  const GatingModel g2{128, 2, SkewProfile::nllb_like(), 2};
  const auto argmax = [](const std::vector<double>& v) {
    return std::distance(v.begin(), std::max_element(v.begin(), v.end()));
  };
  // Not guaranteed in general, but with 128 slots the probability of a
  // collision across these two fixed seeds is tiny and the seeds are pinned.
  EXPECT_NE(argmax(g1.popularity()), argmax(g2.popularity()));
}

TEST(Gating, PopularityNormalized) {
  const GatingModel g{128, 1, SkewProfile::switch_like(), 5};
  const double total =
      std::accumulate(g.popularity().begin(), g.popularity().end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Gating, UniformProfileIsFlat) {
  const GatingModel g{64, 1, SkewProfile::uniform(), 6};
  const auto& p = g.popularity();
  const auto [mn, mx] = std::minmax_element(p.begin(), p.end());
  EXPECT_LT(*mx / *mn, 1.5);  // only Zipf s=0 + no jitter -> near flat
}

TEST(Gating, ReproducesFigure3Histogram) {
  // Average token distribution for NLLB-MoE encoder layer 0, batch 4 x 512,
  // top-2 (paper Figure 3). We check the calibrated shape: ~25 zero-token
  // experts, cold majority at 1-7 tokens, ~2 hot experts with 128+.
  Histogram h = make_token_histogram();
  const int batches = 30;
  for (int b = 0; b < batches; ++b) {
    WorkloadGenerator gen{MoeModelConfig::nllb_moe_128(), SkewProfile::nllb_like(),
                          100 + static_cast<std::uint64_t>(b)};
    const auto pass = gen.encoder_pass(4, 512);
    for (const auto c : pass.moe_layers[0].tokens_per_expert) {
      h.add(static_cast<double>(c));
    }
  }
  h.scale(1.0 / batches);
  EXPECT_NEAR(h.bucket(0), 25.48, 8.0);   // zero-token experts
  EXPECT_NEAR(h.bucket(1), 72.56, 12.0);  // 1-3 tokens
  EXPECT_NEAR(h.bucket(2), 24.63, 10.0);  // 4-7 tokens
  EXPECT_LT(h.bucket(4), 3.0);            // 16-31: nearly empty
  EXPECT_NEAR(h.bucket(7), 2.0, 1.0);     // 128+: the hot experts
  EXPECT_NEAR(h.total(), 128.0, 1e-6);    // all experts accounted for
}

TEST(Gating, SwitchLikeHistogramShape) {
  // Figure-3-style bucket histogram for the Switch top-1 preset: 4 heavy
  // experts in the 128+ bucket, the warm tier in the tens, and a flat-ish
  // cold tail -- milder skew than NLLB's two-expert concentration.
  const SkewProfile prof = SkewProfile::switch_like();
  EXPECT_EQ(prof.num_heavy, 4);
  EXPECT_DOUBLE_EQ(prof.dead_fraction, 0.0);  // no dead tier in this preset
  Histogram h = make_token_histogram();
  const int batches = 30;
  for (int b = 0; b < batches; ++b) {
    WorkloadGenerator gen{MoeModelConfig::switch_large_128(), prof,
                          200 + static_cast<std::uint64_t>(b)};
    const auto pass = gen.encoder_pass(4, 512);
    for (const auto c : pass.moe_layers[0].tokens_per_expert) {
      h.add(static_cast<double>(c));
    }
  }
  h.scale(1.0 / batches);
  EXPECT_NEAR(h.bucket(7), 4.0, 1.5);   // 128+: the heavy experts
  EXPECT_LT(h.bucket(0), 10.0);         // no dead tier -> few zero experts
  EXPECT_GT(h.bucket(1) + h.bucket(2), 60.0);  // 1-7 tokens: cold majority
  EXPECT_NEAR(h.total(), 128.0, 1e-6);  // all experts accounted for
}

TEST(Gating, DeadFractionGrowsTheZeroBucketAndDeadScaleSoftensIt) {
  // dead_fraction marks the lowest-ranked tail experts as (near-)dead;
  // dead_scale is their weight multiplier. At scale 0 they are truly dead
  // and the Figure 3 zero-token bucket inflates by exactly that cohort; at
  // scale 1 the "dead" tier is indistinguishable from the live tail.
  const auto zero_bucket = [](const SkewProfile& prof) {
    Histogram h = make_token_histogram();
    const int batches = 30;
    for (int b = 0; b < batches; ++b) {
      WorkloadGenerator gen{MoeModelConfig::switch_large_128(), prof,
                            300 + static_cast<std::uint64_t>(b)};
      const auto pass = gen.encoder_pass(4, 512);
      for (const auto c : pass.moe_layers[0].tokens_per_expert) {
        h.add(static_cast<double>(c));
      }
    }
    h.scale(1.0 / batches);
    return h.bucket(0);
  };
  const SkewProfile alive = SkewProfile::switch_like();
  SkewProfile dead = alive;
  dead.dead_fraction = 0.25;
  dead.dead_scale = 0.0;
  const double z_alive = zero_bucket(alive);
  const double z_dead = zero_bucket(dead);
  // 25% of the 118 tail experts (= 29) carry zero weight: every batch, all
  // of them land in the zero bucket, on top of the sampling zeros.
  EXPECT_GE(z_dead, 29.0);
  EXPECT_GT(z_dead, z_alive + 20.0);
  // dead_scale -> 1 restores the live-tail behavior.
  SkewProfile faint = dead;
  faint.dead_scale = 1.0;
  EXPECT_NEAR(zero_bucket(faint), z_alive, 8.0);
}

TEST(Gating, HotExpertsAbsorbMostTokens) {
  WorkloadGenerator gen{MoeModelConfig::nllb_moe_128(), SkewProfile::nllb_like(), 42};
  const auto pass = gen.encoder_pass(4, 512);
  const auto& work = pass.moe_layers[0];
  const auto order = work.experts_by_load();
  const std::uint64_t top2 =
      work.tokens_per_expert[order[0]] + work.tokens_per_expert[order[1]];
  EXPECT_GT(static_cast<double>(top2) / static_cast<double>(work.routed_tokens()), 0.6);
}

TEST(Gating, RejectsBadProfiles) {
  SkewProfile p = SkewProfile::nllb_like();
  p.heavy_mass = 1.2;
  EXPECT_THROW(GatingModel(128, 2, p, 1), Error);
  p = SkewProfile::nllb_like();
  p.num_heavy = 200;
  EXPECT_THROW(GatingModel(128, 2, p, 1), Error);
  EXPECT_THROW(GatingModel(0, 1, SkewProfile::uniform(), 1), Error);
  EXPECT_THROW(GatingModel(8, 9, SkewProfile::uniform(), 1), Error);
}

TEST(MoeLayerWork, HelpersConsistent) {
  MoeLayerWork w;
  w.total_tokens = 10;
  w.top_k = 2;
  w.tokens_per_expert = {5, 0, 7, 8, 0};
  EXPECT_EQ(w.activated_experts(), 3);
  EXPECT_EQ(w.routed_tokens(), 20u);
  const auto order = w.experts_by_load();
  EXPECT_EQ(order[0], 3u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(Workload, EncoderPassShape) {
  WorkloadGenerator gen{MoeModelConfig::nllb_moe_128(), SkewProfile::nllb_like(), 42};
  const auto pass = gen.encoder_pass(4, 512);
  EXPECT_EQ(pass.moe_layers.size(), 6u);  // NLLB: 6 encoder MoE layers
  for (const auto& w : pass.moe_layers) {
    EXPECT_EQ(w.total_tokens, 4 * 512);
    EXPECT_EQ(w.routed_tokens(), 2048u * 2u);  // B*S tokens, top-2 routing
    EXPECT_EQ(w.tokens_per_expert.size(), 128u);
  }
}

TEST(Workload, DecoderStepsShape) {
  WorkloadGenerator gen{MoeModelConfig::switch_large_128(), SkewProfile::switch_like(), 42};
  const auto steps = gen.decoder_steps(4, 10);
  EXPECT_EQ(steps.size(), 10u);
  for (const auto& step : steps) {
    EXPECT_EQ(step.moe_layers.size(), 12u);  // Switch: 12 decoder MoE layers
    for (const auto& w : step.moe_layers) {
      EXPECT_EQ(w.total_tokens, 4);
      EXPECT_EQ(w.routed_tokens(), 4u);  // top-1
      EXPECT_LE(w.activated_experts(), 4);
    }
  }
}

TEST(Workload, DecoderActivatesFewExperts) {
  // Paper Section 4.2: decoders activate only a couple of experts per step.
  WorkloadGenerator gen{MoeModelConfig::nllb_moe_128(), SkewProfile::nllb_like(), 42};
  const auto steps = gen.decoder_steps(1, 20);
  for (const auto& step : steps) {
    for (const auto& w : step.moe_layers) {
      EXPECT_LE(w.activated_experts(), 2);  // 1 token x top-2
      EXPECT_GE(w.activated_experts(), 1);
    }
  }
}

TEST(Workload, RejectsZeroBatchAndZeroSteps) {
  WorkloadGenerator gen{MoeModelConfig::switch_large_128(), SkewProfile::switch_like(), 1};
  // Silent empty output would let a serving bug slip by; both degenerate
  // inputs must fail loudly instead.
  EXPECT_THROW((void)gen.decoder_steps(0, 5), Error);
  EXPECT_THROW((void)gen.decoder_steps(4, 0), Error);
  EXPECT_THROW((void)gen.decoder_step_for(0, 0, 0), Error);
  EXPECT_THROW((void)gen.decoder_step_for(0, -1, 1), Error);
}

TEST(Workload, PerRequestRoutingDeterministicAndOrderIndependent) {
  const MoeModelConfig model = MoeModelConfig::nllb_moe_128();
  WorkloadGenerator a{model, SkewProfile::nllb_like(), 42};
  WorkloadGenerator b{model, SkewProfile::nllb_like(), 42};
  // Interleave calls differently; draws depend only on (seed, request, step).
  const auto a_r3s2 = a.decoder_step_for(3, 2);
  const auto a_r1s0 = a.decoder_step_for(1, 0);
  const auto b_r1s0 = b.decoder_step_for(1, 0);
  const auto b_r3s2 = b.decoder_step_for(3, 2);
  ASSERT_EQ(a_r3s2.size(), 6u);  // NLLB: 6 decoder MoE layers
  for (std::size_t i = 0; i < a_r3s2.size(); ++i) {
    EXPECT_EQ(a_r3s2[i].tokens_per_expert, b_r3s2[i].tokens_per_expert);
    EXPECT_EQ(a_r1s0[i].tokens_per_expert, b_r1s0[i].tokens_per_expert);
  }
  // Different requests / steps draw different routings (w.h.p.; seeds pinned).
  EXPECT_NE(a_r3s2[0].tokens_per_expert, a_r1s0[0].tokens_per_expert);
  // A different base seed decorrelates the whole stream.
  WorkloadGenerator c{model, SkewProfile::nllb_like(), 43};
  EXPECT_NE(c.decoder_step_for(3, 2)[0].tokens_per_expert, a_r3s2[0].tokens_per_expert);
}

TEST(Workload, PerRequestRoutingConservesTokens) {
  WorkloadGenerator gen{MoeModelConfig::nllb_moe_128(), SkewProfile::nllb_like(), 42};
  const auto works = gen.decoder_step_for(9, 4, 3);
  for (const auto& w : works) {
    EXPECT_EQ(w.total_tokens, 3);
    EXPECT_EQ(w.routed_tokens(), 3u * 2u);  // top-2
    EXPECT_EQ(w.tokens_per_expert.size(), 128u);
  }
  // Layer ids continue after the encoder stack, like decoder_steps().
  EXPECT_EQ(works.front().layer_id, gen.model().encoder_moe_layers());
}

TEST(Workload, MergeLayerWorksSumsDraws) {
  WorkloadGenerator gen{MoeModelConfig::nllb_moe_128(), SkewProfile::nllb_like(), 42};
  const auto d1 = gen.decoder_step_for(1, 0);
  const auto d2 = gen.decoder_step_for(2, 5);
  const auto merged = WorkloadGenerator::merge_layer_works({d1, d2});
  ASSERT_EQ(merged.size(), d1.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].total_tokens, 2);
    EXPECT_EQ(merged[i].routed_tokens(), d1[i].routed_tokens() + d2[i].routed_tokens());
    for (std::size_t e = 0; e < merged[i].tokens_per_expert.size(); ++e) {
      EXPECT_EQ(merged[i].tokens_per_expert[e],
                d1[i].tokens_per_expert[e] + d2[i].tokens_per_expert[e]);
    }
  }
  EXPECT_THROW((void)WorkloadGenerator::merge_layer_works({}), Error);
  EXPECT_THROW((void)WorkloadGenerator::merge_layer_works({d1, {}}), Error);
}

TEST(Workload, RequiresMoeModel) {
  EXPECT_THROW(
      WorkloadGenerator(MoeModelConfig::t5_large_dense(), SkewProfile::uniform(), 1),
      Error);
}


TEST(Trace, SaveLoadRoundTrip) {
  WorkloadGenerator gen{MoeModelConfig::nllb_moe_128(), SkewProfile::nllb_like(), 42};
  const auto pass = gen.encoder_pass(2, 128);
  std::ostringstream os;
  save_trace(os, pass.moe_layers);
  std::istringstream is{os.str()};
  const auto loaded = load_trace(is);
  ASSERT_EQ(loaded.size(), pass.moe_layers.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].layer_id, pass.moe_layers[i].layer_id);
    EXPECT_EQ(loaded[i].total_tokens, pass.moe_layers[i].total_tokens);
    EXPECT_EQ(loaded[i].top_k, pass.moe_layers[i].top_k);
    EXPECT_EQ(loaded[i].tokens_per_expert, pass.moe_layers[i].tokens_per_expert);
  }
}

TEST(Trace, SkipsCommentsAndBlankLines) {
  std::istringstream is{"# captured from production router\n\n0,4,1,1,2,1,0\n"};
  const auto layers = load_trace(is);
  ASSERT_EQ(layers.size(), 1u);
  EXPECT_EQ(layers[0].tokens_per_expert.size(), 4u);
  EXPECT_EQ(layers[0].routed_tokens(), 4u);
}

TEST(Trace, RejectsMalformedRows) {
  std::istringstream bad_header{"0,notanumber,1,1\n"};
  EXPECT_THROW((void)load_trace(bad_header), Error);
  std::istringstream no_counts{"0,4,1\n"};
  EXPECT_THROW((void)load_trace(no_counts), Error);
  std::istringstream inconsistent{"0,4,1,1,2\n1,4,1,1,2,3\n"};
  EXPECT_THROW((void)load_trace(inconsistent), Error);
}

TEST(Trace, FileRoundTrip) {
  WorkloadGenerator gen{MoeModelConfig::switch_large_128(), SkewProfile::switch_like(), 7};
  const auto steps = gen.decoder_steps(4, 2);
  save_trace_file("/tmp/monde_trace_test.csv", steps[0].moe_layers);
  const auto loaded = load_trace_file("/tmp/monde_trace_test.csv");
  EXPECT_EQ(loaded.size(), steps[0].moe_layers.size());
  EXPECT_THROW((void)load_trace_file("/nonexistent/path.csv"), Error);
}

// Property sweep: token conservation across batch sizes and both models.
struct RouteCase {
  std::int64_t batch;
  bool nllb;
};

class RoutingConservationTest : public ::testing::TestWithParam<RouteCase> {};

TEST_P(RoutingConservationTest, EveryTokenRoutedTopK) {
  const auto [batch, nllb] = GetParam();
  const MoeModelConfig model =
      nllb ? MoeModelConfig::nllb_moe_128() : MoeModelConfig::switch_large_128();
  const SkewProfile prof = nllb ? SkewProfile::nllb_like() : SkewProfile::switch_like();
  WorkloadGenerator gen{model, prof, 7};
  const auto pass = gen.encoder_pass(batch, 512);
  for (const auto& w : pass.moe_layers) {
    EXPECT_EQ(w.routed_tokens(),
              static_cast<std::uint64_t>(batch) * 512u *
                  static_cast<std::uint64_t>(model.top_k));
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, RoutingConservationTest,
                         ::testing::Values(RouteCase{1, true}, RouteCase{4, true},
                                           RouteCase{16, true}, RouteCase{1, false},
                                           RouteCase{4, false}, RouteCase{16, false}));

}  // namespace
}  // namespace monde::moe
