// Unit tests for the NDP core cycle simulator and bank-partitioned layouts.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "dram/dram_system.hpp"
#include "ndp/layout.hpp"
#include "ndp/ndp_core.hpp"

namespace monde::ndp {
namespace {

dram::Spec test_mem() {
  // Shrink rows to keep constructors cheap; bandwidth identical per channel.
  dram::Spec s = dram::Spec::monde_lpddr5x_8533();
  return s;
}

TEST(NdpSpec, Dac24Configuration) {
  const NdpSpec s = NdpSpec::monde_dac24();
  EXPECT_EQ(s.num_units, 64);
  EXPECT_EQ(s.pe_rows, 4);
  EXPECT_EQ(s.pe_cols, 4);
  EXPECT_EQ(s.tile_cols(), 256);  // 4x256 output-stationary pass
  EXPECT_DOUBLE_EQ(s.macs_per_cycle(), 1024.0);
  EXPECT_NEAR(s.peak_flops().as_tflops(), 2.048, 1e-6);
  // Table 3 buffer budget: 264 KB.
  EXPECT_NEAR(s.scratchpad.as_kib() + s.operand_buffers.as_kib(), 264.0, 0.1);
}

TEST(NdpSpec, RateMatchedScalesClock) {
  const NdpSpec s = NdpSpec::monde_dac24().rate_matched(2.0);
  EXPECT_DOUBLE_EQ(s.clock_ghz, 2.0);
  EXPECT_NEAR(s.peak_flops().as_tflops(), 4.096, 1e-6);
}

TEST(PartitionLayout, HalvesTheDevice) {
  const dram::Spec spec = test_mem();
  const dram::AddressMapper mapper{spec};
  const PartitionLayout weights{spec, mapper, Partition::kWeights};
  const PartitionLayout acts{spec, mapper, Partition::kActivations};
  EXPECT_EQ(weights.capacity().count(), spec.org.total_capacity().count() / 2);
  EXPECT_EQ(acts.capacity().count(), spec.org.total_capacity().count() / 2);
}

TEST(PartitionLayout, BankParityIsRespected) {
  const dram::Spec spec = test_mem();
  const dram::AddressMapper mapper{spec};
  const PartitionLayout weights{spec, mapper, Partition::kWeights};
  const PartitionLayout acts{spec, mapper, Partition::kActivations};
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const dram::Address w = mapper.decompose(weights.block_address(i));
    EXPECT_EQ(w.flat_bank(spec.org) % 2, 0) << "weights must use even banks";
    const dram::Address a = mapper.decompose(acts.block_address(i * 37));
    EXPECT_EQ(a.flat_bank(spec.org) % 2, 1) << "activations must use odd banks";
  }
}

TEST(PartitionLayout, AddressesAreDistinct) {
  const dram::Spec spec = test_mem();
  const dram::AddressMapper mapper{spec};
  const PartitionLayout layout{spec, mapper, Partition::kWeights};
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(layout.block_address(i)).second);
  }
}

TEST(PartitionLayout, ConsecutiveBlocksStripeChannels) {
  const dram::Spec spec = test_mem();
  const dram::AddressMapper mapper{spec};
  const PartitionLayout layout{spec, mapper, Partition::kWeights};
  for (int i = 0; i < spec.org.channels; ++i) {
    const dram::Address a = mapper.decompose(layout.block_address(static_cast<std::uint64_t>(i)));
    EXPECT_EQ(a.channel, i);
  }
}

TEST(PartitionLayout, BlocksForRoundsUp) {
  const dram::Spec spec = test_mem();
  const dram::AddressMapper mapper{spec};
  const PartitionLayout layout{spec, mapper, Partition::kWeights};
  EXPECT_EQ(layout.blocks_for(Bytes{1}), 1u);
  EXPECT_EQ(layout.blocks_for(Bytes{128}), 1u);
  EXPECT_EQ(layout.blocks_for(Bytes{129}), 2u);
  EXPECT_THROW((void)layout.block_address(layout.block_count()), Error);
}

TEST(NdpCoreSim, ComputeCyclesExactFormula) {
  NdpCoreSim sim{NdpSpec::monde_dac24(), test_mem()};
  // 4x256 C tile, K streamed: ceil(m/4)*ceil(n/256)*(k + fill).
  EXPECT_EQ(sim.compute_cycles_for({4, 256, 1000}), 1000u + 16u);
  EXPECT_EQ(sim.compute_cycles_for({5, 256, 1000}), 2u * (1000u + 16u));
  EXPECT_EQ(sim.compute_cycles_for({4, 257, 1000}), 2u * (1000u + 16u));
  EXPECT_EQ(sim.compute_cycles_for({0, 256, 1000}), 0u);
}

TEST(NdpCoreSim, LatencyAboveAnalyticLowerBound) {
  NdpCoreSim sim{NdpSpec::monde_dac24(), test_mem()};
  for (const std::int64_t tokens : {1, 2, 4, 8, 16}) {
    const compute::ExpertShape e{tokens, 1024, 4096};
    const auto r = sim.simulate_expert(e, compute::DataType::kBf16);
    const Duration lb = sim.analytic_expert_lower_bound(e, compute::DataType::kBf16);
    EXPECT_GE(r.latency.ns(), lb.ns()) << "tokens=" << tokens;
  }
}

TEST(NdpCoreSim, ColdExpertNearBandwidthBound) {
  // A 1-token NLLB expert is memory-bound: the cycle-level latency should
  // sit within 25% of streaming the weights at peak bandwidth.
  NdpCoreSim sim{NdpSpec::monde_dac24(), test_mem()};
  const compute::ExpertShape e{1, 2048, 8192};
  const auto r = sim.simulate_expert(e, compute::DataType::kBf16);
  const Duration stream =
      transfer_time(e.weight_bytes(compute::DataType::kBf16),
                    sim.mem_spec().total_peak_bandwidth());
  EXPECT_LT(r.latency.ns(), stream.ns() * 1.25);
  EXPECT_TRUE(r.cycle_accurate);
  EXPECT_GT(r.row_hit_rate, 0.9);
}

TEST(NdpCoreSim, HotExpertComputeBound) {
  NdpCoreSim sim{NdpSpec::monde_dac24(), test_mem()};
  const compute::ExpertShape e{256, 2048, 8192};
  const auto r = sim.simulate_expert(e, compute::DataType::kBf16);
  EXPECT_FALSE(r.cycle_accurate);  // fast path
  const Duration compute =
      sim.ndp_spec().cycle_time() *
      static_cast<double>(sim.compute_cycles_for(e.linear1()) +
                          sim.compute_cycles_for(e.linear2()));
  EXPECT_NEAR(r.latency.us(), compute.us(), compute.us() * 0.05);
}

TEST(NdpCoreSim, FastPathContinuousAtBoundary) {
  // The cycle sim at the token limit and the fast path just above it should
  // produce latencies within ~15% per-token.
  NdpCoreSim sim{NdpSpec::monde_dac24(), test_mem()};
  const int limit = sim.cycle_sim_token_limit;
  const auto below = sim.simulate_expert({limit, 2048, 8192}, compute::DataType::kBf16);
  const auto above = sim.simulate_expert({limit + 4, 2048, 8192}, compute::DataType::kBf16);
  const double per_tok_below = below.latency.us() / static_cast<double>(limit);
  const double per_tok_above = above.latency.us() / static_cast<double>(limit + 4);
  EXPECT_TRUE(below.cycle_accurate);
  EXPECT_FALSE(above.cycle_accurate);
  EXPECT_NEAR(per_tok_above, per_tok_below, per_tok_below * 0.15);
}

TEST(NdpCoreSim, MemoizationReturnsIdenticalResults) {
  NdpCoreSim sim{NdpSpec::monde_dac24(), test_mem()};
  const compute::ExpertShape e{4, 1024, 4096};
  const auto first = sim.simulate_expert(e, compute::DataType::kBf16);
  const auto misses = sim.memo_misses();
  const auto second = sim.simulate_expert(e, compute::DataType::kBf16);
  EXPECT_EQ(sim.memo_misses(), misses);
  EXPECT_GT(sim.memo_hits(), 0u);
  EXPECT_DOUBLE_EQ(first.latency.ns(), second.latency.ns());
  EXPECT_EQ(first.read_blocks, second.read_blocks);
}

TEST(NdpCoreSim, MemoStatisticsCountPerFlagConfiguration) {
  // The memo accessors report cache effectiveness; the key must separate
  // the bank-partitioning ablation arms so results never alias.
  NdpCoreSim sim{NdpSpec::monde_dac24(), test_mem()};
  EXPECT_EQ(sim.memo_hits(), 0u);
  EXPECT_EQ(sim.memo_misses(), 0u);
  const compute::ExpertShape e{2, 1024, 4096};
  (void)sim.simulate_expert(e, compute::DataType::kBf16);
  EXPECT_EQ(sim.memo_misses(), 1u);
  sim.bank_partitioning = false;
  (void)sim.simulate_expert(e, compute::DataType::kBf16);
  EXPECT_EQ(sim.memo_misses(), 2u);
  EXPECT_EQ(sim.memo_hits(), 0u);
  sim.bank_partitioning = true;
  (void)sim.simulate_expert(e, compute::DataType::kBf16);
  EXPECT_EQ(sim.memo_hits(), 1u);
  EXPECT_EQ(sim.memo_misses(), 2u);
}

TEST(NdpCoreSim, LatencyMonotoneInTokens) {
  NdpCoreSim sim{NdpSpec::monde_dac24(), test_mem()};
  Duration prev = Duration::zero();
  for (const std::int64_t t : {1, 4, 8, 16, 32, 128}) {
    const auto r = sim.simulate_expert({t, 1024, 4096}, compute::DataType::kBf16);
    EXPECT_GE(r.latency.ns(), prev.ns() * 0.999) << "tokens=" << t;
    prev = r.latency;
  }
}

TEST(NdpCoreSim, BandwidthScalingSpeedsUpColdExperts) {
  // Figure 7(b): cold experts are bandwidth-bound, so 2x memory bandwidth
  // (with rate-matched compute) should cut latency by ~2x.
  NdpCoreSim base{NdpSpec::monde_dac24(), test_mem()};
  NdpCoreSim fast{NdpSpec::monde_dac24().rate_matched(2.0),
                  test_mem().with_bandwidth_scale(2.0)};
  const compute::ExpertShape e{1, 2048, 8192};
  const auto rb = base.simulate_expert(e, compute::DataType::kBf16);
  const auto rf = fast.simulate_expert(e, compute::DataType::kBf16);
  const double speedup = rb.latency.ns() / rf.latency.ns();
  EXPECT_GT(speedup, 1.6);
  EXPECT_LT(speedup, 2.4);
}

TEST(NdpCoreSim, GemmAndExpertConsistent) {
  NdpCoreSim sim{NdpSpec::monde_dac24(), test_mem()};
  const compute::ExpertShape e{4, 1024, 4096};
  const auto expert = sim.simulate_expert(e, compute::DataType::kBf16);
  const auto g1 = sim.simulate_gemm(e.linear1(), compute::DataType::kBf16);
  const auto g2 = sim.simulate_gemm(e.linear2(), compute::DataType::kBf16);
  // Chained execution costs at least the slower of the two kernels and at
  // most their sum plus decode overheads (they never overlap).
  EXPECT_GE(expert.latency.ns(), std::max(g1.latency.ns(), g2.latency.ns()));
  EXPECT_LE(expert.latency.ns(),
            (g1.latency + g2.latency + 4.0 * sim.ndp_spec().kernel_decode).ns() * 1.1);
}

TEST(NdpCoreSim, RejectsInvalidShapes) {
  NdpCoreSim sim{NdpSpec::monde_dac24(), test_mem()};
  EXPECT_THROW(sim.simulate_expert({0, 1024, 4096}, compute::DataType::kBf16), Error);
  EXPECT_THROW(sim.simulate_gemm({4, 0, 4096}, compute::DataType::kBf16), Error);
}

// Property sweep over (tokens, dmodel, dff): invariants of every simulated
// expert result.
struct ShapeCase {
  std::int64_t tokens, dmodel, dff;
};

class NdpShapeTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(NdpShapeTest, ResultInvariants) {
  const auto [tokens, dmodel, dff] = GetParam();
  NdpCoreSim sim{NdpSpec::monde_dac24(), test_mem()};
  const compute::ExpertShape e{tokens, dmodel, dff};
  const auto r = sim.simulate_expert(e, compute::DataType::kBf16);
  // Latency above the analytic bound.
  EXPECT_GE(r.latency.ns(),
            sim.analytic_expert_lower_bound(e, compute::DataType::kBf16).ns() * 0.999);
  // Reads cover at least the expert weights.
  const std::uint64_t weight_blocks =
      e.weight_bytes(compute::DataType::kBf16).count() / 128;
  EXPECT_GE(r.read_blocks, weight_blocks);
  // Compute cycles match the closed-form tile arithmetic.
  EXPECT_EQ(r.compute_cycles,
            sim.compute_cycles_for(e.linear1()) + sim.compute_cycles_for(e.linear2()));
  EXPECT_GT(r.achieved_bandwidth.as_gbps(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, NdpShapeTest,
                         ::testing::Values(ShapeCase{1, 768, 3072}, ShapeCase{3, 1024, 4096},
                                           ShapeCase{5, 2048, 8192}, ShapeCase{16, 512, 2048},
                                           ShapeCase{33, 1024, 4096},
                                           ShapeCase{100, 2048, 8192}));

}  // namespace
}  // namespace monde::ndp
