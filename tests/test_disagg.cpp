// Disaggregated prefill/decode serving (serve/disagg.hpp): pool role
// assignment, the priced KV handoff from prefill to decode replicas, pool
// routing of retries (surviving-cache retries stay in the decode pool, a
// lost cache sends the request back to prefill), pool-aware autoscaling,
// the checkpoint-cadence knob it subsumes, and -- the acceptance pins --
// bit-identity of the disabled path and calendar/reference/thread agreement
// of the enabled one.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/error.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"
#include "serve_fixtures.hpp"

namespace monde::serve {
namespace {

using namespace fixtures;

/// Near-instant state transfers (as in the prefix-cache suites) so pool
/// timing stays dominated by compute, not the modelled links.
PrefixCacheConfig enabled_cache() {
  PrefixCacheConfig cache;
  cache.enabled = true;
  cache.kv_bytes_per_token = Bytes{16};
  cache.migration_bw = Bandwidth::gbps(100.0);
  return cache;
}

ClusterConfig disagg_config(std::size_t prefill_replicas = 1) {
  ClusterConfig cfg;
  cfg.disagg.enabled = true;
  cfg.disagg.prefill_replicas = prefill_replicas;
  return cfg;
}

// --- Configuration guards ---------------------------------------------------

TEST(Disagg, ValidationCatchesBadConfigs) {
  DisaggConfig bad;
  bad.enabled = true;
  bad.prefill_replicas = 0;
  EXPECT_THROW(bad.validate(), Error);
  bad = {};
  bad.enabled = true;
  bad.decode_admit_tokens = -1;
  EXPECT_THROW(bad.validate(), Error);
  // Disabled configs are never validated-failed, however malformed.
  bad.enabled = false;
  EXPECT_NO_THROW(bad.validate());
}

TEST(Disagg, ClusterNeedsBothPoolsAndContinuousBatching) {
  // One replica cannot host both roles...
  EXPECT_THROW(
      (ClusterSim{core::SystemConfig::dac24(), tiny_model(),
                  moe::SkewProfile::switch_like(),
                  uniform_fleet(1, core::StrategyKind::kMondeLoadBalanced,
                                SchedulerConfig{}),
                  disagg_config()}),
      Error);
  // ...and fixed-batch replicas cannot release mid-trace, so the handoff
  // model requires continuous batching fleet-wide.
  SchedulerConfig fixed;
  fixed.mode = BatchingMode::kFixed;
  fixed.fixed_batch = 4;
  EXPECT_THROW(
      (ClusterSim{core::SystemConfig::dac24(), tiny_model(),
                  moe::SkewProfile::switch_like(),
                  uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, fixed),
                  disagg_config()}),
      Error);
}

TEST(Disagg, ServerRejectsPrefillRoleWithoutDisagg) {
  auto engine = core::InferenceEngine{core::SystemConfig::dac24(), tiny_model(),
                                      moe::SkewProfile::switch_like(),
                                      core::StrategyKind::kMondeLoadBalanced, 42};
  EXPECT_THROW((ServerSim{engine, SchedulerConfig{}, Duration::zero(), FaultSpec{},
                          PrefixCacheConfig{}, ExpertServingConfig{}, DisaggConfig{},
                          /*prefill_role=*/true}),
               Error);
}

// --- The off switch (acceptance pin) ----------------------------------------

TEST(Disagg, DisabledConfigIsBitIdenticalToDefault) {
  // A disabled disagg config -- every other knob tuned -- must leave the
  // cluster bit-identical to a default-constructed one, in both loops.
  Scenario plain;
  plain.trace = poisson_trace(24, 90.0, small_shape(), 21);
  plain.specs = uniform_fleet(4, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  plain.policy = DispatchPolicy::kLeastOutstandingTokens;
  Scenario tuned = plain;
  tuned.cfg.disagg = disagg_config(2).disagg;
  tuned.cfg.disagg.enabled = false;
  tuned.cfg.disagg.decode_admit_tokens = 1;  // junk knobs must never be read
  for (const bool reference_loop : {false, true}) {
    SCOPED_TRACE(reference_loop ? "reference" : "calendar");
    expect_reports_identical(run_scenario(plain, reference_loop),
                             run_scenario(tuned, reference_loop));
  }
}

// --- The enabled path -------------------------------------------------------

TEST(Disagg, FleetServesEverythingThroughPricedHandoffs) {
  const auto trace = poisson_trace(24, 90.0, small_shape(), 21);
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                     moe::SkewProfile::switch_like(),
                     uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced,
                                   SchedulerConfig{}),
                     disagg_config()};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kJoinShortestQueue, 7);
  const ClusterReport rep = cluster.run(trace, *dispatcher);

  // Nothing lost or double-counted across the pool boundary.
  ASSERT_EQ(rep.requests.size(), trace.size());
  std::set<std::uint64_t> ids;
  for (const RequestMetrics& m : rep.requests) ids.insert(m.id);
  EXPECT_EQ(ids.size(), trace.size());
  EXPECT_EQ(rep.retries, 0u);      // handoffs are not failures...
  EXPECT_EQ(rep.migrations, 0u);   // ...nor scale-down migrations

  // Handoffs happened and were priced: tokens crossed the link and the link
  // time is visible in the report.
  EXPECT_GT(rep.handoffs, 0u);
  EXPECT_LE(rep.handoffs, trace.size());
  EXPECT_GT(rep.handoff_tokens, 0);
  EXPECT_GT(rep.handoff_transfer_s, 0.0);
  // A handed-off request was re-dispatched once: its attempt counter says so.
  std::size_t handed = 0;
  for (const RequestMetrics& m : rep.requests) {
    if (m.attempt > 0) ++handed;
  }
  EXPECT_EQ(handed, rep.handoffs);

  // Roles: replica 0 is the prefill specialist (named as such), the rest
  // decode; only the prefill replica releases handoffs.
  ASSERT_EQ(rep.replicas.size(), 3u);
  EXPECT_NE(rep.replicas[0].name.find("[prefill]"), std::string::npos);
  EXPECT_EQ(rep.replicas[0].serve.handoffs, rep.handoffs);
  EXPECT_EQ(rep.replicas[1].serve.handoffs, 0u);
  EXPECT_EQ(rep.replicas[2].serve.handoffs, 0u);

  // Pool breakdowns: every arrival hit the prefill pool, every handoff the
  // decode pool, and both pools actually worked.
  EXPECT_EQ(rep.prefill_pool.replicas, 1u);
  EXPECT_EQ(rep.decode_pool.replicas, 2u);
  EXPECT_EQ(rep.prefill_pool.dispatched, trace.size());
  EXPECT_EQ(rep.decode_pool.dispatched, rep.handoffs);
  EXPECT_GT(rep.prefill_pool.steps, 0u);
  EXPECT_GT(rep.decode_pool.steps, 0u);
  for (const ClusterReport::PoolReport* pool : {&rep.prefill_pool, &rep.decode_pool}) {
    EXPECT_GT(pool->busy_s, 0.0);
    EXPECT_GT(pool->replica_seconds, 0.0);
    EXPECT_GE(pool->utilization, 0.0);
    EXPECT_LE(pool->utilization, 1.0);
    EXPECT_GT(pool->mean_step_ms, 0.0);
  }

  // The timeline records each handoff.
  std::size_t handoff_events = 0;
  for (const ClusterEvent& ev : rep.events) {
    if (ev.kind == ClusterEvent::Kind::kHandoff) ++handoff_events;
  }
  EXPECT_EQ(handoff_events, rep.handoffs);
  EXPECT_EQ(to_string(ClusterEvent::Kind::kHandoff), "handoff");

  // The handoff-ship DMA time is charged to the prefill replica's NEXT
  // step: ships delay the work that follows them. A release with no
  // successor step (the replica's final batch) ships without stretching
  // anything, so the step-charged total is a lower bound on the link time.
  Duration shipped = Duration::zero();
  for (const StepRecord& s : rep.replicas[0].serve.steps) shipped += s.handoff_ship;
  EXPECT_LE(shipped, rep.replicas[0].serve.handoff_transfer);
  EXPECT_GT(shipped, Duration::zero());
}

TEST(Disagg, SlowerHandoffLinkDelaysDecodeArrival) {
  // Same fleet, same trace; only the handoff link changes. A much slower
  // link ships the same KV tokens but later, so fleet completion degrades.
  const auto trace = poisson_trace(24, 120.0, small_shape(), 11);
  const auto run_with = [&](interconnect::LinkSpec link) {
    ClusterConfig cfg = disagg_config();
    cfg.disagg.handoff_link = link;
    ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                       moe::SkewProfile::switch_like(),
                       uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced,
                                     SchedulerConfig{}),
                       cfg};
    const auto dispatcher = make_dispatcher(DispatchPolicy::kJoinShortestQueue, 7);
    return cluster.run(trace, *dispatcher);
  };
  interconnect::LinkSpec slow = interconnect::LinkSpec::pcie_gen4_x16();
  slow.raw_bandwidth = slow.raw_bandwidth * 1e-4;
  const ClusterReport fast_rep = run_with(interconnect::LinkSpec::pcie_gen4_x16());
  const ClusterReport slow_rep = run_with(slow);
  ASSERT_EQ(fast_rep.requests.size(), slow_rep.requests.size());
  EXPECT_EQ(fast_rep.handoff_tokens, slow_rep.handoff_tokens);
  EXPECT_GT(slow_rep.handoff_transfer_s, fast_rep.handoff_transfer_s);
  EXPECT_GT(slow_rep.makespan, fast_rep.makespan);
}

// --- Fault retry across the pool boundary -----------------------------------

/// Deep decodes: the decode pool holds work long enough for a mid-trace
/// fail-stop to strand requests there (small_shape() decodes finish in a
/// few steps and would leave the dying replica already empty).
RequestShape deep_decode_shape() {
  RequestShape s = small_shape();
  s.new_tokens_min = 32;
  s.new_tokens_max = 96;
  return s;
}

TEST(Disagg, DeadDecodeReplicaReHomesHandoffsWithinDecodePool) {
  // Decode replica 1 dies mid-trace with a surviving cache: everything
  // stranded there is already past its prefill, so every retry must stay in
  // the decode pool -- which, with no autoscaler, means replica 2 exactly.
  const auto trace = bursty_trace(24, 6, Duration::millis(25), deep_decode_shape(), 13);
  ClusterConfig cfg = disagg_config();
  cfg.retry_timeout = Duration::millis(2);
  cfg.cache = enabled_cache();
  cfg.cache.survive_failstop = true;
  auto specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  specs[1].fault.fail_at = Duration::millis(30);
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                     moe::SkewProfile::switch_like(), specs, cfg};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kJoinShortestQueue, 7);
  const ClusterReport rep = cluster.run(trace, *dispatcher);

  ASSERT_EQ(rep.requests.size(), trace.size());
  EXPECT_GT(rep.retries, 0u);
  std::size_t retry_events = 0;
  for (const ClusterEvent& ev : rep.events) {
    if (ev.kind != ClusterEvent::Kind::kRetry) continue;
    ++retry_events;
    EXPECT_EQ(ev.replica, 2u) << "decode-phase retry left the decode pool";
  }
  EXPECT_EQ(retry_events, rep.retries);
}

TEST(Disagg, LostCacheRetryReturnsToThePrefillPool) {
  // Without a surviving cache the stranded requests lose their KV state:
  // they are prefill-phase again and must re-enter through the prefill pool
  // (replica 0), then hand off a second time.
  const auto trace = bursty_trace(24, 6, Duration::millis(25), deep_decode_shape(), 13);
  ClusterConfig cfg = disagg_config();
  cfg.retry_timeout = Duration::millis(2);
  auto specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  specs[1].fault.fail_at = Duration::millis(30);
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                     moe::SkewProfile::switch_like(), specs, cfg};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kJoinShortestQueue, 7);
  const ClusterReport rep = cluster.run(trace, *dispatcher);

  ASSERT_EQ(rep.requests.size(), trace.size());
  EXPECT_GT(rep.retries, 0u);
  for (const ClusterEvent& ev : rep.events) {
    if (ev.kind != ClusterEvent::Kind::kRetry) continue;
    EXPECT_EQ(ev.replica, 0u) << "prefill-phase retry skipped the prefill pool";
  }
  // Re-prefilled requests crossed the link once per attempt that completed
  // a prefill, so the fleet saw more handoffs than a fault-free run would.
  std::size_t rehanded = 0;
  for (const RequestMetrics& m : rep.requests) {
    if (m.attempt > 1) ++rehanded;
  }
  EXPECT_GT(rehanded, 0u);
}

// --- Pool-aware autoscaling -------------------------------------------------

TEST(Disagg, AutoscalerGrowsAndShrinksWithoutEmptyingEitherPool) {
  const auto trace = bursty_trace(36, 12, Duration::millis(40), small_shape(), 29);
  ClusterConfig cfg = disagg_config();
  cfg.warmup = Duration::millis(3);
  cfg.autoscale_period = Duration::millis(2);
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(),
                     moe::SkewProfile::switch_like(),
                     uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced,
                                   SchedulerConfig{}),
                     cfg};
  const auto dispatcher = make_dispatcher(DispatchPolicy::kJoinShortestQueue, 11);
  AutoscaleConfig as;
  as.min_replicas = 2;
  as.max_replicas = 6;
  as.high_tokens_per_replica = 96;  // bursts force spawns...
  as.low_tokens_per_replica = 8;    // ...idle gaps force retirements
  const auto autoscaler = make_queue_pressure_autoscaler(as);
  const ClusterReport rep = cluster.run(trace, *dispatcher, autoscaler.get());

  ASSERT_EQ(rep.requests.size(), trace.size());
  EXPECT_GT(rep.handoffs, 0u);
  // Both boot pools kept at least their boot member and may have grown.
  EXPECT_GE(rep.prefill_pool.replicas, 1u);
  EXPECT_GE(rep.decode_pool.replicas, 2u);
  EXPECT_EQ(rep.prefill_pool.replicas + rep.decode_pool.replicas,
            rep.replicas.size());
  // Spawned replicas carry a pool role too: each replica's name declares it.
  for (const ReplicaReport& rr : rep.replicas) {
    const bool prefill = rr.name.find("[prefill]") != std::string::npos;
    if (!prefill) continue;
    EXPECT_GT(rep.prefill_pool.replicas, 0u);
  }
}

// --- Checkpoint cadence (the subsumed carried-over satellite) ----------------

TEST(Disagg, CheckpointCadenceRoundsResumedDecodeProgress) {
  // A surviving cache checkpoints decode progress only every N tokens:
  // retries resume from the last boundary, so a coarse cadence preserves
  // at most as much work as a fine one (interval 1 == continuous == the
  // pre-knob behavior, pinned bit-identically).
  const auto trace = bursty_trace(24, 6, Duration::millis(25), small_shape(), 13);
  const auto run_with = [&](std::int64_t interval) {
    Scenario sc;
    sc.trace = trace;
    sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
    sc.specs[1].fault.fail_at = Duration::millis(30);
    sc.cfg.retry_timeout = Duration::millis(2);
    sc.cfg.cache = enabled_cache();
    sc.cfg.cache.survive_failstop = true;
    sc.cfg.cache.checkpoint_interval_tokens = interval;
    return run_scenario(sc, /*reference_loop=*/false);
  };
  const ClusterReport continuous = run_with(0);
  const ClusterReport unit = run_with(1);
  const ClusterReport coarse = run_with(1 << 20);  // boundary never reached
  expect_reports_identical(continuous, unit);

  ASSERT_EQ(coarse.requests.size(), continuous.requests.size());
  std::int64_t fine_resumed = 0, coarse_resumed = 0;
  for (std::size_t i = 0; i < continuous.requests.size(); ++i) {
    fine_resumed += continuous.requests[i].resumed_tokens;
    coarse_resumed += coarse.requests[i].resumed_tokens;
  }
  EXPECT_GT(continuous.retries, 0u);
  EXPECT_EQ(coarse.retries, continuous.retries);
  EXPECT_LT(coarse_resumed, fine_resumed);  // decoded progress was rounded away

  PrefixCacheConfig bad = enabled_cache();
  bad.checkpoint_interval_tokens = -1;
  EXPECT_THROW(bad.validate(), Error);
}

// --- Loop/thread agreement with disagg on (acceptance pin) -------------------

TEST(DisaggDiff, PlainDisaggFleetAgreesAcrossLoopsAndThreads) {
  Scenario sc;
  sc.trace = poisson_trace(24, 90.0, small_shape(), 21);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg = disagg_config();
  expect_threads_agree(sc);
}

TEST(DisaggDiff, TwoPrefillReplicasAndAdmissionCapAgree) {
  Scenario sc;
  sc.trace = poisson_trace(28, 120.0, small_shape(), 17);
  sc.specs = uniform_fleet(4, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg = disagg_config(2);
  sc.cfg.disagg.decode_admit_tokens = 48;  // exercises the capped admission path
  sc.policy = DispatchPolicy::kLeastOutstandingTokens;
  expect_threads_agree(sc);
}

TEST(DisaggDiff, FaultsCacheAndAutoscaleAgree) {
  // The kitchen sink: a dying decode replica, surviving checkpoints with a
  // coarse cadence, and a pool-aware autoscaler -- every disagg moving part
  // at once, pinned across both loops and 1/2/4/8 threads.
  Scenario sc;
  sc.trace = bursty_trace(28, 7, Duration::millis(25), small_shape(), 19);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[1].fault.fail_at = Duration::millis(35);
  sc.cfg = disagg_config();
  sc.cfg.retry_timeout = Duration::millis(2);
  sc.cfg.warmup = Duration::millis(2);
  sc.cfg.autoscale_period = Duration::millis(3);
  sc.cfg.cache = enabled_cache();
  sc.cfg.cache.survive_failstop = true;
  sc.cfg.cache.checkpoint_interval_tokens = 4;
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 2;
  sc.autoscale.max_replicas = 6;
  sc.autoscale.high_tokens_per_replica = 96;
  sc.autoscale.low_tokens_per_replica = 8;
  expect_threads_agree(sc);
}

}  // namespace
}  // namespace monde::serve
