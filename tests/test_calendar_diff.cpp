// Refactor-seam pinning for the indexed event calendar (PR 6) and its
// parallel advancement phase (PR 7): the calendar-driven ClusterSim::run
// loop must be bit-identical to the classic scan-everything loop
// (ClusterConfig::reference_loop) on the same seeds, across every behavior
// the cluster models -- plain dispatch, failure injection + retry,
// autoscaling, and KV-cache recovery/migration -- and at every thread count
// (the Parallel* tests diff 1/2/4/8 worker threads against the sequential
// reference; the commit-order rule in serve/cluster.cpp is what makes that
// hold). Also covers the event-log gating satellite (metrics identical with
// the log off), the incremental slow-EWMA filter, and the ServerSim version
// counter the calendar's lazy deletion trusts.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"

namespace monde::serve {
namespace {

/// A small MoE model that keeps cycle-level simulations fast.
moe::MoeModelConfig tiny_model() {
  moe::MoeModelConfig m = moe::MoeModelConfig::switch_variant(512, 16);
  m.encoder_blocks = 4;
  m.decoder_blocks = 4;
  m.moe_every = 2;
  m.vocab_size = 8192;
  m.top_k = 2;
  m.name = "tiny-test-model";
  return m;
}

RequestShape small_shape() {
  RequestShape s;
  s.prompt_min = 16;
  s.prompt_max = 48;
  s.new_tokens_min = 2;
  s.new_tokens_max = 8;
  return s;
}

/// Every field of two ClusterReports, compared exactly. Duration carries an
/// exact (defaulted) comparison, so == here really is bit-identity.
void expect_reports_identical(const ClusterReport& a, const ClusterReport& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.autoscaler, b.autoscaler);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const RequestMetrics& x = a.requests[i];
    const RequestMetrics& y = b.requests[i];
    EXPECT_EQ(x.id, y.id) << "request " << i;
    EXPECT_EQ(x.attempt, y.attempt) << "request " << x.id;
    EXPECT_EQ(x.generated, y.generated) << "request " << x.id;
    EXPECT_EQ(x.saved_tokens, y.saved_tokens) << "request " << x.id;
    EXPECT_EQ(x.resumed_tokens, y.resumed_tokens) << "request " << x.id;
    EXPECT_EQ(x.arrival, y.arrival) << "request " << x.id;
    EXPECT_EQ(x.admitted, y.admitted) << "request " << x.id;
    EXPECT_EQ(x.first_token, y.first_token) << "request " << x.id;
    EXPECT_EQ(x.completion, y.completion) << "request " << x.id;
  }
  ASSERT_EQ(a.replicas.size(), b.replicas.size());
  for (std::size_t i = 0; i < a.replicas.size(); ++i) {
    const ReplicaReport& x = a.replicas[i];
    const ReplicaReport& y = b.replicas[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.dispatched, y.dispatched) << x.name;
    EXPECT_EQ(x.spawned_at, y.spawned_at) << x.name;
    EXPECT_EQ(x.alive_until, y.alive_until) << x.name;
    EXPECT_EQ(x.utilization, y.utilization) << x.name;
    EXPECT_EQ(x.failed, y.failed) << x.name;
    EXPECT_EQ(x.retired, y.retired) << x.name;
    EXPECT_EQ(x.serve.makespan, y.serve.makespan) << x.name;
    EXPECT_EQ(x.serve.busy, y.serve.busy) << x.name;
    EXPECT_EQ(x.serve.generated_tokens, y.serve.generated_tokens) << x.name;
    EXPECT_EQ(x.serve.steps.size(), y.serve.steps.size()) << x.name;
    EXPECT_EQ(x.serve.cache.saved_tokens, y.serve.cache.saved_tokens) << x.name;
    EXPECT_EQ(x.serve.expert_hits, y.serve.expert_hits) << x.name;
    EXPECT_EQ(x.serve.expert_misses, y.serve.expert_misses) << x.name;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.generated_tokens, b.generated_tokens);
  EXPECT_EQ(a.tokens_per_s, b.tokens_per_s);
  EXPECT_EQ(a.ttft_ms.p50, b.ttft_ms.p50);
  EXPECT_EQ(a.ttft_ms.p95, b.ttft_ms.p95);
  EXPECT_EQ(a.ttft_ms.p99, b.ttft_ms.p99);
  EXPECT_EQ(a.tpot_ms.p50, b.tpot_ms.p50);
  EXPECT_EQ(a.e2e_ms.p50, b.e2e_ms.p50);
  EXPECT_EQ(a.e2e_ms.p95, b.e2e_ms.p95);
  EXPECT_EQ(a.e2e_ms.p99, b.e2e_ms.p99);
  EXPECT_EQ(a.imbalance, b.imbalance);
  EXPECT_EQ(a.fleet_utilization, b.fleet_utilization);
  EXPECT_EQ(a.replica_seconds, b.replica_seconds);
  EXPECT_EQ(a.peak_replicas, b.peak_replicas);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.cached_prefill_tokens, b.cached_prefill_tokens);
  EXPECT_EQ(a.expert_hits, b.expert_hits);
  EXPECT_EQ(a.expert_misses, b.expert_misses);
  EXPECT_EQ(a.expert_hit_rate, b.expert_hit_rate);
  EXPECT_EQ(a.expert_migrations, b.expert_migrations);
  EXPECT_EQ(a.pruned_requests, b.pruned_requests);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << "event " << i;
    EXPECT_EQ(a.events[i].time, b.events[i].time) << "event " << i;
    EXPECT_EQ(a.events[i].replica, b.events[i].replica) << "event " << i;
    EXPECT_EQ(a.events[i].detail, b.events[i].detail) << "event " << i;
  }
}

/// Run one scenario twice -- calendar loop vs reference loop -- with fresh
/// (stateful) dispatchers/autoscalers, and demand bit-identical reports.
struct Scenario {
  std::vector<Request> trace;
  std::vector<ReplicaSpec> specs;
  ClusterConfig cfg;
  DispatchPolicy policy = DispatchPolicy::kJoinShortestQueue;
  std::uint64_t dispatch_seed = 7;
  AutoscaleConfig autoscale;
  bool autoscaled = false;
  std::size_t threads = 1;  ///< calendar-loop worker threads (reference stays 1)
};

ClusterReport run_scenario(const Scenario& sc, bool reference_loop) {
  ClusterConfig cfg = sc.cfg;
  cfg.reference_loop = reference_loop;
  cfg.threads = reference_loop ? 1 : sc.threads;
  ClusterSim cluster{core::SystemConfig::dac24(), tiny_model(), moe::SkewProfile::switch_like(),
                     sc.specs, cfg};
  const auto dispatcher = make_dispatcher(sc.policy, sc.dispatch_seed);
  if (!sc.autoscaled) return cluster.run(sc.trace, *dispatcher);
  const auto autoscaler = make_queue_pressure_autoscaler(sc.autoscale);
  return cluster.run(sc.trace, *dispatcher, autoscaler.get());
}

void expect_loops_agree(const Scenario& sc) {
  expect_reports_identical(run_scenario(sc, /*reference_loop=*/false),
                           run_scenario(sc, /*reference_loop=*/true));
}

/// The parallel calendar loop must match the sequential reference at every
/// thread count: thread scheduling may reorder the advancement work, but the
/// ascending-replica commit order pins every counter and RNG stream.
void expect_threads_agree(Scenario sc) {
  const ClusterReport ref = run_scenario(sc, /*reference_loop=*/true);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    sc.threads = threads;
    expect_reports_identical(run_scenario(sc, /*reference_loop=*/false), ref);
  }
}

TEST(CalendarDiff, PlainFleetAllPolicies) {
  for (const DispatchPolicy policy : all_dispatch_policies()) {
    Scenario sc;
    sc.trace = poisson_trace(24, 90.0, small_shape(), 21);
    sc.specs = uniform_fleet(4, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
    sc.policy = policy;
    expect_loops_agree(sc);
  }
}

TEST(CalendarDiff, FaultInjectionWithRetries) {
  Scenario sc;
  sc.trace = bursty_trace(24, 6, Duration::millis(25), small_shape(), 13);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[1].fault.fail_at = Duration::millis(30);  // dies mid-trace, strands work
  sc.specs[2].fault.slow_from = Duration::millis(10);  // and a degraded peer
  sc.specs[2].fault.slow_until = Duration::millis(60);
  sc.specs[2].fault.slow_factor = 3.0;
  sc.cfg.retry_timeout = Duration::millis(2);
  expect_loops_agree(sc);
}

TEST(CalendarDiff, TwoFailStopsCascade) {
  // Both replicas die; retries land on autoscaled replacement capacity --
  // exercises the fail cursor, detection cursor, and spawn path together.
  Scenario sc;
  sc.trace = poisson_trace(16, 120.0, small_shape(), 5);
  sc.specs = uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[0].fault.fail_at = Duration::millis(2);
  sc.specs[1].fault.fail_at = Duration::millis(8);
  sc.cfg.retry_timeout = Duration::millis(2);
  sc.cfg.warmup = Duration::millis(1);
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 1;
  sc.autoscale.max_replicas = 4;
  sc.autoscale.high_tokens_per_replica = 1;  // spawn eagerly: capacity must
  sc.autoscale.low_tokens_per_replica = 0;   // always exist for the retries
  expect_loops_agree(sc);
}

TEST(CalendarDiff, AutoscaleUpAndDown) {
  Scenario sc;
  sc.trace = bursty_trace(36, 12, Duration::millis(40), small_shape(), 29);
  sc.specs = uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg.warmup = Duration::millis(3);
  sc.cfg.autoscale_period = Duration::millis(2);
  sc.policy = DispatchPolicy::kPowerOfTwoChoices;
  sc.dispatch_seed = 11;
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 1;
  sc.autoscale.max_replicas = 6;
  sc.autoscale.high_tokens_per_replica = 96;  // bursts force spawns...
  sc.autoscale.low_tokens_per_replica = 8;    // ...idle gaps force retirements
  expect_loops_agree(sc);
}

TEST(CalendarDiff, PrefixCacheSurvivalAndMigration) {
  RequestShape shape = small_shape();
  shape.prefix_groups = 2;  // shared prefixes feed the caches
  shape.shared_fraction = 0.75;
  shape.shared_prefix_len = 12;
  Scenario sc;
  sc.trace = poisson_trace(28, 100.0, shape, 17);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[0].fault.fail_at = Duration::millis(25);  // retries resume from checkpoints
  sc.cfg.retry_timeout = Duration::millis(2);
  sc.cfg.cache.enabled = true;
  sc.cfg.cache.capacity_tokens = 4096;
  sc.cfg.cache.survive_failstop = true;
  sc.cfg.cache.migrate_on_retire = true;  // retirements live-migrate
  sc.cfg.warmup = Duration::millis(2);
  sc.cfg.autoscale_period = Duration::millis(4);
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 1;
  sc.autoscale.max_replicas = 4;
  sc.autoscale.high_tokens_per_replica = 1 << 20;
  sc.autoscale.low_tokens_per_replica = 1 << 19;  // always prefer shrinking
  expect_loops_agree(sc);
}

TEST(CalendarDiff, SlowEwmaFilterStaysIncremental) {
  // A finite slow_ewma_factor keeps the eligible index incremental: the
  // fleet-median cutoff is a running median and the fast set is maintained
  // by write-through -- bit-identical to the reference filter's per-dispatch
  // rebuild (the running median reproduces percentile(ewmas, 50) exactly).
  Scenario sc;
  sc.trace = poisson_trace(20, 80.0, small_shape(), 33);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[2].fault.slow_from = Duration::zero();
  sc.specs[2].fault.slow_until = Duration::seconds(1);
  sc.specs[2].fault.slow_factor = 8.0;
  sc.cfg.health.slow_ewma_factor = 2.0;
  expect_loops_agree(sc);
}

TEST(CalendarDiff, SlowEwmaFilterWithFailuresAndAutoscale) {
  // The incremental median/fast-set must also survive membership churn:
  // replicas leaving on detection and retirement, joining on spawn, and a
  // degraded peer whose EWMA keeps crossing the moving cutoff.
  Scenario sc;
  sc.trace = bursty_trace(28, 7, Duration::millis(25), small_shape(), 19);
  sc.specs = uniform_fleet(4, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[1].fault.fail_at = Duration::millis(35);
  sc.specs[3].fault.slow_from = Duration::millis(5);
  sc.specs[3].fault.slow_until = Duration::millis(80);
  sc.specs[3].fault.slow_factor = 6.0;
  sc.cfg.health.slow_ewma_factor = 2.0;
  sc.cfg.retry_timeout = Duration::millis(2);
  sc.cfg.warmup = Duration::millis(2);
  sc.cfg.autoscale_period = Duration::millis(3);
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 2;
  sc.autoscale.max_replicas = 6;
  sc.autoscale.high_tokens_per_replica = 96;
  sc.autoscale.low_tokens_per_replica = 8;
  expect_loops_agree(sc);
}

// --- Expert-aware serving (profiles, residency, rebalance, pruning) ---------

/// The expert configuration exercised by the diff scenarios: every moving
/// part on at once -- small caches, a rebalance tick, and the pruned
/// degraded mode -- so the calendar loop must reproduce all of it.
ExpertServingConfig diff_expert_config() {
  ExpertServingConfig e;
  e.enabled = true;
  e.cache_capacity = 6;
  e.rebalance_period = Duration::millis(10);
  e.rebalance_hot_experts = 3;
  e.prune_outstanding_tokens = 64;
  return e;
}

TEST(CalendarDiff, ExpertAffinityServingAgrees) {
  Scenario sc;
  sc.trace = poisson_trace(32, 300.0, small_shape(), 21);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg.expert = diff_expert_config();
  sc.policy = DispatchPolicy::kExpertAffinity;
  expect_loops_agree(sc);
}

TEST(CalendarDiff, ExpertShardedServingAgrees) {
  Scenario sc;
  sc.trace = poisson_trace(32, 300.0, small_shape(), 21);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg.expert = diff_expert_config();
  sc.policy = DispatchPolicy::kExpertSharded;
  expect_loops_agree(sc);
}

TEST(CalendarDiff, ExpertServingWithFailuresAndAutoscale) {
  // Residency + rebalance under membership churn: a fail-stop mid-trace and
  // an autoscaler spawning/retiring around it. Rebalance preloads must skip
  // dead/retired replicas identically in both loops.
  Scenario sc;
  sc.trace = bursty_trace(28, 7, Duration::millis(25), small_shape(), 19);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[1].fault.fail_at = Duration::millis(35);
  sc.cfg.expert = diff_expert_config();
  sc.cfg.retry_timeout = Duration::millis(2);
  sc.cfg.warmup = Duration::millis(2);
  sc.cfg.autoscale_period = Duration::millis(3);
  sc.policy = DispatchPolicy::kExpertAffinity;
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 2;
  sc.autoscale.max_replicas = 5;
  sc.autoscale.high_tokens_per_replica = 96;
  sc.autoscale.low_tokens_per_replica = 8;
  expect_loops_agree(sc);
}

TEST(CalendarDiff, ExpertDisabledConfigIsInert) {
  // A disabled expert config -- even with every other knob tuned -- must
  // leave the run bit-identical to a default-constructed one: the off
  // switch pins the expert-oblivious behavior.
  Scenario plain;
  plain.trace = poisson_trace(24, 90.0, small_shape(), 21);
  plain.specs = uniform_fleet(4, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  plain.policy = DispatchPolicy::kLeastOutstandingTokens;
  Scenario tuned = plain;
  tuned.cfg.expert = diff_expert_config();
  tuned.cfg.expert.enabled = false;
  expect_reports_identical(run_scenario(plain, /*reference_loop=*/false),
                           run_scenario(tuned, /*reference_loop=*/false));
}

// --- Parallel advancement (PR 7): 1/2/4/8 threads vs the reference ----------

TEST(ParallelDiff, PlainFleetAllPolicies) {
  for (const DispatchPolicy policy : all_dispatch_policies()) {
    Scenario sc;
    sc.trace = poisson_trace(24, 90.0, small_shape(), 21);
    sc.specs = uniform_fleet(4, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
    sc.policy = policy;
    expect_threads_agree(sc);
  }
}

TEST(ParallelDiff, FaultInjectionWithRetries) {
  Scenario sc;
  sc.trace = bursty_trace(24, 6, Duration::millis(25), small_shape(), 13);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[1].fault.fail_at = Duration::millis(30);
  sc.specs[2].fault.slow_from = Duration::millis(10);
  sc.specs[2].fault.slow_until = Duration::millis(60);
  sc.specs[2].fault.slow_factor = 3.0;
  sc.cfg.retry_timeout = Duration::millis(2);
  expect_threads_agree(sc);
}

TEST(ParallelDiff, AutoscaleUpAndDown) {
  Scenario sc;
  sc.trace = bursty_trace(36, 12, Duration::millis(40), small_shape(), 29);
  sc.specs = uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg.warmup = Duration::millis(3);
  sc.cfg.autoscale_period = Duration::millis(2);
  sc.policy = DispatchPolicy::kPowerOfTwoChoices;
  sc.dispatch_seed = 11;
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 1;
  sc.autoscale.max_replicas = 6;
  sc.autoscale.high_tokens_per_replica = 96;
  sc.autoscale.low_tokens_per_replica = 8;
  expect_threads_agree(sc);
}

TEST(ParallelDiff, PrefixCacheSurvivalAndMigration) {
  RequestShape shape = small_shape();
  shape.prefix_groups = 2;
  shape.shared_fraction = 0.75;
  shape.shared_prefix_len = 12;
  Scenario sc;
  sc.trace = poisson_trace(28, 100.0, shape, 17);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[0].fault.fail_at = Duration::millis(25);
  sc.cfg.retry_timeout = Duration::millis(2);
  sc.cfg.cache.enabled = true;
  sc.cfg.cache.capacity_tokens = 4096;
  sc.cfg.cache.survive_failstop = true;
  sc.cfg.cache.migrate_on_retire = true;
  sc.cfg.warmup = Duration::millis(2);
  sc.cfg.autoscale_period = Duration::millis(4);
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 1;
  sc.autoscale.max_replicas = 4;
  sc.autoscale.high_tokens_per_replica = 1 << 20;
  sc.autoscale.low_tokens_per_replica = 1 << 19;
  expect_threads_agree(sc);
}

TEST(ParallelDiff, ExpertServingAcrossThreads) {
  Scenario sc;
  sc.trace = poisson_trace(32, 300.0, small_shape(), 21);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg.expert = diff_expert_config();
  sc.policy = DispatchPolicy::kExpertAffinity;
  expect_threads_agree(sc);
}

TEST(ParallelDiff, SlowEwmaFilterAcrossThreads) {
  Scenario sc;
  sc.trace = poisson_trace(20, 80.0, small_shape(), 33);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[2].fault.slow_from = Duration::zero();
  sc.specs[2].fault.slow_until = Duration::seconds(1);
  sc.specs[2].fault.slow_factor = 8.0;
  sc.cfg.health.slow_ewma_factor = 2.0;
  expect_threads_agree(sc);
}

// --- Event-log gating (the perf-bugfix satellite) ---------------------------

TEST(CalendarDiff, EventLogOffLeavesMetricsIdentical) {
  Scenario sc;
  sc.trace = bursty_trace(24, 6, Duration::millis(25), small_shape(), 13);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[1].fault.fail_at = Duration::millis(30);
  sc.cfg.retry_timeout = Duration::millis(2);
  sc.cfg.warmup = Duration::millis(2);
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 1;
  sc.autoscale.max_replicas = 4;
  sc.autoscale.high_tokens_per_replica = 96;
  sc.autoscale.low_tokens_per_replica = 8;

  const ClusterReport logged = run_scenario(sc, /*reference_loop=*/false);
  Scenario muted = sc;
  muted.cfg.event_log_enabled = false;
  const ClusterReport quiet = run_scenario(muted, /*reference_loop=*/false);

  EXPECT_GT(logged.events.size(), 0u);  // the scenario actually logs things
  EXPECT_TRUE(quiet.events.empty());
  EXPECT_EQ(logged.retries, quiet.retries);        // counters survive the gate
  EXPECT_EQ(logged.migrations, quiet.migrations);
  EXPECT_EQ(logged.peak_replicas, quiet.peak_replicas);
  // Everything except the log itself is identical.
  ClusterReport a = logged;
  ClusterReport b = quiet;
  a.events.clear();
  b.events.clear();
  expect_reports_identical(a, b);
}

// --- ServerSim version counter (what lazy deletion trusts) ------------------

TEST(ServerVersion, BumpsOnMutationOnlyAndGuardsNextEvent) {
  auto engine = core::InferenceEngine{core::SystemConfig::dac24(), tiny_model(),
                                      moe::SkewProfile::switch_like(),
                                      core::StrategyKind::kMondeLoadBalanced, 42};
  ServerSim server{engine, SchedulerConfig{}};
  const std::uint64_t v0 = server.version();
  EXPECT_EQ(server.next_event_time(), Duration::infinite());
  EXPECT_EQ(server.version(), v0);  // polling is not a mutation

  Request rq;
  rq.id = 0;
  rq.arrival = Duration::millis(1);
  rq.prompt_len = 16;
  rq.max_new_tokens = 4;
  server.enqueue(rq);
  const std::uint64_t v1 = server.version();
  EXPECT_GT(v1, v0);  // an enqueue is
  EXPECT_EQ(server.next_event_time(), Duration::millis(1));

  server.advance_to(Duration::millis(1));  // strict-before: a no-op
  EXPECT_EQ(server.version(), v1);
  EXPECT_EQ(server.next_event_time(), Duration::millis(1));

  server.advance_to(Duration::millis(2));  // runs at least the first step
  const std::uint64_t v2 = server.version();
  EXPECT_GT(v2, v1);
  // The cached next event matches a fresh computation and survives polling.
  const Duration next = server.next_event_time();
  EXPECT_EQ(server.next_event_time(), next);
  EXPECT_EQ(server.version(), v2);

  server.drain();
  EXPECT_GT(server.version(), v2);
  EXPECT_EQ(server.next_event_time(), Duration::infinite());
}

TEST(ServerVersion, FailStopBumpsAndPinsInfiniteNextEvent) {
  auto engine = core::InferenceEngine{core::SystemConfig::dac24(), tiny_model(),
                                      moe::SkewProfile::switch_like(),
                                      core::StrategyKind::kMondeLoadBalanced, 42};
  FaultSpec fault;
  fault.fail_at = Duration::millis(5);
  ServerSim server{engine, SchedulerConfig{}, Duration::zero(), fault};
  Request rq;
  rq.id = 0;
  rq.arrival = Duration::zero();
  rq.prompt_len = 16;
  rq.max_new_tokens = 64;  // long enough to still be running at the death
  server.enqueue(rq);
  const std::uint64_t armed = server.version();
  server.advance_to(Duration::millis(10));  // crosses fail_at: the server dies
  EXPECT_TRUE(server.failed());
  EXPECT_GT(server.version(), armed);
  EXPECT_EQ(server.next_event_time(), Duration::infinite());
  const std::uint64_t dead = server.version();
  (void)server.harvest_stranded();
  EXPECT_GT(server.version(), dead);  // harvest mutates too
}

}  // namespace
}  // namespace monde::serve
