// Refactor-seam pinning for the indexed event calendar (PR 6) and its
// parallel advancement phase (PR 7): the calendar-driven ClusterSim::run
// loop must be bit-identical to the classic scan-everything loop
// (ClusterConfig::reference_loop) on the same seeds, across every behavior
// the cluster models -- plain dispatch, failure injection + retry,
// autoscaling, and KV-cache recovery/migration -- and at every thread count
// (the Parallel* tests diff 1/2/4/8 worker threads against the sequential
// reference; the commit-order rule in serve/cluster.cpp is what makes that
// hold). Also covers the event-log gating satellite (metrics identical with
// the log off), the incremental slow-EWMA filter, and the ServerSim version
// counter the calendar's lazy deletion trusts.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "serve/arrivals.hpp"
#include "serve/cluster.hpp"
#include "serve_fixtures.hpp"

namespace monde::serve {
namespace {

// Scenario builders and the bit-identity comparator live in
// tests/serve_fixtures.hpp, shared with the disagg and random-diff suites.
using namespace fixtures;

TEST(CalendarDiff, PlainFleetAllPolicies) {
  for (const DispatchPolicy policy : all_dispatch_policies()) {
    Scenario sc;
    sc.trace = poisson_trace(24, 90.0, small_shape(), 21);
    sc.specs = uniform_fleet(4, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
    sc.policy = policy;
    expect_loops_agree(sc);
  }
}

TEST(CalendarDiff, FaultInjectionWithRetries) {
  Scenario sc;
  sc.trace = bursty_trace(24, 6, Duration::millis(25), small_shape(), 13);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[1].fault.fail_at = Duration::millis(30);  // dies mid-trace, strands work
  sc.specs[2].fault.slow_from = Duration::millis(10);  // and a degraded peer
  sc.specs[2].fault.slow_until = Duration::millis(60);
  sc.specs[2].fault.slow_factor = 3.0;
  sc.cfg.retry_timeout = Duration::millis(2);
  expect_loops_agree(sc);
}

TEST(CalendarDiff, TwoFailStopsCascade) {
  // Both replicas die; retries land on autoscaled replacement capacity --
  // exercises the fail cursor, detection cursor, and spawn path together.
  Scenario sc;
  sc.trace = poisson_trace(16, 120.0, small_shape(), 5);
  sc.specs = uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[0].fault.fail_at = Duration::millis(2);
  sc.specs[1].fault.fail_at = Duration::millis(8);
  sc.cfg.retry_timeout = Duration::millis(2);
  sc.cfg.warmup = Duration::millis(1);
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 1;
  sc.autoscale.max_replicas = 4;
  sc.autoscale.high_tokens_per_replica = 1;  // spawn eagerly: capacity must
  sc.autoscale.low_tokens_per_replica = 0;   // always exist for the retries
  expect_loops_agree(sc);
}

TEST(CalendarDiff, AutoscaleUpAndDown) {
  Scenario sc;
  sc.trace = bursty_trace(36, 12, Duration::millis(40), small_shape(), 29);
  sc.specs = uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg.warmup = Duration::millis(3);
  sc.cfg.autoscale_period = Duration::millis(2);
  sc.policy = DispatchPolicy::kPowerOfTwoChoices;
  sc.dispatch_seed = 11;
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 1;
  sc.autoscale.max_replicas = 6;
  sc.autoscale.high_tokens_per_replica = 96;  // bursts force spawns...
  sc.autoscale.low_tokens_per_replica = 8;    // ...idle gaps force retirements
  expect_loops_agree(sc);
}

TEST(CalendarDiff, PrefixCacheSurvivalAndMigration) {
  RequestShape shape = small_shape();
  shape.prefix_groups = 2;  // shared prefixes feed the caches
  shape.shared_fraction = 0.75;
  shape.shared_prefix_len = 12;
  Scenario sc;
  sc.trace = poisson_trace(28, 100.0, shape, 17);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[0].fault.fail_at = Duration::millis(25);  // retries resume from checkpoints
  sc.cfg.retry_timeout = Duration::millis(2);
  sc.cfg.cache.enabled = true;
  sc.cfg.cache.capacity_tokens = 4096;
  sc.cfg.cache.survive_failstop = true;
  sc.cfg.cache.migrate_on_retire = true;  // retirements live-migrate
  sc.cfg.warmup = Duration::millis(2);
  sc.cfg.autoscale_period = Duration::millis(4);
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 1;
  sc.autoscale.max_replicas = 4;
  sc.autoscale.high_tokens_per_replica = 1 << 20;
  sc.autoscale.low_tokens_per_replica = 1 << 19;  // always prefer shrinking
  expect_loops_agree(sc);
}

TEST(CalendarDiff, SlowEwmaFilterStaysIncremental) {
  // A finite slow_ewma_factor keeps the eligible index incremental: the
  // fleet-median cutoff is a running median and the fast set is maintained
  // by write-through -- bit-identical to the reference filter's per-dispatch
  // rebuild (the running median reproduces percentile(ewmas, 50) exactly).
  Scenario sc;
  sc.trace = poisson_trace(20, 80.0, small_shape(), 33);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[2].fault.slow_from = Duration::zero();
  sc.specs[2].fault.slow_until = Duration::seconds(1);
  sc.specs[2].fault.slow_factor = 8.0;
  sc.cfg.health.slow_ewma_factor = 2.0;
  expect_loops_agree(sc);
}

TEST(CalendarDiff, SlowEwmaFilterWithFailuresAndAutoscale) {
  // The incremental median/fast-set must also survive membership churn:
  // replicas leaving on detection and retirement, joining on spawn, and a
  // degraded peer whose EWMA keeps crossing the moving cutoff.
  Scenario sc;
  sc.trace = bursty_trace(28, 7, Duration::millis(25), small_shape(), 19);
  sc.specs = uniform_fleet(4, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[1].fault.fail_at = Duration::millis(35);
  sc.specs[3].fault.slow_from = Duration::millis(5);
  sc.specs[3].fault.slow_until = Duration::millis(80);
  sc.specs[3].fault.slow_factor = 6.0;
  sc.cfg.health.slow_ewma_factor = 2.0;
  sc.cfg.retry_timeout = Duration::millis(2);
  sc.cfg.warmup = Duration::millis(2);
  sc.cfg.autoscale_period = Duration::millis(3);
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 2;
  sc.autoscale.max_replicas = 6;
  sc.autoscale.high_tokens_per_replica = 96;
  sc.autoscale.low_tokens_per_replica = 8;
  expect_loops_agree(sc);
}

// --- Expert-aware serving (profiles, residency, rebalance, pruning) ---------

/// The expert configuration exercised by the diff scenarios: every moving
/// part on at once -- small caches, a rebalance tick, and the pruned
/// degraded mode -- so the calendar loop must reproduce all of it.
ExpertServingConfig diff_expert_config() {
  ExpertServingConfig e;
  e.enabled = true;
  e.cache_capacity = 6;
  e.rebalance_period = Duration::millis(10);
  e.rebalance_hot_experts = 3;
  e.prune_outstanding_tokens = 64;
  return e;
}

TEST(CalendarDiff, ExpertAffinityServingAgrees) {
  Scenario sc;
  sc.trace = poisson_trace(32, 300.0, small_shape(), 21);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg.expert = diff_expert_config();
  sc.policy = DispatchPolicy::kExpertAffinity;
  expect_loops_agree(sc);
}

TEST(CalendarDiff, ExpertShardedServingAgrees) {
  Scenario sc;
  sc.trace = poisson_trace(32, 300.0, small_shape(), 21);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg.expert = diff_expert_config();
  sc.policy = DispatchPolicy::kExpertSharded;
  expect_loops_agree(sc);
}

TEST(CalendarDiff, ExpertServingWithFailuresAndAutoscale) {
  // Residency + rebalance under membership churn: a fail-stop mid-trace and
  // an autoscaler spawning/retiring around it. Rebalance preloads must skip
  // dead/retired replicas identically in both loops.
  Scenario sc;
  sc.trace = bursty_trace(28, 7, Duration::millis(25), small_shape(), 19);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[1].fault.fail_at = Duration::millis(35);
  sc.cfg.expert = diff_expert_config();
  sc.cfg.retry_timeout = Duration::millis(2);
  sc.cfg.warmup = Duration::millis(2);
  sc.cfg.autoscale_period = Duration::millis(3);
  sc.policy = DispatchPolicy::kExpertAffinity;
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 2;
  sc.autoscale.max_replicas = 5;
  sc.autoscale.high_tokens_per_replica = 96;
  sc.autoscale.low_tokens_per_replica = 8;
  expect_loops_agree(sc);
}

// A multi-tenant shared-prefix shape: most requests join one of a few
// Zipf-skewed groups, so the prefix caches fill and the prefix_sig
// snapshot field actually carries bits through the write-through paths.
RequestShape prefix_shape() {
  RequestShape shape = small_shape();
  shape.prefix_groups = 4;
  shape.shared_fraction = 0.8;
  shape.shared_prefix_len = 12;
  shape.prefix_zipf_s = 1.0;
  return shape;
}

TEST(CalendarDiff, PrefixHashRoutingAgrees) {
  Scenario sc;
  sc.trace = poisson_trace(32, 300.0, prefix_shape(), 21);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg.cache.enabled = true;
  sc.cfg.cache.capacity_tokens = 4096;
  sc.policy = DispatchPolicy::kPrefixHash;
  expect_loops_agree(sc);
}

TEST(CalendarDiff, PrefixAffinityRoutingAgrees) {
  Scenario sc;
  sc.trace = poisson_trace(32, 300.0, prefix_shape(), 21);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg.cache.enabled = true;
  sc.cfg.cache.capacity_tokens = 4096;
  sc.policy = DispatchPolicy::kPrefixAffinity;
  expect_loops_agree(sc);
}

TEST(CalendarDiff, PrefixRoutingWithFaultsAndAutoscale) {
  // Ring membership under churn: a fail-stop mid-trace plus autoscale
  // spawns/retirements -- the consistent-hash ring (and the prefix_sig
  // write-through on migration) must re-home identically in both loops.
  Scenario sc;
  sc.trace = bursty_trace(28, 7, Duration::millis(25), prefix_shape(), 19);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[1].fault.fail_at = Duration::millis(35);
  sc.cfg.cache.enabled = true;
  sc.cfg.cache.capacity_tokens = 2048;
  sc.cfg.cache.survive_failstop = true;
  sc.cfg.cache.migrate_on_retire = true;
  sc.cfg.retry_timeout = Duration::millis(2);
  sc.cfg.warmup = Duration::millis(2);
  sc.cfg.autoscale_period = Duration::millis(3);
  sc.policy = DispatchPolicy::kPrefixHash;
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 2;
  sc.autoscale.max_replicas = 5;
  sc.autoscale.high_tokens_per_replica = 96;
  sc.autoscale.low_tokens_per_replica = 8;
  expect_loops_agree(sc);
}

TEST(CalendarDiff, PrefixAffinityWithDisaggPools) {
  // Affinity composes with disaggregation: the prefill pool is where the
  // prefix routing applies; handoffs land decode-phase work via the
  // least-outstanding fallback.
  Scenario sc;
  sc.trace = poisson_trace(28, 250.0, prefix_shape(), 23);
  sc.specs = uniform_fleet(4, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg.disagg.enabled = true;
  sc.cfg.disagg.prefill_replicas = 2;
  sc.cfg.cache.enabled = true;
  sc.cfg.cache.capacity_tokens = 4096;
  sc.policy = DispatchPolicy::kPrefixAffinity;
  expect_loops_agree(sc);
}

TEST(CalendarDiff, ExpertDisabledConfigIsInert) {
  // A disabled expert config -- even with every other knob tuned -- must
  // leave the run bit-identical to a default-constructed one: the off
  // switch pins the expert-oblivious behavior.
  Scenario plain;
  plain.trace = poisson_trace(24, 90.0, small_shape(), 21);
  plain.specs = uniform_fleet(4, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  plain.policy = DispatchPolicy::kLeastOutstandingTokens;
  Scenario tuned = plain;
  tuned.cfg.expert = diff_expert_config();
  tuned.cfg.expert.enabled = false;
  expect_reports_identical(run_scenario(plain, /*reference_loop=*/false),
                           run_scenario(tuned, /*reference_loop=*/false));
}

// --- Parallel advancement (PR 7): 1/2/4/8 threads vs the reference ----------

TEST(ParallelDiff, PlainFleetAllPolicies) {
  for (const DispatchPolicy policy : all_dispatch_policies()) {
    Scenario sc;
    sc.trace = poisson_trace(24, 90.0, small_shape(), 21);
    sc.specs = uniform_fleet(4, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
    sc.policy = policy;
    expect_threads_agree(sc);
  }
}

TEST(ParallelDiff, FaultInjectionWithRetries) {
  Scenario sc;
  sc.trace = bursty_trace(24, 6, Duration::millis(25), small_shape(), 13);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[1].fault.fail_at = Duration::millis(30);
  sc.specs[2].fault.slow_from = Duration::millis(10);
  sc.specs[2].fault.slow_until = Duration::millis(60);
  sc.specs[2].fault.slow_factor = 3.0;
  sc.cfg.retry_timeout = Duration::millis(2);
  expect_threads_agree(sc);
}

TEST(ParallelDiff, AutoscaleUpAndDown) {
  Scenario sc;
  sc.trace = bursty_trace(36, 12, Duration::millis(40), small_shape(), 29);
  sc.specs = uniform_fleet(2, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg.warmup = Duration::millis(3);
  sc.cfg.autoscale_period = Duration::millis(2);
  sc.policy = DispatchPolicy::kPowerOfTwoChoices;
  sc.dispatch_seed = 11;
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 1;
  sc.autoscale.max_replicas = 6;
  sc.autoscale.high_tokens_per_replica = 96;
  sc.autoscale.low_tokens_per_replica = 8;
  expect_threads_agree(sc);
}

TEST(ParallelDiff, PrefixCacheSurvivalAndMigration) {
  RequestShape shape = small_shape();
  shape.prefix_groups = 2;
  shape.shared_fraction = 0.75;
  shape.shared_prefix_len = 12;
  Scenario sc;
  sc.trace = poisson_trace(28, 100.0, shape, 17);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[0].fault.fail_at = Duration::millis(25);
  sc.cfg.retry_timeout = Duration::millis(2);
  sc.cfg.cache.enabled = true;
  sc.cfg.cache.capacity_tokens = 4096;
  sc.cfg.cache.survive_failstop = true;
  sc.cfg.cache.migrate_on_retire = true;
  sc.cfg.warmup = Duration::millis(2);
  sc.cfg.autoscale_period = Duration::millis(4);
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 1;
  sc.autoscale.max_replicas = 4;
  sc.autoscale.high_tokens_per_replica = 1 << 20;
  sc.autoscale.low_tokens_per_replica = 1 << 19;
  expect_threads_agree(sc);
}

TEST(ParallelDiff, ExpertServingAcrossThreads) {
  Scenario sc;
  sc.trace = poisson_trace(32, 300.0, small_shape(), 21);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg.expert = diff_expert_config();
  sc.policy = DispatchPolicy::kExpertAffinity;
  expect_threads_agree(sc);
}

TEST(ParallelDiff, PrefixRoutingAcrossThreads) {
  Scenario sc;
  sc.trace = poisson_trace(32, 300.0, prefix_shape(), 21);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.cfg.cache.enabled = true;
  sc.cfg.cache.capacity_tokens = 4096;
  sc.policy = DispatchPolicy::kPrefixAffinity;
  expect_threads_agree(sc);
}

TEST(ParallelDiff, SlowEwmaFilterAcrossThreads) {
  Scenario sc;
  sc.trace = poisson_trace(20, 80.0, small_shape(), 33);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[2].fault.slow_from = Duration::zero();
  sc.specs[2].fault.slow_until = Duration::seconds(1);
  sc.specs[2].fault.slow_factor = 8.0;
  sc.cfg.health.slow_ewma_factor = 2.0;
  expect_threads_agree(sc);
}

// --- Event-log gating (the perf-bugfix satellite) ---------------------------

TEST(CalendarDiff, EventLogOffLeavesMetricsIdentical) {
  Scenario sc;
  sc.trace = bursty_trace(24, 6, Duration::millis(25), small_shape(), 13);
  sc.specs = uniform_fleet(3, core::StrategyKind::kMondeLoadBalanced, SchedulerConfig{});
  sc.specs[1].fault.fail_at = Duration::millis(30);
  sc.cfg.retry_timeout = Duration::millis(2);
  sc.cfg.warmup = Duration::millis(2);
  sc.autoscaled = true;
  sc.autoscale.min_replicas = 1;
  sc.autoscale.max_replicas = 4;
  sc.autoscale.high_tokens_per_replica = 96;
  sc.autoscale.low_tokens_per_replica = 8;

  const ClusterReport logged = run_scenario(sc, /*reference_loop=*/false);
  Scenario muted = sc;
  muted.cfg.event_log_enabled = false;
  const ClusterReport quiet = run_scenario(muted, /*reference_loop=*/false);

  EXPECT_GT(logged.events.size(), 0u);  // the scenario actually logs things
  EXPECT_TRUE(quiet.events.empty());
  EXPECT_EQ(logged.retries, quiet.retries);        // counters survive the gate
  EXPECT_EQ(logged.migrations, quiet.migrations);
  EXPECT_EQ(logged.peak_replicas, quiet.peak_replicas);
  // Everything except the log itself is identical.
  ClusterReport a = logged;
  ClusterReport b = quiet;
  a.events.clear();
  b.events.clear();
  expect_reports_identical(a, b);
}

// --- ServerSim version counter (what lazy deletion trusts) ------------------

TEST(ServerVersion, BumpsOnMutationOnlyAndGuardsNextEvent) {
  auto engine = core::InferenceEngine{core::SystemConfig::dac24(), tiny_model(),
                                      moe::SkewProfile::switch_like(),
                                      core::StrategyKind::kMondeLoadBalanced, 42};
  ServerSim server{engine, SchedulerConfig{}};
  const std::uint64_t v0 = server.version();
  EXPECT_EQ(server.next_event_time(), Duration::infinite());
  EXPECT_EQ(server.version(), v0);  // polling is not a mutation

  Request rq;
  rq.id = 0;
  rq.arrival = Duration::millis(1);
  rq.prompt_len = 16;
  rq.max_new_tokens = 4;
  server.enqueue(rq);
  const std::uint64_t v1 = server.version();
  EXPECT_GT(v1, v0);  // an enqueue is
  EXPECT_EQ(server.next_event_time(), Duration::millis(1));

  server.advance_to(Duration::millis(1));  // strict-before: a no-op
  EXPECT_EQ(server.version(), v1);
  EXPECT_EQ(server.next_event_time(), Duration::millis(1));

  server.advance_to(Duration::millis(2));  // runs at least the first step
  const std::uint64_t v2 = server.version();
  EXPECT_GT(v2, v1);
  // The cached next event matches a fresh computation and survives polling.
  const Duration next = server.next_event_time();
  EXPECT_EQ(server.next_event_time(), next);
  EXPECT_EQ(server.version(), v2);

  server.drain();
  EXPECT_GT(server.version(), v2);
  EXPECT_EQ(server.next_event_time(), Duration::infinite());
}

TEST(ServerVersion, FailStopBumpsAndPinsInfiniteNextEvent) {
  auto engine = core::InferenceEngine{core::SystemConfig::dac24(), tiny_model(),
                                      moe::SkewProfile::switch_like(),
                                      core::StrategyKind::kMondeLoadBalanced, 42};
  FaultSpec fault;
  fault.fail_at = Duration::millis(5);
  ServerSim server{engine, SchedulerConfig{}, Duration::zero(), fault};
  Request rq;
  rq.id = 0;
  rq.arrival = Duration::zero();
  rq.prompt_len = 16;
  rq.max_new_tokens = 64;  // long enough to still be running at the death
  server.enqueue(rq);
  const std::uint64_t armed = server.version();
  server.advance_to(Duration::millis(10));  // crosses fail_at: the server dies
  EXPECT_TRUE(server.failed());
  EXPECT_GT(server.version(), armed);
  EXPECT_EQ(server.next_event_time(), Duration::infinite());
  const std::uint64_t dead = server.version();
  (void)server.harvest_stranded();
  EXPECT_GT(server.version(), dead);  // harvest mutates too
}

}  // namespace
}  // namespace monde::serve
